(* Tests for the streaming (incremental) join and parallel verification. *)

module Tree = Tsj_tree.Tree
module Prng = Tsj_util.Prng
module Edit_op = Tsj_tree.Edit_op
module Incremental = Tsj_core.Incremental
module Partsj = Tsj_core.Partsj
module Parallel = Tsj_join.Parallel
module Types = Tsj_join.Types

let clustered seed n =
  let rng = Prng.create seed in
  let acc = ref [] in
  for _ = 1 to n / 2 do
    let base = Gen.random_tree rng (3 + Prng.int rng 14) in
    acc := base :: !acc;
    let _, copy = Edit_op.random_script rng ~labels:Gen.default_alphabet 2 base in
    acc := copy :: !acc
  done;
  Array.of_list !acc

(* Feed trees through the incremental join in the given order; collect all
   pairs translated back to original indices. *)
let stream_join trees order tau =
  let inc = Incremental.create ~tau () in
  let pairs = ref [] in
  Array.iter
    (fun orig ->
      let id = Incremental.n_trees inc in
      ignore id;
      let hits = Incremental.add inc trees.(orig) in
      List.iter (fun (earlier, d) -> pairs := (earlier, orig, d) :: !pairs) hits)
    order;
  (* [earlier] is an insertion id; translate via the order array, then
     normalize pair direction. *)
  List.map
    (fun (earlier_id, orig_j, d) ->
      let i = order.(earlier_id) in
      (min i orig_j, max i orig_j, d))
    !pairs
  |> List.sort compare

let batch_triples trees tau =
  (Partsj.join ~trees ~tau ()).Types.pairs
  |> List.map (fun p -> (p.Types.i, p.Types.j, p.Types.distance))
  |> List.sort compare

let test_incremental_equals_batch_in_order () =
  let trees = clustered 31 30 in
  let order = Array.init (Array.length trees) (fun i -> i) in
  List.iter
    (fun tau ->
      Alcotest.(check (list (triple int int int)))
        (Printf.sprintf "tau=%d" tau)
        (batch_triples trees tau)
        (stream_join trees order tau))
    [ 0; 1; 2; 3 ]

let test_incremental_equals_batch_shuffled () =
  let trees = clustered 32 30 in
  let rng = Prng.create 99 in
  List.iter
    (fun tau ->
      let order = Array.init (Array.length trees) (fun i -> i) in
      Prng.shuffle rng order;
      Alcotest.(check (list (triple int int int)))
        (Printf.sprintf "tau=%d shuffled" tau)
        (batch_triples trees tau)
        (stream_join trees order tau))
    [ 1; 2; 3 ]

let test_incremental_descending_sizes () =
  (* The adversarial order for the batch algorithm's assumption. *)
  let trees = clustered 33 24 in
  let order = Array.init (Array.length trees) (fun i -> i) in
  Array.sort (fun a b -> compare (Tree.size trees.(b)) (Tree.size trees.(a))) order;
  Alcotest.(check (list (triple int int int)))
    "descending size order"
    (batch_triples trees 2)
    (stream_join trees order 2)

let test_incremental_accessors () =
  let inc = Incremental.create ~tau:1 () in
  Alcotest.(check int) "tau" 1 (Incremental.tau inc);
  Alcotest.(check int) "empty" 0 (Incremental.n_trees inc);
  let a = Gen.random_tree (Prng.create 1) 6 in
  let hits = Incremental.add inc a in
  Alcotest.(check (list (pair int int))) "first tree has no partners" [] hits;
  Alcotest.(check int) "one tree" 1 (Incremental.n_trees inc);
  Alcotest.(check bool) "tree back" true (Tree.equal a (Incremental.tree inc 0));
  Alcotest.check_raises "unknown id" (Invalid_argument "Incremental.tree: unknown id")
    (fun () -> ignore (Incremental.tree inc 1));
  let hits = Incremental.add inc a in
  Alcotest.(check (list (pair int int))) "duplicate found" [ (0, 0) ] hits;
  let verified, indexed = Incremental.stats inc in
  Alcotest.(check bool) "stats counted" true (verified >= 1 && indexed >= 0)

let test_incremental_rejects_negative () =
  Alcotest.check_raises "negative tau"
    (Invalid_argument "Incremental.create: negative threshold") (fun () ->
      ignore (Incremental.create ~tau:(-1) ()))

(* --- parallel map / parallel verification --- *)

let test_parallel_map_matches_sequential () =
  let xs = Array.init 1000 (fun i -> i) in
  let f x = (x * x) + 1 in
  List.iter
    (fun domains ->
      Alcotest.(check (array int))
        (Printf.sprintf "domains=%d" domains)
        (Array.map f xs)
        (Parallel.map ~domains f xs))
    [ 1; 2; 3; 4 ]

let test_parallel_map_short_array () =
  Alcotest.(check (array int)) "short input" [| 2 |]
    (Parallel.map ~domains:4 (fun x -> x + 1) [| 1 |]);
  Alcotest.(check (array int)) "empty input" [||] (Parallel.map ~domains:4 Fun.id [||])

let test_parallel_map_validation () =
  Alcotest.check_raises "domains 0" (Invalid_argument "Parallel.map: domains must be >= 1")
    (fun () -> ignore (Parallel.map ~domains:0 Fun.id [| 1 |]))

let test_parallel_map_exception_propagates () =
  match Parallel.map ~domains:3 (fun x -> if x = 17 then failwith "boom" else x)
          (Array.init 100 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure msg -> Alcotest.(check string) "propagated" "boom" msg

let test_parallel_verification_same_results () =
  let trees = clustered 34 40 in
  let seq = Partsj.join ~trees ~tau:2 () in
  List.iter
    (fun domains ->
      let par = Partsj.join ~domains ~trees ~tau:2 () in
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d equals sequential" domains)
        true
        (Types.equal_results seq par))
    [ 2; 4 ];
  Alcotest.(check bool) "recommended domains positive" true
    (Parallel.recommended_domains () >= 1)

let suite =
  [
    Alcotest.test_case "incremental = batch (insertion order)" `Quick
      test_incremental_equals_batch_in_order;
    Alcotest.test_case "incremental = batch (shuffled)" `Quick
      test_incremental_equals_batch_shuffled;
    Alcotest.test_case "incremental = batch (descending sizes)" `Quick
      test_incremental_descending_sizes;
    Alcotest.test_case "incremental accessors" `Quick test_incremental_accessors;
    Alcotest.test_case "incremental validation" `Quick test_incremental_rejects_negative;
    Alcotest.test_case "parallel map = sequential" `Quick test_parallel_map_matches_sequential;
    Alcotest.test_case "parallel map short/empty" `Quick test_parallel_map_short_array;
    Alcotest.test_case "parallel map validation" `Quick test_parallel_map_validation;
    Alcotest.test_case "parallel map exceptions" `Quick test_parallel_map_exception_propagates;
    Alcotest.test_case "parallel verification = sequential" `Quick
      test_parallel_verification_same_results;
  ]
