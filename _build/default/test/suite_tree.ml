module Tree = Tsj_tree.Tree
module Label = Tsj_tree.Label
module Bracket = Tsj_tree.Bracket
module Traversal = Tsj_tree.Traversal
module Postorder = Tsj_tree.Postorder
module Binary_tree = Tsj_tree.Binary_tree
module Edit_op = Tsj_tree.Edit_op
module Prng = Tsj_util.Prng

let tree = Alcotest.testable (Fmt.of_to_string Bracket.to_string) Tree.equal

let t s = Bracket.of_string_exn s

(* The running example from Figure 4 of the paper. *)
let fig4 = t "{a{b{c{d}{e}}}{f}{g{h{i{j}}}}}"

let test_label_interning () =
  let a = Label.intern "swissprot-tag" in
  let b = Label.intern "swissprot-tag" in
  Alcotest.(check int) "same id" a b;
  Alcotest.(check string) "name roundtrip" "swissprot-tag" (Label.name a);
  Alcotest.(check bool) "mem" true (Label.mem "swissprot-tag");
  Alcotest.(check string) "epsilon prints empty" "" (Label.name Label.epsilon);
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Label.intern: empty string is reserved for epsilon") (fun () ->
      ignore (Label.intern ""))

let test_tree_size_depth_degree () =
  Alcotest.(check int) "size" 10 (Tree.size fig4);
  Alcotest.(check int) "depth" 5 (Tree.depth fig4);
  Alcotest.(check int) "degree" 3 (Tree.degree fig4);
  let single = Tree.leaf (Label.intern "x") in
  Alcotest.(check int) "leaf size" 1 (Tree.size single);
  Alcotest.(check int) "leaf depth" 1 (Tree.depth single);
  Alcotest.(check int) "leaf degree" 0 (Tree.degree single)

let test_tree_equal_compare () =
  let a = t "{a{b}{c}}" and b = t "{a{b}{c}}" and c = t "{a{c}{b}}" in
  Alcotest.(check bool) "equal" true (Tree.equal a b);
  Alcotest.(check bool) "order matters" false (Tree.equal a c);
  Alcotest.(check int) "compare equal" 0 (Tree.compare a b);
  Alcotest.(check bool) "compare consistent" true (Tree.compare a c <> 0);
  Alcotest.(check int) "hash equal" (Tree.hash a) (Tree.hash b)

let test_tree_mirror () =
  let a = t "{a{b{x}{y}}{c}}" in
  Alcotest.check tree "mirrored" (t "{a{c}{b{y}{x}}}") (Tree.mirror a);
  Alcotest.check tree "involution" a (Tree.mirror (Tree.mirror a))

let test_tree_label_set () =
  let a = t "{a{b}{a{b}}}" in
  let names = List.map Label.name (Tree.label_set a) in
  Alcotest.(check (list string)) "distinct labels" [ "a"; "b" ]
    (List.sort compare names)

let test_nodes_postorder () =
  let nodes = Tree.nodes_postorder (t "{a{b{c}}{d}}") in
  let labels = Array.map (fun (n : Tree.t) -> Label.name n.label) nodes in
  Alcotest.(check (array string)) "postorder" [| "c"; "b"; "d"; "a" |] labels;
  let pre = Tree.nodes_preorder (t "{a{b{c}}{d}}") in
  let labels = Array.map (fun (n : Tree.t) -> Label.name n.label) pre in
  Alcotest.(check (array string)) "preorder" [| "a"; "b"; "c"; "d" |] labels

let test_subtree_at_postorder () =
  let a = t "{a{b{c}}{d}}" in
  Alcotest.check tree "subtree 1" (t "{b{c}}") (Tree.subtree_at_postorder a 1);
  Alcotest.check tree "subtree root" a (Tree.subtree_at_postorder a 3);
  Alcotest.check_raises "oob" (Invalid_argument "Tree.subtree_at_postorder: index out of range")
    (fun () -> ignore (Tree.subtree_at_postorder a 4))

let test_bracket_roundtrip_fixed () =
  List.iter
    (fun s ->
      let parsed = t s in
      Alcotest.(check string) "print . parse = id" s (Bracket.to_string parsed))
    [ "{a}"; "{a{b}}"; "{a{b}{c}}"; "{root{x{y{z}}}{w}}" ]

let test_bracket_escapes () =
  let weird = Tree.node (Label.intern "a{b}c\\d") [ Tree.leaf (Label.intern "e") ] in
  let s = Bracket.to_string weird in
  Alcotest.check tree "escape roundtrip" weird (Bracket.of_string_exn s)

let test_bracket_errors () =
  let bad input =
    match Bracket.of_string input with
    | Ok _ -> Alcotest.failf "expected parse error on %S" input
    | Error _ -> ()
  in
  List.iter bad [ ""; "{"; "{}"; "{a"; "{a}}"; "{a}{b}"; "a"; "{a{}}" ]

let test_bracket_whitespace_comments () =
  match Bracket.forest_of_string "  {a}\n# comment line\n{b{c}} \n" with
  | Ok [ x; y ] ->
    Alcotest.check tree "first" (t "{a}") x;
    Alcotest.check tree "second" (t "{b{c}}") y
  | Ok l -> Alcotest.failf "expected 2 trees, got %d" (List.length l)
  | Error e -> Alcotest.fail e

let test_bracket_file_roundtrip () =
  let path = Filename.temp_file "tsj" ".trees" in
  let forest = [ t "{a{b}}"; t "{c}"; fig4 ] in
  Bracket.save_file path forest;
  (match Bracket.load_file path with
  | Ok loaded -> Alcotest.(check (list tree)) "file roundtrip" forest loaded
  | Error e -> Alcotest.fail e);
  Sys.remove path

let prop_bracket_roundtrip =
  Gen.qtest "bracket roundtrip on random trees" (Gen.arb_tree ~max_size:30 ())
    (fun x -> Tree.equal x (Bracket.of_string_exn (Bracket.to_string x)))

let test_pp_renderings () =
  let a = t "{a{b{c}}{d}}" in
  Alcotest.(check string) "bracket pp" "{a{b{c}}{d}}" (Format.asprintf "%a" Tree.pp a);
  let ascii = Format.asprintf "%a" Tree.pp_ascii a in
  let has needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length ascii && (String.sub ascii i n = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "ascii shows all labels" true
    (has "a" && has "b" && has "c" && has "d");
  Alcotest.(check bool) "ascii draws branches" true (has "└─" || has "├─")

let test_fold () =
  let a = t "{a{b{c}}{d}}" in
  (* fold computing size *)
  Alcotest.(check int) "fold size" 4
    (Tree.fold (fun _ kids -> 1 + List.fold_left ( + ) 0 kids) a);
  (* fold computing depth *)
  Alcotest.(check int) "fold depth" 3
    (Tree.fold (fun _ kids -> 1 + List.fold_left max 0 kids) a)

let test_map_labels () =
  let a = t "{a{b}}" in
  let upper = Tree.map_labels (fun l -> Label.intern (String.uppercase_ascii (Label.name l))) a in
  Alcotest.check tree "mapped" (t "{A{B}}") upper

let test_traversal_sequences () =
  let a = t "{a{b{c}}{d}}" in
  let names arr = Array.map Label.name arr in
  Alcotest.(check (array string)) "preorder" [| "a"; "b"; "c"; "d" |]
    (names (Traversal.preorder_labels a));
  Alcotest.(check (array string)) "postorder" [| "c"; "b"; "d"; "a" |]
    (names (Traversal.postorder_labels a));
  Alcotest.(check (array string)) "euler" [| "a"; "b"; "c"; "c"; "b"; "d"; "d"; "a" |]
    (names (Traversal.euler_tour a))

let test_traversal_parent_depth () =
  let a = t "{a{b{c}}{d}}" in
  Alcotest.(check (array int)) "parents" [| 1; 3; 3; -1 |] (Traversal.parent_postorder a);
  Alcotest.(check (array int)) "depths" [| 3; 2; 2; 1 |] (Traversal.depths_postorder a)

let test_postorder_lld_keyroots () =
  (* Example: {f{d{a}{c{b}}}{e}} — the classic Zhang–Shasha paper tree. *)
  let a = t "{f{d{a}{c{b}}}{e}}" in
  let p = Postorder.of_tree a in
  Alcotest.(check int) "size" 6 p.Postorder.size;
  (* postorder: a(0) b(1) c(2) d(3) e(4) f(5) *)
  Alcotest.(check (array int)) "lld" [| 0; 1; 1; 0; 4; 0 |] p.Postorder.lld;
  Alcotest.(check (array int)) "keyroots" [| 2; 4; 5 |] p.Postorder.keyroots;
  Alcotest.(check int) "leaves" 3 (Postorder.n_leaves p);
  Alcotest.(check int) "subtree size at root" 6 (Postorder.subtree_size p 5)

let prop_postorder_invariants =
  Gen.qtest "postorder invariants" (Gen.arb_tree ~max_size:25 ()) (fun x ->
      let p = Postorder.of_tree x in
      let n = p.Postorder.size in
      (* root is always a keyroot, llds point below, parents above *)
      Array.length p.Postorder.keyroots > 0
      && p.Postorder.keyroots.(Array.length p.Postorder.keyroots - 1) = n - 1
      && Array.for_all (fun i -> i >= 0) p.Postorder.lld
      && (let ok = ref true in
          for i = 0 to n - 1 do
            if p.Postorder.lld.(i) > i then ok := false;
            let par = p.Postorder.parent.(i) in
            if i = n - 1 then (if par <> -1 then ok := false)
            else if par <= i then ok := false
          done;
          !ok))

let test_binary_tree_fig4 () =
  (* Figure 4 of the paper: the LC-RS transform of the general tree. *)
  let b = Binary_tree.of_tree fig4 in
  Alcotest.(check int) "same node count" 10 b.Binary_tree.size;
  Alcotest.check tree "inverse transform" fig4 (Binary_tree.to_tree b);
  (* Root of the binary tree is the general root and keeps no right child:
     the root has no siblings. *)
  let r = Binary_tree.root b in
  Alcotest.(check bool) "root has no right child" false (Binary_tree.has_right b r);
  Alcotest.(check string) "root label" "a" (Label.name b.Binary_tree.label.(r))

let prop_binary_roundtrip =
  Gen.qtest "LC-RS roundtrip" (Gen.arb_tree ~max_size:30 ()) (fun x ->
      Tree.equal x (Binary_tree.to_tree (Binary_tree.of_tree x)))

let prop_binary_structure =
  Gen.qtest "LC-RS structural invariants" (Gen.arb_tree ~max_size:30 ()) (fun x ->
      let b = Binary_tree.of_tree x in
      let n = b.Binary_tree.size in
      let ok = ref (n = Tree.size x) in
      for i = 0 to n - 1 do
        (match b.Binary_tree.kind.(i) with
        | Binary_tree.Root -> if b.Binary_tree.parent.(i) <> -1 then ok := false
        | Binary_tree.Left_of_parent ->
          if b.Binary_tree.left.(b.Binary_tree.parent.(i)) <> i then ok := false
        | Binary_tree.Right_of_parent ->
          if b.Binary_tree.right.(b.Binary_tree.parent.(i)) <> i then ok := false);
        (* postorder ids: children have smaller ids than parents *)
        if b.Binary_tree.left.(i) >= i then ok := false;
        if b.Binary_tree.right.(i) >= i then ok := false;
        (* subtree sizes consistent *)
        let expect =
          1
          + (if b.Binary_tree.left.(i) >= 0 then
               b.Binary_tree.subtree_size.(b.Binary_tree.left.(i))
             else 0)
          + (if b.Binary_tree.right.(i) >= 0 then
               b.Binary_tree.subtree_size.(b.Binary_tree.right.(i))
             else 0)
        in
        if b.Binary_tree.subtree_size.(i) <> expect then ok := false;
        (* postorder contiguity: subtree occupies [i - size + 1, i] *)
        if b.Binary_tree.left.(i) >= 0 && b.Binary_tree.right.(i) >= 0 then begin
          let l = b.Binary_tree.left.(i) and r = b.Binary_tree.right.(i) in
          if l + b.Binary_tree.subtree_size.(r) <> r then ok := false
        end
      done;
      !ok)

let test_edit_rename () =
  let a = t "{a{b}{c}}" in
  let a' = Edit_op.apply a (Edit_op.Rename { node = 0; label = Label.intern "z" }) in
  Alcotest.check tree "rename leaf" (t "{a{z}{c}}") a';
  let a'' = Edit_op.apply a (Edit_op.Rename { node = 2; label = Label.intern "r" }) in
  Alcotest.check tree "rename root" (t "{r{b}{c}}") a''

let test_edit_delete () =
  (* Figure 2: T1 -> T2 by deleting N4 (postorder number 2). *)
  let t1 = t "{1{2{3{4{5}{6}}}}{7}}" in
  let t2 = Edit_op.apply t1 (Edit_op.Delete { node = 2 }) in
  Alcotest.check tree "paper figure 2 deletion" (t "{1{2{3{5}{6}}}{7}}") t2;
  (* Deleting a mid node splices children in place. *)
  let a = t "{a{b{x}{y}}{c}}" in
  let a' = Edit_op.apply a (Edit_op.Delete { node = 2 }) in
  Alcotest.check tree "splice" (t "{a{x}{y}{c}}") a'

let test_edit_delete_root () =
  let a = t "{a{b{c}}}" in
  let a' = Edit_op.apply a (Edit_op.Delete { node = 2 }) in
  Alcotest.check tree "root deletion promotes single child" (t "{b{c}}") a';
  let two = t "{a{b}{c}}" in
  Alcotest.check_raises "root with two children"
    (Invalid_argument "Edit_op.apply (delete): deleting a root with zero or several children")
    (fun () -> ignore (Edit_op.apply two (Edit_op.Delete { node = 2 })))

let test_edit_insert () =
  let a = t "{a{x}{y}{z}}" in
  let a' =
    Edit_op.apply a
      (Edit_op.Insert { parent = 3; first_child = 1; n_children = 2; label = Label.intern "m" })
  in
  Alcotest.check tree "insert adopting span" (t "{a{x}{m{y}{z}}}") a';
  let a'' =
    Edit_op.apply a
      (Edit_op.Insert { parent = 3; first_child = 3; n_children = 0; label = Label.intern "m" })
  in
  Alcotest.check tree "insert empty span at end" (t "{a{x}{y}{z}{m}}") a''

let test_edit_insert_bounds () =
  let a = t "{a{x}}" in
  Alcotest.check_raises "span oob"
    (Invalid_argument "Edit_op.apply (insert): child span [1,2) out of range [0,1]")
    (fun () ->
      ignore
        (Edit_op.apply a
           (Edit_op.Insert { parent = 1; first_child = 1; n_children = 1; label = Label.intern "m" })))

let test_edit_inverse () =
  (* insertion and deletion are inverse operations *)
  let a = t "{a{x}{y}{z}}" in
  let ins = Edit_op.Insert { parent = 3; first_child = 0; n_children = 2; label = Label.intern "m" } in
  let b = Edit_op.apply a ins in
  (* the new node m sits at postorder position 2 in b *)
  let back = Edit_op.apply b (Edit_op.Delete { node = 2 }) in
  Alcotest.check tree "delete undoes insert" a back

let prop_edit_preserves_treeness =
  Gen.qtest "random scripts keep valid sizes" (Gen.arb_tree_with_edits ~max_edits:5 ())
    (fun (base, ops, result) ->
      let d = Tree.size result - Tree.size base in
      abs d <= List.length ops && Tree.size result >= 1)

let prop_random_op_valid =
  Gen.qtest "random ops apply cleanly" (Gen.arb_tree ~max_size:15 ()) (fun x ->
      let rng = Prng.create (Tree.hash x land 0xFFFFFF) in
      let ok = ref true in
      for _ = 1 to 10 do
        let op = Edit_op.random rng ~labels:Gen.default_alphabet x in
        match Edit_op.apply x op with
        | _ -> ()
        | exception Invalid_argument msg ->
          ok := false;
          Printf.eprintf "op failed: %s\n" msg
      done;
      !ok)

let test_deep_trees () =
  (* Robustness on pathological inputs: a 50,000-node chain must survive
     parsing, the array compilations and partitioning (all recursive code
     paths) without stack overflow or quadratic blowup. *)
  let n = 50_000 in
  let buf = Buffer.create (4 * n) in
  for _ = 1 to n do
    Buffer.add_string buf "{a"
  done;
  for _ = 1 to n do
    Buffer.add_char buf '}'
  done;
  let deep = Bracket.of_string_exn (Buffer.contents buf) in
  Alcotest.(check int) "size" n (Tree.size deep);
  Alcotest.(check int) "depth" n (Tree.depth deep);
  let b = Binary_tree.of_tree deep in
  Alcotest.(check int) "binary size" n b.Binary_tree.size;
  let po = Postorder.of_tree deep in
  Alcotest.(check int) "single keyroot on a chain" 1 (Array.length po.Postorder.keyroots);
  let p = Tsj_core.Partition.partition b ~delta:7 in
  Alcotest.(check int) "balanced components" 7
    (Array.length (Tsj_core.Partition.component_sizes p));
  Alcotest.(check bool) "gamma near n/7" true (p.Tsj_core.Partition.gamma >= n / 8);
  Alcotest.(check string) "print roundtrip head" "{a{a"
    (String.sub (Bracket.to_string deep) 0 4)

let suite =
  [
    Alcotest.test_case "deep trees (50k chain)" `Slow test_deep_trees;
    Alcotest.test_case "label interning" `Quick test_label_interning;
    Alcotest.test_case "size/depth/degree" `Quick test_tree_size_depth_degree;
    Alcotest.test_case "equal/compare/hash" `Quick test_tree_equal_compare;
    Alcotest.test_case "mirror" `Quick test_tree_mirror;
    Alcotest.test_case "label_set" `Quick test_tree_label_set;
    Alcotest.test_case "nodes pre/postorder" `Quick test_nodes_postorder;
    Alcotest.test_case "subtree_at_postorder" `Quick test_subtree_at_postorder;
    Alcotest.test_case "bracket roundtrip (fixed)" `Quick test_bracket_roundtrip_fixed;
    Alcotest.test_case "bracket escapes" `Quick test_bracket_escapes;
    Alcotest.test_case "bracket errors" `Quick test_bracket_errors;
    Alcotest.test_case "bracket whitespace/comments" `Quick test_bracket_whitespace_comments;
    Alcotest.test_case "bracket file roundtrip" `Quick test_bracket_file_roundtrip;
    prop_bracket_roundtrip;
    Alcotest.test_case "pp renderings" `Quick test_pp_renderings;
    Alcotest.test_case "fold" `Quick test_fold;
    Alcotest.test_case "map_labels" `Quick test_map_labels;
    Alcotest.test_case "traversal sequences" `Quick test_traversal_sequences;
    Alcotest.test_case "traversal parent/depth" `Quick test_traversal_parent_depth;
    Alcotest.test_case "postorder lld/keyroots" `Quick test_postorder_lld_keyroots;
    prop_postorder_invariants;
    Alcotest.test_case "binary tree (paper fig. 4)" `Quick test_binary_tree_fig4;
    prop_binary_roundtrip;
    prop_binary_structure;
    Alcotest.test_case "edit rename" `Quick test_edit_rename;
    Alcotest.test_case "edit delete (paper fig. 2)" `Quick test_edit_delete;
    Alcotest.test_case "edit delete root" `Quick test_edit_delete_root;
    Alcotest.test_case "edit insert" `Quick test_edit_insert;
    Alcotest.test_case "edit insert bounds" `Quick test_edit_insert_bounds;
    Alcotest.test_case "insert/delete inverse" `Quick test_edit_inverse;
    prop_edit_preserves_treeness;
    prop_random_op_valid;
  ]
