(* Shared random-tree generators for the test suites.

   Two flavours are provided: a direct PRNG-driven generator (for plain
   alcotest cases that need one sample), and QCheck arbitraries (for
   property tests).  Trees shrink poorly under generic shrinking, so
   counterexamples are reported unshrunk; sizes are kept small instead. *)

module Tree = Tsj_tree.Tree
module Label = Tsj_tree.Label
module Prng = Tsj_util.Prng

let alphabet n = Array.init n (fun i -> Label.intern (Printf.sprintf "l%d" i))

let default_alphabet = alphabet 8

(* Random tree with exactly [size] nodes: start from a single node and
   repeatedly attach a leaf at a uniformly random position under a
   uniformly random existing node (chosen by preorder index).  All shapes
   are reachable. *)
let random_tree ?(labels = default_alphabet) rng size =
  if size <= 0 then invalid_arg "Gen.random_tree: size must be positive";
  let new_label () = Prng.choice rng labels in
  (* Attach a fresh leaf under the node with preorder index [slot]. *)
  let rec attach (t : Tree.t) slot : Tree.t * int =
    if slot = 0 then begin
      let pos = Prng.int_in rng 0 (List.length t.children) in
      let rec insert i = function
        | rest when i = 0 -> Tree.leaf (new_label ()) :: rest
        | [] -> [ Tree.leaf (new_label ()) ]
        | c :: rest -> c :: insert (i - 1) rest
      in
      (Tree.node t.label (insert pos t.children), -1)
    end
    else begin
      let rec through acc slot = function
        | [] -> (List.rev acc, slot)
        | (c : Tree.t) :: rest ->
          if slot < 0 then through (c :: acc) slot rest
          else begin
            let c', slot' = attach c (slot - 1) in
            through (c' :: acc) slot' rest
          end
      in
      let children, slot' = through [] (slot - 1) t.children in
      (Tree.node t.label children, slot')
    end
  in
  let rec grow t n =
    if n = 0 then t
    else begin
      let target = Prng.int rng (Tree.size t) in
      let t', _ = attach t target in
      grow t' (n - 1)
    end
  in
  grow (Tree.leaf (new_label ())) (size - 1)

let random_forest ?labels rng ~n ~max_size =
  List.init n (fun _ -> random_tree ?labels rng (1 + Prng.int rng max_size))

let pp_tree = Tsj_tree.Bracket.to_string

(* QCheck integration: draw a seed from QCheck's random state, then derive
   the tree from our deterministic Prng so failures are reproducible. *)
let arb_tree ?(max_size = 12) ?labels () =
  QCheck.make ~print:pp_tree (fun st ->
      let seed = Random.State.int st 0x3FFFFFFF in
      let rng = Prng.create seed in
      let size = 1 + Prng.int rng max_size in
      random_tree ?labels rng size)

let arb_tree_pair ?max_size ?labels () =
  QCheck.pair (arb_tree ?max_size ?labels ()) (arb_tree ?max_size ?labels ())

let arb_tree_triple ?max_size ?labels () =
  QCheck.triple (arb_tree ?max_size ?labels ()) (arb_tree ?max_size ?labels ())
    (arb_tree ?max_size ?labels ())

(* A tree together with an edit script of length <= k applied to it. *)
let arb_tree_with_edits ?(max_size = 12) ?(max_edits = 3) ?(labels = default_alphabet) () =
  QCheck.make
    ~print:(fun (t, ops, t') ->
      Printf.sprintf "base=%s edits=[%s] result=%s" (pp_tree t)
        (String.concat "; "
           (List.map (Format.asprintf "%a" Tsj_tree.Edit_op.pp) ops))
        (pp_tree t'))
    (fun st ->
      let seed = Random.State.int st 0x3FFFFFFF in
      let rng = Prng.create seed in
      let size = 1 + Prng.int rng max_size in
      let t = random_tree ~labels rng size in
      let k = Prng.int_in rng 0 max_edits in
      let ops, t' = Tsj_tree.Edit_op.random_script rng ~labels k t in
      (t, ops, t'))

let qtest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)
