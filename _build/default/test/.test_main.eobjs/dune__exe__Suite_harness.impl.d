test/suite_harness.ml: Alcotest Array Filename Gen In_channel List String Sys Tsj_harness Tsj_join Tsj_tree Tsj_util
