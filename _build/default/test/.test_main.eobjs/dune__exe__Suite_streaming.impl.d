test/suite_streaming.ml: Alcotest Array Fun Gen List Printf Tsj_core Tsj_join Tsj_tree Tsj_util
