test/suite_measures.ml: Alcotest Array Gen List Printf Tsj_baselines Tsj_core Tsj_ted Tsj_tree Tsj_util
