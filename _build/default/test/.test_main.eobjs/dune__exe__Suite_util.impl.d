test/suite_util.ml: Alcotest Array Gen QCheck Tsj_util
