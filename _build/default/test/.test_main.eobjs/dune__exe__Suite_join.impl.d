test/suite_join.ml: Alcotest Array Gen List Printf QCheck Random Tsj_baselines Tsj_core Tsj_join Tsj_ted Tsj_tree Tsj_util
