test/suite_xml.ml: Alcotest Array Gen List Printf QCheck Random String Tsj_core Tsj_join Tsj_tree Tsj_util Tsj_xml
