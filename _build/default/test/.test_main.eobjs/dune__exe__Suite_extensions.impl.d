test/suite_extensions.ml: Alcotest Array Filename Format Gen List Out_channel Printf String Sys Tsj_core Tsj_join Tsj_ted Tsj_tree Tsj_util
