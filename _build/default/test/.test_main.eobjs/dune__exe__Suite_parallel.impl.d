test/suite_parallel.ml: Alcotest Array Atomic Fun Gen List Printf QCheck Random Tsj_core Tsj_join Tsj_tree Tsj_util
