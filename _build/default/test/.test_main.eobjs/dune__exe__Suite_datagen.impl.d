test/suite_datagen.ml: Alcotest Array Gen List Printf String Tsj_core Tsj_datagen Tsj_join Tsj_ted Tsj_tree Tsj_util
