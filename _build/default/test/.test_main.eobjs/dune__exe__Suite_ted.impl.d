test/suite_ted.ml: Alcotest Array Char Gen List Printf QCheck String Tsj_ted Tsj_tree Tsj_util
