test/suite_formats.ml: Alcotest Filename Fmt Gen List Out_channel String Sys Tsj_core Tsj_tree
