test/suite_tree.ml: Alcotest Array Buffer Filename Fmt Format Gen List Printf String Sys Tsj_core Tsj_tree Tsj_util
