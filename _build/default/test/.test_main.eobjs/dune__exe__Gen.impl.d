test/gen.ml: Array Format List Printf QCheck QCheck_alcotest Random String Tsj_tree Tsj_util
