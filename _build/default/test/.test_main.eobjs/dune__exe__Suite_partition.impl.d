test/suite_partition.ml: Alcotest Array Gen Hashtbl List Option Printf Tsj_core Tsj_join Tsj_ted Tsj_tree Tsj_util
