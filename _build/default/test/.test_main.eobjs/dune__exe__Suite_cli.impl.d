test/suite_cli.ml: Alcotest Filename Fun In_channel List Out_channel String Sys Unix
