(* End-to-end correctness of every join method: on random clustered
   datasets (where similar pairs actually exist), STR, SET and PartSJ must
   return exactly the nested-loop ground truth, for all thresholds. *)

module Tree = Tsj_tree.Tree
module Edit_op = Tsj_tree.Edit_op
module Prng = Tsj_util.Prng
module Types = Tsj_join.Types
module Nested_loop = Tsj_join.Nested_loop
module Str_join = Tsj_baselines.Str_join
module Set_join = Tsj_baselines.Set_join
module Binary_branch = Tsj_baselines.Binary_branch
module Partsj = Tsj_core.Partsj
module Zhang_shasha = Tsj_ted.Zhang_shasha

(* A clustered dataset: [n_base] independent random trees, each with a few
   perturbed near-copies, so the join result is non-trivial at small tau. *)
let clustered_dataset ~seed ~n_base ~copies ~max_size ~max_edits =
  let rng = Prng.create seed in
  let acc = ref [] in
  for _ = 1 to n_base do
    let base = Gen.random_tree rng (1 + Prng.int rng max_size) in
    acc := base :: !acc;
    for _ = 1 to copies do
      let k = Prng.int_in rng 0 max_edits in
      let _, copy = Edit_op.random_script rng ~labels:Gen.default_alphabet k base in
      acc := copy :: !acc
    done
  done;
  Array.of_list !acc

let sorted_triples output =
  List.sort compare (List.map (fun p -> (p.Types.i, p.Types.j, p.Types.distance)) output.Types.pairs)

let check_method_against_ground_truth name join_fn trees tau =
  let truth = Nested_loop.join ~trees ~tau () in
  let out = join_fn ~trees ~tau in
  Alcotest.(check (list (triple int int int)))
    (Printf.sprintf "%s = ground truth (tau=%d, %d trees)" name tau (Array.length trees))
    (sorted_triples truth) (sorted_triples out);
  (* every filter method verifies no fewer pairs than it reports and no
     more than the window *)
  Alcotest.(check bool) "candidates >= results" true
    (out.Types.stats.Types.n_candidates >= out.Types.stats.Types.n_results);
  Alcotest.(check bool) "candidates <= window" true
    (out.Types.stats.Types.n_candidates <= out.Types.stats.Types.n_window_pairs)

let methods =
  [
    ("STR", fun ~trees ~tau -> Str_join.join ~trees ~tau ());
    ("SET", fun ~trees ~tau -> Set_join.join ~trees ~tau ());
    ("PRT", fun ~trees ~tau -> Partsj.join ~trees ~tau ());
    ( "PRT-random",
      fun ~trees ~tau -> Partsj.join ~partitioning:(Partsj.Random 7) ~trees ~tau () );
  ]

let test_all_methods_small_dataset () =
  let trees = clustered_dataset ~seed:11 ~n_base:12 ~copies:3 ~max_size:14 ~max_edits:3 in
  List.iter
    (fun tau ->
      List.iter (fun (name, fn) -> check_method_against_ground_truth name fn trees tau)
        methods)
    [ 0; 1; 2; 3; 4 ]

let test_all_methods_bigger_trees () =
  let trees = clustered_dataset ~seed:23 ~n_base:8 ~copies:3 ~max_size:40 ~max_edits:4 in
  List.iter
    (fun tau ->
      List.iter (fun (name, fn) -> check_method_against_ground_truth name fn trees tau)
        methods)
    [ 1; 3 ]

let test_all_methods_tiny_trees () =
  (* Trees smaller than delta exercise the sub-δ overflow path of PartSJ. *)
  let rng = Prng.create 5 in
  let trees = Array.init 30 (fun _ -> Gen.random_tree rng (1 + Prng.int rng 5)) in
  List.iter
    (fun tau ->
      List.iter (fun (name, fn) -> check_method_against_ground_truth name fn trees tau)
        methods)
    [ 0; 1; 2; 3 ]

let test_identical_trees () =
  let one = Gen.random_tree (Prng.create 3) 12 in
  let trees = Array.make 6 one in
  let out = Partsj.join ~trees ~tau:0 () in
  (* all 15 unordered pairs are duplicates *)
  Alcotest.(check int) "all pairs found" 15 out.Types.stats.Types.n_results;
  List.iter
    (fun p -> Alcotest.(check int) "distance 0" 0 p.Types.distance)
    out.Types.pairs

let test_empty_and_singleton () =
  let out = Partsj.join ~trees:[||] ~tau:2 () in
  Alcotest.(check int) "empty: no pairs" 0 out.Types.stats.Types.n_results;
  let out = Partsj.join ~trees:[| Gen.random_tree (Prng.create 1) 5 |] ~tau:2 () in
  Alcotest.(check int) "singleton: no pairs" 0 out.Types.stats.Types.n_results;
  Alcotest.check_raises "negative tau" (Invalid_argument "Partsj.join: negative threshold")
    (fun () -> ignore (Partsj.join ~trees:[||] ~tau:(-1) ()))

let test_pair_indices_are_original () =
  (* Shuffle-resistant: result indices must refer to the input order. *)
  let a = Gen.random_tree (Prng.create 2) 20 in
  let b =
    let _, b = Edit_op.random_script (Prng.create 9) ~labels:Gen.default_alphabet 1 a in
    b
  in
  let unrelated = Gen.random_tree (Prng.create 77) 6 in
  let trees = [| unrelated; a; b |] in
  let out = Partsj.join ~trees ~tau:2 () in
  (match out.Types.pairs with
  | [ p ] ->
    Alcotest.(check int) "i" 1 p.Types.i;
    Alcotest.(check int) "j" 2 p.Types.j;
    Alcotest.(check int) "distance" (Zhang_shasha.distance a b) p.Types.distance
  | l -> Alcotest.failf "expected exactly one pair, got %d" (List.length l));
  ignore unrelated

let test_probe_stats_sane () =
  let trees = clustered_dataset ~seed:31 ~n_base:10 ~copies:2 ~max_size:16 ~max_edits:2 in
  let out, ps = Partsj.join_with_probe_stats ~trees ~tau:2 () in
  Alcotest.(check bool) "matched <= probed" true (ps.Partsj.n_matched <= ps.Partsj.n_probed);
  Alcotest.(check bool) "indexed subgraphs > 0" true (ps.Partsj.n_subgraphs_indexed > 0);
  Alcotest.(check bool) "results found" true (out.Types.stats.Types.n_results > 0)

let prop_partsj_equals_nested_loop =
  Gen.qtest ~count:60 "PartSJ = nested loop on random forests"
    (QCheck.make
       ~print:(fun (seed, tau) -> Printf.sprintf "seed=%d tau=%d" seed tau)
       (fun st -> (Random.State.int st 1000000, Random.State.int st 4)))
    (fun (seed, tau) ->
      let trees =
        clustered_dataset ~seed ~n_base:6 ~copies:2 ~max_size:12 ~max_edits:3
      in
      let truth = Nested_loop.join ~trees ~tau () in
      let prt = Partsj.join ~trees ~tau () in
      Types.equal_results truth prt)

let prop_str_set_equal_nested_loop =
  Gen.qtest ~count:40 "STR and SET = nested loop on random forests"
    (QCheck.make
       ~print:(fun (seed, tau) -> Printf.sprintf "seed=%d tau=%d" seed tau)
       (fun st -> (Random.State.int st 1000000, Random.State.int st 4)))
    (fun (seed, tau) ->
      let trees =
        clustered_dataset ~seed ~n_base:6 ~copies:2 ~max_size:12 ~max_edits:3
      in
      let truth = Nested_loop.join ~trees ~tau () in
      Types.equal_results truth (Str_join.join ~trees ~tau ())
      && Types.equal_results truth (Set_join.join ~trees ~tau ()))

let test_exact_verification_ablation () =
  (* bounded_verify:false must give identical results (just slower). *)
  let trees = clustered_dataset ~seed:61 ~n_base:10 ~copies:2 ~max_size:16 ~max_edits:3 in
  List.iter
    (fun tau ->
      let banded = Partsj.join ~trees ~tau () in
      let exact = Partsj.join ~bounded_verify:false ~trees ~tau () in
      Alcotest.(check bool)
        (Printf.sprintf "banded = exact verification (tau=%d)" tau)
        true
        (Types.equal_results banded exact))
    [ 0; 1; 2; 3 ]

let test_constrained_metric_join () =
  (* With the constrained metric (>= TED) the same index remains a valid
     filter; all methods must agree on the constrained-join result too. *)
  let trees = clustered_dataset ~seed:55 ~n_base:10 ~copies:2 ~max_size:12 ~max_edits:2 in
  List.iter
    (fun tau ->
      let metric = Tsj_join.Sweep.Constrained in
      let truth = Nested_loop.join ~metric ~trees ~tau () in
      List.iter
        (fun (name, out) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s constrained join (tau=%d)" name tau)
            true
            (Types.equal_results truth out))
        [
          ("STR", Str_join.join ~metric ~trees ~tau ());
          ("SET", Set_join.join ~metric ~trees ~tau ());
          ("PRT", Partsj.join ~metric ~trees ~tau ());
        ];
      (* the constrained result is a subset of the TED result *)
      let ted_truth = Nested_loop.join ~trees ~tau () in
      List.iter
        (fun p ->
          Alcotest.(check bool) "constrained pair is a TED pair" true
            (List.exists
               (fun q -> q.Types.i = p.Types.i && q.Types.j = p.Types.j)
               ted_truth.Types.pairs))
        truth.Types.pairs)
    [ 1; 2; 3 ]

(* Binary branch properties (the SET filter's foundation). *)

let prop_bib_bound =
  Gen.qtest ~count:200 "BIB <= 5 * TED" (Gen.arb_tree_pair ~max_size:12 ())
    (fun (a, b) ->
      let x1 = Binary_branch.bag_of_tree a in
      let x2 = Binary_branch.bag_of_tree b in
      Binary_branch.distance x1 x2 <= 5 * Zhang_shasha.distance a b)

let prop_bib_bag_size =
  Gen.qtest "binary branch bag has |T| elements" (Gen.arb_tree ~max_size:20 ())
    (fun x ->
      Tsj_util.Multiset.size (Binary_branch.bag_of_tree x) = Tree.size x)

let test_bib_paper_example () =
  (* Figure 3 reports BIB(T1, T2) = 6 reading its two trees directly as
     binary trees.  The SET transform (as in Yang et al.) first converts a
     general tree to its LC-RS binary form; under that convention the same
     two trees share the branches (1,2,ε) and (3,ε,ε), giving BIB = 4 —
     still consistent with BIB <= 5 * TED = 15. *)
  let t1 = Tsj_tree.Bracket.of_string_exn "{1{2}{1{3}}}" in
  let t2 = Tsj_tree.Bracket.of_string_exn "{1{2{1}{3}}}" in
  let x1 = Binary_branch.bag_of_tree t1 in
  let x2 = Binary_branch.bag_of_tree t2 in
  Alcotest.(check int) "BIB = 4 under LC-RS" 4 (Binary_branch.distance x1 x2);
  Alcotest.(check int) "lower bound = 1" 1 (Binary_branch.lower_bound x1 x2)

let test_bib_decode () =
  let tree = Tsj_tree.Bracket.of_string_exn "{a{b}}" in
  let bag = Binary_branch.bag_of_tree tree in
  let ids = Tsj_util.Multiset.to_array bag in
  Array.iter
    (fun id ->
      let node, _, _ = Binary_branch.decode id in
      Alcotest.(check bool) "decodable root label" true
        (Tsj_tree.Label.name node = "a" || Tsj_tree.Label.name node = "b"))
    ids

let suite =
  [
    Alcotest.test_case "all methods, small clustered dataset" `Slow
      test_all_methods_small_dataset;
    Alcotest.test_case "all methods, bigger trees" `Slow test_all_methods_bigger_trees;
    Alcotest.test_case "all methods, tiny trees (sub-delta)" `Quick
      test_all_methods_tiny_trees;
    Alcotest.test_case "identical trees, tau=0" `Quick test_identical_trees;
    Alcotest.test_case "empty/singleton/negative" `Quick test_empty_and_singleton;
    Alcotest.test_case "pair indices are original" `Quick test_pair_indices_are_original;
    Alcotest.test_case "probe stats sanity" `Quick test_probe_stats_sane;
    prop_partsj_equals_nested_loop;
    prop_str_set_equal_nested_loop;
    Alcotest.test_case "banded vs exact verification" `Quick
      test_exact_verification_ablation;
    Alcotest.test_case "constrained-metric join" `Quick test_constrained_metric_join;
    prop_bib_bound;
    prop_bib_bag_size;
    Alcotest.test_case "binary branch paper fig. 3" `Quick test_bib_paper_example;
    Alcotest.test_case "binary branch decode" `Quick test_bib_decode;
  ]
