module Prng = Tsj_util.Prng
module Vec_int = Tsj_util.Vec_int
module Multiset = Tsj_util.Multiset
module Statistics = Tsj_util.Statistics

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_prng_int_range () =
  let g = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.int g 10 in
    Alcotest.(check bool) "in [0,10)" true (x >= 0 && x < 10);
    let y = Prng.int_in g 5 9 in
    Alcotest.(check bool) "in [5,9]" true (y >= 5 && y <= 9)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_prng_int_uniformish () =
  let g = Prng.create 11 in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let x = Prng.int g 4 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly uniform" true
        (abs (c - (n / 4)) < n / 20))
    counts

let test_prng_float_range () =
  let g = Prng.create 13 in
  for _ = 1 to 1000 do
    let f = Prng.float g in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_prng_copy () =
  let a = Prng.create 5 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a) (Prng.bits64 b)

let test_prng_split_independent () =
  let a = Prng.create 5 in
  let b = Prng.split a in
  let equal = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr equal
  done;
  Alcotest.(check bool) "split streams differ" true (!equal < 4)

let test_prng_shuffle_permutation () =
  let g = Prng.create 3 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_vec_push_get () =
  let v = Vec_int.create () in
  for i = 0 to 99 do
    Vec_int.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec_int.length v);
  for i = 0 to 99 do
    Alcotest.(check int) "get" (i * i) (Vec_int.get v i)
  done

let test_vec_pop_top () =
  let v = Vec_int.of_array [| 1; 2; 3 |] in
  Alcotest.(check int) "top" 3 (Vec_int.top v);
  Alcotest.(check int) "pop" 3 (Vec_int.pop v);
  Alcotest.(check int) "pop" 2 (Vec_int.pop v);
  Alcotest.(check int) "length" 1 (Vec_int.length v)

let test_vec_bounds () =
  let v = Vec_int.of_array [| 1 |] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec_int.get: index out of bounds")
    (fun () -> ignore (Vec_int.get v 1));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec_int.set: index out of bounds")
    (fun () -> Vec_int.set v (-1) 0)

let test_vec_clear_reuse () =
  let v = Vec_int.create ~capacity:2 () in
  Vec_int.push v 1;
  Vec_int.push v 2;
  Vec_int.clear v;
  Alcotest.(check bool) "empty" true (Vec_int.is_empty v);
  Vec_int.push v 9;
  Alcotest.(check (array int)) "contents" [| 9 |] (Vec_int.to_array v)

let test_vec_sort_fold () =
  let v = Vec_int.of_array [| 3; 1; 2 |] in
  Vec_int.sort v;
  Alcotest.(check (array int)) "sorted" [| 1; 2; 3 |] (Vec_int.to_array v);
  Alcotest.(check int) "fold sum" 6 (Vec_int.fold_left ( + ) 0 v)

let test_multiset_inter () =
  let a = Multiset.of_unsorted [| 3; 1; 1; 2 |] in
  let b = Multiset.of_unsorted [| 1; 2; 2; 4 |] in
  Alcotest.(check int) "inter" 2 (Multiset.inter_size a b);
  Alcotest.(check int) "union" 6 (Multiset.union_size a b);
  Alcotest.(check int) "symdiff" 4 (Multiset.symmetric_difference_size a b)

let test_multiset_multiplicity () =
  let a = Multiset.of_unsorted [| 5; 5; 5; 7 |] in
  Alcotest.(check int) "count 5" 3 (Multiset.count a 5);
  Alcotest.(check int) "count 6" 0 (Multiset.count a 6);
  Alcotest.(check bool) "mem" true (Multiset.mem a 7);
  Alcotest.(check bool) "not mem" false (Multiset.mem a 6)

let test_multiset_of_sorted_rejects () =
  Alcotest.check_raises "unsorted input" (Invalid_argument "Multiset.of_sorted: not sorted")
    (fun () -> ignore (Multiset.of_sorted [| 2; 1 |]))

let test_multiset_empty () =
  let e = Multiset.of_unsorted [||] in
  let a = Multiset.of_unsorted [| 1 |] in
  Alcotest.(check int) "inter with empty" 0 (Multiset.inter_size e a);
  Alcotest.(check int) "symdiff with empty" 1 (Multiset.symmetric_difference_size e a)

let prop_multiset_inter_commutes =
  Gen.qtest "multiset intersection commutes"
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (xs, ys) ->
      let a = Multiset.of_unsorted (Array.of_list xs) in
      let b = Multiset.of_unsorted (Array.of_list ys) in
      Multiset.inter_size a b = Multiset.inter_size b a)

let prop_multiset_inter_bounded =
  Gen.qtest "intersection bounded by sizes"
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (xs, ys) ->
      let a = Multiset.of_unsorted (Array.of_list xs) in
      let b = Multiset.of_unsorted (Array.of_list ys) in
      let i = Multiset.inter_size a b in
      i <= Multiset.size a && i <= Multiset.size b)

let test_timer_accumulates () =
  let t = Tsj_util.Timer.create () in
  Alcotest.(check (float 1e-9)) "starts at zero" 0.0 (Tsj_util.Timer.elapsed_s t);
  Tsj_util.Timer.start t;
  let spin = ref 0 in
  for i = 1 to 2_000_000 do
    spin := !spin + i
  done;
  Tsj_util.Timer.stop t;
  let once = Tsj_util.Timer.elapsed_s t in
  Alcotest.(check bool) "positive elapsed" true (once > 0.0);
  (* stopped timer does not accumulate *)
  Alcotest.(check (float 1e-9)) "stable when stopped" once (Tsj_util.Timer.elapsed_s t);
  (* double start/stop are no-ops *)
  Tsj_util.Timer.start t;
  Tsj_util.Timer.start t;
  Tsj_util.Timer.stop t;
  Tsj_util.Timer.stop t;
  Alcotest.(check bool) "second interval adds" true (Tsj_util.Timer.elapsed_s t >= once);
  Tsj_util.Timer.reset t;
  Alcotest.(check (float 1e-9)) "reset" 0.0 (Tsj_util.Timer.elapsed_s t)

let test_timer_time_propagates () =
  let t = Tsj_util.Timer.create () in
  Alcotest.(check int) "returns value" 41 (Tsj_util.Timer.time t (fun () -> 41));
  Alcotest.check_raises "propagates exception" Not_found (fun () ->
      Tsj_util.Timer.time t (fun () -> raise Not_found));
  (* the timer was stopped by the exception path: elapsed stays fixed *)
  let e = Tsj_util.Timer.elapsed_s t in
  Alcotest.(check (float 1e-9)) "stopped after exception" e (Tsj_util.Timer.elapsed_s t)

let test_timer_wall () =
  let v, dt = Tsj_util.Timer.wall (fun () -> 7) in
  Alcotest.(check int) "value" 7 v;
  Alcotest.(check bool) "non-negative" true (dt >= 0.0)

let test_statistics_basic () =
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Statistics.mean [| 1.; 2.; 3.; 4. |]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Statistics.mean [||]);
  let lo, hi = Statistics.min_max [| 3.; -1.; 2. |] in
  Alcotest.(check (float 1e-9)) "min" (-1.) lo;
  Alcotest.(check (float 1e-9)) "max" 3. hi

let test_statistics_percentile () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "median" 50.0 (Statistics.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Statistics.percentile xs 100.0)

let test_statistics_histogram () =
  let h = Statistics.histogram ~bins:2 [| 0.; 1.; 2.; 3. |] in
  Alcotest.(check int) "two bins" 2 (Array.length h);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all counted" 4 total

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng seeds differ" `Quick test_prng_seeds_differ;
    Alcotest.test_case "prng int ranges" `Quick test_prng_int_range;
    Alcotest.test_case "prng uniformity" `Quick test_prng_int_uniformish;
    Alcotest.test_case "prng float range" `Quick test_prng_float_range;
    Alcotest.test_case "prng copy" `Quick test_prng_copy;
    Alcotest.test_case "prng split" `Quick test_prng_split_independent;
    Alcotest.test_case "prng shuffle permutation" `Quick test_prng_shuffle_permutation;
    Alcotest.test_case "vec push/get" `Quick test_vec_push_get;
    Alcotest.test_case "vec pop/top" `Quick test_vec_pop_top;
    Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
    Alcotest.test_case "vec clear/reuse" `Quick test_vec_clear_reuse;
    Alcotest.test_case "vec sort/fold" `Quick test_vec_sort_fold;
    Alcotest.test_case "multiset inter/union" `Quick test_multiset_inter;
    Alcotest.test_case "multiset multiplicity" `Quick test_multiset_multiplicity;
    Alcotest.test_case "multiset of_sorted rejects" `Quick test_multiset_of_sorted_rejects;
    Alcotest.test_case "multiset empty" `Quick test_multiset_empty;
    prop_multiset_inter_commutes;
    prop_multiset_inter_bounded;
    Alcotest.test_case "timer accumulates" `Quick test_timer_accumulates;
    Alcotest.test_case "timer time/exceptions" `Quick test_timer_time_propagates;
    Alcotest.test_case "timer wall" `Quick test_timer_wall;
    Alcotest.test_case "statistics basic" `Quick test_statistics_basic;
    Alcotest.test_case "statistics percentile" `Quick test_statistics_percentile;
    Alcotest.test_case "statistics histogram" `Quick test_statistics_histogram;
  ]
