module Tree = Tsj_tree.Tree
module Bracket = Tsj_tree.Bracket
module Traversal = Tsj_tree.Traversal
module Edit_op = Tsj_tree.Edit_op
module String_edit = Tsj_ted.String_edit
module Zhang_shasha = Tsj_ted.Zhang_shasha
module Naive = Tsj_ted.Naive
module Bounds = Tsj_ted.Bounds
module Ted = Tsj_ted.Ted

let t s = Bracket.of_string_exn s

let arr_of_string s = Array.map Char.code (Array.init (String.length s) (String.get s))

(* --- string edit distance --- *)

let test_sed_known () =
  let check a b expect =
    Alcotest.(check int)
      (Printf.sprintf "sed(%s,%s)" a b)
      expect
      (String_edit.distance (arr_of_string a) (arr_of_string b))
  in
  check "" "" 0;
  check "abc" "" 3;
  check "" "abc" 3;
  check "kitten" "sitting" 3;
  check "flaw" "lawn" 2;
  check "abc" "abc" 0;
  check "abc" "acb" 2

let naive_sed a b =
  let la = Array.length a and lb = Array.length b in
  let d = Array.make_matrix (la + 1) (lb + 1) 0 in
  for i = 0 to la do
    d.(i).(0) <- i
  done;
  for j = 0 to lb do
    d.(0).(j) <- j
  done;
  for i = 1 to la do
    for j = 1 to lb do
      let cost = if a.(i - 1) = b.(j - 1) then 0 else 1 in
      d.(i).(j) <-
        min (min (d.(i - 1).(j) + 1) (d.(i).(j - 1) + 1)) (d.(i - 1).(j - 1) + cost)
    done
  done;
  d.(la).(lb)

let arb_int_arrays =
  QCheck.(
    pair
      (array_of_size Gen.(int_bound 15) (int_bound 4))
      (array_of_size Gen.(int_bound 15) (int_bound 4)))

let prop_sed_matches_naive =
  Gen.qtest "rolling-row sed = naive DP" arb_int_arrays (fun (a, b) ->
      String_edit.distance a b = naive_sed a b)

let prop_sed_banded_consistent =
  Gen.qtest "banded sed consistent with exact" arb_int_arrays (fun (a, b) ->
      let d = String_edit.distance a b in
      let ok = ref true in
      for k = 0 to 8 do
        let bd = String_edit.bounded_distance a b k in
        if d <= k then begin
          if bd <> d then ok := false
        end
        else if bd <> k + 1 then ok := false;
        if String_edit.within a b k <> (d <= k) then ok := false
      done;
      !ok)

let test_sed_banded_negative () =
  Alcotest.(check bool) "within negative" false (String_edit.within [| 1 |] [| 1 |] (-1));
  Alcotest.check_raises "bounded negative"
    (Invalid_argument "String_edit.bounded_distance: negative threshold") (fun () ->
      ignore (String_edit.bounded_distance [| 1 |] [| 1 |] (-1)))

(* --- TED: fixed examples --- *)

let test_ted_identical () =
  let a = t "{a{b{c}}{d}}" in
  Alcotest.(check int) "identical" 0 (Zhang_shasha.distance a a)

let test_ted_single_ops () =
  let check t1 t2 expect name =
    Alcotest.(check int) name expect (Zhang_shasha.distance (t t1) (t t2))
  in
  check "{a}" "{b}" 1 "rename";
  check "{a}" "{a{b}}" 1 "insert leaf";
  check "{a{b}}" "{a}" 1 "delete leaf";
  check "{a{b}{c}}" "{a{m{b}{c}}}" 1 "insert internal";
  check "{a{b}{c}}" "{a{c}{b}}" 2 "swap leaves"

let test_ted_paper_fig3 () =
  (* Figure 3 of the paper: TED(T1, T2) = 3 where T1 = {1{2}{1{3}}} drawn
     as l1 with children l2 and l1(child l3)... the figure's trees are
     binary: T1 = l1(l2, l1(l3)), T2 = l1(l2(l1, l3)). *)
  let t1 = t "{1{2}{1{3}}}" in
  let t2 = t "{1{2{1}{3}}}" in
  Alcotest.(check int) "TED = 3" 3 (Zhang_shasha.distance t1 t2);
  (* and the traversal-string bounds from the same figure *)
  Alcotest.(check int) "preorder sed = 0" 0
    (String_edit.distance (Traversal.preorder_labels t1) (Traversal.preorder_labels t2));
  Alcotest.(check int) "postorder sed = 2" 2
    (String_edit.distance (Traversal.postorder_labels t1) (Traversal.postorder_labels t2))

let test_ted_zs_classic () =
  (* The running example of the Zhang–Shasha paper: distance 2. *)
  let t1 = t "{f{d{a}{c{b}}}{e}}" in
  let t2 = t "{f{c{d{a}{b}}}{e}}" in
  Alcotest.(check int) "zs paper example" 2 (Zhang_shasha.distance t1 t2);
  Alcotest.(check int) "naive agrees" 2 (Naive.distance t1 t2)

let test_ted_empty_vs () =
  let single = t "{a}" in
  let five = t "{a{b}{c}{d}{e}}" in
  Alcotest.(check int) "grow by 4" 4 (Zhang_shasha.distance single five)

(* --- TED: differential and metric properties --- *)

let prop_zs_matches_naive =
  Gen.qtest ~count:150 "Zhang-Shasha = naive forest DP"
    (Gen.arb_tree_pair ~max_size:9 ()) (fun (a, b) ->
      Zhang_shasha.distance a b = Naive.distance a b)

let prop_ted_algorithms_agree =
  Gen.qtest ~count:150 "left/right/hybrid agree" (Gen.arb_tree_pair ~max_size:14 ())
    (fun (a, b) ->
      let pa = Ted.preprocess a and pb = Ted.preprocess b in
      let l = Ted.distance_prep ~algorithm:Ted.Zs_left pa pb in
      let r = Ted.distance_prep ~algorithm:Ted.Zs_right pa pb in
      let h = Ted.distance_prep ~algorithm:Ted.Hybrid pa pb in
      l = r && r = h)

let prop_ted_symmetry =
  Gen.qtest "TED is symmetric" (Gen.arb_tree_pair ~max_size:14 ()) (fun (a, b) ->
      Zhang_shasha.distance a b = Zhang_shasha.distance b a)

let prop_ted_identity =
  Gen.qtest "TED(t,t) = 0 and positivity" (Gen.arb_tree_pair ~max_size:14 ())
    (fun (a, b) ->
      Zhang_shasha.distance a a = 0
      && (Tree.equal a b || Zhang_shasha.distance a b > 0))

let prop_ted_triangle =
  Gen.qtest ~count:100 "triangle inequality" (Gen.arb_tree_triple ~max_size:10 ())
    (fun (a, b, c) ->
      Zhang_shasha.distance a c
      <= Zhang_shasha.distance a b + Zhang_shasha.distance b c)

let prop_ted_edit_script_bound =
  Gen.qtest "TED(t, edits(t)) <= #edits" (Gen.arb_tree_with_edits ~max_edits:4 ())
    (fun (base, ops, result) ->
      Zhang_shasha.distance base result <= List.length ops)

let prop_ted_size_diff =
  Gen.qtest "TED >= size difference" (Gen.arb_tree_pair ~max_size:14 ())
    (fun (a, b) -> Zhang_shasha.distance a b >= abs (Tree.size a - Tree.size b))

let prop_ted_upper_bound =
  Gen.qtest "TED <= size1 + size2" (Gen.arb_tree_pair ~max_size:14 ()) (fun (a, b) ->
      (* delete everything but the root, rename it, insert the rest *)
      Zhang_shasha.distance a b <= Tree.size a + Tree.size b - 1)

(* --- bounds --- *)

let all_bounds =
  [
    ("size", Bounds.size);
    ("label_histogram", Bounds.label_histogram);
    ("degree_histogram", Bounds.degree_histogram);
    ("preorder_string", Bounds.preorder_string);
    ("postorder_string", Bounds.postorder_string);
    ("traversal", Bounds.traversal);
    ("euler_string", Bounds.euler_string);
    ("best", Bounds.best);
  ]

let prop_bounds_are_lower_bounds =
  Gen.qtest ~count:150 "every bound <= TED" (Gen.arb_tree_pair ~max_size:12 ())
    (fun (a, b) ->
      let d = Zhang_shasha.distance a b in
      List.for_all
        (fun (name, f) ->
          let v = f a b in
          if v > d then
            QCheck.Test.fail_reportf "bound %s = %d > TED = %d on %s / %s" name v d
              (Gen.pp_tree a) (Gen.pp_tree b)
          else true)
        all_bounds)

let test_bounds_zero_on_equal () =
  let a = t "{a{b{c}}{d}}" in
  List.iter
    (fun (name, f) -> Alcotest.(check int) (name ^ " on equal trees") 0 (f a a))
    all_bounds

(* --- banded (threshold) TED --- *)

let prop_banded_ted_consistent =
  Gen.qtest ~count:200 "banded TED = min(TED, k+1)" (Gen.arb_tree_pair ~max_size:14 ())
    (fun (a, b) ->
      let exact = Zhang_shasha.distance a b in
      let ok = ref true in
      for k = 0 to 8 do
        if Zhang_shasha.bounded_distance a b k <> min exact (k + 1) then ok := false
      done;
      !ok)

let prop_banded_hybrid_consistent =
  Gen.qtest ~count:100 "banded hybrid/left/right agree" (Gen.arb_tree_pair ~max_size:14 ())
    (fun (a, b) ->
      let pa = Ted.preprocess a and pb = Ted.preprocess b in
      let ok = ref true in
      for k = 0 to 5 do
        let h = Ted.bounded_distance_prep ~algorithm:Ted.Hybrid pa pb k in
        let l = Ted.bounded_distance_prep ~algorithm:Ted.Zs_left pa pb k in
        let r = Ted.bounded_distance_prep ~algorithm:Ted.Zs_right pa pb k in
        if not (h = l && l = r) then ok := false
      done;
      !ok)

let test_banded_validation () =
  let a = t "{a}" in
  Alcotest.check_raises "negative threshold"
    (Invalid_argument "Zhang_shasha.bounded_distance_postorder: negative threshold")
    (fun () -> ignore (Zhang_shasha.bounded_distance a a (-1)))

(* --- constrained edit distance --- *)

module Constrained = Tsj_ted.Constrained

let test_constrained_known () =
  let check t1s t2s expect name =
    Alcotest.(check int) name expect (Constrained.distance (t t1s) (t t2s))
  in
  check "{a}" "{a}" 0 "equal singletons";
  check "{a}" "{b}" 1 "rename";
  check "{a{b}}" "{a}" 1 "delete leaf";
  check "{a{b}{c}}" "{a{m{b}{c}}}" 1 "insert internal (constrained ok)";
  (* The classic separating example: a and b (separate subtrees of f) both
     map under the single new child g — forbidden for constrained
     mappings, so the constrained distance exceeds TED = 1. *)
  check "{f{a}{b}{c}}" "{f{g{a}{b}}{c}}" 3 "isolated-subtree violation";
  Alcotest.(check int) "its TED is 1" 1
    (Zhang_shasha.distance (t "{f{a}{b}{c}}") (t "{f{g{a}{b}}{c}}"))

let test_constrained_within () =
  let a = t "{f{a}{b}{c}}" and b = t "{f{g{a}{b}}{c}}" in
  Alcotest.(check bool) "within 3" true (Constrained.within a b 3);
  Alcotest.(check bool) "not within 2" false (Constrained.within a b 2);
  Alcotest.(check bool) "negative" false (Constrained.within a b (-1))

let prop_constrained_upper_bounds_ted =
  Gen.qtest ~count:200 "TED <= constrained distance" (Gen.arb_tree_pair ~max_size:12 ())
    (fun (x, y) -> Zhang_shasha.distance x y <= Constrained.distance x y)

let prop_constrained_metric =
  Gen.qtest ~count:120 "constrained distance is a metric"
    (Gen.arb_tree_triple ~max_size:10 ()) (fun (x, y, z) ->
      let d = Constrained.distance in
      d x x = 0
      && d x y = d y x
      && (Tree.equal x y || d x y > 0)
      && d x z <= d x y + d y z)

let prop_constrained_often_equals_ted =
  (* Not a theorem, but on small random trees the two coincide almost
     always; guard against systematic overestimation by requiring
     coincidence in at least half the samples. *)
  Gen.qtest ~count:1 "constrained ~ TED on random pairs"
    (QCheck.make ~print:(fun () -> "batch") (fun _ -> ()))
    (fun () ->
      let rng = Tsj_util.Prng.create 4242 in
      let equal_count = ref 0 in
      let total = 200 in
      for _ = 1 to total do
        let x = Gen.random_tree rng (1 + Tsj_util.Prng.int rng 10) in
        let y = Gen.random_tree rng (1 + Tsj_util.Prng.int rng 10) in
        if Constrained.distance x y = Zhang_shasha.distance x y then incr equal_count
      done;
      !equal_count * 2 >= total)

let prop_constrained_size_bounds =
  Gen.qtest "constrained distance bounded by sizes" (Gen.arb_tree_pair ~max_size:14 ())
    (fun (x, y) ->
      let d = Constrained.distance x y in
      d >= abs (Tree.size x - Tree.size y) && d <= Tree.size x + Tree.size y)

(* --- Ted facade --- *)

let test_ted_within () =
  let pa = Ted.preprocess (t "{a{b}{c}}") in
  let pb = Ted.preprocess (t "{a{b}{c}{d}{e}}") in
  Alcotest.(check bool) "tau 1" false (Ted.within pa pb 1);
  Alcotest.(check bool) "tau 2" true (Ted.within pa pb 2);
  Alcotest.(check bool) "negative tau" false (Ted.within pa pa (-1));
  Alcotest.(check bool) "tau 0 self" true (Ted.within pa pa 0)

let test_ted_prep_accessors () =
  let tree = t "{a{b}}" in
  let p = Ted.preprocess tree in
  Alcotest.(check int) "size" 2 (Ted.size p);
  Alcotest.(check bool) "tree" true (Tree.equal tree (Ted.tree p))

let test_ted_naive_algorithm_facade () =
  let a = t "{a{b{x}}{c}}" and b = t "{a{c{x}}{b}}" in
  Alcotest.(check int) "facade naive = zs"
    (Ted.distance ~algorithm:Ted.Naive a b)
    (Ted.distance a b)

let suite =
  [
    Alcotest.test_case "sed known values" `Quick test_sed_known;
    prop_sed_matches_naive;
    prop_sed_banded_consistent;
    Alcotest.test_case "sed negative thresholds" `Quick test_sed_banded_negative;
    Alcotest.test_case "ted identical" `Quick test_ted_identical;
    Alcotest.test_case "ted single ops" `Quick test_ted_single_ops;
    Alcotest.test_case "ted paper fig. 3" `Quick test_ted_paper_fig3;
    Alcotest.test_case "ted zhang-shasha classic" `Quick test_ted_zs_classic;
    Alcotest.test_case "ted growth" `Quick test_ted_empty_vs;
    prop_zs_matches_naive;
    prop_ted_algorithms_agree;
    prop_ted_symmetry;
    prop_ted_identity;
    prop_ted_triangle;
    prop_ted_edit_script_bound;
    prop_ted_size_diff;
    prop_ted_upper_bound;
    prop_bounds_are_lower_bounds;
    Alcotest.test_case "bounds zero on equal" `Quick test_bounds_zero_on_equal;
    prop_banded_ted_consistent;
    prop_banded_hybrid_consistent;
    Alcotest.test_case "banded validation" `Quick test_banded_validation;
    Alcotest.test_case "constrained known values" `Quick test_constrained_known;
    Alcotest.test_case "constrained within" `Quick test_constrained_within;
    prop_constrained_upper_bounds_ted;
    prop_constrained_metric;
    prop_constrained_often_equals_ted;
    prop_constrained_size_bounds;
    Alcotest.test_case "ted within" `Quick test_ted_within;
    Alcotest.test_case "ted prep accessors" `Quick test_ted_prep_accessors;
    Alcotest.test_case "ted naive facade" `Quick test_ted_naive_algorithm_facade;
  ]
