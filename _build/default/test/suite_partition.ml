module Tree = Tsj_tree.Tree
module Bracket = Tsj_tree.Bracket
module Binary_tree = Tsj_tree.Binary_tree
module Edit_op = Tsj_tree.Edit_op
module Prng = Tsj_util.Prng
module Partition = Tsj_core.Partition
module Subgraph = Tsj_core.Subgraph
module Two_layer_index = Tsj_core.Two_layer_index

let t s = Bracket.of_string_exn s

let bt s = Binary_tree.of_tree (t s)

(* --- partitionable / max_min_size --- *)

let test_partitionable_chain () =
  (* A 6-node chain: LC-RS keeps it a chain of left children. *)
  let b = bt "{a{b{c{d{e{f}}}}}}" in
  Alcotest.(check bool) "(2,3)" true (Partition.partitionable b ~delta:2 ~gamma:3);
  Alcotest.(check bool) "(3,2)" true (Partition.partitionable b ~delta:3 ~gamma:2);
  Alcotest.(check bool) "(2,4)" false (Partition.partitionable b ~delta:2 ~gamma:4);
  Alcotest.(check bool) "(6,1)" true (Partition.partitionable b ~delta:6 ~gamma:1);
  Alcotest.(check bool) "(7,1)" false (Partition.partitionable b ~delta:7 ~gamma:1)

let test_partitionable_star () =
  (* A root with 5 leaf children: LC-RS is root with a left-child chain of
     5 siblings.  Still a 6-node binary tree. *)
  let b = bt "{a{b}{c}{d}{e}{f}}" in
  Alcotest.(check bool) "(3,2)" true (Partition.partitionable b ~delta:3 ~gamma:2);
  Alcotest.(check bool) "(2,3)" true (Partition.partitionable b ~delta:2 ~gamma:3)

let test_partitionable_args () =
  let b = bt "{a{b}}" in
  Alcotest.check_raises "delta 0" (Invalid_argument "Partition.partitionable: delta must be >= 1")
    (fun () -> ignore (Partition.partitionable b ~delta:0 ~gamma:1));
  Alcotest.check_raises "gamma 0" (Invalid_argument "Partition.partitionable: gamma must be >= 1")
    (fun () -> ignore (Partition.partitionable b ~delta:1 ~gamma:0))

let test_paper_unbalanced_example () =
  (* Section 3.3's motivating observation, scaled down: a binary tree made
     of a root joining two size-s branches through single connectors can
     never be split into 3 components of n/3 each; MaxMinSize finds the
     best achievable γ, which is at most s. *)
  let chain n seed =
    let rng = Prng.create seed in
    Gen.random_tree rng n
  in
  ignore chain;
  (* Build the Figure 8 shape directly: root ℓj with left subtree s4-ish
     and a child ℓi holding two size-5 chains; sizes: 5+5+5+2 = 17. *)
  let block p = Printf.sprintf "{%s1{%s2{%s3{%s4{%s5}}}}}" p p p p p in
  let tree_s =
    Printf.sprintf "{j%s{i%s%s}}" (block "a") (block "b") (block "c")
  in
  let b = bt tree_s in
  Alcotest.(check int) "17 nodes" 17 b.Binary_tree.size;
  let gamma = Partition.max_min_size b ~delta:3 in
  Alcotest.(check bool) "gamma at most 17/3" true (gamma <= 5);
  Alcotest.(check bool) "gamma feasible" true
    (Partition.partitionable b ~delta:3 ~gamma);
  Alcotest.(check bool) "gamma maximal" true
    (gamma = 17 / 3 || not (Partition.partitionable b ~delta:3 ~gamma:(gamma + 1)))

let test_max_min_size_small () =
  let b = bt "{a}" in
  Alcotest.(check int) "delta 1 on single node" 1 (Partition.max_min_size b ~delta:1);
  Alcotest.check_raises "delta too big"
    (Invalid_argument "Partition.max_min_size: tree of 1 nodes has no 2-partitioning")
    (fun () -> ignore (Partition.max_min_size b ~delta:2))

(* Brute force: try all (delta-1)-subsets of edges; the best achievable
   minimum component size.  Components of a cut-edge set are exactly what
   Partition.of_cut_roots computes, so rebuild them independently here. *)
let brute_force_max_min (b : Binary_tree.t) ~delta =
  let n = b.Binary_tree.size in
  let best = ref 0 in
  let edges = Array.init (n - 1) (fun i -> i) in
  let rec choose start chosen k =
    if k = 0 then begin
      (* component root of v: nearest cut-or-tree-root ancestor *)
      let cut = Array.make n false in
      List.iter (fun c -> cut.(c) <- true) chosen;
      let comp_root = Array.make n (-1) in
      for v = n - 1 downto 0 do
        if v = n - 1 || cut.(v) then comp_root.(v) <- v
      done;
      (* nodes in descending order: parents have larger ids *)
      for v = n - 2 downto 0 do
        if comp_root.(v) < 0 then comp_root.(v) <- comp_root.(b.Binary_tree.parent.(v))
      done;
      let sizes = Hashtbl.create 8 in
      Array.iter
        (fun r ->
          Hashtbl.replace sizes r (1 + Option.value ~default:0 (Hashtbl.find_opt sizes r)))
        comp_root;
      let min_size = Hashtbl.fold (fun _ s acc -> min s acc) sizes max_int in
      if min_size > !best then best := min_size
    end
    else
      for i = start to n - 2 do
        choose (i + 1) (edges.(i) :: chosen) (k - 1)
      done
  in
  choose 0 [] (delta - 1);
  !best

let prop_max_min_size_matches_brute_force =
  Gen.qtest ~count:80 "MaxMinSize = brute force" (Gen.arb_tree ~max_size:9 ())
    (fun x ->
      let b = Binary_tree.of_tree x in
      let ok = ref true in
      List.iter
        (fun delta ->
          if b.Binary_tree.size >= delta then begin
            let fast = Partition.max_min_size b ~delta in
            let brute = brute_force_max_min b ~delta in
            if fast <> brute then begin
              ok := false;
              Printf.eprintf "delta=%d fast=%d brute=%d tree=%s\n" delta fast brute
                (Gen.pp_tree x)
            end
          end)
        [ 1; 2; 3; 4 ];
      !ok)

(* --- partition extraction invariants --- *)

let check_partition_invariants ?(expect_gamma = true) (p : Partition.t) =
  let b = p.Partition.btree in
  let n = b.Binary_tree.size in
  let delta = p.Partition.delta in
  (* assignment total and within range *)
  Array.iter (fun k -> assert (k >= 0 && k < delta)) p.Partition.assignment;
  (* roots strictly increasing, last = tree root, assigned to own component *)
  Array.iteri
    (fun k r ->
      assert (p.Partition.assignment.(r) = k);
      if k > 0 then assert (r > p.Partition.roots.(k - 1)))
    p.Partition.roots;
  assert (p.Partition.roots.(delta - 1) = n - 1);
  (* sizes >= gamma *)
  let sizes = Partition.component_sizes p in
  Array.iter (fun s -> assert (s >= 1)) sizes;
  if expect_gamma then Array.iter (fun s -> assert (s >= p.Partition.gamma)) sizes;
  assert (Array.fold_left ( + ) 0 sizes = n);
  (* connectivity: every non-root component member's parent is in the same
     component *)
  for v = 0 to n - 1 do
    let k = p.Partition.assignment.(v) in
    if v <> p.Partition.roots.(k) then
      assert (p.Partition.assignment.(b.Binary_tree.parent.(v)) = k)
  done;
  (* exactly delta - 1 bridging edges *)
  assert (List.length (Partition.bridging_edges p) = delta - 1)

let prop_partition_invariants =
  Gen.qtest ~count:150 "balanced partition invariants" (Gen.arb_tree ~max_size:40 ())
    (fun x ->
      let b = Binary_tree.of_tree x in
      List.iter
        (fun tau ->
          let delta = (2 * tau) + 1 in
          if b.Binary_tree.size >= delta then begin
            let p = Partition.partition b ~delta in
            check_partition_invariants p;
            assert (p.Partition.gamma = Partition.max_min_size b ~delta)
          end)
        [ 0; 1; 2; 3 ];
      true)

let prop_random_partition_invariants =
  Gen.qtest ~count:150 "random partition invariants" (Gen.arb_tree ~max_size:40 ())
    (fun x ->
      let b = Binary_tree.of_tree x in
      let rng = Prng.create (Tree.hash x land 0xFFFFF) in
      List.iter
        (fun delta ->
          if b.Binary_tree.size >= delta then
            check_partition_invariants ~expect_gamma:false
              (Partition.random_partition rng b ~delta))
        [ 1; 2; 3; 5; 7 ];
      true)

let test_partition_delta_one () =
  let b = bt "{a{b}{c}}" in
  let p = Partition.partition b ~delta:1 in
  Alcotest.(check int) "one component" 1 p.Partition.delta;
  Alcotest.(check (array int)) "all in component 0" [| 0; 0; 0 |] p.Partition.assignment;
  Alcotest.(check int) "no bridging edges" 0 (List.length (Partition.bridging_edges p))

(* --- subgraphs and matching --- *)

let test_subgraph_self_match () =
  let b = bt "{a{b{c{d}{e}}}{f}{g{h{i{j}}}}}" in
  let p = Partition.partition b ~delta:3 in
  let subs = Subgraph.of_partition ~tree_id:0 p in
  Array.iter
    (fun s ->
      Alcotest.(check bool) "matches own root" true
        (Subgraph.matches s b s.Subgraph.root);
      Alcotest.(check bool) "occurs in own tree" true (Subgraph.occurs_in s b))
    subs

let test_subgraph_ranks_and_keys () =
  let b = bt "{a{b{c{d}{e}}}{f}{g{h{i{j}}}}}" in
  let p = Partition.partition b ~delta:3 in
  let subs = Subgraph.of_partition ~tree_id:7 p in
  Alcotest.(check int) "three subgraphs" 3 (Array.length subs);
  Array.iteri
    (fun k s ->
      Alcotest.(check int) "rank" (k + 1) s.Subgraph.rank;
      Alcotest.(check int) "tree_id" 7 s.Subgraph.tree_id;
      Alcotest.(check int) "tree_size" 10 s.Subgraph.tree_size;
      let l, _, _ = Subgraph.label_key s in
      Alcotest.(check int) "key root label" b.Binary_tree.label.(s.Subgraph.root) l)
    subs;
  Alcotest.(check int) "last subgraph rooted at tree root"
    (Binary_tree.root b)
    subs.(2).Subgraph.root

let test_subgraph_no_match_on_label_change () =
  let base = t "{a{b{c{d}{e}}}{f}{g{h{i{j}}}}}" in
  let b = Binary_tree.of_tree base in
  let p = Partition.partition b ~delta:3 in
  let subs = Subgraph.of_partition ~tree_id:0 p in
  (* Rename every node in turn; the subgraph containing the renamed node
     must stop occurring (fresh label not present anywhere else). *)
  let fresh = Tsj_tree.Label.intern "zz-not-elsewhere" in
  for v_general = 0 to Tree.size base - 1 do
    let changed = Edit_op.apply base (Edit_op.Rename { node = v_general; label = fresh }) in
    let cb = Binary_tree.of_tree changed in
    let occur_count =
      Array.fold_left (fun acc s -> acc + if Subgraph.occurs_in s cb then 1 else 0) 0 subs
    in
    (* at least delta - 1 = 2 subgraphs must still occur (Lemma 1: one
       rename changes at most 1 subgraph here) *)
    Alcotest.(check bool) "at most one subgraph lost" true (occur_count >= 2)
  done

(* Lemma 2, the core filter guarantee: if TED(T, T') <= tau then some
   subgraph of any (2tau+1)-partitioning of T's binary form occurs in T''s
   binary form. *)
let lemma2_check ~partitioner (x, ops, x') =
  let tau = List.length ops in
  let delta = (2 * tau) + 1 in
  let b = Binary_tree.of_tree x in
  if b.Binary_tree.size < delta then true
  else begin
    let p = partitioner b ~delta in
    let subs = Subgraph.of_partition ~tree_id:0 p in
    let b' = Binary_tree.of_tree x' in
    Array.exists (fun s -> Subgraph.occurs_in s b') subs
  end

let prop_lemma2_balanced =
  Gen.qtest ~count:400 "Lemma 2 (balanced partitioning)"
    (Gen.arb_tree_with_edits ~max_size:30 ~max_edits:3 ())
    (lemma2_check ~partitioner:Partition.partition)

let prop_lemma2_random =
  Gen.qtest ~count:400 "Lemma 2 (random partitioning)"
    (Gen.arb_tree_with_edits ~max_size:30 ~max_edits:3 ())
    (fun input ->
      let rng = Prng.create 99 in
      lemma2_check ~partitioner:(fun b ~delta -> Partition.random_partition rng b ~delta)
        input)

(* Index completeness: probing T' through the two-layer index must
   rediscover T whenever TED(T, T') <= tau — this exercises the postorder
   windows and the twig keys on top of Lemma 2. *)
let index_completeness_check (x, ops, x') =
  let tau = List.length ops in
  let delta = (2 * tau) + 1 in
  (* The join always indexes the smaller tree and probes with the larger
     one (trees are processed in ascending size order); mirror that. *)
  let x, x' = if Tree.size x <= Tree.size x' then (x, x') else (x', x) in
  let b = Binary_tree.of_tree x in
  let b' = Binary_tree.of_tree x' in
  if b.Binary_tree.size < delta then true
  else begin
    let p = Partition.partition b ~delta in
    let idx = Two_layer_index.create ~tau () in
    Array.iter (Two_layer_index.insert idx) (Subgraph.of_partition ~tree_id:42 p);
    let found = ref false in
    for v = 0 to b'.Binary_tree.size - 1 do
      Two_layer_index.probe idx b' v (fun s ->
          if (not !found) && Subgraph.matches s b' v then found := true)
    done;
    !found
  end

let prop_index_completeness =
  Gen.qtest ~count:400 "two-layer index completeness"
    (Gen.arb_tree_with_edits ~max_size:30 ~max_edits:3 ())
    index_completeness_check

(* Pinned counterexample to the paper's rank-tightened postorder windows
   (Section 3.4): [large] is [small] plus ONE insertion (TED = 1), yet no
   subgraph of the balanced 3-partitioning of [small] is found inside
   [large] when subgraph s_k is only registered under positions
   p_k ± (tau - floor(k/2)).  The insertion adopts most of the root's
   children, landing after the untouched subgraphs in postorder and
   shifting their end-relative positions past the k >= 2 windows, while
   the rank-1 subgraph (whose window would be wide enough) is exactly the
   changed one.  The sound two-sided default finds the pair.  A randomized
   hunt reproduces this class of failure roughly 100 times per million
   random (tree, script) draws. *)
let test_paper_rank_windows_incomplete () =
  let small = t "{h3{h0}{h3{h2}{h1}}{h1{h3}}{h3{h3}{h5}{h0}{h0}{h1}}{h2}{h4}{h2}}" in
  let large = t "{h3{h0{h0}{h3{h2}{h1}}{h1{h3}}{h3{h3}{h5}{h0}{h0}{h1}}{h2}{h4}}{h2}}" in
  let tau = 1 in
  Alcotest.(check int) "TED is 1" 1 (Tsj_ted.Zhang_shasha.distance small large);
  let b = Binary_tree.of_tree small and b' = Binary_tree.of_tree large in
  let p = Partition.partition b ~delta:((2 * tau) + 1) in
  let subs = Subgraph.of_partition ~tree_id:0 p in
  let probe_finds mode =
    let idx = Two_layer_index.create ~mode ~tau () in
    Array.iter (Two_layer_index.insert idx) subs;
    let found = ref false in
    for v = 0 to b'.Binary_tree.size - 1 do
      Two_layer_index.probe idx b' v (fun s ->
          if (not !found) && Subgraph.matches s b' v then found := true)
    done;
    !found
  in
  (* Lemma 2 itself holds: a subgraph does occur... *)
  Alcotest.(check bool) "some subgraph occurs" true
    (Array.exists (fun s -> Subgraph.occurs_in s b') subs);
  (* ...the sound windows find it... *)
  Alcotest.(check bool) "two-sided finds it" true
    (probe_finds Two_layer_index.Two_sided);
  (* ...and the paper's windows do not. *)
  Alcotest.(check bool) "paper windows miss it" false
    (probe_finds Two_layer_index.Paper_rank)

(* Pinned regression for DESIGN.md finding 3: deleting the second child
   of the root (postorder 5, the inner l5) splices its three children into
   the root, which moves l6 into the deleted node's sibling-chain slot and
   flips l6's incoming-edge category from left to right.  Under the
   paper's kind-strict matching that deletion touches THREE subgraphs of
   the 3-partitioning — one per component — so no subgraph of [base]
   occurred in [result] and the tau = 1 join missed the pair.  The relaxed
   root check (incoming-edge existence only) must find it. *)
let test_lemma1_deletion_regression () =
  let base = t "{l1{l2}{l5{l6{l1}}{l5}{l0}}{l7}{l0}}" in
  let result = Edit_op.apply base (Edit_op.Delete { node = 5 }) in
  Alcotest.(check bool) "expected shape" true
    (Tree.equal result (t "{l1{l2}{l6{l1}}{l5}{l0}{l7}{l0}}"));
  Alcotest.(check int) "TED 1" 1 (Tsj_ted.Zhang_shasha.distance base result);
  let b = Binary_tree.of_tree base in
  let p = Partition.partition b ~delta:3 in
  let subs = Subgraph.of_partition ~tree_id:0 p in
  let b' = Binary_tree.of_tree result in
  Alcotest.(check bool) "Lemma 2 holds under relaxed matching" true
    (Array.exists (fun s -> Subgraph.occurs_in s b') subs);
  let out = Tsj_core.Partsj.join ~trees:[| base; result |] ~tau:1 () in
  Alcotest.(check int) "join finds the pair" 1
    out.Tsj_join.Types.stats.Tsj_join.Types.n_results

let test_index_counters () =
  let b = bt "{a{b{c{d}{e}}}{f}{g{h{i{j}}}}}" in
  let p = Partition.partition b ~delta:3 in
  let idx = Two_layer_index.create ~tau:1 () in
  Array.iter (Two_layer_index.insert idx) (Subgraph.of_partition ~tree_id:0 p);
  Alcotest.(check int) "three subgraphs" 3 (Two_layer_index.n_subgraphs idx);
  Alcotest.(check bool) "buckets exist" true (Two_layer_index.n_groups idx >= 3)

let test_index_rejects_negative_tau () =
  Alcotest.check_raises "negative tau"
    (Invalid_argument "Two_layer_index.create: negative threshold") (fun () ->
      ignore (Two_layer_index.create ~tau:(-1) ()))

let test_index_exact_duplicate_found () =
  (* tau = 0: only exact matches; a duplicate tree must be found, a
     renamed one must not produce any matching probe. *)
  let x = t "{a{b{c}}{d}}" in
  let b = Binary_tree.of_tree x in
  let p = Partition.partition b ~delta:1 in
  let idx = Two_layer_index.create ~tau:0 () in
  Array.iter (Two_layer_index.insert idx) (Subgraph.of_partition ~tree_id:5 p);
  let probe_matches target =
    let tb = Binary_tree.of_tree target in
    let found = ref false in
    for v = 0 to tb.Binary_tree.size - 1 do
      Two_layer_index.probe idx tb v (fun s ->
          if Subgraph.matches s tb v then found := true)
    done;
    !found
  in
  Alcotest.(check bool) "duplicate found" true (probe_matches (t "{a{b{c}}{d}}"));
  Alcotest.(check bool) "different tree not matched" false
    (probe_matches (t "{a{b{x}}{d}}"))

let suite =
  [
    Alcotest.test_case "partitionable chain" `Quick test_partitionable_chain;
    Alcotest.test_case "partitionable star" `Quick test_partitionable_star;
    Alcotest.test_case "partitionable arg checks" `Quick test_partitionable_args;
    Alcotest.test_case "paper fig. 8 imbalance" `Quick test_paper_unbalanced_example;
    Alcotest.test_case "max_min_size small trees" `Quick test_max_min_size_small;
    prop_max_min_size_matches_brute_force;
    prop_partition_invariants;
    prop_random_partition_invariants;
    Alcotest.test_case "partition delta=1" `Quick test_partition_delta_one;
    Alcotest.test_case "subgraph self match" `Quick test_subgraph_self_match;
    Alcotest.test_case "subgraph ranks and keys" `Quick test_subgraph_ranks_and_keys;
    Alcotest.test_case "subgraph rename sensitivity" `Quick test_subgraph_no_match_on_label_change;
    prop_lemma2_balanced;
    prop_lemma2_random;
    prop_index_completeness;
    Alcotest.test_case "paper rank windows incomplete (pinned)" `Quick
      test_paper_rank_windows_incomplete;
    Alcotest.test_case "lemma 1 deletion fix (pinned)" `Quick
      test_lemma1_deletion_regression;
    Alcotest.test_case "index counters" `Quick test_index_counters;
    Alcotest.test_case "index rejects negative tau" `Quick test_index_rejects_negative_tau;
    Alcotest.test_case "index exact duplicates (tau=0)" `Quick test_index_exact_duplicate_found;
  ]
