(* Tests for the Penn-Treebank s-expression format and the DOT export. *)

module Tree = Tsj_tree.Tree
module Label = Tsj_tree.Label
module Bracket = Tsj_tree.Bracket
module Sexp_format = Tsj_tree.Sexp_format
module Dot = Tsj_tree.Dot

let tree = Alcotest.testable (Fmt.of_to_string Bracket.to_string) Tree.equal

let t s = Bracket.of_string_exn s

let test_sexp_basic () =
  let parsed = Sexp_format.of_string_exn "(S (NP (DT the) (NN cat)) (VP (VBZ sits)))" in
  Alcotest.check tree "structure"
    (t "{S{NP{DT{the}}{NN{cat}}}{VP{VBZ{sits}}}}")
    parsed

let test_sexp_drop_words () =
  let parsed =
    Sexp_format.of_string_exn ~drop_words:true "(S (NP (DT the) (NN cat)) (VP (VBZ sits)))"
  in
  Alcotest.check tree "tags only" (t "{S{NP{DT}{NN}}{VP{VBZ}}}") parsed

let test_sexp_ptb_wrapper () =
  let parsed = Sexp_format.of_string_exn "( (S (NP x) (VP y)) )" in
  Alcotest.check tree "unwrapped" (t "{S{NP{x}}{VP{y}}}") parsed

let test_sexp_forest () =
  match Sexp_format.forest_of_string "(A x) (B (C y))" with
  | Ok [ a; b ] ->
    Alcotest.check tree "first" (t "{A{x}}") a;
    Alcotest.check tree "second" (t "{B{C{y}}}") b
  | Ok l -> Alcotest.failf "expected 2 trees, got %d" (List.length l)
  | Error e -> Alcotest.fail e

let test_sexp_errors () =
  let bad input =
    match Sexp_format.of_string input with
    | Ok _ -> Alcotest.failf "expected error on %S" input
    | Error _ -> ()
  in
  List.iter bad [ ""; "("; "(A"; "(A x) y"; "( (A) (B) )"; "()" ]

let test_sexp_print_roundtrip () =
  let cases = [ "(S (NP (DT the)) (VP run))"; "(A x y z)"; "leaf" ] in
  List.iter
    (fun s ->
      let parsed = Sexp_format.of_string_exn s in
      let printed = Sexp_format.to_string parsed in
      Alcotest.check tree ("roundtrip " ^ s) parsed (Sexp_format.of_string_exn printed))
    cases

let prop_sexp_roundtrip =
  (* Random trees have label characters outside the token alphabet only if
     we put them there; the Gen alphabet (l0..l7) is token-safe. *)
  Gen.qtest "sexp roundtrip on random trees" (Gen.arb_tree ~max_size:25 ())
    (fun x ->
      Tree.equal x (Sexp_format.of_string_exn (Sexp_format.to_string x)))

let test_sexp_file_roundtrip () =
  let path = Filename.temp_file "tsj" ".mrg" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc "( (S (NP a) (VP b)) )\n( (S (NP c)) )\n");
  (match Sexp_format.load_file path with
  | Ok [ a; b ] ->
    Alcotest.check tree "first" (t "{S{NP{a}}{VP{b}}}") a;
    Alcotest.check tree "second" (t "{S{NP{c}}}") b
  | Ok l -> Alcotest.failf "expected 2, got %d" (List.length l)
  | Error e -> Alcotest.fail e);
  Sys.remove path

let contains haystack needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length haystack && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

let test_dot_tree () =
  let s = Dot.of_tree (t "{a{b}{c}}") in
  Alcotest.(check bool) "digraph" true (contains s "digraph");
  Alcotest.(check bool) "has labels" true (contains s "label=\"a\"" && contains s "label=\"b\"");
  Alcotest.(check bool) "has edges" true (contains s "n2 -> n0" || contains s "n0 -> n1")

let test_dot_escaping () =
  let weird = Tree.leaf (Label.intern "say \"hi\"\nok") in
  let s = Dot.of_tree weird in
  Alcotest.(check bool) "escaped quote" true (contains s "\\\"hi\\\"");
  Alcotest.(check bool) "escaped newline" true (contains s "\\n")

let test_dot_binary_and_partition () =
  let b = Tsj_tree.Binary_tree.of_tree (t "{a{b{c}}{d}{e}}") in
  let s = Dot.of_binary b in
  Alcotest.(check bool) "dashed sibling edges" true (contains s "style=dashed");
  let p = Tsj_core.Partition.partition b ~delta:3 in
  let s = Dot.of_partition b ~assignment:p.Tsj_core.Partition.assignment in
  Alcotest.(check bool) "bridging edges red" true (contains s "color=red");
  Alcotest.(check bool) "filled components" true (contains s "fillcolor");
  Alcotest.check_raises "length check"
    (Invalid_argument "Dot.of_partition: assignment length mismatch") (fun () ->
      ignore (Dot.of_partition b ~assignment:[| 0 |]))

let suite =
  [
    Alcotest.test_case "sexp basic" `Quick test_sexp_basic;
    Alcotest.test_case "sexp drop_words" `Quick test_sexp_drop_words;
    Alcotest.test_case "sexp PTB wrapper" `Quick test_sexp_ptb_wrapper;
    Alcotest.test_case "sexp forest" `Quick test_sexp_forest;
    Alcotest.test_case "sexp errors" `Quick test_sexp_errors;
    Alcotest.test_case "sexp print roundtrip" `Quick test_sexp_print_roundtrip;
    prop_sexp_roundtrip;
    Alcotest.test_case "sexp file roundtrip" `Quick test_sexp_file_roundtrip;
    Alcotest.test_case "dot tree" `Quick test_dot_tree;
    Alcotest.test_case "dot escaping" `Quick test_dot_escaping;
    Alcotest.test_case "dot binary/partition" `Quick test_dot_binary_and_partition;
  ]
