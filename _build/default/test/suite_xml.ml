module Xml = Tsj_xml.Xml
module Xml_parser = Tsj_xml.Xml_parser
module Tree = Tsj_tree.Tree
module Label = Tsj_tree.Label

let parse = Xml_parser.parse_exn

let check_roundtrip name doc =
  let s = Xml.to_string doc in
  let reparsed = parse s in
  Alcotest.(check string) name s (Xml.to_string reparsed)

let test_parse_element () =
  match parse "<a><b/><c>text</c></a>" with
  | Xml.Element { tag = "a"; attrs = []; children = [ Xml.Element b; Xml.Element c ] } ->
    Alcotest.(check string) "b" "b" b.tag;
    Alcotest.(check string) "c" "c" c.tag;
    (match c.children with
    | [ Xml.Text "text" ] -> ()
    | _ -> Alcotest.fail "expected text child")
  | _ -> Alcotest.fail "unexpected structure"

let test_parse_attributes () =
  match parse {|<item id="42" name='x y' flag="a&amp;b"/>|} with
  | Xml.Element { attrs; _ } ->
    Alcotest.(check (list (pair string string)))
      "attrs"
      [ ("id", "42"); ("name", "x y"); ("flag", "a&b") ]
      attrs
  | _ -> Alcotest.fail "expected element"

let test_parse_entities () =
  match parse "<t>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</t>" with
  | Xml.Element { children = [ Xml.Text s ]; _ } ->
    Alcotest.(check string) "decoded" "<>&\"'AB" s
  | _ -> Alcotest.fail "expected one text child"

let test_parse_utf8_charref () =
  match parse "<t>&#233;&#x20AC;</t>" with
  | Xml.Element { children = [ Xml.Text s ]; _ } ->
    Alcotest.(check string) "utf8 encoded" "\xc3\xa9\xe2\x82\xac" s
  | _ -> Alcotest.fail "expected one text child"

let test_parse_cdata_comments_pi () =
  let doc =
    parse
      "<?xml version=\"1.0\"?><!-- prolog --><root><!-- inner --><![CDATA[<raw> & \
       stuff]]><a/></root>"
  in
  match doc with
  | Xml.Element { tag = "root"; children = [ Xml.Text cdata; Xml.Element a ]; _ } ->
    Alcotest.(check string) "cdata" "<raw> & stuff" cdata;
    Alcotest.(check string) "a" "a" a.tag
  | _ -> Alcotest.fail "unexpected structure"

let test_parse_doctype_skipped () =
  match parse "<!DOCTYPE html><html><body/></html>" with
  | Xml.Element { tag = "html"; _ } -> ()
  | _ -> Alcotest.fail "expected html root"

let test_parse_errors () =
  let bad input =
    match Xml_parser.parse input with
    | Ok _ -> Alcotest.failf "expected error on %S" input
    | Error _ -> ()
  in
  List.iter bad
    [
      "";
      "<a>";
      "<a></b>";
      "<a><b></a></b>";
      "<a attr=5/>";
      "<a>&unknown;</a>";
      "<a>&#xZZ;</a>";
      "<1tag/>";
      "<a/><b/>";
      "text only";
      "<a attr=\"x>";
    ]

let test_parse_fragments () =
  match Xml_parser.parse_fragments "<a/> <b>t</b>\n<c x='1'/>" with
  | Ok [ Xml.Element a; Xml.Element b; Xml.Element c ] ->
    Alcotest.(check (list string)) "tags" [ "a"; "b"; "c" ] [ a.tag; b.tag; c.tag ]
  | Ok l -> Alcotest.failf "expected 3 fragments, got %d" (List.length l)
  | Error e -> Alcotest.fail e

let test_serialize_escaping () =
  let doc =
    Xml.Element
      {
        tag = "t";
        attrs = [ ("a", "x\"y<z&") ];
        children = [ Xml.Text "a<b>c&d" ];
      }
  in
  check_roundtrip "escaping survives roundtrip" doc;
  let s = Xml.to_string doc in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "text < escaped" true (contains "a&lt;b");
  Alcotest.(check bool) "text & escaped" true (contains "c&amp;d");
  Alcotest.(check bool) "attr quote escaped" true (contains "&quot;")

let test_to_tree_basic () =
  let doc = parse "<album><title>X</title><year>1969</year></album>" in
  let tree = Xml.to_tree doc in
  Alcotest.(check string) "root label" "album" (Label.name tree.Tree.label);
  Alcotest.(check int) "size: album,title,X,year,1969" 5 (Tree.size tree)

let test_to_tree_drop_text () =
  let doc = parse "<a><b>hello</b><c/></a>" in
  let with_text = Xml.to_tree ~keep_text:true doc in
  let without = Xml.to_tree ~keep_text:false doc in
  Alcotest.(check int) "with text" 4 (Tree.size with_text);
  Alcotest.(check int) "without text" 3 (Tree.size without)

let test_to_tree_attrs () =
  let doc = parse {|<a id="1"><b/></a>|} in
  let without = Xml.to_tree doc in
  let with_attrs = Xml.to_tree ~keep_attrs:true doc in
  Alcotest.(check int) "attrs dropped by default" 2 (Tree.size without);
  Alcotest.(check int) "attr leaf added" 3 (Tree.size with_attrs);
  match with_attrs.Tree.children with
  | first :: _ ->
    Alcotest.(check string) "attr label" "@id=1" (Label.name first.Tree.label)
  | [] -> Alcotest.fail "expected children"

let test_to_tree_whitespace_normalized () =
  let doc = parse "<a>  hello   world \n </a>" in
  let tree = Xml.to_tree doc in
  match tree.Tree.children with
  | [ leaf ] -> Alcotest.(check string) "normalized" "hello world" (Label.name leaf.Tree.label)
  | _ -> Alcotest.fail "expected one text leaf"

let test_to_tree_pure_whitespace_dropped () =
  let doc = parse "<a> \n  <b/> \n </a>" in
  let tree = Xml.to_tree doc in
  Alcotest.(check int) "whitespace-only text dropped" 2 (Tree.size tree)

let test_of_tree_roundtrip () =
  let doc = parse {|<catalog count="2"><item>first thing</item><item/></catalog>|} in
  let tree = Xml.to_tree ~keep_attrs:true doc in
  let back = Xml.of_tree tree in
  (* to_tree . of_tree is stable on the tree side *)
  let tree2 = Xml.to_tree ~keep_attrs:true back in
  Alcotest.(check bool) "tree fixpoint" true (Tree.equal tree tree2)

(* Random-document roundtrip: serialize . parse must be the identity up to
   text-node merging (the printer concatenates adjacent text, so compare
   after normalizing both sides through the tree conversion). *)
let rec random_doc rng depth =
  let module P = Tsj_util.Prng in
  if depth = 0 || P.int rng 3 = 0 then
    Xml.Text (Printf.sprintf "text %d & <%d>" (P.int rng 100) (P.int rng 100))
  else begin
    let tag = Printf.sprintf "tag%d" (P.int rng 8) in
    let attrs =
      List.init (P.int rng 3) (fun i ->
          (Printf.sprintf "a%d" i, Printf.sprintf "v w\"%d'" (P.int rng 50)))
    in
    let children = List.init (P.int rng 4) (fun _ -> random_doc rng (depth - 1)) in
    Xml.Element { tag; attrs; children }
  end

let prop_xml_roundtrip =
  Gen.qtest ~count:200 "xml print/parse roundtrip"
    (QCheck.make
       ~print:(fun seed ->
         Xml.to_string (random_doc (Tsj_util.Prng.create seed) 4))
       (fun st -> Random.State.int st 0x3FFFFFF))
    (fun seed ->
      let rng = Tsj_util.Prng.create seed in
      let doc =
        (* ensure an element root *)
        match random_doc rng 4 with
        | Xml.Text _ -> Xml.Element { tag = "root"; attrs = []; children = [] }
        | e -> e
      in
      (* Adjacent text children print concatenated and reparse as one text
         node: normalize the original the same way before comparing. *)
      let rec normalize d =
        match d with
        | Xml.Text _ -> d
        | Xml.Element e ->
          let children =
            List.fold_right
              (fun c acc ->
                match (normalize c, acc) with
                | Xml.Text a, Xml.Text b :: rest -> Xml.Text (a ^ b) :: rest
                | c, acc -> c :: acc)
              e.children []
          in
          Xml.Element { e with children }
      in
      let doc = normalize doc in
      let printed = Xml.to_string doc in
      let reparsed = parse printed in
      (* the printed form is a fixpoint *)
      Xml.to_string reparsed = printed
      && Tree.equal
           (Xml.to_tree ~keep_attrs:true doc)
           (Xml.to_tree ~keep_attrs:true reparsed))

let test_join_on_parsed_xml () =
  (* An end-to-end sanity check tying the XML substrate to the join. *)
  let docs =
    [|
      "<r><a>1</a><b/></r>";
      "<r><a>1</a><b/></r>";
      "<r><a>2</a><b/></r>";
      "<x><y/><z><w/></z></x>";
    |]
  in
  let trees = Array.map (fun s -> Xml.to_tree (parse s)) docs in
  let out = Tsj_core.Partsj.join ~trees ~tau:1 () in
  let pairs = Tsj_join.Types.pair_set out in
  Alcotest.(check (list (pair int int))) "duplicate + near pair" [ (0, 1); (0, 2); (1, 2) ]
    pairs

let suite =
  [
    Alcotest.test_case "parse element" `Quick test_parse_element;
    Alcotest.test_case "parse attributes" `Quick test_parse_attributes;
    Alcotest.test_case "parse entities" `Quick test_parse_entities;
    Alcotest.test_case "parse utf8 char refs" `Quick test_parse_utf8_charref;
    Alcotest.test_case "parse cdata/comments/pi" `Quick test_parse_cdata_comments_pi;
    Alcotest.test_case "parse doctype skipped" `Quick test_parse_doctype_skipped;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse fragments" `Quick test_parse_fragments;
    Alcotest.test_case "serialize escaping" `Quick test_serialize_escaping;
    Alcotest.test_case "to_tree basic" `Quick test_to_tree_basic;
    Alcotest.test_case "to_tree keep_text" `Quick test_to_tree_drop_text;
    Alcotest.test_case "to_tree keep_attrs" `Quick test_to_tree_attrs;
    Alcotest.test_case "to_tree whitespace" `Quick test_to_tree_whitespace_normalized;
    Alcotest.test_case "to_tree drops blank text" `Quick test_to_tree_pure_whitespace_dropped;
    Alcotest.test_case "of_tree roundtrip" `Quick test_of_tree_roundtrip;
    prop_xml_roundtrip;
    Alcotest.test_case "join over parsed xml" `Quick test_join_on_parsed_xml;
  ]
