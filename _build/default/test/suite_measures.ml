(* Tests for the pq-gram alternative measure and top-k search. *)

module Tree = Tsj_tree.Tree
module Bracket = Tsj_tree.Bracket
module Prng = Tsj_util.Prng
module Edit_op = Tsj_tree.Edit_op
module Pq_gram = Tsj_baselines.Pq_gram
module Search = Tsj_core.Search
module Zhang_shasha = Tsj_ted.Zhang_shasha

let t s = Bracket.of_string_exn s

let test_pq_profile_size () =
  (* one gram per leaf, c + q - 1 per internal node with c children *)
  let check tree ~p ~q expected =
    Alcotest.(check int)
      (Printf.sprintf "|profile p=%d q=%d|" p q)
      expected
      (Pq_gram.size (Pq_gram.profile ~p ~q tree))
  in
  (* {a{b}{c}}: internal a (2 children), leaves b, c *)
  check (t "{a{b}{c}}") ~p:2 ~q:3 (2 + (2 + 3 - 1));
  check (t "{a{b}{c}}") ~p:1 ~q:1 (2 + 2);
  check (t "{a}") ~p:2 ~q:3 1;
  check (t "{a{b{c}}}") ~p:3 ~q:2 (1 + (1 + 1) + (1 + 1))

let prop_pq_profile_size =
  Gen.qtest "pq-gram profile size formula" (Gen.arb_tree ~max_size:25 ()) (fun x ->
      let expected = ref 0 in
      Tree.iter_postorder
        (fun (n : Tree.t) ->
          match n.Tree.children with
          | [] -> incr expected
          | cs -> expected := !expected + List.length cs + 3 - 1)
        x;
      Pq_gram.size (Pq_gram.profile ~p:2 ~q:3 x) = !expected)

let test_pq_distance_zero_on_equal () =
  let a = t "{a{b{c}}{d}}" in
  let pa = Pq_gram.profile a in
  Alcotest.(check int) "distance 0" 0 (Pq_gram.distance pa pa);
  Alcotest.(check (float 1e-9)) "normalized 0" 0.0 (Pq_gram.normalized_distance pa pa)

let test_pq_distance_sensitivity () =
  (* a single leaf rename changes a bounded number of grams *)
  let a = t "{a{b}{c}{d}}" in
  let b = t "{a{b}{x}{d}}" in
  let d = Pq_gram.distance (Pq_gram.profile a) (Pq_gram.profile b) in
  Alcotest.(check bool) "positive" true (d > 0);
  (* the renamed leaf appears in its own gram + q windows of the parent *)
  Alcotest.(check bool) "bounded" true (d <= 2 * (1 + 3))

let test_pq_p1_q1_is_label_bag () =
  let a = t "{a{b}{c}}" and b = t "{a{b}{z}}" in
  let d = Pq_gram.distance (Pq_gram.profile ~p:1 ~q:1 a) (Pq_gram.profile ~p:1 ~q:1 b) in
  (* 1,1-grams pair each node with one child (or the dummy for leaves);
     with q = 1 an internal node with c children has c windows.  Check
     symmetry and positivity here. *)
  Alcotest.(check bool) "positive" true (d > 0);
  Alcotest.(check int) "symmetric" d
    (Pq_gram.distance (Pq_gram.profile ~p:1 ~q:1 b) (Pq_gram.profile ~p:1 ~q:1 a))

let test_pq_validation () =
  Alcotest.check_raises "p" (Invalid_argument "Pq_gram.profile: p must be >= 1")
    (fun () -> ignore (Pq_gram.profile ~p:0 (t "{a}")));
  Alcotest.check_raises "q" (Invalid_argument "Pq_gram.profile: q must be >= 1")
    (fun () -> ignore (Pq_gram.profile ~q:0 (t "{a}")))

let prop_pq_normalized_range =
  Gen.qtest "pq normalized distance in [0,1]" (Gen.arb_tree_pair ~max_size:15 ())
    (fun (a, b) ->
      let d = Pq_gram.normalized_distance (Pq_gram.profile a) (Pq_gram.profile b) in
      d >= 0.0 && d <= 1.0)

let prop_pq_triangle_violation_allowed =
  (* pq-gram distance is a pseudo-metric on profiles: symmetric and zero
     on equal profiles.  Check those two properties. *)
  Gen.qtest "pq distance symmetric" (Gen.arb_tree_pair ~max_size:15 ()) (fun (a, b) ->
      let pa = Pq_gram.profile a and pb = Pq_gram.profile b in
      Pq_gram.distance pa pb = Pq_gram.distance pb pa)

(* --- top-k search --- *)

let test_nearest_basic () =
  let base = t "{a{b}{c}{d{e}}}" in
  let v1 = Edit_op.apply base (Edit_op.Rename { node = 0; label = Tsj_tree.Label.intern "zz1" }) in
  let v2 = Edit_op.apply v1 (Edit_op.Rename { node = 1; label = Tsj_tree.Label.intern "zz2" }) in
  let far = t "{q{w{x{y{z{w{q}}}}}}}" in
  let trees = [| far; v2; base; v1 |] in
  let idx = Search.build ~tau:3 trees in
  (match Search.nearest ~k:2 idx base with
  | [ (i1, d1); (i2, d2) ] ->
    Alcotest.(check int) "self first" 2 i1;
    Alcotest.(check int) "self distance" 0 d1;
    Alcotest.(check int) "then v1" 3 i2;
    Alcotest.(check int) "v1 distance" 1 d2
  | l -> Alcotest.failf "expected 2 hits, got %d" (List.length l));
  Alcotest.(check (list (pair int int))) "k=0" [] (Search.nearest ~k:0 idx base);
  Alcotest.check_raises "negative k" (Invalid_argument "Search.nearest: negative k")
    (fun () -> ignore (Search.nearest ~k:(-1) idx base))

let test_nearest_matches_brute_force () =
  let rng = Prng.create 44 in
  let acc = ref [] in
  for _ = 1 to 12 do
    let base = Gen.random_tree rng (4 + Prng.int rng 10) in
    acc := base :: !acc;
    let _, copy = Edit_op.random_script rng ~labels:Gen.default_alphabet 2 base in
    acc := copy :: !acc
  done;
  let trees = Array.of_list !acc in
  let tau = 3 in
  let idx = Search.build ~tau trees in
  for _ = 1 to 10 do
    let q = trees.(Prng.int rng (Array.length trees)) in
    let brute =
      Array.to_list (Array.mapi (fun i x -> (i, Zhang_shasha.distance q x)) trees)
      |> List.filter (fun (_, d) -> d <= tau)
      |> List.sort (fun (i1, d1) (i2, d2) ->
             if d1 <> d2 then compare d1 d2 else compare i1 i2)
    in
    List.iter
      (fun k ->
        let expected = List.filteri (fun i _ -> i < k) brute in
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "nearest k=%d" k)
          expected
          (Search.nearest ~k idx q))
      [ 1; 3; 100 ]
  done

let suite =
  [
    Alcotest.test_case "pq profile sizes" `Quick test_pq_profile_size;
    prop_pq_profile_size;
    Alcotest.test_case "pq distance zero on equal" `Quick test_pq_distance_zero_on_equal;
    Alcotest.test_case "pq distance sensitivity" `Quick test_pq_distance_sensitivity;
    Alcotest.test_case "pq p=1 q=1" `Quick test_pq_p1_q1_is_label_bag;
    Alcotest.test_case "pq validation" `Quick test_pq_validation;
    prop_pq_normalized_range;
    prop_pq_triangle_violation_allowed;
    Alcotest.test_case "nearest basic" `Quick test_nearest_basic;
    Alcotest.test_case "nearest = brute force" `Quick test_nearest_matches_brute_force;
  ]
