(* Near-duplicate detection in an XML product catalog — the C2C shopping
   scenario from the paper's introduction: vendors describe items as XML
   documents; the site joins the catalog against itself to spot listings
   that are the same product with small edits.

   The example builds a synthetic catalog of XML listings (some of which
   are perturbed copies), serializes it to real XML text, parses it back
   with the library's XML parser, converts documents to labeled trees and
   runs the PartSJ similarity join.

   Run with:  dune exec examples/xml_dedup.exe *)

module Prng = Tsj_util.Prng
module Types = Tsj_join.Types
module Xml = Tsj_xml.Xml
module Xml_parser = Tsj_xml.Xml_parser

let brands = [| "Acme"; "Globex"; "Initech"; "Umbrella"; "Stark"; "Wayne" |]
let nouns = [| "Turntable"; "Amplifier"; "Headphones"; "Speaker"; "Mixer"; "Microphone" |]
let colours = [| "black"; "white"; "red"; "walnut"; "silver" |]
let conditions = [| "new"; "used"; "refurbished" |]

let listing rng id =
  let brand = Prng.choice rng brands in
  let noun = Prng.choice rng nouns in
  let price = 50 + Prng.int rng 900 in
  let features =
    List.init (1 + Prng.int rng 4) (fun i ->
        Xml.Element
          {
            tag = "feature";
            attrs = [];
            children = [ Xml.Text (Printf.sprintf "feature-%d-%d" (Prng.int rng 20) i) ];
          })
  in
  Xml.Element
    {
      tag = "listing";
      attrs = [ ("id", string_of_int id) ];
      children =
        [
          Xml.Element { tag = "title"; attrs = []; children = [ Xml.Text (brand ^ " " ^ noun) ] };
          Xml.Element { tag = "brand"; attrs = []; children = [ Xml.Text brand ] };
          Xml.Element
            { tag = "price"; attrs = []; children = [ Xml.Text (string_of_int price) ] };
          Xml.Element
            {
              tag = "condition";
              attrs = [];
              children = [ Xml.Text (Prng.choice rng conditions) ];
            };
          Xml.Element
            { tag = "colour"; attrs = []; children = [ Xml.Text (Prng.choice rng colours) ] };
          Xml.Element { tag = "features"; attrs = []; children = features };
        ];
    }

(* A vendor re-posting someone else's listing: tweak one or two fields. *)
let repost rng doc =
  match doc with
  | Xml.Element e ->
    let tweak child =
      match child with
      | Xml.Element ({ tag = "price"; _ } as pe) when Prng.bool rng ->
        Xml.Element
          { pe with children = [ Xml.Text (string_of_int (50 + Prng.int rng 900)) ] }
      | Xml.Element ({ tag = "condition"; _ } as ce) when Prng.bool rng ->
        Xml.Element { ce with children = [ Xml.Text (Prng.choice rng conditions) ] }
      | other -> other
    in
    Xml.Element { e with children = List.map tweak e.children }
  | other -> other

let () =
  let rng = Prng.create 2026 in
  let n_fresh = 120 in
  let catalog = ref [] in
  for id = 0 to n_fresh - 1 do
    let doc = listing rng id in
    catalog := doc :: !catalog;
    (* roughly a third of the listings get re-posted once or twice *)
    if Prng.float rng < 0.35 then begin
      let copies = 1 + Prng.int rng 2 in
      for _ = 1 to copies do
        catalog := repost rng doc :: !catalog
      done
    end
  done;
  let docs = Array.of_list !catalog in
  Printf.printf "catalog: %d XML listings\n" (Array.length docs);

  (* Serialize to XML text and re-parse — exercising the real parser the
     way a crawler would. *)
  let xml_text =
    String.concat "\n" (Array.to_list (Array.map Xml.to_string docs))
  in
  let parsed =
    match Xml_parser.parse_fragments xml_text with
    | Ok docs -> Array.of_list docs
    | Error msg -> failwith ("XML parse error: " ^ msg)
  in
  Printf.printf "parsed back: %d documents (%d bytes of XML)\n" (Array.length parsed)
    (String.length xml_text);

  (* Convert to labeled trees.  The id attribute is dropped (it is unique
     by construction and would mask similarity); text becomes leaves. *)
  let trees = Array.map (fun d -> Xml.to_tree ~keep_text:true ~keep_attrs:false d) parsed in

  (* Join: listings within 2 edits are near-duplicates. *)
  let tau = 2 in
  let result = Tsj_core.Partsj.join ~trees ~tau () in
  Format.printf "\njoin stats: %a@." Types.pp_stats result.Types.stats;
  Printf.printf "\nnear-duplicate listings (TED <= %d): %d pairs\n" tau
    (List.length result.Types.pairs);
  let show i =
    match parsed.(i) with
    | Xml.Element { children; _ } ->
      let field tag =
        List.find_map
          (function
            | Xml.Element { tag = t; children = [ Xml.Text s ]; _ } when t = tag -> Some s
            | _ -> None)
          children
      in
      Printf.sprintf "%s (%s, %s)"
        (Option.value ~default:"?" (field "title"))
        (Option.value ~default:"?" (field "price"))
        (Option.value ~default:"?" (field "condition"))
    | Xml.Text _ -> "?"
  in
  List.iteri
    (fun rank p ->
      if rank < 10 then
        Printf.printf "  #%d ~ #%d  d=%d  %s  <->  %s\n" p.Types.i p.Types.j
          p.Types.distance (show p.Types.i) (show p.Types.j))
    result.Types.pairs;
  if List.length result.Types.pairs > 10 then
    Printf.printf "  ... and %d more\n" (List.length result.Types.pairs - 10)
