(* Streaming near-duplicate alerts — the paper's closing motivation:
   "streaming workloads where tree objects (e.g., XML and HTML entities)
   are inserted and updated at a high rate and data collections are
   refreshed every few hours/minutes."

   A feed of HTML-fragment-like documents arrives one at a time in no
   particular order; each arrival is checked against everything seen so
   far and near-duplicates raise an alert immediately.  The incremental
   index does per-arrival work proportional to the candidates it finds,
   not to the history size.

   Run with:  dune exec examples/streaming_dedup.exe *)

module Prng = Tsj_util.Prng
module Tree = Tsj_tree.Tree
module Label = Tsj_tree.Label
module Edit_op = Tsj_tree.Edit_op
module Incremental = Tsj_core.Incremental

let l = Label.intern

(* A small HTML-ish article template with varying structure. *)
let article rng =
  let para () =
    Tree.node (l "p")
      (List.init (1 + Prng.int rng 3) (fun _ ->
           match Prng.int rng 4 with
           | 0 -> Tree.node (l "em") [ Tree.leaf (l (Printf.sprintf "w%d" (Prng.int rng 40))) ]
           | 1 -> Tree.node (l "a") [ Tree.leaf (l (Printf.sprintf "w%d" (Prng.int rng 40))) ]
           | _ -> Tree.leaf (l (Printf.sprintf "w%d" (Prng.int rng 40)))))
  in
  Tree.node (l "article")
    (Tree.node (l "h1") [ Tree.leaf (l (Printf.sprintf "title%d" (Prng.int rng 25))) ]
    :: List.init (2 + Prng.int rng 4) (fun _ -> para ()))

let () =
  let rng = Prng.create 808 in
  let tau = 2 in
  let feed_length = 400 in
  let inc = Incremental.create ~tau () in
  let alerts = ref 0 in
  let recent : Tree.t option ref = ref None in
  let labels = Array.init 40 (fun i -> l (Printf.sprintf "w%d" i)) in
  Printf.printf "streaming %d documents (tau = %d)...\n\n" feed_length tau;
  let t0 = Unix.gettimeofday () in
  for arrival = 0 to feed_length - 1 do
    (* 30% of the feed is a lightly edited repost of a recent document. *)
    let doc =
      match !recent with
      | Some prev when Prng.float rng < 0.3 ->
        let k = Prng.int_in rng 0 tau in
        snd (Edit_op.random_script rng ~labels k prev)
      | _ -> article rng
    in
    recent := (if Prng.int rng 3 = 0 then Some doc else !recent);
    let hits = Incremental.add inc doc in
    List.iter
      (fun (earlier, d) ->
        incr alerts;
        if !alerts <= 8 then
          Printf.printf "  ALERT arrival #%d duplicates #%d (distance %d, %d nodes)\n"
            arrival earlier d (Tree.size doc))
      hits
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let verified, indexed = Incremental.stats inc in
  Printf.printf "\n%d documents processed in %.3fs (%.0f docs/s)\n" feed_length dt
    (float_of_int feed_length /. dt);
  Printf.printf "%d duplicate alerts; %d candidate verifications; %d subgraphs indexed\n"
    !alerts verified indexed
