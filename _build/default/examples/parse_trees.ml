(* Similar sentence structures — the computational-linguistics scenario
   from the paper's introduction: sentences with similar parse trees are
   useful for semantic categorization.

   The example generates constituency parse trees from a small English
   grammar (so structures repeat with variations, like a treebank), then
   compares the three join methods of the paper (STR, SET, PRT) on the
   same workload: same results, different candidate counts and runtimes.

   Run with:  dune exec examples/parse_trees.exe *)

module Prng = Tsj_util.Prng
module Tree = Tsj_tree.Tree
module Label = Tsj_tree.Label
module Types = Tsj_join.Types
module Methods = Tsj_harness.Methods

let l = Label.intern

(* A toy probabilistic grammar.  Nonterminals expand recursively;
   terminals are part-of-speech tags (we join on structure, so tags —
   not words — are the leaf labels, as in the Treebank dataset). *)
let rec sentence rng depth =
  Tree.node (l "S") [ noun_phrase rng depth; verb_phrase rng depth ]

and noun_phrase rng depth =
  let base =
    if Prng.int rng 3 = 0 then [ Tree.leaf (l "DT"); Tree.leaf (l "JJ"); Tree.leaf (l "NN") ]
    else [ Tree.leaf (l "DT"); Tree.leaf (l "NN") ]
  in
  if depth > 0 && Prng.int rng 4 = 0 then
    Tree.node (l "NP") (base @ [ prep_phrase rng (depth - 1) ])
  else Tree.node (l "NP") base

and verb_phrase rng depth =
  let obj =
    if depth > 0 && Prng.int rng 3 = 0 then
      [ noun_phrase rng (depth - 1); prep_phrase rng (depth - 1) ]
    else [ noun_phrase rng (depth - 1) ]
  in
  if depth > 0 && Prng.int rng 5 = 0 then
    Tree.node (l "VP") (Tree.leaf (l "MD") :: Tree.leaf (l "VB") :: obj)
  else Tree.node (l "VP") (Tree.leaf (l "VBZ") :: obj)

and prep_phrase rng depth =
  Tree.node (l "PP") [ Tree.leaf (l "IN"); noun_phrase rng (max 0 (depth - 1)) ]

let () =
  let rng = Prng.create 5150 in
  let n = 400 in
  let trees = Array.init n (fun _ -> sentence rng (2 + Prng.int rng 3)) in
  let sizes = Array.map Tree.size trees in
  Printf.printf "%d parse trees, sizes %d..%d (avg %.1f)\n" n
    (Array.fold_left min max_int sizes)
    (Array.fold_left max 0 sizes)
    (Tsj_util.Statistics.mean_int sizes);

  let tau = 2 in
  Printf.printf "\njoining with tau = %d using the paper's three methods:\n\n" tau;
  let outputs =
    List.map
      (fun m ->
        let out = Methods.run m ~trees ~tau in
        let s = out.Types.stats in
        Printf.printf "  %-4s  candidates=%-6d results=%-6d cand-gen=%.3fs verify=%.3fs\n"
          (Methods.name m) s.Types.n_candidates s.Types.n_results
          s.Types.candidate_time_s s.Types.verify_time_s;
        (m, out))
      Methods.paper_methods
  in
  (* The methods are exact: all three agree. *)
  (match outputs with
  | (_, first) :: rest ->
    List.iter
      (fun (m, out) ->
        if not (Types.equal_results first out) then
          Printf.printf "!! %s disagrees with %s\n" (Methods.name m)
            (Methods.name (fst (List.hd outputs))))
      rest
  | [] -> ());
  Printf.printf "\nall methods returned the same %d pairs\n"
    (match outputs with (_, o) :: _ -> o.Types.stats.Types.n_results | [] -> 0);

  (* Show a few structurally similar sentence skeletons. *)
  (match outputs with
  | (_, out) :: _ ->
    Printf.printf "\nexample structure pairs (bracket skeletons):\n";
    List.iteri
      (fun rank p ->
        if rank < 3 then
          Printf.printf "  d=%d\n    %s\n    %s\n" p.Types.distance
            (Tsj_tree.Bracket.to_string trees.(p.Types.i))
            (Tsj_tree.Bracket.to_string trees.(p.Types.j)))
      out.Types.pairs
  | [] -> ())
