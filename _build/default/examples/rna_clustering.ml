(* Clustering RNA secondary structures — the biology scenario from the
   paper's introduction: secondary structures are modeled as rooted
   ordered labeled trees (stems, hairpin loops, bulges, internal loops,
   multiloops), and biologists look for pairs of structures that are
   similar across sources.

   The example generates a population of structures from a handful of
   "families" (each family = mutated variants of an ancestral structure),
   joins the population against itself with PartSJ, and then clusters the
   similarity graph with union-find — recovering the families.

   Run with:  dune exec examples/rna_clustering.exe *)

module Prng = Tsj_util.Prng
module Tree = Tsj_tree.Tree
module Label = Tsj_tree.Label
module Edit_op = Tsj_tree.Edit_op
module Types = Tsj_join.Types

(* Secondary-structure element labels. *)
let stem = Label.intern "stem"
let hairpin = Label.intern "hairpin"
let bulge = Label.intern "bulge"
let internal_loop = Label.intern "iloop"
let multiloop = Label.intern "multi"
let exterior = Label.intern "ext"

let labels = [| stem; hairpin; bulge; internal_loop; multiloop |]

(* A random ancestral structure: an exterior element holding a few stems;
   a stem elongates through bulges/internal loops and ends in a hairpin
   or branches through a multiloop. *)
let rec grow_stem rng depth =
  if depth <= 0 then Tree.leaf hairpin
  else
    match Prng.int rng 10 with
    | 0 | 1 ->
      (* interior bulge, stem continues *)
      Tree.node stem [ Tree.node bulge [ grow_stem rng (depth - 1) ] ]
    | 2 | 3 ->
      Tree.node stem [ Tree.node internal_loop [ grow_stem rng (depth - 1) ] ]
    | 4 ->
      (* multiloop: the stem branches *)
      let branches = List.init (2 + Prng.int rng 2) (fun _ -> grow_stem rng (depth - 1)) in
      Tree.node stem [ Tree.node multiloop branches ]
    | _ -> Tree.node stem [ grow_stem rng (depth - 1) ]

let ancestor rng =
  let stems = List.init (1 + Prng.int rng 3) (fun _ -> grow_stem rng (4 + Prng.int rng 4)) in
  Tree.node exterior stems

(* Union-find over tree indices for clustering the similarity graph. *)
module Union_find = struct
  type t = { parent : int array; rank : int array }

  let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

  let rec find uf i =
    if uf.parent.(i) = i then i
    else begin
      let root = find uf uf.parent.(i) in
      uf.parent.(i) <- root;
      root
    end

  let union uf a b =
    let ra = find uf a and rb = find uf b in
    if ra <> rb then
      if uf.rank.(ra) < uf.rank.(rb) then uf.parent.(ra) <- rb
      else if uf.rank.(ra) > uf.rank.(rb) then uf.parent.(rb) <- ra
      else begin
        uf.parent.(rb) <- ra;
        uf.rank.(ra) <- uf.rank.(ra) + 1
      end
end

let () =
  let rng = Prng.create 17 in
  let n_families = 8 in
  let variants_per_family = 12 in
  let population = ref [] in
  let family_of = ref [] in
  for fam = 0 to n_families - 1 do
    let base = ancestor rng in
    for _ = 1 to variants_per_family do
      (* evolutionary drift: a couple of random edit operations *)
      let drift = Prng.int rng 3 in
      let _, variant = Edit_op.random_script rng ~labels drift base in
      population := variant :: !population;
      family_of := fam :: !family_of
    done
  done;
  let trees = Array.of_list !population in
  let family_of = Array.of_list !family_of in
  let n = Array.length trees in
  let sizes = Array.map Tree.size trees in
  Printf.printf "population: %d structures from %d families (sizes %d..%d)\n" n
    n_families
    (Array.fold_left min max_int sizes)
    (Array.fold_left max 0 sizes);

  let tau = 4 in
  let result = Tsj_core.Partsj.join ~trees ~tau () in
  Format.printf "join stats: %a@." Types.pp_stats result.Types.stats;

  (* Cluster: connected components of the similarity graph. *)
  let uf = Union_find.create n in
  List.iter (fun p -> Union_find.union uf p.Types.i p.Types.j) result.Types.pairs;
  let clusters = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    let root = Union_find.find uf i in
    Hashtbl.replace clusters root (i :: Option.value ~default:[] (Hashtbl.find_opt clusters root))
  done;
  let cluster_list =
    Hashtbl.fold (fun _ members acc -> members :: acc) clusters []
    |> List.filter (fun m -> List.length m > 1)
    |> List.sort (fun a b -> compare (List.length b) (List.length a))
  in
  Printf.printf "\nclusters with >= 2 members: %d\n" (List.length cluster_list);
  List.iteri
    (fun rank members ->
      if rank < 10 then begin
        (* how pure is the cluster w.r.t. the true families? *)
        let fams = List.map (fun i -> family_of.(i)) members in
        let majority =
          List.fold_left
            (fun (best, best_n) f ->
              let c = List.length (List.filter (( = ) f) fams) in
              if c > best_n then (f, c) else (best, best_n))
            (-1, 0) (List.sort_uniq compare fams)
        in
        Printf.printf "  cluster %d: %d members, %d%% from family %d\n" rank
          (List.length members)
          (100 * snd majority / List.length members)
          (fst majority)
      end)
    cluster_list;
  (* quick quality summary: fraction of joined pairs that are intra-family *)
  let intra =
    List.length
      (List.filter (fun p -> family_of.(p.Types.i) = family_of.(p.Types.j)) result.Types.pairs)
  in
  let total = List.length result.Types.pairs in
  if total > 0 then
    Printf.printf "\n%d/%d joined pairs (%d%%) are within a true family\n" intra total
      (100 * intra / total)
