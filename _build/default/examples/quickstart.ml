(* Quickstart: the public API in five minutes.

   Run with:  dune exec examples/quickstart.exe *)

module Bracket = Tsj_tree.Bracket
module Ted = Tsj_ted.Ted
module Partsj = Tsj_core.Partsj
module Types = Tsj_join.Types

let () =
  (* 1. Trees are written in bracket notation: {label child child ...}. *)
  let album1 = Bracket.of_string_exn "{album{title{Abbey Road}}{artist{The Beatles}}{year{1969}}{tracks{t{Come Together}}{t{Something}}}}" in
  let album2 = Bracket.of_string_exn "{album{title{Abbey Road}}{artist{Beatles}}{year{1969}}{tracks{t{Come Together}}{t{Something}}}}" in
  let album3 = Bracket.of_string_exn "{album{title{Let It Be}}{artist{The Beatles}}{year{1970}}{tracks{t{Two of Us}}{t{Across the Universe}}}}" in

  (* 2. Exact tree edit distance (RTED-style hybrid Zhang–Shasha). *)
  Printf.printf "TED(album1, album2) = %d   (one rename: the artist tag)\n"
    (Ted.distance album1 album2);
  Printf.printf "TED(album1, album3) = %d   (different record)\n"
    (Ted.distance album1 album3);

  (* 3. A similarity self-join over a small catalog: find all pairs within
     TED threshold tau. *)
  let catalog = [| album1; album2; album3 |] in
  let tau = 2 in
  let result = Partsj.join ~trees:catalog ~tau () in
  Printf.printf "\nsimilarity join with tau = %d:\n" tau;
  List.iter
    (fun p ->
      Printf.printf "  catalog.(%d) ~ catalog.(%d)  (distance %d)\n" p.Types.i
        p.Types.j p.Types.distance)
    result.Types.pairs;

  (* 4. The instrumentation every method reports: how many pairs the
     filter let through vs how many were real. *)
  Format.printf "\nstats: %a@." Types.pp_stats result.Types.stats;

  (* 5. What PartSJ indexes under the hood: the delta-partitioning of a
     tree (delta = 2 tau + 1 subgraphs, sizes as balanced as possible). *)
  let b = Tsj_tree.Binary_tree.of_tree album1 in
  let p = Tsj_core.Partition.partition b ~delta:((2 * tau) + 1) in
  Printf.printf "\npartitioning album1 into %d subgraphs (gamma = %d): sizes %s\n"
    ((2 * tau) + 1) p.Tsj_core.Partition.gamma
    (String.concat ", "
       (Array.to_list (Array.map string_of_int (Tsj_core.Partition.component_sizes p))));

  (* 6. Beyond distances: the optimal edit mapping says *which* nodes
     correspond — a structural diff. *)
  let mapping = Tsj_ted.Mapping.compute album1 album2 in
  Format.printf "\nedit mapping album1 -> album2:@.%a@."
    (Tsj_ted.Mapping.pp ~source:album1 ~target:album2)
    { mapping with Tsj_ted.Mapping.ops =
        List.filter
          (function Tsj_ted.Mapping.Match _ -> false | _ -> true)
          mapping.Tsj_ted.Mapping.ops };

  (* 7. A persistent index supports similarity search and top-k queries
     without re-joining. *)
  let idx = Tsj_core.Search.build ~tau:3 catalog in
  let hits = Tsj_core.Search.query idx album2 in
  Printf.printf "search around album2 (tau <= 3): %s\n"
    (String.concat ", "
       (List.map (fun (i, d) -> Printf.sprintf "catalog.(%d) at distance %d" i d) hits));
  let top = Tsj_core.Search.nearest ~k:2 idx album3 in
  Printf.printf "2 nearest neighbours of album3: %s\n"
    (String.concat ", "
       (List.map (fun (i, d) -> Printf.sprintf "catalog.(%d) (d=%d)" i d) top))
