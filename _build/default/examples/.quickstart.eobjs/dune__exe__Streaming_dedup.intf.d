examples/streaming_dedup.mli:
