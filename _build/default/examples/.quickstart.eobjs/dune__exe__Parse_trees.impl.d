examples/parse_trees.ml: Array List Printf Tsj_harness Tsj_join Tsj_tree Tsj_util
