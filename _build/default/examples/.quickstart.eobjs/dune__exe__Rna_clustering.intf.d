examples/rna_clustering.mli:
