examples/quickstart.mli:
