examples/xml_dedup.ml: Array Format List Option Printf String Tsj_core Tsj_join Tsj_util Tsj_xml
