examples/rna_clustering.ml: Array Format Hashtbl List Option Printf Tsj_core Tsj_join Tsj_tree Tsj_util
