examples/streaming_dedup.ml: Array List Printf Tsj_core Tsj_tree Tsj_util Unix
