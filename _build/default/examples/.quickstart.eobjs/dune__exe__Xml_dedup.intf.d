examples/xml_dedup.mli:
