examples/quickstart.ml: Array Format List Printf String Tsj_core Tsj_join Tsj_ted Tsj_tree
