examples/parse_trees.mli:
