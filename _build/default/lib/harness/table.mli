(** Plain-text table rendering for experiment output. *)

type align = Left | Right

val print :
  ?out:out_channel -> header:string list -> align:align list -> string list list -> unit
(** Column widths are computed from the data; a separator row follows the
    header.  @raise Invalid_argument if a row's arity differs from the
    header's. *)

val seconds : float -> string
(** Compact duration: ["1.23s"], ["45ms"], ... *)

val count : int -> string
(** Thousands separators: [12345 -> "12,345"]. *)

val heading : ?out:out_channel -> string -> unit
(** An underlined section title with surrounding blank lines. *)
