lib/harness/experiments.ml: Array Format List Methods Option Printf String Table Tsj_core Tsj_datagen Tsj_join Tsj_util Unix
