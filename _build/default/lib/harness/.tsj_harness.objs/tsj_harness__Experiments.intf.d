lib/harness/experiments.mli:
