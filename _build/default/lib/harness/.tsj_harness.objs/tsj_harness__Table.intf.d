lib/harness/table.mli:
