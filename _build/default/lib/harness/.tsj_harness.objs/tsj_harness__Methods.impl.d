lib/harness/methods.ml: List String Tsj_baselines Tsj_core Tsj_join
