lib/harness/methods.mli: Tsj_join Tsj_tree
