type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let print ?(out = stdout) ~header ~align rows =
  let cols = List.length header in
  List.iter
    (fun row ->
      if List.length row <> cols then
        invalid_arg "Table.print: row arity differs from header")
    rows;
  if List.length align <> cols then invalid_arg "Table.print: align arity differs";
  let widths =
    List.mapi
      (fun c h ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row c)))
          (String.length h) rows)
      header
  in
  let print_row cells =
    let padded = List.map2 (fun (w, a) s -> pad a w s) (List.combine widths align) cells in
    output_string out ("  " ^ String.concat "  " padded ^ "\n")
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let seconds s =
  if s >= 10.0 then Printf.sprintf "%.1fs" s
  else if s >= 1.0 then Printf.sprintf "%.2fs" s
  else if s >= 0.001 then Printf.sprintf "%.0fms" (s *. 1000.0)
  else if s > 0.0 then Printf.sprintf "%.2fms" (s *. 1000.0)
  else "0"

let count n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let b = Buffer.create (len + (len / 3) + 1) in
  if n < 0 then Buffer.add_char b '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char b ',';
      Buffer.add_char b c)
    s;
  Buffer.contents b

let heading ?(out = stdout) title =
  output_string out ("\n" ^ title ^ "\n" ^ String.make (String.length title) '=' ^ "\n")
