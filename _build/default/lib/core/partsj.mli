(** PartSJ — the paper's partition-based tree similarity self-join
    (Algorithm 1, the method called PRT in the evaluation).

    Trees are processed in ascending size order.  For the current tree
    [Ti], the subgraphs of previously processed trees with size in
    [|Ti| - τ .. |Ti|] are probed through the per-size two-layer indexes:
    every node [N] of [Ti] selects only the subgraphs whose postorder
    group and twig key are compatible with [N]; a selected subgraph that
    actually matches makes its container tree a candidate, verified once
    with the exact TED.  Finally [Ti] itself is partitioned into
    [δ = 2τ + 1] balanced subgraphs and inserted into the index — the
    index is built on-the-fly, there is no offline phase.

    Trees with fewer than [δ] nodes cannot be δ-partitioned (a tree of
    [n] nodes has only [n - 1] edges); they are kept in per-size overflow
    lists and treated as always-candidates within the size window, which
    preserves completeness (such trees have at most [2τ] nodes, so they
    are both rare and cheap to verify). *)

type partitioning =
  | Balanced          (** max-min-size partitioning (Section 3.3) *)
  | Random of int     (** seeded random bridging edges — ablation *)

val join :
  ?partitioning:partitioning ->
  ?index_mode:Two_layer_index.mode ->
  ?verify_domains:int ->
  ?bounded_verify:bool ->
  ?metric:Tsj_join.Sweep.metric ->
  trees:Tsj_tree.Tree.t array ->
  tau:int ->
  unit ->
  Tsj_join.Types.output
(** @raise Invalid_argument if [tau < 0].  [index_mode] defaults to the
    sound {!Two_layer_index.Two_sided} windows; with
    {!Two_layer_index.Paper_rank} the join is faster but may miss result
    pairs (see {!Two_layer_index}).  [verify_domains] (default 1) runs the
    deferred exact-TED verification batch on that many OCaml domains —
    the paper's "multi-core architectures" future-work point.  [metric]
    swaps the verifier (default: unrestricted TED); any metric that never
    underestimates TED — e.g. {!Tsj_ted.Constrained} — keeps the subgraph
    filter lossless, realizing the paper's "other tree distance metrics"
    future-work point.  [bounded_verify] (default [true]) verifies with
    the τ-banded DP, which is exact for all distances up to [τ]; pass
    [false] to force the full cubic verifier (ablation). *)

type probe_stats = {
  n_probed : int;        (** subgraphs returned by index probes *)
  n_matched : int;       (** probed subgraphs that matched *)
  n_small_tree_hits : int; (** candidates from the sub-δ overflow lists *)
  n_subgraphs_indexed : int;
}

val join_with_probe_stats :
  ?partitioning:partitioning ->
  ?index_mode:Two_layer_index.mode ->
  ?verify_domains:int ->
  ?bounded_verify:bool ->
  ?metric:Tsj_join.Sweep.metric ->
  trees:Tsj_tree.Tree.t array ->
  tau:int ->
  unit ->
  Tsj_join.Types.output * probe_stats
(** Same join, also reporting index-behaviour counters (used by the
    ablation benches and tests). *)
