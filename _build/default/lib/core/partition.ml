module Binary_tree = Tsj_tree.Binary_tree
module Prng = Tsj_util.Prng

type t = {
  btree : Binary_tree.t;
  delta : int;
  gamma : int;
  assignment : int array;
  roots : int array;
}

(* Greedy γ-subtree cutting (paper Algorithm 2).  Node ids are postorder
   numbers and children have smaller ids than parents, so a single
   ascending loop is the postorder traversal.  When [cuts] is given, the
   roots of the first [delta - 1] detached γ-subtrees are collected (in
   detection order, which is ascending postorder). *)
let greedy_cut (b : Binary_tree.t) ~delta ~gamma ~cuts =
  let n = b.Binary_tree.size in
  (* live.(i): nodes remaining in the subtree rooted at i after all the
     detachments performed so far (= size - detached of the paper). *)
  let live = Array.make n 0 in
  let found = ref 0 in
  let i = ref 0 in
  while !found < delta && !i < n do
    let node = !i in
    let l = b.Binary_tree.left.(node) and r = b.Binary_tree.right.(node) in
    let v = 1 + (if l >= 0 then live.(l) else 0) + (if r >= 0 then live.(r) else 0) in
    if v >= gamma then begin
      (* γ-subtree identified: detach it. *)
      (match cuts with
      | Some acc when !found < delta - 1 -> Tsj_util.Vec_int.push acc node
      | Some _ | None -> ());
      live.(node) <- 0;
      incr found
    end
    else live.(node) <- v;
    incr i
  done;
  !found >= delta

let partitionable b ~delta ~gamma =
  if delta < 1 then invalid_arg "Partition.partitionable: delta must be >= 1";
  if gamma < 1 then invalid_arg "Partition.partitionable: gamma must be >= 1";
  if gamma * delta > b.Binary_tree.size then false
  else greedy_cut b ~delta ~gamma ~cuts:None

(* Paper Algorithm 3: binary search on γ between the trivial upper bound
   ⌊n/δ⌋ and the always-feasible lower bound ⌊(n + δ - 1)/(2δ - 1)⌋. *)
let max_min_size b ~delta =
  if delta < 1 then invalid_arg "Partition.max_min_size: delta must be >= 1";
  let n = b.Binary_tree.size in
  if n < delta then
    invalid_arg
      (Printf.sprintf "Partition.max_min_size: tree of %d nodes has no %d-partitioning" n
         delta);
  let gamma_max = n / delta in
  let gamma_min = max 1 ((n + delta - 1) / ((2 * delta) - 1)) in
  let gamma_min = ref gamma_min in
  let c = ref (gamma_max - !gamma_min + 1) in
  while !c > 1 do
    let gamma_mid = !gamma_min + (!c / 2) in
    if greedy_cut b ~delta ~gamma:gamma_mid ~cuts:None then begin
      gamma_min := gamma_mid;
      c := !c - (!c / 2)
    end
    else c := !c / 2
  done;
  !gamma_min

(* Build the component structure from cut roots (ascending postorder).
   Component k (k < delta - 1 cuts) is the subtree of its cut root minus
   earlier cuts nested inside it; the remainder — always containing the
   tree root — is component delta - 1.  Because node ids are postorder
   numbers, the subtree of root r occupies exactly the contiguous id range
   [r - subtree_size(r) + 1, r]. *)
let of_cut_roots (b : Binary_tree.t) ~delta ~gamma cut_roots =
  let n = b.Binary_tree.size in
  let assignment = Array.make n (-1) in
  Array.iteri
    (fun k root ->
      let lo = root - b.Binary_tree.subtree_size.(root) + 1 in
      for v = lo to root do
        if assignment.(v) < 0 then assignment.(v) <- k
      done)
    cut_roots;
  for v = 0 to n - 1 do
    if assignment.(v) < 0 then assignment.(v) <- delta - 1
  done;
  let roots = Array.append cut_roots [| n - 1 |] in
  { btree = b; delta; gamma; assignment; roots }

let partition b ~delta =
  let gamma = max_min_size b ~delta in
  let cuts = Tsj_util.Vec_int.create ~capacity:delta () in
  let ok = greedy_cut b ~delta ~gamma ~cuts:(Some cuts) in
  assert ok;
  of_cut_roots b ~delta ~gamma (Tsj_util.Vec_int.to_array cuts)

let random_partition rng b ~delta =
  if delta < 1 then invalid_arg "Partition.random_partition: delta must be >= 1";
  let n = b.Binary_tree.size in
  if n < delta then
    invalid_arg
      (Printf.sprintf
         "Partition.random_partition: tree of %d nodes has no %d-partitioning" n delta);
  (* An edge is identified with its child endpoint: every node except the
     root has exactly one incoming edge.  Cut delta - 1 distinct ones. *)
  let children = Array.init (n - 1) (fun i -> i) in
  Prng.shuffle rng children;
  let cut_roots = Array.sub children 0 (delta - 1) in
  Array.sort compare cut_roots;
  of_cut_roots b ~delta ~gamma:0 cut_roots

let component_sizes p =
  let sizes = Array.make p.delta 0 in
  Array.iter (fun k -> sizes.(k) <- sizes.(k) + 1) p.assignment;
  sizes

let bridging_edges p =
  let b = p.btree in
  let acc = ref [] in
  for v = 0 to b.Binary_tree.size - 1 do
    let parent = b.Binary_tree.parent.(v) in
    if parent >= 0 && p.assignment.(parent) <> p.assignment.(v) then
      acc := (parent, v) :: !acc
  done;
  List.rev !acc
