module Binary_tree = Tsj_tree.Binary_tree
module Label = Tsj_tree.Label

type twig = int * int * int

type mode = Two_sided | Paper_rank | Label_only

type group = (twig, Subgraph.t list ref) Hashtbl.t

type t = {
  tau : int;
  mode : mode;
  by_start : (int, group) Hashtbl.t; (* keyed by general postorder number *)
  by_end : (int, group) Hashtbl.t;   (* keyed by (size - 1 - general postorder) *)
  mutable count : int;
}

let create ?(mode = Two_sided) ~tau () =
  if tau < 0 then invalid_arg "Two_layer_index.create: negative threshold";
  { tau; mode; by_start = Hashtbl.create 64; by_end = Hashtbl.create 64; count = 0 }

let add_to table post key s =
  let group =
    match Hashtbl.find_opt table post with
    | Some g -> g
    | None ->
      let g = Hashtbl.create 8 in
      Hashtbl.add table post g;
      g
  in
  match Hashtbl.find_opt group key with
  | Some l -> l := s :: !l
  | None -> Hashtbl.add group key (ref [ s ])

let add_window table center half key s =
  for post = center - half to center + half do
    if post >= 0 then add_to table post key s
  done

let insert t (s : Subgraph.t) =
  let key = Subgraph.label_key s in
  let pk = s.Subgraph.root_gpost in
  let qk = s.Subgraph.tree_size - 1 - pk in
  (match t.mode with
  | Two_sided ->
    (* Over a script of lambda <= tau insert/delete operations, the
       postorder number of an untouched subgraph's image shifts by the
       number of node insertions/deletions positioned before it, and its
       end-relative position by the number positioned after it.  The two
       shift budgets sum to <= tau, so one of them is <= tau/2: register
       the subgraph under both coordinates with half windows and probe
       both tables. *)
    let half = t.tau / 2 in
    add_window t.by_start pk half key s;
    add_window t.by_end qk half key s
  | Paper_rank ->
    (* The paper's postorder pruning (Section 3.4): Δ' = τ - ⌊k/2⌋ keyed by
       subgraph rank k.  Read end-relative, which is the interpretation
       consistent with the paper's proof sketch ("∆ operations change the
       size of N_k by at most ∆").  NOT guaranteed complete: the fallback
       argument ("an earlier subgraph will be selected instead") does not
       cover operations that touch an early subgraph through a bridging
       edge while their node sits late — see the test suite.  Provided for
       ablation against the sound default. *)
    let delta' = t.tau - (s.Subgraph.rank / 2) in
    add_window t.by_end qk delta' key s
  | Label_only ->
    (* Ablation: no postorder layer at all — every subgraph lives in one
       position-less group and only the twig keys select. *)
    add_to t.by_start 0 key s);
  t.count <- t.count + 1

let n_subgraphs t = t.count

let n_groups t =
  let count table = Hashtbl.fold (fun _ group acc -> acc + Hashtbl.length group) table 0 in
  count t.by_start + count t.by_end

let probe_table table post (target : Binary_tree.t) v f =
  match Hashtbl.find_opt table post with
  | None -> ()
  | Some group ->
    let l = target.Binary_tree.label.(v) in
    let ll =
      match target.Binary_tree.left.(v) with
      | -1 -> Label.epsilon
      | c -> target.Binary_tree.label.(c)
    in
    let lr =
      match target.Binary_tree.right.(v) with
      | -1 -> Label.epsilon
      | c -> target.Binary_tree.label.(c)
    in
    let visit key =
      match Hashtbl.find_opt group key with
      | Some subs -> List.iter f !subs
      | None -> ()
    in
    (* The four compatible twig keys; collapse duplicates when a child is
       absent (its concrete label is already ε). *)
    visit (l, ll, lr);
    if lr <> Label.epsilon then visit (l, ll, Label.epsilon);
    if ll <> Label.epsilon then visit (l, Label.epsilon, lr);
    if ll <> Label.epsilon || lr <> Label.epsilon then
      visit (l, Label.epsilon, Label.epsilon)

let probe t (target : Binary_tree.t) v f =
  match t.mode with
  | Label_only -> probe_table t.by_start 0 target v f
  | Two_sided | Paper_rank ->
    let p = target.Binary_tree.gpost.(v) in
    probe_table t.by_start p target v f;
    probe_table t.by_end (target.Binary_tree.size - 1 - p) target v f
