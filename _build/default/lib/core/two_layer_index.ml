module Binary_tree = Tsj_tree.Binary_tree
module Label = Tsj_tree.Label

type twig = int * int * int

type mode = Two_sided | Paper_rank | Label_only

type group = (twig, Subgraph.t list ref) Hashtbl.t

type t = {
  tau : int;
  mode : mode;
  by_start : (int, group) Hashtbl.t; (* keyed by general postorder number *)
  by_end : (int, group) Hashtbl.t;   (* keyed by (size - 1 - general postorder) *)
  mutable count : int;
}

let create ?(mode = Two_sided) ~tau () =
  if tau < 0 then invalid_arg "Two_layer_index.create: negative threshold";
  { tau; mode; by_start = Hashtbl.create 64; by_end = Hashtbl.create 64; count = 0 }

let add_to table post key s =
  let group =
    match Hashtbl.find_opt table post with
    | Some g -> g
    | None ->
      let g = Hashtbl.create 8 in
      Hashtbl.add table post g;
      g
  in
  match Hashtbl.find_opt group key with
  | Some l -> l := s :: !l
  | None -> Hashtbl.add group key (ref [ s ])

let add_window table center half key s =
  for post = center - half to center + half do
    if post >= 0 then add_to table post key s
  done

let insert t (s : Subgraph.t) =
  let key = Subgraph.label_key s in
  let pk = s.Subgraph.root_gpost in
  let qk = s.Subgraph.tree_size - 1 - pk in
  (match t.mode with
  | Two_sided ->
    (* Over a script of lambda <= tau insert/delete operations, the
       postorder number of an untouched subgraph's image shifts by the
       number of node insertions/deletions positioned before it, and its
       end-relative position by the number positioned after it.  The two
       shift budgets sum to <= tau, so one of them is <= tau/2: register
       the subgraph under both coordinates with half windows and probe
       both tables. *)
    let half = t.tau / 2 in
    add_window t.by_start pk half key s;
    add_window t.by_end qk half key s
  | Paper_rank ->
    (* The paper's postorder pruning (Section 3.4): Δ' = τ - ⌊k/2⌋ keyed by
       subgraph rank k.  Read end-relative, which is the interpretation
       consistent with the paper's proof sketch ("∆ operations change the
       size of N_k by at most ∆").  NOT guaranteed complete: the fallback
       argument ("an earlier subgraph will be selected instead") does not
       cover operations that touch an early subgraph through a bridging
       edge while their node sits late — see the test suite.  Provided for
       ablation against the sound default. *)
    let delta' = t.tau - (s.Subgraph.rank / 2) in
    add_window t.by_end qk delta' key s
  | Label_only ->
    (* Ablation: no postorder layer at all — every subgraph lives in one
       position-less group and only the twig keys select. *)
    add_to t.by_start 0 key s);
  t.count <- t.count + 1

let n_subgraphs t = t.count

let n_groups t =
  let count table = Hashtbl.fold (fun _ group acc -> acc + Hashtbl.length group) table 0 in
  count t.by_start + count t.by_end

let probe_table table post l ll lr f =
  match Hashtbl.find_opt table post with
  | None -> ()
  | Some group ->
    let visit key =
      match Hashtbl.find_opt group key with
      | Some subs -> List.iter f !subs
      | None -> ()
    in
    (* The four compatible twig keys; collapse duplicates when a child is
       absent (its concrete label is already ε). *)
    visit (l, ll, lr);
    if lr <> Label.epsilon then visit (l, ll, Label.epsilon);
    if ll <> Label.epsilon then visit (l, Label.epsilon, lr);
    if ll <> Label.epsilon || lr <> Label.epsilon then
      visit (l, Label.epsilon, Label.epsilon)

(* Precomputed per-node twig keys of a probed tree.  Probing runs the
   same tree against one index per admissible size, each with up to two
   coordinate tables — recomputing the twig of node [v] for every
   (size, table) lookup showed up in join profiles.  A cursor computes
   all of them once. *)
type cursor = {
  c_l : int array;
  c_ll : int array; (* left-child label, ε when absent *)
  c_lr : int array;
  c_gpost : int array; (* shared with the source tree, not copied *)
  c_size : int;
}

let cursor (target : Binary_tree.t) =
  let n = target.Binary_tree.size in
  let label = target.Binary_tree.label in
  let child lane v =
    match lane.(v) with
    | -1 -> Label.epsilon
    | c -> label.(c)
  in
  {
    c_l = label; (* shared, read-only *)
    c_ll = Array.init n (child target.Binary_tree.left);
    c_lr = Array.init n (child target.Binary_tree.right);
    c_gpost = target.Binary_tree.gpost;
    c_size = n;
  }

let probe_cursor t (cur : cursor) v f =
  let l = cur.c_l.(v) and ll = cur.c_ll.(v) and lr = cur.c_lr.(v) in
  match t.mode with
  | Label_only -> probe_table t.by_start 0 l ll lr f
  | Two_sided | Paper_rank ->
    let p = cur.c_gpost.(v) in
    probe_table t.by_start p l ll lr f;
    probe_table t.by_end (cur.c_size - 1 - p) l ll lr f

let probe t (target : Binary_tree.t) v f =
  let l = target.Binary_tree.label.(v) in
  let ll =
    match target.Binary_tree.left.(v) with
    | -1 -> Label.epsilon
    | c -> target.Binary_tree.label.(c)
  in
  let lr =
    match target.Binary_tree.right.(v) with
    | -1 -> Label.epsilon
    | c -> target.Binary_tree.label.(c)
  in
  match t.mode with
  | Label_only -> probe_table t.by_start 0 l ll lr f
  | Two_sided | Paper_rank ->
    let p = target.Binary_tree.gpost.(v) in
    probe_table t.by_start p l ll lr f;
    probe_table t.by_end (target.Binary_tree.size - 1 - p) l ll lr f

(* Read-only probe view.  [frozen] shares structure with the underlying
   index — freezing is O(1) — but the type rules out insertion, which is
   what makes handing it to concurrently probing domains an honest API:
   probes through the view are safe as long as no [insert] on the
   underlying index runs concurrently. *)
type frozen = { view : t }

let freeze t = { view = t }

let probe_frozen fz cur v f = probe_cursor fz.view cur v f
