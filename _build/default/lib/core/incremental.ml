module Tree = Tsj_tree.Tree
module Binary_tree = Tsj_tree.Binary_tree
module Ted = Tsj_ted.Ted

type size_entry = { index : Two_layer_index.t; mutable small : int list }

type t = {
  tau : int;
  mode : Two_layer_index.mode;
  delta : int;
  mutable trees : Tree.t array;     (* growable; slot i = tree id i *)
  mutable preps : Ted.prep option array;
  mutable count : int;
  entries : (int, size_entry) Hashtbl.t;
  mutable n_candidates : int;
  mutable n_indexed : int;
}

let create ?(mode = Two_layer_index.Two_sided) ~tau () =
  if tau < 0 then invalid_arg "Incremental.create: negative threshold";
  {
    tau;
    mode;
    delta = (2 * tau) + 1;
    trees = Array.make 16 (Tree.leaf Tsj_tree.Label.epsilon);
    preps = Array.make 16 None;
    count = 0;
    entries = Hashtbl.create 64;
    n_candidates = 0;
    n_indexed = 0;
  }

let tau t = t.tau

let n_trees t = t.count

let tree t id =
  if id < 0 || id >= t.count then invalid_arg "Incremental.tree: unknown id";
  t.trees.(id)

let stats t = (t.n_candidates, t.n_indexed)

let grow t =
  let cap = Array.length t.trees in
  if t.count = cap then begin
    let trees = Array.make (2 * cap) t.trees.(0) in
    Array.blit t.trees 0 trees 0 cap;
    t.trees <- trees;
    let preps = Array.make (2 * cap) None in
    Array.blit t.preps 0 preps 0 cap;
    t.preps <- preps
  end

let prep t id =
  match t.preps.(id) with
  | Some p -> p
  | None ->
    let p = Ted.preprocess t.trees.(id) in
    t.preps.(id) <- Some p;
    p

let entry_for t size =
  match Hashtbl.find_opt t.entries size with
  | Some e -> e
  | None ->
    let e = { index = Two_layer_index.create ~mode:t.mode ~tau:t.tau (); small = [] } in
    Hashtbl.add t.entries size e;
    e

let add t tree =
  grow t;
  let id = t.count in
  t.trees.(id) <- tree;
  t.count <- t.count + 1;
  let btree = Binary_tree.of_tree tree in
  let size = btree.Binary_tree.size in
  (* 1. Probe: candidates among all previously inserted trees in the
     size band, in either direction.  One cursor serves every size in
     the band (the twig keys depend only on the probed tree). *)
  let cursor = Two_layer_index.cursor btree in
  let checked = Hashtbl.create 16 in
  let pending = ref [] in
  for other_size = max 1 (size - t.tau) to size + t.tau do
    match Hashtbl.find_opt t.entries other_size with
    | None -> ()
    | Some entry ->
      List.iter
        (fun tj ->
          if not (Hashtbl.mem checked tj) then begin
            Hashtbl.add checked tj ();
            pending := tj :: !pending
          end)
        entry.small;
      for v = 0 to size - 1 do
        Two_layer_index.probe_cursor entry.index cursor v (fun s ->
            let tj = s.Subgraph.tree_id in
            if not (Hashtbl.mem checked tj) then
              if Subgraph.matches s btree v then begin
                Hashtbl.add checked tj ();
                pending := tj :: !pending
              end)
      done
  done;
  (* 2. Verify. *)
  let my_prep = prep t id in
  let results =
    List.filter_map
      (fun tj ->
        t.n_candidates <- t.n_candidates + 1;
        let d = Ted.bounded_distance_prep my_prep (prep t tj) t.tau in
        if d <= t.tau then Some (tj, d) else None)
      !pending
    |> List.sort compare
  in
  (* 3. Index the new tree. *)
  let entry = entry_for t size in
  if size < t.delta then entry.small <- id :: entry.small
  else begin
    let part = Partition.partition btree ~delta:t.delta in
    Array.iter
      (fun s ->
        Two_layer_index.insert entry.index s;
        t.n_indexed <- t.n_indexed + 1)
      (Subgraph.of_partition ~tree_id:id part)
  end;
  results
