module Tree = Tsj_tree.Tree
module Binary_tree = Tsj_tree.Binary_tree
module Ted = Tsj_ted.Ted
module Timer = Tsj_util.Timer
module Types = Tsj_join.Types

type partitioning = Balanced | Random of int

type probe_stats = {
  n_probed : int;
  n_matched : int;
  n_small_tree_hits : int;
  n_subgraphs_indexed : int;
}

(* Per-size inverted list: the two-layer index for δ-partitionable trees
   plus the overflow list of sub-δ trees. *)
type size_entry = { index : Two_layer_index.t; mutable small : int list }

let join_with_probe_stats ?(partitioning = Balanced)
    ?(index_mode = Two_layer_index.Two_sided) ?(verify_domains = 1)
    ?(bounded_verify = true) ?metric ~trees ~tau () =
  if tau < 0 then invalid_arg "Partsj.join: negative threshold";
  let n = Array.length trees in
  let delta = (2 * tau) + 1 in
  let cand_timer = Timer.create () in
  let verify_timer = Timer.create () in
  let rng =
    match partitioning with
    | Balanced -> None
    | Random seed -> Some (Tsj_util.Prng.create seed)
  in
  let sizes = Array.map Tree.size trees in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b -> if sizes.(a) <> sizes.(b) then compare sizes.(a) sizes.(b) else compare a b)
    order;
  let entries : (int, size_entry) Hashtbl.t = Hashtbl.create 64 in
  let entry_for size =
    match Hashtbl.find_opt entries size with
    | Some e -> e
    | None ->
      let e = { index = Two_layer_index.create ~mode:index_mode ~tau (); small = [] } in
      Hashtbl.add entries size e;
      e
  in
  let preps : Ted.prep option array = Array.make n None in
  let prep i =
    match preps.(i) with
    | Some p -> p
    | None ->
      let p = Ted.preprocess trees.(i) in
      preps.(i) <- Some p;
      p
  in
  let n_probed = ref 0 in
  let n_matched = ref 0 in
  let n_small_hits = ref 0 in
  let n_indexed = ref 0 in
  let window_pairs = ref 0 in
  (* Candidate pairs are collected during the sweep and verified in one
     deferred batch: verification is a pure function of the preprocessed
     trees, which lets it run on several domains when asked. *)
  let candidate_pairs = ref [] in
  (* Trees already paired with the current tree in this iteration. *)
  let checked : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  for b = 0 to n - 1 do
    let ti = order.(b) in
    let size_i = sizes.(ti) in
    Hashtbl.reset checked;
    Timer.start cand_timer;
    let btree = Binary_tree.of_tree trees.(ti) in
    (* Candidate generation: probe the inverted lists of every admissible
       size. *)
    let pending = ref [] in
    for size_j = max 1 (size_i - tau) to size_i do
      match Hashtbl.find_opt entries size_j with
      | None -> ()
      | Some entry ->
        (* Sub-δ trees in the window are always candidates. *)
        List.iter
          (fun tj ->
            if not (Hashtbl.mem checked tj) then begin
              Hashtbl.add checked tj ();
              incr n_small_hits;
              pending := tj :: !pending
            end)
          entry.small;
        for v = 0 to size_i - 1 do
          Two_layer_index.probe entry.index btree v (fun s ->
              incr n_probed;
              let tj = s.Subgraph.tree_id in
              if not (Hashtbl.mem checked tj) then
                if Subgraph.matches s btree v then begin
                  incr n_matched;
                  Hashtbl.add checked tj ();
                  pending := tj :: !pending
                end)
        done
    done;
    Timer.stop cand_timer;
    List.iter (fun tj -> candidate_pairs := (ti, tj) :: !candidate_pairs) !pending;
    (* Index the current tree for subsequent iterations. *)
    Timer.start cand_timer;
    let entry = entry_for size_i in
    if size_i < delta then entry.small <- ti :: entry.small
    else begin
      let part =
        match rng with
        | None -> Partition.partition btree ~delta
        | Some rng -> Partition.random_partition rng btree ~delta
      in
      Array.iter
        (fun s ->
          Two_layer_index.insert entry.index s;
          incr n_indexed)
        (Subgraph.of_partition ~tree_id:ti part)
    end;
    Timer.stop cand_timer
  done;
  (* Deferred verification, optionally on several domains.  Preprocessing
     is completed sequentially first: the per-tree caches are not safe to
     fill concurrently, while the distance computations only read them. *)
  let pairs_arr = Array.of_list (List.rev !candidate_pairs) in
  let distances =
    Timer.time verify_timer (fun () ->
        Array.iter
          (fun (i, j) ->
            ignore (prep i);
            ignore (prep j))
          pairs_arr;
        Tsj_join.Parallel.map ~domains:verify_domains
          (fun (i, j) ->
            if bounded_verify then
              Tsj_join.Sweep.verify_bounded ?metric ~tau (prep i) (prep j)
            else Tsj_join.Sweep.verify_distance ?metric (prep i) (prep j))
          pairs_arr)
  in
  let results = ref [] in
  Array.iteri
    (fun idx (i, j) ->
      let d = distances.(idx) in
      if d <= tau then begin
        let a = min i j and b = max i j in
        results := { Types.i = a; j = b; distance = d } :: !results
      end)
    pairs_arr;
  let candidates = ref (Array.length pairs_arr) in
  (* Window-pair count (the shared universe statistic): trees are sorted by
     size, so a sliding lower pointer suffices. *)
  let lo = ref 0 in
  for b = 0 to n - 1 do
    while sizes.(order.(b)) - sizes.(order.(!lo)) > tau do
      incr lo
    done;
    window_pairs := !window_pairs + (b - !lo)
  done;
  let pairs = List.rev !results in
  ( {
      Types.pairs;
      stats =
        {
          Types.n_trees = n;
          tau;
          n_window_pairs = !window_pairs;
          n_candidates = !candidates;
          n_results = List.length pairs;
          candidate_time_s = Timer.elapsed_s cand_timer;
          verify_time_s = Timer.elapsed_s verify_timer;
        };
    },
    {
      n_probed = !n_probed;
      n_matched = !n_matched;
      n_small_tree_hits = !n_small_hits;
      n_subgraphs_indexed = !n_indexed;
    } )

let join ?partitioning ?index_mode ?verify_domains ?bounded_verify ?metric ~trees ~tau
    () =
  fst
    (join_with_probe_stats ?partitioning ?index_mode ?verify_domains ?bounded_verify
       ?metric ~trees ~tau ())
