(** δ-partitioning of LC-RS binary trees (Section 3.3 of the paper).

    A δ-partitioning removes [δ - 1] edges ("bridging edges") from the
    binary tree, leaving δ connected components ("subgraphs").  The
    partitioning scheme maximizes the minimum component size: small
    components are subgraphs of many trees and generate spurious join
    candidates.

    - {!partitionable} is the greedy linear-time (δ,γ)-partitionable test
      (paper Algorithm 2): walk the tree in postorder keeping per-node
      [size] and [detached] counters and cut a γ-subtree as soon as the
      live subtree reaches γ nodes.
    - {!max_min_size} binary-searches the largest feasible γ (Algorithm 3)
      between the bounds ⌊|T|/δ⌋ and ⌊(|T|+δ-1)/(2δ-1)⌋.
    - {!partition} extracts the actual components for that γ; component
      ids are ordered by the postorder number of their root node, which is
      the order [k] the postorder-pruning index layer depends on.
    - {!random_partition} cuts δ-1 uniformly random edges instead — the
      ablation baseline the paper reports PartSJ beats by 50–300%. *)

type t = {
  btree : Tsj_tree.Binary_tree.t;
  delta : int;              (** number of components *)
  gamma : int;              (** size constraint achieved (0 for random) *)
  assignment : int array;   (** node -> component id in [0, delta) *)
  roots : int array;        (** component id -> its root node; strictly
                                increasing, [roots.(delta-1)] is the tree
                                root *)
}

val partitionable : Tsj_tree.Binary_tree.t -> delta:int -> gamma:int -> bool
(** @raise Invalid_argument if [delta < 1] or [gamma < 1]. *)

val max_min_size : Tsj_tree.Binary_tree.t -> delta:int -> int
(** Largest γ such that the tree is (δ,γ)-partitionable.
    @raise Invalid_argument if [delta < 1] or the tree has fewer than
    [delta] nodes (no δ-partitioning exists). *)

val partition : Tsj_tree.Binary_tree.t -> delta:int -> t
(** Balanced partition at [gamma = max_min_size].  Same preconditions as
    {!max_min_size}. *)

val random_partition : Tsj_util.Prng.t -> Tsj_tree.Binary_tree.t -> delta:int -> t
(** δ-partitioning along [delta - 1] distinct uniformly random edges. *)

val component_sizes : t -> int array

val bridging_edges : t -> (int * int) list
(** The removed [(parent, child)] edges; exactly [delta - 1] of them. *)
