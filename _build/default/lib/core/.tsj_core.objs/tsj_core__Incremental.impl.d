lib/core/incremental.ml: Array Hashtbl List Partition Subgraph Tsj_ted Tsj_tree Two_layer_index
