lib/core/incremental.mli: Tsj_tree Two_layer_index
