lib/core/partsj.mli: Tsj_join Tsj_tree Two_layer_index
