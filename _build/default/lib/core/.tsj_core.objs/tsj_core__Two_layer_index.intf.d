lib/core/two_layer_index.mli: Subgraph Tsj_tree
