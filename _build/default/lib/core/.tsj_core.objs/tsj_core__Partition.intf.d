lib/core/partition.mli: Tsj_tree Tsj_util
