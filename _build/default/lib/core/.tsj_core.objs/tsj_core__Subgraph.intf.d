lib/core/subgraph.mli: Partition Tsj_tree
