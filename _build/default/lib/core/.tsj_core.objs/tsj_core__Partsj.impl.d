lib/core/partsj.ml: Array Hashtbl List Partition Subgraph Tsj_join Tsj_ted Tsj_tree Tsj_util Two_layer_index
