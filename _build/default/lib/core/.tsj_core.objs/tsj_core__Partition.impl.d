lib/core/partition.ml: Array List Printf Tsj_tree Tsj_util
