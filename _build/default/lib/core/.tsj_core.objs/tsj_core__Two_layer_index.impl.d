lib/core/two_layer_index.ml: Array Hashtbl List Subgraph Tsj_tree
