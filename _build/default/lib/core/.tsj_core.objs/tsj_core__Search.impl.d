lib/core/search.ml: Array Hashtbl In_channel List Option Out_channel Partition Printf String Subgraph Tsj_join Tsj_ted Tsj_tree Tsj_util Two_layer_index
