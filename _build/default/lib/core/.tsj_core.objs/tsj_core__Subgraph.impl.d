lib/core/subgraph.ml: Array Partition Tsj_tree
