(** Streaming similarity join.

    The paper motivates PartSJ with "streaming workloads where tree
    objects (e.g., XML and HTML entities) are inserted and updated at a
    high rate" — its index is already built on-the-fly.  This module
    removes the remaining batch assumption (size-ascending processing):
    trees may arrive in {e any} order.  On arrival, a tree probes the
    per-size indexes over the whole [size ± τ] band (Lemma 2 partitions
    the {e indexed} tree, so the direction of the size difference is
    irrelevant), reports its join partners among everything seen so far,
    and is then partitioned and indexed itself.

    Feeding a whole collection through {!add} yields exactly the self-join
    result of {!Partsj.join}. *)

type t

val create : ?mode:Two_layer_index.mode -> tau:int -> unit -> t
(** @raise Invalid_argument if [tau < 0]. *)

val tau : t -> int

val n_trees : t -> int
(** Trees inserted so far. *)

val add : t -> Tsj_tree.Tree.t -> (int * int) list
(** [add t tree] inserts [tree] (its id is the number of previously
    inserted trees) and returns [(id, distance)] for every earlier tree
    within [τ], sorted by id. *)

val tree : t -> int -> Tsj_tree.Tree.t
(** @raise Invalid_argument on an unknown id. *)

val stats : t -> int * int
(** [(candidates verified, subgraphs indexed)] so far. *)
