module Binary_tree = Tsj_tree.Binary_tree
module Label = Tsj_tree.Label

type t = {
  tree_id : int;
  tree_size : int;
  btree : Binary_tree.t;
  assignment : int array;
  component : int;
  root : int;
  root_gpost : int;
  rank : int;
  n_nodes : int;
  incoming : Binary_tree.child_kind;
}

let of_partition ~tree_id (p : Partition.t) =
  let b = p.Partition.btree in
  let sizes = Partition.component_sizes p in
  (* The paper orders a tree's subgraphs by the general-postorder number of
     their root (the identifiers p_1 < ... < p_delta of Section 3.4); that
     order defines the rank k.  It can differ from the binary-postorder
     order of the component roots. *)
  let by_gpost = Array.init p.Partition.delta (fun k -> k) in
  Array.sort
    (fun k1 k2 ->
      compare b.Binary_tree.gpost.(p.Partition.roots.(k1))
        b.Binary_tree.gpost.(p.Partition.roots.(k2)))
    by_gpost;
  Array.mapi
    (fun rank0 k ->
      let root = p.Partition.roots.(k) in
      {
        tree_id;
        tree_size = b.Binary_tree.size;
        btree = b;
        assignment = p.Partition.assignment;
        component = k;
        root;
        root_gpost = b.Binary_tree.gpost.(root);
        rank = rank0 + 1;
        n_nodes = sizes.(k);
        incoming = b.Binary_tree.kind.(root);
      })
    by_gpost

let slot s child =
  if child < 0 then Label.epsilon
  else if s.assignment.(child) <> s.component then Label.epsilon
  else s.btree.Binary_tree.label.(child)

let label_key s =
  let b = s.btree in
  ( b.Binary_tree.label.(s.root),
    slot s b.Binary_tree.left.(s.root),
    slot s b.Binary_tree.right.(s.root) )

let matches s (target : Binary_tree.t) v =
  let src = s.btree in
  (* The component root must preserve whether it has an incoming edge at
     all (tree root vs. hanging off a bridging edge), but NOT the edge's
     left/right category: deleting a node makes its first child take the
     deleted node's place in the sibling chain, flipping that child's
     incoming category even though the child's subgraph is otherwise
     untouched.  Matching the category (as the paper's Figure 7 narrative
     does) would make deletions touch three subgraphs and break Lemma 1 /
     Lemma 2 at delta = 2*tau + 1 — see DESIGN.md, finding 3. *)
  (s.incoming = Binary_tree.Root) = (target.Binary_tree.kind.(v) = Binary_tree.Root)
  &&
  let rec walk u v =
    src.Binary_tree.label.(u) = target.Binary_tree.label.(v)
    && check src.Binary_tree.left.(u) target.Binary_tree.left.(v)
    && check src.Binary_tree.right.(u) target.Binary_tree.right.(v)
  and check uc vc =
    if uc < 0 then vc < 0 (* no edge in the component: none allowed in T *)
    else if s.assignment.(uc) <> s.component then vc >= 0 (* bridging edge *)
    else vc >= 0 && walk uc vc
  in
  walk s.root v

let occurs_in s target =
  let n = target.Binary_tree.size in
  let rec scan v = v < n && (matches s target v || scan (v + 1)) in
  scan 0
