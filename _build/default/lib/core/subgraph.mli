(** Subgraphs of a δ-partitioning, and the subgraph → subtree matching
    test (Section 3.2, "s matches the subtree rooted at node N").

    A subgraph is one connected component of the partitioned LC-RS tree
    plus its incident bridging edges.  It {e matches} tree [T] at node [N]
    iff mapping its root to [N] maps every component node onto a node of
    [T] with the same label and the same edge configuration:

    - where the component has an internal child edge, [T] must have a child
      there and the structures must match recursively;
    - where the component has an outgoing bridging edge, [T] must have a
      child there (its content belongs to another subgraph and is
      unconstrained);
    - where the component has no edge, [T] must have no child there;
    - the component root preserves whether it has an incoming edge at all
      ([N] is the tree root iff the component root was), but {e not} the
      edge's left/right category — a deletion moves the deleted node's
      first child into its sibling-chain position, flipping that child's
      incoming category while leaving its subgraph otherwise untouched.
      Matching the category (as the paper's Figure 7 narrative suggests)
      would let one deletion change three subgraphs, breaking Lemma 1;
      see DESIGN.md, finding 3.

    An untouched subgraph satisfies exactly this predicate in the edited
    tree, which is what makes the Lemma 2 filter lossless. *)

type t = {
  tree_id : int;       (** which collection tree this subgraph came from *)
  tree_size : int;     (** node count of that tree *)
  btree : Tsj_tree.Binary_tree.t;  (** the container tree *)
  assignment : int array;          (** the partition's component map *)
  component : int;     (** this subgraph's component id in the partition *)
  root : int;          (** component root node (binary-postorder id) *)
  root_gpost : int;    (** the root's general-tree postorder number — the
                           identifier [p_k] of the postorder-pruning layer *)
  rank : int;          (** k: 1-based position among the tree's subgraphs,
                           ordered by [root_gpost] *)
  n_nodes : int;       (** component size *)
  incoming : Tsj_tree.Binary_tree.child_kind;
}

val of_partition : tree_id:int -> Partition.t -> t array
(** The δ subgraphs ordered by rank (ascending root postorder). *)

val label_key : t -> int * int * int
(** [(root label, left slot, right slot)] where a slot is the child's label
    when the child edge is internal to the component, and {!Tsj_tree.Label.epsilon}
    when the child is absent or reached through a bridging edge.  This is
    the key of the label-indexing layer. *)

val matches : t -> Tsj_tree.Binary_tree.t -> int -> bool
(** [matches s target v]: does [s] match [target] at node [v]?  Runs in
    [O(n_nodes)]. *)

val occurs_in : t -> Tsj_tree.Binary_tree.t -> bool
(** Does [s] match [target] at any node?  (Brute-force scan; used by tests
    and by the no-index ablation.) *)
