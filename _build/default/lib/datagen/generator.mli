(** Synthetic tree generation in the style of Zaki's TreeGenerator [28],
    which the paper uses for its synthetic datasets and sensitivity study
    (Table 1: maximum fanout [f], maximum depth [d], number of labels [l],
    average tree size [t]).

    Two generation modes are provided:

    - {!random_tree} draws an independent tree: a target size is sampled
      around [avg_size] and node budget is split recursively among a random
      number of children, respecting the fanout and depth caps.
    - {!Mother.sample} mimics Zaki's mother-tree construction: every
      dataset tree is a random root-containing connected subtree of a large
      shared template ("mother") tree.  Trees sampled from the same mother
      share large fragments, which is what makes similarity-join results
      non-empty — exactly the role the mother tree plays in [28]. *)

type params = {
  max_fanout : int;   (** [f]: no node has more children than this *)
  max_depth : int;    (** [d]: no root-to-leaf path has more nodes than this *)
  n_labels : int;     (** [l]: size of the label alphabet *)
  avg_size : int;     (** [t]: average number of nodes per tree *)
  size_jitter : float;(** relative half-width of the uniform size range *)
}

val default : params
(** The paper's synthetic defaults: [f = 3], [d = 5], [l = 20], [t = 80],
    with 25% size jitter. *)

val capacity : max_fanout:int -> max_depth:int -> int
(** Maximum node count of a tree respecting the caps (saturates at a large
    value instead of overflowing). *)

val clamp_size : params -> int -> int
(** Clamp a target size to what the fanout/depth caps allow (with a small
    safety margin so generation never gets cornered). *)

val alphabet : params -> Tsj_tree.Label.t array
(** The interned label pool ["L0" .. "L(l-1)"]. *)

val random_tree : Tsj_util.Prng.t -> params -> Tsj_tree.Tree.t
(** One independent random tree.  @raise Invalid_argument on nonsensical
    parameters ([max_fanout < 1], [max_depth < 1], [n_labels < 1],
    [avg_size < 1]). *)

val random_trees : Tsj_util.Prng.t -> params -> int -> Tsj_tree.Tree.t array

module Mother : sig
  type t
  (** A template tree prepared for repeated subtree sampling. *)

  val create : Tsj_util.Prng.t -> params -> t
  (** Builds a mother tree larger than [avg_size] (as large as the caps
      allow, up to a few multiples of the average). *)

  val tree : t -> Tsj_tree.Tree.t

  val sample : Tsj_util.Prng.t -> t -> target_size:int -> Tsj_tree.Tree.t
  (** A uniform-ish random connected subtree containing the mother's root,
      grown frontier-node-by-frontier-node to [target_size] (capped by the
      mother's size).  Child order and labels are inherited from the
      mother. *)
end
