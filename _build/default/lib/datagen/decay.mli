(** The decay perturbation model of the paper's synthetic workloads
    (adopted from Yang et al. [27]): every node of a generated tree is
    changed with probability [Dz]; a change is an insertion, a deletion or
    a renaming with equal probability.  The paper fixes [Dz = 0.05]. *)

val default_dz : float
(** 0.05, as in the paper. *)

val perturb :
  Tsj_util.Prng.t ->
  dz:float ->
  labels:Tsj_tree.Label.t array ->
  Tsj_tree.Tree.t ->
  Tsj_tree.Tree.t
(** Draws the number of changes as Binomial(size, dz) and applies that many
    random edit operations.  @raise Invalid_argument if [dz] is outside
    [\[0,1\]] or [labels] is empty. *)

val perturb_all :
  Tsj_util.Prng.t ->
  dz:float ->
  labels:Tsj_tree.Label.t array ->
  Tsj_tree.Tree.t array ->
  Tsj_tree.Tree.t array
