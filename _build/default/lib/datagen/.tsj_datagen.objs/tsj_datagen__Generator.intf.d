lib/datagen/generator.mli: Tsj_tree Tsj_util
