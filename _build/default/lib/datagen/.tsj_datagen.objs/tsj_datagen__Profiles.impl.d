lib/datagen/profiles.ml: Array Decay Generator Hashtbl Int List Printf Set String Tsj_tree Tsj_util
