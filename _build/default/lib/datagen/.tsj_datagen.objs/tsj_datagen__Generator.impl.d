lib/datagen/generator.ml: Array List Printf Tsj_tree Tsj_util
