lib/datagen/decay.mli: Tsj_tree Tsj_util
