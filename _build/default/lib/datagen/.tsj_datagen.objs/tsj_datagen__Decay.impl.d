lib/datagen/decay.ml: Array Tsj_tree Tsj_util
