lib/datagen/profiles.mli: Generator Tsj_tree
