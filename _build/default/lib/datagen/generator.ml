module Tree = Tsj_tree.Tree
module Label = Tsj_tree.Label
module Prng = Tsj_util.Prng

type params = {
  max_fanout : int;
  max_depth : int;
  n_labels : int;
  avg_size : int;
  size_jitter : float;
}

let default =
  { max_fanout = 3; max_depth = 5; n_labels = 20; avg_size = 80; size_jitter = 0.25 }

let validate p =
  if p.max_fanout < 1 then invalid_arg "Generator: max_fanout must be >= 1";
  if p.max_depth < 1 then invalid_arg "Generator: max_depth must be >= 1";
  if p.n_labels < 1 then invalid_arg "Generator: n_labels must be >= 1";
  if p.avg_size < 1 then invalid_arg "Generator: avg_size must be >= 1";
  if p.size_jitter < 0.0 || p.size_jitter >= 1.0 then
    invalid_arg "Generator: size_jitter must be in [0,1)"

let saturation = 1 lsl 30

(* (f^d - 1) / (f - 1), saturating. *)
let capacity ~max_fanout ~max_depth =
  if max_fanout <= 1 then max_depth
  else begin
    let rec go levels nodes level_width =
      if levels = 0 || nodes >= saturation then min nodes saturation
      else
        let level_width = min saturation (level_width * max_fanout) in
        go (levels - 1) (min saturation (nodes + level_width)) level_width
    in
    go (max_depth - 1) 1 1
  end

let clamp_size p target =
  let cap = capacity ~max_fanout:p.max_fanout ~max_depth:p.max_depth in
  (* Leave 10% slack so the recursive splitter is never forced into the
     single maximal shape. *)
  let safe_cap = max 1 (cap - (cap / 10)) in
  max 1 (min target safe_cap)

let alphabet p = Array.init p.n_labels (fun i -> Label.intern (Printf.sprintf "L%d" i))

(* Build a tree with exactly [budget] nodes, fanout/depth respecting.
   [depth_left] counts remaining levels including this node's. *)
let rec build rng ~labels ~max_fanout ~depth_left budget =
  assert (budget >= 1);
  let label = Prng.choice rng labels in
  let remaining = budget - 1 in
  if remaining = 0 || depth_left <= 1 then Tree.leaf label
  else begin
    let child_cap = capacity ~max_fanout ~max_depth:(depth_left - 1) in
    (* Need c children with 1 <= part_i <= child_cap summing to remaining. *)
    let c_min = (remaining + child_cap - 1) / child_cap in
    let c_max = min max_fanout remaining in
    let c = Prng.int_in rng (max 1 c_min) (max c_min c_max) in
    let children = ref [] in
    let left = ref remaining in
    for i = c downto 1 do
      (* Children still to fill after this one: i - 1. *)
      let lo = max 1 (!left - ((i - 1) * child_cap)) in
      let hi = min child_cap (!left - (i - 1)) in
      let part = if lo >= hi then lo else Prng.int_in rng lo hi in
      left := !left - part;
      children :=
        build rng ~labels ~max_fanout ~depth_left:(depth_left - 1) part :: !children
    done;
    assert (!left = 0);
    Tree.node label !children
  end

let target_size rng p =
  let t = float_of_int p.avg_size in
  let lo = int_of_float (t *. (1.0 -. p.size_jitter)) in
  let hi = int_of_float (t *. (1.0 +. p.size_jitter)) in
  clamp_size p (Prng.int_in rng (max 1 lo) (max 1 hi))

let random_tree rng p =
  validate p;
  let labels = alphabet p in
  let budget = target_size rng p in
  build rng ~labels ~max_fanout:p.max_fanout ~depth_left:p.max_depth budget

let random_trees rng p n = Array.init n (fun _ -> random_tree rng p)

module Mother = struct
  (* Array form of the template for fast repeated sampling:
     children.(i) lists the node ids of node i's children in order. *)
  type t = {
    tree : Tree.t;
    labels : int array;
    children : int array array;
    root : int;
    size : int;
  }

  let create rng p =
    validate p;
    let lbls = alphabet p in
    let cap = capacity ~max_fanout:p.max_fanout ~max_depth:p.max_depth in
    let mother_size = clamp_size p (min (max (3 * p.avg_size) (p.avg_size + 20)) cap) in
    let tree =
      build rng ~labels:lbls ~max_fanout:p.max_fanout ~depth_left:p.max_depth mother_size
    in
    let n = Tree.size tree in
    let labels = Array.make n 0 in
    let children = Array.make n [||] in
    let counter = ref 0 in
    let rec index (node : Tree.t) =
      let child_ids = List.map index node.children in
      let me = !counter in
      incr counter;
      labels.(me) <- node.label;
      children.(me) <- Array.of_list child_ids;
      me
    in
    let root = index tree in
    { tree; labels; children; root; size = n }

  let tree m = m.tree

  let sample rng m ~target_size =
    let target = max 1 (min target_size m.size) in
    let included = Array.make m.size false in
    included.(m.root) <- true;
    let frontier = Tsj_util.Vec_int.create () in
    Array.iter (Tsj_util.Vec_int.push frontier) m.children.(m.root);
    let taken = ref 1 in
    while !taken < target && not (Tsj_util.Vec_int.is_empty frontier) do
      (* Swap-remove a uniformly random frontier node. *)
      let i = Prng.int rng (Tsj_util.Vec_int.length frontier) in
      let v = Tsj_util.Vec_int.get frontier i in
      let last = Tsj_util.Vec_int.pop frontier in
      if i < Tsj_util.Vec_int.length frontier then Tsj_util.Vec_int.set frontier i last;
      included.(v) <- true;
      incr taken;
      Array.iter (Tsj_util.Vec_int.push frontier) m.children.(v)
    done;
    let rec rebuild id =
      let kids =
        Array.to_list m.children.(id)
        |> List.filter_map (fun c -> if included.(c) then Some (rebuild c) else None)
      in
      Tree.node m.labels.(id) kids
    in
    rebuild m.root
end
