(** Dataset profiles: deterministic stand-ins for the paper's corpora.

    The original corpora are not redistributable/offline-available, so each
    profile reproduces the *published statistics* of its namesake (average
    size, label alphabet, average/maximum depth, shape class) with the
    mother-tree sampling model of {!Generator.Mother} plus the decay
    perturbation — see DESIGN.md, substitution 2.  The paper's numbers:

    - Swissprot: 100K flat, medium trees — avg size 62.37, 84 labels,
      avg depth 2.65, max depth 4;
    - Treebank: 50K small deep trees — avg size 45.12, 218 labels,
      avg depth 6.93, max depth 35;
    - Sentiment: 10K tagged sentences — avg size 37.31, 5 labels,
      avg depth 10.84, max depth 30;
    - Synthetic: 10K trees — fanout 3, depth 5, 20 labels, size 80,
      decay 0.05.

    Several mother trees are used per dataset (controlled by
    [mothers_per_1000]) so that similarity is clustered rather than
    global. *)

type t = {
  name : string;
  params : Generator.params;
  dz : float;                (** decay probability applied to every tree *)
  mothers_per_1000 : int;    (** template diversity per 1000 trees; 0 =
                                 independent random trees (no templates) *)
  dup_rate : float;          (** probability that an entry is a lightly
                                 edited copy of an earlier entry — real
                                 corpora are near-duplicate heavy, and this
                                 is what makes the join result non-empty *)
  dup_dz : float;            (** per-node edit probability for such copies *)
  default_cardinality : int; (** the paper's dataset size *)
}

val swissprot : t
val treebank : t
val sentiment : t
val synthetic : t

val all : t list

val find : string -> t option
(** Look up by (case-insensitive) name. *)

val instantiate : t -> seed:int -> n:int -> Tsj_tree.Tree.t array
(** Generate [n] trees deterministically from [seed]. *)

val with_params : t -> Generator.params -> t
(** Same profile with overridden generator parameters (sensitivity
    sweeps). *)

val describe : Tsj_tree.Tree.t array -> string
(** Human-readable summary (count, avg size, avg/max depth, labels) in the
    format of the paper's dataset descriptions. *)
