module Tree = Tsj_tree.Tree
module Edit_op = Tsj_tree.Edit_op
module Prng = Tsj_util.Prng

let default_dz = 0.05

let perturb rng ~dz ~labels tree =
  if dz < 0.0 || dz > 1.0 then invalid_arg "Decay.perturb: dz must be in [0,1]";
  if Array.length labels = 0 then invalid_arg "Decay.perturb: empty label alphabet";
  let n = Tree.size tree in
  let changes = ref 0 in
  for _ = 1 to n do
    if Prng.float rng < dz then incr changes
  done;
  let _ops, result = Edit_op.random_script rng ~labels !changes tree in
  result

let perturb_all rng ~dz ~labels trees = Array.map (perturb rng ~dz ~labels) trees
