let preorder_labels t =
  let acc = Tsj_util.Vec_int.create ~capacity:(Tree.size t) () in
  Tree.iter_preorder (fun (n : Tree.t) -> Tsj_util.Vec_int.push acc n.label) t;
  Tsj_util.Vec_int.to_array acc

let postorder_labels t =
  let acc = Tsj_util.Vec_int.create ~capacity:(Tree.size t) () in
  Tree.iter_postorder (fun (n : Tree.t) -> Tsj_util.Vec_int.push acc n.label) t;
  Tsj_util.Vec_int.to_array acc

let euler_tour t =
  let acc = Tsj_util.Vec_int.create ~capacity:(2 * Tree.size t) () in
  let rec go (n : Tree.t) =
    Tsj_util.Vec_int.push acc n.label;
    List.iter go n.children;
    Tsj_util.Vec_int.push acc n.label
  in
  go t;
  Tsj_util.Vec_int.to_array acc

let parent_postorder t =
  let n = Tree.size t in
  let parent = Array.make n (-1) in
  (* Postorder-number nodes on the fly; children are numbered before their
     parent, so we collect child numbers and patch them once the parent's
     number is known. *)
  let counter = ref 0 in
  let rec go (node : Tree.t) =
    let child_ids = List.map go node.children in
    let me = !counter in
    incr counter;
    List.iter (fun c -> parent.(c) <- me) child_ids;
    me
  in
  ignore (go t);
  parent

let depths_postorder t =
  let n = Tree.size t in
  let depths = Array.make n 0 in
  let counter = ref 0 in
  let rec go d (node : Tree.t) =
    List.iter (go (d + 1)) node.children;
    depths.(!counter) <- d;
    incr counter
  in
  go 1 t;
  depths
