(** Interned node labels.

    Trees in the collections share a small label alphabet (84 distinct labels
    in Swissprot, 5 in Sentiment, ...), while join kernels compare labels
    billions of times.  Labels are therefore interned once into dense
    integers; all structural algorithms work on [int]s and only printing
    resolves names back.

    The intern table is global and not synchronized: call {!intern} only
    from the main domain (loading and generation do; the multicore
    verification path only compares already-interned ids). *)

type t = int
(** An interned label.  Equality and hashing are integer operations. *)

val epsilon : t
(** The dummy/empty label [ε] used for missing children in binary branches
    and twig keys.  Never returned by {!intern}. *)

val intern : string -> t
(** [intern s] returns the unique label for [s], registering it on first
    use.  @raise Invalid_argument on the empty string (reserved for
    {!epsilon}). *)

val name : t -> string
(** Printable name of a label; [""] for {!epsilon}.
    @raise Invalid_argument on an unregistered id. *)

val mem : string -> bool
(** Has this string been interned already? *)

val count : unit -> int
(** Number of distinct labels interned so far (excluding [ε]). *)

val pp : Format.formatter -> t -> unit
