(** Label sequences from tree traversals.

    The STR baseline (Guha et al.) lower-bounds the tree edit distance by
    the string edit distance between preorder and between postorder label
    sequences; these functions produce those sequences as interned-label
    arrays. *)

val preorder_labels : Tree.t -> Label.t array

val postorder_labels : Tree.t -> Label.t array

val euler_tour : Tree.t -> Label.t array
(** Euler-tour sequence: each node's label appears on entering and leaving
    the node (so the sequence has length [2 * size]).  Used by the
    Akutsu-style Euler-string bound. *)

val parent_postorder : Tree.t -> int array
(** [parent.(i)] is the 0-based postorder number of the parent of the node
    with postorder number [i]; [-1] for the root. *)

val depths_postorder : Tree.t -> int array
(** Depth of each node in postorder (root has depth 1). *)
