let escape s =
  let b = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let of_tree ?(name = "tree") t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "digraph \"%s\" {\n  node [shape=ellipse];\n" (escape name));
  let counter = ref 0 in
  let rec go (node : Tree.t) =
    let me = !counter in
    incr counter;
    Buffer.add_string b
      (Printf.sprintf "  n%d [label=\"%s\"];\n" me (escape (Label.name node.label)));
    List.iter
      (fun c ->
        let child_id = !counter in
        go c;
        Buffer.add_string b (Printf.sprintf "  n%d -> n%d;\n" me child_id))
      node.children;
    ()
  in
  go t;
  Buffer.add_string b "}\n";
  Buffer.contents b

let palette =
  [| "#a6cee3"; "#b2df8a"; "#fb9a99"; "#fdbf6f"; "#cab2d6"; "#ffff99"; "#1f78b4"; "#33a02c" |]

let binary_body b (t : Binary_tree.t) ~color =
  for i = 0 to t.Binary_tree.size - 1 do
    let fill = color i in
    Buffer.add_string b
      (Printf.sprintf
         "  n%d [label=\"%s\\nb%d g%d\" style=filled fillcolor=\"%s\"];\n" i
         (escape (Label.name t.Binary_tree.label.(i)))
         i
         t.Binary_tree.gpost.(i)
         fill)
  done

let binary_edges b (t : Binary_tree.t) ~edge_attr =
  for i = 0 to t.Binary_tree.size - 1 do
    (match t.Binary_tree.left.(i) with
    | -1 -> ()
    | l -> Buffer.add_string b (Printf.sprintf "  n%d -> n%d [%s];\n" i l (edge_attr i l "")) );
    match t.Binary_tree.right.(i) with
    | -1 -> ()
    | r ->
      Buffer.add_string b (Printf.sprintf "  n%d -> n%d [%s];\n" i r (edge_attr i r "style=dashed"))
  done

let of_binary ?(name = "lcrs") t =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "digraph \"%s\" {\n  node [shape=box];\n" (escape name));
  binary_body b t ~color:(fun _ -> "#ffffff");
  binary_edges b t ~edge_attr:(fun _ _ base -> if base = "" then "style=solid" else base);
  Buffer.add_string b "}\n";
  Buffer.contents b

let of_partition ?(name = "partition") t ~assignment =
  if Array.length assignment <> t.Binary_tree.size then
    invalid_arg "Dot.of_partition: assignment length mismatch";
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "digraph \"%s\" {\n  node [shape=box];\n" (escape name));
  binary_body b t ~color:(fun i -> palette.(assignment.(i) mod Array.length palette));
  binary_edges b t ~edge_attr:(fun src dst base ->
      if assignment.(src) <> assignment.(dst) then "color=red penwidth=2"
      else if base = "" then "style=solid"
      else base);
  Buffer.add_string b "}\n";
  Buffer.contents b
