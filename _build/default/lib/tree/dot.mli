(** Graphviz (DOT) rendering of trees, binary trees and partitions —
    debugging/visualization support.

    [dot -Tsvg out.dot > out.svg] renders the output. *)

val of_tree : ?name:string -> Tree.t -> string
(** A general tree as a digraph; node labels are the tree labels. *)

val of_binary : ?name:string -> Binary_tree.t -> string
(** The LC-RS form: solid edges for left (first-child) pointers, dashed
    for right (next-sibling) pointers; node captions show the label with
    binary and general postorder numbers. *)

val of_partition :
  ?name:string -> Binary_tree.t -> assignment:int array -> string
(** Like {!of_binary} with components colored (cycling through a fixed
    palette) and bridging edges drawn bold red — renders exactly what the
    PartSJ index stores for one tree.
    @raise Invalid_argument if [assignment] has the wrong length. *)
