exception Parse_error of string

type cursor = { input : string; mutable pos : int }

let error cur msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" cur.pos msg))

let peek cur = if cur.pos < String.length cur.input then Some cur.input.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let rec go () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      go ()
    | _ -> ()
  in
  go ()

let is_token_char c =
  match c with '(' | ')' | ' ' | '\t' | '\n' | '\r' -> false | _ -> true

let parse_token cur =
  let start = cur.pos in
  let rec go () =
    match peek cur with
    | Some c when is_token_char c ->
      advance cur;
      go ()
    | _ -> ()
  in
  go ();
  if cur.pos = start then error cur "expected a token";
  String.sub cur.input start (cur.pos - start)

let word_marker = "#word"

let rec parse_node ~drop_words cur =
  skip_ws cur;
  match peek cur with
  | Some '(' ->
    advance cur;
    skip_ws cur;
    (* Penn Treebank wraps sentences in an unlabeled pair of parens:
       "( (S ...) )".  Treat a '(' right after '(' as such a wrapper
       when it contains exactly one node. *)
    let label =
      match peek cur with
      | Some '(' -> None
      | _ -> Some (parse_token cur)
    in
    let children = ref [] in
    let rec kids () =
      skip_ws cur;
      match peek cur with
      | Some ')' -> advance cur
      | Some _ ->
        children := parse_node ~drop_words cur :: !children;
        kids ()
      | None -> error cur "unterminated '('"
    in
    kids ();
    let children = List.rev !children in
    (match (label, children) with
    | None, [ only ] -> only
    | None, _ -> error cur "unlabeled node must wrap exactly one tree"
    | Some l, children ->
      (* With [drop_words], bare-token leaves were marked below; remove
         them here so "(NN cat)" collapses to an NN leaf. *)
      let children =
        if drop_words then
          List.filter
            (fun (c : Tree.t) -> Label.name c.Tree.label <> word_marker)
            children
        else children
      in
      Tree.node (Label.intern l) children)
  | Some _ ->
    (* bare token: a leaf (usually a word) *)
    let token = parse_token cur in
    Tree.leaf (Label.intern (if drop_words then word_marker else token))
  | None -> error cur "expected a tree"

let finish_one ~drop_words cur =
  let t = parse_node ~drop_words cur in
  skip_ws cur;
  t

let of_string ?(drop_words = false) s =
  let cur = { input = s; pos = 0 } in
  match
    let t = finish_one ~drop_words cur in
    if cur.pos < String.length s then error cur "trailing content";
    t
  with
  | t -> Ok t
  | exception Parse_error msg -> Error msg

let of_string_exn ?drop_words s =
  match of_string ?drop_words s with
  | Ok t -> t
  | Error msg -> invalid_arg ("Sexp_format.of_string_exn: " ^ msg)

let forest_of_string ?(drop_words = false) s =
  let cur = { input = s; pos = 0 } in
  match
    let acc = ref [] in
    let rec go () =
      skip_ws cur;
      match peek cur with
      | None -> ()
      | Some _ ->
        acc := parse_node ~drop_words cur :: !acc;
        go ()
    in
    go ();
    List.rev !acc
  with
  | ts -> Ok ts
  | exception Parse_error msg -> Error msg

let sanitize_token s =
  String.map (fun c -> if is_token_char c then c else '_') s

let to_string t =
  let b = Buffer.create 128 in
  let rec go (node : Tree.t) =
    match node.children with
    | [] -> Buffer.add_string b (sanitize_token (Label.name node.label))
    | children ->
      Buffer.add_char b '(';
      Buffer.add_string b (sanitize_token (Label.name node.label));
      List.iter
        (fun c ->
          Buffer.add_char b ' ';
          go c)
        children;
      Buffer.add_char b ')'
  in
  go t;
  Buffer.contents b

let load_file ?drop_words path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> forest_of_string ?drop_words contents
  | exception Sys_error msg -> Error msg
