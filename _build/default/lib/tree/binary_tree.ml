type child_kind = Root | Left_of_parent | Right_of_parent

type t = {
  size : int;
  label : int array;
  left : int array;
  right : int array;
  parent : int array;
  kind : child_kind array;
  subtree_size : int array;
  gpost : int array;
}

(* General tree annotated with general-postorder numbers: the Knuth
   transform is a bijection on nodes, so each binary node inherits the
   general-postorder number of its source node. *)
type anode = { alabel : int; apost : int; achildren : anode list }

let annotate tree =
  let counter = ref 0 in
  let rec go (node : Tree.t) =
    let achildren = List.map go node.children in
    let apost = !counter in
    incr counter;
    { alabel = node.label; apost; achildren }
  in
  go tree

(* Linked intermediate form used while converting. *)
type bnode = { blabel : int; bpost : int; bleft : bnode option; bright : bnode option }

let rec conv (node : anode) (siblings : anode list) =
  let bleft =
    match node.achildren with
    | [] -> None
    | c :: rest -> Some (conv c rest)
  in
  let bright =
    match siblings with
    | [] -> None
    | s :: rest -> Some (conv s rest)
  in
  { blabel = node.alabel; bpost = node.apost; bleft; bright }

let of_tree tree =
  let n = Tree.size tree in
  let label = Array.make n 0 in
  let left = Array.make n (-1) in
  let right = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let kind = Array.make n Root in
  let subtree_size = Array.make n 1 in
  let gpost = Array.make n 0 in
  let counter = ref 0 in
  (* Postorder numbering of the binary tree: left subtree, right subtree,
     then the node itself. *)
  let rec number b =
    let l = Option.map number b.bleft in
    let r = Option.map number b.bright in
    let me = !counter in
    incr counter;
    label.(me) <- b.blabel;
    gpost.(me) <- b.bpost;
    (match l with
    | Some li ->
      left.(me) <- li;
      parent.(li) <- me;
      kind.(li) <- Left_of_parent;
      subtree_size.(me) <- subtree_size.(me) + subtree_size.(li)
    | None -> ());
    (match r with
    | Some ri ->
      right.(me) <- ri;
      parent.(ri) <- me;
      kind.(ri) <- Right_of_parent;
      subtree_size.(me) <- subtree_size.(me) + subtree_size.(ri)
    | None -> ());
    me
  in
  let root_id = number (conv (annotate tree) []) in
  assert (root_id = n - 1);
  { size = n; label; left; right; parent; kind; subtree_size; gpost }

let root t = t.size - 1

let has_left t i = t.left.(i) >= 0

let has_right t i = t.right.(i) >= 0

let to_tree t =
  (* [general i] rebuilds the general-tree node for binary node [i];
     [sibling_chain i] follows right pointers collecting a child list. *)
  let rec general i =
    Tree.node t.label.(i) (match t.left.(i) with -1 -> [] | l -> sibling_chain l)
  and sibling_chain i =
    general i :: (match t.right.(i) with -1 -> [] | r -> sibling_chain r)
  in
  general (root t)

let pp fmt t =
  for i = 0 to t.size - 1 do
    Format.fprintf fmt "%3d %-10s left=%-3d right=%-3d parent=%-3d %s@." i
      (Label.name t.label.(i))
      t.left.(i) t.right.(i) t.parent.(i)
      (match t.kind.(i) with
      | Root -> "root"
      | Left_of_parent -> "L"
      | Right_of_parent -> "R")
  done
