lib/tree/binary_tree.mli: Format Tree
