lib/tree/sexp_format.ml: Buffer In_channel Label List Printf String Tree
