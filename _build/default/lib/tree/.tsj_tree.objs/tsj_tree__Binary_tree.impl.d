lib/tree/binary_tree.ml: Array Format Label List Option Tree
