lib/tree/traversal.mli: Label Tree
