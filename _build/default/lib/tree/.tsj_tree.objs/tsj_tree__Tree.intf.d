lib/tree/tree.mli: Format Label
