lib/tree/tree.ml: Array Format Int Label List Set Stdlib
