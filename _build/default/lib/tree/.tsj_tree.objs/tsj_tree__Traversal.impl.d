lib/tree/traversal.ml: Array List Tree Tsj_util
