lib/tree/edit_op.ml: Array Format Label List Printf Tree Tsj_util
