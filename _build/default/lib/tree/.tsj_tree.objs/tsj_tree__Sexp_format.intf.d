lib/tree/sexp_format.mli: Tree
