lib/tree/bracket.ml: Buffer In_channel Label List Out_channel Printf String Tree
