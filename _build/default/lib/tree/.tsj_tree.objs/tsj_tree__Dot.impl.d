lib/tree/dot.ml: Array Binary_tree Buffer Label List Printf String Tree
