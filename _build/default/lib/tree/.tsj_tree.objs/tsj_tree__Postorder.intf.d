lib/tree/postorder.mli: Tree
