lib/tree/dot.mli: Binary_tree Tree
