lib/tree/bracket.mli: Tree
