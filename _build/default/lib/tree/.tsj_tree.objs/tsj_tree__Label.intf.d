lib/tree/label.mli: Format
