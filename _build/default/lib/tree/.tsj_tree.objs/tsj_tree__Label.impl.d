lib/tree/label.ml: Array Format Hashtbl
