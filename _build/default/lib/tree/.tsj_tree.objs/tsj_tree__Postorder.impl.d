lib/tree/postorder.ml: Array List Tree Tsj_util
