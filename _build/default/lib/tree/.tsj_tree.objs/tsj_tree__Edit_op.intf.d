lib/tree/edit_op.mli: Format Label Tree Tsj_util
