(** Rooted ordered labeled trees.

    The central data type of the library: a node carries an interned label
    and an ordered list of children.  Values are immutable; algorithms that
    need random access (TED, partitioning) first compile a tree into a
    compact array form ({!Postorder}, {!Binary_tree}). *)

type t = { label : Label.t; children : t list }

val leaf : Label.t -> t

val node : Label.t -> t list -> t

val size : t -> int
(** Number of nodes. *)

val depth : t -> int
(** Number of nodes on the longest root-to-leaf path (a leaf has depth 1). *)

val degree : t -> int
(** Maximum fanout over all nodes. *)

val label_set : t -> Label.t list
(** Distinct labels, ascending. *)

val equal : t -> t -> bool
(** Structural equality (same shape, same labels, same child order). *)

val compare : t -> t -> int
(** A total order consistent with {!equal}. *)

val hash : t -> int

val map_labels : (Label.t -> Label.t) -> t -> t

val mirror : t -> t
(** Recursively reverse the order of children.  Tree edit distance is
    invariant under simultaneous mirroring of both arguments, which is how
    the right-path TED variant is obtained. *)

val fold : (Label.t -> 'a list -> 'a) -> t -> 'a
(** Bottom-up catamorphism. *)

val iter_preorder : (t -> unit) -> t -> unit

val iter_postorder : (t -> unit) -> t -> unit

val nodes_postorder : t -> t array
(** All subtree roots in postorder; index [i] is the node with postorder
    number [i] (0-based). *)

val nodes_preorder : t -> t array

val subtree_at_postorder : t -> int -> t
(** [subtree_at_postorder t i] is the subtree rooted at the node with
    0-based postorder number [i].  @raise Invalid_argument out of range. *)

val pp : Format.formatter -> t -> unit
(** Bracket notation, e.g. [{a{b}{c{d}}}]. *)

val pp_ascii : Format.formatter -> t -> unit
(** Multi-line ASCII rendering for debugging. *)
