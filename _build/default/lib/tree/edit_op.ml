type t =
  | Rename of { node : int; label : Label.t }
  | Delete of { node : int }
  | Insert of { parent : int; first_child : int; n_children : int; label : Label.t }

let size_check tree node name =
  let n = Tree.size tree in
  if node < 0 || node >= n then
    invalid_arg (Printf.sprintf "Edit_op.%s: node %d out of range [0,%d)" name node n)

let apply_rename tree target label =
  size_check tree target "apply (rename)";
  let counter = ref 0 in
  let rec go (node : Tree.t) =
    let children = List.map go node.children in
    let me = !counter in
    incr counter;
    Tree.node (if me = target then label else node.label) children
  in
  go tree

let apply_delete tree target =
  size_check tree target "apply (delete)";
  let counter = ref 0 in
  (* Returns the rebuilt subtree and its root's postorder id. *)
  let rec go (node : Tree.t) =
    let rebuilt = List.map go node.children in
    let me = !counter in
    incr counter;
    let children =
      List.concat_map
        (fun ((sub : Tree.t), id) -> if id = target then sub.children else [ sub ])
        rebuilt
    in
    (Tree.node node.label children, me)
  in
  let rebuilt, root_id = go tree in
  if root_id = target then
    match rebuilt.children with
    | [ only ] -> only
    | _ ->
      invalid_arg
        "Edit_op.apply (delete): deleting a root with zero or several children"
  else rebuilt

let apply_insert tree parent first_child n_children label =
  size_check tree parent "apply (insert)";
  if n_children < 0 then invalid_arg "Edit_op.apply (insert): negative child span";
  let counter = ref 0 in
  let rec go (node : Tree.t) =
    let children = List.map go node.children in
    let me = !counter in
    incr counter;
    let children =
      if me <> parent then children
      else begin
        let total = List.length children in
        if first_child < 0 || first_child + n_children > total then
          invalid_arg
            (Printf.sprintf
               "Edit_op.apply (insert): child span [%d,%d) out of range [0,%d]"
               first_child (first_child + n_children) total);
        let rec split i = function
          | rest when i = 0 -> ([], rest)
          | [] -> ([], [])
          | c :: rest ->
            let taken, remaining = split (i - 1) rest in
            (c :: taken, remaining)
        in
        let prefix, rest = split first_child children in
        let adopted, suffix = split n_children rest in
        prefix @ [ Tree.node label adopted ] @ suffix
      end
    in
    Tree.node node.label children
  in
  go tree

let apply tree = function
  | Rename { node; label } -> apply_rename tree node label
  | Delete { node } -> apply_delete tree node
  | Insert { parent; first_child; n_children; label } ->
    apply_insert tree parent first_child n_children label

let apply_script tree ops = List.fold_left apply tree ops

let random rng ~labels tree =
  if Array.length labels = 0 then invalid_arg "Edit_op.random: empty label alphabet";
  let module P = Tsj_util.Prng in
  let nodes = Tree.nodes_postorder tree in
  let n = Array.length nodes in
  let root_id = n - 1 in
  let pick_rename () =
    Rename { node = P.int rng n; label = P.choice rng labels }
  in
  let pick_insert () =
    let parent = P.int rng n in
    let fanout = List.length nodes.(parent).Tree.children in
    let first_child = P.int_in rng 0 fanout in
    let n_children = P.int_in rng 0 (fanout - first_child) in
    Insert { parent; first_child; n_children; label = P.choice rng labels }
  in
  let pick_delete () =
    (* The root is only deletable when it has exactly one child; in a
       single-node tree no deletion is valid, so fall back to renaming. *)
    let deletable id =
      id <> root_id || List.length nodes.(id).Tree.children = 1
    in
    let candidates = ref [] in
    for id = 0 to n - 1 do
      if deletable id then candidates := id :: !candidates
    done;
    match !candidates with
    | [] -> pick_rename ()
    | cs -> Delete { node = List.nth cs (P.int rng (List.length cs)) }
  in
  match P.int rng 3 with
  | 0 -> pick_rename ()
  | 1 -> pick_insert ()
  | _ -> pick_delete ()

let random_script rng ~labels k tree =
  let rec go acc t i =
    if i = k then (List.rev acc, t)
    else begin
      let op = random rng ~labels t in
      go (op :: acc) (apply t op) (i + 1)
    end
  in
  go [] tree 0

let pp fmt = function
  | Rename { node; label } ->
    Format.fprintf fmt "rename(%d -> %s)" node (Label.name label)
  | Delete { node } -> Format.fprintf fmt "delete(%d)" node
  | Insert { parent; first_child; n_children; label } ->
    Format.fprintf fmt "insert(%s under %d at %d..%d)" (Label.name label) parent
      first_child
      (first_child + n_children)
