(** Left-child / right-sibling (LC-RS) binary representation of a general
    tree (Knuth's transformation).

    In the binary form every node has at most a [left] child (its leftmost
    child in the general tree) and a [right] child (its next sibling), so a
    node edit operation touches a strictly bounded neighbourhood — the
    property Lemma 1 of the paper builds on.

    Nodes are identified with their 0-based postorder number in the binary
    tree (left subtree, right subtree, node); the root is node [size - 1].
    This numbering is exactly the key space of the PartSJ postorder-pruning
    index layer. *)

type child_kind =
  | Root           (** the node has no incoming edge *)
  | Left_of_parent (** reached via its parent's left (leftmost-child) pointer *)
  | Right_of_parent(** reached via its parent's right (next-sibling) pointer *)

type t = {
  size : int;
  label : int array;        (** label of node [i] *)
  left : int array;         (** left-child id, or [-1] *)
  right : int array;        (** right-child id, or [-1] *)
  parent : int array;       (** parent id, or [-1] for the root *)
  kind : child_kind array;  (** how node [i] hangs off its parent *)
  subtree_size : int array; (** nodes in the binary subtree rooted at [i] *)
  gpost : int array;
      (** 0-based postorder number of node [i] {e in the general tree}.
          Binary-postorder ids are unstable under node edit operations (one
          general-tree deletion can move whole sibling chains), but
          general-tree postorder numbers shift by at most one per
          operation — they are the position coordinate of the PartSJ
          postorder-pruning index. *)
}

val of_tree : Tree.t -> t
(** Knuth transformation.  Preserves the node count and labels. *)

val to_tree : t -> Tree.t
(** Inverse transformation.  [to_tree (of_tree t) = t]. *)

val root : t -> int
(** Always [size - 1]. *)

val has_left : t -> int -> bool

val has_right : t -> int -> bool

val pp : Format.formatter -> t -> unit
(** Debug rendering: one line per node in postorder. *)
