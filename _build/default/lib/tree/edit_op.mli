(** Node edit operations on rooted ordered labeled trees.

    The three operations of the tree edit distance model (Section 2 of the
    paper): rename a node's label, delete a node (its children are adopted
    by its parent, in place, preserving order), and insert a node between a
    parent and a consecutive run of its children.

    Nodes are addressed by their 0-based postorder number in the tree the
    operation is applied to.  Applying an operation produces a new tree;
    the input is unchanged.

    These are the building blocks of the synthetic decay model [Dz] and of
    the property tests ([TED(T, apply_script T ops) <= length ops]). *)

type t =
  | Rename of { node : int; label : Label.t }
      (** Change the label of node [node]. *)
  | Delete of { node : int }
      (** Remove node [node]; its children replace it among its parent's
          children.  The root may only be deleted when it has exactly one
          child (so the result is still a tree). *)
  | Insert of { parent : int; first_child : int; n_children : int; label : Label.t }
      (** Add a new node labeled [label] as a child of [parent] at child
          position [first_child]; the [n_children] consecutive existing
          children starting at that position become children of the new
          node. *)

val apply : Tree.t -> t -> Tree.t
(** @raise Invalid_argument when the operation addresses a node that does
    not exist, deletes an ineligible root, or the child span is out of
    range. *)

val apply_script : Tree.t -> t list -> Tree.t
(** Apply operations left to right; each addresses the tree produced by its
    predecessors. *)

val random : Tsj_util.Prng.t -> labels:Label.t array -> Tree.t -> t
(** A uniformly-typed random valid operation on the given tree (insertion,
    deletion, renaming with equal probability, as in the paper's decay
    model), with labels drawn from [labels].
    @raise Invalid_argument if [labels] is empty. *)

val random_script : Tsj_util.Prng.t -> labels:Label.t array -> int -> Tree.t -> t list * Tree.t
(** [random_script rng ~labels k t] draws [k] successive random operations
    and returns them together with the resulting tree. *)

val pp : Format.formatter -> t -> unit
