type t = int

let epsilon = 0

(* Global intern table.  Id 0 is reserved for epsilon; names start at 1. *)
let by_name : (string, int) Hashtbl.t = Hashtbl.create 256
let names : string array ref = ref (Array.make 16 "")
let n_names = ref 1 (* slot 0 = epsilon = "" *)

let intern s =
  if s = "" then invalid_arg "Label.intern: empty string is reserved for epsilon";
  match Hashtbl.find_opt by_name s with
  | Some id -> id
  | None ->
    let id = !n_names in
    if id = Array.length !names then begin
      let bigger = Array.make (2 * id) "" in
      Array.blit !names 0 bigger 0 id;
      names := bigger
    end;
    !names.(id) <- s;
    incr n_names;
    Hashtbl.add by_name s id;
    id

let name id =
  if id < 0 || id >= !n_names then invalid_arg "Label.name: unregistered label";
  !names.(id)

let mem s = Hashtbl.mem by_name s

let count () = !n_names - 1

let pp fmt id = Format.pp_print_string fmt (name id)
