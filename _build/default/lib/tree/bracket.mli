(** Bracket notation for trees — the interchange format used throughout the
    TED literature (and by the RTED reference implementation):
    [{a{b{c}}{d}}] is a root [a] with children [b] (itself parent of [c])
    and [d].

    Labels may contain any characters except unescaped braces; [\{], [\}]
    and [\\] escape a literal brace/backslash. *)

val to_string : Tree.t -> string

val of_string : string -> (Tree.t, string) result
(** Parses exactly one tree (surrounding whitespace allowed); the error
    string describes the position and cause of failure. *)

val of_string_exn : string -> Tree.t
(** @raise Invalid_argument on a parse error. *)

val forest_of_string : string -> (Tree.t list, string) result
(** Parses zero or more whitespace-separated trees. *)

val load_file : string -> (Tree.t list, string) result
(** One or more trees per file, whitespace/newline separated.  Lines whose
    first non-blank character is [#] are comments. *)

val save_file : string -> Tree.t list -> unit
(** One tree per line. *)
