(** Penn-Treebank-style s-expression trees.

    The Treebank dataset the paper joins distributes parse trees as
    parenthesized s-expressions: [(S (NP (DT the) (NN cat)) (VP ...))].
    This module reads and writes that format:

    - [(LABEL child child ...)] is an internal node;
    - a bare token is a leaf;
    - the common "tag + word" leaf [(NN cat)] parses as an [NN] node with
      a [cat] leaf child (pass [~drop_words:true] to keep only the tag, as
      structure-only joins usually want);
    - an extra outer wrapper [( ... )] with no label — Penn Treebank wraps
      every sentence this way — is unwrapped automatically. *)

val of_string : ?drop_words:bool -> string -> (Tree.t, string) result

val of_string_exn : ?drop_words:bool -> string -> Tree.t
(** @raise Invalid_argument on a parse error. *)

val forest_of_string : ?drop_words:bool -> string -> (Tree.t list, string) result
(** Zero or more whitespace-separated trees (one treebank file). *)

val to_string : Tree.t -> string
(** Tokens containing whitespace or parentheses are not representable and
    are escaped by replacing the offending characters with ['_']. *)

val load_file : ?drop_words:bool -> string -> (Tree.t list, string) result
