lib/ted/naive.mli: Tsj_tree
