lib/ted/ted.ml: Naive Tsj_tree Zhang_shasha
