lib/ted/constrained.ml: Array List Tsj_tree
