lib/ted/bounds.ml: List String_edit Tsj_tree Tsj_util
