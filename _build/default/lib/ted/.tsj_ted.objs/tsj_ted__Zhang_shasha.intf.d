lib/ted/zhang_shasha.mli: Tsj_tree
