lib/ted/zhang_shasha.ml: Array Tsj_tree
