lib/ted/zhang_shasha.ml: Array Domain Tsj_tree
