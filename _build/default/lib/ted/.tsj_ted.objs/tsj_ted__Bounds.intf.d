lib/ted/bounds.mli: Tsj_tree
