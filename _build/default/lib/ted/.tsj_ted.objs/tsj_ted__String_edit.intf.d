lib/ted/string_edit.mli:
