lib/ted/mapping.ml: Array Format List Tsj_tree
