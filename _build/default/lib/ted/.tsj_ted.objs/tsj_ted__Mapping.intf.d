lib/ted/mapping.mli: Format Tsj_tree
