lib/ted/naive.ml: Hashtbl List Tsj_tree
