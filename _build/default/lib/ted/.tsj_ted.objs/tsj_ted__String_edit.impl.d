lib/ted/string_edit.ml: Array
