lib/ted/constrained.mli: Tsj_tree
