lib/ted/ted.mli: Tsj_tree
