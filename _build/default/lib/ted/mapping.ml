module Postorder = Tsj_tree.Postorder
module Label = Tsj_tree.Label

type op = Match of int * int | Rename of int * int | Delete of int | Insert of int

type t = { ops : op list; cost : int }

(* Zhang–Shasha with a backtrace.  First the full treedist matrix is
   computed (exactly as in Zhang_shasha.distance_postorder); then the
   forest DP of a subproblem is recomputed on demand and walked backwards.
   The recomputation keeps memory at O(n^2) while the total work stays
   within a constant factor of the forward pass. *)
let compute t1 t2 =
  let p1 = Postorder.of_tree t1 and p2 = Postorder.of_tree t2 in
  let n1 = p1.Postorder.size and n2 = p2.Postorder.size in
  let lld1 = p1.Postorder.lld and lld2 = p2.Postorder.lld in
  let lab1 = p1.Postorder.labels and lab2 = p2.Postorder.labels in
  let treedist = Array.make_matrix (max n1 1) (max n2 1) 0 in
  let fd = Array.make_matrix (n1 + 1) (n2 + 1) 0 in
  (* Forward forest DP for the keyroot pair (k1, k2); identical recurrence
     to Zhang_shasha.distance_postorder. *)
  let forest k1 k2 ~record =
    let l1 = lld1.(k1) and l2 = lld2.(k2) in
    let m = k1 - l1 + 1 and n = k2 - l2 + 1 in
    fd.(0).(0) <- 0;
    for x = 1 to m do
      fd.(x).(0) <- x
    done;
    for y = 1 to n do
      fd.(0).(y) <- y
    done;
    for x = 1 to m do
      let a = l1 + x - 1 in
      for y = 1 to n do
        let b = l2 + y - 1 in
        if lld1.(a) = l1 && lld2.(b) = l2 then begin
          let cost = if lab1.(a) = lab2.(b) then 0 else 1 in
          let v =
            min (min (fd.(x - 1).(y) + 1) (fd.(x).(y - 1) + 1)) (fd.(x - 1).(y - 1) + cost)
          in
          fd.(x).(y) <- v;
          if record then treedist.(a).(b) <- v
        end
        else
          fd.(x).(y) <-
            min
              (min (fd.(x - 1).(y) + 1) (fd.(x).(y - 1) + 1))
              (fd.(lld1.(a) - l1).(lld2.(b) - l2) + treedist.(a).(b))
      done
    done
  in
  (* Forward pass to fill treedist. *)
  Array.iter
    (fun k1 -> Array.iter (fun k2 -> forest k1 k2 ~record:true) p2.Postorder.keyroots)
    p1.Postorder.keyroots;
  let ops = ref [] in
  (* Backtrace of the subtree pair (k1, k2): recompute its forest table,
     then walk from (|F1|, |F2|) back to (0, 0). *)
  let rec backtrace k1 k2 =
    forest k1 k2 ~record:false;
    let l1 = lld1.(k1) and l2 = lld2.(k2) in
    let x = ref (k1 - l1 + 1) and y = ref (k2 - l2 + 1) in
    while !x > 0 || !y > 0 do
      if !x > 0 && fd.(!x).(!y) = fd.(!x - 1).(!y) + 1 then begin
        ops := Delete (l1 + !x - 1) :: !ops;
        decr x
      end
      else if !y > 0 && fd.(!x).(!y) = fd.(!x).(!y - 1) + 1 then begin
        ops := Insert (l2 + !y - 1) :: !ops;
        decr y
      end
      else begin
        let a = l1 + !x - 1 and b = l2 + !y - 1 in
        if lld1.(a) = l1 && lld2.(b) = l2 then begin
          ops :=
            (if lab1.(a) = lab2.(b) then Match (a, b) else Rename (a, b)) :: !ops;
          decr x;
          decr y
        end
        else begin
          (* A whole subtree pair aligns: recurse (this clobbers fd, so
             restore our table afterwards by recomputing). *)
          let x' = lld1.(a) - l1 and y' = lld2.(b) - l2 in
          backtrace a b;
          forest k1 k2 ~record:false;
          x := x';
          y := y'
        end
      end
    done
  in
  if n1 = 0 || n2 = 0 then begin
    for i = 0 to n1 - 1 do
      ops := Delete i :: !ops
    done;
    for j = 0 to n2 - 1 do
      ops := Insert j :: !ops
    done;
    { ops = !ops; cost = max n1 n2 }
  end
  else begin
    backtrace (n1 - 1) (n2 - 1);
    let cost =
      List.fold_left
        (fun acc op ->
          match op with
          | Match _ -> acc
          | Rename _ | Delete _ | Insert _ -> acc + 1)
        0 !ops
    in
    { ops = !ops; cost }
  end

let mapped_pairs m =
  List.filter_map
    (function Match (i, j) | Rename (i, j) -> Some (i, j) | Delete _ | Insert _ -> None)
    m.ops
  |> List.sort compare

let pp ~source ~target fmt m =
  let lab1 = Tsj_tree.Traversal.postorder_labels source in
  let lab2 = Tsj_tree.Traversal.postorder_labels target in
  Format.fprintf fmt "@[<v>cost %d@," m.cost;
  List.iter
    (fun op ->
      match op with
      | Match (i, j) ->
        Format.fprintf fmt "match  %d:%s = %d:%s@," i (Label.name lab1.(i)) j
          (Label.name lab2.(j))
      | Rename (i, j) ->
        Format.fprintf fmt "rename %d:%s -> %d:%s@," i (Label.name lab1.(i)) j
          (Label.name lab2.(j))
      | Delete i -> Format.fprintf fmt "delete %d:%s@," i (Label.name lab1.(i))
      | Insert j -> Format.fprintf fmt "insert %d:%s@," j (Label.name lab2.(j)))
    m.ops;
  Format.fprintf fmt "@]"
