(** Constrained tree edit distance (Zhang, Pattern Recognition 1995) —
    one of the restricted edit distances the paper's related work cites
    ([15], [24]) and an instance of its "support other tree distance
    metrics" future-work point.

    The constrained (isolated-subtree) edit distance admits only mappings
    in which disjoint subtrees map to disjoint subtrees — equivalently,
    the images of two separated nodes must be separated by the image of
    their lowest common ancestor.  This restriction drops the complexity
    from cubic to [O(|T1| |T2|)] while remaining a metric, at the price of
    sometimes overestimating the unrestricted TED:

      [TED(t1, t2) <= constrained_distance t1 t2]

    with equality whenever some optimal unrestricted mapping happens to be
    constrained (very common in practice). *)

val distance : Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> int
(** Unit-cost constrained edit distance. *)

val within : Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> int -> bool
(** [within t1 t2 k] is [distance t1 t2 <= k]. *)
