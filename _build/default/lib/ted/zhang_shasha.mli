(** The Zhang–Shasha tree edit distance algorithm (SIAM J. Comput. 1989).

    Computes the exact TED between two rooted ordered labeled trees with
    unit costs, in [O(|T1| |T2| min(d1,l1) min(d2,l2))] time and
    [O(|T1| |T2|)] space, by solving one forest-distance dynamic program
    per pair of LR-keyroots.

    This left-path decomposition is one half of the RTED-style hybrid in
    {!Ted}; its mirror image (running on mirrored trees) gives the
    right-path decomposition.

    Both entry points reuse a growable domain-local scratch (via
    [Domain.DLS]) for the DP tables instead of allocating O(|T1| |T2|)
    matrices per call — for join workloads the per-pair allocation and
    initialization used to dwarf the banded DP itself.  Concurrent calls
    from different domains are safe (each domain owns its scratch);
    recursive calls from the cost functions of the DP would not be, and
    do not occur. *)

val distance_postorder : Tsj_tree.Postorder.t -> Tsj_tree.Postorder.t -> int
(** TED between two trees already compiled to postorder form. *)

val distance : Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> int
(** Convenience wrapper compiling both trees first. *)

val bounded_distance_postorder : Tsj_tree.Postorder.t -> Tsj_tree.Postorder.t -> int -> int
(** [bounded_distance_postorder p1 p2 k] is [min (distance, k + 1)],
    computed with the forest DP restricted to the [|x - y| <= k] band
    (values above [k] are clamped by the monotone min-plus recurrence, so
    every value [<= k] stays exact).  This is the τ-aware verifier: a join
    needs [distance <= τ], never the exact distance of dissimilar pairs.
    Each keyroot pass shrinks from [rows * cols] to [rows * (2k + 1)]
    cells, and the stamp-tracked scratch avoids any O(rows * cols)
    per-call initialization (plus an immediate exit on size-incompatible
    pairs).
    @raise Invalid_argument if [k < 0]. *)

val bounded_distance : Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> int -> int

val relevant_subproblems : Tsj_tree.Postorder.t -> Tsj_tree.Postorder.t -> int
(** The number of forest-distance cells the algorithm fills for this pair —
    the cost estimate used for strategy selection. *)
