module Postorder = Tsj_tree.Postorder

let distance_postorder (p1 : Postorder.t) (p2 : Postorder.t) =
  let n1 = p1.size and n2 = p2.size in
  if n1 = 0 || n2 = 0 then max n1 n2
  else begin
    let lld1 = p1.lld and lld2 = p2.lld in
    let lab1 = p1.labels and lab2 = p2.labels in
    (* treedist.(i).(j): TED between the subtrees rooted at postorder nodes
       i and j; filled in increasing keyroot order, so the forest DP can
       reuse previously computed entries. *)
    let treedist = Array.make_matrix n1 n2 0 in
    (* Forest-distance scratch table, reused across keyroot pairs.  fd has
       an extra row/column for the empty-forest prefixes. *)
    let fd = Array.make_matrix (n1 + 1) (n2 + 1) 0 in
    let compute k1 k2 =
      let l1 = lld1.(k1) and l2 = lld2.(k2) in
      let m = k1 - l1 + 1 and n = k2 - l2 + 1 in
      fd.(0).(0) <- 0;
      for x = 1 to m do
        fd.(x).(0) <- x
      done;
      for y = 1 to n do
        fd.(0).(y) <- y
      done;
      for x = 1 to m do
        let a = l1 + x - 1 in
        let fda = fd.(x) and fda1 = fd.(x - 1) in
        for y = 1 to n do
          let b = l2 + y - 1 in
          if lld1.(a) = l1 && lld2.(b) = l2 then begin
            let cost = if lab1.(a) = lab2.(b) then 0 else 1 in
            let v =
              min (min (fda1.(y) + 1) (fda.(y - 1) + 1)) (fda1.(y - 1) + cost)
            in
            fda.(y) <- v;
            treedist.(a).(b) <- v
          end
          else begin
            let x' = lld1.(a) - l1 and y' = lld2.(b) - l2 in
            fda.(y) <-
              min
                (min (fda1.(y) + 1) (fda.(y - 1) + 1))
                (fd.(x').(y') + treedist.(a).(b))
          end
        done
      done
    in
    Array.iter
      (fun k1 -> Array.iter (fun k2 -> compute k1 k2) p2.keyroots)
      p1.keyroots;
    treedist.(n1 - 1).(n2 - 1)
  end

(* Threshold-banded variant.  Every forest-DP cell (x, y) measures the
   distance between prefix forests of sizes x and y, which is at least
   |x - y|; a cell outside the |x - y| <= k band therefore cannot lie on a
   path of total cost <= k.  The DP is a monotone min-plus recurrence, so
   clamping every value at k + 1 preserves all values <= k exactly while
   capping the rest — the result is [min (distance, k + 1)] at a cost of
   O(rows * (2k + 1)) cells per keyroot pair instead of O(rows * cols). *)
let bounded_distance_postorder (p1 : Postorder.t) (p2 : Postorder.t) k =
  if k < 0 then invalid_arg "Zhang_shasha.bounded_distance_postorder: negative threshold";
  let n1 = p1.size and n2 = p2.size in
  if abs (n1 - n2) > k then k + 1
  else if n1 = 0 || n2 = 0 then min (max n1 n2) (k + 1)
  else begin
    let inf = k + 1 in
    let lld1 = p1.lld and lld2 = p2.lld in
    let lab1 = p1.labels and lab2 = p2.labels in
    (* Unwritten treedist entries correspond to out-of-band subtree pairs,
       whose distance exceeds k: default to the clamp value. *)
    let treedist = Array.make_matrix n1 n2 inf in
    let fd = Array.make_matrix (n1 + 1) (n2 + 1) inf in
    let compute k1 k2 =
      let l1 = lld1.(k1) and l2 = lld2.(k2) in
      let m = k1 - l1 + 1 and n = k2 - l2 + 1 in
      (* In-band read; out-of-band cells are >= |x - y| > k by the size
         argument, so they act as the clamp value. *)
      let get x y = if abs (x - y) > k then inf else fd.(x).(y) in
      fd.(0).(0) <- 0;
      for y = 1 to min n k do
        fd.(0).(y) <- y
      done;
      for x = 1 to m do
        let ylo = max 1 (x - k) and yhi = min n (x + k) in
        if x <= k then fd.(x).(0) <- x;
        for y = ylo to yhi do
          let a = l1 + x - 1 in
          let b = l2 + y - 1 in
          let v =
            if lld1.(a) = l1 && lld2.(b) = l2 then begin
              let cost = if lab1.(a) = lab2.(b) then 0 else 1 in
              let v =
                min (min (get (x - 1) y + 1) (get x (y - 1) + 1)) (get (x - 1) (y - 1) + cost)
              in
              let v = min v inf in
              treedist.(a).(b) <- v;
              v
            end
            else begin
              let x' = lld1.(a) - l1 and y' = lld2.(b) - l2 in
              min
                (min (get (x - 1) y + 1) (get x (y - 1) + 1))
                (get x' y' + treedist.(a).(b))
            end
          in
          fd.(x).(y) <- min v inf
        done
      done
    in
    Array.iter
      (fun k1 -> Array.iter (fun k2 -> compute k1 k2) p2.keyroots)
      p1.keyroots;
    min treedist.(n1 - 1).(n2 - 1) inf
  end

let distance t1 t2 =
  distance_postorder (Postorder.of_tree t1) (Postorder.of_tree t2)

let bounded_distance t1 t2 k =
  bounded_distance_postorder (Postorder.of_tree t1) (Postorder.of_tree t2) k

let relevant_subproblems p1 p2 =
  Postorder.keyroot_cost p1 * Postorder.keyroot_cost p2
