(** Levenshtein edit distance over interned-label arrays.

    Used by the STR baseline: the string edit distance between the
    preorder (resp. postorder) label sequences of two trees lower-bounds
    their tree edit distance (Guha et al.). *)

val distance : int array -> int array -> int
(** Full [O(|a| * |b|)] dynamic program with two rolling rows. *)

val within : int array -> int array -> int -> bool
(** [within a b k] is [true] iff [distance a b <= k], computed with a
    banded dynamic program in [O(k * min(|a|,|b|))] time.  This is the
    filter primitive: the join only needs the threshold decision, not the
    exact distance.  [k < 0] is always [false]. *)

val bounded_distance : int array -> int array -> int -> int
(** [bounded_distance a b k] is [distance a b] when that is [<= k], and
    [k + 1] otherwise (banded computation). *)
