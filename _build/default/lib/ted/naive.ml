module Tree = Tsj_tree.Tree

module Forest_pair = struct
  type t = Tree.t list * Tree.t list

  let equal (a1, b1) (a2, b2) =
    List.equal Tree.equal a1 a2 && List.equal Tree.equal b1 b2

  let hash (a, b) =
    List.fold_left
      (fun acc t -> (acc * 8191) + Tree.hash t)
      (List.fold_left (fun acc t -> (acc * 8191) + Tree.hash t) 5381 a)
      b
end

module Memo = Hashtbl.Make (Forest_pair)

let forest_size f = List.fold_left (fun acc t -> acc + Tree.size t) 0 f

let forest_distance f1 f2 =
  let memo = Memo.create 4096 in
  let rec go f1 f2 =
    match (f1, f2) with
    | [], _ -> forest_size f2
    | _, [] -> forest_size f1
    | (t1 : Tree.t) :: rest1, (t2 : Tree.t) :: rest2 ->
      let key = (f1, f2) in
      (match Memo.find_opt memo key with
      | Some d -> d
      | None ->
        let delete = 1 + go (t1.children @ rest1) f2 in
        let insert = 1 + go f1 (t2.children @ rest2) in
        let relabel = if t1.label = t2.label then 0 else 1 in
        let match_roots = relabel + go t1.children t2.children + go rest1 rest2 in
        let d = min (min delete insert) match_roots in
        Memo.add memo key d;
        d)
  in
  go f1 f2

let distance t1 t2 = forest_distance [ t1 ] [ t2 ]
