(** Lower bounds on the tree edit distance.

    Every function here satisfies [bound t1 t2 <= TED(t1, t2)]; the join
    baselines use them as filters ([bound > τ] prunes a pair without an
    exact TED computation).  The tests validate the inequality on random
    tree pairs.

    Provenance of each bound:
    - size: one edit operation changes the node count by at most 1;
    - label histogram: one operation changes the label bag's L1 distance by
      at most 2 (rename removes one label and adds another);
    - degree histogram: one operation changes the degree bag's L1 distance
      by at most 3 (the reconnected parent's degree moves, and a node
      appears or disappears);
    - preorder / postorder strings: Guha et al. — each operation edits the
      traversal label sequence in exactly one position;
    - Euler string: Akutsu et al. — each operation edits the Euler tour in
      at most two positions. *)

val size : Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> int

val label_histogram : Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> int

val degree_histogram : Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> int

val preorder_string : Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> int

val postorder_string : Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> int

val traversal : Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> int
(** [max preorder_string postorder_string] — the STR filter. *)

val euler_string : Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> int

val best : Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> int
(** Maximum of all the bounds above. *)
