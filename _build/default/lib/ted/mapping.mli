(** Optimal edit mappings (alignments) between two trees.

    The join only needs distances, but downstream applications (data
    integration, diffing) want to know {e which} nodes correspond.  This
    module extracts an optimal TED mapping by backtracking through the
    Zhang–Shasha dynamic program: a set of node pairs that is one-to-one,
    order-preserving and ancestor-preserving, whose cost (renames with
    different labels + unmatched nodes on either side) equals the exact
    tree edit distance.

    Nodes are identified by their 0-based postorder numbers. *)

type op =
  | Match of int * int   (** same label on both sides *)
  | Rename of int * int  (** mapped, labels differ — costs 1 *)
  | Delete of int        (** node of the first tree, unmapped — costs 1 *)
  | Insert of int        (** node of the second tree, unmapped — costs 1 *)

type t = {
  ops : op list;  (** every node of both trees appears exactly once *)
  cost : int;     (** = [Zhang_shasha.distance t1 t2] *)
}

val compute : Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> t

val mapped_pairs : t -> (int * int) list
(** The (i, j) pairs from [Match] and [Rename] ops, in postorder of the
    first tree. *)

val pp : source:Tsj_tree.Tree.t -> target:Tsj_tree.Tree.t ->
  Format.formatter -> t -> unit
(** Human-readable script with node labels resolved. *)
