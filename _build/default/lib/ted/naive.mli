(** Reference tree edit distance by direct forest recursion.

    An independent implementation used only for differential testing of
    {!Zhang_shasha}: the classic forest recurrence (delete the first root,
    insert the first root, or match the two first roots) memoized on forest
    pairs.  Exponentially many distinct forests can arise, so this is for
    small trees (tests cap sizes around 12 nodes). *)

val distance : Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> int

val forest_distance : Tsj_tree.Tree.t list -> Tsj_tree.Tree.t list -> int
