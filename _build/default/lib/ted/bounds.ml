module Tree = Tsj_tree.Tree
module Traversal = Tsj_tree.Traversal
module Multiset = Tsj_util.Multiset

let size t1 t2 = abs (Tree.size t1 - Tree.size t2)

let label_bag t =
  let acc = Tsj_util.Vec_int.create ~capacity:(Tree.size t) () in
  Tree.iter_postorder (fun (n : Tree.t) -> Tsj_util.Vec_int.push acc n.label) t;
  Multiset.of_unsorted (Tsj_util.Vec_int.to_array acc)

let label_histogram t1 t2 =
  let d = Multiset.symmetric_difference_size (label_bag t1) (label_bag t2) in
  (d + 1) / 2

let degree_bag t =
  let acc = Tsj_util.Vec_int.create ~capacity:(Tree.size t) () in
  Tree.iter_postorder
    (fun (n : Tree.t) -> Tsj_util.Vec_int.push acc (List.length n.children))
    t;
  Multiset.of_unsorted (Tsj_util.Vec_int.to_array acc)

let degree_histogram t1 t2 =
  let d = Multiset.symmetric_difference_size (degree_bag t1) (degree_bag t2) in
  (d + 2) / 3

let preorder_string t1 t2 =
  String_edit.distance (Traversal.preorder_labels t1) (Traversal.preorder_labels t2)

let postorder_string t1 t2 =
  String_edit.distance (Traversal.postorder_labels t1) (Traversal.postorder_labels t2)

let traversal t1 t2 = max (preorder_string t1 t2) (postorder_string t1 t2)

let euler_string t1 t2 =
  let d = String_edit.distance (Traversal.euler_tour t1) (Traversal.euler_tour t2) in
  (d + 1) / 2

let best t1 t2 =
  List.fold_left max 0
    [
      size t1 t2;
      label_histogram t1 t2;
      degree_histogram t1 t2;
      traversal t1 t2;
      euler_string t1 t2;
    ]
