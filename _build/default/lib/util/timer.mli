(** Wall-clock timing of join phases.

    The evaluation figures in the paper split runtime into candidate
    generation and TED verification; join drivers accumulate those phases in
    separate {!t} values. *)

type t
(** A stopwatch accumulating elapsed time across several start/stop
    intervals. *)

val create : unit -> t
(** A stopped stopwatch with zero accumulated time. *)

val start : t -> unit
(** Begin an interval.  Starting an already-running stopwatch is a no-op. *)

val stop : t -> unit
(** End the current interval, adding it to the accumulated total.  Stopping a
    stopped stopwatch is a no-op. *)

val elapsed_s : t -> float
(** Accumulated seconds, including the current interval if running. *)

val reset : t -> unit
(** Back to zero, stopped. *)

val time : t -> (unit -> 'a) -> 'a
(** [time t f] runs [f ()] with [t] running around the call, and propagates
    both results and exceptions. *)

val wall : (unit -> 'a) -> 'a * float
(** [wall f] is [(f (), seconds_taken)]. *)

val now : unit -> float
(** Seconds since the epoch — the clock every other entry point reads. *)
