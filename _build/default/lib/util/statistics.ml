let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let mean_int xs = mean (Array.map float_of_int xs)

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (acc /. float_of_int n)
  end

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Statistics.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (min lo x, max hi x))
    (xs.(0), xs.(0)) xs

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Statistics.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Statistics.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let histogram ~bins xs =
  if bins <= 0 then invalid_arg "Statistics.histogram: bins must be positive";
  if Array.length xs = 0 then invalid_arg "Statistics.histogram: empty";
  let lo, hi = min_max xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = max 0 (min (bins - 1) b) in
      counts.(b) <- counts.(b) + 1)
    xs;
  Array.mapi
    (fun i c ->
      let l = lo +. (float_of_int i *. width) in
      (l, l +. width, c))
    counts
