type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 8) () =
  let capacity = max capacity 1 in
  { data = Array.make capacity 0; len = 0 }

let length v = v.len

let is_empty v = v.len = 0

let grow v =
  let cap = Array.length v.data in
  let data = Array.make (2 * cap) 0 in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let check v i name =
  if i < 0 || i >= v.len then invalid_arg ("Vec_int." ^ name ^ ": index out of bounds")

let get v i =
  check v i "get";
  v.data.(i)

let set v i x =
  check v i "set";
  v.data.(i) <- x

let pop v =
  if v.len = 0 then invalid_arg "Vec_int.pop: empty";
  v.len <- v.len - 1;
  v.data.(v.len)

let top v =
  if v.len = 0 then invalid_arg "Vec_int.top: empty";
  v.data.(v.len - 1)

let clear v = v.len <- 0

let to_array v = Array.sub v.data 0 v.len

let of_array a = { data = Array.copy a; len = Array.length a }

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let fold_left f init v =
  let acc = ref init in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let sort v =
  let a = to_array v in
  Array.sort compare a;
  Array.blit a 0 v.data 0 v.len
