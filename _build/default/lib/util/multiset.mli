(** Bag (multiset) operations over sorted arrays.

    The SET baseline represents each tree as a bag of binary branches encoded
    as integers; bag intersection size drives the binary branch distance
    [BIB(T1,T2) = |X1| + |X2| - 2|X1 ∩ X2|].  Sorted-array bags make the
    intersection a linear merge. *)

type t
(** An immutable bag of integers, stored sorted. *)

val of_unsorted : int array -> t
(** Takes ownership conceptually: the input is copied then sorted. *)

val of_sorted : int array -> t
(** Wraps an array the caller promises is already sorted ascending.
    @raise Invalid_argument if a descending adjacent pair is detected. *)

val size : t -> int
(** Total number of elements, with multiplicity. *)

val inter_size : t -> t -> int
(** Size of the bag intersection (multiplicity = min of the two sides). *)

val union_size : t -> t -> int
(** Size of the bag union (multiplicity = max of the two sides). *)

val symmetric_difference_size : t -> t -> int
(** [size a + size b - 2 * inter_size a b]. *)

val mem : t -> int -> bool

val count : t -> int -> int
(** Multiplicity of an element. *)

val to_array : t -> int array
(** Fresh sorted array of the contents. *)
