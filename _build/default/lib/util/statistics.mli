(** Small descriptive-statistics helpers for experiment reporting. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val mean_int : int array -> float

val stddev : float array -> float
(** Population standard deviation; 0 on arrays shorter than 2. *)

val min_max : float array -> float * float
(** @raise Invalid_argument on the empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], nearest-rank on a sorted copy.
    @raise Invalid_argument on the empty array or [p] outside the range. *)

val histogram : bins:int -> float array -> (float * float * int) array
(** [histogram ~bins xs] returns [(lo, hi, count)] per bin over the data
    range.  @raise Invalid_argument if [bins <= 0] or [xs] is empty. *)
