lib/util/statistics.mli:
