lib/util/multiset.ml: Array
