lib/util/statistics.ml: Array
