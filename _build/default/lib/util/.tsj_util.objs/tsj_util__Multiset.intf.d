lib/util/multiset.mli:
