lib/util/vec_int.ml: Array
