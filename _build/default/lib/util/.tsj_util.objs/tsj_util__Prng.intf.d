lib/util/prng.mli:
