lib/util/timer.mli:
