type t = {
  mutable acc : float;        (* seconds accumulated over closed intervals *)
  mutable started_at : float; (* start of the open interval, if any *)
  mutable running : bool;
}

let now () = Unix.gettimeofday ()

let create () = { acc = 0.0; started_at = 0.0; running = false }

let start t =
  if not t.running then begin
    t.running <- true;
    t.started_at <- now ()
  end

let stop t =
  if t.running then begin
    t.acc <- t.acc +. (now () -. t.started_at);
    t.running <- false
  end

let elapsed_s t =
  if t.running then t.acc +. (now () -. t.started_at) else t.acc

let reset t =
  t.acc <- 0.0;
  t.running <- false

let time t f =
  start t;
  match f () with
  | v ->
    stop t;
    v
  | exception e ->
    stop t;
    raise e

let wall f =
  let t0 = now () in
  let v = f () in
  (v, now () -. t0)
