type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

(* SplitMix64 output function: advance by the golden gamma, then mix. *)
let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g =
  let s = bits64 g in
  { state = s }

(* Non-negative 62-bit int from the top bits; OCaml ints are 63-bit. *)
let positive_int g = Int64.to_int (Int64.shift_right_logical (bits64 g) 2)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  positive_int g mod bound

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int g (hi - lo + 1)

let float g =
  (* 53 random bits scaled into [0,1). *)
  let x = Int64.to_int (Int64.shift_right_logical (bits64 g) 11) in
  float_of_int x /. 9007199254740992.0

let bool g = Int64.logand (bits64 g) 1L = 1L

let choice g a =
  if Array.length a = 0 then invalid_arg "Prng.choice: empty array";
  a.(int g (Array.length a))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
