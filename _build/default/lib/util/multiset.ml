type t = int array

let of_unsorted a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let of_sorted a =
  for i = 1 to Array.length a - 1 do
    if a.(i - 1) > a.(i) then invalid_arg "Multiset.of_sorted: not sorted"
  done;
  a

let size = Array.length

let inter_size a b =
  let na = Array.length a and nb = Array.length b in
  let rec go i j acc =
    if i >= na || j >= nb then acc
    else if a.(i) < b.(j) then go (i + 1) j acc
    else if a.(i) > b.(j) then go i (j + 1) acc
    else go (i + 1) (j + 1) (acc + 1)
  in
  go 0 0 0

let union_size a b = Array.length a + Array.length b - inter_size a b

let symmetric_difference_size a b =
  Array.length a + Array.length b - (2 * inter_size a b)

(* Standard binary search for the leftmost occurrence. *)
let lower_bound a x =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) < x then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length a)

let mem a x =
  let i = lower_bound a x in
  i < Array.length a && a.(i) = x

let count a x =
  let i = ref (lower_bound a x) in
  let c = ref 0 in
  while !i < Array.length a && a.(!i) = x do
    incr c;
    incr i
  done;
  !c

let to_array a = Array.copy a
