(** Growable arrays of unboxed [int]s.

    The join kernels build many postorder/index structures incrementally;
    this avoids both list reversal churn and boxing. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty vector.  [capacity] pre-allocates backing storage. *)

val length : t -> int

val is_empty : t -> bool

val push : t -> int -> unit
(** Append one element, growing the backing array geometrically. *)

val get : t -> int -> int
(** [get v i] is the [i]-th element.  @raise Invalid_argument out of
    bounds. *)

val set : t -> int -> int -> unit
(** @raise Invalid_argument out of bounds. *)

val pop : t -> int
(** Remove and return the last element.  @raise Invalid_argument if
    empty. *)

val top : t -> int
(** Last element without removing.  @raise Invalid_argument if empty. *)

val clear : t -> unit
(** Logical reset; keeps the backing storage. *)

val to_array : t -> int array
(** Fresh array of the current contents. *)

val of_array : int array -> t

val iter : (int -> unit) -> t -> unit

val fold_left : ('a -> int -> 'a) -> 'a -> t -> 'a

val sort : t -> unit
(** In-place ascending sort of the live prefix. *)
