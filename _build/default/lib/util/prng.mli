(** Deterministic pseudo-random number generation.

    All randomized components of the library (synthetic data generation,
    random partitioning, property-test corpora) draw from this generator so
    that every experiment is reproducible from a seed.  The implementation is
    SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): tiny state, excellent
    statistical quality for simulation purposes, and trivially portable. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy g] is an independent generator whose future stream equals the
    future stream of [g] at the time of the copy. *)

val split : t -> t
(** [split g] derives a new generator from [g], advancing [g]; the two
    streams are statistically independent.  Used to give each dataset /
    tree its own substream so that changing one parameter does not shift
    the randomness of unrelated components. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] (inclusive).
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
