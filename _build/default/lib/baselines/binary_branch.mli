(** Binary branches and the binary branch distance (Yang, Kalnis & Tung,
    SIGMOD 2005) — the structure behind the SET baseline.

    A binary branch of a tree is one node of its LC-RS binary
    representation together with the labels of its (up to two) binary
    children, missing children standing in as the dummy label [ε].  A tree
    of [n] nodes yields a bag of exactly [n] binary branches, and

      [BIB(T1, T2) = |X1| + |X2| - 2 |X1 ∩ X2| <= 5 * TED(T1, T2)],

    so [BIB > 5τ] proves a pair dissimilar. *)

type bag = Tsj_util.Multiset.t
(** Binary branches encoded as integers (label triples packed against a
    global arity that grows with the interned-label count). *)

val bag_of_tree : Tsj_tree.Tree.t -> bag
(** The bag has exactly [Tree.size t] elements. *)

val distance : bag -> bag -> int
(** The binary branch distance [BIB]. *)

val lower_bound : bag -> bag -> int
(** [ceil (BIB / 5)] — a valid TED lower bound. *)

val decode : int -> Tsj_tree.Label.t * Tsj_tree.Label.t * Tsj_tree.Label.t
(** Unpack an encoded branch back into (node, left, right) labels — used
    by tests and debugging output. *)
