(** pq-grams (Augsten, Böhlen & Gamper, VLDB 2005) — the alternative tree
    similarity measure discussed in the paper's related work (Section 5).

    A pq-gram is a small fixed-shape piece of the tree: an anchor node with
    its [p - 1] closest ancestors and [q] consecutive children, where
    missing positions are filled with a dummy label [*].  Two trees are
    similar when their pq-gram bags overlap.  Unlike the traversal-string
    and binary-branch bounds, the pq-gram distance is {e not} a TED lower
    bound — it is its own (pseudo-)distance, cheap to compute and popular
    for approximate XML joins; it is provided here as a library feature,
    not as a join filter. *)

type profile
(** The bag of a tree's pq-grams (label tuples hashed to integers). *)

val profile : ?p:int -> ?q:int -> Tsj_tree.Tree.t -> profile
(** Defaults: [p = 2], [q = 3] (the values recommended by Augsten et al.).
    @raise Invalid_argument if [p < 1] or [q < 1]. *)

val size : profile -> int
(** Number of pq-grams: one per leaf plus [c + q - 1] per internal node
    with [c] children. *)

val distance : profile -> profile -> int
(** Bag symmetric difference [|P1| + |P2| - 2 |P1 ∩ P2|]. *)

val normalized_distance : profile -> profile -> float
(** [1 - 2 |P1 ∩ P2| / (|P1| + |P2|)], in [\[0, 1\]]; 0 for identical
    trees.  Defined as 0 when both profiles are empty. *)
