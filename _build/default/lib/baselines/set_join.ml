type aux = { bags : Binary_branch.bag array; tau : int }

let join ?metric ~trees ~tau () =
  Tsj_join.Sweep.windowed_join ?metric ~trees ~tau
    ~setup:(fun trees -> { bags = Array.map Binary_branch.bag_of_tree trees; tau })
    ~filter:(fun aux i j ->
      Binary_branch.distance aux.bags.(i) aux.bags.(j) <= 5 * aux.tau)
    ()
