lib/baselines/set_join.mli: Tsj_join Tsj_tree
