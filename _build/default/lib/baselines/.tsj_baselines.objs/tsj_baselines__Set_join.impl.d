lib/baselines/set_join.ml: Array Binary_branch Tsj_join
