lib/baselines/binary_branch.mli: Tsj_tree Tsj_util
