lib/baselines/str_join.ml: Array Tsj_join Tsj_ted Tsj_tree
