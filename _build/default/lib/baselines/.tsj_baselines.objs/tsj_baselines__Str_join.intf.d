lib/baselines/str_join.mli: Tsj_join Tsj_tree
