lib/baselines/pq_gram.mli: Tsj_tree
