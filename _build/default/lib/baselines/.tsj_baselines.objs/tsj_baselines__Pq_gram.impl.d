lib/baselines/pq_gram.ml: Array Hashtbl List Tsj_tree Tsj_util
