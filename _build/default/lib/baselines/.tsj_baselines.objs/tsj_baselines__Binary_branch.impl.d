lib/baselines/binary_branch.ml: Array Hashtbl Tsj_tree Tsj_util
