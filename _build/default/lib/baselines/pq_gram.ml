module Tree = Tsj_tree.Tree
module Label = Tsj_tree.Label
module Multiset = Tsj_util.Multiset

type profile = Multiset.t

(* Grams are label tuples; intern them to dense ids like binary branches
   so bags are plain integer multisets.  The dummy label is Label.epsilon,
   which ordinary labels can never equal. *)
let ids : (int list, int) Hashtbl.t = Hashtbl.create 1024
let n_ids = ref 0

let intern gram =
  match Hashtbl.find_opt ids gram with
  | Some id -> id
  | None ->
    let id = !n_ids in
    incr n_ids;
    Hashtbl.add ids gram id;
    id

let profile ?(p = 2) ?(q = 3) tree =
  if p < 1 then invalid_arg "Pq_gram.profile: p must be >= 1";
  if q < 1 then invalid_arg "Pq_gram.profile: q must be >= 1";
  let dummy = Label.epsilon in
  let acc = Tsj_util.Vec_int.create () in
  let emit anc window = Tsj_util.Vec_int.push acc (intern (anc @ window)) in
  (* [anc] always has length p - 1: the labels of the p - 1 nearest
     ancestors, oldest first, padded with dummies above the root. *)
  let rec go (node : Tree.t) anc =
    let anc_full = anc @ [ node.label ] in
    (match node.children with
    | [] -> emit anc_full (List.init q (fun _ -> dummy))
    | children ->
      (* Slide a q-window over the children padded with q - 1 dummies on
         each side: c + q - 1 windows. *)
      let labels =
        List.init (q - 1) (fun _ -> dummy)
        @ List.map (fun (c : Tree.t) -> c.label) children
        @ List.init (q - 1) (fun _ -> dummy)
      in
      let arr = Array.of_list labels in
      for start = 0 to Array.length arr - q do
        emit anc_full (Array.to_list (Array.sub arr start q))
      done);
    (* The children see the last p - 1 labels of the extended ancestor
       path: drop the oldest. *)
    let child_anc = if p = 1 then [] else List.tl anc_full in
    List.iter (fun c -> go c child_anc) node.children
  in
  go tree (List.init (p - 1) (fun _ -> dummy));
  Multiset.of_unsorted (Tsj_util.Vec_int.to_array acc)

let size = Multiset.size

let distance = Multiset.symmetric_difference_size

let normalized_distance p1 p2 =
  let total = Multiset.size p1 + Multiset.size p2 in
  if total = 0 then 0.0
  else 1.0 -. (2.0 *. float_of_int (Multiset.inter_size p1 p2) /. float_of_int total)
