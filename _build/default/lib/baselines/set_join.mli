(** The SET baseline (adopted from Yang, Kalnis & Tung, SIGMOD 2005): each
    tree is transformed into its bag of binary branches once; a pair
    survives candidate generation iff its binary branch distance satisfies
    [BIB <= 5τ].  The binary branch structure is insensitive to [τ] — the
    weakness the paper's Section 4 highlights: as [τ] grows, SET's
    candidate set grows much faster than STR's or PartSJ's. *)

val join :
  ?metric:Tsj_join.Sweep.metric ->
  trees:Tsj_tree.Tree.t array -> tau:int -> unit -> Tsj_join.Types.output
