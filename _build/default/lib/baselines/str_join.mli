(** The STR baseline (adopted from Guha et al., TODS 2006, as in the
    paper's experimental setup): a tree pair survives candidate generation
    only if both the preorder and the postorder label sequences of the two
    trees are within string edit distance [τ] — both string distances
    lower-bound the TED.

    The string filters run as banded (threshold-limited) edit distance
    computations in [O(τ · n)] per pair over the size-window sweep;
    survivors are verified with the exact TED. *)

val join :
  ?metric:Tsj_join.Sweep.metric ->
  trees:Tsj_tree.Tree.t array -> tau:int -> unit -> Tsj_join.Types.output
