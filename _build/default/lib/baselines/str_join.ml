module Traversal = Tsj_tree.Traversal
module String_edit = Tsj_ted.String_edit

type aux = { pre : int array array; post : int array array; tau : int }

let join ?metric ~trees ~tau () =
  Tsj_join.Sweep.windowed_join ?metric ~trees ~tau
    ~setup:(fun trees ->
      {
        pre = Array.map Traversal.preorder_labels trees;
        post = Array.map Traversal.postorder_labels trees;
        tau;
      })
    ~filter:(fun aux i j ->
      String_edit.within aux.pre.(i) aux.pre.(j) aux.tau
      && String_edit.within aux.post.(i) aux.post.(j) aux.tau)
    ()
