module Label = Tsj_tree.Label
module Binary_tree = Tsj_tree.Binary_tree
module Multiset = Tsj_util.Multiset

type bag = Multiset.t

(* Branches (label triples) are interned into dense ids through a global
   table, like labels themselves: the mapping only ever grows, so encoded
   bags stay comparable across trees, joins and datasets. *)
let ids : (int * int * int, int) Hashtbl.t = Hashtbl.create 1024
let triples : (int * int * int) array ref = ref (Array.make 64 (0, 0, 0))
let n_ids = ref 0

let encode triple =
  match Hashtbl.find_opt ids triple with
  | Some id -> id
  | None ->
    let id = !n_ids in
    if id = Array.length !triples then begin
      let bigger = Array.make (2 * id) (0, 0, 0) in
      Array.blit !triples 0 bigger 0 id;
      triples := bigger
    end;
    !triples.(id) <- triple;
    incr n_ids;
    Hashtbl.add ids triple id;
    id

let decode id =
  if id < 0 || id >= !n_ids then invalid_arg "Binary_branch.decode: unknown branch id";
  !triples.(id)

let bag_of_tree t =
  let b = Binary_tree.of_tree t in
  let n = b.Binary_tree.size in
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    let left =
      match b.Binary_tree.left.(i) with
      | -1 -> Label.epsilon
      | l -> b.Binary_tree.label.(l)
    in
    let right =
      match b.Binary_tree.right.(i) with
      | -1 -> Label.epsilon
      | r -> b.Binary_tree.label.(r)
    in
    out.(i) <- encode (b.Binary_tree.label.(i), left, right)
  done;
  Multiset.of_unsorted out

let distance x1 x2 = Multiset.symmetric_difference_size x1 x2

let lower_bound x1 x2 = (distance x1 x2 + 4) / 5
