module Tree = Tsj_tree.Tree
module Label = Tsj_tree.Label

type t =
  | Element of { tag : string; attrs : (string * string) list; children : t list }
  | Text of string

let normalize_ws s =
  let b = Buffer.create (String.length s) in
  let pending_space = ref false in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' -> if Buffer.length b > 0 then pending_space := true
      | c ->
        if !pending_space then begin
          Buffer.add_char b ' ';
          pending_space := false
        end;
        Buffer.add_char b c)
    s;
  Buffer.contents b

let rec to_tree ?(keep_text = true) ?(keep_attrs = false) doc =
  match doc with
  | Text s ->
    let s = normalize_ws s in
    Tree.leaf (Label.intern (if s = "" then "#text" else s))
  | Element { tag; attrs; children } ->
    let attr_leaves =
      if keep_attrs then
        List.map (fun (k, v) -> Tree.leaf (Label.intern ("@" ^ k ^ "=" ^ v))) attrs
      else []
    in
    let keep_child = function
      | Text s -> keep_text && normalize_ws s <> ""
      | Element _ -> true
    in
    let child_nodes =
      List.filter_map
        (fun c ->
          if keep_child c then Some (to_tree ~keep_text ~keep_attrs c) else None)
        children
    in
    Tree.node (Label.intern tag) (attr_leaves @ child_nodes)

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let is_name s =
  s <> ""
  && (let c = s.[0] in
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_')
  && String.for_all is_name_char s

let rec of_tree (tree : Tree.t) =
  let name = Label.name tree.label in
  if String.length name > 1 && name.[0] = '@' then
    (* handled by the parent; standalone attribute becomes text *)
    Text name
  else if tree.children = [] && not (is_name name) then Text name
  else begin
    let attrs, children =
      List.partition
        (fun (c : Tree.t) ->
          let n = Label.name c.label in
          c.children = [] && String.length n > 1 && n.[0] = '@'
          && String.contains n '=')
        tree.children
    in
    let split_attr (c : Tree.t) =
      let n = Label.name c.label in
      let eq = String.index n '=' in
      (String.sub n 1 (eq - 1), String.sub n (eq + 1) (String.length n - eq - 1))
    in
    let tag = if is_name name then name else "node" in
    Element { tag; attrs = List.map split_attr attrs; children = List.map of_tree children }
  end

let escape_into b s ~attr =
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '&' -> Buffer.add_string b "&amp;"
      | '"' when attr -> Buffer.add_string b "&quot;"
      | '\'' when attr -> Buffer.add_string b "&apos;"
      | c -> Buffer.add_char b c)
    s

let to_string doc =
  let b = Buffer.create 256 in
  let rec go = function
    | Text s -> escape_into b s ~attr:false
    | Element { tag; attrs; children } ->
      Buffer.add_char b '<';
      Buffer.add_string b tag;
      List.iter
        (fun (k, v) ->
          Buffer.add_char b ' ';
          Buffer.add_string b k;
          Buffer.add_string b "=\"";
          escape_into b v ~attr:true;
          Buffer.add_char b '"')
        attrs;
      if children = [] then Buffer.add_string b "/>"
      else begin
        Buffer.add_char b '>';
        List.iter go children;
        Buffer.add_string b "</";
        Buffer.add_string b tag;
        Buffer.add_char b '>'
      end
  in
  go doc;
  Buffer.contents b

let pp fmt doc = Format.pp_print_string fmt (to_string doc)
