(** Minimal XML document model.

    The real Swissprot/Treebank corpora the paper joins are XML; this module
    provides the document model the examples and loaders work with.  It is a
    deliberately small subset of XML 1.0: elements with attributes, text,
    CDATA, comments (skipped), processing instructions and the XML
    declaration (skipped), and the five predefined entities.  No DTDs or
    namespaces — the similarity-join workloads never need them. *)

type t =
  | Element of { tag : string; attrs : (string * string) list; children : t list }
  | Text of string

val to_tree : ?keep_text:bool -> ?keep_attrs:bool -> t -> Tsj_tree.Tree.t
(** Convert a document to a labeled tree the join algorithms consume.
    Element tags become labels.  With [keep_text] (default [true]) each
    text node becomes a leaf labeled with the (whitespace-normalized)
    text; with [keep_attrs] (default [false]) each attribute becomes a
    leaf labeled ["@name=value"] preceding the element's children — the
    convention used by the XML TED literature. *)

val of_tree : Tsj_tree.Tree.t -> t
(** Inverse-ish of {!to_tree}: leaf children labeled ["@name=value"]
    become attributes of their parent element, leaf labels that are not
    valid XML names become text nodes, and everything else becomes an
    element (non-name inner labels fall back to the tag ["node"]). *)

val pp : Format.formatter -> t -> unit
(** Serialize with escaping; no added indentation. *)

val to_string : t -> string
