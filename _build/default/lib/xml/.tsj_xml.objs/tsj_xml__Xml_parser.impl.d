lib/xml/xml_parser.ml: Buffer Char In_channel List Printf String Xml
