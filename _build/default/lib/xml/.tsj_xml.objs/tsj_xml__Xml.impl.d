lib/xml/xml.ml: Buffer Format List String Tsj_tree
