lib/xml/xml.mli: Format Tsj_tree
