(** Recursive-descent parser for the XML subset described in {!Xml}.

    Handles: the XML declaration and processing instructions (skipped),
    comments (skipped), CDATA sections (as text), the five predefined
    entities ([&lt; &gt; &amp; &quot; &apos;]) and decimal/hex character
    references, attributes in single or double quotes, and self-closing
    tags.  Tag mismatches, unterminated constructs and stray markup are
    reported with byte offsets. *)

val parse : string -> (Xml.t, string) result
(** Parse a document with exactly one root element.  Leading/trailing
    prolog material (declaration, comments, whitespace) is allowed. *)

val parse_exn : string -> Xml.t
(** @raise Invalid_argument on malformed input. *)

val parse_fragments : string -> (Xml.t list, string) result
(** Parse a sequence of root-level elements — handy for record-per-line
    corpora (e.g. a concatenation of Swissprot entries). *)

val load_file : string -> (Xml.t, string) result
