(** Ground-truth similarity self-join: every size-window pair is verified
    with the exact TED (no candidate filter beyond the size bound).

    Quadratic in the collection size and cubic per pair — usable only on
    small inputs, but it defines the correct answer every other method is
    tested against (and it is the "straightforward join" the paper's
    introduction argues is too expensive). *)

val join :
  ?metric:Sweep.metric ->
  trees:Tsj_tree.Tree.t array -> tau:int -> unit -> Types.output

val rel_count : trees:Tsj_tree.Tree.t array -> tau:int -> int
(** Number of similar pairs — the REL series of Figures 11/13. *)
