(** Multicore helpers (OCaml 5 domains).

    The paper's future work names "parallel and distributed settings
    (e.g., multi-core architectures)"; the embarrassingly parallel part of
    every join method is candidate verification — independent exact TED
    computations over read-only preprocessed trees.  {!map} provides the
    fork/join primitive the join drivers use for it. *)

val map : domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f xs] is [Array.map f xs] computed on up to [domains]
    domains (including the caller's).  [f] must be safe to run
    concurrently on read-only shared data — it must not intern labels or
    touch other global tables.  With [domains <= 1] or short arrays this
    is exactly [Array.map].  Exceptions raised by [f] are re-raised.
    @raise Invalid_argument if [domains < 1]. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()], capped at 8. *)
