type pair = { i : int; j : int; distance : int }

type stats = {
  n_trees : int;
  tau : int;
  n_window_pairs : int;
  n_candidates : int;
  n_results : int;
  candidate_time_s : float;
  verify_time_s : float;
}

type output = { pairs : pair list; stats : stats }

let total_time_s s = s.candidate_time_s +. s.verify_time_s

let pair_set output =
  output.pairs
  |> List.map (fun p -> (p.i, p.j))
  |> List.sort_uniq compare

let equal_results a b =
  let norm o = List.sort compare (List.map (fun p -> (p.i, p.j, p.distance)) o.pairs) in
  norm a = norm b

let pp_stats fmt s =
  Format.fprintf fmt
    "trees=%d tau=%d window=%d candidates=%d results=%d cand_time=%.3fs verify_time=%.3fs"
    s.n_trees s.tau s.n_window_pairs s.n_candidates s.n_results s.candidate_time_s
    s.verify_time_s
