(** Common result/statistics types shared by all similarity-join methods
    (the nested-loop reference, the STR and SET baselines, and PartSJ).

    Every method takes the tree collection and the TED threshold [τ] and
    returns the set of similar pairs together with instrumentation that
    mirrors the paper's evaluation: the number of candidate pairs sent to
    exact TED verification (Figures 11/13) and the runtime split between
    candidate generation and TED computation (the stacked bars of
    Figures 10/12). *)

type pair = {
  i : int;       (** index of the first tree in the input array *)
  j : int;       (** index of the second tree; [i < j] *)
  distance : int;(** their exact tree edit distance, [<= τ] *)
}

type stats = {
  n_trees : int;
  tau : int;
  n_window_pairs : int;
      (** pairs surviving the size-difference filter (the universe every
          method draws candidates from) *)
  n_candidates : int;
      (** pairs verified with an exact TED computation *)
  n_results : int;
  candidate_time_s : float;
      (** wall time spent generating/filtering candidates *)
  verify_time_s : float;
      (** wall time spent in exact TED verification *)
}

type output = { pairs : pair list; stats : stats }

val total_time_s : stats -> float

val pair_set : output -> (int * int) list
(** Result pairs as sorted [(i, j)] tuples — handy for equality checks
    between methods. *)

val equal_results : output -> output -> bool
(** Same set of pairs (distances included). *)

val pp_stats : Format.formatter -> stats -> unit
