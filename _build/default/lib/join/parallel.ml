let recommended_domains () = min 8 (Domain.recommended_domain_count ())

let map ~domains f xs =
  if domains < 1 then invalid_arg "Parallel.map: domains must be >= 1";
  let n = Array.length xs in
  if domains = 1 || n < 2 * domains then Array.map f xs
  else begin
    let out = Array.make n None in
    (* Striped assignment keeps per-domain work balanced when cost varies
       smoothly along the array (e.g. trees sorted by size). *)
    let worker stripe () =
      let i = ref stripe in
      while !i < n do
        out.(!i) <- Some (f xs.(!i));
        i := !i + domains
      done
    in
    let spawned = List.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    worker 0 ();
    List.iter Domain.join spawned;
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every index is covered by exactly one stripe *))
      out
  end
