lib/join/sweep.mli: Tsj_ted Tsj_tree Types
