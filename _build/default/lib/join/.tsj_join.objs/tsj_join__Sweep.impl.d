lib/join/sweep.ml: Array List Tsj_ted Tsj_tree Tsj_util Types
