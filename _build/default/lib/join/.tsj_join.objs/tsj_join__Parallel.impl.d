lib/join/parallel.ml: Array Domain Mutex Option Pool String Sys
