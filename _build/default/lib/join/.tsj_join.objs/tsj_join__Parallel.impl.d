lib/join/parallel.ml: Array Domain List
