lib/join/nested_loop.mli: Sweep Tsj_tree Types
