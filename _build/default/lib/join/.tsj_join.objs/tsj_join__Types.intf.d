lib/join/types.mli: Format
