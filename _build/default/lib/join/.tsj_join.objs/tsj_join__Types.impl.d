lib/join/types.ml: Format List
