lib/join/parallel.mli:
