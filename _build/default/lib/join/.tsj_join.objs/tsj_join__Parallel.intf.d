lib/join/parallel.mli: Pool
