lib/join/pool.ml: Array Atomic Condition Domain List Mutex Option Printexc
