lib/join/nested_loop.ml: Sweep Types
