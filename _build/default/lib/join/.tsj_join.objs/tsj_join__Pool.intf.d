lib/join/pool.mli:
