(** Size-ordered sweep skeleton for filter-and-verify similarity joins.

    The nested-loop reference and both literature baselines (STR, SET)
    share the same outer structure, which this module factors out: sort the
    collection by tree size; for every tree, pair it with the already-seen
    trees whose size is within [τ] (one edit operation changes the size by
    at most one, so larger gaps cannot be similar); apply a per-method
    candidate filter; verify surviving candidates with the exact TED.

    Filtering (including the method's one-off [setup] such as extracting
    traversal strings or binary-branch bags) is charged to the
    candidate-generation timer; exact TED work is charged to the
    verification timer — matching how the paper attributes runtime. *)

type metric =
  | Ted          (** unrestricted tree edit distance (the paper's metric) *)
  | Constrained  (** Zhang's constrained edit distance; since it never
                     underestimates TED, every TED-based filter remains a
                     valid filter for it *)

val windowed_join :
  ?metric:metric ->
  trees:Tsj_tree.Tree.t array ->
  tau:int ->
  setup:(Tsj_tree.Tree.t array -> 'aux) ->
  filter:('aux -> int -> int -> bool) ->
  unit ->
  Types.output
(** [filter aux i j] receives original array indices.  It must be a true
    filter: returning [false] for a pair whose TED is [<= tau] loses
    results.  @raise Invalid_argument if [tau < 0]. *)

val verify_distance : ?metric:metric -> Tsj_ted.Ted.prep -> Tsj_ted.Ted.prep -> int
(** Exact (unbanded) verification; with the default metric, hybrid-strategy
    Zhang–Shasha (see {!Tsj_ted.Ted}). *)

val verify_bounded :
  ?metric:metric -> tau:int -> Tsj_ted.Ted.prep -> Tsj_ted.Ted.prep -> int
(** [min (distance, tau + 1)] through the τ-banded DP — the verifier the
    join drivers use: results only need distances up to the threshold,
    which the banded computation returns exactly. *)
