let join ?metric ~trees ~tau () =
  Sweep.windowed_join ?metric ~trees ~tau
    ~setup:(fun _ -> ())
    ~filter:(fun () _ _ -> true)
    ()

let rel_count ~trees ~tau = (join ~trees ~tau ()).Types.stats.Types.n_results
