(* Fault-injection and resilience tests: graceful degradation (quarantine
   soundness under budgets, poisoned trees, verifier faults), cooperative
   cancellation leaving the shared pool reusable, and checkpoint/resume
   bit-identity — the contracts documented in DESIGN.md's resilience
   section. *)

module Pool = Tsj_join.Pool
module Parallel = Tsj_join.Parallel
module Partsj = Tsj_core.Partsj
module Types = Tsj_join.Types
module Budget = Tsj_join.Budget
module Checkpoint = Tsj_join.Checkpoint
module Fault = Tsj_util.Fault_inject
module Faults = Tsj_harness.Faults
module Bracket = Tsj_tree.Bracket
module Prng = Tsj_util.Prng

(* Near-duplicate-heavy forest: enough candidates survive the cascade to
   exercise verification, budgets and the pipelined batches. *)
let clustered seed n_bases =
  let rng = Prng.create seed in
  let acc = ref [] in
  for _ = 1 to n_bases do
    let base = Gen.random_tree rng (4 + Prng.int rng 12) in
    acc := base :: !acc;
    let _, copy =
      Tsj_tree.Edit_op.random_script rng ~labels:Gen.default_alphabet 2 base
    in
    acc := copy :: !acc
  done;
  Array.of_list !acc

let contains haystack needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length haystack && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

(* A truth pair is accounted for if it is reported, or if either endpoint
   (tree-level) or the pair itself (pair-level) is quarantined. *)
let covered out p =
  let i = min p.Types.i p.Types.j and j = max p.Types.i p.Types.j in
  List.exists
    (fun q ->
      match q.Types.q_j with
      | None -> q.Types.q_i = i || q.Types.q_i = j
      | Some b ->
        let a = min q.Types.q_i b and b = max q.Types.q_i b in
        a = i && b = j)
    out.Types.quarantined

let check_sound ~name ~truth out =
  List.iter
    (fun p ->
      if not (List.mem p truth.Types.pairs) then
        Alcotest.failf "%s: false positive (%d, %d, %d)" name p.Types.i p.Types.j
          p.Types.distance)
    out.Types.pairs;
  List.iter
    (fun p ->
      if (not (List.mem p out.Types.pairs)) && not (covered out p) then
        Alcotest.failf "%s: pair (%d, %d) lost without a quarantine record" name
          p.Types.i p.Types.j)
    truth.Types.pairs

let check_stage_partition ~name out =
  Alcotest.(check int)
    (name ^ ": stage counters (incl. quarantined) partition the candidates")
    out.Types.stats.Types.n_candidates
    (Types.cascade_total out.Types.stats.Types.cascade)

(* --- the shared pool survives worker failures and cancellations --- *)

let check_pool_healthy p =
  for _ = 1 to 3 do
    let n = 64 in
    let hits = Array.init n (fun _ -> Atomic.make 0) in
    Pool.run_tasks p (Array.init n (fun i () -> Atomic.incr hits.(i)));
    Array.iteri
      (fun i a ->
        if Atomic.get a <> 1 then Alcotest.failf "task %d ran %d times" i (Atomic.get a))
      hits
  done;
  Alcotest.(check (array int)) "map works" [| 0; 2; 4 |]
    (Pool.map p (fun x -> 2 * x) [| 0; 1; 2 |])

let test_shared_pool_reusable_after_raise () =
  let p = Parallel.pool ~domains:3 in
  (match Pool.for_ p ~chunk:4 200 (fun i -> if i = 77 then failwith "boom-for") with
  | () -> Alcotest.fail "expected raise from for_"
  | exception Failure msg -> Alcotest.(check string) "for_ error" "boom-for" msg);
  check_pool_healthy p;
  (match Pool.run_tasks p (Array.init 10 (fun i () -> if i = 7 then raise Exit)) with
  | () -> Alcotest.fail "expected raise from run_tasks"
  | exception Exit -> ());
  check_pool_healthy p

let test_stop_flag_skips_unclaimed () =
  let p = Parallel.pool ~domains:3 in
  let stop = Atomic.make false in
  let ran = Atomic.make 0 in
  (* Tasks latch the stop flag after a few have run; the batch must
     return (no deadlock) having run each task at most once. *)
  Pool.run_tasks p ~stop
    (Array.init 400 (fun _ () ->
         if Atomic.fetch_and_add ran 1 = 10 then Atomic.set stop true));
  if Atomic.get ran >= 400 then Alcotest.fail "stop flag did not skip any task";
  check_pool_healthy p

(* --- graceful degradation: poisoned trees --- *)

let test_poison_tree () =
  let trees = clustered 11 10 in
  let tau = 2 in
  let truth = Partsj.join ~trees ~tau () in
  let poisoned = 5 in
  let out =
    Fault.with_armed "partsj.prep" ~at:poisoned (fun () ->
        Partsj.join ~domains:2 ~trees ~tau ())
  in
  let is_prep q =
    q.Types.q_i = poisoned && q.Types.q_j = None
    && match q.Types.q_reason with Types.Preprocess_failed _ -> true | _ -> false
  in
  Alcotest.(check bool) "prep quarantine recorded" true
    (List.exists is_prep out.Types.quarantined);
  Alcotest.(check bool) "no pair involves the poisoned tree" true
    (List.for_all
       (fun p -> p.Types.i <> poisoned && p.Types.j <> poisoned)
       out.Types.pairs);
  let expected =
    List.filter (fun p -> p.Types.i <> poisoned && p.Types.j <> poisoned) truth.Types.pairs
  in
  Alcotest.(check bool) "every other pair intact" true (out.Types.pairs = expected);
  check_sound ~name:"poison" ~truth out;
  check_stage_partition ~name:"poison" out

let test_all_trees_poisoned () =
  (* Worker raise on every tree: the whole collection is quarantined, the
     join returns instead of dying, and the shared pool stays usable. *)
  let trees = clustered 7 8 in
  let out = Fault.with_armed "partsj.prep" (fun () -> Partsj.join ~domains:3 ~trees ~tau:1 ()) in
  Alcotest.(check int) "no pairs" 0 (List.length out.Types.pairs);
  Alcotest.(check int) "all trees quarantined" (Array.length trees)
    (List.length out.Types.quarantined);
  check_pool_healthy (Parallel.pool ~domains:3);
  let again = Partsj.join ~domains:3 ~trees ~tau:1 () in
  Alcotest.(check bool) "join recovers once disarmed" true
    (List.length again.Types.pairs > 0)

(* --- graceful degradation: verifier faults --- *)

let test_verify_fault_quarantines_pairs () =
  let trees = clustered 29 10 in
  let tau = 2 in
  let out =
    Fault.with_armed "partsj.verify" (fun () -> Partsj.join ~domains:2 ~trees ~tau ())
  in
  Alcotest.(check int) "no pairs decided" 0 (List.length out.Types.pairs);
  Alcotest.(check int) "every candidate quarantined"
    out.Types.stats.Types.n_candidates
    (List.length out.Types.quarantined);
  Alcotest.(check bool) "reasons are Verify_failed" true
    (List.for_all
       (fun q ->
         match q.Types.q_reason with Types.Verify_failed _ -> true | _ -> false)
       out.Types.quarantined);
  check_stage_partition ~name:"verify fault" out

(* --- graceful degradation: per-pair budgets --- *)

let check_budget ~domains ~limit trees tau =
  let name = Printf.sprintf "budget limit=%d domains=%d" limit domains in
  let r = Faults.run_budgeted ~domains ~pair_cost_limit:limit ~trees ~tau () in
  Alcotest.(check int) (name ^ ": no false positives") 0
    (List.length r.Faults.false_positives);
  Alcotest.(check int) (name ^ ": complete up to quarantine") 0
    (List.length r.Faults.unaccounted);
  check_stage_partition ~name r.Faults.budgeted;
  r

let test_pair_budget_soundness () =
  let trees = clustered 3 12 in
  List.iter
    (fun domains ->
      List.iter (fun limit -> ignore (check_budget ~domains ~limit trees 2)) [ 1; 60; 400 ])
    [ 1; 3 ]

let test_pair_budget_deterministic_across_domains () =
  let trees = clustered 31 12 in
  let r1 = check_budget ~domains:1 ~limit:40 trees 2 in
  let r4 = check_budget ~domains:4 ~limit:40 trees 2 in
  Alcotest.(check bool) "budgeted output identical at 1 and 4 domains" true
    (Types.equal_deterministic r1.Faults.budgeted r4.Faults.budgeted)

let arb_forest =
  QCheck.make
    ~print:(fun (seed, n, max_size) ->
      Printf.sprintf "seed=%d n=%d max_size=%d" seed n max_size)
    (fun st ->
      ( Random.State.int st 0x3FFFFFFF,
        4 + Random.State.int st 12,
        4 + Random.State.int st 12 ))

let prop_budget_sound (seed, n, max_size) =
  let rng = Prng.create seed in
  let trees = Array.of_list (Gen.random_forest rng ~n ~max_size) in
  let tau = 1 + (seed mod 3) in
  let limit = 1 + (seed mod 60) in
  let outs =
    List.map
      (fun domains ->
        let r = Faults.run_budgeted ~domains ~pair_cost_limit:limit ~trees ~tau () in
        if r.Faults.false_positives <> [] then
          QCheck.Test.fail_reportf "false positive at %d domains (seed=%d)" domains seed;
        if r.Faults.unaccounted <> [] then
          QCheck.Test.fail_reportf
            "pair lost without quarantine at %d domains (seed=%d)" domains seed;
        r.Faults.budgeted)
      [ 1; 3 ]
  in
  match outs with
  | [ o1; o3 ] ->
    if not (Types.equal_deterministic o1 o3) then
      QCheck.Test.fail_reportf "budgeted join differs across domain counts (seed=%d)"
        seed;
    true
  | _ -> true

(* --- deadlines and cooperative cancellation --- *)

let test_zero_time_budget () =
  let trees = clustered 5 10 in
  let budget = Budget.create ~time_budget_s:0.0 () in
  let out = Partsj.join ~domains:3 ~budget ~trees ~tau:2 () in
  Alcotest.(check int) "no pairs" 0 (List.length out.Types.pairs);
  Alcotest.(check int) "every tree quarantined" (Array.length trees)
    (List.length out.Types.quarantined);
  Alcotest.(check bool) "reasons are Deadline" true
    (List.for_all
       (fun q -> q.Types.q_reason = Types.Deadline && q.Types.q_j = None)
       out.Types.quarantined);
  check_pool_healthy (Parallel.pool ~domains:3);
  let truth = Partsj.join ~domains:3 ~trees ~tau:2 () in
  check_sound ~name:"deadline 0" ~truth out

let test_simulated_budget_exhaustion () =
  (* Arm the budget poll itself: after a handful of liveness checks the
     budget is cancelled, as if the wall clock had expired mid-sweep. *)
  let trees = clustered 9 40 in
  let tau = 2 in
  let truth = Partsj.join ~domains:2 ~trees ~tau () in
  let budget = Budget.create ~time_budget_s:3600.0 () in
  let polls = Atomic.make 0 in
  Fault.arm_action "budget.live" (fun _ ->
      if Atomic.fetch_and_add polls 1 = 8 then Budget.cancel budget);
  let out =
    Fun.protect
      ~finally:(fun () -> Fault.disarm "budget.live")
      (fun () -> Partsj.join ~domains:2 ~budget ~trees ~tau ())
  in
  Alcotest.(check bool) "stopped before finishing" true
    (out.Types.quarantined <> []);
  check_sound ~name:"exhaustion" ~truth out;
  check_stage_partition ~name:"exhaustion" out;
  check_pool_healthy (Parallel.pool ~domains:2)

(* --- checkpoint/resume --- *)

let test_kill_and_resume () =
  let trees = clustered 13 40 in
  List.iter
    (fun domains ->
      let r = Faults.run_kill_and_resume ~domains ~kill_at_block:1 ~trees ~tau:2 () in
      Alcotest.(check bool) (Printf.sprintf "crash fired at %d domains" domains) true
        r.Faults.killed;
      Alcotest.(check bool)
        (Printf.sprintf "resumed output identical at %d domains" domains)
        true
        (Types.equal_deterministic r.Faults.uninterrupted r.Faults.resumed))
    [ 1; 4 ]

let test_resume_completed_journal () =
  let trees = clustered 17 10 in
  let path = Faults.fresh_journal () in
  let out1 = Partsj.join ~checkpoint:(Checkpoint.config path) ~trees ~tau:2 () in
  let out2 = Partsj.join ~checkpoint:(Checkpoint.config ~resume:true path) ~trees ~tau:2 () in
  Sys.remove path;
  Alcotest.(check bool) "resume of a finished journal replays the output" true
    (Types.equal_deterministic out1 out2)

let test_resume_missing_journal () =
  let trees = clustered 37 6 in
  let path = Faults.fresh_journal () in
  (* resume:true with no journal yet = fresh start, then journal exists *)
  let out = Partsj.join ~checkpoint:(Checkpoint.config ~resume:true path) ~trees ~tau:1 () in
  Alcotest.(check bool) "fresh start" true (List.length out.Types.pairs >= 0);
  Alcotest.(check bool) "journal written" true (Sys.file_exists path);
  Sys.remove path

let test_truncated_journal_refused () =
  let trees = clustered 19 40 in
  let path = Faults.fresh_journal () in
  ignore (Partsj.join ~checkpoint:(Checkpoint.config path) ~trees ~tau:2 ());
  Faults.truncate_file path ~keep_bytes:40;
  (match Checkpoint.load path with
  | Error msg ->
    Alcotest.(check bool) "error mentions corruption" true
      (contains msg "trunc" || contains msg "checksum" || contains msg "corrupt")
  | Ok _ -> Alcotest.fail "truncated journal loaded");
  (match Partsj.join ~checkpoint:(Checkpoint.config ~resume:true path) ~trees ~tau:2 () with
  | _ -> Alcotest.fail "resume from a truncated journal succeeded"
  | exception Invalid_argument _ -> ());
  Sys.remove path

let test_fingerprint_mismatch_refused () =
  let trees = clustered 23 10 in
  let path = Faults.fresh_journal () in
  ignore (Partsj.join ~checkpoint:(Checkpoint.config path) ~trees ~tau:2 ());
  (match Partsj.join ~checkpoint:(Checkpoint.config ~resume:true path) ~trees ~tau:3 () with
  | _ -> Alcotest.fail "resume with a mismatched fingerprint succeeded"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "error names the mismatch" true (contains msg "different"));
  Sys.remove path

let test_checkpoint_state_roundtrip () =
  let st =
    {
      Checkpoint.fingerprint = "cafef00ddeadbeef";
      blocks_done = 3;
      pairs = [ { Types.i = 0; j = 1; distance = 2 }; { Types.i = 3; j = 9; distance = 0 } ];
      quarantined =
        [
          { Types.q_i = 1; q_j = Some 2; q_reason = Types.Pair_budget { lower = 3; upper = 9 } };
          {
            Types.q_i = 4;
            q_j = None;
            q_reason = Types.Preprocess_failed "bad \"tree\" with spaces\nand a newline";
          };
          { Types.q_i = 5; q_j = Some 6; q_reason = Types.Verify_failed "x y z" };
          { Types.q_i = 7; q_j = None; q_reason = Types.Deadline };
          { Types.q_i = 8; q_j = Some 9; q_reason = Types.Deadline };
          {
            Types.q_i = 2;
            q_j = None;
            q_reason = Types.Malformed { line = 3; col = 7; message = "oops here" };
          };
        ];
      n_candidates = 17;
      stage_counts = [| 1; 2; 3; 4; 5; 6; 7 |];
      n_probed = 10;
      n_matched = 5;
      n_small_hits = 2;
      n_indexed = 40;
    }
  in
  let path = Faults.fresh_journal () in
  Checkpoint.save ~path st;
  (match Checkpoint.load path with
  | Ok (Some st') -> Alcotest.(check bool) "roundtrip" true (st = st')
  | Ok None -> Alcotest.fail "journal vanished"
  | Error msg -> Alcotest.failf "roundtrip failed: %s" msg);
  Sys.remove path;
  Alcotest.(check bool) "missing file is a fresh start" true (Checkpoint.load path = Ok None)

(* --- parser resilience (line/column reporting + lenient loading) --- *)

let test_bracket_line_col () =
  (match Bracket.of_string "{a}\n{b}" with
  | Error msg -> Alcotest.(check bool) "line 2 reported" true (contains msg "line 2")
  | Ok _ -> Alcotest.fail "accepted two trees");
  match Bracket.of_string "{a}{b}" with
  | Error msg -> Alcotest.(check bool) "column reported" true (contains msg "column 4")
  | Ok _ -> Alcotest.fail "accepted trailing garbage"

let test_bracket_lenient () =
  let trees, errors = Bracket.forest_of_string_lenient "{a}\n}{x}\n{c}\n" in
  Alcotest.(check (list string)) "good records kept" [ "{a}"; "{c}" ]
    (List.map Bracket.to_string trees);
  (match errors with
  | [ (2, 1, _) ] -> ()
  | _ -> Alcotest.failf "expected one error at line 2, column 1 (got %d)" (List.length errors));
  let trees, errors = Bracket.forest_of_string_lenient "" in
  Alcotest.(check int) "empty input: no trees" 0 (List.length trees);
  Alcotest.(check int) "empty input: no errors" 0 (List.length errors)

let test_xml_line_col_and_lenient () =
  (match Tsj_xml.Xml_parser.parse "<a>\n<b>\n</a>" with
  | Error msg -> Alcotest.(check bool) "line 3 reported" true (contains msg "line 3")
  | Ok _ -> Alcotest.fail "accepted mismatched tags");
  let docs, errors = Tsj_xml.Xml_parser.parse_fragments_lenient "<a/><b><c></b><d/>" in
  Alcotest.(check int) "two good fragments" 2 (List.length docs);
  Alcotest.(check int) "one error" 1 (List.length errors)

let suite =
  [
    Alcotest.test_case "shared pool reusable after worker raise" `Quick
      test_shared_pool_reusable_after_raise;
    Alcotest.test_case "stop flag skips unclaimed tasks" `Quick
      test_stop_flag_skips_unclaimed;
    Alcotest.test_case "poisoned tree quarantined" `Quick test_poison_tree;
    Alcotest.test_case "all trees poisoned" `Quick test_all_trees_poisoned;
    Alcotest.test_case "verifier fault quarantines pairs" `Quick
      test_verify_fault_quarantines_pairs;
    Alcotest.test_case "per-pair budget soundness" `Quick test_pair_budget_soundness;
    Alcotest.test_case "budgeted join deterministic across domains" `Quick
      test_pair_budget_deterministic_across_domains;
    Gen.qtest ~count:30 "quarantine soundness under random budgets" arb_forest
      prop_budget_sound;
    Alcotest.test_case "zero time budget quarantines everything" `Quick
      test_zero_time_budget;
    Alcotest.test_case "simulated budget exhaustion mid-sweep" `Quick
      test_simulated_budget_exhaustion;
    Alcotest.test_case "kill and resume is bit-identical" `Quick test_kill_and_resume;
    Alcotest.test_case "resume of a finished journal" `Quick test_resume_completed_journal;
    Alcotest.test_case "resume with a missing journal" `Quick test_resume_missing_journal;
    Alcotest.test_case "truncated journal refused" `Quick test_truncated_journal_refused;
    Alcotest.test_case "fingerprint mismatch refused" `Quick
      test_fingerprint_mismatch_refused;
    Alcotest.test_case "checkpoint state roundtrip" `Quick test_checkpoint_state_roundtrip;
    Alcotest.test_case "bracket errors carry line/column" `Quick test_bracket_line_col;
    Alcotest.test_case "bracket lenient loading" `Quick test_bracket_lenient;
    Alcotest.test_case "xml line/column + lenient fragments" `Quick
      test_xml_line_col_and_lenient;
  ]
