(* Tests for the hash-consing layer and its consumers: the Dag store
   (structural interning, collision-checked hashing under a truncated
   hash), the cross-pair TED memo (bounded clock eviction, whole-pair
   result cache), bit-identity of the PartSJ join with consing on/off
   (including under a per-pair budget and across domain counts), the
   serving store's whole-tree dedup against a duplicate-free store, and
   the in-place Arena matrix reshape under shape-alternating kernel
   calls. *)

module Tree = Tsj_tree.Tree
module Dag = Tsj_tree.Dag
module Ted = Tsj_ted.Ted
module Memo = Tsj_ted.Memo
module Partsj = Tsj_core.Partsj
module Types = Tsj_join.Types
module Budget = Tsj_join.Budget
module Prng = Tsj_util.Prng
module Store = Tsj_server.Store

(* --- Dag store: interning basics --- *)

let test_intern_basics () =
  let rng = Prng.create 11 in
  let dag = Dag.create () in
  let a = Gen.random_tree rng 20 in
  let a_copy =
    (* structurally equal, physically distinct *)
    let rec deep (t : Tree.t) = Tree.node t.Tree.label (List.map deep t.Tree.children) in
    deep a
  in
  let b = Gen.random_tree rng 20 in
  let na = Dag.intern dag a in
  let na' = Dag.intern dag a_copy in
  let nb = Dag.intern dag b in
  Alcotest.(check int) "equal trees, same id" (Dag.id na) (Dag.id na');
  Alcotest.(check bool) "shared views physically equal" true
    (Dag.tree na == Dag.tree na');
  Alcotest.(check bool) "distinct trees, distinct ids" true
    (Dag.id na <> Dag.id nb || Tree.equal a b);
  Alcotest.(check int) "node size" (Tree.size a) (Dag.size na);
  Alcotest.(check bool) "view is structurally the tree" true
    (Tree.equal a (Dag.tree na));
  Alcotest.(check int) "intern requests counted"
    ((2 * Tree.size a) + Tree.size b)
    (Dag.interned dag);
  Alcotest.(check bool) "find interned" true (Dag.find dag a_copy = Some na);
  let fresh = Gen.random_tree rng 25 in
  Alcotest.(check bool) "find unknown" true
    (Dag.find dag fresh = None || Tree.equal fresh a || Tree.equal fresh b)

let test_hash_bits_validation () =
  Alcotest.check_raises "hash_bits 0"
    (Invalid_argument "Dag.create: hash_bits must be in 1..62") (fun () ->
      ignore (Dag.create ~hash_bits:0 ()));
  Alcotest.check_raises "hash_bits 63"
    (Invalid_argument "Dag.create: hash_bits must be in 1..62") (fun () ->
      ignore (Dag.create ~hash_bits:63 ()))

(* Truncating the structural hash to 2 bits forces nearly every bucket
   to collide; interning must still be exact — id equality iff
   structural equality — because the bucket scan compares label and
   child ids. *)
let prop_collisions_exact =
  Gen.qtest ~count:60 "2-bit hash: id equality = structural equality"
    (QCheck.make
       ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
       (fun st -> (Random.State.int st 0x3FFFFFFF, 2 + Random.State.int st 12)))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let trees = Array.of_list (Gen.random_forest rng ~n ~max_size:10) in
      let dag = Dag.create ~hash_bits:2 () in
      let nodes = Array.map (Dag.intern dag) trees in
      let ok = ref true in
      for i = 0 to Array.length nodes - 1 do
        for j = 0 to Array.length nodes - 1 do
          let same_id = Dag.id nodes.(i) = Dag.id nodes.(j) in
          let same_tree = Tree.equal trees.(i) trees.(j) in
          if same_id <> same_tree then ok := false
        done
      done;
      !ok)

(* --- Memo: bounded clock eviction and the result cache --- *)

let test_memo_eviction () =
  let m = Memo.create ~slots:2 ~words:1000 () in
  let w id = Array.init 6 (fun i -> id + i) in
  Memo.add m ~id1:1 ~id2:2 ~k:3 (w 10);
  Memo.add m ~id1:3 ~id2:4 ~k:3 (w 20);
  Alcotest.(check int) "both cached" 2 (Memo.used m);
  (* Reference entry (1,2): the clock's second chance must evict the
     unreferenced (3,4) instead. *)
  Alcotest.(check bool) "find marks referenced" true
    (Memo.find m ~id1:1 ~id2:2 ~k:3 = Some (w 10));
  Memo.add m ~id1:5 ~id2:6 ~k:3 (w 30);
  Alcotest.(check int) "still at capacity" 2 (Memo.used m);
  Alcotest.(check bool) "referenced entry survives" true
    (Memo.find m ~id1:1 ~id2:2 ~k:3 <> None);
  Alcotest.(check bool) "unreferenced entry evicted" true
    (Memo.find m ~id1:3 ~id2:4 ~k:3 = None);
  Alcotest.(check bool) "new entry cached" true
    (Memo.find m ~id1:5 ~id2:6 ~k:3 = Some (w 30))

let test_memo_word_bound () =
  let m = Memo.create ~slots:64 ~words:12 () in
  Memo.add m ~id1:1 ~id2:2 ~k:1 (Array.make 9 7);
  Alcotest.(check int) "within word bound" 9 (Memo.words m);
  (* Oversized write-sets are ignored outright... *)
  Memo.add m ~id1:3 ~id2:4 ~k:1 (Array.make 15 7);
  Alcotest.(check bool) "oversized ignored" true
    (Memo.find m ~id1:3 ~id2:4 ~k:1 = None);
  (* ...and a fitting one evicts until the total fits again. *)
  Memo.add m ~id1:5 ~id2:6 ~k:1 (Array.make 6 7);
  Alcotest.(check bool) "word bound held" true (Memo.words m <= 12);
  Alcotest.(check bool) "old entry evicted for space" true
    (Memo.find m ~id1:1 ~id2:2 ~k:1 = None);
  (* Same key, different clamp: distinct entries. *)
  Memo.add m ~id1:5 ~id2:6 ~k:2 (Array.make 3 9);
  Alcotest.(check bool) "clamp is part of the key" true
    (Memo.find m ~id1:5 ~id2:6 ~k:2 = Some (Array.make 3 9)
    && Memo.find m ~id1:5 ~id2:6 ~k:1 = Some (Array.make 6 7))

let test_memo_result_cache () =
  let m = Memo.create ~results:2 () in
  Memo.add_result m ~id1:1 ~id2:2 ~k:3 0;
  Memo.add_result m ~id1:3 ~id2:4 ~k:3 4;
  Alcotest.(check bool) "result roundtrip" true
    (Memo.find_result m ~id1:1 ~id2:2 ~k:3 = Some 0
    && Memo.find_result m ~id1:3 ~id2:4 ~k:3 = Some 4);
  Alcotest.(check bool) "clamp keys results" true
    (Memo.find_result m ~id1:1 ~id2:2 ~k:2 = None);
  (* The table resets wholesale when full — cheap, entries are ints. *)
  Memo.add_result m ~id1:5 ~id2:6 ~k:3 1;
  Alcotest.(check int) "reset on overflow" 1 (Memo.results m);
  Alcotest.(check bool) "survivor is the newest" true
    (Memo.find_result m ~id1:5 ~id2:6 ~k:3 = Some 1
    && Memo.find_result m ~id1:1 ~id2:2 ~k:3 = None)

(* --- consing is invisible in the join output --- *)

let arb_forest =
  QCheck.make
    ~print:(fun (seed, n, max_size) ->
      Printf.sprintf "seed=%d n=%d max_size=%d" seed n max_size)
    (fun st ->
      ( Random.State.int st 0x3FFFFFFF,
        2 + Random.State.int st 14,
        4 + Random.State.int st 12 ))

let forest_of_seed seed n max_size =
  let rng = Prng.create seed in
  (* Salt with duplicates so the fast paths and both memo levels fire. *)
  let base = Array.of_list (Gen.random_forest rng ~n ~max_size) in
  Array.init (Array.length base + (n / 2)) (fun i ->
      if i < Array.length base then base.(i)
      else base.(Prng.int rng (Array.length base)))

let prop_consing_bit_identical (seed, n, max_size) =
  let trees = forest_of_seed seed n max_size in
  let tau = 1 + (seed mod 3) in
  let off = Partsj.join ~consing:false ~trees ~tau () in
  let on1 = Partsj.join ~consing:true ~trees ~tau () in
  let on3 = Partsj.join ~consing:true ~domains:3 ~trees ~tau () in
  if not (Types.equal_deterministic off on1) then
    QCheck.Test.fail_reportf "consing changed the output (seed=%d)" seed
  else if not (Types.equal_deterministic on1 on3) then
    QCheck.Test.fail_reportf
      "consed join differs across domain counts (seed=%d)" seed
  else true

let prop_consing_budget_bit_identical (seed, n, max_size) =
  (* The per-pair cost model is a pure function of the pair, so budgeted
     joins must quarantine the same pairs with and without consing. *)
  let trees = forest_of_seed seed n max_size in
  let tau = 1 + (seed mod 3) in
  let run consing =
    let budget = Budget.create ~pair_cost_limit:400 () in
    Partsj.join ~consing ~budget ~trees ~tau ()
  in
  Types.equal_deterministic (run false) (run true)

(* --- serving store: whole-tree dedup --- *)

let test_store_dedup_equivalence () =
  let rng = Prng.create 4242 in
  let distinct = Array.of_list (Gen.random_forest rng ~n:12 ~max_size:10) in
  (* A stream with exact re-submissions interleaved. *)
  let stream =
    Array.init 30 (fun i ->
        if i < 12 then distinct.(i) else distinct.(Prng.int rng 12))
  in
  let open_ dedup =
    match Store.open_ ~dedup ~tau:2 () with
    | Ok s -> s
    | Error e -> Alcotest.failf "open_: %s" e
  in
  let deduped = open_ true in
  let plain = open_ false in
  (* The dedup store sees the whole stream; the plain store only the
     distinct prefix: they must end up indistinguishable. *)
  Array.iter (fun tree -> ignore (Store.add plain tree)) distinct;
  Array.iteri
    (fun i tree ->
      let id, partners = Store.add deduped tree in
      if i < 12 then Alcotest.(check int) "fresh ids are dense" i id
      else begin
        Alcotest.(check bool) "duplicate answered with original id" true
          (Tree.equal (Store.tree deduped id) tree);
        (* Bit-identical to an idempotent replay of the original add. *)
        match Store.add_seq plain ~seq:id tree with
        | Ok replay ->
          Alcotest.(check bool) "duplicate = replay answer" true
            (replay = (id, partners))
        | Error e -> Alcotest.failf "replay: %s" e
      end)
    stream;
  Alcotest.(check int) "no index growth from duplicates" (Store.n_trees plain)
    (Store.n_trees deduped);
  Alcotest.(check int) "suppressed duplicates counted" 18 (Store.dedups deduped);
  Alcotest.(check int) "plain store deduped nothing" 0 (Store.dedups plain);
  (* Query and k-NN answers are those of the duplicate-free store. *)
  for probe_seed = 1 to 5 do
    let probe = Gen.random_tree (Prng.create probe_seed) 8 in
    let qd = Store.query deduped probe and qp = Store.query plain probe in
    Alcotest.(check bool)
      (Printf.sprintf "query %d identical" probe_seed)
      true
      (qd.Tsj_core.Incremental.hits = qp.Tsj_core.Incremental.hits);
    Alcotest.(check bool)
      (Printf.sprintf "knn %d identical" probe_seed)
      true
      (Store.nearest ~k:3 deduped probe = Store.nearest ~k:3 plain probe)
  done;
  Store.close deduped;
  Store.close plain

let test_store_dedup_within_batch () =
  let rng = Prng.create 99 in
  let a = Gen.random_tree rng 9 and b = Gen.random_tree rng 9 in
  let a' =
    let rec deep (t : Tree.t) = Tree.node t.Tree.label (List.map deep t.Tree.children) in
    deep a
  in
  match Store.open_ ~dedup:true ~tau:2 () with
  | Error e -> Alcotest.failf "open_: %s" e
  | Ok store ->
    (* A batch may contain a fresh tree and its duplicate: the duplicate
       must resolve to the seq staged earlier in the same batch. *)
    let results = Store.add_batch store [| (None, a); (None, b); (None, a') |] in
    (match (results.(0), results.(2)) with
    | Ok (ida, _), Ok (ida', partners) ->
      Alcotest.(check int) "within-batch duplicate collapses" ida ida';
      Alcotest.(check bool) "partners of the original" true
        (match results.(0) with Ok (_, p) -> p = partners | Error _ -> false)
    | _ -> Alcotest.fail "batch add failed");
    Alcotest.(check int) "one duplicate suppressed" 1 (Store.dedups store);
    Alcotest.(check int) "two trees indexed" 2 (Store.n_trees store);
    Store.close store

(* --- Arena: in-place matrix reshape --- *)

let test_arena_reshape_alternating_shapes () =
  (* Alternating (wide, narrow) and (narrow, wide) pairs exercises the
     reshape-in-place path of [Arena.reserve_matrices] (capacity
     suffices, stride changes).  Every distance must agree with the
     Naive reference kernel, which allocates fresh tables per call. *)
  let rng = Prng.create 2026 in
  let wide = Gen.random_tree rng 34 in
  let narrow = Gen.random_tree rng 6 in
  let mid = Gen.random_tree rng 33 in
  let pairs =
    [ (wide, narrow); (narrow, wide); (wide, mid); (narrow, narrow);
      (mid, wide); (mid, narrow) ]
  in
  List.iteri
    (fun i (a, b) ->
      let pa = Ted.preprocess a and pb = Ted.preprocess b in
      Alcotest.(check int)
        (Printf.sprintf "pair %d unbounded" i)
        (Ted.distance_prep ~algorithm:Ted.Naive pa pb)
        (Ted.distance_prep pa pb);
      List.iter
        (fun k ->
          Alcotest.(check int)
            (Printf.sprintf "pair %d bounded k=%d" i k)
            (Ted.bounded_distance_prep ~algorithm:Ted.Naive pa pb k)
            (Ted.bounded_distance_prep pa pb k))
        [ 0; 2; 5 ])
    pairs

let suite =
  [
    Alcotest.test_case "intern basics" `Quick test_intern_basics;
    Alcotest.test_case "hash_bits validation" `Quick test_hash_bits_validation;
    prop_collisions_exact;
    Alcotest.test_case "memo clock eviction" `Quick test_memo_eviction;
    Alcotest.test_case "memo word bound" `Quick test_memo_word_bound;
    Alcotest.test_case "memo result cache" `Quick test_memo_result_cache;
    Gen.qtest ~count:20 "join bit-identical with consing on/off" arb_forest
      prop_consing_bit_identical;
    Gen.qtest ~count:12 "budgeted join bit-identical with consing on/off"
      arb_forest prop_consing_budget_bit_identical;
    Alcotest.test_case "store dedup = duplicate-free store" `Quick
      test_store_dedup_equivalence;
    Alcotest.test_case "store dedup within one batch" `Quick
      test_store_dedup_within_batch;
    Alcotest.test_case "arena reshape alternating shapes" `Quick
      test_arena_reshape_alternating_shapes;
  ]
