(* Tests for the sharded serving layer: band-key placement, the pure
   scatter-gather merge (qcheck soundness of degraded sandwiches), the
   router end-to-end over real sockets — including a shard killed
   mid-query degrading the answer instead of failing it — ledger
   recovery with orphan adoption, and the sharded kill/partition storm
   with journal-streaming migrations. *)

module Tree = Tsj_tree.Tree
module Bracket = Tsj_tree.Bracket
module Prng = Tsj_util.Prng
module Protocol = Tsj_server.Protocol
module Store = Tsj_server.Store
module Server = Tsj_server.Server
module Client = Tsj_server.Client
module Shard = Tsj_server.Shard
module Router = Tsj_server.Router
module Faults = Tsj_harness.Faults
module Incremental = Tsj_core.Incremental

let t s = Bracket.of_string_exn s
let ok_or_fail = function Ok v -> v | Error msg -> Alcotest.fail msg

let trees_of seed n =
  let rng = Prng.create seed in
  Array.init n (fun _ -> Gen.random_tree rng (3 + Prng.int rng 10))

(* --- band-key placement --- *)

let test_band_routing () =
  let tau = 2 in
  let m = Shard.create ~shards:4 ~tau () in
  Alcotest.(check int) "default band width is 2tau+1" 5 m.Shard.band;
  (* placement is a pure function of the size *)
  for size = 0 to 200 do
    Alcotest.(check int)
      (Printf.sprintf "stable placement of size %d" size)
      (Shard.shard_of_size m size)
      (Shard.shard_of_size m size);
    let s = Shard.shard_of_size m size in
    Alcotest.(check bool) "in range" true (s >= 0 && s < 4);
    (* the window covers every size that could be within tau *)
    let window = Shard.shards_for m ~tau size in
    for d = -tau to tau do
      if size + d >= 0 then
        Alcotest.(check bool)
          (Printf.sprintf "size %d covers %d" size (size + d))
          true
          (List.mem (Shard.shard_of_size m (size + d)) window)
    done;
    (* with the default band width a window never needs > 2 shards *)
    Alcotest.(check bool) "window spans at most 2 shards" true
      (List.length window <= 2);
    Alcotest.(check bool) "window contains own shard" true (List.mem s window)
  done;
  (* a tree routes like its size *)
  let tree = t "{a{b}{c{d}}}" in
  Alcotest.(check int) "tree routes by size"
    (Shard.shard_of_size m (Tree.size tree))
    (Shard.shard_of_tree m tree);
  (* sandwich: |s1 - s2| <= TED <= s1 + s2 *)
  let lo, hi = Shard.sandwich ~query_size:7 4 in
  Alcotest.(check (pair int int)) "sandwich bounds" (3, 11) (lo, hi);
  (match Shard.create ~shards:0 ~tau () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shards=0 accepted")

(* --- qcheck: degraded-merge soundness against the unsharded truth --- *)

(* Build the reference store and the per-shard stores over one forest;
   answer the query from a random subset of shards (the rest
   Unreachable) and check the merged answer never loses a true hit:
   exact when the owning shard answered, inside its [lo, hi] sandwich
   when it did not — and never invents one. *)
let prop_merge_sound seed =
  let rng = Prng.create (0xD156E + seed) in
  let tau = 1 + (seed mod 3) in
  let shards = 2 + (seed mod 3) in
  let map = Shard.create ~shards ~tau () in
  let trees = Array.init 10 (fun _ -> Gen.random_tree rng (3 + Prng.int rng 8)) in
  let reference = ok_or_fail (Store.open_ ~tau ()) in
  let stores = Array.init shards (fun _ -> ok_or_fail (Store.open_ ~tau ())) in
  let lseq2gid : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
  let res = Array.make shards [] in
  Array.iteri
    (fun gid tree ->
      ignore (Store.add reference tree);
      let s = Shard.shard_of_tree map tree in
      let lseq, _ = Store.add stores.(s) tree in
      Hashtbl.replace lseq2gid (s, lseq) gid;
      res.(s) <- (gid, Tree.size tree) :: res.(s))
    trees;
  let finally () =
    Store.close reference;
    Array.iter Store.close stores
  in
  Fun.protect ~finally (fun () ->
      let q = Gen.random_tree rng (3 + Prng.int rng 8) in
      let query_size = Tree.size q in
      let reachable = Array.init shards (fun _ -> Prng.int rng 3 > 0) in
      let answers =
        List.map
          (fun s ->
            if not reachable.(s) then (s, Router.Merge.Unreachable)
            else
              let r = Store.query ~tau stores.(s) q in
              ( s,
                Router.Merge.Answer
                  {
                    degraded = r.Incremental.degraded;
                    hits = r.Incremental.hits;
                    unverified = r.Incremental.unverified;
                  } ))
          (Shard.shards_for map ~tau query_size)
      in
      let merged =
        Router.Merge.query ~query_size ~tau
          ~to_gid:(fun ~shard lid -> Hashtbl.find_opt lseq2gid (shard, lid))
          ~resident:(fun ~shard -> res.(shard))
          answers
      in
      let truth = (Store.query ~tau reference q).Incremental.hits in
      List.iter
        (fun (gid, d) ->
          let s = Shard.shard_of_tree map trees.(gid) in
          if reachable.(s) then begin
            if not (List.mem (gid, d) merged.Router.a_hits) then
              QCheck.Test.fail_reportf
                "hit (%d, %d) lost though shard %d answered (seed=%d)" gid d s seed
          end
          else if
            not
              (List.exists
                 (fun (g, lo, hi) -> g = gid && lo <= d && d <= hi)
                 merged.Router.a_unverified)
          then
            QCheck.Test.fail_reportf
              "hit (%d, %d) of silent shard %d not sandwiched (seed=%d)" gid d s seed)
        truth;
      List.iter
        (fun (gid, d) ->
          if not (List.mem (gid, d) truth) then
            QCheck.Test.fail_reportf "invented hit (%d, %d) (seed=%d)" gid d seed)
        merged.Router.a_hits;
      (* with every shard reachable the merge is the truth, bit for bit *)
      if Array.for_all (fun b -> b) reachable then begin
        if merged.Router.a_hits <> truth || merged.Router.a_unverified <> [] then
          QCheck.Test.fail_reportf "healthy merge not bit-identical (seed=%d)" seed;
        if merged.Router.a_degraded then
          QCheck.Test.fail_reportf "healthy merge marked degraded (seed=%d)" seed
      end;
      true)

let prop_merge_sandwich =
  Gen.qtest ~count:60 "merged sandwiches always contain the true distance"
    QCheck.(int_bound 1_000_000)
    prop_merge_sound

(* --- router end-to-end over real sockets --- *)

let with_shard_servers ?(tau = 2) n f =
  let socks =
    Array.init n (fun _ ->
        let p = Filename.temp_file "tsj_shard" ".sock" in
        Sys.remove p;
        p)
  in
  let addrs = Array.map (fun p -> Protocol.Unix_path p) socks in
  let servers =
    Array.map
      (fun addr -> ok_or_fail (Server.create (Server.default_config addr ~tau)))
      addrs
  in
  Array.iter Server.start servers;
  Fun.protect
    ~finally:(fun () ->
      Array.iteri
        (fun i srv ->
          (try Server.drain srv with _ -> ());
          (try Server.wait srv with _ -> ());
          if Sys.file_exists socks.(i) then Sys.remove socks.(i))
        servers)
    (fun () -> f addrs servers)

let test_router_end_to_end () =
  let tau = 2 in
  with_shard_servers ~tau 2 (fun addrs servers ->
      let cfg =
        {
          Router.map = Shard.create ~shards:2 ~tau ();
          tau;
          groups = Array.map (fun a -> [ a ]) addrs;
          timeout_s = 2.0;
          attempts = 2;
          ledger = None;
          seed = 9000;
          hedge_s = None;
          margin_ms = 0;
        }
      in
      let router = ok_or_fail (Router.create cfg) in
      let reference = ok_or_fail (Store.open_ ~tau ()) in
      Fun.protect
        ~finally:(fun () ->
          Router.close router;
          Store.close reference)
        (fun () ->
          let trees = trees_of 4242 14 in
          Array.iteri
            (fun gid tree ->
              let rid, rpartners = ok_or_fail (Router.add router tree) in
              Alcotest.(check int) "router gids are dense" gid rid;
              let _, refpartners = Store.add reference tree in
              (* same-shard partners, translated to gids, are a sub-list
                 of the reference partners (cross-shard ones are not on
                 the single-shard ADD path) *)
              List.iter
                (fun (g, d) ->
                  Alcotest.(check bool)
                    (Printf.sprintf "partner (%d, %d) of %d is true" g d gid)
                    true
                    (List.mem (g, d) refpartners))
                rpartners)
            trees;
          Alcotest.(check int) "all bound" (Array.length trees) (Router.n_trees router);
          (* both shards got trees (sizes span several bands) *)
          let shard_of gid =
            match Router.locate router gid with
            | Some (s, _, _) -> s
            | None -> Alcotest.failf "gid %d unbound" gid
          in
          let shards_used =
            List.sort_uniq compare
              (List.init (Array.length trees) shard_of)
          in
          Alcotest.(check (list int)) "both shards populated" [ 0; 1 ] shards_used;
          (* healthy cluster: QUERY and KNN bit-identical to unsharded *)
          let queries = trees_of 4243 5 in
          Array.iter
            (fun q ->
              let m = Router.query router ~tau q in
              let r = Store.query ~tau reference q in
              Alcotest.(check bool) "healthy query not degraded" false m.Router.a_degraded;
              Alcotest.(check (list (pair int int))) "query bit-identical"
                r.Incremental.hits m.Router.a_hits;
              Alcotest.(check int) "no sandwiches" 0 (List.length m.Router.a_unverified);
              let mk = Router.knn router ~k:3 q in
              Alcotest.(check (list (pair int int))) "knn bit-identical"
                (Store.nearest ~k:3 reference q)
                mk.Router.a_hits)
            queries;
          (* stats aggregate across shards *)
          (match Router.stats router with
          | { Protocol.trees = n; primary = true; _ } ->
            Alcotest.(check int) "stats trees = gids" (Array.length trees) n
          | _ -> Alcotest.fail "router stats not primary");
          (* kill shard 1 mid-flight: queries must degrade, not fail *)
          Server.abort servers.(1);
          Server.wait servers.(1);
          let q = queries.(0) in
          let m = Router.query router ~tau q in
          let r = Store.query ~tau reference q in
          (* exact hits that survive come only from shard 0 and are true *)
          List.iter
            (fun (gid, d) ->
              Alcotest.(check bool)
                (Printf.sprintf "surviving hit (%d, %d) is true" gid d)
                true
                (List.mem (gid, d) r.Incremental.hits))
            m.Router.a_hits;
          (* every true hit on the dead shard is sandwiched soundly *)
          List.iter
            (fun (gid, d) ->
              if shard_of gid = 1 then begin
                Alcotest.(check bool)
                  (Printf.sprintf "dead shard answer degraded for hit %d" gid)
                  true m.Router.a_degraded;
                Alcotest.(check bool)
                  (Printf.sprintf "hit (%d, %d) sandwiched" gid d)
                  true
                  (List.exists
                     (fun (g, lo, hi) -> g = gid && lo <= d && d <= hi)
                     m.Router.a_unverified)
              end)
            r.Incremental.hits))

let test_router_front_wire () =
  let tau = 2 in
  with_shard_servers ~tau 2 (fun addrs _servers ->
      let cfg =
        {
          Router.map = Shard.create ~shards:2 ~tau ();
          tau;
          groups = Array.map (fun a -> [ a ]) addrs;
          timeout_s = 2.0;
          attempts = 2;
          ledger = None;
          seed = 777;
          hedge_s = None;
          margin_ms = 0;
        }
      in
      let router = ok_or_fail (Router.create cfg) in
      let fsock = Filename.temp_file "tsj_front" ".sock" in
      Sys.remove fsock;
      let faddr = Protocol.Unix_path fsock in
      let front = ok_or_fail (Router.start_front router faddr) in
      Fun.protect
        ~finally:(fun () ->
          Router.stop_front front;
          Router.close router;
          if Sys.file_exists fsock then Sys.remove fsock)
        (fun () ->
          (* the sharded cluster speaks the single-node grammar: the
             stock client needs no changes *)
          let conn = ok_or_fail (Client.connect faddr) in
          let add s =
            match ok_or_fail (Client.request conn (Protocol.Add { seq = None; tree = t s })) with
            | Protocol.Added { id; _ } -> id
            | r -> Alcotest.failf "bad add reply %s" (Protocol.render_response r)
          in
          Alcotest.(check int) "first gid" 0 (add "{a{b}{c}}");
          Alcotest.(check int) "second gid" 1 (add "{a{b}{d}}");
          Alcotest.(check int) "third gid" 2 (add "{x{y{z{w{v}}}}}");
          (* idempotent replay of a bound gid *)
          (match
             ok_or_fail
               (Client.request conn (Protocol.Add { seq = Some 1; tree = t "{a{b}{d}}" }))
           with
          | Protocol.Added { id = 1; _ } -> ()
          | r -> Alcotest.failf "replay answered %s" (Protocol.render_response r));
          (* a seq gap is refused before touching any shard *)
          (match
             ok_or_fail
               (Client.request conn (Protocol.Add { seq = Some 9; tree = t "{g}" }))
           with
          | Protocol.Err msg ->
            Alcotest.(check bool) "gap named" true
              (String.length msg >= 7 && String.sub msg 0 7 = "seq gap")
          | r -> Alcotest.failf "gap answered %s" (Protocol.render_response r));
          (* QUERY over the wire matches the library answer *)
          (match ok_or_fail (Client.request conn (Protocol.Query { tau = 1; tree = t "{a{b}{c}}" })) with
          | Protocol.Hits { degraded = false; hits; _ } ->
            Alcotest.(check (list (pair int int))) "wire query" [ (0, 0); (1, 1) ] hits
          | r -> Alcotest.failf "bad query reply %s" (Protocol.render_response r));
          (* GET resolves a gid through the ledger to the owning shard *)
          (match ok_or_fail (Client.request conn (Protocol.Get 2)) with
          | Protocol.Tree_reply { seq = 2; tree } ->
            Alcotest.(check string) "GET returns the bound tree" "{x{y{z{w{v}}}}}"
              (Bracket.to_string tree)
          | r -> Alcotest.failf "bad GET reply %s" (Protocol.render_response r));
          (match ok_or_fail (Client.request conn (Protocol.Get 99)) with
          | Protocol.Err _ -> ()
          | r -> Alcotest.failf "unbound GET answered %s" (Protocol.render_response r));
          (* STATS advertises the gid count, so Failover.add's seq
             discovery works against a router front-end too *)
          (match ok_or_fail (Client.request conn Protocol.Stats) with
          | Protocol.Stats_reply { trees = 3; _ } -> ()
          | r -> Alcotest.failf "bad stats %s" (Protocol.render_response r));
          Client.close conn))

(* --- ledger recovery and orphan adoption --- *)

let test_router_ledger_recovery () =
  let tau = 2 in
  with_shard_servers ~tau 2 (fun addrs _servers ->
      let ledger = Filename.temp_file "tsj_ledger" ".journal" in
      let cfg map_seed =
        {
          Router.map = Shard.create ~shards:2 ~tau ();
          tau;
          groups = Array.map (fun a -> [ a ]) addrs;
          timeout_s = 2.0;
          attempts = 2;
          ledger = Some ledger;
          seed = map_seed;
          hedge_s = None;
          margin_ms = 0;
        }
      in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists ledger then Sys.remove ledger)
        (fun () ->
          let trees = trees_of 5151 8 in
          let r1 = ok_or_fail (Router.create (cfg 1)) in
          Array.iter (fun tree -> ignore (ok_or_fail (Router.add r1 tree))) trees;
          let bindings =
            List.init (Array.length trees) (fun g -> Router.locate r1 g)
          in
          Router.close r1;
          (* restart: the ledger replays every binding, bit-identical *)
          let r2 = ok_or_fail (Router.create (cfg 2)) in
          Alcotest.(check int) "gids survive restart" (Array.length trees)
            (Router.n_trees r2);
          List.iteri
            (fun g b ->
              if Router.locate r2 g <> b then Alcotest.failf "binding %d changed" g)
            bindings;
          Alcotest.(check int) "nothing to adopt" 0 (Router.reconcile r2);
          (* a write that reached its shard but missed the ledger (the
             router died in between) is adopted on reconcile *)
          let orphan = t "{orphan{x}{y}}" in
          let s = Shard.shard_of_tree (Router.map r2) orphan in
          let direct = ok_or_fail (Client.connect addrs.(s)) in
          (match ok_or_fail (Client.request direct (Protocol.Add { seq = None; tree = orphan })) with
          | Protocol.Added _ -> ()
          | r -> Alcotest.failf "direct add failed: %s" (Protocol.render_response r));
          Client.close direct;
          Alcotest.(check int) "one orphan adopted" 1 (Router.reconcile r2);
          let gid = Router.n_trees r2 - 1 in
          (match Router.locate r2 gid with
          | Some (s', _, size) ->
            Alcotest.(check int) "adopted on its shard" s s';
            Alcotest.(check int) "adopted size" (Tree.size orphan) size
          | None -> Alcotest.fail "orphan not bound");
          Router.close r2))

(* --- ledger integrity: scrub, heal-at-load, quarantine --- *)

(* flip one bit in the middle of ledger line [line] (0-based) *)
let rot_ledger_line ledger ~line =
  let text = In_channel.with_open_bin ledger In_channel.input_all in
  let rec start idx from =
    if idx = 0 then from
    else
      match String.index_from_opt text from '\n' with
      | Some nl -> start (idx - 1) (nl + 1)
      | None -> Alcotest.fail "ledger shorter than expected"
  in
  let s = start line 0 in
  let len =
    match String.index_from_opt text s '\n' with
    | Some nl -> nl - s
    | None -> String.length text - s
  in
  Faults.flip_bit ledger ~bit:(8 * (s + (len / 2)))

let remove_ledger_files ledger =
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ ledger; ledger ^ ".seal"; ledger ^ ".quarantine"; ledger ^ ".tmp" ]

let test_router_ledger_integrity () =
  let tau = 2 in
  with_shard_servers ~tau 2 (fun addrs _servers ->
      let ledger = Filename.temp_file "tsj_ledger" ".journal" in
      let cfg map_seed =
        {
          Router.map = Shard.create ~shards:2 ~tau ();
          tau;
          groups = Array.map (fun a -> [ a ]) addrs;
          timeout_s = 2.0;
          attempts = 2;
          ledger = Some ledger;
          seed = map_seed;
          hedge_s = None;
          margin_ms = 0;
        }
      in
      Fun.protect
        ~finally:(fun () -> remove_ledger_files ledger)
        (fun () ->
          let trees = trees_of 5252 8 in
          let r1 = ok_or_fail (Router.create (cfg 1)) in
          Array.iter (fun tree -> ignore (ok_or_fail (Router.add r1 tree))) trees;
          (* a clean ledger scrubs clean *)
          let verified, findings = Router.scrub_ledger r1 in
          Alcotest.(check int) "every line re-verified" 8 verified;
          Alcotest.(check int) "clean ledger has no findings" 0
            (List.length findings);
          (* live rot under a running router: detected, rewritten, and the
             next pass is clean *)
          rot_ledger_line ledger ~line:4;
          let _, findings = Router.scrub_ledger r1 in
          Alcotest.(check bool) "ledger rot detected" true (findings <> []);
          let _, findings = Router.scrub_ledger r1 in
          Alcotest.(check int) "clean after rewrite" 0 (List.length findings);
          (match Router.stats r1 with
          | { Protocol.scrubbed; crc_failures; repaired; _ } ->
            Alcotest.(check bool) "scrubbed counted" true (scrubbed >= 16);
            Alcotest.(check bool) "crc failure counted" true (crc_failures > 0);
            Alcotest.(check bool) "rewrite counted as repair" true (repaired > 0));
          (* adds keep committing after a repair *)
          ignore (ok_or_fail (Router.add r1 (t "{post{rot}{x}}")));
          let bindings = List.init 9 (fun g -> Router.locate r1 g) in
          Router.close r1;
          (* restart-heal: rot a line whose shard appears again later, so
             the dense-gid + lseq-skip inference can identify it and
             refetch the binding from the owning shard *)
          let shard_of_line l =
            match List.nth bindings l with
            | Some (s, _, _) -> s
            | None -> Alcotest.failf "gid %d unbound" l
          in
          let healable =
            List.find
              (fun l ->
                List.exists (fun l' -> shard_of_line l' = shard_of_line l)
                  [ l + 1; l + 2; l + 3; l + 4 ])
              [ 0; 1; 2; 3 ]
          in
          rot_ledger_line ledger ~line:healable;
          let r2 = ok_or_fail (Router.create (cfg 2)) in
          Alcotest.(check int) "healed load keeps every gid" 9 (Router.n_trees r2);
          List.iteri
            (fun g b ->
              if Router.locate r2 g <> b then Alcotest.failf "binding %d changed" g)
            bindings;
          Alcotest.(check bool) "rotted line moved aside" true
            (Sys.file_exists (ledger ^ ".quarantine"));
          let _, findings = Router.scrub_ledger r2 in
          Alcotest.(check int) "healed ledger scrubs clean" 0 (List.length findings);
          Router.close r2;
          (* unhealable rot (no shard reachable): the line and the suffix
             behind it are quarantined and the surviving prefix served *)
          rot_ledger_line ledger ~line:5;
          let dead =
            {
              (cfg 3) with
              Router.groups =
                Array.map
                  (fun _ -> [ Protocol.Unix_path "/nonexistent/tsj.sock" ])
                  addrs;
              timeout_s = 0.2;
              attempts = 1;
            }
          in
          let r3 = ok_or_fail (Router.create dead) in
          Alcotest.(check int) "surviving prefix served" 5 (Router.n_trees r3);
          List.iteri
            (fun g b ->
              if g < 5 && Router.locate r3 g <> b then
                Alcotest.failf "surviving binding %d changed" g)
            bindings;
          Router.close r3))

(* --- the sharded chaos storm --- *)

let check_sharded name (r : Faults.sharded_report) =
  Alcotest.(check bool) (name ^ ": no acked ADD lost") true r.Faults.sh_acked_preserved;
  Alcotest.(check bool) (name ^ ": one writer per epoch per shard") true
    r.Faults.sh_single_writer;
  Alcotest.(check bool) (name ^ ": every shard converged") true r.Faults.sh_converged;
  Alcotest.(check bool) (name ^ ": degraded answers sound") true
    r.Faults.sh_degraded_sound;
  Alcotest.(check bool) (name ^ ": healed answers bit-identical") true
    r.Faults.sh_answers_match

let test_sharded_storm () =
  let trees = trees_of 91 24 in
  let queries = trees_of 92 4 in
  List.iter
    (fun seed ->
      let r =
        Faults.run_sharded_storm ~seed ~rounds:32 ~shards:3 ~trees ~queries ~tau:2 ()
      in
      let name = Printf.sprintf "sharded storm (seed=%d)" seed in
      Alcotest.(check int) (name ^ ": one chaos point per round") 32
        r.Faults.sh_chaos_points;
      Alcotest.(check bool) (name ^ ": writes got through") true
        (r.Faults.sh_acked_adds > 32);
      check_sharded name r)
    [ 1101; 1102 ]

let test_sharded_storm_migrations () =
  (* a seed chosen to hit the migration and router-crash chaos kinds *)
  let trees = trees_of 93 24 in
  let queries = trees_of 94 4 in
  let r =
    Faults.run_sharded_storm ~seed:7 ~rounds:48 ~shards:3 ~trees ~queries ~tau:2 ()
  in
  Alcotest.(check bool) "migrations completed mid-storm" true (r.Faults.sh_migrations > 0);
  Alcotest.(check bool) "failovers exercised" true (r.Faults.sh_failovers > 0);
  check_sharded "migration storm" r

let prop_sharded_storm =
  Gen.qtest ~count:6 "sharded storm invariants under random seeds"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Prng.create (7300 + seed) in
      let trees = Array.init 12 (fun _ -> Gen.random_tree rng (3 + Prng.int rng 8)) in
      let queries = Array.init 2 (fun _ -> Gen.random_tree rng (3 + Prng.int rng 8)) in
      let r =
        Faults.run_sharded_storm ~seed ~rounds:6 ~shards:2 ~trees ~queries ~tau:2 ()
      in
      r.Faults.sh_acked_preserved && r.Faults.sh_single_writer && r.Faults.sh_converged
      && r.Faults.sh_degraded_sound && r.Faults.sh_answers_match)

let test_hedged_reads () =
  let tau = 2 in
  with_shard_servers ~tau 1 (fun addrs _servers ->
      let cfg =
        {
          Router.map = Shard.create ~shards:1 ~tau ();
          tau;
          groups = [| [ addrs.(0) ] |];
          timeout_s = 5.0;
          attempts = 2;
          ledger = None;
          seed = 4711;
          hedge_s = Some 0.05;
          margin_ms = 10;
        }
      in
      let router = ok_or_fail (Router.create cfg) in
      (* a decoy replica that accepts connections and then never
         replies: with it listed first, every first leg stalls until
         the socket timeout *)
      let decoy_path = Filename.temp_file "tsj_decoy" ".sock" in
      Sys.remove decoy_path;
      let decoy = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind decoy (Unix.ADDR_UNIX decoy_path);
      Unix.listen decoy 16;
      let stop = Atomic.make false in
      let sink =
        Thread.create
          (fun () ->
            let held = ref [] in
            while not (Atomic.get stop) do
              match Unix.select [ decoy ] [] [] 0.05 with
              | [ _ ], _, _ -> (
                try held := fst (Unix.accept decoy) :: !held
                with Unix.Unix_error _ -> ())
              | _ -> ()
            done;
            List.iter
              (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
              !held)
          ()
      in
      Fun.protect
        ~finally:(fun () ->
          Router.close router;
          Atomic.set stop true;
          Thread.join sink;
          (try Unix.close decoy with Unix.Unix_error _ -> ());
          if Sys.file_exists decoy_path then Sys.remove decoy_path)
        (fun () ->
          let trees = trees_of 4321 10 in
          Array.iter (fun tree -> ignore (ok_or_fail (Router.add router tree))) trees;
          let queries = trees_of 4322 3 in
          let reference = Array.map (fun q -> Router.query router ~tau q) queries in
          Array.iter
            (fun r ->
              Alcotest.(check bool) "reference not degraded" false
                r.Router.a_degraded)
            reference;
          (* swap the hanging decoy in as the preferred replica: only
             the hedge can answer within the deadline now *)
          Router.set_group_addrs router 0
            [ Protocol.Unix_path decoy_path; addrs.(0) ];
          Array.iteri
            (fun i q ->
              let t0 = Unix.gettimeofday () in
              let m = Router.query router ~deadline_ms:4_000 ~tau q in
              let wall = Unix.gettimeofday () -. t0 in
              Alcotest.(check bool) "hedge answered well before the timeout" true
                (wall < 2.0);
              Alcotest.(check bool) "hedged answer not degraded" false
                m.Router.a_degraded;
              (* the hedged answer is bit-identical to the unhedged one *)
              Alcotest.(check (list (pair int int))) "hedged hits identical"
                reference.(i).Router.a_hits m.Router.a_hits)
            queries;
          let fired, wins = Router.hedges router in
          Alcotest.(check bool) "hedges fired" true (fired >= Array.length queries);
          Alcotest.(check bool) "hedges won" true (wins >= Array.length queries)))

let suite =
  [
    Alcotest.test_case "band-key placement and windows" `Quick test_band_routing;
    prop_merge_sandwich;
    Alcotest.test_case "router end-to-end vs unsharded reference" `Quick
      test_router_end_to_end;
    Alcotest.test_case "router front-end speaks the node grammar" `Quick
      test_router_front_wire;
    Alcotest.test_case "ledger recovery and orphan adoption" `Quick
      test_router_ledger_recovery;
    Alcotest.test_case "ledger integrity: scrub, heal, quarantine" `Quick
      test_router_ledger_integrity;
    Alcotest.test_case "hedged reads race a hung replica" `Quick
      test_hedged_reads;
    Alcotest.test_case "sharded storm" `Slow test_sharded_storm;
    Alcotest.test_case "sharded storm with migrations" `Slow
      test_sharded_storm_migrations;
    prop_sharded_storm;
  ]
