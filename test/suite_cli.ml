(* End-to-end tests of the tsj command-line interface: each case runs the
   built binary as a subprocess and checks its output and exit status. *)

let tsj = "../bin/tsj.exe"

let run args =
  let cmd = Filename.quote_command tsj args in
  let ic = Unix.open_process_in (cmd ^ " 2>&1") in
  let out = In_channel.input_all ic in
  let status = Unix.close_process_in ic in
  let code = match status with Unix.WEXITED c -> c | _ -> -1 in
  (code, out)

let contains haystack needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length haystack && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

let check_exit name expected (code, out) =
  if code <> expected then
    Alcotest.failf "%s: exit %d (expected %d); output:\n%s" name code expected out

let test_ted () =
  let code, out = run [ "ted"; "{a{b}{c}}"; "{a{c}{b}}" ] in
  check_exit "ted" 0 (code, out);
  Alcotest.(check string) "distance printed" "2" (String.trim out);
  let code, out = run [ "ted"; "{a}"; "{a}"; "--algorithm"; "naive" ] in
  check_exit "ted naive" 0 (code, out);
  Alcotest.(check string) "zero" "0" (String.trim out);
  let code, _ = run [ "ted"; "{bad"; "{a}" ] in
  Alcotest.(check bool) "bad tree rejected" true (code <> 0)

let with_dataset f =
  let path = Filename.temp_file "tsjcli" ".trees" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc "{a{b}{c}}\n{a{b}{c}}\n{a{b}{x}}\n{q{w{e{r{t}}}}}\n");
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_join () =
  with_dataset (fun path ->
      let code, out = run [ "join"; path; "--tau"; "1"; "-m"; "PRT"; "--pairs" ] in
      check_exit "join" 0 (code, out);
      Alcotest.(check bool) "stats line" true (contains out "results=3");
      Alcotest.(check bool) "duplicate pair listed" true (contains out "0\t1\t0");
      (* all methods agree *)
      List.iter
        (fun m ->
          let code, out' = run [ "join"; path; "--tau"; "1"; "-m"; m ] in
          check_exit ("join " ^ m) 0 (code, out');
          Alcotest.(check bool) (m ^ " same results") true (contains out' "results=3"))
        [ "NL"; "STR"; "SET" ];
      let code, out = run [ "join"; path; "--tau"; "1"; "--metric"; "constrained" ] in
      check_exit "join constrained" 0 (code, out);
      Alcotest.(check bool) "constrained runs" true (contains out "results="))

let test_search () =
  with_dataset (fun path ->
      let code, out = run [ "search"; path; "{a{b}{c}}"; "--tau"; "1" ] in
      check_exit "search" 0 (code, out);
      Alcotest.(check bool) "finds duplicates" true
        (contains out "0\t0" && contains out "1\t0" && contains out "2\t1");
      let code, out = run [ "search"; path; "{a{b}{c}}"; "--tau"; "1"; "--top"; "1" ] in
      check_exit "search top" 0 (code, out);
      Alcotest.(check int) "exactly one line" 1
        (List.length (List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' out))))

let test_gen_and_partition () =
  let path = Filename.temp_file "tsjcli" ".gen" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      let code, out = run [ "gen"; path; "--count"; "25"; "--profile"; "sentiment" ] in
      check_exit "gen" 0 (code, out);
      Alcotest.(check bool) "reports stats" true (contains out "25 trees");
      let code, out = run [ "join"; path; "--tau"; "1" ] in
      check_exit "join generated" 0 (code, out);
      Alcotest.(check bool) "ran" true (contains out "trees=25"));
  let code, out = run [ "partition"; "{a{b{c{d}{e}}}{f}{g}}"; "--tau"; "1" ] in
  check_exit "partition" 0 (code, out);
  Alcotest.(check bool) "gamma shown" true (contains out "gamma");
  Alcotest.(check bool) "subgraphs listed" true (contains out "subgraph k=1");
  let code, out = run [ "partition"; "{a{b{c{d}{e}}}{f}{g}}"; "--tau"; "1"; "--dot" ] in
  check_exit "partition dot" 0 (code, out);
  Alcotest.(check bool) "dot output" true (contains out "digraph")

let test_sexp_format () =
  let path = Filename.temp_file "tsjcli" ".mrg" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc "( (S (NP x) (VP y)) )\n( (S (NP x) (VP y)) )\n");
      let code, out = run [ "join"; path; "--format"; "sexp"; "--tau"; "0" ] in
      check_exit "sexp join" 0 (code, out);
      Alcotest.(check bool) "duplicate found" true (contains out "results=1"))

let test_skip_malformed () =
  let path = Filename.temp_file "tsjcli" ".bad" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc "{a{b}{c}}\n}{x}\n{a{b}{x}}\n{a{b}{c}}\n");
      (* strict parse refuses the file and points at the bad record *)
      let code, out = run [ "join"; path; "--tau"; "1"; "-m"; "PRT" ] in
      check_exit "strict malformed" 2 (code, out);
      Alcotest.(check bool) "location reported" true (contains out "line 2");
      (* lenient mode quarantines it and joins the rest *)
      let code, out =
        run [ "join"; path; "--tau"; "1"; "-m"; "PRT"; "--skip-malformed"; "--pairs" ]
      in
      check_exit "skip-malformed" 0 (code, out);
      Alcotest.(check bool) "skip count reported" true (contains out "skipped 1 malformed");
      Alcotest.(check bool) "quarantine counted" true (contains out "quarantined: 1");
      Alcotest.(check bool) "remaining trees joined" true (contains out "results=3"))

let test_checkpoint_resume () =
  with_dataset (fun path ->
      let journal = Filename.temp_file "tsjcli" ".ckpt" in
      Sys.remove journal;
      Fun.protect ~finally:(fun () -> if Sys.file_exists journal then Sys.remove journal)
        (fun () ->
          (* --resume without --checkpoint is a usage error *)
          let code, _ = run [ "join"; path; "--tau"; "1"; "-m"; "PRT"; "--resume" ] in
          Alcotest.(check int) "resume needs checkpoint" 2 code;
          (* resilience flags require a PartSJ method *)
          let code, _ =
            run [ "join"; path; "--tau"; "1"; "-m"; "NL"; "--checkpoint"; journal ]
          in
          Alcotest.(check int) "NL refuses checkpoint" 2 code;
          let code, out =
            run [ "join"; path; "--tau"; "1"; "-m"; "PRT"; "--checkpoint"; journal ]
          in
          check_exit "checkpointed join" 0 (code, out);
          Alcotest.(check bool) "journal written" true (Sys.file_exists journal);
          Alcotest.(check bool) "checkpointed results" true (contains out "results=3");
          let code, out' =
            run
              [ "join"; path; "--tau"; "1"; "-m"; "PRT"; "--checkpoint"; journal;
                "--resume" ]
          in
          check_exit "resumed join" 0 (code, out');
          Alcotest.(check bool) "resumed results identical" true
            (contains out' "results=3")))

(* fsck: clean directory passes, bit rot is reported with exit 2 and
   without mutating anything, --repair quarantines and the repaired
   directory then verifies clean and serves the surviving prefix. *)
let test_fsck () =
  let dir = Filename.temp_file "tsjcli" ".store" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
        (try Unix.rmdir path with Unix.Unix_error _ -> ())
      end
      else try Sys.remove path with Sys_error _ -> ()
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () ->
      let module Store = Tsj_server.Store in
      let store =
        match Store.open_ ~dir ~tau:1 () with
        | Ok s -> s
        | Error msg -> Alcotest.failf "store open: %s" msg
      in
      List.iter
        (fun b ->
          match Tsj_tree.Bracket.of_string b with
          | Ok t -> ignore (Store.add store t)
          | Error msg -> Alcotest.failf "bad tree %s: %s" b msg)
        [ "{a{b}{c}}"; "{a{b}{x}}"; "{q{w}}"; "{q{w{e}}}"; "{z}"; "{z{z}}" ];
      let root = Store.merkle_root store in
      (* abandoned without close: every add is already durable *)
      let code, out = run [ "fsck"; dir ] in
      check_exit "fsck clean" 0 (code, out);
      Alcotest.(check bool) "clean verdict" true (contains out "clean: 6 trees");
      Alcotest.(check bool) "merkle root printed" true (contains out root);
      (* rot a bit mid-journal: line 0 is the epoch header, so line 3 is
         record seq 2 of 6 — mid-file, not a torn tail *)
      let journal = Filename.concat dir "journal" in
      let text = In_channel.with_open_bin journal In_channel.input_all in
      let line_start n =
        let rec go i left =
          if left = 0 then i else go (String.index_from text i '\n' + 1) (left - 1)
        in
        go 0 n
      in
      Tsj_harness.Faults.flip_bit journal ~bit:(8 * (line_start 3 + 3));
      let rotted = In_channel.with_open_bin journal In_channel.input_all in
      let code, out = run [ "fsck"; dir ] in
      check_exit "fsck corrupt" 2 (code, out);
      Alcotest.(check bool) "corruption reported" true (contains out "CORRUPT");
      Alcotest.(check bool) "repair suggested" true (contains out "--repair");
      Alcotest.(check bool) "verify-only did not mutate" true
        (In_channel.with_open_bin journal In_channel.input_all = rotted);
      let code, out = run [ "fsck"; dir; "--repair" ] in
      check_exit "fsck repair" 0 (code, out);
      Alcotest.(check bool) "prefix survives" true (contains out "2 trees survive");
      Alcotest.(check bool) "quarantine counted" true (contains out "quarantined=4");
      Alcotest.(check bool) "suffix moved aside" true
        (Sys.file_exists (Filename.concat dir "journal.quarantine"));
      (* the repaired directory verifies clean and replays *)
      let code, out = run [ "fsck"; dir ] in
      check_exit "fsck after repair" 0 (code, out);
      Alcotest.(check bool) "clean after repair" true (contains out "clean: 2 trees"))

let test_errors () =
  let code, _ = run [ "join"; "/nonexistent-file"; "--tau"; "1" ] in
  Alcotest.(check bool) "missing file" true (code <> 0);
  let code, _ = run [ "nonsense-subcommand" ] in
  Alcotest.(check bool) "unknown subcommand" true (code <> 0)

let suite =
  [
    Alcotest.test_case "cli ted" `Slow test_ted;
    Alcotest.test_case "cli join" `Slow test_join;
    Alcotest.test_case "cli search" `Slow test_search;
    Alcotest.test_case "cli gen/partition" `Slow test_gen_and_partition;
    Alcotest.test_case "cli sexp format" `Slow test_sexp_format;
    Alcotest.test_case "cli skip-malformed" `Slow test_skip_malformed;
    Alcotest.test_case "cli checkpoint/resume" `Slow test_checkpoint_resume;
    Alcotest.test_case "cli fsck" `Slow test_fsck;
    Alcotest.test_case "cli errors" `Slow test_errors;
  ]
