(* Long-running randomized hunts for rare soundness violations.

   The quick property tests in ../suite_*.ml run a few hundred cases per
   suite; the failure modes this tool targets occur once per ~10^4..10^6
   random draws (this is how DESIGN.md findings 2 and 3 were discovered).
   Run it when touching the partitioning, matching or index code:

     dune exec test/fuzz/fuzz_main.exe -- lemma2 2000000 42
     dune exec test/fuzz/fuzz_main.exe -- windows 2000000 42
     dune exec test/fuzz/fuzz_main.exe -- join 20000 42
     dune exec test/fuzz/fuzz_main.exe -- ted 200000 42
     dune exec test/fuzz/fuzz_main.exe -- xml 200000 42
     dune exec test/fuzz/fuzz_main.exe -- server 20000 42
     dune exec test/fuzz/fuzz_main.exe -- dag 20000 42
     dune exec test/fuzz/fuzz_main.exe -- router 20000 42
     dune exec test/fuzz/fuzz_main.exe -- scrub 5000 42
     dune exec test/fuzz/fuzz_main.exe -- overload 20000 42

   Modes:
   - lemma2: after <= tau random edits, some subgraph of the balanced
     (2 tau + 1)-partitioning must occur in the edited tree (expected: 0
     failures — finding 3's fix);
   - windows: same, but through the two-layer index with the sound
     Two_sided windows (expected: 0) and with the paper's rank windows
     (failures are counted and expected — finding 2);
   - join: PartSJ must equal the nested-loop ground truth on random
     clustered datasets (expected: 0);
   - ted: Zhang-Shasha left/right/hybrid must agree, match the naive
     reference on small inputs, and every bound must lower-bound it
     (expected: 0);
   - xml: the XML parser on truncated/garbled/token-soup inputs must
     return [Ok]/[Error] without ever raising, and the lenient fragment
     parser must terminate (expected: 0);
   - server: a live tsj server fed truncated, byte-mutated, token-soup
     and split-across-writes request lines over loopback connections
     must answer every non-blank line with exactly one well-formed
     reply (ERR/BUSY included), never kill an innocent connection, and
     end the run healthy with zero inflight requests; interleaved
     binary-protocol episodes (HELLO negotiation, pipelined frames with
     gapped ids, oversized/truncated/short-length frames, unknown
     opcodes, drops mid-frame) must never crash the server or
     misattribute a response id (expected: 0);
   - router: the scatter-gather merge under byzantine per-shard answers
     (garbage ids, out-of-range distances, inverted sandwiches) and a
     live router whose shards reply with silence, garbage, truncated
     lines, duplicate acks and cross-epoch FENCED: every answer must
     stay well-formed and sound-shaped, and no call may raise or hang
     (expected: 0);
   - scrub: random bit flips, truncations and mid-journal rot against a
     journaled store — the live scrubber, the self-healing reopen and
     the quarantine reopen must detect every corruption, converge to a
     clean state and never answer wrong; plus incremental-vs-rebuilt
     Merkle digests on random op sequences (expected: 0);
   - overload: adversarial deadline tokens and frames (zero, huge,
     overflowing, negative, non-numeric budgets; random negotiated
     protocol versions) against a token-bucket-limited server — every
     request answered exactly once, malformed tokens answered ERR, a
     zero budget never answered with results, BUSY retry-after hints
     within bounds, server healthy at exit (expected: 0). *)

module Tree = Tsj_tree.Tree
module BT = Tsj_tree.Binary_tree
module Prng = Tsj_util.Prng
module Partition = Tsj_core.Partition
module Subgraph = Tsj_core.Subgraph
module Index = Tsj_core.Two_layer_index

let labels = Array.init 8 (fun i -> Tsj_tree.Label.intern (Printf.sprintf "f%d" i))

(* Uniform-ish random tree: repeatedly attach a leaf under a random node. *)
let random_tree rng size =
  let rec attach (t : Tree.t) slot =
    if slot = 0 then begin
      let pos = Prng.int_in rng 0 (List.length t.Tree.children) in
      let rec insert i = function
        | rest when i = 0 -> Tree.leaf (Prng.choice rng labels) :: rest
        | [] -> [ Tree.leaf (Prng.choice rng labels) ]
        | c :: rest -> c :: insert (i - 1) rest
      in
      (Tree.node t.Tree.label (insert pos t.Tree.children), -1)
    end
    else begin
      let rec through acc slot = function
        | [] -> (List.rev acc, slot)
        | c :: rest ->
          if slot < 0 then through (c :: acc) slot rest
          else begin
            let c', slot' = attach c (slot - 1) in
            through (c' :: acc) slot' rest
          end
      in
      let children, slot' = through [] (slot - 1) t.Tree.children in
      (Tree.node t.Tree.label children, slot')
    end
  in
  let rec grow t n =
    if n = 0 then t
    else begin
      let target = Prng.int rng (Tree.size t) in
      let t', _ = attach t target in
      grow t' (n - 1)
    end
  in
  grow (Tree.leaf (Prng.choice rng labels)) (size - 1)

let edited_pair rng =
  let size = 2 + Prng.int rng 35 in
  let x = random_tree rng size in
  let k = Prng.int_in rng 1 3 in
  let _, x' = Tsj_tree.Edit_op.random_script rng ~labels k x in
  (x, x', k)

let report name i detail =
  Printf.printf "FAIL %s at iteration %d: %s\n%!" name i detail

let fuzz_lemma2 iterations rng =
  let failures = ref 0 in
  for i = 1 to iterations do
    let x, x', tau = edited_pair rng in
    let delta = (2 * tau) + 1 in
    let b = BT.of_tree x in
    if b.BT.size >= delta then begin
      let subs = Subgraph.of_partition ~tree_id:0 (Partition.partition b ~delta) in
      let b' = BT.of_tree x' in
      if not (Array.exists (fun s -> Subgraph.occurs_in s b') subs) then begin
        incr failures;
        if !failures <= 5 then
          report "lemma2" i
            (Printf.sprintf "tau=%d base=%s edited=%s" tau
               (Tsj_tree.Bracket.to_string x)
               (Tsj_tree.Bracket.to_string x'))
      end
    end
  done;
  !failures

let probe_finds mode tau subs b' =
  let idx = Index.create ~mode ~tau () in
  Array.iter (Index.insert idx) subs;
  let found = ref false in
  for v = 0 to b'.BT.size - 1 do
    Index.probe idx b' v (fun s -> if (not !found) && Subgraph.matches s b' v then found := true)
  done;
  !found

let fuzz_windows iterations rng =
  let sound_failures = ref 0 in
  let paper_misses = ref 0 in
  for i = 1 to iterations do
    let x, x', tau = edited_pair rng in
    let x, x' = if Tree.size x <= Tree.size x' then (x, x') else (x', x) in
    let delta = (2 * tau) + 1 in
    let b = BT.of_tree x in
    if b.BT.size >= delta then begin
      let subs = Subgraph.of_partition ~tree_id:0 (Partition.partition b ~delta) in
      let b' = BT.of_tree x' in
      if not (probe_finds Index.Two_sided tau subs b') then begin
        incr sound_failures;
        if !sound_failures <= 5 then
          report "windows(two-sided)" i
            (Printf.sprintf "tau=%d base=%s edited=%s" tau
               (Tsj_tree.Bracket.to_string x)
               (Tsj_tree.Bracket.to_string x'))
      end;
      if not (probe_finds Index.Paper_rank tau subs b') then incr paper_misses
    end
  done;
  Printf.printf "paper-rank windows missed %d (expected: nonzero, see DESIGN.md finding 2)\n"
    !paper_misses;
  !sound_failures

let fuzz_join iterations rng =
  let failures = ref 0 in
  for i = 1 to iterations do
    let n_base = 3 + Prng.int rng 6 in
    let trees = ref [] in
    for _ = 1 to n_base do
      let base = random_tree rng (1 + Prng.int rng 12) in
      trees := base :: !trees;
      for _ = 1 to 2 do
        let k = Prng.int_in rng 0 3 in
        let _, copy = Tsj_tree.Edit_op.random_script rng ~labels k base in
        trees := copy :: !trees
      done
    done;
    let trees = Array.of_list !trees in
    let tau = Prng.int rng 4 in
    let truth = Tsj_join.Nested_loop.join ~trees ~tau () in
    let prt = Tsj_core.Partsj.join ~trees ~tau () in
    if not (Tsj_join.Types.equal_results truth prt) then begin
      incr failures;
      if !failures <= 5 then
        report "join" i
          (Printf.sprintf "tau=%d trees=%s" tau
             (String.concat " "
                (Array.to_list (Array.map Tsj_tree.Bracket.to_string trees))))
    end
  done;
  !failures

let fuzz_ted iterations rng =
  let failures = ref 0 in
  for i = 1 to iterations do
    let x = random_tree rng (1 + Prng.int rng 12) in
    let y = random_tree rng (1 + Prng.int rng 12) in
    let px = Tsj_ted.Ted.preprocess x and py = Tsj_ted.Ted.preprocess y in
    let l = Tsj_ted.Ted.distance_prep ~algorithm:Tsj_ted.Ted.Zs_left px py in
    let r = Tsj_ted.Ted.distance_prep ~algorithm:Tsj_ted.Ted.Zs_right px py in
    let bad = ref [] in
    if l <> r then bad := "left<>right" :: !bad;
    if Tree.size x <= 9 && Tree.size y <= 9 && l <> Tsj_ted.Naive.distance x y then
      bad := "zs<>naive" :: !bad;
    if Tsj_ted.Bounds.best x y > l then bad := "bound>ted" :: !bad;
    if Tsj_ted.Constrained.distance x y < l then bad := "constrained<ted" :: !bad;
    if !bad <> [] then begin
      incr failures;
      if !failures <= 5 then
        report "ted" i
          (Printf.sprintf "%s: %s vs %s" (String.concat "," !bad)
             (Tsj_tree.Bracket.to_string x) (Tsj_tree.Bracket.to_string y))
    end
  done;
  !failures

(* XML parser robustness: truncated, garbled and token-soup inputs must
   only ever produce [Ok _] or [Error _] — never an escaping exception —
   and the lenient fragment parser must additionally terminate and never
   raise on the same inputs. *)
let fuzz_xml iterations rng =
  let failures = ref 0 in
  let tokens =
    [| "<"; ">"; "</"; "/>"; "<!--"; "-->"; "<?"; "?>"; "<![CDATA["; "]]>"; "&"; ";";
       "&amp;"; "&#x41;"; "&#junk;"; "="; "\""; "'"; "a"; "tag"; "xml:ns"; " "; "\n";
       "\t"; "text"; "<!DOCTYPE"; "\x00"; "\xFF" |]
  in
  let random_input () =
    match Prng.int rng 3 with
    | 0 ->
      (* valid document, truncated at a random byte *)
      let t = random_tree rng (1 + Prng.int rng 10) in
      let s = Tsj_xml.Xml.to_string (Tsj_xml.Xml.of_tree t) in
      String.sub s 0 (Prng.int rng (String.length s + 1))
    | 1 ->
      (* valid document with random byte mutations *)
      let t = random_tree rng (1 + Prng.int rng 10) in
      let s = Bytes.of_string (Tsj_xml.Xml.to_string (Tsj_xml.Xml.of_tree t)) in
      for _ = 0 to Prng.int rng 4 do
        if Bytes.length s > 0 then
          Bytes.set s (Prng.int rng (Bytes.length s)) (Char.chr (Prng.int rng 256))
      done;
      Bytes.to_string s
    | _ ->
      (* markup token soup *)
      String.concat "" (List.init (Prng.int rng 30) (fun _ -> Prng.choice rng tokens))
  in
  for i = 1 to iterations do
    let input = random_input () in
    let check what f =
      match f () with
      | _ -> ()
      | exception exn ->
        incr failures;
        if !failures <= 5 then
          report "xml" i
            (Printf.sprintf "%s raised %s on %S" what (Printexc.to_string exn) input)
    in
    check "parse" (fun () -> ignore (Tsj_xml.Xml_parser.parse input));
    check "parse_fragments" (fun () -> ignore (Tsj_xml.Xml_parser.parse_fragments input));
    check "parse_fragments_lenient" (fun () ->
        ignore (Tsj_xml.Xml_parser.parse_fragments_lenient input))
  done;
  !failures

(* Service robustness: a live server must survive arbitrary bytes on the
   wire.  Every non-blank request line — valid, truncated, mutated or
   soup — must be answered by exactly one reply that parses under the
   wire protocol; blank lines get no reply; abrupt disconnects must only
   ever cost the disconnecting client its own connection. *)
let fuzz_server iterations rng =
  let module Protocol = Tsj_server.Protocol in
  let module Server = Tsj_server.Server in
  let failures = ref 0 in
  let sock = Filename.temp_file "tsj_fuzz" ".sock" in
  Sys.remove sock;
  let addr = Protocol.Unix_path sock in
  let config =
    { (Server.default_config addr ~tau:2) with
      Server.deadline_s = Some 0.01; max_line_bytes = 4096 }
  in
  let server =
    match Server.create config with
    | Ok s -> s
    | Error msg ->
      Printf.eprintf "server: cannot start: %s\n" msg;
      exit 2
  in
  Server.start server;
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX sock);
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
    (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
  in
  let close_conn (fd, _, _) = try Unix.close fd with Unix.Unix_error _ -> () in
  let conns = Array.init 4 (fun _ -> connect ()) in
  let verbs =
    [| "QUERY"; "KNN"; "ADD"; "STATS"; "HEALTH"; "query"; "Knn"; "SYNC";
       "ACKED"; "RECORD"; "PROMOTE" |]
  in
  let soup_tokens =
    [| "QUERY"; "ADD"; "{"; "}"; "{a}"; "{a{b}}"; "}{"; "-1"; "0"; "2"; "99999999999";
       "x"; " "; "\t"; "\255"; "\000"; "{a{b}{c"; "DRAIN?"; "=";
       "SYNC"; "ACKED"; "RECORD"; "PROMOTE"; "1" |]
  in
  let random_line () =
    match Prng.int rng 12 with
    | 0 | 1 | 2 ->
      (* well-formed request over a small random tree *)
      let tree = random_tree rng (1 + Prng.int rng 10) in
      let s = Tsj_tree.Bracket.to_string tree in
      (match Prng.int rng 6 with
      | 0 -> "ADD " ^ s
      | 1 | 2 -> Printf.sprintf "QUERY %d %s" (Prng.int rng 3) s
      | 3 -> Printf.sprintf "KNN %d %s" (Prng.int rng 4) s
      | 4 -> "STATS"
      | _ -> "HEALTH")
    | 3 | 4 ->
      (* well-formed request, truncated at a random byte *)
      let tree = random_tree rng (1 + Prng.int rng 10) in
      let line = Printf.sprintf "QUERY 2 %s" (Tsj_tree.Bracket.to_string tree) in
      String.sub line 0 (Prng.int rng (String.length line + 1))
    | 5 | 6 ->
      (* well-formed request with byte mutations *)
      let tree = random_tree rng (1 + Prng.int rng 10) in
      let verb = Prng.choice rng verbs in
      let b =
        Bytes.of_string
          (Printf.sprintf "%s %d %s" verb (Prng.int rng 3)
             (Tsj_tree.Bracket.to_string tree))
      in
      for _ = 0 to Prng.int rng 4 do
        if Bytes.length b > 0 then
          Bytes.set b (Prng.int rng (Bytes.length b)) (Char.chr (Prng.int rng 256))
      done;
      Bytes.to_string b
    | 7 ->
      (* oversized line: must be answered with ERR, not a hang *)
      "QUERY 2 " ^ String.make (4096 + Prng.int rng 2048) '{'
    | 8 ->
      (* replication verbs: PROMOTE flips the write mandate, ACKED
         outside a stream gets ERR, RECORD is not a request verb, a
         valid SYNC hijacks the connection (the caller recycles it) *)
      (match Prng.int rng 6 with
      | 0 -> "PROMOTE"
      | 1 -> Printf.sprintf "ACKED %d" (Prng.int rng 6 - 1)
      | 2 -> Printf.sprintf "SYNC %d %d" (Prng.int rng 3) (Prng.int rng 6)
      | 3 -> "SYNC 0"
      | 4 -> Printf.sprintf "RECORD add %d {a}" (Prng.int rng 3)
      | _ -> "ACKED x")
    | _ ->
      (* token soup *)
      String.concat " "
        (List.init (Prng.int rng 12) (fun _ -> Prng.choice rng soup_tokens))
  in
  (* the server frames on '\n' and ignores lines that trim to "" *)
  let sanitize line =
    String.map (fun c -> if c = '\n' then '.' else c) line
  in
  let expects_reply line =
    let line =
      if String.length line > 0 && line.[String.length line - 1] = '\r' then
        String.sub line 0 (String.length line - 1)
      else line
    in
    String.trim line <> ""
  in
  (* Dedicated stream-mode conversation on a throwaway connection: join
     as a replica with a random (epoch, from_seq), check that the header
     and every pushed record parse under the response grammar, answer a
     few ACKs (valid, stale or garbage) and hang up mid-stream.  The
     server must shrug all of it off. *)
  let fuzz_sync_stream i =
    let (fd, ic, oc) as conn = connect () in
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.25
     with Unix.Unix_error _ | Invalid_argument _ -> ());
    (try
       Printf.fprintf oc "SYNC %d %d\n" (Prng.int rng 3) (Prng.int rng 8);
       flush oc;
       let header = input_line ic in
       match Protocol.parse_response header with
       | Error msg ->
         failwith (Printf.sprintf "unparseable sync header %S (%s)" header msg)
       | Ok (Protocol.Sync_stream _) ->
         (try
            for _ = 1 to Prng.int rng 6 do
              let line = input_line ic in
              (match Protocol.parse_response line with
              | Ok _ -> ()
              | Error msg ->
                failwith
                  (Printf.sprintf "unparseable stream line %S (%s)" line msg));
              let ack =
                match Prng.int rng 4 with
                | 0 -> "ACKED x"
                | 1 -> Printf.sprintf "ACKED %d" (Prng.int rng 3)
                | _ -> Printf.sprintf "ACKED %d" (Prng.int rng 1000)
              in
              output_string oc ack;
              output_char oc '\n';
              flush oc
            done
          with End_of_file | Sys_error _ | Sys_blocked_io | Unix.Unix_error _ ->
            (* link dropped (garbage ack) or nothing left to push *) ())
       | Ok _ -> (* FENCED or ERR: the stream never started *) ()
     with
    | Failure detail ->
      incr failures;
      if !failures <= 5 then report "server" i detail
    | End_of_file | Sys_error _ | Sys_blocked_io | Unix.Unix_error _ -> ());
    close_conn conn
  in
  (* Binary-protocol conversation on a throwaway connection: negotiate
     [HELLO BIN], pipeline batches of framed requests with gapped ids
     and check that every reply frame decodes and answers a pending id
     with a response kind the request could produce (a STATS payload on
     a QUERY id would be a misattributed reply), then optionally poison
     the stream — an oversized frame, an unknown opcode, a length below
     the header minimum, a frame truncated by hangup, garbage bytes —
     and check the documented recovery: rejected by id with the stream
     still usable, or ERR to id 0 followed by a clean close. *)
  let fuzz_binary_episode i =
    let (fd, ic, oc) as conn = connect () in
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0
     with Unix.Unix_error _ | Invalid_argument _ -> ());
    let read_frame () =
      let flen = Protocol.Binary.get_u32 (really_input_string ic 4) 0 in
      if flen < 5 then failwith (Printf.sprintf "server sent a frame with len %d" flen)
      else begin
        let rest = really_input_string ic flen in
        (Protocol.Binary.get_u32 rest 0, Char.code rest.[4], String.sub rest 5 (flen - 5))
      end
    in
    let next_id = ref (Prng.int rng 1_000_000) in
    let fresh_id () =
      let id = !next_id in
      next_id := id + 1 + Prng.int rng 5;
      id
    in
    (* One pipelined batch: write every frame, then collect every reply. *)
    let batch () =
      let n = 1 + Prng.int rng 6 in
      let pending = Hashtbl.create 8 in
      let buf = Buffer.create 256 in
      for _ = 1 to n do
        let id = fresh_id () in
        let req, kind =
          match Prng.int rng 10 with
          | 0 | 1 | 2 ->
            ( Protocol.Query
                { tau = Prng.int rng 3; tree = random_tree rng (1 + Prng.int rng 8) },
              `Read )
          | 3 | 4 ->
            ( Protocol.Knn
                { k = 1 + Prng.int rng 3; tree = random_tree rng (1 + Prng.int rng 8) },
              `Read )
          | 5 | 6 ->
            (Protocol.Add { seq = None; tree = random_tree rng (1 + Prng.int rng 8) }, `Add)
          | 7 -> (Protocol.Stats, `Stats)
          | 8 -> (Protocol.Health, `Health)
          | _ -> (Protocol.Promote, `Promote)
        in
        let max_lag =
          match kind with
          | `Read when Prng.int rng 2 = 0 -> Some (Prng.int rng 5)
          | _ -> None
        in
        Protocol.Binary.encode_request buf ~id ?max_lag req;
        Hashtbl.replace pending id kind
      done;
      output_string oc (Buffer.contents buf);
      flush oc;
      for _ = 1 to n do
        let id, op, body = read_frame () in
        match Hashtbl.find_opt pending id with
        | None ->
          failwith (Printf.sprintf "reply to unknown or already-answered id %d" id)
        | Some kind -> (
          Hashtbl.remove pending id;
          match Protocol.Binary.decode_response ~op ~body with
          | Error msg -> failwith (Printf.sprintf "undecodable reply (op 0x%02x): %s" op msg)
          | Ok resp ->
            let plausible =
              match (resp, kind) with
              | (Protocol.Err _ | Protocol.Busy _), _ -> true
              | (Protocol.Hits _ | Protocol.Redirect _), `Read -> true
              | (Protocol.Added _ | Protocol.Fenced _), `Add -> true
              | Protocol.Stats_reply _, `Stats -> true
              | Protocol.Health_reply _, `Health -> true
              | Protocol.Promoted _, `Promote -> true
              | _ -> false
            in
            if not plausible then
              failwith
                (Printf.sprintf "reply %s misattributed to id %d"
                   (Protocol.render_response resp) id))
      done
    in
    let expect_err ~rid what =
      let id, op, body = read_frame () in
      if id <> rid then
        failwith (Printf.sprintf "%s answered to id %d, wanted %d" what id rid)
      else
        match Protocol.Binary.decode_response ~op ~body with
        | Ok (Protocol.Err _) -> ()
        | Ok r ->
          failwith
            (Printf.sprintf "%s answered %s, wanted ERR" what (Protocol.render_response r))
        | Error msg -> failwith (Printf.sprintf "%s answered undecodably: %s" what msg)
    in
    (try
       let v = 1 + Prng.int rng 3 in
       Printf.fprintf oc "HELLO BIN %d\n" v;
       flush oc;
       (match Protocol.parse_response (input_line ic) with
       | Ok (Protocol.Hello_reply w) when w >= 1 && w <= v -> ()
       | Ok r -> failwith ("bad HELLO reply " ^ Protocol.render_response r)
       | Error msg -> failwith ("unparseable HELLO reply: " ^ msg));
       for _ = 1 to 1 + Prng.int rng 3 do
         batch ()
       done;
       match Prng.int rng 6 with
       | 0 ->
         (* oversized frame: rejected by id, body skipped, stream usable *)
         let rid = fresh_id () in
         let b = Buffer.create 5000 in
         Protocol.Binary.frame b ~id:rid ~op:0x01
           (String.make (4097 + Prng.int rng 256) 'x');
         output_string oc (Buffer.contents b);
         flush oc;
         expect_err ~rid "oversized frame";
         batch ()
       | 1 ->
         (* unknown opcode: ERR by id, stream usable *)
         let rid = fresh_id () in
         let b = Buffer.create 32 in
         Protocol.Binary.frame b ~id:rid ~op:(0x20 + Prng.int rng 0x60)
           (String.make (Prng.int rng 8) 'z');
         output_string oc (Buffer.contents b);
         flush oc;
         expect_err ~rid "unknown opcode";
         batch ()
       | 2 ->
         (* length below the frame minimum: ERR to id 0, then close *)
         let b = Buffer.create 4 in
         Buffer.add_int32_be b (Int32.of_int (Prng.int rng 5));
         output_string oc (Buffer.contents b);
         flush oc;
         expect_err ~rid:0 "short-length frame";
         (match read_frame () with
         | exception End_of_file -> ()
         | exception (Sys_error _ | Sys_blocked_io | Unix.Unix_error _) -> ()
         | _ -> failwith "stream survived a length below the frame minimum")
       | 3 ->
         (* frame truncated by hangup: no reply owed, server must shrug *)
         let b = Buffer.create 16 in
         Protocol.Binary.frame b ~id:(fresh_id ()) ~op:0x01 (String.make 64 'y');
         let s = Buffer.contents b in
         output_string oc (String.sub s 0 (4 + Prng.int rng (String.length s - 4)));
         flush oc
       | 4 ->
         (* garbage bytes, then hang up without reading *)
         let n = 1 + Prng.int rng 64 in
         let g = Bytes.init n (fun _ -> Char.chr (Prng.int rng 256)) in
         output_string oc (Bytes.to_string g);
         flush oc
       | _ ->
         (* a valid frame split across writes mid-frame *)
         let id = fresh_id () in
         let b = Buffer.create 64 in
         Protocol.Binary.encode_request b ~id Protocol.Stats;
         let s = Buffer.contents b in
         let cut = 1 + Prng.int rng (String.length s - 1) in
         output_string oc (String.sub s 0 cut);
         flush oc;
         Thread.yield ();
         output_string oc (String.sub s cut (String.length s - cut));
         flush oc;
         let rid, op, body = read_frame () in
         if rid <> id then
           failwith (Printf.sprintf "split frame answered to id %d, wanted %d" rid id)
         else
           match Protocol.Binary.decode_response ~op ~body with
           | Ok (Protocol.Stats_reply _) -> ()
           | Ok r ->
             failwith ("split STATS frame answered " ^ Protocol.render_response r)
           | Error msg -> failwith ("split STATS frame answered undecodably: " ^ msg)
     with
    | Failure detail ->
      incr failures;
      if !failures <= 5 then report "server" i detail
    | End_of_file ->
      incr failures;
      if !failures <= 5 then report "server" i "server hung up a binary connection"
    | Sys_error _ | Sys_blocked_io | Unix.Unix_error _ ->
      incr failures;
      if !failures <= 5 then report "server" i "binary connection transport error");
    close_conn conn
  in
  for i = 1 to iterations do
    if Prng.int rng 64 = 0 then fuzz_sync_stream i;
    if Prng.int rng 48 = 0 then fuzz_binary_episode i;
    let slot = Prng.int rng (Array.length conns) in
    let _, ic, oc = conns.(slot) in
    match
      if Prng.int rng 200 = 0 then begin
        (* abrupt disconnect mid-line: only this connection may suffer *)
        output_string oc "QUERY 2 {a";
        flush oc;
        close_conn conns.(slot);
        conns.(slot) <- connect ();
        Ok ()
      end
      else begin
        let line = sanitize (random_line ()) in
        (* sometimes split the write to exercise partial-read framing *)
        if String.length line > 1 && Prng.int rng 4 = 0 then begin
          let cut = 1 + Prng.int rng (String.length line - 1) in
          output_string oc (String.sub line 0 cut);
          flush oc;
          Thread.yield ();
          output_string oc (String.sub line cut (String.length line - cut))
        end
        else output_string oc line;
        output_char oc '\n';
        flush oc;
        if expects_reply line then begin
          let reply = input_line ic in
          match Protocol.parse_response reply with
          | Ok _ ->
            (* A valid SYNC hands the fd to the cluster (or the server
               closes it after FENCED/ERR): either way it no longer
               serves plain requests, so recycle the slot. *)
            (match Protocol.parse_request line with
            | Ok (Protocol.Sync _) ->
              close_conn conns.(slot);
              conns.(slot) <- connect ()
            | _ -> ());
            Ok ()
          | Error msg -> Error (Printf.sprintf "unparseable reply %S (%s)" reply msg)
        end
        else Ok ()
      end
    with
    | Ok () -> ()
    | Error detail | (exception Failure detail) ->
      incr failures;
      if !failures <= 5 then report "server" i detail
    | exception End_of_file ->
      incr failures;
      if !failures <= 5 then report "server" i "server closed an innocent connection";
      close_conn conns.(slot);
      conns.(slot) <- connect ()
    | exception exn ->
      incr failures;
      if !failures <= 5 then report "server" i (Printexc.to_string exn);
      close_conn conns.(slot);
      conns.(slot) <- connect ()
  done;
  (* the run must end with a healthy, idle server *)
  let admin = connect () in
  let _, ic, oc = admin in
  output_string oc "STATS\n";
  flush oc;
  (match Protocol.parse_response (input_line ic) with
  | Ok (Protocol.Stats_reply s) ->
    if s.Protocol.inflight <> 0 then begin
      incr failures;
      report "server" iterations
        (Printf.sprintf "leaked %d inflight requests" s.Protocol.inflight)
    end;
    Printf.printf
      "server: trees=%d queries=%d adds=%d shed=%d degraded=%d errors=%d quarantined=%d\n"
      s.Protocol.trees s.Protocol.queries s.Protocol.adds s.Protocol.shed
      s.Protocol.degraded s.Protocol.errors s.Protocol.quarantined
  | Ok r ->
    incr failures;
    report "server" iterations ("bad STATS reply " ^ Protocol.render_response r)
  | Error msg | (exception Failure msg) ->
    incr failures;
    report "server" iterations ("unparseable STATS reply: " ^ msg)
  | exception End_of_file ->
    incr failures;
    report "server" iterations "server dead at end of run");
  close_conn admin;
  Array.iter close_conn conns;
  Server.drain server;
  Server.wait server;
  if Sys.file_exists sock then Sys.remove sock;
  !failures

(* Hash-consing soundness hunt.  Kernel half: a random batch (salted
   with exact duplicates and near-duplicate copies) is interned into a
   fresh Dag store, and the bounded/unbounded kernels on the consed
   preps — equal-subtree fast path, cross-pair memo replay, whole-pair
   result cache all firing — must return exactly what the unconsed
   preps return for random pairs and clamps.  Wire half: a live server
   opened with dedup on is fed duplicate and near-duplicate ADDs; a
   duplicate ADD must be acked with the original tree's id, a
   near-duplicate must mint a fresh id, and the STATS dedup counter
   must track the suppressed count exactly. *)
let fuzz_dag iterations rng =
  let module Protocol = Tsj_server.Protocol in
  let module Server = Tsj_server.Server in
  let failures = ref 0 in
  let sock = Filename.temp_file "tsj_fuzz_dag" ".sock" in
  Sys.remove sock;
  let addr = Protocol.Unix_path sock in
  let config = { (Server.default_config addr ~tau:2) with Server.dedup = true } in
  let server =
    match Server.create config with
    | Ok s -> s
    | Error msg ->
      Printf.eprintf "server: cannot start: %s\n" msg;
      exit 2
  in
  Server.start server;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
  let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
  let request line =
    output_string oc line;
    output_char oc '\n';
    flush oc;
    Protocol.parse_response (input_line ic)
  in
  (* bracket string -> id of the first ADD, mirroring the dedup layer *)
  let known : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let expected_dedups = ref 0 in
  for i = 1 to iterations do
    (* --- kernel half: consed = unconsed on a random batch --- *)
    let base = Array.init (2 + Prng.int rng 5) (fun _ -> random_tree rng (1 + Prng.int rng 10)) in
    let batch =
      Array.init (Array.length base + 3) (fun j ->
          if j < Array.length base then base.(j)
          else begin
            let src = base.(Prng.int rng (Array.length base)) in
            if Prng.int rng 2 = 0 then src
            else
              snd
                (Tsj_tree.Edit_op.random_script rng ~labels
                   (1 + Prng.int rng 2) src)
          end)
    in
    let dag = Tsj_tree.Dag.create () in
    let plain = Array.map (fun t -> Tsj_ted.Ted.preprocess t) batch in
    let consed = Array.map (fun t -> Tsj_ted.Ted.preprocess_consed (Tsj_ted.Ted.cons dag t)) batch in
    let n = Array.length batch in
    for _ = 1 to 6 do
      let a = Prng.int rng n and b = Prng.int rng n in
      let k = Prng.int rng 4 in
      let du = Tsj_ted.Ted.bounded_distance_prep plain.(a) plain.(b) k in
      let dc = Tsj_ted.Ted.bounded_distance_prep consed.(a) consed.(b) k in
      if du <> dc then begin
        incr failures;
        if !failures <= 5 then
          report "dag" i
            (Printf.sprintf "bounded k=%d: consed %d <> unconsed %d on %s vs %s" k
               dc du
               (Tsj_tree.Bracket.to_string batch.(a))
               (Tsj_tree.Bracket.to_string batch.(b)))
      end;
      if Prng.int rng 4 = 0 then begin
        let du = Tsj_ted.Ted.distance_prep plain.(a) plain.(b) in
        let dc = Tsj_ted.Ted.distance_prep consed.(a) consed.(b) in
        if du <> dc then begin
          incr failures;
          if !failures <= 5 then
            report "dag" i
              (Printf.sprintf "unbounded: consed %d <> unconsed %d" dc du)
        end
      end
    done;
    (* --- wire half: duplicate and near-duplicate ADDs --- *)
    (try
       let tree =
         if Hashtbl.length known > 0 && Prng.int rng 2 = 0 then begin
           (* re-submit a tree the server has already acked *)
           let keys = Hashtbl.fold (fun k _ acc -> k :: acc) known [] in
           List.nth keys (Prng.int rng (List.length keys))
         end
         else Tsj_tree.Bracket.to_string (random_tree rng (1 + Prng.int rng 8))
       in
       match request ("ADD " ^ tree) with
       | Ok (Protocol.Added { id; _ }) ->
         (match Hashtbl.find_opt known tree with
         | Some first ->
           incr expected_dedups;
           if id <> first then begin
             incr failures;
             if !failures <= 5 then
               report "dag" i
                 (Printf.sprintf "duplicate ADD acked %d, original was %d" id first)
           end
         | None -> Hashtbl.replace known tree id)
       | Ok r ->
         incr failures;
         if !failures <= 5 then
           report "dag" i ("bad ADD reply " ^ Protocol.render_response r)
       | Error msg ->
         incr failures;
         if !failures <= 5 then report "dag" i ("unparseable ADD reply: " ^ msg)
     with
    | End_of_file ->
      incr failures;
      report "dag" i "server closed the connection";
      exit 1
    | exn ->
      incr failures;
      if !failures <= 5 then report "dag" i (Printexc.to_string exn))
  done;
  (* the dedup counter must equal the duplicates we actually sent *)
  (match request "STATS" with
  | Ok (Protocol.Stats_reply s) ->
    if s.Protocol.dedup <> !expected_dedups then begin
      incr failures;
      report "dag" iterations
        (Printf.sprintf "STATS dedup=%d, expected %d" s.Protocol.dedup
           !expected_dedups)
    end;
    if s.Protocol.trees <> Hashtbl.length known then begin
      incr failures;
      report "dag" iterations
        (Printf.sprintf "STATS trees=%d, expected %d distinct" s.Protocol.trees
           (Hashtbl.length known))
    end
  | Ok r -> incr failures; report "dag" iterations ("bad STATS reply " ^ Protocol.render_response r)
  | Error msg | (exception Failure msg) ->
    incr failures;
    report "dag" iterations ("unparseable STATS reply: " ^ msg)
  | exception End_of_file ->
    incr failures;
    report "dag" iterations "server dead at end of run");
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Server.drain server;
  Server.wait server;
  if Sys.file_exists sock then Sys.remove sock;
  !failures

(* Scatter-gather robustness hunt.  Pure half: Merge.query/knn under
   byzantine shard answers — random out-of-range shard-local ids,
   negative/over-threshold distances, inverted sandwiches, Unreachable
   shards — must never raise and must always produce a well-formed
   answer: exact hits unique per gid, sorted by (distance, gid) and
   inside [0, tau]; sandwiches unique per gid, sorted, [0 <= lo <= hi],
   lo <= tau, disjoint from the exact set; an all-Unreachable cluster
   answers degraded with no exact hit (a malformed reply can remove
   precision but never invent a result).  Live half: a real Router whose
   "shards" are shady listener threads replying with silence, slammed
   doors, garbage bytes, truncated lines, duplicate acks, cross-epoch
   FENCED, wrong-verb replies and random-id trees: every add/query/knn/
   stats/reconcile call must return (no exception, no hang beyond the
   per-shard deadline) and every answer must pass the same shape
   checks. *)
let fuzz_router iterations rng =
  let module Protocol = Tsj_server.Protocol in
  let module Router = Tsj_server.Router in
  let module Shard = Tsj_server.Shard in
  let failures = ref 0 in
  let fail i detail =
    incr failures;
    if !failures <= 5 then report "router" i detail
  in
  (* shape invariants every merged answer must satisfy *)
  let check_answer ~tau (a : Router.answer) =
    let rec hits_ok = function
      | (g1, d1) :: ((g2, d2) :: _ as rest) ->
        if compare (d1, g1) (d2, g2) >= 0 then
          Some "exact hits out of order or duplicated"
        else hits_ok rest
      | _ -> None
    in
    let rec unv_ok = function
      | (g1, _, _) :: ((g2, _, _) :: _ as rest) ->
        if g1 >= g2 then Some "sandwiches out of order or duplicated"
        else unv_ok rest
      | _ -> None
    in
    match (hits_ok a.Router.a_hits, unv_ok a.Router.a_unverified) with
    | Some e, _ | _, Some e -> Some e
    | None, None -> (
      match List.find_opt (fun (_, d) -> d < 0 || d > tau) a.Router.a_hits with
      | Some (g, d) ->
        Some (Printf.sprintf "exact hit gid %d distance %d outside [0,%d]" g d tau)
      | None -> (
        match
          List.find_opt
            (fun (_, lo, hi) -> lo < 0 || lo > hi || lo > tau)
            a.Router.a_unverified
        with
        | Some (g, lo, hi) ->
          Some (Printf.sprintf "malformed sandwich gid %d [%d,%d]" g lo hi)
        | None ->
          if
            List.exists
              (fun (g, _, _) -> List.mem_assoc g a.Router.a_hits)
              a.Router.a_unverified
          then Some "gid both exact and unverified"
          else if a.Router.a_unverified <> [] && not a.Router.a_degraded then
            Some "sandwiches in an answer not marked degraded"
          else None))
  in
  (* --- pure half: byzantine answers through the merge --- *)
  let merge_case i =
    let tau = Prng.int rng 4 in
    let query_size = 1 + Prng.int rng 30 in
    let shards = 1 + Prng.int rng 4 in
    (* the trusted side (the router's own ledger): per-shard residents,
       gid = global position, lseq = position within the shard *)
    let residents = Array.make shards [] in
    let n_res = Prng.int rng 12 in
    for g = 0 to n_res - 1 do
      let s = Prng.int rng shards in
      residents.(s) <- residents.(s) @ [ (g, Prng.int rng 40) ]
    done;
    let resident ~shard = residents.(shard) in
    let to_gid ~shard lseq =
      if lseq < 0 then None
      else Option.map fst (List.nth_opt residents.(shard) lseq)
    in
    let random_answer () =
      if Prng.int rng 4 = 0 then Router.Merge.Unreachable
      else
        Router.Merge.Answer
          {
            degraded = Prng.int rng 3 = 0;
            hits =
              List.init (Prng.int rng 5) (fun _ ->
                  (Prng.int rng 16 - 2, Prng.int rng (tau + 4) - 2));
            unverified =
              List.init (Prng.int rng 4) (fun _ ->
                  (Prng.int rng 16 - 2, Prng.int rng 10 - 2, Prng.int rng 14 - 2));
          }
    in
    let answers = List.init shards (fun s -> (s, random_answer ())) in
    (match Router.Merge.query ~query_size ~tau ~to_gid ~resident answers with
    | a ->
      (match check_answer ~tau a with
      | Some e -> fail i ("merge.query: " ^ e)
      | None -> ());
      if
        List.for_all (fun (_, x) -> x = Router.Merge.Unreachable) answers
        && (a.Router.a_hits <> [] || not a.Router.a_degraded)
      then fail i "merge.query: all-unreachable invented hits or hid degradation"
    | exception exn -> fail i ("merge.query raised " ^ Printexc.to_string exn));
    let k = Prng.int rng 5 in
    match Router.Merge.knn ~k ~query_size ~tau ~to_gid ~resident answers with
    | a ->
      (match check_answer ~tau a with
      | Some e -> fail i ("merge.knn: " ^ e)
      | None -> ());
      if List.length a.Router.a_hits > k then
        fail i (Printf.sprintf "merge.knn: %d hits for k=%d"
                  (List.length a.Router.a_hits) k)
    | exception exn -> fail i ("merge.knn raised " ^ Printexc.to_string exn)
  in
  (* --- live half: a real router over shady shard listeners --- *)
  let stop = Atomic.make false in
  let conn_seed = Atomic.make 0 in
  let socks =
    Array.init 2 (fun i ->
        let f = Filename.temp_file (Printf.sprintf "tsj_fuzz_rt%d" i) ".sock" in
        Sys.remove f;
        f)
  in
  let render r = Protocol.render_response r in
  let shady_stats rng =
    Protocol.Stats_reply
      {
        Protocol.trees = Prng.int rng 4; tau = 2; queries = 0; adds = 0;
        shed = 0; degraded = 0; errors = 0; quarantined = 0; inflight = 0;
        draining = false; journal_records = Prng.int rng 4;
        epoch = Prng.int rng 50; primary = Prng.int rng 4 <> 0; dedup = 0;
        scrubbed = 0; crc_failures = 0; repaired = 0; expired = 0;
        accept_pauses = 0; reaped = 0; q_p50 = 0; q_p95 = 0; q_p99 = 0;
        k_p50 = 0; k_p95 = 0; k_p99 = 0; a_p50 = 0; a_p95 = 0; a_p99 = 0;
      }
  in
  let handle_conn fd =
    let rng = Prng.create (0x5AD0 + Atomic.fetch_and_add conn_seed 1) in
    let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
    (try
       let continue = ref true in
       while !continue do
         let (_ : string) = input_line ic in
         match Prng.int rng 12 with
         | 0 -> () (* silence: the router's per-shard deadline must fire *)
         | 1 -> continue := false (* slam the door mid-request *)
         | 2 ->
           output_string oc "\255\000 garbage }{ \127\n";
           flush oc
         | 3 ->
           (* truncated reply, then hangup *)
           output_string oc "HITS 3 tru";
           flush oc;
           continue := false
         | 4 ->
           (* cross-epoch response *)
           output_string oc (render (Protocol.Fenced (Prng.int rng 1000)) ^ "\n");
           flush oc
         | 5 ->
           (* duplicate shard ack: two replies to one request — the
              second desynchronizes the lock-step conversation *)
           let id = Prng.int rng 20 in
           output_string oc (render (Protocol.Added { id; partners = [] }) ^ "\n");
           output_string oc
             (render (Protocol.Added { id = id + 1; partners = [] }) ^ "\n");
           flush oc
         | 6 ->
           output_string oc
             (render (Protocol.Busy { retry_after_ms = None }) ^ "\n");
           flush oc
         | 7 | 8 ->
           (* parseable reply, wrong verb or random ids *)
           let r =
             match Prng.int rng 5 with
             | 0 ->
               Protocol.Hits
                 {
                   degraded = Prng.int rng 2 = 0;
                   hits =
                     List.init (Prng.int rng 4) (fun _ ->
                         (Prng.int rng 50, Prng.int rng 6));
                   unverified =
                     List.init (Prng.int rng 3) (fun _ ->
                         (Prng.int rng 50, Prng.int rng 5, Prng.int rng 9));
                 }
             | 1 ->
               Protocol.Added
                 { id = Prng.int rng 50;
                   partners = [ (Prng.int rng 9, Prng.int rng 3) ] }
             | 2 -> shady_stats rng
             | 3 ->
               Protocol.Tree_reply
                 { seq = Prng.int rng 50; tree = random_tree rng (1 + Prng.int rng 6) }
             | _ -> Protocol.Promoted (Prng.int rng 100)
           in
           output_string oc (render r ^ "\n");
           flush oc
         | 9 ->
           output_string oc (render (Protocol.Err "shady shard") ^ "\n");
           flush oc
         | _ ->
           (* behave for once, so later lines on this connection reach
              the nastier arms *)
           output_string oc
             (render (Protocol.Hits { degraded = false; hits = []; unverified = [] })
             ^ "\n");
           flush oc
       done
     with End_of_file | Sys_error _ | Sys_blocked_io | Unix.Unix_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let listeners =
    Array.map
      (fun sock ->
        let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind lfd (Unix.ADDR_UNIX sock);
        Unix.listen lfd 16;
        Thread.create
          (fun () ->
            while not (Atomic.get stop) do
              match Unix.select [ lfd ] [] [] 0.1 with
              | [], _, _ -> ()
              | _ -> (
                match Unix.accept lfd with
                | fd, _ -> ignore (Thread.create handle_conn fd)
                | exception Unix.Unix_error _ -> ())
            done;
            try Unix.close lfd with Unix.Unix_error _ -> ())
          ())
      socks
  in
  let router =
    let map = Shard.create ~shards:(Array.length socks) ~tau:2 () in
    let config =
      { Router.map; tau = 2;
        groups = Array.map (fun s -> [ Protocol.Unix_path s ]) socks;
        timeout_s = 0.05; attempts = 2; ledger = None; seed = 7;
        hedge_s = None; margin_ms = 0 }
    in
    match Router.create config with
    | Ok r -> r
    | Error msg ->
      Printf.eprintf "router: cannot start against shady shards: %s\n" msg;
      exit 2
  in
  let live_ops = ref 0 in
  let live_episode i =
    incr live_ops;
    match Prng.int rng 6 with
    | 0 | 1 -> (
      match Router.add router (random_tree rng (1 + Prng.int rng 10)) with
      | Ok _ | Error _ -> ()
      | exception exn -> fail i ("router.add raised " ^ Printexc.to_string exn))
    | 2 | 3 -> (
      let tq = Prng.int rng 3 in
      match Router.query router ~tau:tq (random_tree rng (1 + Prng.int rng 10)) with
      | a -> (
        match check_answer ~tau:tq a with
        | Some e -> fail i ("router.query: " ^ e)
        | None -> ())
      | exception exn -> fail i ("router.query raised " ^ Printexc.to_string exn))
    | 4 -> (
      match Router.knn router ~k:(Prng.int rng 4) (random_tree rng (1 + Prng.int rng 10)) with
      | a -> (
        match check_answer ~tau:(Router.tau router) a with
        | Some e -> fail i ("router.knn: " ^ e)
        | None -> ())
      | exception exn -> fail i ("router.knn raised " ^ Printexc.to_string exn))
    | _ -> (
      (match Router.stats router with
      | (_ : Protocol.stats_reply) -> ()
      | exception exn -> fail i ("router.stats raised " ^ Printexc.to_string exn));
      if Prng.int rng 4 = 0 then
        match Router.reconcile router with
        | (_ : int) -> ()
        | exception exn ->
          fail i ("router.reconcile raised " ^ Printexc.to_string exn))
  in
  for i = 1 to iterations do
    merge_case i;
    if Prng.int rng 50 = 0 then live_episode i
  done;
  Atomic.set stop true;
  Array.iter Thread.join listeners;
  Router.close router;
  Array.iter (fun s -> if Sys.file_exists s then Sys.remove s) socks;
  Printf.printf "router: %d merge cases, %d live calls against shady shards\n"
    iterations !live_ops;
  !failures

(* Integrity hunt.  Store half: each iteration builds a small journaled
   store next to a never-corrupted ephemeral twin, rots the disk — a
   random bit flip anywhere in the journal, snapshot or a seal sidecar,
   a random truncation, or a mid-journal record flip before a restart —
   and drives one of the repair paths: a live full scrub cycle, a
   self-healing reopen refetching the record from the twin, or a
   quarantine reopen.  The corruption must always be detected, the
   post-repair state must scrub clean, and every query must match the
   twin exactly (scrub/heal) or answer a sound subset (quarantine) —
   rot may cost completeness, never a wrong answer.  Merkle half:
   random push/truncate op sequences on the incremental digest tree
   must agree with a from-scratch rebuild on the root and on random
   ranges (expected: 0). *)
let fuzz_scrub iterations rng =
  let module Store = Tsj_server.Store in
  let module Integrity = Tsj_server.Integrity in
  let failures = ref 0 in
  let fail i detail =
    incr failures;
    if !failures <= 5 then report "scrub" i detail
  in
  let fresh_dir () =
    let d = Filename.temp_file "tsj_fuzz_scrub" "" in
    Sys.remove d;
    Unix.mkdir d 0o700;
    d
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
        (try Unix.rmdir path with Unix.Unix_error _ -> ())
      end
      else try Sys.remove path with Sys_error _ -> ()
  in
  let full_scrub st =
    let budget = Store.journal_records st + 1 in
    let a = Store.scrub_step ~budget st in
    let b = Store.scrub_step ~budget st in
    (a.Store.sc_findings @ b.Store.sc_findings, a.Store.sc_repaired + b.Store.sc_repaired)
  in
  (* --- merkle half: incremental ops vs from-scratch rebuild --- *)
  let merkle_case i =
    let m = Integrity.Merkle.create () in
    let shadow = ref [] (* newest first *) in
    let seq = ref 0 in
    for _ = 1 to 1 + Prng.int rng 24 do
      if Prng.int rng 4 = 0 && !shadow <> [] then begin
        let keep = Prng.int rng (List.length !shadow + 1) in
        Integrity.Merkle.truncate m keep;
        let rec drop l = if List.length l > keep then drop (List.tl l) else l in
        shadow := drop !shadow
      end
      else begin
        let line = Store.render_record ~seq:!seq (random_tree rng (1 + Prng.int rng 6)) in
        incr seq;
        Integrity.Merkle.push m line;
        shadow := line :: !shadow
      end
    done;
    let reference = Integrity.Merkle.of_lines (List.rev !shadow) in
    let n = Integrity.Merkle.size m in
    if n <> List.length !shadow then
      fail i (Printf.sprintf "merkle size %d, shadow %d" n (List.length !shadow))
    else begin
      if Integrity.Merkle.root m <> Integrity.Merkle.root reference then
        fail i "merkle root diverged from a from-scratch rebuild";
      for _ = 1 to 3 do
        let lo = Prng.int rng (n + 1) in
        let hi = lo + Prng.int rng (n - lo + 1) in
        if Integrity.Merkle.range m ~lo ~hi <> Integrity.Merkle.range reference ~lo ~hi then
          fail i (Printf.sprintf "merkle range [%d,%d) diverged" lo hi)
      done;
      Integrity.Merkle.recompute m;
      if Integrity.Merkle.root m <> Integrity.Merkle.root reference then
        fail i "merkle recompute changed the root"
    end
  in
  (* --- store half --- *)
  let store_case i =
    let dir = fresh_dir () in
    let cleanup = ref [] in
    (try
       let tau = 1 + Prng.int rng 2 in
       let open_or_fail what = function
         | Ok st -> st
         | Error msg -> failwith (Printf.sprintf "%s refused: %s" what msg)
       in
       let twin = open_or_fail "twin open" (Store.open_ ~tau ()) in
       let st = ref (open_or_fail "open" (Store.open_ ~dir ~tau ())) in
       cleanup := [ twin; !st ];
       let trees = ref [] in
       let feed n =
         for _ = 1 to n do
           let t = random_tree rng (1 + Prng.int rng 10) in
           trees := t :: !trees;
           ignore (Store.add twin t);
           ignore (Store.add !st t)
         done
       in
       feed (Prng.int rng 3);
       if Prng.int rng 2 = 0 then Store.flush !st;
       feed (3 + Prng.int rng 4);
       let n_ref = Store.n_trees twin in
       let probes =
         List.filteri (fun k _ -> k < 3) !trees
         |> List.map (fun t ->
                (t, (Store.query ~tau twin t).Tsj_core.Incremental.hits))
       in
       let check_exact what =
         if Store.n_trees !st <> n_ref then
           failwith (Printf.sprintf "%s: %d trees, twin has %d" what
                       (Store.n_trees !st) n_ref);
         List.iter
           (fun (t, expect) ->
             let got = (Store.query ~tau !st t).Tsj_core.Incremental.hits in
             if got <> expect then failwith (what ^ ": answers diverged from the twin"))
           probes
       in
       let check_sound what =
         List.iter
           (fun (t, expect) ->
             let got = (Store.query ~tau !st t).Tsj_core.Incremental.hits in
             List.iter
               (fun (id, d) ->
                 if not (List.mem (id, d) expect) then
                   failwith (Printf.sprintf "%s: invented hit (%d,%d)" what id d))
               got)
           probes
       in
       let targets () =
         List.filter
           (fun p -> Sys.file_exists p && (Unix.stat p).Unix.st_size > 0)
           (List.concat_map
              (fun f -> [ f; Integrity.seal_path f ])
              [ Filename.concat dir "journal"; Filename.concat dir "snapshot" ])
       in
       let flip_in path =
         let size = (Unix.stat path).Unix.st_size in
         Tsj_harness.Faults.flip_bit path ~bit:(Prng.int rng (8 * size))
       in
       (* Corrupt a journal record that is not the last one (a rotted
          last record is the torn-tail path, not mid-file corruption);
          returns false when the journal is too short. *)
       let rot_mid_record () =
         let text =
           In_channel.with_open_bin (Filename.concat dir "journal")
             In_channel.input_all
         in
         let lines = String.split_on_char '\n' text in
         let extents, _ =
           List.fold_left
             (fun (acc, off) line ->
               let acc =
                 if String.length line > 4 && String.sub line 0 6 <> "epoch "
                 then (off, String.length line) :: acc
                 else acc
               in
               (acc, off + String.length line + 1))
             ([], 0) lines
         in
         match List.rev extents with
         | [] | [ _ ] -> false
         | records ->
           let off, len =
             List.nth records (Prng.int rng (List.length records - 1))
           in
           Tsj_harness.Faults.flip_bit
             (Filename.concat dir "journal")
             ~bit:((8 * off) + Prng.int rng (8 * len));
           true
       in
       (match Prng.int rng 4 with
       | 0 ->
         (* live bit rot, repaired by the scrubber *)
         flip_in (List.nth (targets ()) (Prng.int rng (List.length (targets ()))));
         let findings, _ = full_scrub !st in
         if findings = [] then failwith "live rot went undetected";
         let findings, _ = full_scrub !st in
         if findings <> [] then failwith "store still dirty after a repair cycle";
         check_exact "live rot"
       | 1 ->
         (* truncation (lost suffix), repaired by the scrubber *)
         let path = List.nth (targets ()) (Prng.int rng (List.length (targets ()))) in
         let size = (Unix.stat path).Unix.st_size in
         (* Two cuts are not corruption under the line-based model: an
            empty seal sidecar means "never sealed" (vacuously clean by
            design, keep >= 1 byte) and shaving only the trailing
            newline leaves every logical record intact (cut at most
            size - 2). *)
         let floor = if Filename.check_suffix path ".seal" then 1 else 0 in
         let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
         Unix.ftruncate fd (max floor (Prng.int rng (max 1 (size - 1))));
         Unix.close fd;
         let findings, _ = full_scrub !st in
         if findings = [] then failwith "truncation went undetected";
         let findings, _ = full_scrub !st in
         if findings <> [] then failwith "store still dirty after a repair cycle";
         check_exact "truncation"
       | 2 ->
         (* mid-journal rot before a restart, healed from the twin *)
         if rot_mid_record () then begin
           (* abandoned without close = kill -9; every add was flushed *)
           st :=
             open_or_fail "healing reopen"
               (Store.open_ ~dir ~tau
                  ~heal:(fun seq -> Some (Store.record_for twin seq))
                  ());
           cleanup := [ twin; !st ];
           let _, _, repaired, _ = Store.scrub_counters !st in
           if repaired = 0 then failwith "healing reopen credited no repair";
           let findings, _ = full_scrub !st in
           if findings <> [] then failwith "store dirty after a healing reopen";
           check_exact "healing reopen"
         end
       | _ ->
         (* mid-journal rot before a restart, quarantined *)
         if rot_mid_record () then begin
           st :=
             open_or_fail "quarantine reopen"
               (Store.open_ ~dir ~tau ~quarantine:true ());
           cleanup := [ twin; !st ];
           let _, _, _, quarantined = Store.scrub_counters !st in
           if quarantined = 0 && Store.n_trees !st = n_ref then
             failwith "quarantine reopen noticed nothing";
           if Store.n_trees !st > n_ref then
             failwith "quarantine reopen invented trees";
           let findings, _ = full_scrub !st in
           if findings <> [] then failwith "store dirty after a quarantine reopen";
           check_sound "quarantine reopen"
         end);
       List.iter Store.close !cleanup
     with
    | Failure detail -> fail i detail
    | exn -> fail i (Printexc.to_string exn));
    rm dir
  in
  for i = 1 to iterations do
    merkle_case i;
    store_case i
  done;
  !failures

(* Overload-mode fuzz: adversarial deadline and retry-after traffic
   against a live server with a tiny per-connection token bucket.  Text
   lines carry random [@] budget tokens (zero, tiny, huge, overflowing,
   negative, non-numeric, empty); binary episodes negotiate a random
   protocol version and send work frames with random deadline words.
   Invariants: every request gets exactly one well-formed reply; a
   malformed token is answered ERR, never silently glued to the tree; a
   zero budget never yields HITS/ADDED; every BUSY retry-after hint is
   within sane bounds; the run ends with a healthy, idle server. *)
let fuzz_overload iterations rng =
  let module Protocol = Tsj_server.Protocol in
  let module Server = Tsj_server.Server in
  let module Store = Tsj_server.Store in
  let failures = ref 0 in
  let sock = Filename.temp_file "tsj_fuzz_ov" ".sock" in
  Sys.remove sock;
  let addr = Protocol.Unix_path sock in
  let config =
    { (Server.default_config addr ~tau:2) with
      Server.deadline_s = Some 0.05;
      rate = Some 50.0;
      burst = 2;
      max_inflight = 8 }
  in
  let server =
    match Server.create config with
    | Ok s -> s
    | Error msg ->
      Printf.eprintf "overload: cannot start: %s\n" msg;
      exit 2
  in
  for _ = 1 to 8 do
    ignore (Store.add (Server.store server) (random_tree rng (1 + Prng.int rng 8)))
  done;
  Server.start server;
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX sock);
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
    (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
  in
  let close_conn (fd, _, _) = try Unix.close fd with Unix.Unix_error _ -> () in
  (* Bucket hints are bounded by the refill period (20 ms at 50/s),
     backlog hints by the hard-coded [5, 1000] clamp. *)
  let check_busy_hint what = function
    | Protocol.Busy { retry_after_ms = Some ms } when ms < 1 || ms > 2000 ->
      failwith (Printf.sprintf "%s: BUSY hint %dms out of bounds" what ms)
    | _ -> ()
  in
  let conn = ref (connect ()) in
  let text_case i =
    (* kind: the semantics the reply must respect *)
    let tok, kind =
      match Prng.int rng 10 with
      | 0 | 1 -> ("@0 ", `Zero)
      | 2 -> ("@1 ", `Valid)
      | 3 -> (Printf.sprintf "@%d " (1 + Prng.int rng 100_000), `Valid)
      | 4 -> (Printf.sprintf "@%d " Protocol.max_deadline_ms, `Valid)
      | 5 -> ("@99999999999999999999 ", `Garbage)
      | 6 -> ("@-7 ", `Garbage)
      | 7 -> ("@x7 ", `Garbage)
      | 8 -> ("@ ", `Garbage)
      | _ -> ("", `Valid)
    in
    let ts = Tsj_tree.Bracket.to_string (random_tree rng (1 + Prng.int rng 8)) in
    let line =
      match Prng.int rng 3 with
      | 0 -> Printf.sprintf "QUERY %d %s%s" (Prng.int rng 3) tok ts
      | 1 -> Printf.sprintf "KNN %d %s%s" (1 + Prng.int rng 3) tok ts
      | _ -> Printf.sprintf "ADD %s%s" tok ts
    in
    try
      let _, ic, oc = !conn in
      output_string oc line;
      output_char oc '\n';
      flush oc;
      let reply = input_line ic in
      match Protocol.parse_response reply with
      | Error msg -> failwith (Printf.sprintf "unparseable reply %S (%s)" reply msg)
      | Ok resp -> (
        check_busy_hint "text" resp;
        match (kind, resp) with
        | `Zero, (Protocol.Hits _ | Protocol.Added _) ->
          failwith (Printf.sprintf "zero budget answered: %s" reply)
        | `Zero, Protocol.Busy _ ->
          failwith "zero budget shed instead of expired"
        | `Garbage, (Protocol.Hits _ | Protocol.Added _ | Protocol.Busy _) ->
          failwith
            (Printf.sprintf "garbage token %S accepted: %s -> %s" tok line reply)
        | _ -> ())
    with
    | Failure detail ->
      incr failures;
      if !failures <= 5 then report "overload" i detail
    | End_of_file | Sys_error _ | Unix.Unix_error _ ->
      incr failures;
      if !failures <= 5 then report "overload" i "server hung up a text connection";
      close_conn !conn;
      conn := connect ()
  in
  let binary_episode i =
    let ((_, ic, oc) as c) = connect () in
    (try
       let offered = 1 + Prng.int rng 7 in
       output_string oc (Printf.sprintf "HELLO BIN %d\n" offered);
       flush oc;
       let v =
         match Protocol.parse_response (input_line ic) with
         | Ok (Protocol.Hello_reply v) -> v
         | Ok r -> failwith ("bad HELLO reply " ^ Protocol.render_response r)
         | Error msg -> failwith ("unparseable HELLO reply: " ^ msg)
       in
       if v <> min offered Protocol.Binary.version then
         failwith (Printf.sprintf "negotiated v%d from an offer of v%d" v offered);
       let read_frame () =
         let flen = Protocol.Binary.get_u32 (really_input_string ic 4) 0 in
         let rest = really_input_string ic flen in
         ( Protocol.Binary.get_u32 rest 0,
           Char.code rest.[4],
           String.sub rest 5 (flen - 5) )
       in
       for j = 1 to 4 do
         let id = (i * 7) + j in
         let deadline_ms =
           match Prng.int rng 5 with
           | 0 -> Some 0
           | 1 -> Some (1 + Prng.int rng 200)
           | 2 -> Some Protocol.max_deadline_ms
           | 3 -> Some max_int (* encoder must clamp, not overflow the u32 *)
           | _ -> None
         in
         let tree = random_tree rng (1 + Prng.int rng 8) in
         let req =
           match Prng.int rng 3 with
           | 0 -> Protocol.Query { tau = Prng.int rng 3; tree }
           | 1 -> Protocol.Knn { k = 1 + Prng.int rng 3; tree }
           | _ -> Protocol.Add { seq = None; tree }
         in
         let buf = Buffer.create 64 in
         Protocol.Binary.encode_request buf ~id ?deadline_ms ~version:v req;
         output_string oc (Buffer.contents buf);
         flush oc;
         let rid, op, body = read_frame () in
         if rid <> id then failwith (Printf.sprintf "id %d answered as %d" id rid);
         match Protocol.Binary.decode_response ~op ~body with
         | Error msg -> failwith ("undecodable binary reply: " ^ msg)
         | Ok resp -> (
           check_busy_hint "binary" resp;
           match (deadline_ms, resp) with
           | Some 0, (Protocol.Hits _ | Protocol.Added _) when v >= 2 ->
             failwith "a zero binary budget yielded an answer"
           | _ -> ())
       done
     with
    | Failure detail ->
      incr failures;
      if !failures <= 5 then report "overload" i detail
    | End_of_file | Sys_error _ | Unix.Unix_error _ ->
      incr failures;
      if !failures <= 5 then report "overload" i "server hung up a binary episode");
    close_conn c
  in
  for i = 1 to iterations do
    if Prng.int rng 16 = 0 then binary_episode i;
    text_case i
  done;
  (* the run must end with a healthy, idle server *)
  let ((_, ic, oc) as admin) = connect () in
  output_string oc "STATS\n";
  flush oc;
  (match Protocol.parse_response (input_line ic) with
  | Ok (Protocol.Stats_reply s) ->
    if s.Protocol.inflight <> 0 then begin
      incr failures;
      report "overload" iterations
        (Printf.sprintf "leaked %d inflight requests" s.Protocol.inflight)
    end;
    Printf.printf "overload: queries=%d adds=%d shed=%d expired=%d errors=%d\n"
      s.Protocol.queries s.Protocol.adds s.Protocol.shed s.Protocol.expired
      s.Protocol.errors
  | Ok r ->
    incr failures;
    report "overload" iterations ("bad STATS reply " ^ Protocol.render_response r)
  | Error msg | (exception Failure msg) ->
    incr failures;
    report "overload" iterations ("unparseable STATS reply: " ^ msg)
  | exception End_of_file ->
    incr failures;
    report "overload" iterations "server dead at end of run");
  close_conn admin;
  close_conn !conn;
  Server.drain server;
  Server.wait server;
  if Sys.file_exists sock then Sys.remove sock;
  !failures

let () =
  let mode, iterations, seed =
    match Array.to_list Sys.argv with
    | [ _; mode ] -> (mode, 200_000, 42)
    | [ _; mode; iters ] -> (mode, int_of_string iters, 42)
    | [ _; mode; iters; seed ] -> (mode, int_of_string iters, int_of_string seed)
    | _ ->
      prerr_endline
        "usage: fuzz_main (lemma2|windows|join|ted|xml|server|dag|router|scrub|overload) [iterations] [seed]";
      exit 2
  in
  let rng = Prng.create seed in
  let failures =
    match mode with
    | "lemma2" -> fuzz_lemma2 iterations rng
    | "windows" -> fuzz_windows iterations rng
    | "join" -> fuzz_join iterations rng
    | "ted" -> fuzz_ted iterations rng
    | "xml" -> fuzz_xml iterations rng
    | "server" -> fuzz_server iterations rng
    | "dag" -> fuzz_dag iterations rng
    | "router" -> fuzz_router iterations rng
    | "scrub" -> fuzz_scrub iterations rng
    | "overload" -> fuzz_overload iterations rng
    | other ->
      Printf.eprintf "unknown mode %S\n" other;
      exit 2
  in
  Printf.printf "%s: %d iterations, %d failures\n" mode iterations failures;
  exit (if failures = 0 then 0 else 1)
