(* Tests for the work-stealing domain pool and the determinism guarantee
   of the block-parallel PartSJ join: at every domain count the join must
   produce bit-identical pairs, candidate counts and probe statistics. *)

module Pool = Tsj_join.Pool
module Partsj = Tsj_core.Partsj
module Two_layer_index = Tsj_core.Two_layer_index
module Types = Tsj_join.Types
module Prng = Tsj_util.Prng

(* --- pool unit tests --- *)

let with_pool domains f =
  let p = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let test_pool_create_validation () =
  Alcotest.check_raises "domains 0" (Invalid_argument "Pool.create: domains must be >= 1")
    (fun () -> ignore (Pool.create ~domains:0))

let test_pool_size () =
  with_pool 3 (fun p -> Alcotest.(check int) "size" 3 (Pool.size p));
  with_pool 1 (fun p -> Alcotest.(check int) "solo" 1 (Pool.size p))

let test_pool_map_empty_and_short () =
  with_pool 4 (fun p ->
      Alcotest.(check (array int)) "empty" [||] (Pool.map p Fun.id [||]);
      Alcotest.(check (array int)) "singleton" [| 10 |] (Pool.map p (( * ) 2) [| 5 |]);
      Alcotest.(check (array int)) "shorter than pool" [| 1; 2; 3 |]
        (Pool.map p (( + ) 1) [| 0; 1; 2 |]))

let test_pool_for_exactly_once () =
  with_pool 4 (fun p ->
      let n = 500 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Pool.for_ p ~chunk:7 n (fun i -> Atomic.incr hits.(i));
      Array.iteri
        (fun i a ->
          if Atomic.get a <> 1 then
            Alcotest.failf "index %d ran %d times" i (Atomic.get a))
        hits)

let test_pool_run_tasks_exactly_once () =
  with_pool 3 (fun p ->
      let n = 37 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Pool.run_tasks p (Array.init n (fun i () -> Atomic.incr hits.(i)));
      Array.iteri
        (fun i a ->
          if Atomic.get a <> 1 then
            Alcotest.failf "task %d ran %d times" i (Atomic.get a))
        hits;
      Pool.run_tasks p [||])

let test_pool_exception_propagates () =
  with_pool 4 (fun p ->
      (match Pool.for_ p 100 (fun i -> if i = 63 then failwith "pool-boom") with
      | () -> Alcotest.fail "expected exception from for_"
      | exception Failure msg -> Alcotest.(check string) "for_" "pool-boom" msg);
      (match Pool.map p (fun x -> if x = 9 then raise Exit else x) (Array.init 20 Fun.id) with
      | _ -> Alcotest.fail "expected exception from map"
      | exception Exit -> ());
      (* The pool must survive a failed job and accept the next one. *)
      Alcotest.(check (array int)) "usable after failure" [| 0; 1; 2; 3 |]
        (Pool.map p Fun.id (Array.init 4 Fun.id)))

let test_pool_reuse_across_maps () =
  with_pool 4 (fun p ->
      for round = 1 to 5 do
        let xs = Array.init (100 * round) (fun i -> i) in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (Array.map (fun x -> (x * x) + round) xs)
          (Pool.map p (fun x -> (x * x) + round) xs)
      done)

let test_pool_shutdown_idempotent () =
  let p = Pool.create ~domains:3 in
  Pool.shutdown p;
  Pool.shutdown p;
  Alcotest.check_raises "job after shutdown"
    (Invalid_argument "Pool.run: pool is shut down") (fun () ->
      Pool.run p (fun _ -> ()))

(* --- cross-domain determinism of the parallel PartSJ join --- *)

let all_configs =
  [
    (Partsj.Balanced, Two_layer_index.Two_sided, "balanced/two-sided");
    (Partsj.Balanced, Two_layer_index.Paper_rank, "balanced/paper-rank");
    (Partsj.Balanced, Two_layer_index.Label_only, "balanced/label-only");
    (Partsj.Random 0xBEEF, Two_layer_index.Two_sided, "random/two-sided");
    (Partsj.Random 0xBEEF, Two_layer_index.Paper_rank, "random/paper-rank");
    (Partsj.Random 0xBEEF, Two_layer_index.Label_only, "random/label-only");
  ]

let check_deterministic ?(domains = 4) ~name trees tau =
  List.iter
    (fun (partitioning, index_mode, cfg) ->
      let run d =
        Partsj.join_with_probe_stats ~partitioning ~index_mode ~domains:d ~trees
          ~tau ()
      in
      let o1, p1 = run 1 in
      let oN, pN = run domains in
      let label fmt = Printf.sprintf "%s %s %s" name cfg fmt in
      Alcotest.(check bool) (label "pairs") true (Types.equal_results o1 oN);
      Alcotest.(check int) (label "candidates")
        o1.Types.stats.Types.n_candidates oN.Types.stats.Types.n_candidates;
      (* equal_cascade: the memo hit/miss split depends on which domain
         verified which pair first, so it is normalized away. *)
      Alcotest.(check bool) (label "cascade counters") true
        (Types.equal_cascade o1.Types.stats.Types.cascade
           oN.Types.stats.Types.cascade);
      Alcotest.(check int) (label "cascade partitions candidates")
        o1.Types.stats.Types.n_candidates
        (Types.cascade_total o1.Types.stats.Types.cascade);
      Alcotest.(check bool) (label "probe stats") true (p1 = pN))
    all_configs

(* QCheck arbitrary: a seed expanded into a random forest via the
   deterministic Prng, so a failing seed reproduces exactly. *)
let arb_forest =
  QCheck.make
    ~print:(fun (seed, n, max_size) ->
      Printf.sprintf "seed=%d n=%d max_size=%d" seed n max_size)
    (fun st ->
      ( Random.State.int st 0x3FFFFFFF,
        2 + Random.State.int st 14,
        4 + Random.State.int st 12 ))

let prop_join_domains_equal (seed, n, max_size) =
  let rng = Prng.create seed in
  let trees = Array.of_list (Gen.random_forest rng ~n ~max_size) in
  let tau = 1 + (seed mod 3) in
  check_deterministic ~name:(Printf.sprintf "seed=%d" seed) trees tau;
  true

let test_determinism_clustered () =
  (* Near-duplicate-heavy input: many candidates survive to verification,
     exercising the pipelined verify path across block boundaries. *)
  let rng = Prng.create 2024 in
  let acc = ref [] in
  for _ = 1 to 40 do
    let base = Gen.random_tree rng (3 + Prng.int rng 14) in
    acc := base :: !acc;
    let _, copy =
      Tsj_tree.Edit_op.random_script rng ~labels:Gen.default_alphabet 2 base
    in
    acc := copy :: !acc
  done;
  let trees = Array.of_list !acc in
  List.iter
    (fun tau -> check_deterministic ~name:(Printf.sprintf "tau=%d" tau) trees tau)
    [ 0; 2 ];
  (* Also across several widths, including more domains than trees
     in a block. *)
  List.iter
    (fun domains ->
      check_deterministic ~domains ~name:(Printf.sprintf "width=%d" domains)
        trees 2)
    [ 2; 3; 8 ]

let suite =
  [
    Alcotest.test_case "pool create validation" `Quick test_pool_create_validation;
    Alcotest.test_case "pool size" `Quick test_pool_size;
    Alcotest.test_case "pool map empty/short" `Quick test_pool_map_empty_and_short;
    Alcotest.test_case "pool for_ exactly once" `Quick test_pool_for_exactly_once;
    Alcotest.test_case "pool run_tasks exactly once" `Quick
      test_pool_run_tasks_exactly_once;
    Alcotest.test_case "pool exception propagation" `Quick test_pool_exception_propagates;
    Alcotest.test_case "pool reuse across maps" `Quick test_pool_reuse_across_maps;
    Alcotest.test_case "pool shutdown idempotent" `Quick test_pool_shutdown_idempotent;
    Alcotest.test_case "join determinism (clustered)" `Quick test_determinism_clustered;
    Gen.qtest ~count:20 "join ~domains:1 = ~domains:4 (random forests)" arb_forest
      prop_join_domains_equal;
  ]
