module Tree = Tsj_tree.Tree
module Prng = Tsj_util.Prng
module Generator = Tsj_datagen.Generator
module Decay = Tsj_datagen.Decay
module Profiles = Tsj_datagen.Profiles
module Zhang_shasha = Tsj_ted.Zhang_shasha

let test_capacity () =
  Alcotest.(check int) "f=1" 5 (Generator.capacity ~max_fanout:1 ~max_depth:5);
  Alcotest.(check int) "f=2,d=3" 7 (Generator.capacity ~max_fanout:2 ~max_depth:3);
  Alcotest.(check int) "f=3,d=5" 121 (Generator.capacity ~max_fanout:3 ~max_depth:5);
  Alcotest.(check int) "f=2,d=1" 1 (Generator.capacity ~max_fanout:2 ~max_depth:1);
  (* saturates instead of overflowing *)
  Alcotest.(check bool) "huge saturates" true
    (Generator.capacity ~max_fanout:10 ~max_depth:30 <= 1 lsl 30)

let test_clamp_size () =
  let p = { Generator.default with Generator.max_fanout = 2; max_depth = 3 } in
  (* capacity 7, safe cap 7 (7/10 = 0) *)
  Alcotest.(check int) "clamped" 7 (Generator.clamp_size p 100);
  Alcotest.(check int) "small passes" 3 (Generator.clamp_size p 3);
  Alcotest.(check int) "at least 1" 1 (Generator.clamp_size p 0)

let test_generator_respects_caps () =
  let rng = Prng.create 1 in
  List.iter
    (fun (f, d) ->
      let p =
        { Generator.default with Generator.max_fanout = f; max_depth = d; avg_size = 50 }
      in
      for _ = 1 to 50 do
        let t = Generator.random_tree rng p in
        Alcotest.(check bool)
          (Printf.sprintf "degree <= %d" f)
          true
          (Tree.degree t <= f);
        Alcotest.(check bool)
          (Printf.sprintf "depth <= %d" d)
          true
          (Tree.depth t <= d)
      done)
    [ (2, 4); (3, 5); (6, 8); (1, 10) ]

let test_generator_size_range () =
  let rng = Prng.create 2 in
  let p = { Generator.default with Generator.size_jitter = 0.25; avg_size = 80 } in
  for _ = 1 to 50 do
    let t = Generator.random_tree rng p in
    let s = Tree.size t in
    Alcotest.(check bool) "size in jitter range" true (s >= 60 && s <= 100)
  done

let test_generator_determinism () =
  let a = Generator.random_trees (Prng.create 7) Generator.default 10 in
  let b = Generator.random_trees (Prng.create 7) Generator.default 10 in
  Array.iteri (fun i t -> Alcotest.(check bool) "same trees" true (Tree.equal t b.(i))) a

let test_generator_validation () =
  let bad p msg =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        ignore (Generator.random_tree (Prng.create 0) p))
  in
  bad { Generator.default with Generator.max_fanout = 0 } "Generator: max_fanout must be >= 1";
  bad { Generator.default with Generator.max_depth = 0 } "Generator: max_depth must be >= 1";
  bad { Generator.default with Generator.n_labels = 0 } "Generator: n_labels must be >= 1";
  bad { Generator.default with Generator.avg_size = 0 } "Generator: avg_size must be >= 1";
  bad { Generator.default with Generator.size_jitter = 1.5 }
    "Generator: size_jitter must be in [0,1)"

let test_generator_label_alphabet () =
  let p = { Generator.default with Generator.n_labels = 4 } in
  let labels = Generator.alphabet p in
  Alcotest.(check int) "alphabet size" 4 (Array.length labels);
  let rng = Prng.create 3 in
  let t = Generator.random_tree rng p in
  List.iter
    (fun l -> Alcotest.(check bool) "label from alphabet" true (Array.mem l labels))
    (Tree.label_set t)

let test_mother_sampling () =
  let rng = Prng.create 11 in
  let m = Generator.Mother.create rng Generator.default in
  let mother_tree = Generator.Mother.tree m in
  let msize = Tree.size mother_tree in
  Alcotest.(check bool) "mother bigger than avg" true (msize >= Generator.default.Generator.avg_size);
  for _ = 1 to 20 do
    let target = 10 + Prng.int rng 60 in
    let s = Generator.Mother.sample rng m ~target_size:target in
    Alcotest.(check int) "exact sample size" (min target msize) (Tree.size s);
    (* the sample's root is the mother's root *)
    Alcotest.(check int) "same root label" mother_tree.Tree.label s.Tree.label;
    (* every sampled subtree path exists in the mother: depth can't exceed *)
    Alcotest.(check bool) "depth bounded by mother" true (Tree.depth s <= Tree.depth mother_tree)
  done

let test_decay_zero_is_identity () =
  let rng = Prng.create 5 in
  let t = Generator.random_tree rng Generator.default in
  let labels = Generator.alphabet Generator.default in
  let t' = Decay.perturb rng ~dz:0.0 ~labels t in
  Alcotest.(check bool) "dz=0 no change" true (Tree.equal t t')

let test_decay_ted_bounded () =
  (* decay applies Binomial(n, dz) ops, so TED is at most that count; with
     dz = 1 every node draws a change. *)
  let rng = Prng.create 6 in
  let labels = Generator.alphabet Generator.default in
  for _ = 1 to 10 do
    let t = Gen.random_tree rng 15 in
    let t' = Decay.perturb rng ~dz:0.3 ~labels t in
    Alcotest.(check bool) "ted bounded by size" true
      (Zhang_shasha.distance t t' <= Tree.size t)
  done

let test_decay_validation () =
  let t = Tree.leaf (Tsj_tree.Label.intern "x") in
  Alcotest.check_raises "dz out of range" (Invalid_argument "Decay.perturb: dz must be in [0,1]")
    (fun () -> ignore (Decay.perturb (Prng.create 0) ~dz:1.5 ~labels:Gen.default_alphabet t));
  Alcotest.check_raises "empty labels" (Invalid_argument "Decay.perturb: empty label alphabet")
    (fun () -> ignore (Decay.perturb (Prng.create 0) ~dz:0.5 ~labels:[||] t))

let test_profiles_registry () =
  Alcotest.(check int) "five profiles" 5 (List.length Profiles.all);
  Alcotest.(check bool) "find swissprot" true (Profiles.find "SwissProt" <> None);
  Alcotest.(check bool) "find redundant" true (Profiles.find "redundant" <> None);
  Alcotest.(check bool) "find unknown" true (Profiles.find "nope" = None)

let test_profiles_deterministic () =
  let a = Profiles.instantiate Profiles.sentiment ~seed:9 ~n:30 in
  let b = Profiles.instantiate Profiles.sentiment ~seed:9 ~n:30 in
  Array.iteri (fun i t -> Alcotest.(check bool) "same" true (Tree.equal t b.(i))) a;
  let c = Profiles.instantiate Profiles.sentiment ~seed:10 ~n:30 in
  Alcotest.(check bool) "different seed differs" true
    (Array.exists2 (fun x y -> not (Tree.equal x y)) a c)

let test_profiles_statistics () =
  (* Each stand-in should land near its namesake's published statistics. *)
  let check_profile profile expected_avg_size tolerance =
    let trees = Profiles.instantiate profile ~seed:3 ~n:300 in
    let sizes = Array.map (fun t -> float_of_int (Tree.size t)) trees in
    let avg = Tsj_util.Statistics.mean sizes in
    Alcotest.(check bool)
      (Printf.sprintf "%s avg size %.1f ~ %d" profile.Profiles.name avg expected_avg_size)
      true
      (abs_float (avg -. float_of_int expected_avg_size)
      <= tolerance *. float_of_int expected_avg_size)
  in
  check_profile Profiles.swissprot 62 0.15;
  check_profile Profiles.treebank 45 0.15;
  check_profile Profiles.sentiment 37 0.15;
  check_profile Profiles.synthetic 80 0.15

let test_profiles_have_similar_pairs () =
  (* The duplication model must produce a non-trivial join result —
     otherwise the benchmarks degenerate. *)
  List.iter
    (fun profile ->
      let trees = Profiles.instantiate profile ~seed:4 ~n:150 in
      let out = Tsj_core.Partsj.join ~trees ~tau:2 () in
      Alcotest.(check bool)
        (profile.Profiles.name ^ " has similar pairs")
        true
        (out.Tsj_join.Types.stats.Tsj_join.Types.n_results > 0))
    Profiles.all

let test_profiles_empty_and_zero () =
  Alcotest.(check int) "n=0" 0 (Array.length (Profiles.instantiate Profiles.synthetic ~seed:1 ~n:0));
  Alcotest.check_raises "negative n"
    (Invalid_argument "Profiles.instantiate: negative cardinality") (fun () ->
      ignore (Profiles.instantiate Profiles.synthetic ~seed:1 ~n:(-1)))

let test_describe () =
  let trees = Profiles.instantiate Profiles.synthetic ~seed:5 ~n:20 in
  let d = Profiles.describe trees in
  Alcotest.(check bool) "mentions count" true
    (String.length d > 0 && String.sub d 0 2 = "20");
  Alcotest.(check string) "empty dataset" "empty dataset" (Profiles.describe [||])

let suite =
  [
    Alcotest.test_case "capacity" `Quick test_capacity;
    Alcotest.test_case "clamp_size" `Quick test_clamp_size;
    Alcotest.test_case "generator respects caps" `Quick test_generator_respects_caps;
    Alcotest.test_case "generator size range" `Quick test_generator_size_range;
    Alcotest.test_case "generator determinism" `Quick test_generator_determinism;
    Alcotest.test_case "generator validation" `Quick test_generator_validation;
    Alcotest.test_case "generator label alphabet" `Quick test_generator_label_alphabet;
    Alcotest.test_case "mother sampling" `Quick test_mother_sampling;
    Alcotest.test_case "decay dz=0 identity" `Quick test_decay_zero_is_identity;
    Alcotest.test_case "decay TED bounded" `Quick test_decay_ted_bounded;
    Alcotest.test_case "decay validation" `Quick test_decay_validation;
    Alcotest.test_case "profiles registry" `Quick test_profiles_registry;
    Alcotest.test_case "profiles deterministic" `Quick test_profiles_deterministic;
    Alcotest.test_case "profiles statistics" `Quick test_profiles_statistics;
    Alcotest.test_case "profiles yield similar pairs" `Quick test_profiles_have_similar_pairs;
    Alcotest.test_case "profiles n=0 / n<0" `Quick test_profiles_empty_and_zero;
    Alcotest.test_case "describe" `Quick test_describe;
  ]
