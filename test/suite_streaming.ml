(* Tests for the streaming (incremental) join and parallel verification. *)

module Tree = Tsj_tree.Tree
module Prng = Tsj_util.Prng
module Edit_op = Tsj_tree.Edit_op
module Incremental = Tsj_core.Incremental
module Partsj = Tsj_core.Partsj
module Parallel = Tsj_join.Parallel
module Types = Tsj_join.Types

let clustered seed n =
  let rng = Prng.create seed in
  let acc = ref [] in
  for _ = 1 to n / 2 do
    let base = Gen.random_tree rng (3 + Prng.int rng 14) in
    acc := base :: !acc;
    let _, copy = Edit_op.random_script rng ~labels:Gen.default_alphabet 2 base in
    acc := copy :: !acc
  done;
  Array.of_list !acc

(* Feed trees through the incremental join in the given order; collect all
   pairs translated back to original indices. *)
let stream_join trees order tau =
  let inc = Incremental.create ~tau () in
  let pairs = ref [] in
  Array.iter
    (fun orig ->
      let id = Incremental.n_trees inc in
      ignore id;
      let hits = Incremental.add inc trees.(orig) in
      List.iter (fun (earlier, d) -> pairs := (earlier, orig, d) :: !pairs) hits)
    order;
  (* [earlier] is an insertion id; translate via the order array, then
     normalize pair direction. *)
  List.map
    (fun (earlier_id, orig_j, d) ->
      let i = order.(earlier_id) in
      (min i orig_j, max i orig_j, d))
    !pairs
  |> List.sort compare

let batch_triples trees tau =
  (Partsj.join ~trees ~tau ()).Types.pairs
  |> List.map (fun p -> (p.Types.i, p.Types.j, p.Types.distance))
  |> List.sort compare

let test_incremental_equals_batch_in_order () =
  let trees = clustered 31 30 in
  let order = Array.init (Array.length trees) (fun i -> i) in
  List.iter
    (fun tau ->
      Alcotest.(check (list (triple int int int)))
        (Printf.sprintf "tau=%d" tau)
        (batch_triples trees tau)
        (stream_join trees order tau))
    [ 0; 1; 2; 3 ]

let test_incremental_equals_batch_shuffled () =
  let trees = clustered 32 30 in
  let rng = Prng.create 99 in
  List.iter
    (fun tau ->
      let order = Array.init (Array.length trees) (fun i -> i) in
      Prng.shuffle rng order;
      Alcotest.(check (list (triple int int int)))
        (Printf.sprintf "tau=%d shuffled" tau)
        (batch_triples trees tau)
        (stream_join trees order tau))
    [ 1; 2; 3 ]

let test_incremental_descending_sizes () =
  (* The adversarial order for the batch algorithm's assumption. *)
  let trees = clustered 33 24 in
  let order = Array.init (Array.length trees) (fun i -> i) in
  Array.sort (fun a b -> compare (Tree.size trees.(b)) (Tree.size trees.(a))) order;
  Alcotest.(check (list (triple int int int)))
    "descending size order"
    (batch_triples trees 2)
    (stream_join trees order 2)

let test_incremental_accessors () =
  let inc = Incremental.create ~tau:1 () in
  Alcotest.(check int) "tau" 1 (Incremental.tau inc);
  Alcotest.(check int) "empty" 0 (Incremental.n_trees inc);
  let a = Gen.random_tree (Prng.create 1) 6 in
  let hits = Incremental.add inc a in
  Alcotest.(check (list (pair int int))) "first tree has no partners" [] hits;
  Alcotest.(check int) "one tree" 1 (Incremental.n_trees inc);
  Alcotest.(check bool) "tree back" true (Tree.equal a (Incremental.tree inc 0));
  Alcotest.check_raises "unknown id" (Invalid_argument "Incremental.tree: unknown id")
    (fun () -> ignore (Incremental.tree inc 1));
  let hits = Incremental.add inc a in
  Alcotest.(check (list (pair int int))) "duplicate found" [ (0, 0) ] hits;
  let verified, indexed = Incremental.stats inc in
  Alcotest.(check bool) "stats counted" true (verified >= 1 && indexed >= 0)

let test_incremental_rejects_negative () =
  Alcotest.check_raises "negative tau"
    (Invalid_argument "Incremental.create: negative threshold") (fun () ->
      ignore (Incremental.create ~tau:(-1) ()))

(* Regression for the empty-band early-exit in the probe: a stream of
   wildly disparate sizes (most probe bands empty) must produce exactly
   the same pairs as the batch join — the short-circuit can only skip
   work, never candidates. *)
let test_incremental_disparate_sizes_early_exit () =
  let rng = Prng.create 57 in
  let acc = ref [] in
  for i = 0 to 23 do
    (* sizes 3, ~30, ~60, 3, ... — adjacent arrivals never share a band *)
    let size = 3 + (i mod 3 * 27) + Prng.int rng 3 in
    acc := Gen.random_tree rng size :: !acc
  done;
  let trees = Array.of_list !acc in
  let order = Array.init (Array.length trees) (fun i -> i) in
  List.iter
    (fun tau ->
      Alcotest.(check (list (triple int int int)))
        (Printf.sprintf "tau=%d disparate sizes" tau)
        (batch_triples trees tau)
        (stream_join trees order tau))
    [ 1; 2; 3 ]

(* --- incremental query / nearest (the serving path) --- *)

let brute_force trees q tau =
  Array.to_list trees
  |> List.mapi (fun i t -> (i, Tsj_ted.Zhang_shasha.distance q t))
  |> List.filter (fun (_, d) -> d <= tau)
  |> List.sort (fun (i1, d1) (i2, d2) ->
         if d1 <> d2 then compare d1 d2 else compare i1 i2)

let test_incremental_query_matches_search () =
  let trees = clustered 41 30 in
  let tau = 2 in
  let inc = Incremental.create ~tau () in
  Array.iter (fun t -> ignore (Incremental.add inc t)) trees;
  let rng = Prng.create 5 in
  for _ = 1 to 12 do
    let q =
      if Prng.bool rng then trees.(Prng.int rng (Array.length trees))
      else Gen.random_tree rng (3 + Prng.int rng 14)
    in
    List.iter
      (fun tau' ->
        let expected = brute_force trees q tau' in
        List.iter
          (fun domains ->
            let r = Incremental.query ~domains ~tau:tau' inc q in
            Alcotest.(check bool)
              (Printf.sprintf "not degraded (tau=%d domains=%d)" tau' domains)
              false r.Incremental.degraded;
            Alcotest.(check (list (triple int int int))) "no unverified" []
              r.Incremental.unverified;
            Alcotest.(check (list (pair int int)))
              (Printf.sprintf "query = brute force (tau=%d domains=%d)" tau' domains)
              expected r.Incremental.hits)
          [ 1; 4 ])
      [ 0; 1; 2 ]
  done

let test_incremental_query_validation () =
  let inc = Incremental.create ~tau:1 () in
  let q = Gen.random_tree (Prng.create 3) 5 in
  Alcotest.check_raises "tau too big"
    (Invalid_argument "Incremental.query: tau = 2 exceeds the index threshold 1")
    (fun () -> ignore (Incremental.query ~tau:2 inc q));
  Alcotest.check_raises "negative tau"
    (Invalid_argument "Incremental.query: negative threshold") (fun () ->
      ignore (Incremental.query ~tau:(-1) inc q));
  Alcotest.check_raises "bad domains"
    (Invalid_argument "Incremental.query: domains must be >= 1") (fun () ->
      ignore (Incremental.query ~domains:0 inc q))

let test_incremental_query_degraded_sound () =
  (* An already-expired budget forces the fully degraded path: no hit may
     be invented, and every true hit must appear either in [hits] or as
     an unverified bound sandwich with lower <= d <= upper. *)
  let trees = clustered 42 30 in
  let tau = 2 in
  let inc = Incremental.create ~tau () in
  Array.iter (fun t -> ignore (Incremental.add inc t)) trees;
  let rng = Prng.create 11 in
  for _ = 1 to 8 do
    let q = trees.(Prng.int rng (Array.length trees)) in
    let budget = Tsj_join.Budget.create () in
    Tsj_join.Budget.cancel budget;
    let r = Incremental.query ~budget inc q in
    let truth = brute_force trees q tau in
    List.iter
      (fun (id, d) ->
        Alcotest.(check bool) "reported hit is true" true (List.mem_assoc id truth);
        Alcotest.(check int) "distance exact" (List.assoc id truth) d)
      r.Incremental.hits;
    List.iter
      (fun (id, d) ->
        let in_hits = List.mem_assoc id r.Incremental.hits in
        let sandwiched =
          List.exists
            (fun (i, lo, hi) -> i = id && lo <= d && d <= hi)
            r.Incremental.unverified
        in
        if not (in_hits || sandwiched) then
          Alcotest.failf "true hit %d (d=%d) lost by the degraded answer" id d)
      truth
  done

let test_incremental_nearest () =
  let trees = clustered 43 26 in
  let tau = 3 in
  let inc = Incremental.create ~tau () in
  Array.iter (fun t -> ignore (Incremental.add inc t)) trees;
  let idx = Tsj_core.Search.build ~tau trees in
  let rng = Prng.create 23 in
  for _ = 1 to 10 do
    let q = Gen.random_tree rng (3 + Prng.int rng 14) in
    List.iter
      (fun k ->
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "nearest k=%d = Search.nearest" k)
          (Tsj_core.Search.nearest ~k idx q)
          (Incremental.nearest ~k inc q))
      [ 0; 1; 3; 7 ]
  done;
  Alcotest.check_raises "negative k"
    (Invalid_argument "Incremental.nearest: negative k") (fun () ->
      ignore (Incremental.nearest ~k:(-1) inc (Gen.random_tree rng 4)))

(* --- parallel map / parallel verification --- *)

let test_parallel_map_matches_sequential () =
  let xs = Array.init 1000 (fun i -> i) in
  let f x = (x * x) + 1 in
  List.iter
    (fun domains ->
      Alcotest.(check (array int))
        (Printf.sprintf "domains=%d" domains)
        (Array.map f xs)
        (Parallel.map ~domains f xs))
    [ 1; 2; 3; 4 ]

let test_parallel_map_short_array () =
  Alcotest.(check (array int)) "short input" [| 2 |]
    (Parallel.map ~domains:4 (fun x -> x + 1) [| 1 |]);
  Alcotest.(check (array int)) "empty input" [||] (Parallel.map ~domains:4 Fun.id [||])

let test_parallel_map_validation () =
  Alcotest.check_raises "domains 0" (Invalid_argument "Parallel.map: domains must be >= 1")
    (fun () -> ignore (Parallel.map ~domains:0 Fun.id [| 1 |]))

let test_parallel_map_exception_propagates () =
  match Parallel.map ~domains:3 (fun x -> if x = 17 then failwith "boom" else x)
          (Array.init 100 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure msg -> Alcotest.(check string) "propagated" "boom" msg

let test_parallel_verification_same_results () =
  let trees = clustered 34 40 in
  let seq = Partsj.join ~trees ~tau:2 () in
  List.iter
    (fun domains ->
      let par = Partsj.join ~domains ~trees ~tau:2 () in
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d equals sequential" domains)
        true
        (Types.equal_results seq par))
    [ 2; 4 ];
  Alcotest.(check bool) "recommended domains positive" true
    (Parallel.recommended_domains () >= 1)

let suite =
  [
    Alcotest.test_case "incremental = batch (insertion order)" `Quick
      test_incremental_equals_batch_in_order;
    Alcotest.test_case "incremental = batch (shuffled)" `Quick
      test_incremental_equals_batch_shuffled;
    Alcotest.test_case "incremental = batch (descending sizes)" `Quick
      test_incremental_descending_sizes;
    Alcotest.test_case "incremental accessors" `Quick test_incremental_accessors;
    Alcotest.test_case "incremental validation" `Quick test_incremental_rejects_negative;
    Alcotest.test_case "incremental disparate sizes (early exit)" `Quick
      test_incremental_disparate_sizes_early_exit;
    Alcotest.test_case "incremental query = brute force" `Quick
      test_incremental_query_matches_search;
    Alcotest.test_case "incremental query validation" `Quick
      test_incremental_query_validation;
    Alcotest.test_case "incremental query degraded soundness" `Quick
      test_incremental_query_degraded_sound;
    Alcotest.test_case "incremental nearest = search nearest" `Quick
      test_incremental_nearest;
    Alcotest.test_case "parallel map = sequential" `Quick test_parallel_map_matches_sequential;
    Alcotest.test_case "parallel map short/empty" `Quick test_parallel_map_short_array;
    Alcotest.test_case "parallel map validation" `Quick test_parallel_map_validation;
    Alcotest.test_case "parallel map exceptions" `Quick test_parallel_map_exception_propagates;
    Alcotest.test_case "parallel verification = sequential" `Quick
      test_parallel_verification_same_results;
  ]
