let () =
  Alcotest.run "treejoin"
    [
      ("util", Suite_util.suite);
      ("tree", Suite_tree.suite);
      ("ted", Suite_ted.suite);
      ("partition", Suite_partition.suite);
      ("join", Suite_join.suite);
      ("xml", Suite_xml.suite);
      ("datagen", Suite_datagen.suite);
      ("harness", Suite_harness.suite);
      ("extensions", Suite_extensions.suite);
      ("measures", Suite_measures.suite);
      ("streaming", Suite_streaming.suite);
      ("cascade", Suite_cascade.suite);
      ("dag", Suite_dag.suite);
      ("parallel", Suite_parallel.suite);
      ("faults", Suite_faults.suite);
      ("formats", Suite_formats.suite);
      ("cli", Suite_cli.suite);
      ("server", Suite_server.suite);
      ("router", Suite_router.suite);
    ]
