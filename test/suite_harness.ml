module Methods = Tsj_harness.Methods
module Table = Tsj_harness.Table
module Types = Tsj_join.Types
module Prng = Tsj_util.Prng
module Edit_op = Tsj_tree.Edit_op

let test_method_names_roundtrip () =
  List.iter
    (fun m ->
      match Methods.of_name (Methods.name m) with
      | Some m' -> Alcotest.(check bool) "roundtrip" true (m = m')
      | None -> Alcotest.failf "name %s not found" (Methods.name m))
    Methods.all;
  Alcotest.(check bool) "case insensitive" true (Methods.of_name "prt" = Some Methods.Prt);
  Alcotest.(check bool) "unknown" true (Methods.of_name "bogus" = None)

let test_paper_methods () =
  Alcotest.(check (list string)) "paper trio" [ "STR"; "SET"; "PRT" ]
    (List.map Methods.name Methods.paper_methods)

let small_dataset () =
  let rng = Prng.create 77 in
  let acc = ref [] in
  for _ = 1 to 10 do
    let base = Gen.random_tree rng (5 + Prng.int rng 10) in
    acc := base :: !acc;
    let _, copy = Edit_op.random_script rng ~labels:Gen.default_alphabet 1 base in
    acc := copy :: !acc
  done;
  Array.of_list !acc

let test_all_methods_run_and_agree () =
  let trees = small_dataset () in
  let truth = Methods.run Methods.Nl ~trees ~tau:2 in
  List.iter
    (fun m ->
      let out = Methods.run m ~trees ~tau:2 in
      (* Paper_rank windows may (rarely) miss pairs; everything else must
         be exact. *)
      if m = Methods.Prt_paper_index then
        Alcotest.(check bool)
          (Methods.name m ^ " subset of truth")
          true
          (List.for_all
             (fun p -> List.mem p truth.Types.pairs)
             (Methods.run m ~trees ~tau:2).Types.pairs)
      else
        Alcotest.(check bool) (Methods.name m ^ " exact") true (Types.equal_results truth out))
    Methods.all

let test_table_rendering () =
  let buf_path = Filename.temp_file "tsj" ".tbl" in
  let oc = open_out buf_path in
  Table.print ~out:oc ~header:[ "name"; "value" ]
    ~align:[ Table.Left; Table.Right ]
    [ [ "alpha"; "1" ]; [ "b"; "22,222" ] ];
  close_out oc;
  let contents = In_channel.with_open_text buf_path In_channel.input_all in
  Sys.remove buf_path;
  Alcotest.(check bool) "has header" true
    (String.length contents > 0
    &&
    let lines = String.split_on_char '\n' contents in
    List.length lines >= 4
    && String.trim (List.nth lines 0) <> ""
    && String.for_all (fun c -> c = '-' || c = ' ') (List.nth lines 1))

let test_table_arity_check () =
  Alcotest.check_raises "row arity" (Invalid_argument "Table.print: row arity differs from header")
    (fun () ->
      Table.print ~header:[ "a"; "b" ] ~align:[ Table.Left; Table.Right ] [ [ "x" ] ])

let test_table_formatters () =
  Alcotest.(check string) "seconds ms" "45ms" (Table.seconds 0.045);
  Alcotest.(check string) "seconds s" "1.20s" (Table.seconds 1.2);
  Alcotest.(check string) "seconds 10s+" "12.0s" (Table.seconds 12.04);
  Alcotest.(check string) "zero" "0" (Table.seconds 0.0);
  Alcotest.(check string) "count" "1,234,567" (Table.count 1234567);
  Alcotest.(check string) "count small" "42" (Table.count 42);
  Alcotest.(check string) "count negative" "-1,000" (Table.count (-1000))

let test_experiments_smoke () =
  (* A tiny end-to-end run of every experiment driver: must not raise and
     must produce the figure headings. *)
  let path = Filename.temp_file "tsj" ".out" in
  let oc = open_out path in
  let config =
    {
      Tsj_harness.Experiments.default_config with
      Tsj_harness.Experiments.scale = 0.02;
      seed = 1;
      taus = [ 1; 2 ];
      out = oc;
    }
  in
  Tsj_harness.Experiments.fig10_11 config;
  Tsj_harness.Experiments.fig12_13 config;
  Tsj_harness.Experiments.ablation config;
  (* The perf smoke run also asserts, inside [perf] itself, that the
     cascade counters sum to the candidate count on every run, that the
     counters and results are identical across domain counts, and that
     the cascade leaves the join output bit-identical — it raises
     otherwise. *)
  let json = Filename.temp_file "tsj" ".json" in
  Tsj_harness.Experiments.perf
    { config with Tsj_harness.Experiments.domains = 2; bench_json = json };
  let json_contents = In_channel.with_open_text json In_channel.input_all in
  Sys.remove json;
  close_out oc;
  let contents = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length contents && (String.sub contents i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "fig10 heading" true (contains "Figures 10 & 11");
  Alcotest.(check bool) "fig12 heading" true (contains "Figures 12 & 13");
  Alcotest.(check bool) "ablation heading" true (contains "Ablations");
  Alcotest.(check bool) "REL column" true (contains "REL");
  Alcotest.(check bool) "all datasets present" true
    (contains "swissprot" && contains "treebank" && contains "sentiment"
   && contains "synthetic");
  Alcotest.(check bool) "perf prints the cascade speedup" true
    (contains "verify speedup");
  let json_has sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length json_contents
      && (String.sub json_contents i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "bench json has cascade fields" true
    (json_has "\"verify_speedup_cascade\""
    && json_has "\"cascade_lossless\": true"
    && json_has "\"identical_across_domains\": true"
    && json_has "\"kernel_verified\"")

let test_sweep_rejects_negative_tau () =
  Alcotest.check_raises "negative" (Invalid_argument "Sweep.windowed_join: negative threshold")
    (fun () ->
      ignore
        (Tsj_join.Sweep.windowed_join ~trees:[||] ~tau:(-1)
           ~setup:(fun _ -> ())
           ~filter:(fun () _ _ -> true)
           ()))

let test_sweep_window_semantics () =
  (* trees of sizes 1, 3, 6: with tau=2 only (1,3) qualifies. *)
  let t n = Gen.random_tree (Prng.create n) n in
  let trees = [| t 1; t 3; t 6 |] in
  let seen = ref [] in
  let _ =
    Tsj_join.Sweep.windowed_join ~trees ~tau:2
      ~setup:(fun _ -> ())
      ~filter:(fun () i j ->
        seen := (min i j, max i j) :: !seen;
        false)
      ()
  in
  Alcotest.(check (list (pair int int))) "window pairs" [ (0, 1) ] (List.sort compare !seen)

let test_nested_loop_rel_count () =
  let trees = small_dataset () in
  let out = Tsj_join.Nested_loop.join ~trees ~tau:1 () in
  Alcotest.(check int) "rel_count consistent"
    out.Types.stats.Types.n_results
    (Tsj_join.Nested_loop.rel_count ~trees ~tau:1)

let test_types_helpers () =
  let p1 = { Types.i = 0; j = 1; distance = 1 } in
  let p2 = { Types.i = 2; j = 3; distance = 0 } in
  let stats =
    {
      Types.n_trees = 4;
      tau = 1;
      n_window_pairs = 6;
      n_candidates = 2;
      n_results = 2;
      candidate_time_s = 0.5;
      verify_time_s = 0.25;
      cascade = { Types.empty_cascade with Types.kernel_verified = 2 };
    }
  in
  let out = { Types.pairs = [ p2; p1 ]; quarantined = []; stats } in
  Alcotest.(check (float 1e-9)) "total time" 0.75 (Types.total_time_s stats);
  Alcotest.(check (list (pair int int))) "pair_set sorted" [ (0, 1); (2, 3) ]
    (Types.pair_set out);
  Alcotest.(check bool) "equal_results ignores order" true
    (Types.equal_results out { out with Types.pairs = [ p1; p2 ] });
  Alcotest.(check bool) "distance matters" false
    (Types.equal_results out
       { out with Types.pairs = [ { p1 with Types.distance = 0 }; p2 ] })

let suite =
  [
    Alcotest.test_case "method names roundtrip" `Quick test_method_names_roundtrip;
    Alcotest.test_case "paper methods" `Quick test_paper_methods;
    Alcotest.test_case "all methods run and agree" `Quick test_all_methods_run_and_agree;
    Alcotest.test_case "table rendering" `Quick test_table_rendering;
    Alcotest.test_case "table arity check" `Quick test_table_arity_check;
    Alcotest.test_case "table formatters" `Quick test_table_formatters;
    Alcotest.test_case "experiment drivers smoke" `Slow test_experiments_smoke;
    Alcotest.test_case "sweep rejects negative tau" `Quick test_sweep_rejects_negative_tau;
    Alcotest.test_case "sweep window semantics" `Quick test_sweep_window_semantics;
    Alcotest.test_case "nested loop rel_count" `Quick test_nested_loop_rel_count;
    Alcotest.test_case "types helpers" `Quick test_types_helpers;
  ]
