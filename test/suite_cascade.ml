(* Tests for the verification filter cascade: the compiled bound forms,
   the greedy-mapping upper bound, the staged cascade's outcome soundness
   and the end-to-end guarantee that the cascaded PartSJ join returns the
   same pairs and distances as the uncascaded join and the nested-loop
   ground truth. *)

module Tree = Tsj_tree.Tree
module Bounds = Tsj_ted.Bounds
module Zhang_shasha = Tsj_ted.Zhang_shasha
module Constrained = Tsj_ted.Constrained
module Partsj = Tsj_core.Partsj
module Nested_loop = Tsj_join.Nested_loop
module Types = Tsj_join.Types
module Prng = Tsj_util.Prng

(* --- compiled forms agree with the per-pair entry points --- *)

let prop_compiled_matches_per_pair =
  Gen.qtest ~count:150 "compiled bounds = per-pair bounds"
    (Gen.arb_tree_pair ~max_size:12 ()) (fun (a, b) ->
      let ca = Bounds.Compiled.of_tree a and cb = Bounds.Compiled.of_tree b in
      Bounds.Compiled.size_bound ca cb = Bounds.size a b
      && Bounds.Compiled.label_bound ca cb = Bounds.label_histogram a b
      && Bounds.Compiled.degree_bound ca cb = Bounds.degree_histogram a b
      && Bounds.Compiled.traversal_bound ca cb = Bounds.traversal a b
      && Bounds.Compiled.euler_bound ca cb = Bounds.euler_string a b
      && Bounds.Compiled.best ca cb = Bounds.best a b
      && Bounds.Compiled.upper ca cb = Bounds.upper a b)

let prop_compiled_lower_bounds =
  Gen.qtest ~count:150 "every compiled lower bound <= TED"
    (Gen.arb_tree_pair ~max_size:12 ()) (fun (a, b) ->
      let ca = Bounds.Compiled.of_tree a and cb = Bounds.Compiled.of_tree b in
      let d = Zhang_shasha.distance a b in
      List.for_all
        (fun (name, v) ->
          if v > d then
            QCheck.Test.fail_reportf "compiled %s = %d > TED = %d on %s / %s"
              name v d (Gen.pp_tree a) (Gen.pp_tree b)
          else true)
        [
          ("size", Bounds.Compiled.size_bound ca cb);
          ("labels", Bounds.Compiled.label_bound ca cb);
          ("degrees", Bounds.Compiled.degree_bound ca cb);
          ("traversal", Bounds.Compiled.traversal_bound ca cb);
          ("euler", Bounds.Compiled.euler_bound ca cb);
          ("best", Bounds.Compiled.best ca cb);
        ])

(* --- greedy-mapping upper bound --- *)

let prop_upper_bounds_ted =
  Gen.qtest ~count:200 "TED <= constrained <= greedy upper"
    (Gen.arb_tree_pair ~max_size:12 ()) (fun (a, b) ->
      let ub = Bounds.upper a b in
      let ted = Zhang_shasha.distance a b in
      let ced = Constrained.distance a b in
      if not (ted <= ced && ced <= ub) then
        QCheck.Test.fail_reportf "TED %d / CED %d / upper %d on %s / %s" ted ced
          ub (Gen.pp_tree a) (Gen.pp_tree b)
      else true)

let test_upper_zero_on_equal () =
  let t = Tsj_tree.Bracket.of_string_exn "{a{b{c}}{d}{e{f}}}" in
  Alcotest.(check int) "upper t t = 0" 0 (Bounds.upper t t);
  let c = Bounds.Compiled.of_tree t in
  Alcotest.(check int) "compiled upper t t = 0" 0 (Bounds.Compiled.upper c c)

(* --- cascade outcome soundness --- *)

let prop_cascade_sound =
  Gen.qtest ~count:200 "cascade outcomes are sound for tau in 0..5"
    (Gen.arb_tree_pair ~max_size:12 ()) (fun (a, b) ->
      let ca = Bounds.Compiled.of_tree a and cb = Bounds.Compiled.of_tree b in
      let exact = Zhang_shasha.distance a b in
      let check tau =
        match Bounds.Compiled.cascade ~tau ca cb with
        | Bounds.Compiled.Pruned _ ->
            if exact <= tau then
              QCheck.Test.fail_reportf
                "tau=%d pruned but TED = %d on %s / %s" tau exact
                (Gen.pp_tree a) (Gen.pp_tree b)
            else true
        | Bounds.Compiled.Accept d ->
            if d <> exact || d > tau then
              QCheck.Test.fail_reportf
                "tau=%d accepted with %d but TED = %d on %s / %s" tau d exact
                (Gen.pp_tree a) (Gen.pp_tree b)
            else true
        | Bounds.Compiled.Verify { band } ->
            (* The banded kernel at the cascade's band must decide the
               pair exactly like the full kernel at tau would: the band
               only shrinks below tau when the upper bound certifies
               TED <= band + 1. *)
            let bd = Zhang_shasha.bounded_distance a b band in
            if band < 0 || band > tau then
              QCheck.Test.fail_reportf "tau=%d band=%d out of range" tau band
            else if exact <= tau && bd <> exact then
              QCheck.Test.fail_reportf
                "tau=%d band=%d kernel gives %d but TED = %d on %s / %s" tau
                band bd exact (Gen.pp_tree a) (Gen.pp_tree b)
            else if exact > tau && bd <= tau then
              QCheck.Test.fail_reportf
                "tau=%d band=%d kernel admits %d but TED = %d on %s / %s" tau
                band bd exact (Gen.pp_tree a) (Gen.pp_tree b)
            else true
      in
      List.for_all check [ 0; 1; 2; 3; 4; 5 ])

let test_cascade_negative_tau () =
  let c = Bounds.Compiled.of_tree (Tsj_tree.Bracket.of_string_exn "{a}") in
  Alcotest.check_raises "negative"
    (Invalid_argument "Bounds.Compiled.cascade: negative threshold") (fun () ->
      ignore (Bounds.Compiled.cascade ~tau:(-1) c c))

let test_cascade_identical_trees () =
  (* Identical trees close the sandwich at 0: accepted without a kernel. *)
  let t = Tsj_tree.Bracket.of_string_exn "{a{b}{c{d}}}" in
  let c = Bounds.Compiled.of_tree t in
  match Bounds.Compiled.cascade ~tau:2 c c with
  | Bounds.Compiled.Accept 0 -> ()
  | _ -> Alcotest.fail "expected Accept 0 on identical trees"

(* --- end-to-end: cascaded join = uncascaded join = ground truth --- *)

let forest_of_seed seed n max_size =
  let rng = Prng.create seed in
  Array.of_list (Gen.random_forest rng ~n ~max_size)

let arb_forest =
  QCheck.make
    ~print:(fun (seed, n, max_size) ->
      Printf.sprintf "seed=%d n=%d max_size=%d" seed n max_size)
    (fun st ->
      ( Random.State.int st 0x3FFFFFFF,
        2 + Random.State.int st 14,
        4 + Random.State.int st 12 ))

let prop_cascade_join_equals_truth (seed, n, max_size) =
  let trees = forest_of_seed seed n max_size in
  let tau = 1 + (seed mod 3) in
  let truth = Nested_loop.join ~trees ~tau () in
  let off = Partsj.join ~cascade:false ~trees ~tau () in
  let on_ = Partsj.join ~cascade:true ~trees ~tau () in
  if not (Types.equal_results truth off) then
    QCheck.Test.fail_reportf "cascade:false differs from nested loop (seed=%d)"
      seed
  else if not (Types.equal_results truth on_) then
    QCheck.Test.fail_reportf "cascade:true differs from nested loop (seed=%d)"
      seed
  else if off.Types.stats.Types.n_candidates <> on_.Types.stats.Types.n_candidates
  then
    QCheck.Test.fail_reportf "cascade changed the candidate count (seed=%d)"
      seed
  else if
    Types.cascade_total on_.Types.stats.Types.cascade
    <> on_.Types.stats.Types.n_candidates
  then
    QCheck.Test.fail_reportf
      "cascade counters do not partition the candidates (seed=%d)" seed
  else true

let prop_cascade_join_constrained_metric (seed, n, max_size) =
  (* The greedy script is a valid constrained script, so the cascade stays
     lossless when the verifier metric is the constrained edit distance. *)
  let trees = forest_of_seed seed n max_size in
  let tau = 1 + (seed mod 3) in
  let off = Partsj.join ~metric:Tsj_join.Sweep.Constrained ~cascade:false ~trees ~tau () in
  let on_ = Partsj.join ~metric:Tsj_join.Sweep.Constrained ~cascade:true ~trees ~tau () in
  Types.equal_results off on_

let test_cascade_counters_clustered () =
  (* Near-duplicate-heavy forest: all six counters should be exercised and
     must partition the candidate set exactly. *)
  let rng = Prng.create 7171 in
  let acc = ref [] in
  for _ = 1 to 30 do
    let base = Gen.random_tree rng (4 + Prng.int rng 12) in
    acc := base :: !acc;
    let _, copy =
      Tsj_tree.Edit_op.random_script rng ~labels:Gen.default_alphabet 2 base
    in
    acc := copy :: !acc
  done;
  let trees = Array.of_list !acc in
  List.iter
    (fun tau ->
      let out = Partsj.join ~trees ~tau () in
      let s = out.Types.stats in
      Alcotest.(check int)
        (Printf.sprintf "tau=%d counters partition candidates" tau)
        s.Types.n_candidates
        (Types.cascade_total s.Types.cascade);
      (* Early accepts + kernel runs can only admit result pairs, and every
         result came from one of the two. *)
      let c = s.Types.cascade in
      Alcotest.(check bool)
        (Printf.sprintf "tau=%d results <= early + kernel" tau)
        true
        (s.Types.n_results <= c.Types.early_accepted + c.Types.kernel_verified))
    [ 0; 1; 2; 3 ]

let suite =
  [
    prop_compiled_matches_per_pair;
    prop_compiled_lower_bounds;
    prop_upper_bounds_ted;
    Alcotest.test_case "upper zero on equal" `Quick test_upper_zero_on_equal;
    prop_cascade_sound;
    Alcotest.test_case "cascade negative tau" `Quick test_cascade_negative_tau;
    Alcotest.test_case "cascade identical trees" `Quick test_cascade_identical_trees;
    Gen.qtest ~count:25 "cascaded join = uncascaded = nested loop" arb_forest
      prop_cascade_join_equals_truth;
    Gen.qtest ~count:15 "cascade lossless under constrained metric" arb_forest
      prop_cascade_join_constrained_metric;
    Alcotest.test_case "cascade counters (clustered)" `Quick
      test_cascade_counters_clustered;
  ]
