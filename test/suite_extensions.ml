(* Tests for the extension features: optimal edit mappings and the
   persistent similarity-search index / non-self join. *)

module Tree = Tsj_tree.Tree
module Bracket = Tsj_tree.Bracket
module Traversal = Tsj_tree.Traversal
module Prng = Tsj_util.Prng
module Edit_op = Tsj_tree.Edit_op
module Mapping = Tsj_ted.Mapping
module Zhang_shasha = Tsj_ted.Zhang_shasha
module Search = Tsj_core.Search
module Types = Tsj_join.Types

let t s = Bracket.of_string_exn s

(* --- mappings --- *)

let check_valid_mapping t1 t2 (m : Mapping.t) =
  let n1 = Tree.size t1 and n2 = Tree.size t2 in
  (* every node appears exactly once on each side *)
  let seen1 = Array.make n1 0 and seen2 = Array.make n2 0 in
  List.iter
    (fun op ->
      match op with
      | Mapping.Match (i, j) | Mapping.Rename (i, j) ->
        seen1.(i) <- seen1.(i) + 1;
        seen2.(j) <- seen2.(j) + 1
      | Mapping.Delete i -> seen1.(i) <- seen1.(i) + 1
      | Mapping.Insert j -> seen2.(j) <- seen2.(j) + 1)
    m.Mapping.ops;
  Array.iteri (fun i c -> if c <> 1 then Alcotest.failf "node %d of t1 appears %d times" i c) seen1;
  Array.iteri (fun j c -> if c <> 1 then Alcotest.failf "node %d of t2 appears %d times" j c) seen2;
  (* match/rename labels consistent *)
  let lab1 = Traversal.postorder_labels t1 and lab2 = Traversal.postorder_labels t2 in
  List.iter
    (fun op ->
      match op with
      | Mapping.Match (i, j) ->
        if lab1.(i) <> lab2.(j) then Alcotest.fail "Match with different labels"
      | Mapping.Rename (i, j) ->
        if lab1.(i) = lab2.(j) then Alcotest.fail "Rename with equal labels"
      | Mapping.Delete _ | Mapping.Insert _ -> ())
    m.Mapping.ops;
  (* the mapping is order- and ancestor-preserving (the TED mapping
     conditions): for mapped pairs, postorder order agrees in both trees
     and the ancestor relation is preserved.  Ancestorship in postorder
     terms: i1 is an ancestor of i2 iff lld(i1) <= i2 < i1. *)
  let p1 = Tsj_tree.Postorder.of_tree t1 and p2 = Tsj_tree.Postorder.of_tree t2 in
  let ancestor (p : Tsj_tree.Postorder.t) a b =
    (* is a an ancestor of b? *)
    a > b && p.Tsj_tree.Postorder.lld.(a) <= b
  in
  let pairs = Mapping.mapped_pairs m in
  List.iter
    (fun (i1, j1) ->
      List.iter
        (fun (i2, j2) ->
          if i1 <> i2 then begin
            if i1 < i2 && j1 >= j2 then Alcotest.fail "order not preserved";
            if ancestor p1 i1 i2 <> ancestor p2 j1 j2 then
              Alcotest.fail "ancestor relation not preserved"
          end)
        pairs)
    pairs

let test_mapping_identical () =
  let a = t "{a{b{c}}{d}}" in
  let m = Mapping.compute a a in
  Alcotest.(check int) "cost 0" 0 m.Mapping.cost;
  Alcotest.(check int) "all matched" 4 (List.length (Mapping.mapped_pairs m));
  check_valid_mapping a a m

let test_mapping_rename () =
  let a = t "{a{b}}" and b = t "{a{z}}" in
  let m = Mapping.compute a b in
  Alcotest.(check int) "cost 1" 1 m.Mapping.cost;
  check_valid_mapping a b m;
  let renames =
    List.filter (function Mapping.Rename _ -> true | _ -> false) m.Mapping.ops
  in
  Alcotest.(check int) "one rename" 1 (List.length renames)

let test_mapping_empty_like () =
  let single = t "{a}" in
  let big = t "{a{b}{c}{d}}" in
  let m = Mapping.compute single big in
  Alcotest.(check int) "cost 3" 3 m.Mapping.cost;
  check_valid_mapping single big m

let test_mapping_zs_example () =
  let t1 = t "{f{d{a}{c{b}}}{e}}" in
  let t2 = t "{f{c{d{a}{b}}}{e}}" in
  let m = Mapping.compute t1 t2 in
  Alcotest.(check int) "cost = TED = 2" 2 m.Mapping.cost;
  check_valid_mapping t1 t2 m

let prop_mapping_cost_equals_ted =
  Gen.qtest ~count:150 "mapping cost = TED" (Gen.arb_tree_pair ~max_size:12 ())
    (fun (a, b) ->
      let m = Mapping.compute a b in
      m.Mapping.cost = Zhang_shasha.distance a b)

let prop_mapping_valid =
  Gen.qtest ~count:100 "mapping is a valid TED mapping" (Gen.arb_tree_pair ~max_size:10 ())
    (fun (a, b) ->
      check_valid_mapping a b (Mapping.compute a b);
      true)

let test_mapping_pp () =
  let a = t "{a{b}}" and b = t "{a{z}}" in
  let s = Format.asprintf "%a" (Mapping.pp ~source:a ~target:b) (Mapping.compute a b) in
  Alcotest.(check bool) "mentions cost" true (String.length s > 0)

(* --- search index --- *)

let collection seed n =
  let rng = Prng.create seed in
  let acc = ref [] in
  for _ = 1 to n / 2 do
    let base = Gen.random_tree rng (4 + Prng.int rng 12) in
    acc := base :: !acc;
    let _, copy = Edit_op.random_script rng ~labels:Gen.default_alphabet 1 base in
    acc := copy :: !acc
  done;
  Array.of_list !acc

let brute_force_query trees q tau =
  let res = ref [] in
  Array.iteri
    (fun i t ->
      let d = Zhang_shasha.distance q t in
      if d <= tau then res := (i, d) :: !res)
    trees;
  List.sort
    (fun (i1, d1) (i2, d2) -> if d1 <> d2 then compare d1 d2 else compare i1 i2)
    (List.rev !res)

let test_search_query_matches_brute_force () =
  let trees = collection 3 40 in
  let idx = Search.build ~tau:2 trees in
  Alcotest.(check int) "n_trees" 40 (Search.n_trees idx);
  Alcotest.(check int) "tau" 2 (Search.tau idx);
  let rng = Prng.create 9 in
  for _ = 1 to 15 do
    (* queries: both members of the collection and fresh trees *)
    let q =
      if Prng.bool rng then trees.(Prng.int rng (Array.length trees))
      else Gen.random_tree rng (4 + Prng.int rng 12)
    in
    Alcotest.(check (list (pair int int))) "query = brute force"
      (brute_force_query trees q 2) (Search.query idx q)
  done

let test_search_smaller_tau () =
  let trees = collection 5 30 in
  let idx = Search.build ~tau:3 trees in
  let rng = Prng.create 21 in
  for _ = 1 to 10 do
    let q = Gen.random_tree rng (4 + Prng.int rng 12) in
    List.iter
      (fun tau ->
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "tau=%d under tau=3 index" tau)
          (brute_force_query trees q tau)
          (Search.query ~tau idx q))
      [ 0; 1; 2; 3 ]
  done

let test_search_tau_too_big () =
  let idx = Search.build ~tau:1 (collection 1 4) in
  Alcotest.check_raises "tau exceeds index"
    (Invalid_argument "Search.query: tau = 2 exceeds the index threshold 1") (fun () ->
      ignore (Search.query ~tau:2 idx (t "{a}")))

let test_search_empty_collection () =
  let idx = Search.build ~tau:2 [||] in
  Alcotest.(check (list (pair int int))) "no results" [] (Search.query idx (t "{a{b}}"))

let test_join_with_non_self () =
  let left = collection 7 20 in
  let right = collection 8 14 in
  let idx = Search.build ~tau:2 left in
  let out = Search.join_with idx right in
  (* brute force cross join *)
  let expected = ref [] in
  Array.iteri
    (fun j q ->
      Array.iteri
        (fun i tl ->
          let d = Zhang_shasha.distance tl q in
          if d <= 2 then expected := (i, j, d) :: !expected)
        left)
    right;
  let got = List.map (fun p -> (p.Types.i, p.Types.j, p.Types.distance)) out.Types.pairs in
  Alcotest.(check (list (triple int int int)))
    "non-self join = brute force"
    (List.sort compare !expected) (List.sort compare got);
  Alcotest.(check bool) "candidates counted" true
    (out.Types.stats.Types.n_candidates >= out.Types.stats.Types.n_results)

let test_search_save_load () =
  (* [Search.load] is strict about duplicate records, so round-trip a
     duplicate-free collection (the 1-edit copies in [collection] can
     occasionally undo themselves into exact duplicates) *)
  let trees =
    let seen = Hashtbl.create 32 in
    collection 13 24 |> Array.to_list
    |> List.filter (fun t ->
           let key = Tsj_tree.Bracket.to_string t in
           if Hashtbl.mem seen key then false
           else begin
             Hashtbl.add seen key ();
             true
           end)
    |> Array.of_list
  in
  let idx = Search.build ~tau:2 trees in
  let path = Filename.temp_file "tsj" ".idx" in
  Search.save idx path;
  (match Search.load path with
  | Error e -> Alcotest.fail e
  | Ok idx' ->
    Alcotest.(check int) "tau restored" 2 (Search.tau idx');
    Alcotest.(check int) "trees restored" (Array.length trees) (Search.n_trees idx');
    let rng = Prng.create 2 in
    for _ = 1 to 8 do
      let q = Gen.random_tree rng (4 + Prng.int rng 12) in
      Alcotest.(check (list (pair int int))) "same answers"
        (Search.query idx q) (Search.query idx' q)
    done);
  Sys.remove path;
  (* corrupt / foreign files are rejected gracefully *)
  let bogus = Filename.temp_file "tsj" ".idx" in
  Out_channel.with_open_text bogus (fun oc -> output_string oc "not an index\n");
  (match Search.load bogus with
  | Ok _ -> Alcotest.fail "expected load failure"
  | Error _ -> ());
  Sys.remove bogus;
  match Search.load "/nonexistent/definitely/missing" with
  | Ok _ -> Alcotest.fail "expected missing-file failure"
  | Error _ -> ()

(* Strict collection parsing: every rejection names the offending file
   line, in the same "line L[, column C]" convention as the lenient
   bracket parser. *)
let test_search_load_located_errors () =
  let write lines =
    let p = Filename.temp_file "tsj" ".idx" in
    Out_channel.with_open_text p (fun oc ->
        List.iter
          (fun l ->
            output_string oc l;
            output_char oc '\n')
          lines);
    p
  in
  let contains msg sub =
    let n = String.length sub in
    let rec scan i =
      i + n <= String.length msg && (String.sub msg i n = sub || scan (i + 1))
    in
    scan 0
  in
  let expect_err sub lines =
    let p = write lines in
    (match Search.load p with
    | Ok _ -> Alcotest.failf "expected rejection mentioning %S" sub
    | Error msg ->
      if not (contains msg sub) then
        Alcotest.failf "error %S does not mention %S" msg sub);
    Sys.remove p
  in
  let header = "# tsj-search-index v1" in
  expect_err "line 2: negative threshold tau = -3" [ header; "# tau -3"; "{a}" ];
  expect_err "line 2: corrupt tau header \"x\"" [ header; "# tau x"; "{a}" ];
  expect_err "line 2: corrupt tau header" [ header; "# tau" ];
  expect_err "line 4: empty record" [ header; "# tau 2"; "{a}"; ""; "{b}" ];
  expect_err "line 4: duplicate record (identical to line 3)"
    [ header; "# tau 2"; "{a{b}}"; "{a{b}}" ];
  expect_err "line 3, column" [ header; "# tau 2"; "{a{b}" ];
  (* comments in the body are fine; the line accounting must still point
     at the real file line *)
  expect_err "line 5: duplicate record (identical to line 3)"
    [ header; "# tau 2"; "{a{b}}"; "# interlude"; "{a{b}}" ];
  (* the lenient reader admits duplicates (server snapshots may hold
     client-inserted repeats) but keeps every other check *)
  let p = write [ header; "# tau 2"; "{a{b}}"; "{a{b}}" ] in
  (match Search.read_collection ~allow_duplicates:true p with
  | Error e -> Alcotest.fail e
  | Ok (tau, trees) ->
    Alcotest.(check int) "tau kept" 2 tau;
    Alcotest.(check int) "both records kept" 2 (Array.length trees));
  Sys.remove p;
  (* a well-formed file with comments round-trips *)
  let p = write [ header; "# tau 1"; "{a}"; "# note"; "{b}" ] in
  (match Search.load p with
  | Error e -> Alcotest.fail e
  | Ok idx ->
    Alcotest.(check int) "trees loaded" 2 (Search.n_trees idx);
    Alcotest.(check int) "tau loaded" 1 (Search.tau idx));
  Sys.remove p

let test_join_with_disjoint_sizes () =
  (* All probe trees are far bigger than indexed ones: zero candidates. *)
  let left = [| t "{a}"; t "{b{c}}" |] in
  let right = [| Gen.random_tree (Prng.create 2) 30 |] in
  let idx = Search.build ~tau:2 left in
  let out = Search.join_with idx right in
  Alcotest.(check int) "no results" 0 out.Types.stats.Types.n_results;
  Alcotest.(check int) "no window pairs" 0 out.Types.stats.Types.n_window_pairs

let suite =
  [
    Alcotest.test_case "mapping identical" `Quick test_mapping_identical;
    Alcotest.test_case "mapping rename" `Quick test_mapping_rename;
    Alcotest.test_case "mapping grow" `Quick test_mapping_empty_like;
    Alcotest.test_case "mapping zs example" `Quick test_mapping_zs_example;
    prop_mapping_cost_equals_ted;
    prop_mapping_valid;
    Alcotest.test_case "mapping pp" `Quick test_mapping_pp;
    Alcotest.test_case "search = brute force" `Quick test_search_query_matches_brute_force;
    Alcotest.test_case "search with smaller tau" `Quick test_search_smaller_tau;
    Alcotest.test_case "search tau too big" `Quick test_search_tau_too_big;
    Alcotest.test_case "search empty collection" `Quick test_search_empty_collection;
    Alcotest.test_case "search save/load" `Quick test_search_save_load;
    Alcotest.test_case "search load located errors" `Quick test_search_load_located_errors;
    Alcotest.test_case "non-self join = brute force" `Quick test_join_with_non_self;
    Alcotest.test_case "non-self join disjoint sizes" `Quick test_join_with_disjoint_sizes;
  ]
