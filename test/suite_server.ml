(* Tests for the similarity-search service: protocol, journaled store,
   kill-and-restart crash safety, the socket server (admission control,
   per-connection isolation, drain) and the retrying client. *)

module Tree = Tsj_tree.Tree
module Bracket = Tsj_tree.Bracket
module Prng = Tsj_util.Prng
module Fault = Tsj_util.Fault_inject
module Protocol = Tsj_server.Protocol
module Store = Tsj_server.Store
module Server = Tsj_server.Server
module Client = Tsj_server.Client
module Faults = Tsj_harness.Faults
module Incremental = Tsj_core.Incremental

let t s = Bracket.of_string_exn s

let ok_or_fail = function Ok v -> v | Error msg -> Alcotest.fail msg

(* --- protocol --- *)

let test_addr_parse () =
  let check s expected =
    match (Protocol.addr_of_string s, expected) with
    | Ok a, Some e ->
      Alcotest.(check string) s (Protocol.addr_to_string e) (Protocol.addr_to_string a)
    | Error _, None -> ()
    | Ok a, None -> Alcotest.failf "%s parsed as %s" s (Protocol.addr_to_string a)
    | Error msg, Some _ -> Alcotest.failf "%s rejected: %s" s msg
  in
  check "/tmp/tsj.sock" (Some (Protocol.Unix_path "/tmp/tsj.sock"));
  check "relative.sock" (Some (Protocol.Unix_path "relative.sock"));
  check "localhost:7070" (Some (Protocol.Tcp ("localhost", 7070)));
  check ":7070" (Some (Protocol.Tcp ("127.0.0.1", 7070)));
  check "10.0.0.1:1" (Some (Protocol.Tcp ("10.0.0.1", 1)));
  check "host:0" None;
  check "host:65536" None;
  check "host:notaport" None;
  check "" None

let test_request_roundtrip () =
  let reqs =
    [
      Protocol.Query { tau = 2; tree = t "{a{b}{c}}" };
      Protocol.Knn { k = 5; tree = t "{a}" };
      Protocol.Add { seq = None; tree = t "{x{y{z}}}" };
      Protocol.Stats;
      Protocol.Health;
      Protocol.Drain;
    ]
  in
  List.iter
    (fun req ->
      let line = Protocol.render_request req in
      match Protocol.parse_request line with
      | Error msg -> Alcotest.failf "round trip of %S failed: %s" line msg
      | Ok req' ->
        Alcotest.(check string) ("round trip " ^ line) line
          (Protocol.render_request req'))
    reqs;
  (* leniency and diagnostics *)
  let err line =
    match Protocol.parse_request line with
    | Error msg -> msg
    | Ok _ -> Alcotest.failf "%S unexpectedly parsed" line
  in
  Alcotest.(check bool) "unknown verb lists commands" true
    (String.length (err "FROB {a}") > 20);
  ignore (err "QUERY x {a}");
  ignore (err "QUERY 2");
  ignore (err "QUERY -1 {a}");
  ignore (err "KNN -2 {a}");
  ignore (err "ADD");
  ignore (err "ADD {a");
  ignore (err "STATS now");
  ignore (err "");
  (* located tree diagnostics survive *)
  let msg = err "QUERY 1 {a{b}" in
  Alcotest.(check bool) ("has location: " ^ msg) true
    (String.length msg > 10 && String.sub msg 0 6 = "QUERY:");
  (* case-insensitive verb *)
  (match Protocol.parse_request "query 1 {a}" with
  | Ok (Protocol.Query { tau = 1; _ }) -> ()
  | _ -> Alcotest.fail "lowercase verb rejected")

let test_response_roundtrip () =
  let resps =
    [
      Protocol.Hits { degraded = false; hits = [ (0, 1); (3, 2) ]; unverified = [] };
      Protocol.Hits
        { degraded = true; hits = [ (1, 0) ]; unverified = [ (4, 1, 3); (9, 0, 2) ] };
      Protocol.Hits { degraded = false; hits = []; unverified = [] };
      Protocol.Added { id = 7; partners = [ (1, 2); (3, 0) ] };
      Protocol.Added { id = 0; partners = [] };
      Protocol.Stats_reply
        {
          trees = 10; tau = 2; queries = 5; adds = 10; shed = 1; degraded = 2;
          errors = 3; quarantined = 1; inflight = 0; draining = false;
          journal_records = 4; epoch = 2; primary = true; dedup = 6;
          scrubbed = 12; crc_failures = 1; repaired = 1; expired = 2;
          accept_pauses = 1; reaped = 3; q_p50 = 128; q_p95 = 1024;
          q_p99 = 2048; k_p50 = 64; k_p95 = 256; k_p99 = 512; a_p50 = 32;
          a_p95 = 64; a_p99 = 128;
        };
      Protocol.Health_reply { draining = false };
      Protocol.Health_reply { draining = true };
      Protocol.Drained;
      Protocol.Busy { retry_after_ms = None };
      Protocol.Busy { retry_after_ms = Some 250 };
      Protocol.Err "something went wrong";
    ]
  in
  List.iter
    (fun r ->
      let line = Protocol.render_response r in
      Alcotest.(check bool) ("single line: " ^ line) false (String.contains line '\n');
      match Protocol.parse_response line with
      | Error msg -> Alcotest.failf "round trip of %S failed: %s" line msg
      | Ok r' ->
        Alcotest.(check string) ("round trip " ^ line) line
          (Protocol.render_response r'))
    resps;
  (* a newline smuggled into an error reason cannot break framing *)
  let line = Protocol.render_response (Protocol.Err "multi\nline\treason") in
  Alcotest.(check bool) "newline stripped" false (String.contains line '\n');
  (* malformed replies are rejected, not raised *)
  List.iter
    (fun s ->
      match Protocol.parse_response s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S unexpectedly parsed" s)
    [ "HITS 0 2 0 1:2"; "HITS 2 0 0"; "ADDED x 0"; "STATS trees=1"; "OK"; "nonsense" ]

(* --- store --- *)

let trees_of seed n =
  let rng = Prng.create seed in
  Array.init n (fun _ -> Gen.random_tree rng (3 + Prng.int rng 10))

let with_store_dir f =
  let dir = Filename.temp_file "tsj_store" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir && Sys.is_directory dir then begin
        Array.iter
          (fun x -> try Sys.remove (Filename.concat dir x) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      end)
    (fun () -> f dir)

let test_store_persistence () =
  with_store_dir (fun dir ->
      let trees = trees_of 51 12 in
      let store = ok_or_fail (Store.open_ ~dir ~tau:2 ()) in
      Array.iteri
        (fun i tree ->
          let id, _ = Store.add store tree in
          Alcotest.(check int) "sequential ids" i id)
        trees;
      Alcotest.(check int) "journal grows" 12 (Store.journal_records store);
      (* reopen WITHOUT close: pure journal replay *)
      let replayed = ok_or_fail (Store.open_ ~dir ~tau:2 ()) in
      Alcotest.(check int) "replayed all" 12 (Store.n_trees replayed);
      Array.iteri
        (fun i tree ->
          Alcotest.(check bool) (Printf.sprintf "tree %d back" i) true
            (Tree.equal tree (Store.tree replayed i)))
        trees;
      (* flush resets the journal but keeps the trees via the snapshot *)
      Store.flush replayed;
      Alcotest.(check int) "journal empty after flush" 0
        (Store.journal_records replayed);
      let id, _ = Store.add replayed (t "{q{r}}") in
      Alcotest.(check int) "adds continue after flush" 12 id;
      Store.close replayed;
      let reopened = ok_or_fail (Store.open_ ~dir ~tau:2 ()) in
      Alcotest.(check int) "snapshot + tail" 13 (Store.n_trees reopened);
      Alcotest.(check int) "clean close emptied journal" 0
        (Store.journal_records reopened);
      (* stored tau wins over the requested one *)
      let reopened2 = ok_or_fail (Store.open_ ~dir ~tau:5 ()) in
      Alcotest.(check int) "snapshot tau wins" 2 (Store.tau reopened2);
      Store.close reopened;
      Store.close reopened2)

let test_store_corrupt_journal_rejected () =
  with_store_dir (fun dir ->
      let store = ok_or_fail (Store.open_ ~dir ~tau:1 ()) in
      ignore (Store.add store (t "{a}"));
      ignore (Store.add store (t "{b}"));
      ignore (Store.add store (t "{c}"));
      (* no close: journal holds 3 records *)
      let journal = Filename.concat dir "journal" in
      let lines =
        In_channel.with_open_text journal In_channel.input_lines
      in
      (* corrupt the MIDDLE record: that is real corruption, not a torn
         tail, and must fail the open.  The first line is the epoch
         header, then one record per add. *)
      (match lines with
      | [ header; l1; _l2; l3 ] ->
        Out_channel.with_open_text journal (fun oc ->
            List.iter
              (fun l -> Printf.fprintf oc "%s\n" l)
              [ header; l1; "add 1 {b} deadbeefdeadbeef"; l3 ])
      | _ -> Alcotest.fail "expected epoch header + 3 journal records");
      (match Store.open_ ~dir ~tau:1 () with
      | Ok _ -> Alcotest.fail "mid-journal corruption accepted"
      | Error msg ->
        Alcotest.(check bool) ("diagnostic: " ^ msg) true
          (String.length msg > 10)))

let test_store_seq_gap_rejected () =
  with_store_dir (fun dir ->
      let store = ok_or_fail (Store.open_ ~dir ~tau:1 ()) in
      ignore (Store.add store (t "{a}"));
      let journal = Filename.concat dir "journal" in
      (* append a record whose seq skips ahead — a lost record *)
      let payload = "add 5 {z}" in
      let crc = Tsj_util.Text.fnv1a64_hex payload in
      Out_channel.with_open_gen [ Open_append ] 0o644 journal (fun oc ->
          Printf.fprintf oc "%s %s\n" payload crc);
      match Store.open_ ~dir ~tau:1 () with
      | Ok _ -> Alcotest.fail "seq gap accepted"
      | Error msg ->
        Alcotest.(check bool) ("mentions gap: " ^ msg) true
          (String.length msg > 5))

(* --- kill-and-restart (the acceptance scenario) --- *)

let test_kill_and_restart () =
  let trees = trees_of 61 14 in
  let queries = trees_of 62 4 in
  List.iter
    (fun domains ->
      List.iter
        (fun kill_at ->
          let r =
            Faults.run_server_kill_and_restart ~domains ~kill_at_add:kill_at
              ~trees ~queries ~tau:2 ()
          in
          Alcotest.(check bool)
            (Printf.sprintf "killed (domains=%d kill_at=%d)" domains kill_at)
            true r.Faults.server_killed;
          Alcotest.(check int) "acked = kill point" kill_at r.Faults.acked;
          Alcotest.(check bool)
            (Printf.sprintf "bit-identical after restart (domains=%d kill_at=%d)"
               domains kill_at)
            true r.Faults.answers_match)
        (* seq numbers are 0-based: 13 kills just before the final add *)
        [ 1; 7; 13 ])
    [ 1; 4 ]

let test_kill_and_restart_torn_tail () =
  let trees = trees_of 63 10 in
  let queries = trees_of 64 4 in
  List.iter
    (fun domains ->
      let r =
        Faults.run_server_kill_and_restart ~domains ~kill_at_add:5 ~tear_tail:true
          ~trees ~queries ~tau:2 ()
      in
      Alcotest.(check bool) "killed" true r.Faults.server_killed;
      Alcotest.(check int) "acked" 5 r.Faults.acked;
      Alcotest.(check int) "torn tail loses exactly one" 4 r.Faults.expected;
      Alcotest.(check bool)
        (Printf.sprintf "bit-identical after torn-tail restart (domains=%d)" domains)
        true r.Faults.answers_match)
    [ 1; 4 ]

(* Property (qcheck): ANY interleaving of ADD/QUERY with a kill at an
   arbitrary point replays to an index answering bit-identically to one
   fed the surviving prefix — with and without a torn journal tail. *)
let prop_restart_deterministic =
  Gen.qtest ~count:25 "journal replay deterministic under random kills"
    QCheck.(triple (int_bound 1000) (int_bound 12) bool)
    (fun (seed, kill_raw, tear_tail) ->
      let rng = Prng.create (7000 + seed) in
      let n = 4 + Prng.int rng 10 in
      let trees = Array.init n (fun _ -> Gen.random_tree rng (3 + Prng.int rng 9)) in
      let queries =
        Array.init 3 (fun k ->
            (* mix member and fresh probes *)
            if k = 0 then trees.(Prng.int rng n)
            else Gen.random_tree rng (3 + Prng.int rng 9))
      in
      let kill_at = kill_raw mod n in
      let r =
        Faults.run_server_kill_and_restart ~kill_at_add:kill_at ~tear_tail ~trees
          ~queries ~tau:2 ()
      in
      r.Faults.answers_match)

(* --- socket server end-to-end --- *)

let with_server ?(tau = 2) ?dir ?(max_inflight = 64) ?deadline_s ?(domains = 1)
    ?(max_batch = 64) ?rate ?(burst = 32) ?idle_timeout_s ?max_out_bytes
    ?max_conns f =
  let sock = Filename.temp_file "tsj_sock" "" in
  Sys.remove sock;
  let addr = Protocol.Unix_path sock in
  let base = Server.default_config addr ~tau in
  let config =
    { base with
      Server.dir; domains; max_inflight; deadline_s; max_batch;
      drain_budget_s = 5.0; rate; burst; idle_timeout_s; max_conns;
      max_out_bytes =
        (match max_out_bytes with Some b -> b | None -> base.Server.max_out_bytes) }
  in
  let server = ok_or_fail (Server.create config) in
  Server.start server;
  Fun.protect
    ~finally:(fun () ->
      Server.drain server;
      Server.wait server;
      if Sys.file_exists sock then Sys.remove sock)
    (fun () -> f addr server)

let request conn req = ok_or_fail (Client.request conn req)

(* A raw line client, for sending bytes the typed client never would. *)
let raw_connect addr =
  match addr with
  | Protocol.Unix_path p ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX p);
    (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
  | Protocol.Tcp _ -> Alcotest.fail "raw_connect: unix sockets only in tests"

let raw_request (_, ic, oc) line =
  output_string oc line;
  output_char oc '\n';
  flush oc;
  input_line ic

let test_server_end_to_end () =
  with_server (fun addr server ->
      let conn = ok_or_fail (Client.connect addr) in
      (* health first *)
      (match request conn Protocol.Health with
      | Protocol.Health_reply { draining = false } -> ()
      | r -> Alcotest.failf "bad health reply %s" (Protocol.render_response r));
      (* build a tiny index over the wire *)
      let added =
        List.map
          (fun s ->
            match request conn (Protocol.Add { seq = None; tree = t s }) with
            | Protocol.Added { id; partners } -> (id, partners)
            | r -> Alcotest.failf "bad add reply %s" (Protocol.render_response r))
          [ "{a{b}{c}}"; "{a{b}{d}}"; "{x{y{z}}}" ]
      in
      Alcotest.(check (list int)) "ids sequential" [ 0; 1; 2 ]
        (List.map fst added);
      Alcotest.(check (list (pair int int))) "partners of the near-duplicate"
        [ (0, 1) ]
        (snd (List.nth added 1));
      (* threshold query *)
      (match request conn (Protocol.Query { tau = 1; tree = t "{a{b}{c}}" }) with
      | Protocol.Hits { degraded = false; hits; unverified = [] } ->
        Alcotest.(check (list (pair int int))) "query hits" [ (0, 0); (1, 1) ] hits
      | r -> Alcotest.failf "bad query reply %s" (Protocol.render_response r));
      (* top-k *)
      (match request conn (Protocol.Knn { k = 1; tree = t "{a{b}{c}}" }) with
      | Protocol.Hits { hits = [ (0, 0) ]; _ } -> ()
      | r -> Alcotest.failf "bad knn reply %s" (Protocol.render_response r));
      (* a query over the index threshold is an ERR, not a crash *)
      (match request conn (Protocol.Query { tau = 9; tree = t "{a}" }) with
      | Protocol.Err _ -> ()
      | r -> Alcotest.failf "expected ERR, got %s" (Protocol.render_response r));
      (* stats reflect everything *)
      (match request conn Protocol.Stats with
      | Protocol.Stats_reply s ->
        Alcotest.(check int) "trees" 3 s.Protocol.trees;
        Alcotest.(check int) "adds" 3 s.Protocol.adds;
        Alcotest.(check int) "queries" 2 s.Protocol.queries;
        Alcotest.(check int) "errors" 1 s.Protocol.errors;
        Alcotest.(check bool) "not draining" false s.Protocol.draining
      | r -> Alcotest.failf "bad stats reply %s" (Protocol.render_response r));
      Client.close conn;
      ignore server)

let test_server_malformed_isolation () =
  with_server (fun addr server ->
      (* connection A misbehaves; connection B must be untouched *)
      let a = raw_connect addr in
      let b = ok_or_fail (Client.connect addr) in
      (match request b (Protocol.Add { seq = None; tree = t "{a{b}}" }) with
      | Protocol.Added _ -> ()
      | r -> Alcotest.failf "B add failed: %s" (Protocol.render_response r));
      List.iter
        (fun bad ->
          let reply = raw_request a bad in
          Alcotest.(check bool)
            (Printf.sprintf "%S answered ERR (got %S)" bad reply)
            true
            (String.length reply >= 3 && String.sub reply 0 3 = "ERR"))
        [ "FROB"; "QUERY"; "QUERY x {a}"; "ADD {a"; "ADD {a{b}"; "QUERY 1 }{";
          "STATS please"; "\007\255garbage" ];
      (* blank lines are ignored (no reply) and the connection survives:
         send a blank line followed by a bad verb — the single reply we
         read back belongs to the bad verb *)
      (match a with
      | _, ic, oc ->
        output_string oc "  \r\nFROB\n";
        flush oc;
        let reply = input_line ic in
        Alcotest.(check bool) "blank line skipped, FROB answered" true
          (String.length reply >= 3 && String.sub reply 0 3 = "ERR"));
      (match a with fd, _, _ -> (try Unix.close fd with Unix.Unix_error _ -> ()));
      (* B still works after A's abuse *)
      (match request b (Protocol.Query { tau = 1; tree = t "{a{b}}" }) with
      | Protocol.Hits { hits = [ (0, 0) ]; _ } -> ()
      | r -> Alcotest.failf "B poisoned by A: %s" (Protocol.render_response r));
      Client.close b;
      ignore server)

let test_server_injected_request_fault_isolation () =
  with_server (fun addr server ->
      let a = ok_or_fail (Client.connect addr) in
      (match request a (Protocol.Add { seq = None; tree = t "{a{b}}" }) with
      | Protocol.Added _ -> ()
      | r -> Alcotest.failf "setup add failed: %s" (Protocol.render_response r));
      (* arm the per-request fault point at request #1: connection A's
         second request raises inside the handler, while connection B's
         first request (numbered 0) is untouched.  Only A may die; the
         server and other connections keep serving. *)
      Fault.with_armed "server.request" ~at:1 (fun () ->
          (match Client.request a (Protocol.Query { tau = 1; tree = t "{a{b}}" }) with
          | Ok r ->
            Alcotest.failf "expected connection death, got %s"
              (Protocol.render_response r)
          | Error _ -> ());
          (* the victim connection is quarantined, with a reason *)
          let rec wait_quarantine n =
            if n = 0 then Alcotest.fail "no quarantine record for the killed connection"
            else if Server.quarantined server = [] then begin
              Thread.yield ();
              wait_quarantine (n - 1)
            end
          in
          wait_quarantine 10_000;
          (* a fresh connection is served normally *)
          let b = ok_or_fail (Client.connect addr) in
          (match request b (Protocol.Query { tau = 1; tree = t "{a{b}}" }) with
          | Protocol.Hits { hits = [ (0, 0) ]; _ } -> ()
          | r -> Alcotest.failf "server poisoned: %s" (Protocol.render_response r));
          Client.close b);
      Client.close a;
      (match Server.quarantined server with
      | [ q ] ->
        Alcotest.(check bool) "reason is the injected fault" true
          (match q.Tsj_join.Types.q_reason with
          | Tsj_join.Types.Verify_failed msg ->
            String.length msg >= 14 && String.sub msg 0 14 = "server.request"
          | _ -> false)
      | qs -> Alcotest.failf "expected 1 quarantine record, got %d" (List.length qs)))

let test_server_admission_busy () =
  (* watermark 0: every work-bearing request is shed, deterministically,
     with an explicit BUSY — control requests still pass *)
  with_server ~max_inflight:0 (fun addr server ->
      let conn = ok_or_fail (Client.connect addr) in
      (match request conn (Protocol.Add { seq = None; tree = t "{a}" }) with
      | Protocol.Busy _ -> ()
      | r -> Alcotest.failf "expected BUSY, got %s" (Protocol.render_response r));
      (match request conn (Protocol.Query { tau = 1; tree = t "{a}" }) with
      | Protocol.Busy _ -> ()
      | r -> Alcotest.failf "expected BUSY, got %s" (Protocol.render_response r));
      (match request conn Protocol.Health with
      | Protocol.Health_reply _ -> ()
      | r -> Alcotest.failf "control request shed: %s" (Protocol.render_response r));
      (match request conn Protocol.Stats with
      | Protocol.Stats_reply s ->
        Alcotest.(check int) "both sheds counted" 2 s.Protocol.shed;
        Alcotest.(check int) "nothing admitted" 0 s.Protocol.adds
      | r -> Alcotest.failf "bad stats: %s" (Protocol.render_response r));
      Client.close conn;
      ignore server)

let test_server_deadline_degrades () =
  (* a deadline that has always already expired: the query must still
     answer — degraded, with the exact duplicate surfaced as a bound
     sandwich (lower = 0), never a hang or a drop *)
  with_server ~deadline_s:1e-9 (fun addr server ->
      let conn = ok_or_fail (Client.connect addr) in
      let dup = t "{a{b}{c}{d}}" in
      (match request conn (Protocol.Add { seq = None; tree = dup }) with
      | Protocol.Added { id = 0; _ } -> ()
      | r -> Alcotest.failf "add failed: %s" (Protocol.render_response r));
      (match request conn (Protocol.Query { tau = 2; tree = dup }) with
      | Protocol.Hits { degraded = true; hits; unverified } ->
        let covered =
          List.mem_assoc 0 hits
          || List.exists (fun (i, lo, _) -> i = 0 && lo = 0) unverified
        in
        Alcotest.(check bool) "duplicate surfaced in the degraded answer" true covered
      | r -> Alcotest.failf "expected degraded HITS, got %s" (Protocol.render_response r));
      (match request conn Protocol.Stats with
      | Protocol.Stats_reply s -> Alcotest.(check int) "degraded counted" 1 s.Protocol.degraded
      | r -> Alcotest.failf "bad stats: %s" (Protocol.render_response r));
      Client.close conn;
      ignore server)

let test_server_drain_flushes () =
  with_store_dir (fun dir ->
      with_server ~dir (fun addr server ->
          let conn = ok_or_fail (Client.connect addr) in
          List.iter
            (fun s -> ignore (request conn (Protocol.Add { seq = None; tree = t s })))
            [ "{a{b}}"; "{c{d}{e}}"; "{f}" ];
          (match request conn Protocol.Drain with
          | Protocol.Drained -> ()
          | r -> Alcotest.failf "bad drain reply %s" (Protocol.render_response r));
          Server.wait server;
          Alcotest.(check bool) "drained" true (Server.drained server);
          (* new connections are refused after the drain *)
          (match Client.connect addr with
          | Error _ -> ()
          | Ok c ->
            (* accepting is stopped; at worst the connect succeeds against
               a dead socket and the request fails *)
            (match Client.request c (Protocol.Query { tau = 1; tree = t "{a}" }) with
            | Error _ -> ()
            | Ok r ->
              Alcotest.failf "served after drain: %s" (Protocol.render_response r));
            Client.close c));
      (* the drain left a complete snapshot and an empty journal: a cold
         start sees everything without replay *)
      let store = ok_or_fail (Store.open_ ~dir ~tau:2 ()) in
      Alcotest.(check int) "cold start sees all trees" 3 (Store.n_trees store);
      Alcotest.(check int) "journal empty" 0 (Store.journal_records store);
      let r = Store.query store (t "{a{b}}") in
      Alcotest.(check (list (pair int int))) "cold index answers"
        [ (0, 0); (2, 2) ] r.Incremental.hits;
      Store.close store)

let test_server_accept_fault_drops_one_connection () =
  with_server (fun addr server ->
      (* the injected accept fault must drop exactly that connection *)
      Fault.with_armed "server.accept" (fun () ->
          let victim = ok_or_fail (Client.connect addr) in
          (* the server closes it without serving; our request fails *)
          (match Client.request victim (Protocol.Health) with
          | Error _ -> ()
          | Ok r ->
            Alcotest.failf "victim served despite accept fault: %s"
              (Protocol.render_response r));
          Client.close victim);
      let survivor = ok_or_fail (Client.connect addr) in
      (match request survivor Protocol.Health with
      | Protocol.Health_reply _ -> ()
      | r -> Alcotest.failf "server dead after accept fault: %s"
               (Protocol.render_response r));
      Client.close survivor;
      Alcotest.(check int) "accept fault quarantined" 1
        (List.length (Server.quarantined server)))

(* --- replication: protocol, cluster end-to-end, torn-tail catch-up,
   failover storm --- *)

let test_replication_protocol_roundtrip () =
  let reqs =
    [
      Protocol.Add { seq = Some 5; tree = t "{x{y}}" };
      Protocol.Add { seq = Some 0; tree = t "{a}" };
      Protocol.Sync { epoch = 3; from_seq = 17 };
      Protocol.Sync { epoch = 0; from_seq = 0 };
      Protocol.Ack 9;
      Protocol.Promote;
    ]
  in
  List.iter
    (fun req ->
      let line = Protocol.render_request req in
      match Protocol.parse_request line with
      | Error msg -> Alcotest.failf "round trip of %S failed: %s" line msg
      | Ok req' ->
        Alcotest.(check string) ("round trip " ^ line) line
          (Protocol.render_request req'))
    reqs;
  List.iter
    (fun bad ->
      match Protocol.parse_request bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S unexpectedly parsed" bad)
    [ "ADD -1 {a}"; "SYNC 1"; "SYNC -1 0"; "SYNC 1 -2"; "ACKED"; "ACKED x";
      "PROMOTE now" ];
  let resps =
    [
      Protocol.Sync_stream { epoch = 2; base = 11; high = 13 };
      Protocol.Record "add 3 {a{b}} 0123456789abcdef";
      Protocol.Fenced 4;
      Protocol.Promoted 1;
    ]
  in
  List.iter
    (fun r ->
      let line = Protocol.render_response r in
      match Protocol.parse_response line with
      | Error msg -> Alcotest.failf "round trip of %S failed: %s" line msg
      | Ok r' ->
        Alcotest.(check string) ("round trip " ^ line) line
          (Protocol.render_response r'))
    resps;
  (* a RECORD payload travels verbatim — no word-splitting damage *)
  (match Protocol.parse_response "RECORD add 0 {A{b}}  weird  payload" with
  | Ok (Protocol.Record r) ->
    Alcotest.(check string) "payload verbatim" "add 0 {A{b}}  weird  payload" r
  | _ -> Alcotest.fail "RECORD payload mangled")

let rec eventually ?(tries = 500) msg f =
  if f () then ()
  else if tries = 0 then Alcotest.fail ("timeout waiting for " ^ msg)
  else begin
    Thread.delay 0.01;
    eventually ~tries:(tries - 1) msg f
  end

(* ADD with an explicit seq, retried until quorum is reachable (the
   followers register asynchronously after start). *)
let rec add_acked ?(tries = 500) conn ~seq tree =
  match request conn (Protocol.Add { seq = Some seq; tree }) with
  | Protocol.Added { id; _ } -> id
  | Protocol.Err _ when tries > 0 ->
    Thread.delay 0.01;
    add_acked ~tries:(tries - 1) conn ~seq tree
  | r -> Alcotest.failf "add seq %d never acknowledged: %s" seq
           (Protocol.render_response r)

let stats_of conn =
  match request conn Protocol.Stats with
  | Protocol.Stats_reply s -> s
  | r -> Alcotest.failf "bad stats reply %s" (Protocol.render_response r)

let test_replicated_cluster_end_to_end () =
  let socks = Array.init 3 (fun _ ->
      let p = Filename.temp_file "tsj_repl" ".sock" in
      Sys.remove p;
      p)
  in
  let addr i = Protocol.Unix_path socks.(i) in
  let mk ~primary ~sync_from i =
    let config =
      { (Server.default_config (addr i) ~tau:2) with
        Server.quorum = 2; sync_from; primary }
    in
    let server = ok_or_fail (Server.create config) in
    Server.start server;
    server
  in
  let p0 = mk ~primary:true ~sync_from:[] 0 in
  let r1 = mk ~primary:false ~sync_from:[ addr 0 ] 1 in
  let r2 = mk ~primary:false ~sync_from:[ addr 0; addr 1 ] 2 in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun s ->
          (try Server.drain s with _ -> ());
          try Server.wait s with _ -> ())
        [ p0; r1; r2 ];
      Array.iter (fun p -> if Sys.file_exists p then Sys.remove p) socks)
    (fun () ->
      let trees =
        [| t "{a{b}{c}}"; t "{a{b}{d}}"; t "{x{y{z}}}"; t "{p{q}}" |]
      in
      let conn0 = ok_or_fail (Client.connect (addr 0)) in
      (* quorum-acked writes: the first ADD blocks on a follower having
         registered, then each one is durable on two nodes before OK *)
      Array.iteri
        (fun i tree ->
          Alcotest.(check int) "sequential ids" i (add_acked conn0 ~seq:i tree))
        trees;
      let conn1 = ok_or_fail (Client.connect (addr 1)) in
      let conn2 = ok_or_fail (Client.connect (addr 2)) in
      eventually "replicas caught up" (fun () ->
          (stats_of conn1).Protocol.trees = 4 && (stats_of conn2).Protocol.trees = 4);
      (* replicas serve reads; writes on a non-primary are fenced *)
      (match request conn1 (Protocol.Query { tau = 1; tree = trees.(0) }) with
      | Protocol.Hits { hits; _ } ->
        Alcotest.(check (list (pair int int))) "replica read" [ (0, 0); (1, 1) ] hits
      | r -> Alcotest.failf "replica query failed: %s" (Protocol.render_response r));
      (match request conn1 (Protocol.Add { seq = Some 4; tree = trees.(0) }) with
      | Protocol.Fenced 0 -> ()
      | r -> Alcotest.failf "replica accepted a write: %s" (Protocol.render_response r));
      (* failover: promote r1, which bumps the epoch *)
      (match request conn1 Protocol.Promote with
      | Protocol.Promoted 1 -> ()
      | r -> Alcotest.failf "promote failed: %s" (Protocol.render_response r));
      let s1 = stats_of conn1 in
      Alcotest.(check bool) "r1 is primary" true s1.Protocol.primary;
      Alcotest.(check int) "r1 epoch bumped" 1 s1.Protocol.epoch;
      (* the stale primary is fenced off on its next replicated write *)
      (match request conn0 (Protocol.Add { seq = Some 4; tree = trees.(0) }) with
      | Protocol.Fenced 1 -> ()
      | r ->
        Alcotest.failf "stale primary not fenced: %s" (Protocol.render_response r));
      let s0 = stats_of conn0 in
      Alcotest.(check bool) "p0 demoted" false s0.Protocol.primary;
      Client.close conn0;
      (* stop the old primary; r2's stream rotates to the new one *)
      Server.drain p0;
      Server.wait p0;
      (* a post-failover quorum write through the new primary *)
      let id = add_acked conn1 ~seq:4 (t "{n{e}{w}}") in
      Alcotest.(check int) "post-failover id" 4 id;
      eventually "r2 adopted the new epoch" (fun () ->
          let s = stats_of conn2 in
          s.Protocol.trees = 5 && s.Protocol.epoch = 1);
      (* both survivors answer identically *)
      let hits_on conn =
        match request conn (Protocol.Query { tau = 2; tree = t "{n{e}{w}}" }) with
        | Protocol.Hits { hits; _ } -> hits
        | r -> Alcotest.failf "query failed: %s" (Protocol.render_response r)
      in
      Alcotest.(check (list (pair int int))) "survivors agree" (hits_on conn1)
        (hits_on conn2);
      Client.close conn1;
      Client.close conn2)

(* A replica that crashes with a torn journal tail must heal on
   re-sync: the torn record is dropped on reopen and re-streamed by the
   primary's catch-up. *)
let test_replica_torn_tail_catchup () =
  let module Replica = Tsj_server.Replica in
  let module Cluster = Tsj_server.Cluster in
  with_store_dir (fun dir ->
      let primary_store = ok_or_fail (Store.open_ ~tau:2 ()) in
      let primary = Replica.create ~primary:true primary_store in
      let cluster = Cluster.create ~quorum:1 () in
      let record_for s = Store.record_for primary_store s in
      let follower_store = ref (ok_or_fail (Store.open_ ~dir ~tau:2 ())) in
      let follower = ref (Replica.create !follower_store) in
      let resync () =
        let pending = ref None in
        let send line =
          match Replica.feed !follower line with
          | Replica.Reply r | Replica.Final r -> pending := Some r
          | Replica.Stop reason -> failwith ("stream stopped: " ^ reason)
        in
        let recv () =
          match !pending with
          | Some r ->
            pending := None;
            r
          | None -> failwith "no reply pending"
        in
        let f_epoch =
          match Protocol.parse_request (Replica.hello !follower) with
          | Ok (Protocol.Sync { epoch; _ }) -> epoch
          | _ -> Alcotest.fail "malformed hello"
        in
        match
          Cluster.serve_sync cluster
            ~epoch:(fun () -> Store.epoch primary_store)
            ~base:(fun () -> Store.epoch_base primary_store)
            ~n_trees:(fun () -> Store.n_trees primary_store)
            ~record_for
            ~primary:(fun () -> Replica.is_primary primary)
            ~peer_id:"follower" ~f_epoch ~send ~recv
            ~close:(fun () -> ())
        with
        | `Streaming -> ()
        | `Fenced e -> Alcotest.failf "unexpected fence at %d" e
        | `Refused msg -> Alcotest.failf "sync refused: %s" msg
      in
      resync ();
      let trees = trees_of 71 6 in
      Array.iter
        (fun tree ->
          Cluster.with_write cluster (fun () ->
              let id, _ = ok_or_fail (Store.add_seq primary_store tree) in
              match Cluster.replicate cluster ~record_for ~seq:id with
              | Cluster.Acks _ -> ()
              | Cluster.No_quorum _ | Cluster.Fenced_off _ ->
                Alcotest.fail "replication failed"))
        trees;
      Alcotest.(check int) "follower current" 6 (Store.n_trees !follower_store);
      (* crash the follower with a torn tail: abandon the store object
         and chop the final journal record mid-write *)
      let journal = Filename.concat dir "journal" in
      let len = (Unix.stat journal).Unix.st_size in
      Faults.truncate_file journal ~keep_bytes:(len - 3);
      follower_store := ok_or_fail (Store.open_ ~dir ~tau:2 ());
      Alcotest.(check int) "torn record dropped on reopen" 5
        (Store.n_trees !follower_store);
      follower := Replica.create !follower_store;
      (* catch-up from seq 5 re-streams the lost record *)
      resync ();
      Alcotest.(check int) "caught up" 6 (Store.n_trees !follower_store);
      Array.iteri
        (fun i tree ->
          Alcotest.(check bool) (Printf.sprintf "tree %d identical" i) true
            (Tree.equal tree (Store.tree !follower_store i)))
        trees;
      Store.close !follower_store;
      Store.close primary_store)

let check_storm name (r : Faults.failover_report) =
  Alcotest.(check bool) (name ^ ": no acked ADD lost") true r.Faults.acked_preserved;
  Alcotest.(check bool) (name ^ ": one writer per epoch") true r.Faults.single_writer;
  Alcotest.(check bool) (name ^ ": cluster converged") true r.Faults.converged;
  Alcotest.(check bool)
    (name ^ ": answers bit-identical to an unfailed node")
    true r.Faults.cluster_answers_match

let test_failover_storm () =
  let trees = trees_of 81 24 in
  let queries = trees_of 82 4 in
  (* 60 randomized kill/partition points at each domain count *)
  List.iter
    (fun (domains, seed) ->
      let r =
        Faults.run_failover_storm ~domains ~seed ~rounds:60 ~trees ~queries ~tau:2 ()
      in
      let name = Printf.sprintf "storm (domains=%d)" domains in
      Alcotest.(check int) (name ^ ": one chaos point per round") 60
        r.Faults.chaos_points;
      Alcotest.(check bool) (name ^ ": writes got through") true
        (r.Faults.acked_adds > 60);
      Alcotest.(check bool) (name ^ ": failovers exercised") true
        (r.Faults.failovers > 0);
      check_storm name r)
    [ (1, 901); (4, 902) ]

(* Property (qcheck): at ANY random kill/partition schedule, the
   replicated cluster loses no acknowledged ADD and never has two
   writers in one epoch. *)
let prop_failover_storm =
  Gen.qtest ~count:10 "failover storm invariants under random seeds"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Prng.create (9100 + seed) in
      let trees = Array.init 12 (fun _ -> Gen.random_tree rng (3 + Prng.int rng 8)) in
      let queries = Array.init 2 (fun _ -> Gen.random_tree rng (3 + Prng.int rng 8)) in
      let r = Faults.run_failover_storm ~seed ~rounds:6 ~trees ~queries ~tau:2 () in
      r.Faults.acked_preserved && r.Faults.single_writer && r.Faults.converged
      && r.Faults.cluster_answers_match)

(* --- binary protocol: negotiation, pipelining, group commit,
   bounded-staleness reads --- *)

let bin_connect addr = ok_or_fail (Client.Bin.connect ~timeout_s:10.0 addr)

let test_binary_hello_and_pipelining () =
  with_server (fun addr server ->
      (* text first, then HELLO upgrades the very same connection *)
      let ((fd, ic, oc) as raw) = raw_connect addr in
      (match Protocol.parse_response (raw_request raw "ADD {a{b}}") with
      | Ok (Protocol.Added { id = 0; _ }) -> ()
      | _ -> Alcotest.fail "text ADD before HELLO failed");
      (match Protocol.parse_response (raw_request raw "HELLO BIN 7") with
      | Ok (Protocol.Hello_reply v) when v = Protocol.Binary.version -> ()
      | Ok r -> Alcotest.failf "HELLO answered %s" (Protocol.render_response r)
      | Error msg -> Alcotest.failf "HELLO reply unparseable: %s" msg);
      (* from here the connection speaks frames; the id is echoed *)
      let b = Buffer.create 64 in
      Protocol.Binary.encode_request b ~id:42 Protocol.Stats;
      output_string oc (Buffer.contents b);
      flush oc;
      let flen = Protocol.Binary.get_u32 (really_input_string ic 4) 0 in
      let rest = really_input_string ic flen in
      Alcotest.(check int) "request id echoed" 42 (Protocol.Binary.get_u32 rest 0);
      (match
         Protocol.Binary.decode_response ~op:(Char.code rest.[4])
           ~body:(String.sub rest 5 (flen - 5))
       with
      | Ok (Protocol.Stats_reply s) ->
        Alcotest.(check int) "binary STATS sees the text-mode add" 1 s.Protocol.trees
      | Ok r -> Alcotest.failf "binary STATS answered %s" (Protocol.render_response r)
      | Error msg -> Alcotest.failf "binary STATS undecodable: %s" msg);
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (* pipelining through the Bin client: many ids outstanding at once,
         every reply matched to the request that owns it, exactly once *)
      let bin = bin_connect addr in
      let add_ids =
        List.map
          (fun s -> Client.Bin.send bin (Protocol.Add { seq = None; tree = t s }))
          [ "{p{q}}"; "{p{r}}"; "{s}" ]
      in
      let qid = Client.Bin.send bin (Protocol.Query { tau = 1; tree = t "{a{b}}" }) in
      let sid = Client.Bin.send bin Protocol.Stats in
      Client.Bin.flush bin;
      let replies = Hashtbl.create 8 in
      for _ = 1 to 5 do
        match Client.Bin.recv bin with
        | Ok (id, resp) ->
          Alcotest.(check bool) "no duplicate reply id" false (Hashtbl.mem replies id);
          Hashtbl.replace replies id resp
        | Error e -> Alcotest.fail e
      done;
      (* the committer assigns tree ids in pipeline order *)
      List.iteri
        (fun i id ->
          match Hashtbl.find_opt replies id with
          | Some (Protocol.Added { id = tree_id; _ }) ->
            Alcotest.(check int) "pipelined adds keep send order" (1 + i) tree_id
          | Some r ->
            Alcotest.failf "add id %d misattributed: %s" id
              (Protocol.render_response r)
          | None -> Alcotest.failf "add id %d unanswered" id)
        add_ids;
      (match Hashtbl.find_opt replies qid with
      | Some (Protocol.Hits { hits; _ }) ->
        Alcotest.(check bool) "pipelined query found the acked tree" true
          (List.mem_assoc 0 hits)
      | Some r ->
        Alcotest.failf "query misattributed: %s" (Protocol.render_response r)
      | None -> Alcotest.fail "pipelined query unanswered");
      (match Hashtbl.find_opt replies sid with
      | Some (Protocol.Stats_reply _) -> ()
      | Some r ->
        Alcotest.failf "stats misattributed: %s" (Protocol.render_response r)
      | None -> Alcotest.fail "pipelined stats unanswered");
      Client.Bin.close bin;
      ignore server)

let test_binary_group_commit_fsyncs () =
  with_store_dir (fun dir ->
      with_server ~dir ~max_batch:4 (fun addr server ->
          let bin = bin_connect addr in
          (* lock-step warm-up so the committer is known idle afterwards *)
          (match
             ok_or_fail
               (Client.Bin.request bin (Protocol.Add { seq = None; tree = t "{w}" }))
           with
          | Protocol.Added { id = 0; _ } -> ()
          | r -> Alcotest.failf "warm-up add failed: %s" (Protocol.render_response r));
          let store = Server.store server in
          let f0 = Store.fsyncs store in
          let h0 = Fault.hits "server.journal" in
          (* count journal flushes while the committer is stalled at the
             batch fault point, so the pipelined ADDs pile into full
             group commits *)
          Fault.arm_action "server.journal" (fun _ -> ());
          let gate = Atomic.make false in
          Fault.arm_action "server.batch" (fun _ ->
              while not (Atomic.get gate) do
                Thread.delay 0.001
              done);
          Fun.protect
            ~finally:(fun () ->
              Atomic.set gate true;
              Fault.disarm_all ())
            (fun () ->
              let n = 8 in
              let rng = Prng.create 97 in
              let ids =
                List.init n (fun _ ->
                    Client.Bin.send bin
                      (Protocol.Add
                         { seq = None; tree = Gen.random_tree rng (3 + Prng.int rng 6) }))
              in
              Client.Bin.flush bin;
              eventually "all adds admitted" (fun () ->
                  (Server.stats server).Protocol.inflight = n);
              Thread.delay 0.05;
              Atomic.set gate true;
              let answered = Hashtbl.create 8 in
              List.iter
                (fun _ ->
                  match Client.Bin.recv bin with
                  | Ok (id, Protocol.Added { id = tree_id; _ }) ->
                    Hashtbl.replace answered id tree_id
                  | Ok (id, r) ->
                    Alcotest.failf "add %d answered %s" id (Protocol.render_response r)
                  | Error e -> Alcotest.fail e)
                ids;
              List.iteri
                (fun i id ->
                  match Hashtbl.find_opt answered id with
                  | Some tree_id ->
                    Alcotest.(check int) "batched adds keep queue order" (1 + i) tree_id
                  | None -> Alcotest.failf "add id %d unanswered" id)
                ids;
              let batches = Fault.hits "server.journal" - h0 in
              let fsyncs = Store.fsyncs store - f0 in
              (* 8 concurrent ADDs with max_batch = 4: ceil(8/4) = 2
                 journal appends, one fsync each — not 8 *)
              Alcotest.(check int) "group commits = ceil(N / max_batch)" 2 batches;
              Alcotest.(check int) "one fsync per group commit" batches fsyncs);
          Client.Bin.close bin))

let test_group_commit_crash_recovers_acked_prefix () =
  with_store_dir (fun dir ->
      let sock = Filename.temp_file "tsj_sock" "" in
      Sys.remove sock;
      let addr = Protocol.Unix_path sock in
      let config =
        { (Server.default_config addr ~tau:2) with Server.dir = Some dir; max_batch = 4 }
      in
      let server = ok_or_fail (Server.create config) in
      Server.start server;
      let acked = ref [] in
      Fun.protect
        ~finally:(fun () ->
          Fault.disarm_all ();
          if Sys.file_exists sock then Sys.remove sock)
        (fun () ->
          let bin = bin_connect addr in
          let rng = Prng.create 98 in
          for i = 0 to 4 do
            let tree = Gen.random_tree rng (3 + Prng.int rng 6) in
            match
              ok_or_fail (Client.Bin.request bin (Protocol.Add { seq = None; tree }))
            with
            | Protocol.Added { id; _ } when id = i -> acked := tree :: !acked
            | r -> Alcotest.failf "add %d failed: %s" i (Protocol.render_response r)
          done;
          (* an injected journal fault fails the whole batch atomically:
             every ADD in it is answered ERR, nothing is indexed and
             nothing reaches the journal *)
          let before = Store.journal_records (Server.store server) in
          Fault.arm "server.journal" ();
          let ids =
            List.init 3 (fun _ ->
                Client.Bin.send bin
                  (Protocol.Add
                     { seq = None; tree = Gen.random_tree rng (3 + Prng.int rng 6) }))
          in
          Client.Bin.flush bin;
          List.iter
            (fun _ ->
              match Client.Bin.recv bin with
              | Ok (id, Protocol.Err _) when List.mem id ids -> ()
              | Ok (id, r) ->
                Alcotest.failf "faulted add %d answered %s" id
                  (Protocol.render_response r)
              | Error e -> Alcotest.fail e)
            ids;
          Fault.disarm "server.journal";
          Alcotest.(check int) "journal untouched by the failed batch" before
            (Store.journal_records (Server.store server));
          Alcotest.(check int) "nothing from the failed batch indexed" 5
            (Store.n_trees (Server.store server));
          (* the sequence continues with no gap *)
          (match
             ok_or_fail
               (Client.Bin.request bin (Protocol.Add { seq = None; tree = t "{g{h}}" }))
           with
          | Protocol.Added { id = 5; _ } -> acked := t "{g{h}}" :: !acked
          | r -> Alcotest.failf "post-fault add failed: %s" (Protocol.render_response r));
          (* crash (kill -9) with a stalled, never-acked batch in flight:
             recovery from the journal must see exactly the acked prefix *)
          let gate = Atomic.make false in
          Fault.arm_action "server.batch" (fun _ ->
              while not (Atomic.get gate) do
                Thread.delay 0.001
              done);
          ignore
            (List.init 3 (fun _ ->
                 Client.Bin.send bin
                   (Protocol.Add
                      { seq = None; tree = Gen.random_tree rng (3 + Prng.int rng 6) })));
          Client.Bin.flush bin;
          eventually "stalled batch admitted" (fun () ->
              (Server.stats server).Protocol.inflight = 3);
          Server.abort server;
          Atomic.set gate true;
          Server.wait server;
          Client.Bin.close bin;
          Fault.disarm_all ();
          let store = ok_or_fail (Store.open_ ~dir ~tau:2 ()) in
          Alcotest.(check int) "recovered exactly the acked prefix" 6
            (Store.n_trees store);
          List.iteri
            (fun i tree ->
              let idx = 5 - i in
              Alcotest.(check bool) (Printf.sprintf "acked tree %d survives" idx) true
                (Tree.equal tree (Store.tree store idx)))
            !acked;
          Store.close store))

let test_bounded_staleness_reads () =
  let socks =
    Array.init 2 (fun _ ->
        let p = Filename.temp_file "tsj_stale" ".sock" in
        Sys.remove p;
        p)
  in
  let addr i = Protocol.Unix_path socks.(i) in
  let mk ~primary ~sync_from i =
    let config =
      { (Server.default_config (addr i) ~tau:2) with Server.quorum = 2; sync_from; primary }
    in
    let server = ok_or_fail (Server.create config) in
    Server.start server;
    server
  in
  let p0 = mk ~primary:true ~sync_from:[] 0 in
  let r1 = mk ~primary:false ~sync_from:[ addr 0 ] 1 in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun s ->
          (try Server.drain s with _ -> ());
          try Server.wait s with _ -> ())
        [ p0; r1 ];
      Array.iter (fun p -> if Sys.file_exists p then Sys.remove p) socks)
    (fun () ->
      let trees = [| t "{a{b}{c}}"; t "{a{b}{d}}" |] in
      let conn0 = ok_or_fail (Client.connect (addr 0)) in
      Array.iteri (fun i tree -> ignore (add_acked conn0 ~seq:i tree)) trees;
      Client.close conn0;
      let conn1 = ok_or_fail (Client.connect (addr 1)) in
      eventually "replica caught up" (fun () -> (stats_of conn1).Protocol.trees = 2);
      Client.close conn1;
      (* the primary always answers a bounded read: its lag is zero *)
      let bin0 = bin_connect (addr 0) in
      (match
         ok_or_fail
           (Client.Bin.request bin0 ~max_lag:0
              (Protocol.Query { tau = 1; tree = trees.(0) }))
       with
      | Protocol.Hits { hits; _ } ->
        Alcotest.(check (list (pair int int))) "primary bounded read" [ (0, 0); (1, 1) ]
          hits
      | r -> Alcotest.failf "primary bounded read: %s" (Protocol.render_response r));
      Client.Bin.close bin0;
      (* a synced replica within the bound answers locally *)
      let bin1 = bin_connect (addr 1) in
      (match
         ok_or_fail
           (Client.Bin.request bin1 ~max_lag:1
              (Protocol.Query { tau = 1; tree = trees.(0) }))
       with
      | Protocol.Hits { hits; _ } ->
        Alcotest.(check (list (pair int int))) "synced replica bounded read"
          [ (0, 0); (1, 1) ] hits
      | r -> Alcotest.failf "replica bounded read: %s" (Protocol.render_response r));
      (* kill the primary: the replica's lag becomes unknown, so bounded
         reads redirect to its last known upstream while unbounded reads
         keep answering from what it has *)
      Server.drain p0;
      Server.wait p0;
      eventually "stream loss surfaces as REDIRECT" (fun () ->
          match
            Client.Bin.request bin1 ~max_lag:0
              (Protocol.Query { tau = 1; tree = trees.(0) })
          with
          | Ok (Protocol.Redirect a) -> a = Protocol.addr_to_string (addr 0)
          | _ -> false);
      (match
         ok_or_fail (Client.Bin.request bin1 (Protocol.Query { tau = 1; tree = trees.(0) }))
       with
      | Protocol.Hits { hits; _ } ->
        Alcotest.(check bool) "unbounded read still answers" true
          (List.mem_assoc 0 hits)
      | r -> Alcotest.failf "unbounded read refused: %s" (Protocol.render_response r));
      Client.Bin.close bin1;
      (* a replica that never had an upstream answers ERR, not a hang *)
      let sock2 = Filename.temp_file "tsj_stale" ".sock" in
      Sys.remove sock2;
      let addr2 = Protocol.Unix_path sock2 in
      let r2 =
        ok_or_fail
          (Server.create
             { (Server.default_config addr2 ~tau:2) with Server.primary = false })
      in
      Server.start r2;
      let bin2 = bin_connect addr2 in
      (match
         ok_or_fail
           (Client.Bin.request bin2 ~max_lag:3
              (Protocol.Query { tau = 1; tree = trees.(0) }))
       with
      | Protocol.Err reason ->
        Alcotest.(check bool) ("names the problem: " ^ reason) true
          (String.length reason > 5)
      | r -> Alcotest.failf "upstream-less replica: %s" (Protocol.render_response r));
      Client.Bin.close bin2;
      Server.drain r2;
      Server.wait r2;
      if Sys.file_exists sock2 then Sys.remove sock2)

(* --- client retry / backoff --- *)

let test_client_backoff_deterministic () =
  (* same seed -> same jittered schedule; bounds respected *)
  let schedule seed =
    let rng = Prng.create seed in
    List.init 6 (fun i ->
        Client.backoff_delay ~base_delay_s:0.05 ~max_delay_s:2.0 ~rng i)
  in
  Alcotest.(check (list (float 1e-12))) "reproducible" (schedule 7) (schedule 7);
  List.iteri
    (fun i d ->
      let cap = Float.min 2.0 (0.05 *. Float.pow 2.0 (float_of_int i)) in
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d in [cap/2, cap]" i)
        true
        (d >= (cap /. 2.0) -. 1e-12 && d <= cap +. 1e-12))
    (schedule 11)

let test_client_with_retries () =
  let slept = ref [] in
  let sleep d = slept := d :: !slept in
  let rng = Prng.create 3 in
  let calls = ref 0 in
  let flaky () =
    incr calls;
    if !calls < 3 then Error "transient" else Ok !calls
  in
  (match Client.with_retries ~attempts:5 ~sleep ~rng flaky with
  | Ok 3 -> ()
  | Ok n -> Alcotest.failf "returned after %d calls" n
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "slept between attempts" 2 (List.length !slept);
  (* exhaustion returns the last error and sleeps attempts-1 times *)
  let slept2 = ref 0 in
  (match
     Client.with_retries ~attempts:3 ~sleep:(fun _ -> incr slept2)
       ~rng:(Prng.create 4) (fun () -> Error "always")
   with
  | Error "always" -> ()
  | Error e -> Alcotest.failf "wrong error %s" e
  | Ok _ -> Alcotest.fail "expected failure");
  Alcotest.(check int) "attempts-1 sleeps" 2 !slept2;
  Alcotest.check_raises "attempts >= 1"
    (Invalid_argument "Client.with_retries: attempts must be >= 1") (fun () ->
      ignore (Client.with_retries ~attempts:0 ~rng:(Prng.create 1) (fun () -> Ok ())))

let test_client_backoff_deadline_cap () =
  (* an injected clock that advances exactly by what was slept: the
     total backoff wait can never exceed the caller's deadline *)
  let run ~attempts ~deadline_s =
    let clock = ref 0.0 in
    let slept = ref [] in
    let sleep d =
      slept := d :: !slept;
      clock := !clock +. d
    in
    let calls = ref 0 in
    let r =
      Client.with_retries ~attempts ~base_delay_s:1.0 ~max_delay_s:8.0 ~sleep
        ~deadline_s
        ~now:(fun () -> !clock)
        ~rng:(Prng.create 13)
        (fun () ->
          incr calls;
          Error "down")
    in
    (r, List.rev !slept, !calls)
  in
  (match run ~attempts:10 ~deadline_s:2.5 with
  | Error "down", slept, calls ->
    let total = List.fold_left ( +. ) 0.0 slept in
    (* the schedule grows past the deadline, so the final sleep is
       clamped to exactly the time remaining and retrying stops *)
    Alcotest.(check (float 1e-9)) "total wait = deadline exactly" 2.5 total;
    Alcotest.(check bool)
      (Printf.sprintf "stopped before exhausting attempts (%d calls)" calls)
      true (calls < 10);
    List.iter
      (fun d -> Alcotest.(check bool) "every sleep positive" true (d > 0.0))
      slept
  | Error e, _, _ -> Alcotest.failf "wrong error %s" e
  | Ok _, _, _ -> Alcotest.fail "expected failure");
  (* a deadline that already passed: one attempt, zero sleeps *)
  (match run ~attempts:10 ~deadline_s:0.0 with
  | Error "down", [], 1 -> ()
  | _, slept, calls ->
    Alcotest.failf "expired deadline still waited (%d sleeps, %d calls)"
      (List.length slept) calls);
  (* without a deadline the full schedule runs: attempts-1 sleeps *)
  (match
     let slept = ref 0 in
     let r =
       Client.with_retries ~attempts:4 ~base_delay_s:1.0 ~max_delay_s:8.0
         ~sleep:(fun _ -> incr slept)
         ~rng:(Prng.create 13)
         (fun () -> Error "down")
     in
     (r, !slept)
   with
  | Error "down", 3 -> ()
  | _, n -> Alcotest.failf "expected 3 sleeps without a deadline, got %d" n);
  (* the failover client obeys the same cap across server rotations *)
  let clock = ref 0.0 in
  let total = ref 0.0 in
  let sleep d =
    total := !total +. d;
    clock := !clock +. d
  in
  let fo =
    Client.Failover.create ~attempts:12 ~base_delay_s:1.0 ~max_delay_s:8.0 ~sleep
      ~deadline_s:1.5
      ~now:(fun () -> !clock)
      ~rng:(Prng.create 17)
      [ Protocol.Unix_path "/nonexistent/a.sock"; Protocol.Unix_path "/nonexistent/b.sock" ]
  in
  (match Client.Failover.request fo Protocol.Stats with
  | Error _ -> ()
  | Ok r -> Alcotest.failf "unexpected reply %s" (Protocol.render_response r));
  Alcotest.(check (float 1e-9)) "failover total wait = deadline exactly" 1.5 !total

(* --- disk faults on the durability path --- *)

let contains haystack needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length haystack && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

let test_short_write_crash_recovers () =
  (* A crash in the middle of a journal append — through the real
     [durable.write] hit point, so the torn bytes are the genuine
     half-written record, not an artificial truncation.  The restart
     must drop the torn tail, keep every completed record, and reuse
     the torn sequence number for the retry. *)
  with_store_dir (fun dir ->
      let trees = trees_of 61 6 in
      let store = ok_or_fail (Store.open_ ~dir ~tau:2 ()) in
      Array.iter (fun tree -> ignore (Store.add store tree)) (Array.sub trees 0 5);
      (match Fault.with_armed "durable.write" (fun () -> Store.add store trees.(5)) with
      | exception Fault.Injected _ -> ()
      | _ -> Alcotest.fail "short-write crash did not fire");
      (* kill -9 semantics: no close; reopen from the torn journal *)
      let store2 = ok_or_fail (Store.open_ ~dir ~tau:2 ()) in
      Alcotest.(check int) "torn record dropped, acked prefix kept" 5
        (Store.n_trees store2);
      Array.iteri
        (fun i tree ->
          if i < 5 then
            Alcotest.(check bool) (Printf.sprintf "tree %d survives" i) true
              (Tree.equal tree (Store.tree store2 i)))
        trees;
      (* the retry lands on the seq the torn record wanted *)
      (match Store.add_seq store2 trees.(5) with
      | Ok (5, _) -> ()
      | Ok (id, _) -> Alcotest.failf "retry bound at %d" id
      | Error msg -> Alcotest.fail msg);
      Store.close store2;
      let store3 = ok_or_fail (Store.open_ ~dir ~tau:2 ()) in
      Alcotest.(check int) "all six after the retry" 6 (Store.n_trees store3);
      Alcotest.(check bool) "retried tree durable" true
        (Tree.equal trees.(5) (Store.tree store3 5));
      Store.close store3)

let test_fsync_eio_typed_error () =
  (* An EIO reported by fsync (the "fsyncgate" failure): the add must
     come back as the typed disk-fault error — never a silent ack — and
     the store must stay consistent and writable once the disk heals. *)
  with_store_dir (fun dir ->
      let store = ok_or_fail (Store.open_ ~dir ~tau:2 ()) in
      ignore (Store.add store (t "{a{b}}"));
      let fired = ref false in
      Fault.arm_action "durable.fsync" (fun _ ->
          if not !fired then begin
            fired := true;
            raise
              (Tsj_util.Durable.Disk_fault
                 { Tsj_util.Durable.f_op = `Fsync; f_path = "journal"; f_detail = "EIO" })
          end);
      let r =
        Fun.protect
          ~finally:(fun () -> Fault.disarm "durable.fsync")
          (fun () -> Store.add_seq store ~seq:1 (t "{a{c}}"))
      in
      (match r with
      | Error msg ->
        Alcotest.(check bool) ("typed fault surfaced: " ^ msg) true
          (contains msg "disk fault" && contains msg "fsync")
      | Ok _ -> Alcotest.fail "EIO on fsync was acked");
      Alcotest.(check int) "failed add not visible" 1 (Store.n_trees store);
      (* the journal was repaired in place: the same seq commits now *)
      (match Store.add_seq store ~seq:1 (t "{a{c}}") with
      | Ok (1, _) -> ()
      | Ok (id, _) -> Alcotest.failf "retry bound at %d" id
      | Error msg -> Alcotest.failf "store unusable after repair: %s" msg);
      Store.close store;
      let store2 = ok_or_fail (Store.open_ ~dir ~tau:2 ()) in
      Alcotest.(check int) "both adds durable" 2 (Store.n_trees store2);
      Store.close store2);
  (* the checkpoint writer speaks the same typed error *)
  let st =
    {
      Tsj_join.Checkpoint.fingerprint = "00";
      blocks_done = 0;
      pairs = [];
      quarantined = [];
      n_candidates = 0;
      stage_counts = [||];
      n_probed = 0;
      n_matched = 0;
      n_small_hits = 0;
      n_indexed = 0;
    }
  in
  match Tsj_join.Checkpoint.save ~path:"/nonexistent/dir/cp.journal" st with
  | exception Tsj_util.Durable.Disk_fault { Tsj_util.Durable.f_op = `Write; _ } -> ()
  | exception e -> Alcotest.failf "untyped checkpoint failure: %s" (Printexc.to_string e)
  | () -> Alcotest.fail "checkpoint saved into a nonexistent directory"

let test_failover_backoff_resets_after_rotation () =
  (* Two dead sockets and one live (shedding) server: transport
     failures grow the backoff exponent, but the moment a rotation
     reaches a server that answers at all — even with BUSY — the
     schedule must reset to the base delay instead of keeping the
     accumulated exponent.  With base 0.1 the ranges are disjoint:
     exponent 0 sleeps in [0.05, 0.1], exponent 2 in [0.2, 0.4]. *)
  with_server ~max_inflight:0 (fun addr server ->
      let slept = ref [] in
      let sleep d = slept := d :: !slept in
      let fo =
        Client.Failover.create ~attempts:4 ~base_delay_s:0.1 ~max_delay_s:8.0 ~sleep
          ~rng:(Prng.create 23)
          [
            Protocol.Unix_path "/nonexistent/a.sock";
            Protocol.Unix_path "/nonexistent/b.sock";
            addr;
          ]
      in
      (match Client.Failover.request fo (Protocol.Add { seq = None; tree = t "{a}" }) with
      | Ok (Protocol.Busy _) | Error _ -> ()
      | Ok r -> Alcotest.failf "unexpected reply %s" (Protocol.render_response r));
      (match List.rev !slept with
      | [ s0; s1; s2 ] ->
        let in_range name lo hi d =
          Alcotest.(check bool)
            (Printf.sprintf "%s = %.3f in [%.2f, %.2f]" name d lo hi)
            true
            (d >= lo -. 1e-9 && d <= hi +. 1e-9)
        in
        in_range "first (exponent 0)" 0.05 0.1 s0;
        in_range "second (exponent 1)" 0.1 0.2 s1;
        (* the BUSY answer from the live server resets the schedule:
           without the reset this sleep would be in [0.2, 0.4] *)
        in_range "after a well-formed reply (reset)" 0.05 0.1 s2
      | l -> Alcotest.failf "expected 3 sleeps, got %d" (List.length l));
      ignore server)

let test_client_retries_busy_preserved () =
  (* a persistently shedding server: the retrying client must surface
     BUSY as BUSY (an explicit answer), not as a transport error *)
  with_server ~max_inflight:0 (fun addr server ->
      let rng = Prng.create 5 in
      (match
         Client.request_with_retries ~attempts:3 ~sleep:(fun _ -> ()) ~rng addr
           (Protocol.Add { seq = None; tree = t "{a}" })
       with
      | Ok (Protocol.Busy _) -> ()
      | Ok r -> Alcotest.failf "expected BUSY, got %s" (Protocol.render_response r)
      | Error e -> Alcotest.failf "BUSY masked as error: %s" e);
      ignore server)

(* --- integrity: Merkle digests, seals, scrub, heal, anti-entropy --- *)

module Integrity = Tsj_server.Integrity
module Scrub = Tsj_server.Scrub

(* Property (qcheck): under ANY interleaving of pushes and truncates,
   the incrementally maintained Merkle tree answers root and range
   digests identically to a from-scratch rebuild. *)
let prop_merkle_incremental =
  Gen.qtest ~count:60 "Merkle incremental = recompute under push/truncate"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Prng.create (3100 + seed) in
      let m = Integrity.Merkle.create () in
      let mirror = ref [] (* newest first *) in
      let steps = 5 + Prng.int rng 40 in
      let ok = ref true in
      for i = 0 to steps - 1 do
        let n = Integrity.Merkle.size m in
        if n > 0 && Prng.int rng 4 = 0 then begin
          let keep = Prng.int rng (n + 1) in
          Integrity.Merkle.truncate m keep;
          let l = List.rev !mirror in
          mirror := List.rev (List.filteri (fun j _ -> j < keep) l)
        end
        else begin
          let line = Printf.sprintf "add %d {x%d} feed" n i in
          Integrity.Merkle.push m line;
          mirror := line :: !mirror
        end;
        let reference = Integrity.Merkle.of_lines (List.rev !mirror) in
        if Integrity.Merkle.root m <> Integrity.Merkle.root reference then
          ok := false;
        let sz = Integrity.Merkle.size m in
        if sz > 0 then begin
          let lo = Prng.int rng sz in
          let hi = lo + 1 + Prng.int rng (sz - lo) in
          if
            Integrity.Merkle.range m ~lo ~hi
            <> Integrity.Merkle.range reference ~lo ~hi
          then ok := false
        end;
        (* recompute must be a no-op on a consistent tree *)
        Integrity.Merkle.recompute m;
        if Integrity.Merkle.root m <> Integrity.Merkle.root reference then
          ok := false
      done;
      !ok)

let test_seal_roundtrip () =
  let path = Filename.temp_file "tsj_seal" ".dat" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.remove (Integrity.seal_path path) with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> output_string oc "hello line\n");
      (* never sealed: vacuously clean *)
      (match Integrity.check_seal path with
      | Ok 0 -> ()
      | _ -> Alcotest.fail "unsealed file not vacuously clean");
      Integrity.write_seal path;
      (match Integrity.check_seal path with
      | Ok 11 -> ()
      | Ok n -> Alcotest.failf "sealed %d bytes, expected 11" n
      | Error e -> Alcotest.fail e);
      (* append-only growth keeps the seal valid (prefix coverage) *)
      Out_channel.with_open_gen [ Open_append ] 0o644 path (fun oc ->
          output_string oc "appended\n");
      (match Integrity.check_seal path with
      | Ok 11 -> ()
      | _ -> Alcotest.fail "append invalidated a prefix seal");
      (* rot inside the sealed prefix is caught *)
      Faults.flip_bit path ~bit:18;
      (match Integrity.check_seal path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "rot inside the sealed prefix not caught");
      Faults.flip_bit path ~bit:18;
      (* rot in the seal sidecar itself is caught *)
      Faults.flip_bit (Integrity.seal_path path) ~bit:42;
      match Integrity.check_seal path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "rot in the seal sidecar not caught")

(* a full scrub cycle: two unbounded steps guarantee a cursor wrap *)
let full_scrub store =
  let budget = Store.journal_records store + 1 in
  let a = Store.scrub_step ~budget store in
  let b = Store.scrub_step ~budget store in
  (a.Store.sc_findings @ b.Store.sc_findings, a.Store.sc_repaired + b.Store.sc_repaired)

let test_scrub_detects_and_repairs () =
  with_store_dir (fun dir ->
      let trees = trees_of 311 8 in
      let store = ok_or_fail (Store.open_ ~dir ~tau:2 ()) in
      Array.iter (fun tree -> ignore (Store.add store tree)) trees;
      (* clean store: nothing to find *)
      let clean, _ = full_scrub store in
      Alcotest.(check int) "clean store has no findings" 0 (List.length clean);
      (* rot one bit mid-journal: detected and repaired in one cycle *)
      let journal = Filename.concat dir "journal" in
      Faults.flip_bit journal ~bit:(8 * ((Unix.stat journal).Unix.st_size / 2));
      let findings, repaired = full_scrub store in
      Alcotest.(check bool) "journal rot detected" true (findings <> []);
      Alcotest.(check bool) "journal rot repaired" true (repaired > 0);
      let clean, _ = full_scrub store in
      Alcotest.(check int) "clean after repair" 0 (List.length clean);
      (* the repair converged disk to memory: a replay agrees *)
      let replayed = ok_or_fail (Store.open_ ~dir ~tau:2 ()) in
      Alcotest.(check int) "replay after repair" 8 (Store.n_trees replayed);
      Store.close replayed;
      (* rot the snapshot (written by the repair flush): the seal is its
         only integrity cover *)
      let snapshot = Filename.concat dir "snapshot" in
      Faults.flip_bit snapshot ~bit:12;
      let findings, repaired = full_scrub store in
      Alcotest.(check bool) "snapshot rot detected" true (findings <> []);
      Alcotest.(check bool) "snapshot rot repaired" true (repaired > 0);
      (* rot the journal's seal sidecar *)
      Faults.flip_bit (Integrity.seal_path journal) ~bit:30;
      let findings, _ = full_scrub store in
      Alcotest.(check bool) "seal rot detected" true (findings <> []);
      let clean, _ = full_scrub store in
      Alcotest.(check int) "clean again" 0 (List.length clean);
      let verified, crc_failures, ranges_repaired, quarantined =
        Store.scrub_counters store
      in
      Alcotest.(check bool) "records verified counted" true (verified > 0);
      Alcotest.(check bool) "crc failures counted" true (crc_failures >= 3);
      Alcotest.(check bool) "repairs counted" true (ranges_repaired >= 3);
      Alcotest.(check int) "nothing quarantined" 0 quarantined;
      Store.close store)

let test_scrub_read_fault_is_finding_not_repair () =
  with_store_dir (fun dir ->
      let store = ok_or_fail (Store.open_ ~dir ~tau:2 ()) in
      Array.iter (fun tree -> ignore (Store.add store tree)) (trees_of 313 4);
      let fired = ref false in
      Fault.arm_action "durable.read" (fun _ ->
          if not !fired then begin
            fired := true;
            raise
              (Tsj_util.Durable.Disk_fault
                 {
                   Tsj_util.Durable.f_op = `Read;
                   f_path = Filename.concat dir "journal";
                   f_detail = "injected EIO";
                 })
          end);
      let r = Store.scrub_step ~budget:8 store in
      Fault.disarm_all ();
      Alcotest.(check bool) "EIO surfaces as a finding" true
        (r.Store.sc_findings <> []);
      Alcotest.(check int) "a failing disk is never repaired over" 0
        r.Store.sc_repaired;
      let clean, _ = full_scrub store in
      Alcotest.(check int) "disk was actually fine" 0 (List.length clean);
      Store.close store)

(* corrupt the byte at [frac] of record line [i] (0-based, past the
   epoch header) in [dir]'s journal, without touching anything else *)
let rot_journal_record dir ~record =
  let journal = Filename.concat dir "journal" in
  let text = In_channel.with_open_bin journal In_channel.input_all in
  let rec line_start idx from =
    if idx = 0 then from
    else
      match String.index_from_opt text from '\n' with
      | Some nl -> line_start (idx - 1) (nl + 1)
      | None -> Alcotest.fail "journal shorter than expected"
  in
  (* line 0 is the epoch header *)
  let start = line_start (record + 1) 0 in
  let len =
    match String.index_from_opt text start '\n' with
    | Some nl -> nl - start
    | None -> String.length text - start
  in
  Faults.flip_bit journal ~bit:(8 * (start + (len / 2)))

let test_healing_open_refetches () =
  with_store_dir (fun dir ->
      let trees = trees_of 317 6 in
      let store = ok_or_fail (Store.open_ ~dir ~tau:2 ()) in
      Array.iter (fun tree -> ignore (Store.add store tree)) trees;
      (* primary twin the heal callback fetches canonical records from *)
      let twin = ok_or_fail (Store.open_ ~tau:2 ()) in
      Array.iter (fun tree -> ignore (Store.add twin tree)) trees;
      (* abandon without close (kill -9), rot record 2 of 6 *)
      rot_journal_record dir ~record:2;
      (* without a heal source the open refuses, as before *)
      (match Store.open_ ~dir ~tau:2 () with
      | Ok _ -> Alcotest.fail "mid-journal rot accepted without heal"
      | Error _ -> ());
      let heal seq = Some (Store.record_for twin seq) in
      let healed = ok_or_fail (Store.open_ ~dir ~tau:2 ~heal ()) in
      Alcotest.(check int) "healed open keeps every tree" 6 (Store.n_trees healed);
      Array.iteri
        (fun i tree ->
          Alcotest.(check bool) (Printf.sprintf "tree %d intact" i) true
            (Tree.equal tree (Store.tree healed i)))
        trees;
      let _, crc_failures, repaired, quarantined = Store.scrub_counters healed in
      Alcotest.(check bool) "rot counted" true (crc_failures > 0);
      Alcotest.(check bool) "heal counted as repair" true (repaired > 0);
      Alcotest.(check int) "nothing quarantined" 0 quarantined;
      (* the splice is durable: a plain reopen succeeds *)
      let clean, _ = full_scrub healed in
      Alcotest.(check int) "healed store scrubs clean" 0 (List.length clean);
      Store.close healed;
      let reopened = ok_or_fail (Store.open_ ~dir ~tau:2 ()) in
      Alcotest.(check int) "plain reopen after heal" 6 (Store.n_trees reopened);
      Store.close reopened)

let test_quarantine_open_serves_prefix () =
  with_store_dir (fun dir ->
      let trees = trees_of 331 6 in
      let store = ok_or_fail (Store.open_ ~dir ~tau:2 ()) in
      Array.iter (fun tree -> ignore (Store.add store tree)) trees;
      rot_journal_record dir ~record:3;
      (* healing fails (no source), quarantine mode opens degraded *)
      let heal _ = None in
      let st = ok_or_fail (Store.open_ ~dir ~tau:2 ~heal ~quarantine:true ()) in
      Alcotest.(check int) "surviving prefix served" 3 (Store.n_trees st);
      let _, crc_failures, _, quarantined = Store.scrub_counters st in
      Alcotest.(check bool) "rot counted" true (crc_failures > 0);
      Alcotest.(check int) "rotted suffix quarantined" 3 quarantined;
      Alcotest.(check bool) "quarantine file holds the moved-aside records"
        true
        (Sys.file_exists (Filename.concat dir "journal.quarantine"));
      (* degraded is still consistent: scrubs clean, serves the prefix *)
      let clean, _ = full_scrub st in
      Alcotest.(check int) "quarantined store scrubs clean" 0 (List.length clean);
      Array.iteri
        (fun i tree ->
          if i < 3 then
            Alcotest.(check bool) (Printf.sprintf "tree %d intact" i) true
              (Tree.equal tree (Store.tree st i)))
        trees;
      Store.close st)

let test_anti_entropy_transfers_suffix () =
  let trees = trees_of 337 10 in
  let primary = ok_or_fail (Store.open_ ~tau:2 ()) in
  Array.iter (fun tree -> ignore (Store.add primary tree)) trees;
  let n = Store.n_trees primary in
  (* replica shares records [0, 4), then its history diverges *)
  let replica = ok_or_fail (Store.open_ ~tau:2 ()) in
  for i = 0 to 3 do
    ignore (Store.add replica trees.(i))
  done;
  ignore (ok_or_fail (Store.add_seq replica (t "{z{z}{z}}")));
  let probes = ref 0 in
  let digest ~lo ~hi =
    incr probes;
    Ok (Store.digest primary ~lo ~hi)
  in
  let fetch seq = Ok (Store.record_for primary seq) in
  (match Scrub.anti_entropy ~local:replica ~remote_n:n ~digest ~fetch with
  | Error e -> Alcotest.fail e
  | Ok transferred ->
    Alcotest.(check int) "transfers exactly the diverging suffix" (n - 4)
      transferred);
  Alcotest.(check bool)
    (Printf.sprintf "O(log n) digest probes (%d)" !probes)
    true
    (!probes <= 10);
  Alcotest.(check int) "replica converged" n (Store.n_trees replica);
  Array.iteri
    (fun i tree ->
      Alcotest.(check bool) (Printf.sprintf "record %d converged" i) true
        (Tree.equal tree (Store.tree replica i)))
    trees;
  Alcotest.(check string) "Merkle roots agree" (Store.merkle_root primary)
    (Store.merkle_root replica);
  let _, _, repaired, _ = Store.scrub_counters replica in
  Alcotest.(check bool) "range repair credited" true (repaired > 0);
  (* an already-converged pair transfers nothing *)
  match Scrub.anti_entropy ~local:replica ~remote_n:n ~digest ~fetch with
  | Ok 0 -> ()
  | Ok k -> Alcotest.failf "idempotent repair moved %d records" k
  | Error e -> Alcotest.fail e

let test_digest_wire_verb () =
  with_store_dir (fun dir ->
      with_server ~dir (fun addr server ->
          let conn = ok_or_fail (Client.connect addr) in
          List.iter
            (fun s -> ignore (request conn (Protocol.Add { seq = None; tree = t s })))
            [ "{a{b}{c}}"; "{a{b}{d}}"; "{x{y{z}}}" ];
          let store = Server.store server in
          (match request conn (Protocol.Digest { epoch = 0; lo = 0; hi = 3 }) with
          | Protocol.Digest_reply { epoch = 0; lo = 0; hi = 3; digest } ->
            Alcotest.(check string) "digest matches the store's Merkle range"
              (Store.digest store ~lo:0 ~hi:3)
              digest
          | r -> Alcotest.failf "bad DIGEST reply %s" (Protocol.render_response r));
          (* a stale epoch is fenced, an overlong range is an error *)
          (match request conn (Protocol.Digest { epoch = 7; lo = 0; hi = 1 }) with
          | Protocol.Fenced _ -> ()
          | r -> Alcotest.failf "stale epoch answered %s" (Protocol.render_response r));
          (match request conn (Protocol.Digest { epoch = 0; lo = 0; hi = 99 }) with
          | Protocol.Err _ -> ()
          | r ->
            Alcotest.failf "out-of-range DIGEST answered %s"
              (Protocol.render_response r));
          (* STATS carries the scrub counters over the wire *)
          match request conn Protocol.Stats with
          | Protocol.Stats_reply { crc_failures = 0; repaired = 0; _ } -> ()
          | r -> Alcotest.failf "bad STATS %s" (Protocol.render_response r)))

let test_server_background_scrubber () =
  with_store_dir (fun dir ->
      let sock = Filename.temp_file "tsj_sock" "" in
      Sys.remove sock;
      let addr = Protocol.Unix_path sock in
      let config =
        { (Server.default_config addr ~tau:2) with
          Server.dir = Some dir;
          scrub_interval_s = Some 0.05;
          scrub_budget = 64;
          drain_budget_s = 5.0 }
      in
      let server = ok_or_fail (Server.create config) in
      Server.start server;
      Fun.protect
        ~finally:(fun () ->
          Server.drain server;
          Server.wait server;
          if Sys.file_exists sock then Sys.remove sock)
        (fun () ->
          let conn = ok_or_fail (Client.connect addr) in
          List.iter
            (fun s -> ignore (request conn (Protocol.Add { seq = None; tree = t s })))
            [ "{a{b}{c}}"; "{a{b}{d}}"; "{x{y{z}}}"; "{p{q}}" ];
          (* rot the live journal under the running server: the
             background scrubber must detect and repair it *)
          let journal = Filename.concat dir "journal" in
          Faults.flip_bit journal ~bit:(8 * ((Unix.stat journal).Unix.st_size / 2));
          let deadline = Unix.gettimeofday () +. 10.0 in
          let repaired () =
            match request conn Protocol.Stats with
            | Protocol.Stats_reply { crc_failures; repaired; _ } ->
              crc_failures > 0 && repaired > 0
            | _ -> false
          in
          while (not (repaired ())) && Unix.gettimeofday () < deadline do
            Thread.delay 0.05
          done;
          Alcotest.(check bool) "background scrub detected and repaired rot" true
            (repaired ());
          (* serving was never wrong while the disk rotted *)
          match request conn (Protocol.Query { tau = 1; tree = t "{a{b}{c}}" }) with
          | Protocol.Hits { degraded = false; hits; _ } ->
            Alcotest.(check (list (pair int int))) "answers unaffected by rot"
              [ (0, 0); (1, 1) ]
              hits
          | r -> Alcotest.failf "bad query reply %s" (Protocol.render_response r)))

let test_scrub_storm () =
  let trees = trees_of 83 20 in
  let queries = trees_of 84 4 in
  let r = Faults.run_scrub_storm ~seed:911 ~rounds:30 ~trees ~queries ~tau:2 () in
  Alcotest.(check bool) "flips injected" true (r.Faults.sb_flips > 0);
  Alcotest.(check bool) "every corruption detected" true r.Faults.sb_all_detected;
  Alcotest.(check int) "zero wrong answers" 0 r.Faults.sb_wrong_answers;
  Alcotest.(check bool) "repairs applied" true
    (r.Faults.sb_scrub_repairs + r.Faults.sb_healed + r.Faults.sb_quarantined > 0);
  Alcotest.(check bool) "anti-entropy moved only the differing ranges" true
    r.Faults.sb_transfer_frugal;
  Alcotest.(check bool) "converged" true r.Faults.sb_converged

(* Property (qcheck): at ANY random bit-rot schedule, every injected
   corruption is detected, no answer is ever wrong, anti-entropy
   transfers exactly the diverging suffixes, and the stores converge. *)
let prop_scrub_storm =
  Gen.qtest ~count:10 "scrub storm invariants under random seeds"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Prng.create (9300 + seed) in
      let trees = Array.init 10 (fun _ -> Gen.random_tree rng (3 + Prng.int rng 8)) in
      let queries = Array.init 2 (fun _ -> Gen.random_tree rng (3 + Prng.int rng 8)) in
      let r = Faults.run_scrub_storm ~seed ~rounds:8 ~trees ~queries ~tau:2 () in
      r.Faults.sb_all_detected
      && r.Faults.sb_wrong_answers = 0
      && r.Faults.sb_transfer_frugal && r.Faults.sb_converged)

(* --- overload robustness: deadlines, fair admission, hygiene --- *)

module Admission = Tsj_server.Admission

let test_deadline_expired_on_wire () =
  with_server (fun addr server ->
      ignore server;
      let conn = ok_or_fail (Client.connect addr) in
      ignore (request conn (Protocol.Add { seq = None; tree = t "{a{b}}" }));
      let ((fd, _, _) as raw) = raw_connect addr in
      (* a budget that is already spent: answered ERR, never a hang or a
         silent drop *)
      (match Protocol.parse_response (raw_request raw "QUERY 1 @0 {a{b}}") with
      | Ok (Protocol.Err reason) ->
        Alcotest.(check string) "expired reason" "deadline expired" reason
      | Ok r -> Alcotest.failf "expected ERR, got %s" (Protocol.render_response r)
      | Error e -> Alcotest.fail e);
      (* an expired ADD is refused before it reaches the journal *)
      (match Protocol.parse_response (raw_request raw "ADD @0 {z}") with
      | Ok (Protocol.Err _) -> ()
      | Ok r -> Alcotest.failf "expected ERR, got %s" (Protocol.render_response r)
      | Error e -> Alcotest.fail e);
      (* a generous budget answers normally *)
      (match Protocol.parse_response (raw_request raw "QUERY 1 @60000 {a{b}}") with
      | Ok (Protocol.Hits { hits; _ }) ->
        Alcotest.(check bool) "budgeted query answers" true (List.mem_assoc 0 hits)
      | Ok r -> Alcotest.failf "expected HITS, got %s" (Protocol.render_response r)
      | Error e -> Alcotest.fail e);
      (match request conn Protocol.Stats with
      | Protocol.Stats_reply s ->
        Alcotest.(check int) "expired counted" 2 s.Protocol.expired;
        Alcotest.(check int) "expired ADD never indexed" 1 s.Protocol.trees
      | r -> Alcotest.failf "bad stats: %s" (Protocol.render_response r));
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Client.close conn)

let test_stats_latency_quantiles () =
  with_server (fun addr server ->
      ignore server;
      let conn = ok_or_fail (Client.connect addr) in
      List.iter
        (fun s -> ignore (request conn (Protocol.Add { seq = None; tree = t s })))
        [ "{a{b}}"; "{a{c}}"; "{d}" ];
      for _ = 1 to 5 do
        ignore (request conn (Protocol.Query { tau = 1; tree = t "{a{b}}" }))
      done;
      ignore (request conn (Protocol.Knn { k = 2; tree = t "{a{b}}" }));
      (match request conn Protocol.Stats with
      | Protocol.Stats_reply s ->
        Alcotest.(check bool) "query p50 measured" true (s.Protocol.q_p50 >= 1);
        Alcotest.(check bool) "query quantiles monotone" true
          (s.Protocol.q_p50 <= s.Protocol.q_p95
          && s.Protocol.q_p95 <= s.Protocol.q_p99);
        Alcotest.(check bool) "knn p99 measured" true (s.Protocol.k_p99 >= 1);
        Alcotest.(check bool) "add p50 measured" true (s.Protocol.a_p50 >= 1);
        Alcotest.(check bool) "add quantiles monotone" true
          (s.Protocol.a_p50 <= s.Protocol.a_p95
          && s.Protocol.a_p95 <= s.Protocol.a_p99)
      | r -> Alcotest.failf "bad stats: %s" (Protocol.render_response r));
      (* the binary STATS frame carries the same counters *)
      let bin = bin_connect addr in
      let sid = Client.Bin.send bin Protocol.Stats in
      Client.Bin.flush bin;
      (match Client.Bin.recv bin with
      | Ok (id, Protocol.Stats_reply s) ->
        Alcotest.(check int) "stats id echoed" sid id;
        Alcotest.(check bool) "binary stats carries quantiles" true
          (s.Protocol.q_p50 >= 1 && s.Protocol.q_p50 <= s.Protocol.q_p99)
      | Ok (_, r) ->
        Alcotest.failf "bad binary stats: %s" (Protocol.render_response r)
      | Error e -> Alcotest.fail e);
      Client.Bin.close bin;
      Client.close conn)

let test_busy_retry_after_hint () =
  (* one token, refilled five times a second: the first query is
     admitted, the immediate follow-up is shed with a concrete hint *)
  with_server ~rate:5.0 ~burst:1 (fun addr server ->
      ignore server;
      let conn = ok_or_fail (Client.connect addr) in
      (match request conn (Protocol.Query { tau = 1; tree = t "{a}" }) with
      | Protocol.Hits _ -> ()
      | r -> Alcotest.failf "first query shed: %s" (Protocol.render_response r));
      (match request conn (Protocol.Query { tau = 1; tree = t "{a}" }) with
      | Protocol.Busy { retry_after_ms = Some ms } ->
        Alcotest.(check bool) "hint positive" true (ms >= 1);
        Alcotest.(check bool) "hint bounded by the refill period" true (ms <= 200)
      | Protocol.Busy { retry_after_ms = None } ->
        Alcotest.fail "BUSY without a retry-after hint"
      | r -> Alcotest.failf "expected BUSY, got %s" (Protocol.render_response r));
      (* waiting out the hint earns a token back *)
      Thread.delay 0.25;
      (match request conn (Protocol.Query { tau = 1; tree = t "{a}" }) with
      | Protocol.Hits _ -> ()
      | r -> Alcotest.failf "token did not refill: %s" (Protocol.render_response r));
      Client.close conn)

let test_idle_connection_reaped () =
  with_server ~idle_timeout_s:0.1 (fun addr server ->
      let idle = ok_or_fail (Client.connect addr) in
      let deadline = Unix.gettimeofday () +. 5.0 in
      let reaped () = (Server.stats server).Protocol.reaped >= 1 in
      while (not (reaped ())) && Unix.gettimeofday () < deadline do
        Thread.delay 0.02
      done;
      Alcotest.(check bool) "idle connection reaped" true (reaped ());
      (* the reaped connection is really gone *)
      (match Client.request idle Protocol.Health with
      | Error _ -> ()
      | Ok _ -> (
        (* the first request may race the close; a second must fail *)
        match Client.request idle Protocol.Health with
        | Error _ -> ()
        | Ok r ->
          Alcotest.failf "reaped conn served: %s" (Protocol.render_response r)));
      Client.close idle;
      (* a fresh connection is untouched *)
      let live = ok_or_fail (Client.connect addr) in
      (match request live Protocol.Health with
      | Protocol.Health_reply _ -> ()
      | r -> Alcotest.failf "server dead after reap: %s" (Protocol.render_response r));
      Client.close live)

let test_max_conns_cap () =
  with_server ~max_conns:1 (fun addr server ->
      let first = ok_or_fail (Client.connect addr) in
      (match request first Protocol.Health with
      | Protocol.Health_reply _ -> ()
      | r -> Alcotest.failf "first conn refused: %s" (Protocol.render_response r));
      (* the connection over the cap is accepted and immediately closed *)
      (match Client.connect ~timeout_s:1.0 addr with
      | Error _ -> ()
      | Ok extra -> (
        (match Client.request extra Protocol.Health with
        | Error _ -> ()
        | Ok r ->
          Alcotest.failf "over-cap conn served: %s" (Protocol.render_response r));
        Client.close extra));
      (* the admitted connection is still served *)
      (match request first Protocol.Health with
      | Protocol.Health_reply _ -> ()
      | r -> Alcotest.failf "first conn dead: %s" (Protocol.render_response r));
      Alcotest.(check bool) "over-cap close counted" true
        ((Server.stats server).Protocol.reaped >= 1);
      Client.close first)

let test_emfile_accept_pause () =
  with_server (fun addr server ->
      Fault.arm_action "server.emfile" (fun _ ->
          raise (Unix.Unix_error (Unix.EMFILE, "accept", "")));
      (* the OS backlog takes the connection; the paused server cannot *)
      let pending = Client.connect ~timeout_s:5.0 addr in
      let deadline = Unix.gettimeofday () +. 5.0 in
      while
        (Server.stats server).Protocol.accept_pauses = 0
        && Unix.gettimeofday () < deadline
      do
        Thread.delay 0.02
      done;
      Fault.disarm "server.emfile";
      Alcotest.(check bool) "accept pause counted" true
        ((Server.stats server).Protocol.accept_pauses >= 1);
      (* once fds are back, the backlogged connection is served *)
      match pending with
      | Error e -> Alcotest.failf "backlogged connect failed: %s" e
      | Ok c -> (
        (match Client.request c Protocol.Health with
        | Ok (Protocol.Health_reply _) -> ()
        | Ok r -> Alcotest.failf "bad health: %s" (Protocol.render_response r)
        | Error e ->
          Alcotest.failf "backlogged conn dead after recovery: %s" e);
        Client.close c))

let test_overload_storm () =
  let trees = trees_of 91 16 in
  let queries = trees_of 92 4 in
  let r =
    Faults.run_overload_storm ~seed:1055 ~duration_s:0.8 ~greedy:2 ~trees
      ~queries ~tau:2 ()
  in
  Alcotest.(check bool) "greedy load dwarfs the conforming load" true
    (r.Faults.ov_greedy_sent > r.Faults.ov_conforming_sent);
  Alcotest.(check bool) "goodput held" true r.Faults.ov_goodput_ok;
  Alcotest.(check bool) "conforming client not starved" true
    r.Faults.ov_no_starvation;
  Alcotest.(check int) "conforming client never shed" 0
    r.Faults.ov_conforming_shed;
  Alcotest.(check bool) "greedy excess shed" true (r.Faults.ov_greedy_shed > 0);
  Alcotest.(check int) "no late answers" 0 r.Faults.ov_late_answers;
  Alcotest.(check int) "no wrong answers" 0 r.Faults.ov_wrong_answers;
  Alcotest.(check int) "hedge-raced answers identical" 0
    r.Faults.ov_hedge_mismatches;
  Alcotest.(check bool) "idle connection reaped" true (r.Faults.ov_reaped >= 1);
  Alcotest.(check bool) "expired ADD refused" true r.Faults.ov_expired_add_rejected;
  Alcotest.(check bool) "store unchanged by the expired ADD" true
    r.Faults.ov_trees_stable

(* Property (qcheck): a client that spaces its requests at (or above)
   its bucket's refill period is NEVER shed, whatever the rate, burst
   and jitter — fair admission cannot starve a conforming client. *)
let prop_token_bucket_no_starvation =
  Gen.qtest ~count:300 "token bucket never starves a conforming client"
    QCheck.(triple (int_range 1 1000) (int_range 1 64) (int_bound 10_000))
    (fun (rate_x10, burst, seed) ->
      let rate = float_of_int rate_x10 /. 10. in
      let rng = Prng.create (31 + seed) in
      let clock = ref 1.0 in
      let b = Admission.Token_bucket.create ~rate ~burst ~now:!clock in
      let ok = ref true in
      for _ = 1 to 100 do
        (* spacing strictly above the refill period is conforming *)
        let jitter = float_of_int (1 + Prng.int rng 1000) /. 1000. in
        clock := !clock +. ((1. +. jitter) /. rate);
        if not (Admission.Token_bucket.take b ~now:!clock) then ok := false
      done;
      !ok)

(* Property (qcheck): folding [Deadline.after_hop] over ANY chain of
   hops (random elapsed times and response margins) yields a budget
   that is monotonically non-increasing and never negative. *)
let prop_deadline_monotone =
  Gen.qtest ~count:300 "propagated deadlines never grow"
    QCheck.(
      pair (int_bound 5_000_000)
        (small_list (pair (int_bound 10_000) (int_bound 1_000))))
    (fun (d0, hops) ->
      let d = ref (Admission.Deadline.clamp d0) in
      !d >= 0
      && List.for_all
           (fun (elapsed_ms, margin_ms) ->
             let d' = Admission.Deadline.after_hop ~margin_ms ~elapsed_ms !d in
             let ok = d' <= !d && d' >= 0 in
             d := d';
             ok)
           hops)

let suite =
  [
    Alcotest.test_case "addr parse" `Quick test_addr_parse;
    Alcotest.test_case "request round trip" `Quick test_request_roundtrip;
    Alcotest.test_case "response round trip" `Quick test_response_roundtrip;
    Alcotest.test_case "store persistence" `Quick test_store_persistence;
    Alcotest.test_case "store rejects mid-journal corruption" `Quick
      test_store_corrupt_journal_rejected;
    Alcotest.test_case "store rejects seq gaps" `Quick test_store_seq_gap_rejected;
    Alcotest.test_case "kill and restart (1 and 4 domains)" `Quick test_kill_and_restart;
    Alcotest.test_case "kill and restart with torn tail" `Quick
      test_kill_and_restart_torn_tail;
    prop_restart_deterministic;
    Alcotest.test_case "server end to end" `Quick test_server_end_to_end;
    Alcotest.test_case "server isolates malformed connections" `Quick
      test_server_malformed_isolation;
    Alcotest.test_case "server isolates injected request faults" `Quick
      test_server_injected_request_fault_isolation;
    Alcotest.test_case "server sheds with BUSY at the watermark" `Quick
      test_server_admission_busy;
    Alcotest.test_case "server degrades over-deadline queries" `Quick
      test_server_deadline_degrades;
    Alcotest.test_case "server drain flushes snapshot + journal" `Quick
      test_server_drain_flushes;
    Alcotest.test_case "server survives accept faults" `Quick
      test_server_accept_fault_drops_one_connection;
    Alcotest.test_case "replication protocol round trip" `Quick
      test_replication_protocol_roundtrip;
    Alcotest.test_case "replicated cluster end to end" `Quick
      test_replicated_cluster_end_to_end;
    Alcotest.test_case "replica torn-tail catch-up" `Quick
      test_replica_torn_tail_catchup;
    Alcotest.test_case "failover storm (1 and 4 domains)" `Quick test_failover_storm;
    prop_failover_storm;
    Alcotest.test_case "binary HELLO negotiation and pipelining" `Quick
      test_binary_hello_and_pipelining;
    Alcotest.test_case "binary ADDs group-commit into batched fsyncs" `Quick
      test_binary_group_commit_fsyncs;
    Alcotest.test_case "group-commit crash recovers the acked prefix" `Quick
      test_group_commit_crash_recovers_acked_prefix;
    Alcotest.test_case "bounded-staleness reads answer or redirect" `Quick
      test_bounded_staleness_reads;
    Alcotest.test_case "client backoff deterministic" `Quick
      test_client_backoff_deterministic;
    Alcotest.test_case "client backoff capped by the deadline" `Quick
      test_client_backoff_deadline_cap;
    Alcotest.test_case "client with_retries" `Quick test_client_with_retries;
    Alcotest.test_case "client preserves BUSY" `Quick test_client_retries_busy_preserved;
    Alcotest.test_case "short-write crash recovers the acked prefix" `Quick
      test_short_write_crash_recovers;
    Alcotest.test_case "fsync EIO surfaces as a typed disk fault" `Quick
      test_fsync_eio_typed_error;
    Alcotest.test_case "failover backoff resets after a live rotation" `Quick
      test_failover_backoff_resets_after_rotation;
    prop_merkle_incremental;
    Alcotest.test_case "seal round trip" `Quick test_seal_roundtrip;
    Alcotest.test_case "scrub detects and repairs rot" `Quick
      test_scrub_detects_and_repairs;
    Alcotest.test_case "scrub read fault is a finding, not a repair" `Quick
      test_scrub_read_fault_is_finding_not_repair;
    Alcotest.test_case "healing open refetches rotted records" `Quick
      test_healing_open_refetches;
    Alcotest.test_case "quarantine open serves the surviving prefix" `Quick
      test_quarantine_open_serves_prefix;
    Alcotest.test_case "anti-entropy transfers only the diverging suffix" `Quick
      test_anti_entropy_transfers_suffix;
    Alcotest.test_case "DIGEST wire verb" `Quick test_digest_wire_verb;
    Alcotest.test_case "background scrubber repairs live rot" `Quick
      test_server_background_scrubber;
    Alcotest.test_case "scrub storm" `Quick test_scrub_storm;
    prop_scrub_storm;
    Alcotest.test_case "expired deadlines answered ERR on the wire" `Quick
      test_deadline_expired_on_wire;
    Alcotest.test_case "STATS latency quantiles (text and binary)" `Quick
      test_stats_latency_quantiles;
    Alcotest.test_case "BUSY carries a retry-after hint" `Quick
      test_busy_retry_after_hint;
    Alcotest.test_case "idle connections reaped" `Quick
      test_idle_connection_reaped;
    Alcotest.test_case "connection cap closes the overflow" `Quick
      test_max_conns_cap;
    Alcotest.test_case "EMFILE pauses accepts, then recovers" `Quick
      test_emfile_accept_pause;
    Alcotest.test_case "overload storm" `Slow test_overload_storm;
    prop_token_bucket_no_starvation;
    prop_deadline_monotone;
  ]
