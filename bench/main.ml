(* Benchmark harness.

   Two layers:
   - the experiment runners of Tsj_harness.Experiments regenerate every
     table and figure of the paper's evaluation (macro, one timed run
     each, deterministic datasets);
   - a Bechamel section micro-benchmarks the individual kernels (TED,
     partitioning, index operations, filters).

   Usage:
     dune exec bench/main.exe                      # everything
     dune exec bench/main.exe -- fig10 fig14       # selected experiments
     dune exec bench/main.exe -- --scale 0.5 all   # smaller datasets
     dune exec bench/main.exe -- micro             # kernels only *)

module Experiments = Tsj_harness.Experiments

(* --- Bechamel micro-benchmarks --- *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  Tsj_harness.Table.heading "Micro-benchmarks (Bechamel, ns per run)";
  let rng = Tsj_util.Prng.create 7 in
  let params = Tsj_datagen.Generator.default in
  let t80 = Tsj_datagen.Generator.random_tree rng params in
  let t80b = Tsj_datagen.Generator.random_tree rng params in
  let near =
    let labels = Tsj_datagen.Generator.alphabet params in
    snd (Tsj_tree.Edit_op.random_script rng ~labels 2 t80)
  in
  let prep1 = Tsj_ted.Ted.preprocess t80 in
  let prep2 = Tsj_ted.Ted.preprocess t80b in
  let prep_near = Tsj_ted.Ted.preprocess near in
  let cb1 = Tsj_ted.Bounds.Compiled.of_tree t80 in
  let cb2 = Tsj_ted.Bounds.Compiled.of_tree t80b in
  let cb_near = Tsj_ted.Bounds.Compiled.of_tree near in
  let btree = Tsj_tree.Binary_tree.of_tree t80 in
  let pre1 = Tsj_tree.Traversal.preorder_labels t80 in
  let pre2 = Tsj_tree.Traversal.preorder_labels t80b in
  let bag1 = Tsj_baselines.Binary_branch.bag_of_tree t80 in
  let bag2 = Tsj_baselines.Binary_branch.bag_of_tree t80b in
  let partition = Tsj_core.Partition.partition btree ~delta:7 in
  let subgraphs = Tsj_core.Subgraph.of_partition ~tree_id:0 partition in
  let filled_index =
    let idx = Tsj_core.Two_layer_index.create ~tau:3 () in
    Array.iter (Tsj_core.Two_layer_index.insert idx) subgraphs;
    idx
  in
  let tests =
    [
      Test.make ~name:"ted/zhang-shasha (80 vs 80, far)"
        (Staged.stage (fun () -> Tsj_ted.Ted.distance_prep prep1 prep2));
      Test.make ~name:"ted/zhang-shasha (80 vs 80, near)"
        (Staged.stage (fun () -> Tsj_ted.Ted.distance_prep prep1 prep_near));
      Test.make ~name:"ted/banded tau=3 (80 vs 80, near)"
        (Staged.stage (fun () -> Tsj_ted.Ted.bounded_distance_prep prep1 prep_near 3));
      Test.make ~name:"ted/banded tau=3 (80 vs 80, far)"
        (Staged.stage (fun () -> Tsj_ted.Ted.bounded_distance_prep prep1 prep2 3));
      Test.make ~name:"ted/preprocess (80)"
        (Staged.stage (fun () -> Tsj_ted.Ted.preprocess t80));
      Test.make ~name:"tree/lcrs-transform (80)"
        (Staged.stage (fun () -> Tsj_tree.Binary_tree.of_tree t80));
      Test.make ~name:"filter/banded-sed tau=3 (80)"
        (Staged.stage (fun () -> Tsj_ted.String_edit.within pre1 pre2 3));
      Test.make ~name:"cascade/compile (80)"
        (Staged.stage (fun () -> Tsj_ted.Bounds.Compiled.of_tree t80));
      Test.make ~name:"cascade/outcome tau=3 (80 vs 80, near)"
        (Staged.stage (fun () -> Tsj_ted.Bounds.Compiled.cascade ~tau:3 cb1 cb_near));
      Test.make ~name:"cascade/outcome tau=3 (80 vs 80, far)"
        (Staged.stage (fun () -> Tsj_ted.Bounds.Compiled.cascade ~tau:3 cb1 cb2));
      Test.make ~name:"cascade/greedy-upper (80 vs 80, near)"
        (Staged.stage (fun () -> Tsj_ted.Bounds.Compiled.upper cb1 cb_near));
      Test.make ~name:"filter/binary-branch BIB (80)"
        (Staged.stage (fun () -> Tsj_baselines.Binary_branch.distance bag1 bag2));
      Test.make ~name:"filter/bag-of-branches build (80)"
        (Staged.stage (fun () -> Tsj_baselines.Binary_branch.bag_of_tree t80));
      Test.make ~name:"partsj/max-min-size delta=7 (80)"
        (Staged.stage (fun () -> Tsj_core.Partition.max_min_size btree ~delta:7));
      Test.make ~name:"partsj/partition delta=7 (80)"
        (Staged.stage (fun () -> Tsj_core.Partition.partition btree ~delta:7));
      Test.make ~name:"partsj/index-insert (7 subgraphs)"
        (Staged.stage (fun () ->
             let idx = Tsj_core.Two_layer_index.create ~tau:3 () in
             Array.iter (Tsj_core.Two_layer_index.insert idx) subgraphs));
      Test.make ~name:"partsj/index-probe (80 nodes)"
        (Staged.stage (fun () ->
             let hits = ref 0 in
             for v = 0 to btree.Tsj_tree.Binary_tree.size - 1 do
               Tsj_core.Two_layer_index.probe filled_index btree v (fun _ -> incr hits)
             done;
             !hits));
      Test.make ~name:"partsj/subgraph-match (own tree)"
        (Staged.stage (fun () ->
             Array.for_all
               (fun s -> Tsj_core.Subgraph.matches s btree s.Tsj_core.Subgraph.root)
               subgraphs));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let results =
    List.map
      (fun test ->
        let name = Test.Elt.name (List.hd (Test.elements test)) in
        let raw = Benchmark.all cfg instances test in
        let res = Analyze.all ols Instance.monotonic_clock raw in
        (name, res))
      tests
  in
  let rows =
    List.concat_map
      (fun (_, res) ->
        Hashtbl.fold
          (fun name ols acc ->
            let ns =
              match Analyze.OLS.estimates ols with
              | Some (x :: _) -> x
              | _ -> nan
            in
            [ name; Printf.sprintf "%.0f ns" ns ] :: acc)
          res [])
      results
  in
  Tsj_harness.Table.print
    ~header:[ "kernel"; "time/run" ]
    ~align:[ Tsj_harness.Table.Left; Tsj_harness.Table.Right ]
    (List.sort compare rows)

let () =
  let scale = ref 1.0 in
  let seed = ref 42 in
  let domains = ref 1 in
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
      scale := float_of_string v;
      parse rest
    | "--seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | ("--domains" | "-j") :: v :: rest ->
      domains := max 1 (int_of_string v);
      parse rest
    | x :: rest ->
      selected := x :: !selected;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let config =
    { Experiments.default_config with
      Experiments.scale = !scale; seed = !seed; domains = !domains }
  in
  let selected = if !selected = [] then [ "all" ] else List.rev !selected in
  let known =
    [
      ("fig10", fun () -> Experiments.fig10_11 config);
      ("fig11", fun () -> Experiments.fig10_11 config);
      ("fig12", fun () -> Experiments.fig12_13 config);
      ("fig13", fun () -> Experiments.fig12_13 config);
      ("fig14", fun () -> Experiments.fig14 config);
      ("tab1", fun () -> Experiments.fig14 config);
      ("ablation", fun () -> Experiments.ablation config);
      ("parallel", fun () -> Experiments.parallel config);
      ("perf", fun () -> Experiments.perf config);
      ("dag", fun () -> Experiments.dag config);
      ("resilience", fun () -> Experiments.resilience config);
      ("serving", fun () -> Experiments.serving config);
      ("overload", fun () -> Experiments.overload config);
      ("replication", fun () -> Experiments.replication config);
      ("sharding", fun () -> Experiments.sharding config);
      ("integrity", fun () -> Experiments.integrity config);
      ( "smoke",
        (* Tiny-scale perf + dag + resilience + serving + replication
           run — the dune runtest hook.  Exercises the whole parallel
           pipeline (pool, block sweep, pipelined verify, JSON
           emission), fails on any cross-domain mismatch, asserts the
           consed join bit-identical with a non-zero memo hit rate on
           the redundant profile, runs one kill-and-resume scenario
           asserting the resumed output bit-identical to an
           uninterrupted run, drives the similarity-search service
           end-to-end (burst, shed accounting, drain, crash replay),
           runs a tiny overload-storm rung (fair admission, deadline
           propagation, goodput under a greedy burst),
           and runs the replicated cluster through a primary kill,
           promotion and the randomized failover storm, then the
           sharded cluster (band-key router over 8 shards, a
           journal-streaming migration, a killed shard degrading
           soundly) through the randomized sharded storm, and the
           integrity machinery (scrub overhead, offline full pass,
           the randomized bit-rot storm). *)
        fun () ->
          let tiny =
            { config with Experiments.scale = Float.min config.Experiments.scale 0.0625 }
          in
          Experiments.perf tiny;
          Experiments.dag tiny;
          Experiments.resilience tiny;
          Experiments.serving tiny;
          Experiments.overload tiny;
          Experiments.replication tiny;
          Experiments.sharding tiny;
          Experiments.integrity tiny );
      ("micro", micro);
      ( "all",
        fun () ->
          Experiments.run_all config;
          micro () );
    ]
  in
  List.iter
    (fun name ->
      match List.assoc_opt name known with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown experiment %S; known: %s\n" name
          (String.concat ", " (List.map fst known));
        exit 1)
    (List.sort_uniq compare selected
    |> fun l ->
    (* fig10/fig11 share a runner; drop duplicates that map to the same
       runner invocation *)
    if List.mem "all" l then [ "all" ]
    else if List.mem "fig10" l && List.mem "fig11" l then
      List.filter (fun x -> x <> "fig11") l
    else if List.mem "fig12" l && List.mem "fig13" l then
      List.filter (fun x -> x <> "fig13") l
    else l)
