let recommended_domains () =
  match Sys.getenv_opt "TSJ_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 -> d
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* One shared pool for the whole process, created on first parallel call
   and grown (replaced) if a caller asks for more domains than it has.
   Helpers are joined at exit so the process never leaks blocked
   domains. *)
let shared : Pool.t option ref = ref None

let shared_mutex = Mutex.create ()

let at_exit_registered = ref false

let pool ~domains =
  if domains < 1 then invalid_arg "Parallel.pool: domains must be >= 1";
  Mutex.lock shared_mutex;
  let p =
    match !shared with
    | Some p when Pool.size p >= domains -> p
    | prev ->
      Option.iter Pool.shutdown prev;
      let p = Pool.create ~domains in
      shared := Some p;
      if not !at_exit_registered then begin
        at_exit_registered := true;
        at_exit (fun () ->
            Mutex.lock shared_mutex;
            let p = !shared in
            shared := None;
            Mutex.unlock shared_mutex;
            Option.iter Pool.shutdown p)
      end;
      p
  in
  Mutex.unlock shared_mutex;
  p

(* Below this many elements the pool dispatch (wake + steal + join
   handshake) costs more than the fan-out saves; run on the caller.
   Measured on the fig10-style preprocessing workload (~30 µs/tree),
   where dispatching a sub-millisecond map loses at any domain count. *)
let sequential_cutoff = 64

let map ~domains f xs =
  if domains < 1 then invalid_arg "Parallel.map: domains must be >= 1";
  let n = Array.length xs in
  (* Oversubscribing the hardware never helps a compute-bound map: extra
     domains only add scheduling and allocation contention (the
     prep_wall_s regression of BENCH_partsj.json).  Joins may still ask
     for more domains than cores — the pipelined sweep overlaps phases —
     so clamp only here, where the work is a pure map. *)
  let width = min domains (Domain.recommended_domain_count ()) in
  if width = 1 || n < sequential_cutoff then Array.map f xs
  else Pool.map (pool ~domains) ~width f xs
