(** Cooperative execution budgets for long-running joins.

    A budget couples two limits with one atomic stop flag:

    - a {b wall-clock budget} ([time_budget_s], anchored at {!create}):
      once exceeded, {!live} latches the stop flag, the {!Pool}
      schedulers stop claiming chunks (every pool entry point accepts
      [?stop]), the join drains promptly, and all unprocessed work is
      diverted to the quarantine record of the output — the pool itself
      stays reusable;
    - a {b per-pair verification budget} ([pair_cost_limit], in
      deterministic cost units, see {!pair_cost}): a candidate pair
      whose exact-kernel cost estimate exceeds the limit is quarantined
      with its bound sandwich instead of being verified.  Because the
      cost model is a pure function of the pair, budgeted joins remain
      bit-identical at every domain count.

    {!cancel} sets the same stop flag directly — cooperative
    cancellation from another domain or a signal handler. *)

type t

val create : ?time_budget_s:float -> ?pair_cost_limit:int -> unit -> t
(** Anchors the wall clock at the call.  Omitted limits are unlimited.
    @raise Invalid_argument on a negative limit. *)

val cancel : t -> unit
(** Request cooperative cancellation: sets the stop flag; workers stop
    at the next chunk/task boundary. *)

val live : t -> bool
(** Poll: [false] once cancelled or past the deadline (latching the stop
    flag on the first expired poll).  Checked by the join at block,
    task and chunk boundaries. *)

val stopped : t -> bool
(** The stop flag, without consulting the clock. *)

val stop_flag : t -> bool Atomic.t
(** The raw flag, to thread into {!Pool.for_} / {!Pool.run_tasks}. *)

val pair_cost : int -> int -> int
(** [pair_cost n1 n2 = n1 * n2] — the deterministic per-pair cost model
    (the Zhang–Shasha kernel is [O(n1 n2)] per relevant-subproblem pair,
    so the node product tracks its worst case). *)

val pair_within : t -> cost:int -> bool
(** Whether a pair of this cost may run the exact kernel. *)

val has_pair_limit : t -> bool
