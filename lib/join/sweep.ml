module Tree = Tsj_tree.Tree
module Timer = Tsj_util.Timer

type metric = Ted | Constrained

let verify_distance ?(metric = Ted) p1 p2 =
  match metric with
  | Ted -> Tsj_ted.Ted.distance_prep ~algorithm:Tsj_ted.Ted.Hybrid p1 p2
  | Constrained ->
    Tsj_ted.Constrained.distance (Tsj_ted.Ted.tree p1) (Tsj_ted.Ted.tree p2)

(* The join verifier: only the threshold decision (and exact values up to
   the threshold) matter, so the TED metric runs the banded DP. *)
let verify_bounded ?(metric = Ted) ~tau p1 p2 =
  match metric with
  | Ted -> Tsj_ted.Ted.bounded_distance_prep ~algorithm:Tsj_ted.Ted.Hybrid p1 p2 tau
  | Constrained ->
    min
      (Tsj_ted.Constrained.distance (Tsj_ted.Ted.tree p1) (Tsj_ted.Ted.tree p2))
      (tau + 1)

let windowed_join ?(metric = Ted) ~trees ~tau ~setup ~filter () =
  if tau < 0 then invalid_arg "Sweep.windowed_join: negative threshold";
  let n = Array.length trees in
  let cand_timer = Timer.create () in
  let verify_timer = Timer.create () in
  let sizes = Array.map Tree.size trees in
  (* Ascending size order, ties by index for determinism. *)
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b -> if sizes.(a) <> sizes.(b) then compare sizes.(a) sizes.(b) else compare a b)
    order;
  let aux = Timer.time cand_timer (fun () -> setup trees) in
  (* TED preprocessing is charged to verification, lazily per tree. *)
  let preps : Tsj_ted.Ted.prep option array = Array.make n None in
  let prep i =
    match preps.(i) with
    | Some p -> p
    | None ->
      let p = Tsj_ted.Ted.preprocess trees.(i) in
      preps.(i) <- Some p;
      p
  in
  let window_pairs = ref 0 in
  let candidates = ref 0 in
  let results = ref [] in
  for b = 0 to n - 1 do
    let jb = order.(b) in
    let a = ref (b - 1) in
    let continue = ref true in
    while !a >= 0 && !continue do
      let ja = order.(!a) in
      if sizes.(jb) - sizes.(ja) > tau then continue := false
      else begin
        incr window_pairs;
        let pass = Timer.time cand_timer (fun () -> filter aux ja jb) in
        if pass then begin
          incr candidates;
          let d =
            Timer.time verify_timer (fun () ->
                verify_bounded ~metric ~tau (prep ja) (prep jb))
          in
          if d <= tau then begin
            let i = min ja jb and j = max ja jb in
            results := { Types.i; j; distance = d } :: !results
          end
        end;
        decr a
      end
    done
  done;
  let pairs = List.rev !results in
  {
    Types.pairs;
    quarantined = [];
    stats =
      {
        Types.n_trees = n;
        tau;
        n_window_pairs = !window_pairs;
        n_candidates = !candidates;
        n_results = List.length pairs;
        candidate_time_s = Timer.elapsed_s cand_timer;
        verify_time_s = Timer.elapsed_s verify_timer;
        (* No staged cascade here: every candidate goes straight to the
           banded kernel, which keeps the counter partition exact. *)
        cascade = { Types.empty_cascade with Types.kernel_verified = !candidates };
      };
  }
