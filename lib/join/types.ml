type pair = { i : int; j : int; distance : int }

type quarantine_reason =
  | Malformed of { line : int; col : int; message : string }
  | Preprocess_failed of string
  | Pair_budget of { lower : int; upper : int }
  | Verify_failed of string
  | Deadline

type quarantined = { q_i : int; q_j : int option; q_reason : quarantine_reason }

let pp_quarantine_reason fmt = function
  | Malformed { line; col; message } ->
    Format.fprintf fmt "malformed (line %d, column %d: %s)" line col message
  | Preprocess_failed msg -> Format.fprintf fmt "preprocess-failed (%s)" msg
  | Pair_budget { lower; upper } ->
    Format.fprintf fmt "pair-budget (lower=%d upper=%d)" lower upper
  | Verify_failed msg -> Format.fprintf fmt "verify-failed (%s)" msg
  | Deadline -> Format.pp_print_string fmt "deadline"

let pp_quarantined fmt q =
  match q.q_j with
  | None -> Format.fprintf fmt "tree %d: %a" q.q_i pp_quarantine_reason q.q_reason
  | Some j ->
    Format.fprintf fmt "pair (%d, %d): %a" q.q_i j pp_quarantine_reason q.q_reason

type cascade = {
  pruned_size : int;
  pruned_labels : int;
  pruned_degrees : int;
  pruned_sed : int;
  early_accepted : int;
  kernel_verified : int;
  quarantined : int;
  memo_hits : int;
  memo_misses : int;
}

let empty_cascade =
  {
    pruned_size = 0;
    pruned_labels = 0;
    pruned_degrees = 0;
    pruned_sed = 0;
    early_accepted = 0;
    kernel_verified = 0;
    quarantined = 0;
    memo_hits = 0;
    memo_misses = 0;
  }

(* The memo counters are not part of the candidate partition: they
   count keyroot-pair cache lookups inside the kernel, not candidate
   decisions. *)
let cascade_total c =
  c.pruned_size + c.pruned_labels + c.pruned_degrees + c.pruned_sed
  + c.early_accepted + c.kernel_verified + c.quarantined

(* Memo hit/miss counts depend on verification scheduling (which domain
   saw which pair first), so determinism comparisons must ignore
   them — everything else in the cascade is a pure per-pair sum. *)
let norm_cascade c = { c with memo_hits = 0; memo_misses = 0 }

let equal_cascade a b = norm_cascade a = norm_cascade b

type stats = {
  n_trees : int;
  tau : int;
  n_window_pairs : int;
  n_candidates : int;
  n_results : int;
  candidate_time_s : float;
  verify_time_s : float;
  cascade : cascade;
}

type output = { pairs : pair list; quarantined : quarantined list; stats : stats }

let total_time_s s = s.candidate_time_s +. s.verify_time_s

let pair_set output =
  output.pairs
  |> List.map (fun p -> (p.i, p.j))
  |> List.sort_uniq compare

let equal_results a b =
  let norm o = List.sort compare (List.map (fun p -> (p.i, p.j, p.distance)) o.pairs) in
  norm a = norm b

let norm_quarantine o = List.sort compare o.quarantined

let equal_deterministic a b =
  equal_results a b
  && norm_quarantine a = norm_quarantine b
  && a.stats.n_trees = b.stats.n_trees
  && a.stats.tau = b.stats.tau
  && a.stats.n_candidates = b.stats.n_candidates
  && a.stats.n_results = b.stats.n_results
  && equal_cascade a.stats.cascade b.stats.cascade

let pp_stats fmt s =
  Format.fprintf fmt
    "trees=%d tau=%d window=%d candidates=%d results=%d cand_time=%.3fs verify_time=%.3fs"
    s.n_trees s.tau s.n_window_pairs s.n_candidates s.n_results s.candidate_time_s
    s.verify_time_s;
  let c = s.cascade in
  if cascade_total c > 0 then begin
    Format.fprintf fmt
      " cascade=[size:%d labels:%d degrees:%d sed:%d early:%d kernel:%d"
      c.pruned_size c.pruned_labels c.pruned_degrees c.pruned_sed c.early_accepted
      c.kernel_verified;
    if c.quarantined > 0 then Format.fprintf fmt " quarantined:%d" c.quarantined;
    Format.pp_print_string fmt "]"
  end;
  if c.memo_hits > 0 || c.memo_misses > 0 then
    Format.fprintf fmt " memo=[hits:%d misses:%d]" c.memo_hits c.memo_misses
