type pair = { i : int; j : int; distance : int }

type cascade = {
  pruned_size : int;
  pruned_labels : int;
  pruned_degrees : int;
  pruned_sed : int;
  early_accepted : int;
  kernel_verified : int;
}

let empty_cascade =
  {
    pruned_size = 0;
    pruned_labels = 0;
    pruned_degrees = 0;
    pruned_sed = 0;
    early_accepted = 0;
    kernel_verified = 0;
  }

let cascade_total c =
  c.pruned_size + c.pruned_labels + c.pruned_degrees + c.pruned_sed
  + c.early_accepted + c.kernel_verified

type stats = {
  n_trees : int;
  tau : int;
  n_window_pairs : int;
  n_candidates : int;
  n_results : int;
  candidate_time_s : float;
  verify_time_s : float;
  cascade : cascade;
}

type output = { pairs : pair list; stats : stats }

let total_time_s s = s.candidate_time_s +. s.verify_time_s

let pair_set output =
  output.pairs
  |> List.map (fun p -> (p.i, p.j))
  |> List.sort_uniq compare

let equal_results a b =
  let norm o = List.sort compare (List.map (fun p -> (p.i, p.j, p.distance)) o.pairs) in
  norm a = norm b

let pp_stats fmt s =
  Format.fprintf fmt
    "trees=%d tau=%d window=%d candidates=%d results=%d cand_time=%.3fs verify_time=%.3fs"
    s.n_trees s.tau s.n_window_pairs s.n_candidates s.n_results s.candidate_time_s
    s.verify_time_s;
  let c = s.cascade in
  if cascade_total c > 0 then
    Format.fprintf fmt
      " cascade=[size:%d labels:%d degrees:%d sed:%d early:%d kernel:%d]"
      c.pruned_size c.pruned_labels c.pruned_degrees c.pruned_sed c.early_accepted
      c.kernel_verified
