(* Persistent work-stealing domain pool.

   One pool holds [size - 1] long-lived helper domains plus the calling
   domain (worker slot 0).  A job is a function [body : worker -> unit]
   executed once per participating worker slot; jobs are handed to the
   helpers through a mutex/condition pair and joined with a countdown.
   Index spaces ([for_], [map], [run_tasks]) are scheduled dynamically:
   the range is split into one contiguous region per participating
   worker, each region drained in chunks claimed with
   [Atomic.fetch_and_add]; a worker whose own region runs dry steals
   chunks from the fullest remaining region.  Dynamic chunk claiming is
   what keeps skewed workloads (tree sizes vary widely, so verification
   costs do too) from idling fast workers. *)

type error = { exn : exn; bt : Printexc.raw_backtrace }

type job = { width : int; body : int -> unit }

type t = {
  size : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  mutable epoch : int; (* job sequence number; workers wait for it to move *)
  mutable pending : int; (* helpers yet to finish the current job *)
  mutable in_job : bool; (* caller-side reentrancy / concurrency guard *)
  mutable error : error option; (* first exception of the current job *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let size t = t.size

let record_error t exn bt =
  Mutex.lock t.mutex;
  if t.error = None then t.error <- Some { exn; bt };
  Mutex.unlock t.mutex

let worker_loop t slot =
  let last = ref 0 in
  let continue = ref true in
  while !continue do
    Mutex.lock t.mutex;
    while (not t.stopping) && t.epoch = !last do
      Condition.wait t.work_available t.mutex
    done;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      continue := false
    end
    else begin
      let job = Option.get t.job in
      last := t.epoch;
      Mutex.unlock t.mutex;
      (if slot < job.width then
         try job.body slot
         with exn -> record_error t exn (Printexc.get_raw_backtrace ()));
      Mutex.lock t.mutex;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.work_done;
      Mutex.unlock t.mutex
    end
  done

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      size = domains;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      work_done = Condition.create ();
      job = None;
      epoch = 0;
      pending = 0;
      in_job = false;
      error = None;
      stopping = false;
      workers = [];
    }
  in
  t.workers <- List.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let shutdown t =
  Mutex.lock t.mutex;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  if not already then begin
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let run t ?(width = max_int) body =
  let width = max 1 (min width t.size) in
  if t.stopping then invalid_arg "Pool.run: pool is shut down";
  if t.in_job then invalid_arg "Pool.run: nested or concurrent job";
  if width = 1 || t.size = 1 then body 0
  else begin
    Mutex.lock t.mutex;
    t.in_job <- true;
    t.job <- Some { width; body };
    t.epoch <- t.epoch + 1;
    t.pending <- t.size - 1;
    t.error <- None;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    (try body 0 with exn -> record_error t exn (Printexc.get_raw_backtrace ()));
    Mutex.lock t.mutex;
    while t.pending > 0 do
      Condition.wait t.work_done t.mutex
    done;
    t.job <- None;
    t.in_job <- false;
    let err = t.error in
    t.error <- None;
    Mutex.unlock t.mutex;
    match err with
    | Some { exn; bt } -> Printexc.raise_with_backtrace exn bt
    | None -> ()
  end

(* Chunked region scheduling over [0, n).  Region [r] is the contiguous
   slice [lo.(r), hi.(r)); claims move its cursor forward atomically, so
   every index is claimed by exactly one worker no matter who drains the
   region.  The cursor may overshoot [hi] (failed claims), which only
   signals dryness. *)
let for_ t ?(chunk = 0) ?stop ?(width = max_int) n f =
  if n < 0 then invalid_arg "Pool.for_: negative range";
  let width = max 1 (min (min width t.size) n) in
  let stopped () = match stop with None -> false | Some s -> Atomic.get s in
  if n = 0 then ()
  else if width = 1 || t.size = 1 then begin
    let i = ref 0 in
    while !i < n && not (stopped ()) do
      f !i;
      incr i
    done
  end
  else begin
    let chunk = if chunk > 0 then chunk else max 1 (min 128 (n / (width * 8))) in
    let lo = Array.init width (fun r -> r * n / width) in
    let hi = Array.init width (fun r -> (r + 1) * n / width) in
    let cursor = Array.init width (fun r -> Atomic.make lo.(r)) in
    let failed = Atomic.make false in
    (* A halted job (first exception, or the caller's cooperative stop
       flag) claims no further chunks; started chunks run to completion,
       so halting never tears a running [f] mid-index. *)
    let halted () = Atomic.get failed || stopped () in
    let claim r =
      let pos = Atomic.fetch_and_add cursor.(r) chunk in
      if pos >= hi.(r) then None else Some (pos, min hi.(r) (pos + chunk))
    in
    let run_range (a, b) =
      try
        for i = a to b - 1 do
          f i
        done
      with exn ->
        Atomic.set failed true;
        raise exn
    in
    let body slot =
      (* Drain the worker's own region first (locality), then steal from
         the region with the most unclaimed work left. *)
      let exhausted = ref false in
      while (not !exhausted) && not (halted ()) do
        match claim slot with
        | Some range -> run_range range
        | None -> exhausted := true
      done;
      let dry = ref false in
      while (not !dry) && not (halted ()) do
        let victim = ref (-1) and best = ref 0 in
        for r = 0 to width - 1 do
          let left = hi.(r) - Atomic.get cursor.(r) in
          if left > !best then begin
            best := left;
            victim := r
          end
        done;
        if !victim < 0 then dry := true
        else
          match claim !victim with
          | Some range -> run_range range
          | None -> () (* lost the race; rescan *)
      done
    in
    run t ~width body
  end

let run_tasks t ?stop ?width tasks =
  for_ t ?stop ?width ~chunk:1 (Array.length tasks) (fun i -> tasks.(i) ())

let map t ?chunk ?width f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    (* Seed the result buffer with the first element's image: no ['b
       option] boxes and no unsafe placeholder, at the cost of computing
       one element on the caller before the fan-out. *)
    let first = f xs.(0) in
    let out = Array.make n first in
    for_ t ?chunk ?width (n - 1) (fun i -> out.(i + 1) <- f xs.(i + 1));
    out
  end
