(** Progress journal for long-running joins.

    The PartSJ sweep processes trees in ascending-size blocks and is
    deterministic (the only randomness, the [Random] partitioning seed,
    is replayed); a checkpoint therefore only needs the {e outputs}
    accumulated so far — emitted pairs, quarantine records, the
    deterministic counters — plus the number of completed blocks.  On
    resume the join rebuilds the in-memory index by replaying the
    indexing (not the probing or verification) of the completed blocks
    and continues mid-sweep, producing bit-identical final output to an
    uninterrupted run.

    The journal is a line-oriented text file finished by an
    [end <fnv64>] trailer over the body; {!save} writes to a temp file
    and renames, so a kill mid-save can never tear the journal, and
    {!load} reports any truncated or bit-rotten file as an [Error]
    rather than resuming from a lie. *)

type config = {
  path : string;   (** journal location *)
  every : int;     (** checkpoint every [every] completed blocks *)
  resume : bool;   (** load [path] and continue from it if it exists *)
}

val config : ?every:int -> ?resume:bool -> string -> config
(** [every] defaults to 1 (journal after every block — the sweep then
    drains its pipelined verification batch at each block boundary so
    the journal never names unverified candidates).
    @raise Invalid_argument if [every < 1]. *)

type state = {
  fingerprint : string;
      (** hash of the input collection and join parameters; a resumed
          join refuses a journal whose fingerprint differs *)
  blocks_done : int;
  pairs : Types.pair list;            (** in emission order *)
  quarantined : Types.quarantined list;
      (** sweep-emitted quarantine records only — preprocessing
          quarantine is deterministic and regenerated on resume *)
  n_candidates : int;
  stage_counts : int array;
  n_probed : int;
  n_matched : int;
  n_small_hits : int;
  n_indexed : int;
}

val save : path:string -> state -> unit
(** Atomic (write + rename) journal write.
    @raise Tsj_util.Durable.Disk_fault on a failing disk (write, flush
    or rename) — always the typed fault, never a raw [Sys_error] or
    [Unix.Unix_error]. *)

val load : string -> (state option, string) result
(** [Ok None] when the file does not exist (fresh start); [Error msg]
    when it exists but is truncated, checksum-corrupt or malformed. *)

val fingerprint : tau:int -> params:string -> Tsj_tree.Tree.t array -> string
(** Dataset + parameter fingerprint stored in (and checked against) the
    journal.  [params] encodes every option that changes the sweep
    (partitioning, index mode, metric, verifier flags). *)
