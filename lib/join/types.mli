(** Common result/statistics types shared by all similarity-join methods
    (the nested-loop reference, the STR and SET baselines, and PartSJ).

    Every method takes the tree collection and the TED threshold [τ] and
    returns the set of similar pairs together with instrumentation that
    mirrors the paper's evaluation: the number of candidate pairs sent to
    exact TED verification (Figures 11/13) and the runtime split between
    candidate generation and TED computation (the stacked bars of
    Figures 10/12).

    {b Quarantine.}  Resilient joins never abort on a pathological
    record: work that cannot be completed (a tree whose preprocessing
    raises, a pair whose verification exceeds the per-pair budget, work
    left when the wall-clock budget expires) is diverted to the
    [quarantined] list of the output with a machine-readable reason.
    The soundness contract is: [pairs] contains no false positives, and
    the join is complete up to the quarantined set — every true result
    pair not in [pairs] involves a quarantined tree or is itself a
    quarantined pair. *)

type pair = {
  i : int;       (** index of the first tree in the input array *)
  j : int;       (** index of the second tree; [i < j] *)
  distance : int;(** their exact tree edit distance, [<= τ] *)
}

(** Why a record was quarantined instead of processed. *)
type quarantine_reason =
  | Malformed of { line : int; col : int; message : string }
      (** an input record that failed to parse under [--skip-malformed];
          the index is the 0-based record ordinal in the input file, not
          a tree index *)
  | Preprocess_failed of string
      (** preprocessing (TED prep, LC-RS transform, bound compilation)
          raised; the tree takes part in no pair *)
  | Pair_budget of { lower : int; upper : int }
      (** the pair's exact-kernel cost estimate exceeded the per-pair
          budget; [lower]/[upper] are the TED bounds established before
          quarantining ([lower <= TED <= upper]) *)
  | Verify_failed of string  (** the verifier raised on this pair *)
  | Deadline
      (** the wall-clock budget expired (or the join was cancelled)
          before this tree/pair was processed *)

type quarantined = {
  q_i : int;           (** tree index (or first of the pair, [q_i < q_j]) *)
  q_j : int option;    (** [Some j] for a pair, [None] for a whole tree *)
  q_reason : quarantine_reason;
}

val pp_quarantine_reason : Format.formatter -> quarantine_reason -> unit

val pp_quarantined : Format.formatter -> quarantined -> unit

type cascade = {
  pruned_size : int;  (** rejected by the size lower bound *)
  pruned_labels : int;  (** rejected by the label-histogram lower bound *)
  pruned_degrees : int;  (** rejected by the degree-histogram lower bound *)
  pruned_sed : int;  (** rejected by the banded traversal-SED lower bound *)
  early_accepted : int;
      (** admitted without a kernel run: the lower and upper bounds met *)
  kernel_verified : int;  (** decided by the exact (banded) DP kernel *)
  quarantined : int;
      (** candidate pairs diverted to quarantine (budget, verifier
          failure, deadline) — counted here so the stage counters still
          partition the candidate set *)
  memo_hits : int;
      (** keyroot-pair subproblems answered from the cross-pair TED
          memo cache (consed joins only; 0 with consing off) *)
  memo_misses : int;  (** memo lookups that ran the DP and cached it *)
}
(** Per-stage counters of the verification filter cascade.  For every
    join they partition the candidate set:
    [cascade_total stats.cascade = stats.n_candidates].  Methods without
    a cascade report every candidate under [kernel_verified].  The memo
    counters sit outside the partition (they count kernel-internal
    cache lookups, not candidate decisions) and are
    scheduling-dependent, so {!equal_deterministic} ignores them. *)

val empty_cascade : cascade

val cascade_total : cascade -> int
(** Sum of the partition counters ({!cascade.memo_hits}/[memo_misses]
    excluded). *)

val norm_cascade : cascade -> cascade
(** The cascade with the scheduling-dependent memo counters zeroed —
    what determinism comparisons should compare. *)

val equal_cascade : cascade -> cascade -> bool
(** Equality on {!norm_cascade}. *)

type stats = {
  n_trees : int;
  tau : int;
  n_window_pairs : int;
      (** pairs surviving the size-difference filter (the universe every
          method draws candidates from) *)
  n_candidates : int;
      (** pairs sent to the verifier (cascade or exact TED) *)
  n_results : int;
  candidate_time_s : float;
      (** wall time spent generating/filtering candidates *)
  verify_time_s : float;
      (** wall time spent in verification (cascade + kernels) *)
  cascade : cascade;
      (** how the verifier decided the candidates, stage by stage *)
}

type output = {
  pairs : pair list;
  quarantined : quarantined list;
      (** records/trees/pairs skipped by the resilience layer (empty for
          non-resilient methods and for clean runs) *)
  stats : stats;
}

val total_time_s : stats -> float

val pair_set : output -> (int * int) list
(** Result pairs as sorted [(i, j)] tuples — handy for equality checks
    between methods. *)

val equal_results : output -> output -> bool
(** Same set of pairs (distances included). *)

val equal_deterministic : output -> output -> bool
(** {!equal_results} plus the quarantine set and every deterministic
    counter (candidates, results, cascade stages) — the equality the
    checkpoint/resume and cross-domain-count guarantees are stated in
    (wall-clock timings excluded). *)

val pp_stats : Format.formatter -> stats -> unit
