(** Common result/statistics types shared by all similarity-join methods
    (the nested-loop reference, the STR and SET baselines, and PartSJ).

    Every method takes the tree collection and the TED threshold [τ] and
    returns the set of similar pairs together with instrumentation that
    mirrors the paper's evaluation: the number of candidate pairs sent to
    exact TED verification (Figures 11/13) and the runtime split between
    candidate generation and TED computation (the stacked bars of
    Figures 10/12). *)

type pair = {
  i : int;       (** index of the first tree in the input array *)
  j : int;       (** index of the second tree; [i < j] *)
  distance : int;(** their exact tree edit distance, [<= τ] *)
}

type cascade = {
  pruned_size : int;  (** rejected by the size lower bound *)
  pruned_labels : int;  (** rejected by the label-histogram lower bound *)
  pruned_degrees : int;  (** rejected by the degree-histogram lower bound *)
  pruned_sed : int;  (** rejected by the banded traversal-SED lower bound *)
  early_accepted : int;
      (** admitted without a kernel run: the lower and upper bounds met *)
  kernel_verified : int;  (** decided by the exact (banded) DP kernel *)
}
(** Per-stage counters of the verification filter cascade.  For every
    join they partition the candidate set:
    [cascade_total stats.cascade = stats.n_candidates].  Methods without
    a cascade report every candidate under [kernel_verified]. *)

val empty_cascade : cascade

val cascade_total : cascade -> int

type stats = {
  n_trees : int;
  tau : int;
  n_window_pairs : int;
      (** pairs surviving the size-difference filter (the universe every
          method draws candidates from) *)
  n_candidates : int;
      (** pairs sent to the verifier (cascade or exact TED) *)
  n_results : int;
  candidate_time_s : float;
      (** wall time spent generating/filtering candidates *)
  verify_time_s : float;
      (** wall time spent in verification (cascade + kernels) *)
  cascade : cascade;
      (** how the verifier decided the candidates, stage by stage *)
}

type output = { pairs : pair list; stats : stats }

val total_time_s : stats -> float

val pair_set : output -> (int * int) list
(** Result pairs as sorted [(i, j)] tuples — handy for equality checks
    between methods. *)

val equal_results : output -> output -> bool
(** Same set of pairs (distances included). *)

val pp_stats : Format.formatter -> stats -> unit
