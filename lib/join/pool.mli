(** Persistent work-stealing domain pool (OCaml 5).

    A pool owns [domains - 1] long-lived helper domains; the caller's
    domain is worker slot 0 of every job.  Jobs are synchronous: {!run}
    (and the schedulers built on it) returns once every participating
    worker has finished, re-raising the first exception any worker threw.
    Spawning a domain costs tens of microseconds, so joins that issue one
    parallel job per block reuse one pool for the whole run instead of
    spawning per call — see {!Parallel.pool} for the shared instance.

    Scheduling is dynamic: an index space is split into one contiguous
    region per worker, drained chunk-by-chunk with atomic claiming, and
    workers whose region runs dry steal chunks from the fullest remaining
    region.  Skewed per-index costs (verification of trees of very
    different sizes) therefore do not idle fast workers, unlike static
    striping.

    Work functions must be safe to run concurrently on read-only shared
    data — they must not intern labels or touch other unsynchronized
    global tables.  All scheduling entry points may be called from one
    domain at a time only (nested or concurrent jobs raise). *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [domains - 1] helper domains.
    @raise Invalid_argument if [domains < 1]. *)

val size : t -> int
(** Total worker slots, including the caller's. *)

val run : t -> ?width:int -> (int -> unit) -> unit
(** [run t ~width body] executes [body slot] on workers [0 .. width - 1]
    ([width] defaults to the pool size and is clamped to it) and waits for
    all of them.  The first exception raised by any worker is re-raised
    after the job completes.  @raise Invalid_argument on a nested job or a
    shut-down pool. *)

val for_ : t -> ?chunk:int -> ?stop:bool Atomic.t -> ?width:int -> int -> (int -> unit) -> unit
(** [for_ t n f] calls [f i] at most once for every [i] in [0 .. n - 1]
    — exactly once unless the job halts — in parallel with dynamic chunk
    stealing.  [chunk] is the claiming granularity (default: an
    automatic size targeting several chunks per worker, capped at 128).
    [stop] is a cooperative cancellation flag (see {!Budget}): once it
    reads [true], no further chunks are claimed, every started chunk
    still runs to completion, and [for_] returns normally — the caller
    is responsible for knowing (via the flag) that the range may be
    incomplete.  After an exception, remaining chunks are likewise
    abandoned and the first exception is re-raised; the pool stays
    usable either way. *)

val run_tasks : t -> ?stop:bool Atomic.t -> ?width:int -> (unit -> unit) array -> unit
(** [run_tasks t tasks] runs every closure exactly once, claimed one task
    at a time — the right granularity for heterogeneous task batches
    (e.g. index probes mixed with deferred verifications).  [stop] as in
    {!for_}: a stopped batch skips unclaimed tasks. *)

val map : t -> ?chunk:int -> ?width:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map].  The output buffer is seeded with the image of
    the first element (computed on the caller), avoiding an intermediate
    ['b option array]. *)

val shutdown : t -> unit
(** Graceful shutdown: wakes all helpers and joins them.  Idempotent.
    Subsequent jobs raise [Invalid_argument]. *)
