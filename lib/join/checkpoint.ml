type config = { path : string; every : int; resume : bool }

let config ?(every = 1) ?(resume = false) path =
  if every < 1 then invalid_arg "Checkpoint.config: every must be >= 1";
  { path; every; resume }

type state = {
  fingerprint : string;
  blocks_done : int;
  pairs : Types.pair list;
  quarantined : Types.quarantined list;
  n_candidates : int;
  stage_counts : int array;
  n_probed : int;
  n_matched : int;
  n_small_hits : int;
  n_indexed : int;
}

let magic = "tsjckpt 1"

(* --- serialization --- *)

(* Messages are stored as a single whitespace-free token: OCaml-lexer
   escapes plus [\032] for the spaces [String.escaped] leaves alone, so
   [Scanf.unescaped] round-trips them. *)
let escape_msg msg =
  String.concat "\\032" (String.split_on_char ' ' (String.escaped msg))

let quarantined_line q =
  let b = Buffer.create 32 in
  Buffer.add_string b "q ";
  (match (q.Types.q_j, q.Types.q_reason) with
  | Some j, Types.Pair_budget { lower; upper } ->
    Buffer.add_string b (Printf.sprintf "pair_budget %d %d %d %d" q.Types.q_i j lower upper)
  | Some j, Types.Verify_failed msg ->
    Buffer.add_string b
      (Printf.sprintf "verify_failed %d %d %s" q.Types.q_i j (escape_msg msg))
  | Some j, Types.Deadline ->
    Buffer.add_string b (Printf.sprintf "deadline_pair %d %d" q.Types.q_i j)
  | None, Types.Deadline -> Buffer.add_string b (Printf.sprintf "deadline_tree %d" q.Types.q_i)
  | None, Types.Preprocess_failed msg ->
    Buffer.add_string b (Printf.sprintf "prep %d %s" q.Types.q_i (escape_msg msg))
  | _, Types.Malformed { line; col; message } ->
    Buffer.add_string b
      (Printf.sprintf "malformed %d %d %d %s" q.Types.q_i line col (escape_msg message))
  | Some j, Types.Preprocess_failed msg ->
    (* Shouldn't occur (prep is per-tree), but keep the journal total. *)
    Buffer.add_string b
      (Printf.sprintf "verify_failed %d %d %s" q.Types.q_i j (escape_msg msg))
  | None, (Types.Pair_budget _ | Types.Verify_failed _) ->
    Buffer.add_string b (Printf.sprintf "deadline_tree %d" q.Types.q_i));
  Buffer.contents b

let parse_quarantined_line line =
  match String.split_on_char ' ' line with
  | "q" :: "pair_budget" :: i :: j :: lower :: upper :: [] ->
    Some
      {
        Types.q_i = int_of_string i;
        q_j = Some (int_of_string j);
        q_reason =
          Types.Pair_budget { lower = int_of_string lower; upper = int_of_string upper };
      }
  | "q" :: "verify_failed" :: i :: j :: [ msg ] ->
    Some
      {
        Types.q_i = int_of_string i;
        q_j = Some (int_of_string j);
        q_reason = Types.Verify_failed (Scanf.unescaped msg);
      }
  | "q" :: "deadline_pair" :: i :: j :: [] ->
    Some
      { Types.q_i = int_of_string i; q_j = Some (int_of_string j); q_reason = Types.Deadline }
  | "q" :: "deadline_tree" :: i :: [] ->
    Some { Types.q_i = int_of_string i; q_j = None; q_reason = Types.Deadline }
  | "q" :: "prep" :: i :: [ msg ] ->
    Some
      {
        Types.q_i = int_of_string i;
        q_j = None;
        q_reason = Types.Preprocess_failed (Scanf.unescaped msg);
      }
  | "q" :: "malformed" :: i :: line_ :: col :: [ msg ] ->
    Some
      {
        Types.q_i = int_of_string i;
        q_j = None;
        q_reason =
          Types.Malformed
            {
              line = int_of_string line_;
              col = int_of_string col;
              message = Scanf.unescaped msg;
            };
      }
  | _ -> None

let body_of_state st =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "%s" magic;
  line "fingerprint %s" st.fingerprint;
  line "blocks %d" st.blocks_done;
  line "counters %d %d %d %d %d" st.n_candidates st.n_probed st.n_matched st.n_small_hits
    st.n_indexed;
  line "stages %d %s" (Array.length st.stage_counts)
    (String.concat " " (Array.to_list (Array.map string_of_int st.stage_counts)));
  line "pairs %d" (List.length st.pairs);
  List.iter (fun p -> line "p %d %d %d" p.Types.i p.Types.j p.Types.distance) st.pairs;
  line "quarantine %d" (List.length st.quarantined);
  List.iter (fun q -> line "%s" (quarantined_line q)) st.quarantined;
  Buffer.contents b

let save ~path st =
  let body = body_of_state st in
  let crc = Tsj_util.Text.fnv1a64_hex body in
  let tmp = path ^ ".tmp" in
  (match
     Out_channel.with_open_bin tmp (fun oc ->
         Out_channel.output_string oc body;
         Out_channel.output_string oc ("end " ^ crc ^ "\n"))
   with
  | () -> ()
  | exception Sys_error msg ->
    (* surface the same typed fault as the rename path, never a raw
       [Sys_error] *)
    raise
      (Tsj_util.Durable.Disk_fault
         { Tsj_util.Durable.f_op = `Write; f_path = tmp; f_detail = msg }));
  (* Atomic publication: a kill mid-save leaves either the previous valid
     journal or a stray .tmp, never a torn journal at [path].  The
     directory fsync makes the rename itself survive a machine crash. *)
  Tsj_util.Durable.rename tmp path

(* --- deserialization --- *)

exception Bad of string

let load path =
  if not (Sys.file_exists path) then Ok None
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error msg -> Error msg
    | contents -> (
      try
        (* Split off the trailer and check the body checksum first: any
           truncation or bit-rot is reported as corruption, not as a
           confusing parse error. *)
        let body, trailer =
          match String.rindex_opt (String.trim contents) '\n' with
          | None -> raise (Bad "truncated journal (no trailer)")
          | Some _ ->
            let lines = String.split_on_char '\n' contents in
            let lines = List.filter (fun l -> l <> "") lines in
            (match List.rev lines with
            | last :: rev_body when String.length last > 4 && String.sub last 0 4 = "end " ->
              ( String.concat "\n" (List.rev rev_body) ^ "\n",
                String.sub last 4 (String.length last - 4) )
            | _ -> raise (Bad "truncated journal (missing end marker)"))
        in
        if Tsj_util.Text.fnv1a64_hex body <> String.trim trailer then
          raise (Bad "checksum mismatch (corrupt or truncated journal)");
        let lines = ref (String.split_on_char '\n' (String.trim body)) in
        let next () =
          match !lines with
          | [] -> raise (Bad "unexpected end of journal")
          | l :: rest ->
            lines := rest;
            l
        in
        let expect_prefix prefix =
          let l = next () in
          let n = String.length prefix in
          if String.length l < n || String.sub l 0 n <> prefix then
            raise (Bad (Printf.sprintf "expected %S, found %S" prefix l));
          String.trim (String.sub l n (String.length l - n))
        in
        let ints s = List.map int_of_string (String.split_on_char ' ' (String.trim s)) in
        if next () <> magic then raise (Bad "not a tsj checkpoint journal");
        let fingerprint = expect_prefix "fingerprint " in
        let blocks_done = int_of_string (expect_prefix "blocks ") in
        let n_candidates, n_probed, n_matched, n_small_hits, n_indexed =
          match ints (expect_prefix "counters ") with
          | [ a; b; c; d; e ] -> (a, b, c, d, e)
          | _ -> raise (Bad "bad counters line")
        in
        let stage_counts =
          match ints (expect_prefix "stages ") with
          | k :: rest when List.length rest = k -> Array.of_list rest
          | _ -> raise (Bad "bad stages line")
        in
        let n_pairs = int_of_string (expect_prefix "pairs ") in
        let pairs =
          List.init n_pairs (fun _ ->
              match ints (expect_prefix "p ") with
              | [ i; j; d ] -> { Types.i; j; distance = d }
              | _ -> raise (Bad "bad pair line"))
        in
        let n_quar = int_of_string (expect_prefix "quarantine ") in
        let quarantined =
          List.init n_quar (fun _ ->
              match parse_quarantined_line (next ()) with
              | Some q -> q
              | None -> raise (Bad "bad quarantine line"))
        in
        Ok
          (Some
             {
               fingerprint;
               blocks_done;
               pairs;
               quarantined;
               n_candidates;
               stage_counts;
               n_probed;
               n_matched;
               n_small_hits;
               n_indexed;
             })
      with
      | Bad msg -> Error msg
      | Failure _ | Scanf.Scan_failure _ -> Error "malformed journal field")

let fingerprint ~tau ~params trees =
  let b = Buffer.create 4096 in
  Buffer.add_string b (string_of_int (Array.length trees));
  Buffer.add_char b '\n';
  Buffer.add_string b (string_of_int tau);
  Buffer.add_char b '\n';
  Buffer.add_string b params;
  Buffer.add_char b '\n';
  Array.iter
    (fun t ->
      Buffer.add_string b (Tsj_tree.Bracket.to_string t);
      Buffer.add_char b '\n')
    trees;
  Tsj_util.Text.fnv1a64_hex (Buffer.contents b)
