type t = {
  deadline : float option; (* absolute Timer.now () instant *)
  pair_cost_limit : int option;
  stop : bool Atomic.t;
}

let create ?time_budget_s ?pair_cost_limit () =
  (match time_budget_s with
  | Some s when s < 0.0 -> invalid_arg "Budget.create: negative time budget"
  | _ -> ());
  (match pair_cost_limit with
  | Some l when l < 0 -> invalid_arg "Budget.create: negative pair cost limit"
  | _ -> ());
  {
    deadline = Option.map (fun s -> Tsj_util.Timer.now () +. s) time_budget_s;
    pair_cost_limit;
    stop = Atomic.make false;
  }

let cancel t = Atomic.set t.stop true

let stop_flag t = t.stop

let stopped t = Atomic.get t.stop

let live t =
  if Atomic.get t.stop then false
  else begin
    Tsj_util.Fault_inject.hit "budget.live" 0;
    match t.deadline with
    | Some d when Tsj_util.Timer.now () > d ->
      (* Latch: once over the deadline every worker sees the stop flag
         without re-reading the clock. *)
      Atomic.set t.stop true;
      false
    | _ -> true
  end

let pair_cost size_a size_b = size_a * size_b

let pair_within t ~cost =
  match t.pair_cost_limit with None -> true | Some limit -> cost <= limit

let has_pair_limit t = t.pair_cost_limit <> None
