(** Multicore helpers (OCaml 5 domains).

    The paper's future work names "parallel and distributed settings
    (e.g., multi-core architectures)".  The PartSJ pipeline runs its
    preprocessing, candidate-generation and verification phases on the
    persistent work-stealing pool of {!Pool}; this module owns the shared
    process-wide pool instance and the classic fork/join {!map} built on
    it. *)

val pool : domains:int -> Pool.t
(** The shared process-wide pool, guaranteed to have at least [domains]
    worker slots.  Created lazily on first use, grown (replaced) when a
    caller asks for more domains, and shut down automatically at process
    exit.  Jobs that should use fewer workers than the pool holds pass
    [~width] to the {!Pool} schedulers.
    @raise Invalid_argument if [domains < 1]. *)

val map : domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f xs] is [Array.map f xs] computed on up to [domains]
    domains (including the caller's), scheduled dynamically with chunk
    stealing so uneven per-element costs do not idle fast workers.  [f]
    must be safe to run concurrently on read-only shared data — it must
    not intern labels or touch other global tables.  Two guards keep small
    or over-parallel maps from losing to [Array.map]: inputs shorter than
    a measured cutoff skip pool dispatch entirely, and the worker count
    is clamped to the hardware's recommended domain count (a pure map
    gains nothing from oversubscription).  Exceptions raised by [f] are
    re-raised.
    @raise Invalid_argument if [domains < 1]. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()] — one worker per available core,
    uncapped.  The [TSJ_DOMAINS] environment variable (a positive
    integer) overrides the detected count, for container limits or
    benchmarking. *)
