(* The background scrubber driver and the Merkle anti-entropy repair.

   The scrubber is deliberately dumb: a thread that calls a step
   closure on an interval.  What a step does (and under which locks)
   belongs to the owner — the server wraps [Store.scrub_step] in its
   write + store locks, the sharded harness wraps [Router.scrub_ledger].
   The driver only guarantees the step can never kill its host: any
   exception a step leaks is swallowed and the next tick runs. *)

module Timer = Tsj_util.Timer

type t = {
  s_stop : bool Atomic.t;
  mutable s_thread : Thread.t option;
  s_passes : int Atomic.t;
}

let start ~interval_s step =
  if interval_s <= 0.0 then invalid_arg "Scrub.start: interval must be positive";
  let t = { s_stop = Atomic.make false; s_thread = None; s_passes = Atomic.make 0 } in
  let rec loop () =
    let deadline = Timer.now () +. interval_s in
    while (not (Atomic.get t.s_stop)) && Timer.now () < deadline do
      Thread.delay (min 0.02 interval_s)
    done;
    if not (Atomic.get t.s_stop) then begin
      (try step () with _ -> ());
      Atomic.incr t.s_passes;
      loop ()
    end
  in
  t.s_thread <- Some (Thread.create loop ());
  t

let passes t = Atomic.get t.s_passes

let stop t =
  Atomic.set t.s_stop true;
  match t.s_thread with
  | Some th ->
    Thread.join th;
    t.s_thread <- None
  | None -> ()

(* --- anti-entropy --- *)

(* Converge [local] to a remote store holding [remote_n] records, by
   Merkle range digests: if the common prefix digests agree the repair
   is a pure catch-up of the missing suffix; if they diverge, an
   O(log n) binary search ({!Integrity.first_divergence}) locates the
   first diverging seq, the local store truncates there, and only the
   suffix from that point is transferred — never a full re-sync.  The
   remote is authoritative (the quorum side); [digest] and [fetch] are
   its two probes, typically [DIGEST] and [GET]/[record_for] over a
   wire, and both may fail (a dead peer), which propagates as [Error]
   leaving the local store consistent (truncation and every applied
   record are durable, so a later pass resumes where this one died). *)
let anti_entropy ~local ~remote_n ~digest ~fetch =
  let n = Store.n_trees local in
  let common = min n remote_n in
  let start =
    if common = 0 then Ok 0
    else
      match digest ~lo:0 ~hi:common with
      | Error _ as e -> e
      | Ok r when String.equal (Store.digest local ~lo:0 ~hi:common) r -> Ok common
      | Ok _ ->
        Integrity.first_divergence
          ~local:(fun ~lo ~hi -> Store.digest local ~lo ~hi)
          ~remote:digest ~lo:0 ~hi:common
  in
  match start with
  | Error _ as e -> e
  | Ok start ->
    let truncated = start < n in
    if truncated then Store.truncate_to local start;
    let rec pull seq transferred =
      if seq >= remote_n then Ok transferred
      else
        match fetch seq with
        | Error _ as e -> e
        | Ok line -> (
          match Store.apply_record local line with
          | Error _ as e -> e
          | Ok _ -> pull (seq + 1) (transferred + 1))
    in
    let r = pull start 0 in
    if truncated then Store.note_repaired local 1;
    r
