(** Wire protocol of the similarity-search service: line-delimited text,
    one request line in, one reply line out.

    Grammar (one request per line; a tree is bracket notation, which
    cannot contain a newline when it arrived on a line):
    {v
    request  := "QUERY" SP tau SP [deadline SP] tree    similarity search at τ' <= index τ
              | "KNN" SP k SP [deadline SP] tree        top-k within the index τ
              | "ADD" SP [seq SP] [deadline SP] tree    journal + index a tree (seq: see below)
    deadline := "@" ms                        remaining budget, milliseconds (see below)
              | "GET" SP seq                  fetch the tree bound to a sequence number
              | "DIGEST" SP epoch SP lo SP hi Merkle digest of records [lo, hi)
              | "STATS" | "HEALTH" | "DRAIN" | "PROMOTE"
              | "SYNC" SP epoch SP from_seq   replica joins: stream me from from_seq
              | "ACKED" SP seq                replica has durably applied up to seq
    reply    := "HITS" SP degraded(0|1) SP nh SP nu {SP id":"dist}*nh {SP id":"lo":"hi}*nu
              | "ADDED" SP id SP np {SP id":"dist}*np
              | "TREE" SP seq SP tree         reply to GET
              | "STATS" SP key"="int ...
              | "OK" SP ("serving"|"draining"|"drained")
              | "BUSY" [SP retry_after_ms]    shed by admission control
              | "ERR" SP reason               never a silent drop
              | "SYNC" SP epoch SP base       stream header (primary -> replica)
              | "RECORD" SP journal-line      one checksummed journal record pushed
              | "DIGEST" SP epoch SP lo SP hi SP hex   reply to DIGEST
              | "FENCED" SP epoch             refused: a higher epoch exists
              | "PROMOTED" SP epoch           this node is now primary at epoch
    v}

    {b Anti-entropy.}  [DIGEST <epoch> <lo> <hi>] asks for the Merkle
    digest of the canonical journal records [\[lo, hi)] (see
    {!Integrity.Merkle}); the answer [DIGEST <epoch> <lo> <hi> <hex>]
    echoes the range.  Two stores holding the same trees answer
    identically, so a verifier binary-searches range digests to locate
    the first diverging sequence in O(log n) round trips and repairs
    {e only} the suffix from there (via [GET]/[RECORD] regeneration) —
    no full re-sync.  A node at a different epoch answers
    [FENCED <epoch>]; a range beyond the tree count is [ERR].  Like
    the replication verbs, [DIGEST] is text-only.

    {b Replication stream.}  A replica connects and sends
    [SYNC <epoch> <from_seq>].  The primary answers with the stream
    header [SYNC <epoch> <base>] (its epoch and the first sequence
    number of that epoch); from then on the roles invert on that
    connection: the primary pushes [RECORD <journal-line>] and the
    replica answers each with [ACKED <n>] ([n] = its new tree count,
    i.e. the next sequence it needs) only {e after} the record is
    flushed to its own journal.  A node that sees evidence of a higher
    epoch answers [FENCED <epoch>] instead and the stream ends.

    {b Idempotency contract of [ADD].}  [ADD <seq> <tree>] binds [tree]
    to sequence number [seq] exactly once: if [seq] equals the store's
    next sequence the tree is journaled and indexed; if [seq] is already
    bound {e to the same tree} the reply is the original
    [ADDED <seq> ...] (recomputed, bit-identical) and nothing is
    written; if [seq] is bound to a {e different} tree or is beyond the
    next sequence, the reply is [ERR].  A client that timed out after
    the request may have been executed must therefore retry {e with the
    same seq} — the retry is then safe whether or not the original
    arrived, including across a failover to a server the record was
    replicated to.  Bare [ADD <tree>] (no seq) keeps the PR-4 semantics
    (server assigns the next sequence) and is {e not} safe to retry
    blind; {!Client} always attaches a seq.

    {b Deadline propagation.}  The optional [@<ms>] token on
    [QUERY]/[KNN]/[ADD] (and the deadline u32 of v2 binary frames) is
    the client's {e remaining budget} for the whole call, in
    milliseconds — a relative span, so no clock synchronisation is
    needed.  Every hop subtracts its own elapsed time before forwarding
    (the router additionally reserves a response margin), making the
    propagated value monotonically non-increasing.  A server drops
    queued work whose budget has already run out instead of computing an
    answer nobody is waiting for: the reply is [ERR deadline expired]
    and the drop is counted in STATS as [expired].  Requests without the
    token keep the server's own default budget (legacy clients work
    unchanged).  A BUSY shed may carry a retry-after hint in
    milliseconds: the earliest time a retry can be admitted, which
    {!Client} uses as its backoff floor.

    Parsers on both sides are lenient: any malformed input yields
    [Error reason], never an exception, and tree diagnostics carry the
    bracket parser's ["line L, column C"] location.  A malformed
    deadline token (garbage, negative, overflow) is a parse error
    answered [ERR], never silently treated as part of the tree.

    {b Version negotiation.}  Every connection starts in the newline
    protocol above, so pre-binary clients keep working unchanged.  A
    client that wants the framed protocol sends one text line
    [HELLO BIN <v>] ([v] >= 1) as its first request; the server answers
    with the text line [HELLO BIN <min v version>] and {e both} sides
    switch to binary frames immediately after their respective
    newline.  There is no downgrade path on a connection; a malformed
    hello is answered [ERR] and the connection stays in text mode.

    {b Binary frame layout} (all integers big-endian, unsigned):
    {v
    frame  := len:u32 id:u32 op:u8 body:byte[len-5]
    v}
    [len] counts everything after the length field itself, so a frame
    occupies [4 + len] bytes and [len >= 5].  [id] is a client-chosen
    request id echoed verbatim on the matching response; requests may be
    pipelined and responses to {e reads and writes} may arrive out of
    order, matched only by id.  The sentinel [0xFFFF_FFFF] encodes an
    absent optional integer field.

    Request opcodes and bodies (v2 adds the [deadline:u32]
    remaining-budget field; a connection negotiated at v1 keeps the v1
    layouts exactly):
    {v
    0x01 QUERY    tau:u32 max_lag:u32 [deadline:u32] tree-bytes
    0x02 KNN      k:u32   max_lag:u32 [deadline:u32] tree-bytes
    0x03 ADD      seq:u32 [deadline:u32] tree-bytes   (seq sentinel = server picks)
    0x04 STATS    0x05 HEALTH   0x06 DRAIN   0x07 PROMOTE   (empty body)
    v}
    Response opcodes and bodies:
    {v
    0x81 HITS     degraded:u8 nh:u32 nu:u32 (id:u32 dist:u32)*nh
                  (id:u32 lo:u32 hi:u32)*nu
    0x82 ADDED    id:u32 np:u32 (id:u32 dist:u32)*np
    0x83 STATS    29 x u32, in the text STATS field order (decoders
                  accept the 13-, 14- and 17-word frames of older builds)
    0x84 HEALTH   draining:u8
    0x85 DRAINED                                (empty body)
    0x86 BUSY     [retry_after_ms:u32]          (empty body = no hint)
    0x87 ERR      reason-bytes
    0x88 FENCED   epoch:u32
    0x89 PROMOTED epoch:u32
    0x8A REDIRECT address-bytes
    v}
    The replication verbs ([SYNC]/[ACKED]/[RECORD]) are text-only: a
    replication stream never negotiates binary.

    {b Bounded-staleness reads.}  A binary [QUERY]/[KNN] may carry
    [max_lag], the largest number of acked sequence numbers the client
    tolerates the answering node being behind the primary.  The primary
    always answers (lag 0).  A replica knows its lag from the stream
    header's high-water mark and the records it has applied; it answers
    locally iff it is synced and [primary_high - n_trees <= max_lag],
    and otherwise replies [REDIRECT <addr>] naming its upstream so the
    client can retry against the primary (or [ERR] when it has no known
    upstream).  Requests without [max_lag] keep the old semantics:
    any node answers from whatever it has. *)

(** Server address: a Unix-domain socket path or a TCP endpoint. *)
type addr = Unix_path of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** ["host:port"] (or [":port"], defaulting to 127.0.0.1) parses as TCP;
    anything containing a [/] or no [:] is a Unix socket path. *)

val addr_to_string : addr -> string

type request =
  | Query of { tau : int; tree : Tsj_tree.Tree.t }
  | Knn of { k : int; tree : Tsj_tree.Tree.t }
  | Add of { seq : int option; tree : Tsj_tree.Tree.t }
      (** [seq]: client-chosen sequence number enabling safe retries
          (see the idempotency contract above). *)
  | Stats
  | Health
  | Drain
  | Sync of { epoch : int; from_seq : int }
      (** Replica join: "stream me every record from [from_seq]; my
          journal header says epoch [epoch]". *)
  | Ack of int  (** [ACKED n]: the replica durably holds [n] trees. *)
  | Get of int
      (** [GET seq]: fetch the tree bound to a sequence number — the
          sharded router's ledger-recovery and migration-verification
          primitive.  Answered [TREE seq tree], or [ERR] when [seq] is
          unbound.  Text-only, like the replication verbs. *)
  | Digest of { epoch : int; lo : int; hi : int }
      (** [DIGEST epoch lo hi]: Merkle digest of the canonical records
          [\[lo, hi)] — the anti-entropy probe.  Text-only. *)
  | Promote
      (** Make this node primary: bump the epoch (persisted in the
          journal header) and start accepting writes. *)

val max_deadline_ms : int
(** Largest remaining-budget value the wire can carry (one below the
    binary "absent" sentinel); parsers clamp larger values to it. *)

val parse_request : string -> (request, string) result
(** [parse_request_d] with the deadline dropped. *)

val parse_request_d : string -> (request * int option, string) result
(** The request plus its remaining-budget deadline in milliseconds,
    when the line carried the [@<ms>] token. *)

val render_request : request -> string

val render_request_d : ?deadline_ms:int -> request -> string
(** [render_request] with the deadline token attached ([Query]/[Knn]/
    [Add] only; control verbs ignore it). *)

(** The counters of a [STATS] reply (all monotonic since server start,
    except [trees], [inflight], [draining] and [journal_records]). *)
type stats_reply = {
  trees : int;
  tau : int;
  queries : int;
  adds : int;
  shed : int;  (** requests answered [BUSY] by admission control *)
  degraded : int;  (** queries that returned a partial answer *)
  errors : int;  (** requests answered [ERR] *)
  quarantined : int;  (** connections quarantined by a fault/disconnect *)
  inflight : int;
  draining : bool;
  journal_records : int;
  epoch : int;  (** replication epoch persisted in the journal header *)
  primary : bool;  (** whether this node currently accepts writes *)
  dedup : int;
      (** duplicate ADDs suppressed by the store's dedup layer (0 when
          dedup is off; parses as 0 from pre-dedup servers) *)
  scrubbed : int;
      (** journal records re-verified by the background scrubber (parses
          as 0 from pre-scrub servers, like the two fields below) *)
  crc_failures : int;  (** checksum/seal findings, at open or by scrub *)
  repaired : int;
      (** healed journal records + scrub repairs + anti-entropy range
          repairs *)
  expired : int;
      (** requests dropped (pre- or post-compute) because their
          propagated deadline had already passed — the client was no
          longer waiting (parses as 0 from pre-overload servers, like
          every field below) *)
  accept_pauses : int;
      (** times the acceptor backed off after EMFILE/ENFILE instead of
          spinning on a hot listener *)
  reaped : int;
      (** connections closed by hygiene: idle timeout, output-buffer
          overflow, or the max-conns cap *)
  q_p50 : int;
      (** QUERY service latency quantiles in microseconds, from a
          log-bucket histogram (lower bound of the bucket holding the
          quantile — exact to within 2x); 0 until the first QUERY *)
  q_p95 : int;
  q_p99 : int;
  k_p50 : int;  (** KNN latency quantiles, µs *)
  k_p95 : int;
  k_p99 : int;
  a_p50 : int;  (** ADD latency quantiles (admission to ack), µs *)
  a_p95 : int;
  a_p99 : int;
}

type response =
  | Hits of {
      degraded : bool;
      hits : (int * int) list;  (** [(id, distance)], distance then id *)
      unverified : (int * int * int) list;
          (** [(id, lower, upper)] bound sandwiches of candidates left
              unverified when the request deadline expired *)
    }
  | Added of { id : int; partners : (int * int) list }
  | Tree_reply of { seq : int; tree : Tsj_tree.Tree.t }
      (** Reply to [GET]: the tree bound to [seq], verbatim. *)
  | Stats_reply of stats_reply
  | Health_reply of { draining : bool }
  | Drained
  | Busy of { retry_after_ms : int option }
      (** Shed by admission control.  The hint, when present, is the
          earliest time (relative, milliseconds) a retry can be
          admitted; bare [BUSY] parses with no hint. *)
  | Err of string
  | Sync_stream of { epoch : int; base : int; high : int }
      (** Stream header: the primary's epoch, that epoch's first
          sequence number (the promotion point), and the primary's tree
          count when the stream started — the replica's first high-water
          mark for bounded-staleness reads.  Rendered as
          [SYNC <epoch> <base> <high>]; the parser also accepts the
          pre-binary two-integer form ([high] defaults to [base]). *)
  | Record of string  (** One raw journal record line, pushed verbatim. *)
  | Digest_reply of { epoch : int; lo : int; hi : int; digest : string }
      (** Reply to [Digest]: the range echoed plus its 16-hex-digit
          Merkle digest. *)
  | Fenced of int
      (** Write/stream refused: a primary at the given (higher) epoch
          exists; the receiver must demote or fail over. *)
  | Promoted of int  (** Reply to [PROMOTE]: the new epoch. *)
  | Hello_reply of int
      (** [HELLO BIN <v>]: the server accepts the binary handshake at
          protocol version [v]; both sides switch to frames after this
          line. *)
  | Redirect of string
      (** A bounded-staleness read refused by a stale replica; the
          payload is its upstream's address. *)

val render_response : response -> string
(** Always a single line: newlines inside error reasons are replaced. *)

val parse_response : string -> (response, string) result

(** Codec for the length-prefixed binary framing (layout above).
    Encoders append whole frames to a [Buffer]; decoders take the [op]
    byte and the body bytes of one already-deframed frame and never
    raise on wire data — any malformed body is [Error reason]. *)
module Binary : sig
  val version : int
  (** Highest protocol version this build speaks (currently 2: v2 adds
      the remaining-budget deadline field to QUERY/KNN/ADD bodies).
      Both sides speak [min] of their versions, negotiated via HELLO. *)

  val hello : int -> string
  (** The handshake line [HELLO BIN <v>] (no trailing newline). *)

  val parse_hello : string -> int option
  (** [Some v] iff the line is a well-formed [HELLO BIN <v>], [v >= 1]. *)

  val no_value : int
  (** [0xFFFFFFFF]: the u32 encoding of "absent" for the optional
      fields (max_lag on reads, seq on ADD). *)

  val get_u32 : string -> int -> int
  (** Big-endian unsigned 32-bit read at a byte offset — for deframing
      the [len]/[id] header fields.  @raise Invalid_argument if the
      string is too short. *)

  val frame : Buffer.t -> id:int -> op:int -> string -> unit
  (** Append one raw frame ([len id op body]) with an arbitrary opcode
      and body — the escape hatch the wire fuzzer uses to craft
      malformed frames. *)

  val encode_request :
    Buffer.t ->
    id:int ->
    ?max_lag:int ->
    ?deadline_ms:int ->
    ?version:int ->
    request ->
    unit
  (** Append one request frame.  [max_lag] is carried by [Query]/[Knn]
      only; [deadline_ms] by [Query]/[Knn]/[Add] on [version >= 2]
      connections (on a v1 connection it is silently dropped — the
      legacy server applies its own default budget).  [version] defaults
      to this build's {!version}.
      @raise Invalid_argument on [Sync]/[Ack] (text-only). *)

  val decode_request :
    version:int ->
    op:int ->
    body:string ->
    (request * int option * int option, string) result
  (** The decoded request, its bounded-staleness bound (reads only) and
      its remaining-budget deadline in ms (v2 work verbs only).
      [version] is the connection's negotiated version: a v1 frame is
      decoded with the legacy body layout (no deadline word). *)

  val encode_response : Buffer.t -> id:int -> response -> unit
  (** @raise Invalid_argument on the text-only responses
      ([Sync_stream], [Record], [Hello_reply]). *)

  val decode_response : op:int -> body:string -> (response, string) result
end
