(** Wire protocol of the similarity-search service: line-delimited text,
    one request line in, one reply line out.

    Grammar (one request per line; a tree is bracket notation, which
    cannot contain a newline when it arrived on a line):
    {v
    request  := "QUERY" SP tau SP tree        similarity search at τ' <= index τ
              | "KNN" SP k SP tree            top-k within the index τ
              | "ADD" SP tree                 journal + index a tree
              | "STATS" | "HEALTH" | "DRAIN"
    reply    := "HITS" SP degraded(0|1) SP nh SP nu {SP id":"dist}*nh {SP id":"lo":"hi}*nu
              | "ADDED" SP id SP np {SP id":"dist}*np
              | "STATS" SP key"="int ...
              | "OK" SP ("serving"|"draining"|"drained")
              | "BUSY"                        shed by admission control
              | "ERR" SP reason               never a silent drop
    v}

    Parsers on both sides are lenient: any malformed input yields
    [Error reason], never an exception, and tree diagnostics carry the
    bracket parser's ["line L, column C"] location. *)

(** Server address: a Unix-domain socket path or a TCP endpoint. *)
type addr = Unix_path of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** ["host:port"] (or [":port"], defaulting to 127.0.0.1) parses as TCP;
    anything containing a [/] or no [:] is a Unix socket path. *)

val addr_to_string : addr -> string

type request =
  | Query of { tau : int; tree : Tsj_tree.Tree.t }
  | Knn of { k : int; tree : Tsj_tree.Tree.t }
  | Add of Tsj_tree.Tree.t
  | Stats
  | Health
  | Drain

val parse_request : string -> (request, string) result

val render_request : request -> string

(** The counters of a [STATS] reply (all monotonic since server start,
    except [trees], [inflight], [draining] and [journal_records]). *)
type stats_reply = {
  trees : int;
  tau : int;
  queries : int;
  adds : int;
  shed : int;  (** requests answered [BUSY] by admission control *)
  degraded : int;  (** queries that returned a partial answer *)
  errors : int;  (** requests answered [ERR] *)
  quarantined : int;  (** connections quarantined by a fault/disconnect *)
  inflight : int;
  draining : bool;
  journal_records : int;
}

type response =
  | Hits of {
      degraded : bool;
      hits : (int * int) list;  (** [(id, distance)], distance then id *)
      unverified : (int * int * int) list;
          (** [(id, lower, upper)] bound sandwiches of candidates left
              unverified when the request deadline expired *)
    }
  | Added of { id : int; partners : (int * int) list }
  | Stats_reply of stats_reply
  | Health_reply of { draining : bool }
  | Drained
  | Busy
  | Err of string

val render_response : response -> string
(** Always a single line: newlines inside error reasons are replaced. *)

val parse_response : string -> (response, string) result
