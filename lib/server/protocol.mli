(** Wire protocol of the similarity-search service: line-delimited text,
    one request line in, one reply line out.

    Grammar (one request per line; a tree is bracket notation, which
    cannot contain a newline when it arrived on a line):
    {v
    request  := "QUERY" SP tau SP tree        similarity search at τ' <= index τ
              | "KNN" SP k SP tree            top-k within the index τ
              | "ADD" SP [seq SP] tree        journal + index a tree (seq: see below)
              | "STATS" | "HEALTH" | "DRAIN" | "PROMOTE"
              | "SYNC" SP epoch SP from_seq   replica joins: stream me from from_seq
              | "ACKED" SP seq                replica has durably applied up to seq
    reply    := "HITS" SP degraded(0|1) SP nh SP nu {SP id":"dist}*nh {SP id":"lo":"hi}*nu
              | "ADDED" SP id SP np {SP id":"dist}*np
              | "STATS" SP key"="int ...
              | "OK" SP ("serving"|"draining"|"drained")
              | "BUSY"                        shed by admission control
              | "ERR" SP reason               never a silent drop
              | "SYNC" SP epoch SP base       stream header (primary -> replica)
              | "RECORD" SP journal-line      one checksummed journal record pushed
              | "FENCED" SP epoch             refused: a higher epoch exists
              | "PROMOTED" SP epoch           this node is now primary at epoch
    v}

    {b Replication stream.}  A replica connects and sends
    [SYNC <epoch> <from_seq>].  The primary answers with the stream
    header [SYNC <epoch> <base>] (its epoch and the first sequence
    number of that epoch); from then on the roles invert on that
    connection: the primary pushes [RECORD <journal-line>] and the
    replica answers each with [ACKED <n>] ([n] = its new tree count,
    i.e. the next sequence it needs) only {e after} the record is
    flushed to its own journal.  A node that sees evidence of a higher
    epoch answers [FENCED <epoch>] instead and the stream ends.

    {b Idempotency contract of [ADD].}  [ADD <seq> <tree>] binds [tree]
    to sequence number [seq] exactly once: if [seq] equals the store's
    next sequence the tree is journaled and indexed; if [seq] is already
    bound {e to the same tree} the reply is the original
    [ADDED <seq> ...] (recomputed, bit-identical) and nothing is
    written; if [seq] is bound to a {e different} tree or is beyond the
    next sequence, the reply is [ERR].  A client that timed out after
    the request may have been executed must therefore retry {e with the
    same seq} — the retry is then safe whether or not the original
    arrived, including across a failover to a server the record was
    replicated to.  Bare [ADD <tree>] (no seq) keeps the PR-4 semantics
    (server assigns the next sequence) and is {e not} safe to retry
    blind; {!Client} always attaches a seq.

    Parsers on both sides are lenient: any malformed input yields
    [Error reason], never an exception, and tree diagnostics carry the
    bracket parser's ["line L, column C"] location. *)

(** Server address: a Unix-domain socket path or a TCP endpoint. *)
type addr = Unix_path of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** ["host:port"] (or [":port"], defaulting to 127.0.0.1) parses as TCP;
    anything containing a [/] or no [:] is a Unix socket path. *)

val addr_to_string : addr -> string

type request =
  | Query of { tau : int; tree : Tsj_tree.Tree.t }
  | Knn of { k : int; tree : Tsj_tree.Tree.t }
  | Add of { seq : int option; tree : Tsj_tree.Tree.t }
      (** [seq]: client-chosen sequence number enabling safe retries
          (see the idempotency contract above). *)
  | Stats
  | Health
  | Drain
  | Sync of { epoch : int; from_seq : int }
      (** Replica join: "stream me every record from [from_seq]; my
          journal header says epoch [epoch]". *)
  | Ack of int  (** [ACKED n]: the replica durably holds [n] trees. *)
  | Promote
      (** Make this node primary: bump the epoch (persisted in the
          journal header) and start accepting writes. *)

val parse_request : string -> (request, string) result

val render_request : request -> string

(** The counters of a [STATS] reply (all monotonic since server start,
    except [trees], [inflight], [draining] and [journal_records]). *)
type stats_reply = {
  trees : int;
  tau : int;
  queries : int;
  adds : int;
  shed : int;  (** requests answered [BUSY] by admission control *)
  degraded : int;  (** queries that returned a partial answer *)
  errors : int;  (** requests answered [ERR] *)
  quarantined : int;  (** connections quarantined by a fault/disconnect *)
  inflight : int;
  draining : bool;
  journal_records : int;
  epoch : int;  (** replication epoch persisted in the journal header *)
  primary : bool;  (** whether this node currently accepts writes *)
}

type response =
  | Hits of {
      degraded : bool;
      hits : (int * int) list;  (** [(id, distance)], distance then id *)
      unverified : (int * int * int) list;
          (** [(id, lower, upper)] bound sandwiches of candidates left
              unverified when the request deadline expired *)
    }
  | Added of { id : int; partners : (int * int) list }
  | Stats_reply of stats_reply
  | Health_reply of { draining : bool }
  | Drained
  | Busy
  | Err of string
  | Sync_stream of { epoch : int; base : int }
      (** Stream header: the primary's epoch and that epoch's first
          sequence number (the promotion point). *)
  | Record of string  (** One raw journal record line, pushed verbatim. *)
  | Fenced of int
      (** Write/stream refused: a primary at the given (higher) epoch
          exists; the receiver must demote or fail over. *)
  | Promoted of int  (** Reply to [PROMOTE]: the new epoch. *)

val render_response : response -> string
(** Always a single line: newlines inside error reasons are replaced. *)

val parse_response : string -> (response, string) result
