module Tree = Tsj_tree.Tree
module Prng = Tsj_util.Prng
module Durable = Tsj_util.Durable
module Text = Tsj_util.Text
module Timer = Tsj_util.Timer
module Vec_int = Tsj_util.Vec_int

type answer = {
  a_degraded : bool;
  a_hits : (int * int) list;
  a_unverified : (int * int * int) list;
}

(* --- the pure merge --- *)

module Merge = struct
  type shard_answer =
    | Answer of {
        degraded : bool;
        hits : (int * int) list;
        unverified : (int * int * int) list;
      }
    | Unreachable

  let rec take k = function
    | [] -> []
    | _ when k <= 0 -> []
    | x :: tl -> x :: take (k - 1) tl

  (* Conflicting sandwich claims for the same gid widen to the union:
     under garbage input nothing is trustworthy, and the union is the
     only combination that stays sound whenever either claim was. *)
  let widen tbl gid lo hi =
    match Hashtbl.find_opt tbl gid with
    | None -> Hashtbl.replace tbl gid (lo, hi)
    | Some (lo', hi') -> Hashtbl.replace tbl gid (min lo lo', max hi hi')

  (* Gather phase shared by query and knn: exact distances keyed by gid
     (duplicates keep the smallest claim), sandwiches keyed by gid, and
     the degraded flag.  Every shard-local id goes through [to_gid];
     anything unmappable or out of the [0, tau] distance range is
     dropped and degrades the answer — a malformed or byzantine reply
     can remove precision but never invent a result. *)
  let collect ~query_size ~tau ~to_gid ~resident answers =
    let degraded = ref false in
    let exact = Hashtbl.create 64 in
    let sand = Hashtbl.create 16 in
    List.iter
      (fun (shard, a) ->
        match a with
        | Unreachable ->
          degraded := true;
          List.iter
            (fun (gid, size) ->
              if abs (size - query_size) <= tau then begin
                let lo, hi = Shard.sandwich ~query_size size in
                widen sand gid lo hi
              end)
            (resident ~shard)
        | Answer { degraded = d; hits; unverified } ->
          if d then degraded := true;
          List.iter
            (fun (lid, dist) ->
              match to_gid ~shard lid with
              | Some gid when 0 <= dist && dist <= tau -> (
                match Hashtbl.find_opt exact gid with
                | Some d' when d' <= dist -> ()
                | _ -> Hashtbl.replace exact gid dist)
              | _ -> degraded := true)
            hits;
          List.iter
            (fun (lid, lo, hi) ->
              match to_gid ~shard lid with
              | Some gid when 0 <= lo && lo <= hi -> widen sand gid lo hi
              | _ -> degraded := true)
            unverified)
      answers;
    (degraded, exact, sand)

  let finish ?cap ~tau (degraded, exact, sand) =
    let hits =
      Hashtbl.fold (fun gid d acc -> (gid, d) :: acc) exact []
      |> List.sort (fun (i1, d1) (i2, d2) -> compare (d1, i1) (d2, i2))
    in
    let hits = match cap with None -> hits | Some k -> take k hits in
    let unverified =
      Hashtbl.fold
        (fun gid (lo, hi) acc ->
          if Hashtbl.mem exact gid || lo > tau then acc else (gid, lo, hi) :: acc)
        sand []
      |> List.sort (fun (i1, _, _) (i2, _, _) -> compare i1 i2)
    in
    {
      a_degraded = !degraded || unverified <> [];
      a_hits = hits;
      a_unverified = unverified;
    }

  let query ~query_size ~tau ~to_gid ~resident answers =
    finish ~tau (collect ~query_size ~tau ~to_gid ~resident answers)

  let knn ~k ~query_size ~tau ~to_gid ~resident answers =
    finish ~cap:k ~tau (collect ~query_size ~tau ~to_gid ~resident answers)
end

(* --- router state --- *)

type config = {
  map : Shard.map;
  tau : int;
  groups : Protocol.addr list array;
  timeout_s : float;
  attempts : int;
  ledger : string option;
  seed : int;
  hedge_s : float option;
  margin_ms : int;
}

type group = {
  mutable g_addrs : Protocol.addr list;
  g_lock : Mutex.t;  (* held across a shard write; migration pauses here *)
  g_gids : Vec_int.t;  (* lseq -> gid *)
}

type t = {
  r_map : Shard.map;
  r_tau : int;
  r_timeout_s : float;
  r_attempts : int;
  r_seed : int;
  r_hedge_s : float option;
  r_margin_ms : int;
  r_groups : group array;
  (* the ledger: gid -> (shard, lseq, size) *)
  r_shard : Vec_int.t;
  r_lseq : Vec_int.t;
  r_size : Vec_int.t;
  mutable r_ledger : (string * out_channel) option;
  r_ledger_mutex : Mutex.t;  (* guards the vectors, g_gids and the channel *)
  r_add_mutex : Mutex.t;  (* serialises gid assignment end to end *)
  r_counter : int Atomic.t;  (* per-call PRNG substreams *)
  r_queries : int Atomic.t;
  r_adds : int Atomic.t;
  r_degraded : int Atomic.t;
  r_errors : int Atomic.t;
  r_draining : bool Atomic.t;
  (* integrity telemetry, as the store's [scrub_counters] *)
  r_scrubbed : int Atomic.t;
  r_crc_failures : int Atomic.t;
  r_repaired : int Atomic.t;
  r_quarantined : int Atomic.t;
  (* hedged-read telemetry: legs fired past the latency threshold, and
     how many of those supplied the winning answer *)
  r_hedges : int Atomic.t;
  r_hedge_wins : int Atomic.t;
}

let failover t addrs =
  let n = Atomic.fetch_and_add t.r_counter 1 in
  let rng = Prng.create (t.r_seed + (7919 * (n + 1))) in
  Client.Failover.create ~attempts:t.r_attempts ~base_delay_s:0.01 ~max_delay_s:0.1
    ~deadline_s:t.r_timeout_s ~timeout_s:t.r_timeout_s ~rng addrs

(* --- ledger --- *)

let ledger_line ~gid ~shard ~lseq ~size =
  let payload = Printf.sprintf "map %d %d %d %d" gid shard lseq size in
  payload ^ " " ^ Text.fnv1a64_hex payload

let parse_ledger_line line =
  match String.rindex_opt line ' ' with
  | None -> None
  | Some i ->
    let payload = String.sub line 0 i in
    let crc = String.sub line (i + 1) (String.length line - i - 1) in
    if Text.fnv1a64_hex payload <> crc then None
    else (
      match String.split_on_char ' ' payload with
      | [ "map"; g; s; l; z ] -> (
        match
          (int_of_string_opt g, int_of_string_opt s, int_of_string_opt l, int_of_string_opt z)
        with
        | Some g, Some s, Some l, Some z -> Some (g, s, l, z)
        | _ -> None)
      | _ -> None)

(* Rewrite the ledger file from memory — the recovery for both a torn
   tail found at load and a mid-append disk fault (the same move the
   store's journal makes: an atomic whole-file replacement regenerated
   from the authoritative in-memory state). *)
let rewrite_ledger_locked t path =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      let n = Vec_int.length t.r_shard in
      for gid = 0 to n - 1 do
        output_string oc
          (ledger_line ~gid ~shard:(Vec_int.get t.r_shard gid)
             ~lseq:(Vec_int.get t.r_lseq gid) ~size:(Vec_int.get t.r_size gid));
        output_char oc '\n'
      done);
  Durable.rename tmp path;
  Integrity.write_seal path;
  open_out_gen [ Open_append; Open_creat ] 0o644 path

(* Called with [r_ledger_mutex] held after a [Disk_fault] mid-append:
   drop the (possibly torn) channel and rebuild the file.  If even the
   rewrite fails the router degrades to ledgerless operation — adds
   keep committing, recovery falls back to shard reconciliation. *)
let repair_ledger_locked t =
  match t.r_ledger with
  | None -> ()
  | Some (path, oc) ->
    close_out_noerr oc;
    t.r_ledger <- None;
    (try t.r_ledger <- Some (path, rewrite_ledger_locked t path)
     with Durable.Disk_fault _ | Sys_error _ -> ())

(* Bind the next gid.  Caller holds [r_ledger_mutex]; the ledger append
   is durable before the in-memory maps change, so an acked gid is
   always recoverable.  @raise Durable.Disk_fault after repairing. *)
let bind_locked t ~shard ~lseq ~size =
  let gid = Vec_int.length t.r_shard in
  (match t.r_ledger with
  | None -> ()
  | Some (path, oc) -> (
    try
      Durable.append_line ~path oc (ledger_line ~gid ~shard ~lseq ~size);
      Durable.flush_channel ~path oc
    with Durable.Disk_fault _ as f ->
      repair_ledger_locked t;
      raise f));
  Vec_int.push t.r_shard shard;
  Vec_int.push t.r_lseq lseq;
  Vec_int.push t.r_size size;
  Vec_int.push t.r_groups.(shard).g_gids gid;
  gid

(* --- accessors --- *)

let n_trees t = Mutex.protect t.r_ledger_mutex (fun () -> Vec_int.length t.r_shard)

let map t = t.r_map

let tau t = t.r_tau

let locate t gid =
  Mutex.protect t.r_ledger_mutex (fun () ->
      if gid >= 0 && gid < Vec_int.length t.r_shard then
        Some (Vec_int.get t.r_shard gid, Vec_int.get t.r_lseq gid, Vec_int.get t.r_size gid)
      else None)

let group_addrs t s = Mutex.protect t.r_groups.(s).g_lock (fun () -> t.r_groups.(s).g_addrs)

let set_group_addrs t s addrs =
  if addrs = [] then invalid_arg "Router.set_group_addrs: empty group";
  Mutex.protect t.r_groups.(s).g_lock (fun () -> t.r_groups.(s).g_addrs <- addrs)

let to_gid t ~shard lid =
  Mutex.protect t.r_ledger_mutex (fun () ->
      let g = t.r_groups.(shard).g_gids in
      if lid >= 0 && lid < Vec_int.length g then Some (Vec_int.get g lid) else None)

let resident t ~shard =
  Mutex.protect t.r_ledger_mutex (fun () ->
      let g = t.r_groups.(shard).g_gids in
      let acc = ref [] in
      for i = Vec_int.length g - 1 downto 0 do
        let gid = Vec_int.get g i in
        acc := (gid, Vec_int.get t.r_size gid) :: !acc
      done;
      !acc)

(* --- orphan adoption / reconciliation --- *)

(* Adopt shard-acked trees the ledger does not know, in lseq order, by
   fetching each via GET.  Caller holds the shard's [g_lock] (and the
   add mutex when racing writers matter).  Best effort: stops at the
   first fetch or ledger failure — the remainder is adopted by a later
   pass. *)
let adopt_locked t s fo ~upto =
  let g = t.r_groups.(s) in
  let n = ref 0 in
  (try
     while Vec_int.length g.g_gids < upto do
       let lseq = Vec_int.length g.g_gids in
       match Client.Failover.request fo (Protocol.Get lseq) with
       | Ok (Protocol.Tree_reply { tree; _ }) ->
         Mutex.protect t.r_ledger_mutex (fun () ->
             ignore (bind_locked t ~shard:s ~lseq ~size:(Tree.size tree)));
         incr n
       | _ -> raise Exit
     done
   with Exit | Durable.Disk_fault _ -> ());
  !n

let reconcile t =
  let adopted = ref 0 in
  Mutex.protect t.r_add_mutex (fun () ->
      Array.iteri
        (fun s g ->
          Mutex.protect g.g_lock (fun () ->
              let fo = failover t g.g_addrs in
              match Client.Failover.request fo Protocol.Stats with
              | Ok (Protocol.Stats_reply st) ->
                adopted := !adopted + adopt_locked t s fo ~upto:st.trees
              | _ -> ()))
        t.r_groups);
  !adopted

(* --- create / close --- *)

let read_lines path =
  let ic = open_in path in
  let acc = ref [] in
  (try
     while true do
       acc := input_line ic :: !acc
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !acc

(* Replay one checksummed ledger entry into the in-memory maps.  The
   checks are structural: gids and per-shard lseqs must arrive dense
   and in order, exactly as the append path writes them. *)
let replay_entry t (gid, shard, lseq, size) =
  if gid <> Vec_int.length t.r_shard then
    Error (Printf.sprintf "gid %d out of order (expected %d)" gid (Vec_int.length t.r_shard))
  else if shard < 0 || shard >= Array.length t.r_groups then
    Error (Printf.sprintf "gid %d names shard %d of %d" gid shard (Array.length t.r_groups))
  else if lseq <> Vec_int.length t.r_groups.(shard).g_gids then
    Error
      (Printf.sprintf "gid %d: shard %d lseq %d out of order (expected %d)" gid shard lseq
         (Vec_int.length t.r_groups.(shard).g_gids))
  else if size < 1 then Error (Printf.sprintf "gid %d: tree size %d" gid size)
  else begin
    Vec_int.push t.r_shard shard;
    Vec_int.push t.r_lseq lseq;
    Vec_int.push t.r_size size;
    Vec_int.push t.r_groups.(shard).g_gids gid;
    Ok ()
  end

(* Dead-letter a ledger line (or a whole suffix): appended to
   [<path>.quarantine], counted, never deleted — an operator can audit
   what was given up on. *)
let quarantine_ledger_lines path lines =
  if lines <> [] then begin
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 (path ^ ".quarantine") in
    List.iter
      (fun l ->
        output_string oc l;
        output_char oc '\n')
      lines;
    close_out_noerr oc
  end

(* Reconstruct the entry a corrupt mid-ledger line must have bound,
   from the structural invariants plus shard-acked state: its gid is
   the next dense gid; the shard it named is the one whose first
   subsequent entry skips exactly one lseq; and the tree size — gone
   from the ledger — is re-measured by fetching the tree from that
   shard via [GET] (the shard acked the add, so it has it).  Returns
   [None] when the suffix does not pin the entry down (the shard never
   appears again, a second corrupt line intervenes, or the fetch
   fails). *)
let heal_ledger_entry t rest =
  let gid = Vec_int.length t.r_shard in
  let expected = Array.map (fun g -> Vec_int.length g.g_gids) t.r_groups in
  let ruled_out = Array.make (Array.length t.r_groups) false in
  let rec find = function
    | [] -> None
    | line :: more -> (
      match parse_ledger_line line with
      | None -> None
      | Some (_, s, l, _) ->
        if s < 0 || s >= Array.length t.r_groups then None
        else if ruled_out.(s) then find more
        else if l = expected.(s) + 1 then Some s
        else if l = expected.(s) then begin
          ruled_out.(s) <- true;
          find more
        end
        else None)
  in
  match find rest with
  | None -> None
  | Some shard -> (
    let lseq = expected.(shard) in
    let fo = failover t t.r_groups.(shard).g_addrs in
    match Client.Failover.request fo (Protocol.Get lseq) with
    | Ok (Protocol.Tree_reply { tree; _ }) -> Some (gid, shard, lseq, Tree.size tree)
    | _ -> None)

let load_ledger t path =
  let lines = if Sys.file_exists path then read_lines path else [] in
  (* A line that fails its checksum at the very end is a torn tail
     (dropped — nothing beyond it was acked, appends are flushed in
     order).  Mid-file it is bit rot over acked state: the entry is
     healed from shard-acked state when the suffix pins it down
     ({!heal_ledger_entry}), else the line and the suffix behind it are
     quarantined and a later {!reconcile} re-adopts those trees under
     fresh gids.  A line that passes its checksum but violates the
     structural invariants is not bit rot (the checksum covers the
     payload) and still refuses to load. *)
  let torn = ref 0 and healed = ref 0 and quarantined = ref 0 in
  let rec replay = function
    | [] -> Ok ()
    | line :: rest -> (
      match parse_ledger_line line with
      | Some entry -> (
        match replay_entry t entry with
        | Error e -> Error e
        | Ok () -> replay rest)
      | None when rest = [] ->
        incr torn;
        Ok ()
      | None -> (
        match heal_ledger_entry t rest with
        | Some entry -> (
          match replay_entry t entry with
          | Error e -> Error e
          | Ok () ->
            incr healed;
            quarantine_ledger_lines path [ line ];
            replay rest)
        | None ->
          quarantined := 1 + List.length rest;
          quarantine_ledger_lines path (line :: rest);
          Ok ()))
  in
  match replay lines with
  | Error e -> Error e
  | Ok () ->
    let seal_bad =
      match Integrity.check_seal path with
      | Ok _ -> false
      | Error _ -> true
      | exception Durable.Disk_fault _ -> false
    in
    let findings = !torn + !healed + !quarantined + Bool.to_int seal_bad in
    Atomic.set t.r_crc_failures (Atomic.get t.r_crc_failures + findings);
    Atomic.set t.r_repaired (Atomic.get t.r_repaired + !healed);
    Atomic.set t.r_quarantined (Atomic.get t.r_quarantined + !quarantined);
    (try
       let oc =
         if findings > 0 then rewrite_ledger_locked t path
         else open_out_gen [ Open_append; Open_creat ] 0o644 path
       in
       t.r_ledger <- Some (path, oc);
       Ok ()
     with
    | Durable.Disk_fault f -> Error (Durable.fault_to_string f)
    | Sys_error m -> Error m)

let create (config : config) =
  let shards = config.map.Shard.shards in
  if Array.length config.groups <> shards then
    Error
      (Printf.sprintf "router: %d groups for %d shards" (Array.length config.groups) shards)
  else if Array.exists (fun l -> l = []) config.groups then
    Error "router: every shard needs at least one address"
  else if config.timeout_s <= 0.0 then Error "router: per-shard deadline must be positive"
  else if config.attempts < 1 then Error "router: attempts must be >= 1"
  else if config.tau < 0 then Error "router: negative threshold"
  else if (match config.hedge_s with Some h -> h <= 0.0 | None -> false) then
    Error "router: hedge threshold must be positive"
  else if config.margin_ms < 0 then Error "router: negative response margin"
  else begin
    let t =
      {
        r_map = config.map;
        r_tau = config.tau;
        r_timeout_s = config.timeout_s;
        r_attempts = config.attempts;
        r_seed = config.seed;
        r_hedge_s = config.hedge_s;
        r_margin_ms = config.margin_ms;
        r_groups =
          Array.map
            (fun addrs ->
              { g_addrs = addrs; g_lock = Mutex.create (); g_gids = Vec_int.create () })
            config.groups;
        r_shard = Vec_int.create ();
        r_lseq = Vec_int.create ();
        r_size = Vec_int.create ();
        r_ledger = None;
        r_ledger_mutex = Mutex.create ();
        r_add_mutex = Mutex.create ();
        r_counter = Atomic.make 0;
        r_queries = Atomic.make 0;
        r_adds = Atomic.make 0;
        r_degraded = Atomic.make 0;
        r_errors = Atomic.make 0;
        r_draining = Atomic.make false;
        r_scrubbed = Atomic.make 0;
        r_crc_failures = Atomic.make 0;
        r_repaired = Atomic.make 0;
        r_quarantined = Atomic.make 0;
        r_hedges = Atomic.make 0;
        r_hedge_wins = Atomic.make 0;
      }
    in
    match config.ledger with
    | Some path -> (
      match load_ledger t path with
      | Error e -> Error ("router ledger: " ^ e)
      | Ok () ->
        ignore (reconcile t);
        Ok t)
    | None ->
      ignore (reconcile t);
      Ok t
  end

let close t =
  Mutex.protect t.r_ledger_mutex (fun () ->
      match t.r_ledger with
      | None -> ()
      | Some (_, oc) ->
        close_out_noerr oc;
        t.r_ledger <- None)

(* --- scrub --- *)

(* One ledger scrub pass: re-read the file and verify every line
   against the canonical line regenerated from the in-memory maps
   (authoritative — each entry passed its checksum when applied), plus
   the seal.  Disk-level rot is repaired by converging disk to memory
   (an atomic rewrite + reseal); a read fault is a finding but nothing
   to repair over.  Returns [(lines_verified, findings)]. *)
let scrub_ledger t =
  Mutex.protect t.r_ledger_mutex (fun () ->
      match t.r_ledger with
      | None -> (0, [])
      | Some (path, _) -> (
        match Durable.read_file path with
        | exception Durable.Disk_fault f ->
          let findings =
            [ { Integrity.c_surface = Ledger; c_path = path; c_seq = None;
                c_detail = Durable.fault_to_string f } ]
          in
          Atomic.incr t.r_crc_failures;
          (0, findings)
        | contents ->
          let lines =
            List.filter (fun l -> l <> "") (String.split_on_char '\n' contents)
          in
          let n = Vec_int.length t.r_shard in
          let findings = ref [] in
          let finding gid detail =
            findings :=
              { Integrity.c_surface = Ledger; c_path = path; c_seq = gid;
                c_detail = detail }
              :: !findings
          in
          let verified = ref 0 in
          List.iteri
            (fun gid line ->
              if gid < n then begin
                incr verified;
                let want =
                  ledger_line ~gid ~shard:(Vec_int.get t.r_shard gid)
                    ~lseq:(Vec_int.get t.r_lseq gid) ~size:(Vec_int.get t.r_size gid)
                in
                if not (String.equal line want) then
                  finding (Some gid) "entry diverges from the in-memory ledger"
              end)
            lines;
          if List.length lines <> n then
            finding None
              (Printf.sprintf "%d entries on disk, %d in memory" (List.length lines) n);
          (match Integrity.check_seal path with
          | Ok _ -> ()
          | Error d -> finding None d
          | exception Durable.Disk_fault f ->
            finding None (Durable.fault_to_string f));
          let findings = List.rev !findings in
          Atomic.set t.r_scrubbed (Atomic.get t.r_scrubbed + !verified);
          Atomic.set t.r_crc_failures
            (Atomic.get t.r_crc_failures + List.length findings);
          if findings <> [] then begin
            (match t.r_ledger with
            | Some (p, oc) -> (
              close_out_noerr oc;
              t.r_ledger <- None;
              try
                t.r_ledger <- Some (p, rewrite_ledger_locked t p);
                Atomic.incr t.r_repaired
              with Durable.Disk_fault _ | Sys_error _ -> ())
            | None -> ())
          end;
          (!verified, findings)))

(* --- writes --- *)

let add ?expect t tree =
  Atomic.incr t.r_adds;
  let size = Tree.size tree in
  let s = Shard.shard_of_size t.r_map size in
  let g = t.r_groups.(s) in
  let fail e =
    Atomic.incr t.r_errors;
    Error e
  in
  Mutex.protect t.r_add_mutex (fun () ->
      Mutex.protect g.g_lock (fun () ->
          match expect with
          | Some e when e <> Vec_int.length t.r_shard ->
            fail (Printf.sprintf "seq gap: next sequence is %d" (Vec_int.length t.r_shard))
          | _ -> (
            let fo = failover t g.g_addrs in
            match Client.Failover.add fo tree with
            | Error e -> fail e
            | Ok (Protocol.Added { id = lseq; partners }) ->
              let translate partners =
                List.filter_map
                  (fun (lid, d) ->
                    if lid >= 0 && lid < Vec_int.length g.g_gids then
                      Some (Vec_int.get g.g_gids lid, d)
                    else None)
                  partners
              in
              if lseq < Vec_int.length g.g_gids then
                (* The shard already held this tree (its dedup layer, or
                   a replayed ack): answer the existing binding. *)
                Ok (Vec_int.get g.g_gids lseq, translate partners)
              else begin
                if lseq > Vec_int.length g.g_gids then
                  (* shard-acked orphans from a previous router life
                     come first — gid order must follow lseq order *)
                  ignore (adopt_locked t s fo ~upto:lseq);
                if lseq <> Vec_int.length g.g_gids then
                  fail (Printf.sprintf "shard %d: cannot adopt orphans below lseq %d" s lseq)
                else
                  match
                    Mutex.protect t.r_ledger_mutex (fun () ->
                        bind_locked t ~shard:s ~lseq ~size)
                  with
                  | exception Durable.Disk_fault f -> fail (Durable.fault_to_string f)
                  | gid -> (
                    match expect with
                    | Some e when e <> gid ->
                      (* orphan adoption shifted the gid: the tree is
                         committed, but not at the requested binding *)
                      fail (Printf.sprintf "seq gap: bound at %d" gid)
                    | _ -> Ok (gid, translate partners))
              end
            | Ok (Protocol.Fenced e) -> fail (Printf.sprintf "shard %d fenced at epoch %d" s e)
            | Ok (Protocol.Busy _) -> fail (Printf.sprintf "shard %d busy" s)
            | Ok (Protocol.Err r) -> fail r
            | Ok _ -> fail "unexpected reply to ADD")))

(* --- scatter-gather reads --- *)

(* One shard's read, optionally hedged: leg 0 fails over across the
   group's addresses as before; if no leg has answered after [hedge_s],
   a second leg races it on the {e rotated} address list (a slow
   primary races a replica).  The first {e well-formed} [HITS] wins —
   replies are deterministic (same lseq-ordered store on every
   replica), so the race can change latency but never the answer.  The
   losing leg is abandoned, bounded by its own socket timeout. *)
let scatter_one t ?deadline_ms s request =
  let addrs = group_addrs t s in
  let to_answer = function
    | Ok (Protocol.Hits { degraded; hits; unverified }) ->
      Some (Merge.Answer { degraded; hits; unverified })
    | _ -> None
  in
  match t.r_hedge_s with
  | None ->
    let fo = failover t addrs in
    to_answer (Client.Failover.request fo ?deadline_ms request)
  | Some hedge_s ->
    let lock = Mutex.create () in
    let first = ref None in
    let finished = ref 0 in
    let legs = ref 0 in
    let spawn leg addr_list =
      incr legs;
      ignore
        (Thread.create
           (fun () ->
             let fo = failover t addr_list in
             let r = Client.Failover.request fo ?deadline_ms request in
             Mutex.protect lock (fun () ->
                 incr finished;
                 match to_answer r with
                 | Some a when !first = None -> first := Some (leg, a)
                 | _ -> ()))
           ())
    in
    spawn 0 addrs;
    let hedge_at = Timer.now () +. hedge_s in
    let hedged = ref false in
    (* OCaml's [Condition] has no timed wait, so the race is settled by
       a short polling loop; both legs are bounded by the per-shard
       failover deadline, so this terminates. *)
    let rec await () =
      let state =
        Mutex.protect lock (fun () ->
            match !first with
            | Some (leg, a) -> `Won (leg, a)
            | None -> if !finished >= !legs then `Lost else `Racing)
      in
      match state with
      | `Won (leg, a) ->
        if leg > 0 then Atomic.incr t.r_hedge_wins;
        Some a
      | `Lost -> None
      | `Racing ->
        if (not !hedged) && Timer.now () >= hedge_at then begin
          hedged := true;
          Atomic.incr t.r_hedges;
          let rotated = match addrs with [] | [ _ ] -> addrs | a :: tl -> tl @ [ a ] in
          spawn 1 rotated
        end;
        Thread.delay 0.002;
        await ()
    in
    await ()

let scatter t ?deadline_ms shards request =
  let results = Array.of_list (List.map (fun s -> (s, Merge.Unreachable)) shards) in
  let threads =
    List.mapi
      (fun i s ->
        Thread.create
          (fun () ->
            match scatter_one t ?deadline_ms s request with
            | Some a -> results.(i) <- (s, a)
            | None -> ())
          ())
      shards
  in
  List.iter Thread.join threads;
  Array.to_list results

(* The budget announced to the shards: the caller's remainder minus the
   router's response margin, so the router can still merge and answer
   within what the caller is willing to wait for. *)
let shard_deadline t deadline_ms =
  match deadline_ms with
  | None -> None
  | Some ms ->
    Some (Admission.Deadline.after_hop ~margin_ms:t.r_margin_ms ~elapsed_ms:0 ms)

let query t ?deadline_ms ~tau:tau' tree =
  if tau' < 0 then invalid_arg "Router.query: negative threshold";
  if tau' > t.r_tau then invalid_arg "Router.query: threshold above the index threshold";
  Atomic.incr t.r_queries;
  let query_size = Tree.size tree in
  let shards = Shard.shards_for t.r_map ~tau:tau' query_size in
  let answers =
    scatter t
      ?deadline_ms:(shard_deadline t deadline_ms)
      shards
      (Protocol.Query { tau = tau'; tree })
  in
  let a =
    Merge.query ~query_size ~tau:tau' ~to_gid:(to_gid t) ~resident:(resident t) answers
  in
  if a.a_degraded then Atomic.incr t.r_degraded;
  a

let knn t ?deadline_ms ~k tree =
  if k < 0 then invalid_arg "Router.knn: negative k";
  Atomic.incr t.r_queries;
  let query_size = Tree.size tree in
  let shards = Shard.shards_for t.r_map ~tau:t.r_tau query_size in
  let answers =
    scatter t
      ?deadline_ms:(shard_deadline t deadline_ms)
      shards
      (Protocol.Knn { k; tree })
  in
  let a =
    Merge.knn ~k ~query_size ~tau:t.r_tau ~to_gid:(to_gid t) ~resident:(resident t) answers
  in
  if a.a_degraded then Atomic.incr t.r_degraded;
  a

let hedges t = (Atomic.get t.r_hedges, Atomic.get t.r_hedge_wins)

(* --- migration --- *)

let migrate ?(deadline_s = 30.0) t ~shard ~target =
  if shard < 0 || shard >= Array.length t.r_groups then invalid_arg "Router.migrate: bad shard";
  if target = [] then invalid_arg "Router.migrate: empty target group";
  let g = t.r_groups.(shard) in
  Mutex.protect g.g_lock (fun () ->
      (* writes to this shard are paused for the whole cutover *)
      let fo_src = failover t g.g_addrs in
      match Client.Failover.request fo_src Protocol.Stats with
      | Ok (Protocol.Stats_reply st) -> (
        let want = st.Protocol.trees in
        let fo_tgt = failover t target in
        let deadline = Timer.now () +. deadline_s in
        let rec catchup () =
          match Client.Failover.request fo_tgt Protocol.Stats with
          | Ok (Protocol.Stats_reply st') when st'.Protocol.trees >= want -> Ok ()
          | Ok (Protocol.Stats_reply st') ->
            if Timer.now () < deadline then begin
              Thread.delay 0.02;
              catchup ()
            end
            else
              Error
                (Printf.sprintf "migration: target stuck at %d/%d trees" st'.Protocol.trees
                   want)
          | Ok _ -> Error "migration: unexpected reply to STATS"
          | Error e -> Error ("migration: target unreachable: " ^ e)
        in
        match catchup () with
        | Error _ as e -> e
        | Ok () -> (
          (* the epoch bump fences the source: a partitioned old
             primary can never accept another write for this shard *)
          match Client.Failover.request fo_tgt Protocol.Promote with
          | Ok (Protocol.Promoted _) ->
            g.g_addrs <- target;
            Ok ()
          | Ok (Protocol.Fenced e) ->
            Error (Printf.sprintf "migration: target fenced at epoch %d" e)
          | Ok _ -> Error "migration: unexpected reply to PROMOTE"
          | Error e -> Error ("migration: promote failed: " ^ e)))
      | Ok _ -> Error "migration: unexpected reply to STATS"
      | Error e -> Error ("migration: source unreachable: " ^ e))

(* --- stats --- *)

let stats t =
  let n = n_trees t in
  let ledgered = Mutex.protect t.r_ledger_mutex (fun () -> t.r_ledger <> None) in
  {
    Protocol.trees = n;
    tau = t.r_tau;
    queries = Atomic.get t.r_queries;
    adds = Atomic.get t.r_adds;
    shed = 0;
    degraded = Atomic.get t.r_degraded;
    errors = Atomic.get t.r_errors;
    quarantined = Atomic.get t.r_quarantined;
    inflight = 0;
    draining = Atomic.get t.r_draining;
    journal_records = (if ledgered then n else 0);
    epoch = 0;
    primary = true;
    dedup = 0;
    scrubbed = Atomic.get t.r_scrubbed;
    crc_failures = Atomic.get t.r_crc_failures;
    repaired = Atomic.get t.r_repaired;
    (* overload telemetry is per-node; the router front does not queue
       or shed work itself, so these stay zero in the aggregate view *)
    expired = 0;
    accept_pauses = 0;
    reaped = 0;
    q_p50 = 0;
    q_p95 = 0;
    q_p99 = 0;
    k_p50 = 0;
    k_p95 = 0;
    k_p99 = 0;
    a_p50 = 0;
    a_p95 = 0;
    a_p99 = 0;
  }

(* --- line-protocol front-end --- *)

type front = {
  f_fd : Unix.file_descr;
  f_addr : Protocol.addr;
  f_stop : bool Atomic.t;
  mutable f_thread : Thread.t option;
}

let bind_listener addr =
  match addr with
  | Protocol.Unix_path path ->
    if Sys.file_exists path then Sys.remove path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Protocol.Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 64;
    fd

let answer_to_hits a =
  Protocol.Hits { degraded = a.a_degraded; hits = a.a_hits; unverified = a.a_unverified }

let handle_add t seq tree =
  if Atomic.get t.r_draining then Protocol.Err "draining: not accepting new work"
  else
    match seq with
    | None -> (
      match add t tree with
      | Ok (gid, partners) -> Protocol.Added { id = gid; partners }
      | Error e -> Protocol.Err e)
    | Some seq ->
      let n = n_trees t in
      if seq >= n then (
        match add ~expect:seq t tree with
        | Ok (gid, partners) -> Protocol.Added { id = gid; partners }
        | Error e -> Protocol.Err e)
      else (
        (* replay of an already-bound gid: forward to the owning shard,
           whose idempotency check verifies the tree is the same one *)
        match locate t seq with
        | None -> Protocol.Err (Printf.sprintf "seq gap: %d unbound" seq)
        | Some (shard, lseq, _) -> (
          let fo = failover t (group_addrs t shard) in
          match Client.Failover.request fo (Protocol.Add { seq = Some lseq; tree }) with
          | Ok (Protocol.Added { id = _; partners }) ->
            let partners =
              List.filter_map
                (fun (lid, d) ->
                  match to_gid t ~shard lid with Some g -> Some (g, d) | None -> None)
                partners
            in
            Protocol.Added { id = seq; partners }
          | Ok (Protocol.Err r) -> Protocol.Err r
          | Ok (Protocol.Fenced e) -> Protocol.Fenced e
          | Ok _ -> Protocol.Err "unexpected reply from shard"
          | Error e -> Protocol.Err e))

let handle t ?deadline_ms req =
  (* A work request whose remaining budget is already zero is answered
     with the expiry error instead of burning shard work on an answer
     the caller has stopped waiting for.  Control verbs ignore
     deadlines. *)
  let expired =
    match (req, deadline_ms) with
    | (Protocol.Query _ | Protocol.Knn _ | Protocol.Add _), Some ms when ms <= 0 ->
      true
    | _ -> false
  in
  if expired then Protocol.Err "deadline expired"
  else
    match req with
    | Protocol.Query { tau = tau'; tree } ->
      if tau' < 0 || tau' > t.r_tau then
        Protocol.Err (Printf.sprintf "tau %d out of range (index tau %d)" tau' t.r_tau)
      else answer_to_hits (query t ?deadline_ms ~tau:tau' tree)
    | Protocol.Knn { k; tree } ->
      if k < 0 then Protocol.Err "negative k"
      else answer_to_hits (knn t ?deadline_ms ~k tree)
    | Protocol.Add { seq; tree } -> handle_add t seq tree
  | Protocol.Get gid -> (
    match locate t gid with
    | None -> Protocol.Err (Printf.sprintf "GET %d: unbound sequence" gid)
    | Some (shard, lseq, _) -> (
      let fo = failover t (group_addrs t shard) in
      match Client.Failover.request fo (Protocol.Get lseq) with
      | Ok (Protocol.Tree_reply { tree; _ }) -> Protocol.Tree_reply { seq = gid; tree }
      | Ok (Protocol.Err r) -> Protocol.Err r
      | Ok _ -> Protocol.Err "unexpected reply from shard"
      | Error e -> Protocol.Err e))
  | Protocol.Stats -> Protocol.Stats_reply (stats t)
  | Protocol.Health -> Protocol.Health_reply { draining = Atomic.get t.r_draining }
  | Protocol.Drain ->
    Atomic.set t.r_draining true;
    Protocol.Drained
  | Protocol.Sync _ | Protocol.Ack _ | Protocol.Digest _ ->
    Protocol.Err "replication verbs are shard-internal; the router does not stream"
  | Protocol.Promote -> Protocol.Err "PROMOTE is shard-internal; use migration"

let serve_conn t cfd =
  let ic = Unix.in_channel_of_descr cfd in
  let oc = Unix.out_channel_of_descr cfd in
  (try
     let closing = ref false in
     while not !closing do
       match input_line ic with
       | exception End_of_file -> closing := true
       | line ->
         let resp =
           match Protocol.parse_request_d line with
           | Error reason -> Protocol.Err reason
           | Ok (req, deadline_ms) ->
             if req = Protocol.Drain then closing := true;
             handle t ?deadline_ms req
         in
         output_string oc (Protocol.render_response resp);
         output_char oc '\n';
         flush oc
     done
   with Sys_error _ | Unix.Unix_error _ -> ());
  try Unix.close cfd with Unix.Unix_error _ -> ()

let start_front t addr =
  match bind_listener addr with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | exception Sys_error m -> Error m
  | fd ->
    Unix.set_nonblock fd;
    let front = { f_fd = fd; f_addr = addr; f_stop = Atomic.make false; f_thread = None } in
    let rec loop () =
      if not (Atomic.get front.f_stop) then (
        match Unix.accept fd with
        | cfd, _ ->
          (try Unix.clear_nonblock cfd with Unix.Unix_error _ -> ());
          ignore (Thread.create (serve_conn t) cfd);
          loop ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          Thread.delay 0.005;
          loop ()
        | exception Unix.Unix_error _ ->
          if not (Atomic.get front.f_stop) then begin
            Thread.delay 0.01;
            loop ()
          end)
    in
    front.f_thread <- Some (Thread.create loop ());
    Ok front

let stop_front front =
  if not (Atomic.exchange front.f_stop true) then begin
    (match front.f_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close front.f_fd with Unix.Unix_error _ -> ());
    match front.f_addr with
    | Protocol.Unix_path path -> ( try Sys.remove path with Sys_error _ -> ())
    | Protocol.Tcp _ -> ()
  end
