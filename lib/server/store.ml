module Bracket = Tsj_tree.Bracket
module Incremental = Tsj_core.Incremental
module Search = Tsj_core.Search
module Durable = Tsj_util.Durable
module Fault = Tsj_util.Fault_inject
module Text = Tsj_util.Text

type t = {
  dir : string option;
  tau : int;
  domains : int;
  dedup : bool;
  mutable inc : Incremental.t;
  mutable journal : out_channel option;
  mutable journal_records : int;
  mutable fsyncs : int;
  mutable dedups : int;
  mutable epoch : int;
  mutable epoch_base : int;
  merkle : Integrity.Merkle.t;
      (* leaf [seq] = hash of the canonical record line for [seq],
         maintained incrementally on every add/apply/truncate so DIGEST
         requests and anti-entropy never rescan the history *)
  mutable scrubbed : int;  (* records re-verified against disk *)
  mutable crc_failures : int;  (* corruptions detected (scrub + open) *)
  mutable repaired : int;  (* surfaces/ranges rewritten clean *)
  quarantined : int;  (* records moved aside as unrepairable at open *)
  mutable scrub_cursor : int;  (* next journal position to verify *)
}

let snapshot_path dir = Filename.concat dir "snapshot"

let journal_path dir = Filename.concat dir "journal"

(* One WAL record per acknowledged ADD:

     add <seq> <bracket-tree> <fnv1a64-of-the-rest>

   [seq] is the tree id the record creates, which makes replay
   idempotent across the snapshot boundary: a crash between the snapshot
   rename and the journal reset leaves both holding the same adds, and
   replay skips every record whose seq is already covered by the
   snapshot.  The checksum covers the whole payload, so a torn tail
   (partial final write) is detected and dropped — exactly the adds
   that were never acknowledged. *)
let record_line ~seq tree =
  let payload = Printf.sprintf "add %d %s" seq (Bracket.to_string tree) in
  payload ^ " " ^ Text.fnv1a64_hex payload

let parse_record line =
  match String.rindex_opt line ' ' with
  | None -> None
  | Some i ->
    let payload = String.sub line 0 i in
    let crc = String.sub line (i + 1) (String.length line - i - 1) in
    if Text.fnv1a64_hex payload <> crc then None
    else if not (String.length payload > 4 && String.sub payload 0 4 = "add ") then None
    else begin
      let rest = String.sub payload 4 (String.length payload - 4) in
      match String.index_opt rest ' ' with
      | None -> None
      | Some j -> (
        match int_of_string_opt (String.sub rest 0 j) with
        | None -> None
        | Some seq when seq < 0 -> None
        | Some seq -> (
          match Bracket.of_string (String.sub rest (j + 1) (String.length rest - j - 1)) with
          | Error _ -> None
          | Ok tree -> Some (seq, tree)))
    end

(* The journal's first line is the replication epoch header:

     epoch <e> <base> <fnv1a64-of-the-rest>

   [e] is the monotonic failover epoch and [base] the first sequence
   number of that epoch (the promotion point).  The header is only ever
   (re)written by an atomic whole-file rename, so it cannot be torn by
   an append crash; journals from before replication have no header and
   read as epoch 0, base 0. *)
let epoch_line ~epoch ~base =
  let payload = Printf.sprintf "epoch %d %d" epoch base in
  payload ^ " " ^ Text.fnv1a64_hex payload

let parse_epoch_line line =
  match String.rindex_opt line ' ' with
  | None -> None
  | Some i ->
    let payload = String.sub line 0 i in
    let crc = String.sub line (i + 1) (String.length line - i - 1) in
    if Text.fnv1a64_hex payload <> crc then None
    else
      match String.split_on_char ' ' payload with
      | [ "epoch"; e; b ] -> (
        match (int_of_string_opt e, int_of_string_opt b) with
        | Some epoch, Some base when epoch >= 0 && base >= 0 -> Some (epoch, base)
        | _ -> None)
      | _ -> None

let reopen_journal_for_append dir =
  open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 (journal_path dir)

(* After a failed (possibly short) journal append the file may end
   mid-line: appending more would glue the next record onto the torn
   prefix and turn a recoverable torn tail into mid-file corruption.
   Rewrite the journal to its true contents — the epoch header plus the
   records it held before the failed batch, regenerated from the
   in-memory index (which the failed batch never reached) — with the
   same atomic whole-file rename as {!reset_journal}.  The caller must
   have restored [journal_records] to its pre-fault value first.
   @raise Durable.Disk_fault if the rewrite itself fails; the journal
   channel is then left closed and every later write is refused. *)
let repair_journal t =
  match t.dir with
  | None -> ()
  | Some dir ->
    (match t.journal with Some oc -> close_out_noerr oc | None -> ());
    t.journal <- None;
    let path = journal_path dir in
    let tmp = path ^ ".tmp" in
    let n = Incremental.n_trees t.inc in
    Out_channel.with_open_text tmp (fun oc ->
        output_string oc (epoch_line ~epoch:t.epoch ~base:t.epoch_base);
        output_char oc '\n';
        for seq = n - t.journal_records to n - 1 do
          output_string oc (record_line ~seq (Incremental.tree t.inc seq));
          output_char oc '\n'
        done);
    Durable.rename tmp path;
    Integrity.write_seal path;
    t.journal <- Some (reopen_journal_for_append dir)

(* What journal replay had to do beyond applying the valid records:
   corruptions detected, records healed from a quorum fetch, lines
   quarantined as unrepairable. *)
type replay_stats = {
  rp_crc_failures : int;
  rp_healed : int;
  rp_quarantined : int;
}

let no_replay_stats = { rp_crc_failures = 0; rp_healed = 0; rp_quarantined = 0 }

(* Replay the journal against [inc].  The valid prefix is applied; a
   torn tail (first undecodable record with nothing valid after it) is
   discarded and the file rewritten to the prefix, so appends continue
   from a clean line boundary.  An undecodable record in the *middle* is
   real corruption: [heal] (when given) is asked for the canonical
   record line of the missing seq — the quorum-refetch path — and a
   healed record is spliced in as if it had never rotted.  An unhealable
   record ends the replayable prefix: with [quarantine] the rest of the
   file is moved aside to [journal.quarantine] (counted, served
   degraded), without it the open fails as before.  Returns the epoch
   header (if the journal has one), the number of surviving records and
   the replay stats. *)
let replay_journal ?heal ?(quarantine = false) inc dir =
  let path = journal_path dir in
  if not (Sys.file_exists path) then Ok (None, 0, no_replay_stats)
  else
    match Durable.read_file path with
    | exception Durable.Disk_fault f -> Error (Durable.fault_to_string f)
    | contents ->
      let lines = String.split_on_char '\n' contents in
      let lines = List.filteri (fun _ l -> String.trim l <> "") lines in
      let header, lines =
        match lines with
        | first :: rest when String.length first >= 6 && String.sub first 0 6 = "epoch " -> (
          match parse_epoch_line first with
          | Some hdr -> (Ok (Some hdr), rest)
          | None -> (Error "journal epoch header is corrupt", rest))
        | _ -> (Ok None, lines)
      in
      (match header with
      | Error _ as e -> e
      | Ok header -> (
        let parsed = List.map (fun l -> (l, parse_record l)) lines in
        (* Walk the lines keeping the surviving records.  [prev] is the
           seq of the last surviving record, the anchor for inferring a
           corrupt line's seq (records are appended in contiguous seq
           order). *)
        let try_heal ~prev rest =
          let expected =
            match prev with
            | Some p -> Some (p + 1)
            | None -> (
              (* corrupt first record: anchor on the next valid one *)
              match
                List.find_opt (fun (_, r) -> r <> None) rest
              with
              | Some (_, Some (q, _)) -> Some (q - 1)
              | _ -> None)
          in
          match (expected, heal) with
          | Some seq, Some fetch when seq >= 0 -> (
            match fetch seq with
            | Some line -> (
              match parse_record line with
              | Some (s, tree) when s = seq -> Some (seq, tree)
              | _ -> None)
            | None -> None)
          | _ -> None
        in
        let rec walk acc prev stats = function
          | [] -> Ok (List.rev acc, false, stats, [])
          | (_, Some ((seq, _) as r)) :: rest ->
            walk (r :: acc) (Some seq) stats rest
          | (bad, None) :: rest ->
            let stats = { stats with rp_crc_failures = stats.rp_crc_failures + 1 } in
            if not (List.exists (fun (_, r) -> r <> None) rest) then
              (* torn tail: the bad bytes were never acknowledged *)
              Ok (List.rev acc, true, stats, [])
            else (
              match try_heal ~prev rest with
              | Some ((seq, _) as r) ->
                walk (r :: acc) (Some seq)
                  { stats with rp_healed = stats.rp_healed + 1 }
                  rest
              | None ->
                if quarantine then begin
                  let dropped = bad :: List.map fst rest in
                  Ok
                    ( List.rev acc,
                      true,
                      { stats with rp_quarantined = List.length dropped },
                      dropped )
                end
                else
                  Error
                    (Printf.sprintf "journal record %d is corrupt (not at the tail)"
                       (List.length acc + 1)))
        in
        match walk [] None no_replay_stats parsed with
        | Error _ as e -> e
        | Ok (records, rewrite, stats, dropped) -> (
          let apply () =
            List.fold_left
              (fun r (seq, tree) ->
                match r with
                | Error _ as e -> e
                | Ok n ->
                  let count = Incremental.n_trees inc in
                  if seq < count then Ok n (* already covered by the snapshot *)
                  else if seq = count then begin
                    ignore (Incremental.add inc tree);
                    Ok (n + 1)
                  end
                  else
                    Error
                      (Printf.sprintf
                         "journal gap: record seq %d but only %d trees known" seq count))
              (Ok 0) records
          in
          match apply () with
          | Error _ as e -> e
          | Ok applied ->
            if dropped <> [] then begin
              (* Dead-letter the unrepairable lines: moved aside, never
                 deleted — an operator (or a later fsck with a healthier
                 quorum) can still recover them. *)
              let q = journal_path dir ^ ".quarantine" in
              Out_channel.with_open_gen
                [ Open_append; Open_creat; Open_wronly ] 0o644 q (fun oc ->
                  List.iter
                    (fun l ->
                      output_string oc l;
                      output_char oc '\n')
                    dropped)
            end;
            if rewrite || stats.rp_healed > 0 then begin
              (* Rewrite atomically so the next append starts on a clean
                 line; the torn bytes belonged to an unacknowledged add.
                 The directory fsync in [Durable.rename] makes the
                 rewrite survive a machine crash too. *)
              let tmp = path ^ ".tmp" in
              Out_channel.with_open_text tmp (fun oc ->
                  (match header with
                  | Some (epoch, base) ->
                    output_string oc (epoch_line ~epoch ~base);
                    output_char oc '\n'
                  | None -> ());
                  List.iter
                    (fun (seq, tree) ->
                      output_string oc (record_line ~seq tree);
                      output_char oc '\n')
                    records);
              Durable.rename tmp path;
              Integrity.write_seal path
            end;
            ignore applied;
            Ok (header, List.length records, stats))))

(* Atomically replace the journal with a header-only file carrying the
   store's current epoch.  Always a whole-file rename (never an
   in-place truncate) so the header's presence is crash-atomic. *)
let reset_journal t dir =
  (match t.journal with Some oc -> close_out_noerr oc | None -> ());
  let path = journal_path dir in
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_text tmp (fun oc ->
      output_string oc (epoch_line ~epoch:t.epoch ~base:t.epoch_base);
      output_char oc '\n');
  Durable.rename tmp path;
  Integrity.write_seal path;
  t.journal <- Some (reopen_journal_for_append dir);
  t.journal_records <- 0

let build_merkle inc =
  let m = Integrity.Merkle.create () in
  for seq = 0 to Incremental.n_trees inc - 1 do
    Integrity.Merkle.push m (record_line ~seq (Incremental.tree inc seq))
  done;
  m

let open_ ?dir ?(domains = 1) ?(dedup = false) ?heal ?(quarantine = false) ~tau () =
  if tau < 0 then Error "Store.open_: negative threshold"
  else if domains < 1 then Error "Store.open_: domains must be >= 1"
  else
    match dir with
    | None ->
      Ok
        {
          dir = None;
          tau;
          domains;
          dedup;
          inc = Incremental.create ~tau ();
          journal = None;
          journal_records = 0;
          fsyncs = 0;
          dedups = 0;
          epoch = 0;
          epoch_base = 0;
          merkle = Integrity.Merkle.create ();
          scrubbed = 0;
          crc_failures = 0;
          repaired = 0;
          quarantined = 0;
          scrub_cursor = 0;
        }
    | Some dir -> (
      match
        if Sys.file_exists dir then if Sys.is_directory dir then Ok () else Error (dir ^ " is not a directory")
        else (
          Unix.mkdir dir 0o755;
          Ok ())
      with
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | Error _ as e -> e
      | Ok () -> (
        (* A snapshot's τ wins over the requested one: restart must
           reproduce the pre-crash index exactly, and the partitioning
           grain δ = 2τ + 1 is baked into it. *)
        let snapshot = snapshot_path dir in
        let snap_quarantined = ref 0 in
        let loaded =
          if not (Sys.file_exists snapshot) then Ok (tau, [||])
          else begin
            (* The snapshot's records carry no per-line checksums — the
               seal is its integrity cover, checked before parsing.  A
               bad snapshot is either quarantined (moved aside; a
               replica refills from the quorum by syncing from 0) or,
               without [quarantine], refuses the open. *)
            let sealed =
              match Integrity.check_seal snapshot with
              | r -> r
              | exception Durable.Disk_fault f -> Error (Durable.fault_to_string f)
            in
            match sealed with
            | Error detail when quarantine ->
              incr snap_quarantined;
              Durable.rename snapshot (snapshot ^ ".quarantine");
              Integrity.drop_seal snapshot;
              ignore detail;
              Ok (tau, [||])
            | Error detail -> Error ("integrity: " ^ detail)
            | Ok _ -> (
              match Durable.read_file snapshot with
              | exception Durable.Disk_fault f -> Error (Durable.fault_to_string f)
              | contents -> Search.collection_of_string ~allow_duplicates:true contents)
          end
        in
        match loaded with
        | Error msg -> Error ("snapshot: " ^ msg)
        | Ok (tau, trees) -> (
          let inc = Incremental.create ~tau () in
          Array.iter (fun tree -> ignore (Incremental.add inc tree)) trees;
          let fresh = not (Sys.file_exists (journal_path dir)) in
          match replay_journal ?heal ~quarantine inc dir with
          | Error msg -> Error ("journal: " ^ msg)
          | Ok (header, journal_records, rp) ->
            let epoch, epoch_base =
              match header with Some h -> h | None -> (0, 0)
            in
            let t =
              {
                dir = Some dir;
                tau;
                domains;
                dedup;
                inc;
                journal = None;
                journal_records;
                fsyncs = 0;
                dedups = 0;
                epoch;
                epoch_base;
                merkle = build_merkle inc;
                scrubbed = 0;
                crc_failures = rp.rp_crc_failures + !snap_quarantined;
                repaired = rp.rp_healed;
                quarantined = rp.rp_quarantined + !snap_quarantined;
                scrub_cursor = 0;
              }
            in
            if fresh then reset_journal t dir
            else t.journal <- Some (reopen_journal_for_append dir);
            Ok t)))

let tau t = t.tau

let n_trees t = Incremental.n_trees t.inc

let journal_records t = t.journal_records

let fsyncs t = t.fsyncs

let dedups t = t.dedups

let epoch t = t.epoch

let epoch_base t = t.epoch_base

let scrub_counters t = (t.scrubbed, t.crc_failures, t.repaired, t.quarantined)

let note_repaired t n = t.repaired <- t.repaired + n

let digest t ~lo ~hi = Integrity.Merkle.range t.merkle ~lo ~hi

let merkle_root t = Integrity.Merkle.root t.merkle

let tree t id = Incremental.tree t.inc id

let record_for t seq = record_line ~seq (Incremental.tree t.inc seq)

(* The canonical record line for a tree that is not (or not yet) in any
   store — the heal path regenerates a rotted journal record from a
   tree fetched off a quorum peer via [GET]. *)
let render_record ~seq tree = record_line ~seq tree

(* Partners of the tree at [seq] as {!Incremental.add} originally
   returned them: every earlier tree within τ, sorted by id.  Recomputed
   from an unbudgeted (fully verified) query, so an idempotent ADD
   replay answers bit-identically to the original acknowledgement. *)
let partners_of t seq tree =
  let r = Incremental.query ~domains:t.domains t.inc tree in
  r.Incremental.hits
  |> List.filter (fun (id, _) -> id < seq)
  |> List.sort (fun (i1, _) (i2, _) -> compare i1 i2)

(* Group commit, in three phases so a caller can drop its read lock for
   the slow one: {!stage_batch} classifies the whole batch against a
   simulated running sequence count (so the result array is exactly what
   applying the items one at a time would have produced) without
   touching disk or index; {!journal_staged} appends every fresh record
   and forces durability with ONE flush for the whole batch — that is
   the point of batching ({!fsyncs} counts these forces) and the only
   phase that blocks on the filesystem; {!index_staged} makes the batch
   visible.  Durability before visibility still holds batch-wide:
   nothing enters the index until the batch's records are on disk, and
   the [server.journal] hit point (payload = the first fresh seq of the
   batch) fires before the first byte is written, modelling a crash that
   loses the entire — wholly unacknowledged — batch.  The phases carry
   staged sequence numbers, so between stage and index no other writer
   may touch the store (the server serializes writers on a dedicated
   commit lock); readers are unaffected. *)
type staged = {
  st_cls :
    [ `Fresh of int * Tsj_tree.Tree.t
    | `Replay of int * Tsj_tree.Tree.t
    | `Dedup of int * Tsj_tree.Tree.t
    | `Bad of string ]
    array;
  st_first_fresh : int option;
}

let stage_batch t items =
  let n = Array.length items in
  let n0 = Incremental.n_trees t.inc in
  let count = ref n0 in
  (* seq -> tree for items fresh in this batch, so a pipelined replay of
     a not-yet-indexed seq still validates against the right tree *)
  let fresh_trees = Hashtbl.create (max 8 n) in
  (* bracket string -> staged seq, for dedup against trees fresh in this
     same batch (not yet in the index's exact-match hash) *)
  let fresh_brackets = Hashtbl.create (max 8 n) in
  let cls =
    Array.map
      (fun (seq_opt, tree) ->
        let fresh () =
          (* Whole-tree dedup (opt-in): a seq-less ADD of a tree the
             store already holds is answered as the original sequence
             number with the original partner list, and never journaled.
             Explicit-seq adds are exempt — their seq binding is part of
             the retry contract. *)
          let equal_existing () =
            if not t.dedup then None
            else
              match Incremental.find_equal t.inc tree with
              | Some s -> Some s
              | None -> Hashtbl.find_opt fresh_brackets (Bracket.to_string tree)
          in
          match (seq_opt, equal_existing ()) with
          | None, Some s -> `Dedup (s, tree)
          | _ ->
            let s = !count in
            incr count;
            Hashtbl.replace fresh_trees s tree;
            if t.dedup then
              (let key = Bracket.to_string tree in
               if not (Hashtbl.mem fresh_brackets key) then
                 Hashtbl.add fresh_brackets key s);
            `Fresh (s, tree)
        in
        match seq_opt with
        | None -> fresh ()
        | Some s when s = !count -> fresh ()
        | Some s when s > !count ->
          `Bad (Printf.sprintf "seq gap: ADD seq %d but only %d trees known" s !count)
        | Some s ->
          let bound =
            if s < n0 then Incremental.tree t.inc s else Hashtbl.find fresh_trees s
          in
          if Bracket.to_string bound <> Bracket.to_string tree then
            `Bad (Printf.sprintf "seq %d is already bound to a different tree" s)
          else `Replay (s, tree))
      items
  in
  let first_fresh =
    Array.fold_left
      (fun acc c ->
        match (acc, c) with None, `Fresh (s, _) -> Some s | _ -> acc)
      None cls
  in
  { st_cls = cls; st_first_fresh = first_fresh }

let journal_staged t staged =
  match (t.dir, t.journal, staged.st_first_fresh) with
  | None, _, _ | _, _, None -> Ok ()
  | Some _, None, Some _ ->
    (* a previous repair failed and closed the channel: refuse rather
       than silently acknowledge unjournaled writes *)
    Error "journal unavailable after a disk fault"
  | Some dir, Some oc, Some s0 -> (
    Fault.hit "server.journal" s0;
    let path = journal_path dir in
    let before = t.journal_records in
    match
      Array.iter
        (function
          | `Fresh (s, tree) ->
            Durable.append_line ~path oc (record_line ~seq:s tree);
            t.journal_records <- t.journal_records + 1
          | _ -> ())
        staged.st_cls;
      Durable.flush_channel ~path oc
    with
    | () ->
      t.fsyncs <- t.fsyncs + 1;
      Ok ()
    | exception Durable.Disk_fault f ->
      (* Nothing of the batch is durable or visible.  Restore the record
         count and rewrite the journal to its valid prefix so the next
         append starts on a clean line boundary. *)
      t.journal_records <- before;
      repair_journal t;
      Error (Durable.fault_to_string f))

let index_staged t staged =
  let cls = staged.st_cls in
  let results = Array.make (Array.length cls) (Error "unprocessed") in
  (* Index fresh trees in seq order first, then answer replays: a replay
     of a seq fresh in this same batch needs it indexed to recompute the
     original partner list. *)
  Array.iteri
    (fun i c ->
      match c with
      | `Fresh (s, tree) ->
        results.(i) <- Ok (s, Incremental.add t.inc tree);
        Integrity.Merkle.push t.merkle (record_line ~seq:s tree)
      | _ -> ())
    cls;
  Array.iteri
    (fun i c ->
      match c with
      | `Replay (s, tree) -> results.(i) <- Ok (s, partners_of t s tree)
      | `Dedup (s, tree) ->
        (* Answered exactly like an idempotent replay of the original
           ADD: its seq and its partner list.  Nothing was journaled, so
           replicas see nothing — the answer is derived state. *)
        t.dedups <- t.dedups + 1;
        results.(i) <- Ok (s, partners_of t s tree)
      | `Bad msg -> results.(i) <- Error msg
      | `Fresh _ -> ())
    cls;
  results

let add_batch t items =
  let staged = stage_batch t items in
  match journal_staged t staged with
  | Ok () -> index_staged t staged
  | Error reason ->
    (* The batch never reached the disk: answer every item with the
       typed disk-fault error (a replay that could have been re-answered
       from the index alone is refused too — the caller cannot tell the
       classes apart, and a uniform refusal is the conservative one). *)
    Array.map (fun _ -> Error reason) items

let add_seq t ?seq tree = (add_batch t [| (seq, tree) |]).(0)

let add t tree =
  match (add_batch t [| (None, tree) |]).(0) with
  | Ok r -> r
  | Error msg -> failwith msg (* unreachable: a seq-less add cannot conflict *)

(* Apply one raw journal record pushed over a replication stream.  The
   checksum is re-verified here — a flipped bit in transit must not
   reach the journal.  Durability before ack: the record is appended
   and flushed before it enters the index, exactly as {!add}. *)
let apply_record t line =
  match parse_record line with
  | None -> Error "record is corrupt (bad checksum or syntax)"
  | Some (seq, tree) ->
    let n = Incremental.n_trees t.inc in
    if seq < n then Ok n (* idempotent skip: already applied *)
    else if seq > n then
      Error (Printf.sprintf "record gap: seq %d but only %d trees known" seq n)
    else begin
      let journaled =
        match (t.dir, t.journal) with
        | None, _ -> Ok ()
        | Some _, None -> Error "journal unavailable after a disk fault"
        | Some dir, Some oc -> (
          let path = journal_path dir in
          let before = t.journal_records in
          match
            Durable.append_line ~path oc line;
            Durable.flush_channel ~path oc
          with
          | () ->
            t.fsyncs <- t.fsyncs + 1;
            t.journal_records <- before + 1;
            Ok ()
          | exception Durable.Disk_fault f ->
            t.journal_records <- before;
            repair_journal t;
            Error (Durable.fault_to_string f))
      in
      match journaled with
      | Error _ as e -> e
      | Ok () ->
        ignore (Incremental.add t.inc tree);
        Integrity.Merkle.push t.merkle (record_line ~seq tree);
        Ok (n + 1)
    end

let query ?budget ?tau t q = Incremental.query ?budget ~domains:t.domains ?tau t.inc q

let nearest ~k t q = Incremental.nearest ~k t.inc q

(* Snapshot, then reset the journal.  Both steps are individually
   crash-safe: the snapshot rename is atomic (and the directory fsynced,
   so the rename itself survives a machine crash), and a crash between
   it and the reset only leaves redundant journal records that replay
   skips by seq. *)
let flush t =
  match t.dir with
  | None -> ()
  | Some dir ->
    let trees = Array.init (Incremental.n_trees t.inc) (Incremental.tree t.inc) in
    Search.save_collection ~tau:t.tau trees (snapshot_path dir);
    Integrity.write_seal (snapshot_path dir);
    reset_journal t dir

let set_epoch t ~epoch ~base =
  t.epoch <- epoch;
  t.epoch_base <- base;
  (* Snapshot first, then publish the new header: a crash between the
     two leaves the old epoch and no data loss — the caller's promotion
     or adoption simply did not happen. *)
  flush t

let truncate_to t n =
  let cur = Incremental.n_trees t.inc in
  if n < 0 then invalid_arg "Store.truncate_to: negative length"
  else if n < cur then begin
    let trees = Array.init n (Incremental.tree t.inc) in
    let inc = Incremental.create ~tau:t.tau () in
    Array.iter (fun tr -> ignore (Incremental.add inc tr)) trees;
    t.inc <- inc;
    Integrity.Merkle.truncate t.merkle n;
    flush t
  end

(* --- background scrub --- *)

type scrub_report = {
  sc_verified : int;  (** journal records re-read and re-verified *)
  sc_findings : Integrity.corrupt list;  (** corruptions detected this pass *)
  sc_repaired : int;  (** surfaces rewritten clean from memory *)
}

(* One budgeted scrub pass: re-read up to [budget] journal records from
   disk (resuming at a rotating cursor) and verify each against the
   canonical record regenerated from the in-memory index — strictly
   stronger than a CRC check — plus, when the cursor wraps, the journal
   epoch header and the snapshot seal.  Any finding is repaired by
   rewriting the offending surface from memory (the index is
   authoritative: every record in it passed its checksum when it was
   applied).  Read-side disk faults surface as findings too, but skip
   the repair — rewriting over a flaky read would be guessing. *)
let scrub_step ?(budget = 128) t =
  let clean = { sc_verified = 0; sc_findings = []; sc_repaired = 0 } in
  match t.dir with
  | None -> clean
  | Some dir ->
    let jpath = journal_path dir in
    let n = Incremental.n_trees t.inc in
    let findings = ref [] in
    let repairable = ref false in
    let note ?seq surface path detail =
      findings :=
        { Integrity.c_surface = surface; c_path = path; c_seq = seq; c_detail = detail }
        :: !findings
    in
    let verified = ref 0 in
    (match Durable.read_file jpath with
    | exception Durable.Disk_fault f ->
      note Integrity.Journal jpath (Durable.fault_to_string f)
    | contents ->
      let lines =
        List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' contents)
      in
      let header, records =
        match lines with
        | first :: rest when String.length first >= 6 && String.sub first 0 6 = "epoch " ->
          (Some first, rest)
        | _ -> (None, lines)
      in
      let records = Array.of_list records in
      let on_disk = Array.length records in
      (* The disk journal holds the records since the last flush, in seq
         order: position i is seq (n - journal_records + i). *)
      let base = n - t.journal_records in
      if on_disk <> t.journal_records then begin
        note Integrity.Journal jpath
          (Printf.sprintf "journal holds %d records, expected %d" on_disk
             t.journal_records);
        repairable := true
      end
      else begin
        let start = if t.scrub_cursor >= on_disk then 0 else t.scrub_cursor in
        if start = 0 then begin
          (* cursor wrapped: also re-check the header and the seal *)
          (match header with
          | Some h when parse_epoch_line h <> None -> ()
          | Some _ ->
            note Integrity.Journal jpath "epoch header checksum mismatch";
            repairable := true
          | None ->
            if t.epoch > 0 || t.epoch_base > 0 then begin
              note Integrity.Journal jpath "epoch header missing";
              repairable := true
            end);
          match Integrity.check_seal jpath with
          | Ok _ -> ()
          | Error detail ->
            note Integrity.Journal jpath detail;
            repairable := true
          | exception Durable.Disk_fault f ->
            note Integrity.Journal jpath (Durable.fault_to_string f)
        end;
        let stop = min on_disk (start + budget) in
        for i = start to stop - 1 do
          incr verified;
          let seq = base + i in
          if records.(i) <> record_line ~seq (Incremental.tree t.inc seq) then begin
            note ~seq Integrity.Journal jpath "record differs from the indexed tree";
            repairable := true
          end
        done;
        t.scrub_cursor <- (if stop >= on_disk then 0 else stop)
      end);
    (* The snapshot: cheap (one seal line + one digest of the file), so
       verify it whenever the journal cursor is at the top. *)
    if t.scrub_cursor = 0 && Sys.file_exists (snapshot_path dir) then begin
      match Integrity.check_seal (snapshot_path dir) with
      | Ok _ -> ()
      | Error detail ->
        note Integrity.Snapshot (snapshot_path dir) detail;
        repairable := true
      | exception Durable.Disk_fault f ->
        note Integrity.Snapshot (snapshot_path dir) (Durable.fault_to_string f)
    end;
    let repaired = ref 0 in
    if !repairable then begin
      (* Converge the disk to the in-memory truth: re-snapshot and
         rewrite the journal (both atomic), then reseal.  One repair
         covers every finding of the pass. *)
      flush t;
      incr repaired
    end;
    t.scrubbed <- t.scrubbed + !verified;
    t.crc_failures <- t.crc_failures + List.length !findings;
    t.repaired <- t.repaired + !repaired;
    {
      sc_verified = !verified;
      sc_findings = List.rev !findings;
      sc_repaired = !repaired;
    }

let close t =
  flush t;
  (match t.journal with Some oc -> close_out_noerr oc | None -> ());
  t.journal <- None
