module Bracket = Tsj_tree.Bracket
module Incremental = Tsj_core.Incremental
module Search = Tsj_core.Search
module Fault = Tsj_util.Fault_inject
module Text = Tsj_util.Text

type t = {
  dir : string option;
  tau : int;
  domains : int;
  inc : Incremental.t;
  mutable journal : out_channel option;
  mutable journal_records : int;
}

let snapshot_path dir = Filename.concat dir "snapshot"

let journal_path dir = Filename.concat dir "journal"

(* One WAL record per acknowledged ADD:

     add <seq> <bracket-tree> <fnv1a64-of-the-rest>

   [seq] is the tree id the record creates, which makes replay
   idempotent across the snapshot boundary: a crash between the snapshot
   rename and the journal reset leaves both holding the same adds, and
   replay skips every record whose seq is already covered by the
   snapshot.  The checksum covers the whole payload, so a torn tail
   (partial final write) is detected and dropped — exactly the adds
   that were never acknowledged. *)
let record_line ~seq tree =
  let payload = Printf.sprintf "add %d %s" seq (Bracket.to_string tree) in
  payload ^ " " ^ Text.fnv1a64_hex payload

let parse_record line =
  match String.rindex_opt line ' ' with
  | None -> None
  | Some i ->
    let payload = String.sub line 0 i in
    let crc = String.sub line (i + 1) (String.length line - i - 1) in
    if Text.fnv1a64_hex payload <> crc then None
    else if not (String.length payload > 4 && String.sub payload 0 4 = "add ") then None
    else begin
      let rest = String.sub payload 4 (String.length payload - 4) in
      match String.index_opt rest ' ' with
      | None -> None
      | Some j -> (
        match int_of_string_opt (String.sub rest 0 j) with
        | None -> None
        | Some seq when seq < 0 -> None
        | Some seq -> (
          match Bracket.of_string (String.sub rest (j + 1) (String.length rest - j - 1)) with
          | Error _ -> None
          | Ok tree -> Some (seq, tree)))
    end

let reopen_journal_for_append dir =
  open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 (journal_path dir)

(* Replay the journal against [inc].  The valid prefix is applied; a
   torn tail (first undecodable record with nothing valid after it) is
   discarded and the file rewritten to the prefix, so appends continue
   from a clean line boundary.  An undecodable record in the *middle* is
   real corruption and rejected. *)
let replay_journal inc dir =
  let path = journal_path dir in
  if not (Sys.file_exists path) then Ok 0
  else
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error msg -> Error msg
    | contents ->
      let lines = String.split_on_char '\n' contents in
      let lines = List.filteri (fun _ l -> String.trim l <> "") lines in
      let parsed = List.map (fun l -> (l, parse_record l)) lines in
      let rec split_valid acc = function
        | [] -> Ok (List.rev acc, false)
        | (_, Some r) :: rest -> split_valid (r :: acc) rest
        | (_, None) :: rest ->
          if List.exists (fun (_, r) -> r <> None) rest then
            Error
              (Printf.sprintf "journal record %d is corrupt (not at the tail)"
                 (List.length acc + 1))
          else Ok (List.rev acc, true)
      in
      (match split_valid [] parsed with
      | Error _ as e -> e
      | Ok (records, torn) -> (
        let apply () =
          List.fold_left
            (fun r (seq, tree) ->
              match r with
              | Error _ as e -> e
              | Ok n ->
                let count = Incremental.n_trees inc in
                if seq < count then Ok n (* already covered by the snapshot *)
                else if seq = count then begin
                  ignore (Incremental.add inc tree);
                  Ok (n + 1)
                end
                else
                  Error
                    (Printf.sprintf
                       "journal gap: record seq %d but only %d trees known" seq count))
            (Ok 0) records
        in
        match apply () with
        | Error _ as e -> e
        | Ok applied ->
          if torn then begin
            (* Rewrite atomically so the next append starts on a clean
               line; the torn bytes belonged to an unacknowledged add. *)
            let tmp = path ^ ".tmp" in
            Out_channel.with_open_text tmp (fun oc ->
                List.iter
                  (fun (seq, tree) ->
                    output_string oc (record_line ~seq tree);
                    output_char oc '\n')
                  records);
            Sys.rename tmp path
          end;
          ignore applied;
          Ok (List.length records)))

let open_ ?dir ?(domains = 1) ~tau () =
  if tau < 0 then Error "Store.open_: negative threshold"
  else if domains < 1 then Error "Store.open_: domains must be >= 1"
  else
    match dir with
    | None ->
      Ok
        {
          dir = None;
          tau;
          domains;
          inc = Incremental.create ~tau ();
          journal = None;
          journal_records = 0;
        }
    | Some dir -> (
      match
        if Sys.file_exists dir then if Sys.is_directory dir then Ok () else Error (dir ^ " is not a directory")
        else (
          Unix.mkdir dir 0o755;
          Ok ())
      with
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | Error _ as e -> e
      | Ok () -> (
        (* A snapshot's τ wins over the requested one: restart must
           reproduce the pre-crash index exactly, and the partitioning
           grain δ = 2τ + 1 is baked into it. *)
        let snapshot = snapshot_path dir in
        let loaded =
          if Sys.file_exists snapshot then
            Search.read_collection ~allow_duplicates:true snapshot
          else Ok (tau, [||])
        in
        match loaded with
        | Error msg -> Error ("snapshot: " ^ msg)
        | Ok (tau, trees) -> (
          let inc = Incremental.create ~tau () in
          Array.iter (fun tree -> ignore (Incremental.add inc tree)) trees;
          match replay_journal inc dir with
          | Error msg -> Error ("journal: " ^ msg)
          | Ok journal_records ->
            Ok
              {
                dir = Some dir;
                tau;
                domains;
                inc;
                journal = Some (reopen_journal_for_append dir);
                journal_records;
              })))

let tau t = t.tau

let n_trees t = Incremental.n_trees t.inc

let journal_records t = t.journal_records

let tree t id = Incremental.tree t.inc id

(* Durability before visibility: the WAL record is written and flushed
   before the tree enters the index, so an acknowledged ADD survives a
   kill at any later point, and a kill before the flush loses only an
   unacknowledged request.  The [server.journal] hit point (payload =
   seq) injects exactly that crash. *)
let add t tree =
  let seq = Incremental.n_trees t.inc in
  (match t.journal with
  | None -> ()
  | Some oc ->
    Fault.hit "server.journal" seq;
    output_string oc (record_line ~seq tree);
    output_char oc '\n';
    flush oc;
    t.journal_records <- t.journal_records + 1);
  let partners = Incremental.add t.inc tree in
  (seq, partners)

let query ?budget ?tau t q = Incremental.query ?budget ~domains:t.domains ?tau t.inc q

let nearest ~k t q = Incremental.nearest ~k t.inc q

(* Snapshot, then reset the journal.  Both steps are individually
   crash-safe: the snapshot rename is atomic, and a crash between it and
   the reset only leaves redundant journal records that replay skips by
   seq. *)
let flush t =
  match t.dir with
  | None -> ()
  | Some dir ->
    let trees = Array.init (Incremental.n_trees t.inc) (Incremental.tree t.inc) in
    Search.save_collection ~tau:t.tau trees (snapshot_path dir);
    (match t.journal with Some oc -> close_out_noerr oc | None -> ());
    Out_channel.with_open_text (journal_path dir) (fun _ -> ());
    t.journal <- Some (reopen_journal_for_append dir);
    t.journal_records <- 0

let close t =
  flush t;
  (match t.journal with Some oc -> close_out_noerr oc | None -> ());
  t.journal <- None
