module Fault = Tsj_util.Fault_inject
module Budget = Tsj_join.Budget
module Types = Tsj_join.Types

type config = {
  addr : Protocol.addr;
  tau : int;
  dir : string option;  (** journal/snapshot directory; [None] = ephemeral *)
  domains : int;  (** verification parallelism per query *)
  max_inflight : int;  (** admission watermark; beyond it, [BUSY] *)
  deadline_s : float option;  (** per-request deadline *)
  drain_budget_s : float;  (** how long drain waits for inflight work *)
  max_line_bytes : int;  (** request lines longer than this are rejected *)
  handle_sigterm : bool;  (** install a SIGTERM -> drain handler *)
}

let default_config addr ~tau =
  {
    addr;
    tau;
    dir = None;
    domains = 1;
    max_inflight = 64;
    deadline_s = None;
    drain_budget_s = 5.0;
    max_line_bytes = 1 lsl 20;
    handle_sigterm = false;
  }

type counters = {
  queries : int Atomic.t;
  adds : int Atomic.t;
  shed : int Atomic.t;
  degraded : int Atomic.t;
  errors : int Atomic.t;
  inflight : int Atomic.t;
}

type t = {
  config : config;
  store : Store.t;
  listener : Unix.file_descr;
  store_mutex : Mutex.t;
  counters : counters;
  draining : bool Atomic.t;
  drained : bool Atomic.t;
  quarantined : Types.quarantined list Atomic.t;
  (* live budgets by connection id, cancelled when the drain deadline
     passes so a stuck request cannot outlive the drain window *)
  budgets : (int, Budget.t) Hashtbl.t;
  budgets_mutex : Mutex.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  conns_mutex : Mutex.t;
  mutable accept_thread : Thread.t option;
  mutable conn_threads : Thread.t list;
  mutable next_conn : int;
}

let quarantine t ~conn_id reason =
  let record = { Types.q_i = conn_id; q_j = None; q_reason = reason } in
  let rec loop () =
    let old = Atomic.get t.quarantined in
    if not (Atomic.compare_and_set t.quarantined old (record :: old)) then loop ()
  in
  loop ()

let register_budget t conn_id budget =
  Mutex.protect t.budgets_mutex (fun () -> Hashtbl.replace t.budgets conn_id budget)

let unregister_budget t conn_id =
  Mutex.protect t.budgets_mutex (fun () -> Hashtbl.remove t.budgets conn_id)

let stats t =
  {
    Protocol.trees = Store.n_trees t.store;
    tau = Store.tau t.store;
    queries = Atomic.get t.counters.queries;
    adds = Atomic.get t.counters.adds;
    shed = Atomic.get t.counters.shed;
    degraded = Atomic.get t.counters.degraded;
    errors = Atomic.get t.counters.errors;
    quarantined = List.length (Atomic.get t.quarantined);
    inflight = Atomic.get t.counters.inflight;
    draining = Atomic.get t.draining;
    journal_records = Store.journal_records t.store;
  }

(* --- request execution --- *)

(* Execute one parsed request.  Work-bearing requests pass admission
   control first: the inflight counter is bumped optimistically and the
   request is shed with an explicit [BUSY] if the watermark was already
   reached — deterministic, never a silent drop.  Each admitted request
   gets its own [Budget] (carrying the configured deadline) registered
   under the connection id so drain can cancel it. *)
let execute t ~conn_id (request : Protocol.request) : Protocol.response * bool =
  match request with
  | Stats -> (Stats_reply (stats t), false)
  | Health -> (Health_reply { draining = Atomic.get t.draining }, false)
  | Drain -> (Drained, true)
  | Query _ | Knn _ | Add _ ->
    let inflight = Atomic.fetch_and_add t.counters.inflight 1 in
    if inflight >= t.config.max_inflight || Atomic.get t.draining then begin
      ignore (Atomic.fetch_and_add t.counters.inflight (-1));
      if inflight >= t.config.max_inflight then begin
        ignore (Atomic.fetch_and_add t.counters.shed 1);
        (Busy, false)
      end
      else (Err "draining: not accepting new work", false)
    end
    else begin
      let budget = Budget.create ?time_budget_s:t.config.deadline_s () in
      register_budget t conn_id budget;
      let response =
        try
          match request with
          | Stats | Health | Drain -> assert false
          | Query { tau; tree } ->
            if tau > Store.tau t.store then
              Error
                (Printf.sprintf "QUERY: tau %d exceeds the index threshold %d" tau
                   (Store.tau t.store))
            else begin
              let r = Mutex.protect t.store_mutex (fun () -> Store.query ~budget ~tau t.store tree) in
              ignore (Atomic.fetch_and_add t.counters.queries 1);
              if r.Tsj_core.Incremental.degraded then
                ignore (Atomic.fetch_and_add t.counters.degraded 1);
              Ok
                (Protocol.Hits
                   { degraded = r.degraded; hits = r.hits; unverified = r.unverified })
            end
          | Knn { k; tree } ->
            let hits = Mutex.protect t.store_mutex (fun () -> Store.nearest ~k t.store tree) in
            ignore (Atomic.fetch_and_add t.counters.queries 1);
            Ok (Protocol.Hits { degraded = false; hits; unverified = [] })
          | Add tree ->
            let id, partners =
              Mutex.protect t.store_mutex (fun () -> Store.add t.store tree)
            in
            ignore (Atomic.fetch_and_add t.counters.adds 1);
            Ok (Protocol.Added { id; partners })
        with e -> Error (Printexc.to_string e)
      in
      unregister_budget t conn_id;
      ignore (Atomic.fetch_and_add t.counters.inflight (-1));
      match response with
      | Ok r -> (r, false)
      | Error reason ->
        ignore (Atomic.fetch_and_add t.counters.errors 1);
        (Err reason, false)
    end

(* --- connection handling --- *)

(* Read one line with a hard byte cap so a client streaming an endless
   line cannot exhaust memory; over-long lines are consumed to the next
   newline and answered [ERR]. *)
let read_line_bounded ic ~max_bytes =
  let b = Buffer.create 256 in
  let rec loop overflow =
    match input_char ic with
    | exception End_of_file -> if Buffer.length b = 0 && not overflow then None else Some (Buffer.contents b, overflow)
    | '\n' -> Some (Buffer.contents b, overflow)
    | c ->
      if Buffer.length b >= max_bytes then loop true
      else begin
        Buffer.add_char b c;
        loop overflow
      end
  in
  loop false

let trim_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let rec do_drain t =
  (* Idempotent: the first caller wins; later calls (second DRAIN,
     SIGTERM after DRAIN) are no-ops. *)
  if not (Atomic.exchange t.draining true) then begin
    (* Stop accepting.  [shutdown] (not just [close]) is what actually
       wakes a thread blocked in [accept] on Linux. *)
    (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    (match t.config.addr with
    | Protocol.Unix_path p -> ( try Sys.remove p with Sys_error _ -> ())
    | Protocol.Tcp _ -> ());
    (* Let inflight work finish within the drain budget... *)
    let deadline = Tsj_util.Timer.now () +. t.config.drain_budget_s in
    let rec wait () =
      if Atomic.get t.counters.inflight > 0 && Tsj_util.Timer.now () < deadline then begin
        Thread.yield ();
        wait ()
      end
    in
    wait ();
    (* ...then shed what remains: cancel every live budget so budgeted
       work degrades and returns instead of running past the drain. *)
    Mutex.protect t.budgets_mutex (fun () ->
        Hashtbl.iter (fun _ b -> Budget.cancel b) t.budgets);
    let rec wait_cancelled () =
      if Atomic.get t.counters.inflight > 0 && Tsj_util.Timer.now () < deadline +. 1.0
      then begin
        Thread.yield ();
        wait_cancelled ()
      end
    in
    wait_cancelled ();
    (* Nudge idle connections out of their blocking read. *)
    Mutex.protect t.conns_mutex (fun () ->
        Hashtbl.iter
          (fun _ fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
          t.conns);
    (* Flush: snapshot + empty journal, so a cold start is clean. *)
    Mutex.protect t.store_mutex (fun () -> Store.close t.store);
    Atomic.set t.drained true
  end

and handle_connection t conn_id fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let reply r =
    output_string oc (Protocol.render_response r);
    output_char oc '\n';
    flush oc
  in
  let close () =
    Mutex.protect t.conns_mutex (fun () -> Hashtbl.remove t.conns conn_id);
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let rec serve request_no =
    match read_line_bounded ic ~max_bytes:t.config.max_line_bytes with
    | None -> close ()
    | Some (line, overflow) ->
      (* The per-request fault point: an [Injected] raise here models a
         request handler crash and must quarantine only this connection. *)
      Fault.hit "server.request" request_no;
      let continue =
        if overflow then begin
          ignore (Atomic.fetch_and_add t.counters.errors 1);
          reply (Err (Printf.sprintf "request line exceeds %d bytes" t.config.max_line_bytes));
          true
        end
        else
          let line = trim_cr line in
          if String.trim line = "" then true (* ignore blank lines *)
          else
            match Protocol.parse_request line with
            | Error reason ->
              (* Malformed input is this client's problem only: answer
                 [ERR] and keep the connection. *)
              ignore (Atomic.fetch_and_add t.counters.errors 1);
              reply (Err reason);
              true
            | Ok request ->
              let response, drain_requested = execute t ~conn_id request in
              reply response;
              if drain_requested then do_drain t;
              not drain_requested
      in
      if continue && not (Atomic.get t.draining) then serve (request_no + 1)
      else close ()
  in
  try serve 0 with
  | Fault.Injected msg ->
    quarantine t ~conn_id (Types.Verify_failed ("server.request: " ^ msg));
    unregister_budget t conn_id;
    close ()
  | End_of_file | Sys_error _ | Unix.Unix_error _ ->
    (* Client went away mid-request; nothing shared is poisoned. *)
    quarantine t ~conn_id (Types.Preprocess_failed "connection lost");
    unregister_budget t conn_id;
    close ()
  | e ->
    quarantine t ~conn_id (Types.Verify_failed (Printexc.to_string e));
    unregister_budget t conn_id;
    close ()

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.draining) then begin
      match Unix.accept t.listener with
      | exception Unix.Unix_error _ -> if not (Atomic.get t.draining) then loop ()
      | fd, _ ->
        let conn_id = t.next_conn in
        t.next_conn <- conn_id + 1;
        (match Fault.hit "server.accept" conn_id with
        | exception Fault.Injected msg ->
          (* An injected accept-path fault drops this connection only. *)
          quarantine t ~conn_id (Types.Preprocess_failed ("server.accept: " ^ msg));
          (try Unix.close fd with Unix.Unix_error _ -> ())
        | () ->
          Mutex.protect t.conns_mutex (fun () -> Hashtbl.replace t.conns conn_id fd);
          let th = Thread.create (fun () -> handle_connection t conn_id fd) () in
          t.conn_threads <- th :: t.conn_threads);
        loop ()
    end
  in
  loop ()

(* --- lifecycle --- *)

(* A reply written to a connection the client just closed must surface
   as EPIPE (quarantining that connection) — never as a process-killing
   SIGPIPE.  Not available on Windows, hence the guard. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let bind_listener addr =
  match addr with
  | Protocol.Unix_path path ->
    if Sys.file_exists path then Sys.remove path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Protocol.Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 64;
    fd

let create config =
  if config.tau < 0 then Error "negative threshold"
  else if config.domains < 1 then Error "domains must be >= 1"
  else if config.max_inflight < 0 then Error "max_inflight must be >= 0"
  else if config.drain_budget_s < 0.0 then Error "negative drain budget"
  else
    match Store.open_ ?dir:config.dir ~domains:config.domains ~tau:config.tau () with
    | Error m -> Error m
    | Ok store -> (
      match bind_listener config.addr with
      | exception Unix.Unix_error (e, _, arg) ->
        Error (Printf.sprintf "bind %s: %s (%s)" (Protocol.addr_to_string config.addr)
                 (Unix.error_message e) arg)
      | listener ->
        Ok
          {
            config;
            store;
            listener;
            store_mutex = Mutex.create ();
            counters =
              {
                queries = Atomic.make 0;
                adds = Atomic.make 0;
                shed = Atomic.make 0;
                degraded = Atomic.make 0;
                errors = Atomic.make 0;
                inflight = Atomic.make 0;
              };
            draining = Atomic.make false;
            drained = Atomic.make false;
            quarantined = Atomic.make [];
            budgets = Hashtbl.create 16;
            budgets_mutex = Mutex.create ();
            conns = Hashtbl.create 16;
            conns_mutex = Mutex.create ();
            accept_thread = None;
            conn_threads = [];
            next_conn = 0;
          })

let start t =
  ignore_sigpipe ();
  if t.config.handle_sigterm then
    Sys.set_signal Sys.sigterm
      (Sys.Signal_handle
         (fun _ -> ignore (Thread.create (fun () -> do_drain t) ())));
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ())

let drain t = do_drain t

let drained t = Atomic.get t.drained

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  List.iter Thread.join t.conn_threads

let store t = t.store

let quarantined t = List.rev (Atomic.get t.quarantined)
