module Fault = Tsj_util.Fault_inject
module Budget = Tsj_join.Budget
module Types = Tsj_join.Types
module Netbuf = Tsj_util.Netbuf

type config = {
  addr : Protocol.addr;
  tau : int;
  dir : string option;  (** journal/snapshot directory; [None] = ephemeral *)
  domains : int;  (** verification parallelism per query *)
  max_inflight : int;  (** admission watermark; beyond it, [BUSY] *)
  deadline_s : float option;  (** per-request deadline *)
  drain_budget_s : float;  (** how long drain waits for inflight work *)
  max_line_bytes : int;  (** request lines longer than this are rejected *)
  handle_sigterm : bool;  (** install a SIGTERM -> drain handler *)
  quorum : int;  (** durable copies (incl. own journal) before ADDED *)
  sync_from : Protocol.addr list;  (** peers to stream from when not primary *)
  primary : bool;  (** start with the write mandate *)
  peer_timeout_s : float;  (** replica-stream socket timeout on the primary *)
  max_batch : int;  (** largest number of ADDs in one group commit *)
  dedup : bool;  (** suppress duplicate seq-less ADDs (see {!Store.open_}) *)
  scrub_interval_s : float option;  (** background scrub period; [None] = off *)
  scrub_budget : int;  (** records re-verified per scrub step *)
  quarantine : bool;  (** open degraded on unrepairable corruption *)
  rate : float option;  (** per-connection admitted work requests/s; [None] = no bucket *)
  burst : int;  (** per-connection token-bucket capacity *)
  idle_timeout_s : float option;  (** reap connections idle this long; [None] = never *)
  max_out_bytes : int;  (** disconnect a peer whose output backlog exceeds this *)
  max_conns : int option;  (** hard cap on live connections; [None] = unbounded *)
}

let default_config addr ~tau =
  {
    addr;
    tau;
    dir = None;
    domains = 1;
    max_inflight = 64;
    deadline_s = None;
    drain_budget_s = 5.0;
    max_line_bytes = 1 lsl 20;
    handle_sigterm = false;
    quorum = 1;
    sync_from = [];
    primary = true;
    peer_timeout_s = 5.0;
    max_batch = 64;
    dedup = false;
    scrub_interval_s = None;
    scrub_budget = 128;
    quarantine = false;
    rate = None;
    burst = 32;
    idle_timeout_s = None;
    max_out_bytes = 1 lsl 23;
    max_conns = None;
  }

type counters = {
  queries : int Atomic.t;
  adds : int Atomic.t;
  shed : int Atomic.t;
  degraded : int Atomic.t;
  errors : int Atomic.t;
  inflight : int Atomic.t;
  expired : int Atomic.t;  (* deadline-expired work dropped, pre/post compute *)
  accept_pauses : int Atomic.t;  (* EMFILE/ENFILE accept back-offs *)
  reaped : int Atomic.t;  (* hygiene closes: idle, overflow, max-conns *)
}

(* --- connections --- *)

type mode = Text | Binary

type conn_state =
  | Live
  | Handoff  (* upgraded to a replication stream; the cluster owns the fd *)
  | Dead

(* One per accepted socket.  [c_in]/[c_reqno]/[c_discard]/[c_skip]/
   [c_closing]/[c_eof]/[c_state] belong to the event-loop thread;
   [c_out]/[c_async] are shared with the worker threads under
   [io_mutex]. *)
type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  mutable c_mode : mode;
  mutable c_version : int;  (* negotiated binary protocol version *)
  c_in : Netbuf.t;
  c_out : Netbuf.t;
  mutable c_reqno : int;  (* per-connection request ordinal (fault point) *)
  mutable c_async : int;  (* requests handed to workers, reply pending *)
  mutable c_discard : bool;  (* text: dropping an over-long line *)
  mutable c_skip : int;  (* binary: body bytes of an oversized frame left to drop *)
  mutable c_closing : bool;  (* close once replies are flushed *)
  mutable c_eof : bool;  (* peer closed its write side *)
  mutable c_state : conn_state;
  mutable c_last_active : float;  (* last byte read from the peer *)
  c_bucket : Admission.Token_bucket.t option;  (* per-client fair admission *)
}

type add_job = {
  a_conn : conn;
  a_rid : int option;
  a_seq : int option;
  a_tree : Tsj_tree.Tree.t;
  a_expire : float;  (* absolute client deadline; infinity when none *)
  a_t0 : float;  (* admission time, for the latency histogram *)
}

type query_job = {
  q_conn : conn;
  q_rid : int option;
  q_req : Protocol.request;
  q_budget : Budget.t;
  q_token : int;
  q_expire : float;  (* absolute client deadline; infinity when none *)
  q_t0 : float;
}

type t = {
  config : config;
  store : Store.t;
  replica : Replica.t;
  cluster : Cluster.t;
  listener : Unix.file_descr;
  store_mutex : Mutex.t;
  (* Serializes store *writers* (committer batches, replica record
     application, promotion, drain teardown).  Lock order: commit_mutex
     before store_mutex, never the reverse.  Writers hold commit_mutex
     for their whole stage → journal → index sequence but take
     store_mutex only around the index-touching phases, so the journal
     flush — the one step with unbounded filesystem latency — never
     blocks the read path. *)
  commit_mutex : Mutex.t;
  counters : counters;
  draining : bool Atomic.t;
  drained : bool Atomic.t;
  aborted : bool Atomic.t;
  quarantined : Types.quarantined list Atomic.t;
  (* live budgets by request token, cancelled when the drain deadline
     passes so a stuck request cannot outlive the drain window *)
  budgets : (int, Budget.t) Hashtbl.t;
  budgets_mutex : Mutex.t;
  next_token : int Atomic.t;
  io_mutex : Mutex.t;  (* guards every [c_out]/[c_async] *)
  conns : (int, conn) Hashtbl.t;
  conns_mutex : Mutex.t;
  addq : add_job Queue.t;  (* pending writes, drained in group commits *)
  addq_mutex : Mutex.t;
  addq_cond : Condition.t;
  runq : query_job Queue.t;  (* pending reads *)
  runq_mutex : Mutex.t;
  runq_cond : Condition.t;
  wake_r : Unix.file_descr;  (* self-pipe: workers nudge the event loop *)
  wake_w : Unix.file_descr;
  wake_flag : bool Atomic.t;
  (* Exactly-once listener close, shared between the event loop's drain
     path and [abort]: closing the fd twice would free the descriptor
     number twice, and in between it may have been handed to a freshly
     accepted connection — of THIS server or (in-process, as the test
     harnesses run whole clusters in one process) of another one —
     which the second close would silently sever. *)
  listener_closed : bool Atomic.t;
  drain_force_at : float Atomic.t;  (* past this, drain force-closes conns *)
  mutable loop_thread : Thread.t option;
  mutable committer_thread : Thread.t option;
  mutable query_thread : Thread.t option;
  mutable follower_thread : Thread.t option;
  mutable follower_fd : Unix.file_descr option;
  mutable sync_threads : Thread.t list;
  sync_mutex : Mutex.t;
  mutable scrubber : Scrub.t option;
  mutable next_conn : int;
  (* event-loop thread only: while in the future, the listener is left
     out of the select read set (EMFILE back-off) *)
  mutable accept_pause_until : float;
  h_query : Admission.Histogram.t;  (* per-verb service latency, µs *)
  h_knn : Admission.Histogram.t;
  h_add : Admission.Histogram.t;
}

let quarantine t ~conn_id reason =
  let record = { Types.q_i = conn_id; q_j = None; q_reason = reason } in
  let rec loop () =
    let old = Atomic.get t.quarantined in
    if not (Atomic.compare_and_set t.quarantined old (record :: old)) then loop ()
  in
  loop ()

let register_budget t token budget =
  Mutex.protect t.budgets_mutex (fun () -> Hashtbl.replace t.budgets token budget)

let unregister_budget t token =
  Mutex.protect t.budgets_mutex (fun () -> Hashtbl.remove t.budgets token)

let stats t =
  let scrubbed, crc_failures, repaired, store_quarantined =
    Store.scrub_counters t.store
  in
  {
    Protocol.trees = Store.n_trees t.store;
    tau = Store.tau t.store;
    queries = Atomic.get t.counters.queries;
    adds = Atomic.get t.counters.adds;
    shed = Atomic.get t.counters.shed;
    degraded = Atomic.get t.counters.degraded;
    errors = Atomic.get t.counters.errors;
    (* connections quarantined by faults + store records/snapshots moved
       aside as unrepairable — both are "kept, not trusted" *)
    quarantined = List.length (Atomic.get t.quarantined) + store_quarantined;
    inflight = Atomic.get t.counters.inflight;
    draining = Atomic.get t.draining;
    journal_records = Store.journal_records t.store;
    epoch = Store.epoch t.store;
    primary = Replica.is_primary t.replica;
    dedup = Store.dedups t.store;
    scrubbed;
    crc_failures;
    repaired;
    expired = Atomic.get t.counters.expired;
    accept_pauses = Atomic.get t.counters.accept_pauses;
    reaped = Atomic.get t.counters.reaped;
    q_p50 = Admission.Histogram.quantile_us t.h_query 0.5;
    q_p95 = Admission.Histogram.quantile_us t.h_query 0.95;
    q_p99 = Admission.Histogram.quantile_us t.h_query 0.99;
    k_p50 = Admission.Histogram.quantile_us t.h_knn 0.5;
    k_p95 = Admission.Histogram.quantile_us t.h_knn 0.95;
    k_p99 = Admission.Histogram.quantile_us t.h_knn 0.99;
    a_p50 = Admission.Histogram.quantile_us t.h_add 0.5;
    a_p95 = Admission.Histogram.quantile_us t.h_add 0.95;
    a_p99 = Admission.Histogram.quantile_us t.h_add 0.99;
  }

(* --- event-loop plumbing --- *)

(* Nudge the event loop out of [select]: one pipe byte per quiet->busy
   transition (the CAS keeps a flood of worker completions from filling
   the pipe). *)
let wake t =
  if Atomic.compare_and_set t.wake_flag false true then
    try ignore (Unix.write t.wake_w (Bytes.make 1 '\000') 0 1)
    with Unix.Unix_error _ -> ()

(* Append one rendered response to a connection's output buffer.  Caller
   holds [io_mutex].  On a binary connection a reply without a request id
   (protocol-level, e.g. the HELLO reply queued just before the mode
   flips) still renders as text. *)
let append_response c ~rid resp =
  match (c.c_mode, rid) with
  | Binary, Some id ->
    let b = Buffer.create 64 in
    Protocol.Binary.encode_response b ~id resp;
    Netbuf.add_string c.c_out (Buffer.contents b)
  | _ ->
    Netbuf.add_string c.c_out (Protocol.render_response resp);
    Netbuf.add_char c.c_out '\n'

(* From the event-loop thread: queue a reply; the same tick flushes it. *)
let respond t c ~rid resp =
  Mutex.protect t.io_mutex (fun () ->
      if c.c_state = Live then append_response c ~rid resp)

(* From a worker thread: queue a reply, retire the async slot, wake the
   loop to flush. *)
let deliver t c ~rid resp =
  Mutex.protect t.io_mutex (fun () ->
      if c.c_state = Live then append_response c ~rid resp;
      c.c_async <- c.c_async - 1);
  wake t

(* Close for good (event-loop thread only).  A best-effort final write
   keeps already-queued replies from being lost when the close is not
   the client's fault. *)
let close_conn t c =
  let was =
    Mutex.protect t.io_mutex (fun () ->
        let s = c.c_state in
        c.c_state <- Dead;
        s)
  in
  if was = Live then begin
    (if not (Netbuf.is_empty c.c_out) then
       let buf, pos, len = Netbuf.peek c.c_out in
       try ignore (Unix.write c.c_fd buf pos len)
       with Unix.Unix_error _ | Sys_error _ -> ());
    Mutex.protect t.conns_mutex (fun () -> Hashtbl.remove t.conns c.c_id);
    try Unix.close c.c_fd with Unix.Unix_error _ -> ()
  end

let kill_conn t c reason =
  quarantine t ~conn_id:c.c_id reason;
  close_conn t c

(* --- blocking line IO (replication streams only) --- *)

(* Read one line with a hard byte cap so a peer streaming an endless
   line cannot exhaust memory. *)
let read_line_bounded ic ~max_bytes =
  let b = Buffer.create 256 in
  let rec loop overflow =
    match input_char ic with
    | exception End_of_file ->
      if Buffer.length b = 0 && not overflow then None else Some (Buffer.contents b, overflow)
    | '\n' -> Some (Buffer.contents b, overflow)
    | c ->
      if Buffer.length b >= max_bytes then loop true
      else begin
        Buffer.add_char b c;
        loop overflow
      end
  in
  loop false

let trim_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

(* --- admission and staleness --- *)

(* Absolute expiry of a request: the client's remaining budget anchored
   at arrival; [infinity] when the request carried no deadline. *)
let expire_at ~now deadline_ms =
  match deadline_ms with
  | None -> infinity
  | Some ms -> now +. (float_of_int (max 0 ms) /. 1000.0)

(* BUSY retry-after hint for a watermark shed: proportional to the
   backlog, floored so a retrying client never spins on a zero hint. *)
let backlog_hint t = Some (max 5 (min 1000 (Atomic.get t.counters.inflight)))

(* Over the watermark, shed the request with the LEAST remaining
   deadline: work closest to expiring is the least worth finishing (it
   is the most likely to be dropped as expired anyway).  If that is a
   queued read rather than the newcomer, the queued read is answered
   BUSY and its inflight slot transfers to the newcomer. *)
let displace t ~expire =
  let victim =
    Mutex.protect t.runq_mutex (fun () ->
        let least =
          Queue.fold
            (fun acc j ->
              match acc with
              | Some m when m.q_expire <= j.q_expire -> acc
              | _ -> Some j)
            None t.runq
        in
        match least with
        | Some v when v.q_expire < expire ->
          let keep = Queue.create () in
          Queue.iter (fun j -> if j != v then Queue.push j keep) t.runq;
          Queue.clear t.runq;
          Queue.transfer keep t.runq;
          Some v
        | _ -> None)
  in
  match victim with
  | None -> false
  | Some v ->
    unregister_budget t v.q_token;
    ignore (Atomic.fetch_and_add t.counters.inflight (-1));
    ignore (Atomic.fetch_and_add t.counters.shed 1);
    deliver t v.q_conn ~rid:v.q_rid
      (Protocol.Busy { retry_after_ms = backlog_hint t });
    true

(* Bump the inflight counter optimistically; over the watermark the
   least-deadline request (the newcomer or a queued read) is shed with
   an explicit [BUSY] carrying a retry-after hint — deterministic,
   never a silent drop. *)
let admit t ~expire =
  if Atomic.get t.draining then
    `Shed (Protocol.Err "draining: not accepting new work")
  else begin
    let inflight = Atomic.fetch_and_add t.counters.inflight 1 in
    if inflight < t.config.max_inflight then `Admitted
    else if displace t ~expire then `Admitted
    else begin
      ignore (Atomic.fetch_and_add t.counters.inflight (-1));
      ignore (Atomic.fetch_and_add t.counters.shed 1);
      `Shed (Protocol.Busy { retry_after_ms = backlog_hint t })
    end
  end

(* Bounded-staleness admission for reads carrying a [max_lag] bound: the
   primary always qualifies; a replica answers only when its known lag
   is within the bound, otherwise the client is redirected upstream. *)
let staleness_denied t lag_bound =
  match lag_bound with
  | None -> None
  | Some max_lag ->
    if Replica.is_primary t.replica then None
    else begin
      match Replica.lag t.replica with
      | Some l when l <= max_lag -> None
      | _ -> (
        match Replica.upstream t.replica with
        | Some addr -> Some (Protocol.Redirect addr)
        | None ->
          ignore (Atomic.fetch_and_add t.counters.errors 1);
          Some (Protocol.Err "stale replica: no known primary"))
    end

(* --- read path (query worker) --- *)

let run_query t (job : query_job) =
  (* A read dequeued past its client deadline is dropped without
     computing: nobody is waiting for the answer. *)
  if Tsj_util.Timer.now () > job.q_expire then begin
    unregister_budget t job.q_token;
    ignore (Atomic.fetch_and_add t.counters.inflight (-1));
    ignore (Atomic.fetch_and_add t.counters.expired 1);
    deliver t job.q_conn ~rid:job.q_rid (Protocol.Err "deadline expired")
  end
  else begin
    let response =
      try
        match job.q_req with
        | Protocol.Query { tau; tree } ->
          if tau > Store.tau t.store then
            Error
              (Printf.sprintf "QUERY: tau %d exceeds the index threshold %d" tau
                 (Store.tau t.store))
          else begin
            let r =
              Mutex.protect t.store_mutex (fun () ->
                  Store.query ~budget:job.q_budget ~tau t.store tree)
            in
            ignore (Atomic.fetch_and_add t.counters.queries 1);
            if r.Tsj_core.Incremental.degraded then
              ignore (Atomic.fetch_and_add t.counters.degraded 1);
            Ok
              (Protocol.Hits
                 { degraded = r.degraded; hits = r.hits; unverified = r.unverified })
          end
        | Protocol.Knn { k; tree } ->
          let hits = Mutex.protect t.store_mutex (fun () -> Store.nearest ~k t.store tree) in
          ignore (Atomic.fetch_and_add t.counters.queries 1);
          Ok (Protocol.Hits { degraded = false; hits; unverified = [] })
        | _ -> Error "internal: non-read request on the query path"
      with e -> Error (Printexc.to_string e)
    in
    unregister_budget t job.q_token;
    ignore (Atomic.fetch_and_add t.counters.inflight (-1));
    let finished = Tsj_util.Timer.now () in
    let resp =
      match response with
      | Ok _ when finished > job.q_expire ->
        (* The compute outran the client's budget: delivering the answer
           now would hand an expired result to a caller that has moved
           on (and may already have retried elsewhere). *)
        ignore (Atomic.fetch_and_add t.counters.expired 1);
        Protocol.Err "deadline expired"
      | Ok r ->
        let h =
          match job.q_req with Protocol.Knn _ -> t.h_knn | _ -> t.h_query
        in
        Admission.Histogram.record h ~seconds:(finished -. job.q_t0);
        r
      | Error reason ->
        ignore (Atomic.fetch_and_add t.counters.errors 1);
        Protocol.Err reason
    in
    deliver t job.q_conn ~rid:job.q_rid resp
  end

let query_loop t =
  let rec loop () =
    let job =
      Mutex.protect t.runq_mutex (fun () ->
          let rec get () =
            if not (Queue.is_empty t.runq) then Some (Queue.pop t.runq)
            else if Atomic.get t.draining then None
            else begin
              Condition.wait t.runq_cond t.runq_mutex;
              get ()
            end
          in
          get ())
    in
    match job with
    | Some job ->
      run_query t job;
      loop ()
    | None -> ()
  in
  loop ()

(* --- write path (committer: group commit) --- *)

let quorum_error t copies =
  Printf.sprintf "%s: %d/%d durable copies"
    (if Cluster.sealed t.cluster then "draining: quorum abandoned"
     else "quorum not reached")
    copies (Cluster.quorum t.cluster)

(* Commit a batch of ADDs as one unit: one journal append + flush
   ({!Store.add_batch}), one lock-step quorum round up to the batch's
   high sequence number, then one reply per item.  Per-item semantics
   are identical to committing them one by one. *)
let commit_batch t (jobs : add_job array) =
  let n = Array.length jobs in
  let responses =
    if not (Replica.is_primary t.replica) then
      Array.make n (Protocol.Fenced (Store.epoch t.store))
    else
      try
        Cluster.with_write t.cluster (fun () ->
            let items = Array.map (fun j -> (j.a_seq, j.a_tree)) jobs in
            let results =
              Mutex.protect t.commit_mutex (fun () ->
                  (* Stage under the store lock (reads the index), flush
                     the journal with the store lock DROPPED (queries
                     keep flowing while the disk syncs — an ext4 flush
                     can stall for tens of ms under writeback), then
                     index under the store lock again.  commit_mutex
                     keeps the staged seqs valid: no other writer can
                     slip between the phases. *)
                  let staged =
                    Mutex.protect t.store_mutex (fun () -> Store.stage_batch t.store items)
                  in
                  match Store.journal_staged t.store staged with
                  | Ok () ->
                    Mutex.protect t.store_mutex (fun () -> Store.index_staged t.store staged)
                  | Error reason ->
                    (* disk fault: the journal refused the batch (and was
                       repaired to its valid prefix); nothing is visible,
                       every item fails with the typed error *)
                    Array.map (fun _ -> Error reason) items)
            in
            let high =
              Array.fold_left
                (fun acc r -> match r with Ok (id, _) -> max acc id | Error _ -> acc)
                (-1) results
            in
            let outcome =
              if high < 0 || high + 1 <= Cluster.acked_high t.cluster then `Acked
              else begin
                let record_for i =
                  Mutex.protect t.store_mutex (fun () -> Store.record_for t.store i)
                in
                match Cluster.replicate t.cluster ~record_for ~seq:high with
                | Cluster.Acks _ -> `Acked
                | Cluster.No_quorum copies -> `No_quorum copies
                | Cluster.Fenced_off epoch ->
                  Replica.demote t.replica;
                  `Fenced epoch
              end
            in
            let acked = Cluster.acked_high t.cluster in
            Array.map
              (fun r ->
                match r with
                | Error reason ->
                  ignore (Atomic.fetch_and_add t.counters.errors 1);
                  Protocol.Err reason
                | Ok (id, partners) -> (
                  if id + 1 <= acked then begin
                    ignore (Atomic.fetch_and_add t.counters.adds 1);
                    Protocol.Added { id; partners }
                  end
                  else
                    match outcome with
                    | `Fenced epoch -> Protocol.Fenced epoch
                    | `No_quorum copies ->
                      ignore (Atomic.fetch_and_add t.counters.errors 1);
                      Protocol.Err (quorum_error t copies)
                    | `Acked ->
                      ignore (Atomic.fetch_and_add t.counters.errors 1);
                      Protocol.Err "internal: add past the acked high-water mark"))
              results)
      with e ->
        ignore (Atomic.fetch_and_add t.counters.errors n);
        Array.make n (Protocol.Err (Printexc.to_string e))
  in
  let done_at = Tsj_util.Timer.now () in
  Array.iteri
    (fun i job ->
      (match responses.(i) with
      | Protocol.Added _ ->
        Admission.Histogram.record t.h_add ~seconds:(done_at -. job.a_t0)
      | _ -> ());
      Mutex.protect t.io_mutex (fun () ->
          if job.a_conn.c_state = Live then
            append_response job.a_conn ~rid:job.a_rid responses.(i);
          job.a_conn.c_async <- job.a_conn.c_async - 1);
      ignore (Atomic.fetch_and_add t.counters.inflight (-1)))
    jobs;
  wake t

let committer_loop t =
  let batch_no = ref 0 in
  let rec loop () =
    let have_work =
      Mutex.protect t.addq_mutex (fun () ->
          let rec wait_nonempty () =
            if not (Queue.is_empty t.addq) then true
            else if Atomic.get t.draining then false
            else begin
              Condition.wait t.addq_cond t.addq_mutex;
              wait_nonempty ()
            end
          in
          wait_nonempty ())
    in
    if have_work then begin
      (* The batch-boundary fault point fires outside the queue lock so
         an armed action can stall the committer while pipelined ADDs
         pile into one group commit; an [Injected] raise is swallowed
         (the batch itself must still commit). *)
      (try Fault.hit "server.batch" !batch_no with Fault.Injected _ -> ());
      incr batch_no;
      let batch =
        Mutex.protect t.addq_mutex (fun () ->
            let n = min t.config.max_batch (Queue.length t.addq) in
            Array.init n (fun _ -> Queue.pop t.addq))
      in
      (* Drop writes whose client deadline passed while they queued —
         BEFORE the journal touch, so an expired ADD is never made
         durable behind the client's back. *)
      let now = Tsj_util.Timer.now () in
      let batch =
        if Array.for_all (fun j -> j.a_expire >= now) batch then batch
        else
          Array.of_list
            (List.filter
               (fun j ->
                 if j.a_expire < now then begin
                   ignore (Atomic.fetch_and_add t.counters.expired 1);
                   deliver t j.a_conn ~rid:j.a_rid
                     (Protocol.Err "deadline expired");
                   ignore (Atomic.fetch_and_add t.counters.inflight (-1));
                   false
                 end
                 else true)
               (Array.to_list batch))
      in
      if Array.length batch > 0 then begin
        if Atomic.get t.aborted then begin
          (* kill -9 fidelity: an aborted server writes nothing more. *)
          Array.iter
            (fun job ->
              Mutex.protect t.io_mutex (fun () ->
                  job.a_conn.c_async <- job.a_conn.c_async - 1);
              ignore (Atomic.fetch_and_add t.counters.inflight (-1)))
            batch;
          wake t
        end
        else commit_batch t batch
      end;
      loop ()
    end
  in
  loop ()

(* --- drain --- *)

let do_drain t =
  (* Idempotent: the first caller wins; later calls (second DRAIN,
     SIGTERM after DRAIN) are no-ops. *)
  if not (Atomic.exchange t.draining true) then begin
    Atomic.set t.drain_force_at
      (Tsj_util.Timer.now () +. t.config.drain_budget_s +. 1.0);
    (* Wake every loop: the event loop closes the listener, the workers
       re-check their exit conditions. *)
    Mutex.protect t.addq_mutex (fun () -> Condition.broadcast t.addq_cond);
    Mutex.protect t.runq_mutex (fun () -> Condition.broadcast t.runq_cond);
    wake t;
    (* Let inflight work finish within the drain budget... *)
    let deadline = Tsj_util.Timer.now () +. t.config.drain_budget_s in
    let rec wait () =
      if Atomic.get t.counters.inflight > 0 && Tsj_util.Timer.now () < deadline then begin
        Thread.yield ();
        wait ()
      end
    in
    wait ();
    (* ...then shed what remains: cancel every live budget so budgeted
       work degrades and returns instead of running past the drain. *)
    Mutex.protect t.budgets_mutex (fun () ->
        Hashtbl.iter (fun _ b -> Budget.cancel b) t.budgets);
    let rec wait_cancelled () =
      if Atomic.get t.counters.inflight > 0 && Tsj_util.Timer.now () < deadline +. 1.0
      then begin
        Thread.yield ();
        wait_cancelled ()
      end
    in
    wait_cancelled ();
    (match t.follower_fd with
    | Some fd -> (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    | None -> ());
    (* The scrubber must be gone before the final flush: its repair
       path writes the same files. *)
    (match t.scrubber with
    | Some s ->
      Scrub.stop s;
      t.scrubber <- None
    | None -> ());
    (* Seal replication: waits out any quorum write still in flight (by
       taking the write lock) and makes later ones fail with an explicit
       ERR instead of being half-replicated under a closing server. *)
    Cluster.seal t.cluster;
    (* Flush: snapshot + header-only journal, so a cold start is clean.
       A primary first discards any suffix that never reached quorum —
       the snapshot must not contain adds no client was acknowledged —
       and bumps the epoch so a replica still holding that suffix
       re-syncs by truncation instead of diverging. *)
    Mutex.protect t.commit_mutex (fun () ->
        Mutex.protect t.store_mutex (fun () ->
            let acked = Cluster.acked_high t.cluster in
            if Replica.is_primary t.replica && acked < Store.n_trees t.store then begin
              Store.truncate_to t.store acked;
              Store.set_epoch t.store ~epoch:(Store.epoch t.store + 1) ~base:acked
            end;
            Store.close t.store));
    Atomic.set t.drained true
  end

(* --- incremental framing --- *)

(* Pull the next complete text line out of the input buffer.  Discard
   mode swallows the remainder of a line already answered with the
   oversize [ERR]. *)
let rec next_text_line t c ~eof =
  if c.c_discard then begin
    match Netbuf.index c.c_in '\n' with
    | Some i ->
      Netbuf.consume c.c_in (i + 1);
      c.c_discard <- false;
      next_text_line t c ~eof
    | None ->
      Netbuf.clear c.c_in;
      `None
  end
  else
    match Netbuf.index c.c_in '\n' with
    | Some i when i > t.config.max_line_bytes ->
      Netbuf.consume c.c_in (i + 1);
      `Oversized
    | Some i ->
      let line = Netbuf.sub_string c.c_in ~pos:0 ~len:i in
      Netbuf.consume c.c_in (i + 1);
      `Line (trim_cr line)
    | None ->
      if Netbuf.length c.c_in > t.config.max_line_bytes then begin
        Netbuf.clear c.c_in;
        c.c_discard <- true;
        `Oversized
      end
      else if eof && Netbuf.length c.c_in > 0 then begin
        let line = Netbuf.sub_string c.c_in ~pos:0 ~len:(Netbuf.length c.c_in) in
        Netbuf.clear c.c_in;
        `Line (trim_cr line)
      end
      else `None

let frame_cap t = t.config.max_line_bytes + 5

(* Pull the next complete binary frame.  An oversized frame is rejected
   by id and its body skipped without buffering it; a length below the
   header minimum means the stream is unrecoverable. *)
let rec next_frame t c =
  if c.c_skip > 0 then begin
    let n = min c.c_skip (Netbuf.length c.c_in) in
    Netbuf.consume c.c_in n;
    c.c_skip <- c.c_skip - n;
    if c.c_skip > 0 then `None else next_frame t c
  end
  else if Netbuf.length c.c_in < 4 then `None
  else begin
    let flen = Netbuf.u32_be c.c_in 0 in
    if flen < 5 then `Broken
    else if flen > frame_cap t then begin
      if Netbuf.length c.c_in < 8 then `None
      else begin
        let rid = Netbuf.u32_be c.c_in 4 in
        Netbuf.consume c.c_in 8;
        c.c_skip <- flen - 4;
        `Oversized rid
      end
    end
    else if Netbuf.length c.c_in < 4 + flen then `None
    else begin
      let rid = Netbuf.u32_be c.c_in 4 in
      let op = Char.code (Netbuf.get c.c_in 8) in
      let body = Netbuf.sub_string c.c_in ~pos:9 ~len:(flen - 5) in
      Netbuf.consume c.c_in (4 + flen);
      `Frame (rid, op, body)
    end
  end

(* --- request dispatch (event-loop thread) --- *)

let rec dispatch t c ~rid ~lag ~deadline_ms (request : Protocol.request) =
  match request with
  | Protocol.Stats -> respond t c ~rid (Protocol.Stats_reply (stats t))
  | Protocol.Health ->
    respond t c ~rid (Protocol.Health_reply { draining = Atomic.get t.draining })
  | Protocol.Drain ->
    respond t c ~rid Protocol.Drained;
    c.c_closing <- true;
    ignore (Thread.create (fun () -> do_drain t) ())
  | Protocol.Sync _ -> respond t c ~rid (Protocol.Err "SYNC is handled at the connection layer")
  | Protocol.Ack _ -> respond t c ~rid (Protocol.Err "ACKED outside a sync stream")
  | Protocol.Get seq ->
    (* Ledger recovery / migration verification: answered inline — a
       point read of an immutable binding, no admission or staleness
       machinery involved. *)
    let tree =
      Mutex.protect t.store_mutex (fun () ->
          if seq >= 0 && seq < Store.n_trees t.store then Some (Store.tree t.store seq)
          else None)
    in
    (match tree with
    | Some tree -> respond t c ~rid (Protocol.Tree_reply { seq; tree })
    | None -> respond t c ~rid (Protocol.Err (Printf.sprintf "GET %d: unbound sequence" seq)))
  | Protocol.Digest { epoch; lo; hi } ->
    (* Anti-entropy probe: a Merkle digest over canonical records is
       only comparable between stores at the same epoch — a different
       epoch means a different history and the peer must fail over
       first, exactly as a SYNC would be fenced. *)
    let reply =
      Mutex.protect t.store_mutex (fun () ->
          if epoch <> Store.epoch t.store then
            Protocol.Fenced (Store.epoch t.store)
          else if hi > Store.n_trees t.store then
            Protocol.Err
              (Printf.sprintf "DIGEST [%d,%d): only %d records" lo hi
                 (Store.n_trees t.store))
          else Protocol.Digest_reply { epoch; lo; hi; digest = Store.digest t.store ~lo ~hi })
    in
    respond t c ~rid reply
  | Protocol.Promote ->
    (* Persist the bumped epoch (journal header) before the mandate
       flips, then treat the promoted node's whole state as acked: it
       was chosen as the most advanced surviving replica. *)
    let epoch, n =
      Mutex.protect t.commit_mutex (fun () ->
          Mutex.protect t.store_mutex (fun () ->
              (Replica.promote t.replica, Store.n_trees t.store)))
    in
    Cluster.set_acked_high t.cluster n;
    respond t c ~rid (Protocol.Promoted epoch)
  | Protocol.Add _ when not (Replica.is_primary t.replica) ->
    (* A node without the write mandate never accepts a write: the
       client fails over.  Split-brain is refused structurally, before
       any journal touch. *)
    respond t c ~rid (Protocol.Fenced (Store.epoch t.store))
  | Protocol.Query _ | Protocol.Knn _ | Protocol.Add _ -> (
    let denied =
      match request with Protocol.Add _ -> None | _ -> staleness_denied t lag
    in
    match denied with
    | Some resp -> respond t c ~rid resp
    | None -> (
      let now = Tsj_util.Timer.now () in
      (* An exhausted client budget means nobody is waiting: drop before
         any admission or queueing work. *)
      if (match deadline_ms with Some ms -> ms <= 0 | None -> false) then begin
        ignore (Atomic.fetch_and_add t.counters.expired 1);
        respond t c ~rid (Protocol.Err "deadline expired")
      end
      else
        (* Per-connection token bucket: a greedy connection exhausts only
           its own tokens, never another client's admission. *)
        match c.c_bucket with
        | Some b when not (Admission.Token_bucket.take b ~now) ->
          ignore (Atomic.fetch_and_add t.counters.shed 1);
          let after = Admission.Token_bucket.retry_after_s b ~now in
          respond t c ~rid
            (Protocol.Busy
               { retry_after_ms = Some (max 1 (Admission.Deadline.of_span_s after)) })
        | _ -> (
          let expire = expire_at ~now deadline_ms in
          match admit t ~expire with
          | `Shed resp -> respond t c ~rid resp
          | `Admitted -> (
            Mutex.protect t.io_mutex (fun () -> c.c_async <- c.c_async + 1);
            match request with
            | Protocol.Add { seq; tree } ->
              (* The draining re-check under the queue mutex pairs with the
                 committer's exit check: a job is either seen by the
                 committer or shed here, never stranded. *)
              let pushed =
                Mutex.protect t.addq_mutex (fun () ->
                    if Atomic.get t.draining then false
                    else begin
                      Queue.push
                        { a_conn = c; a_rid = rid; a_seq = seq; a_tree = tree;
                          a_expire = expire; a_t0 = now }
                        t.addq;
                      Condition.signal t.addq_cond;
                      true
                    end)
              in
              if not pushed then begin
                Mutex.protect t.io_mutex (fun () -> c.c_async <- c.c_async - 1);
                ignore (Atomic.fetch_and_add t.counters.inflight (-1));
                respond t c ~rid (Protocol.Err "draining: not accepting new work")
              end
            | _ ->
              (* The compute budget is the tighter of the server default
                 and the client's remaining budget, so a long query
                 degrades within what the caller will actually wait for. *)
              let time_budget_s =
                let client =
                  match deadline_ms with
                  | Some ms -> Some (float_of_int ms /. 1000.0)
                  | None -> None
                in
                match (t.config.deadline_s, client) with
                | Some a, Some b -> Some (Float.min a b)
                | (Some _ as s), None | None, (Some _ as s) -> s
                | None, None -> None
              in
              let budget = Budget.create ?time_budget_s () in
              let token = Atomic.fetch_and_add t.next_token 1 in
              register_budget t token budget;
              let pushed =
                Mutex.protect t.runq_mutex (fun () ->
                    if Atomic.get t.draining then false
                    else begin
                      Queue.push
                        { q_conn = c; q_rid = rid; q_req = request;
                          q_budget = budget; q_token = token; q_expire = expire;
                          q_t0 = now }
                        t.runq;
                      Condition.signal t.runq_cond;
                      true
                    end)
              in
              if not pushed then begin
                unregister_budget t token;
                Mutex.protect t.io_mutex (fun () -> c.c_async <- c.c_async - 1);
                ignore (Atomic.fetch_and_add t.counters.inflight (-1));
                respond t c ~rid (Protocol.Err "draining: not accepting new work")
              end))))

(* One text line: blank lines are ignored, a HELLO negotiates the binary
   protocol, a SYNC upgrades the connection into a replication stream,
   anything else dispatches. *)
and handle_text_line t c line =
  if String.trim line = "" then ()
  else
    match Protocol.Binary.parse_hello line with
    | Some v ->
      let v = min v Protocol.Binary.version in
      Mutex.protect t.io_mutex (fun () ->
          if c.c_state = Live then begin
            (* The reply renders as text (the mode flips after it). *)
            append_response c ~rid:None (Protocol.Hello_reply v);
            c.c_mode <- Binary;
            c.c_version <- v
          end)
    | None -> (
      match Protocol.parse_request_d line with
      | Error reason ->
        (* Malformed input is this client's problem only: answer [ERR]
           and keep the connection. *)
        ignore (Atomic.fetch_and_add t.counters.errors 1);
        respond t c ~rid:None (Protocol.Err reason)
      | Ok (Protocol.Sync { epoch = f_epoch; from_seq = _ }, _) ->
        start_sync t c ~f_epoch
      | Ok (request, deadline_ms) ->
        dispatch t c ~rid:None ~lag:None ~deadline_ms request)

(* Consume as much buffered input as the connection's mode and ordering
   rules allow.  The per-request fault point fires once per unit —
   line, frame, oversize, broken — before any reply; an [Injected]
   raise propagates to the caller, which quarantines the connection
   without answering the victim request. *)
and pump t c ~eof =
  if c.c_state = Live && not c.c_closing then
    match c.c_mode with
    | Text ->
      (* The newline protocol is strictly one-reply-per-request in
         order: buffered pipelined lines wait until the outstanding
         request retires. *)
      if Mutex.protect t.io_mutex (fun () -> c.c_async) > 0 then ()
      else begin
        match next_text_line t c ~eof with
        | `None -> ()
        | `Oversized ->
          Fault.hit "server.request" c.c_reqno;
          c.c_reqno <- c.c_reqno + 1;
          ignore (Atomic.fetch_and_add t.counters.errors 1);
          respond t c ~rid:None
            (Protocol.Err
               (Printf.sprintf "request line exceeds %d bytes" t.config.max_line_bytes));
          pump t c ~eof
        | `Line line ->
          Fault.hit "server.request" c.c_reqno;
          c.c_reqno <- c.c_reqno + 1;
          handle_text_line t c line;
          pump t c ~eof
      end
    | Binary -> (
      match next_frame t c with
      | `None -> ()
      | `Broken ->
        Fault.hit "server.request" c.c_reqno;
        c.c_reqno <- c.c_reqno + 1;
        ignore (Atomic.fetch_and_add t.counters.errors 1);
        respond t c ~rid:(Some 0) (Protocol.Err "malformed frame: length below minimum");
        c.c_closing <- true
      | `Oversized rid ->
        Fault.hit "server.request" c.c_reqno;
        c.c_reqno <- c.c_reqno + 1;
        ignore (Atomic.fetch_and_add t.counters.errors 1);
        respond t c ~rid:(Some rid)
          (Protocol.Err (Printf.sprintf "frame exceeds %d bytes" (frame_cap t)));
        pump t c ~eof
      | `Frame (rid, op, body) ->
        Fault.hit "server.request" c.c_reqno;
        c.c_reqno <- c.c_reqno + 1;
        (match Protocol.Binary.decode_request ~version:c.c_version ~op ~body with
        | Error reason ->
          ignore (Atomic.fetch_and_add t.counters.errors 1);
          respond t c ~rid:(Some rid) (Protocol.Err reason)
        | Ok (request, lag, deadline_ms) ->
          dispatch t c ~rid:(Some rid) ~lag ~deadline_ms request);
        pump t c ~eof)

(* Upgrade a connection into a replication stream: hand the fd to a
   dedicated thread running the blocking lock-step sync protocol, and
   carry over any bytes the event loop already buffered. *)
and start_sync t c ~f_epoch =
  c.c_state <- Handoff;
  Mutex.protect t.conns_mutex (fun () -> Hashtbl.remove t.conns c.c_id);
  let leftover_in = Netbuf.sub_string c.c_in ~pos:0 ~len:(Netbuf.length c.c_in) in
  Netbuf.clear c.c_in;
  let leftover_out =
    Mutex.protect t.io_mutex (fun () ->
        let s = Netbuf.sub_string c.c_out ~pos:0 ~len:(Netbuf.length c.c_out) in
        Netbuf.clear c.c_out;
        s)
  in
  let th =
    Thread.create (fun () -> sync_stream t c ~f_epoch ~leftover_in ~leftover_out) ()
  in
  Mutex.protect t.sync_mutex (fun () -> t.sync_threads <- th :: t.sync_threads)

(* A hung replica must not hang the primary's write path: the stream
   socket gets a receive timeout, and a timed-out peer is dropped (it
   re-syncs). *)
and sync_stream t c ~f_epoch ~leftover_in ~leftover_out =
  try
    let fd = c.c_fd in
    (try Unix.clear_nonblock fd with Unix.Unix_error _ -> ());
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.peer_timeout_s
     with Unix.Unix_error _ | Invalid_argument _ -> ());
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    if leftover_out <> "" then begin
      output_string oc leftover_out;
      flush oc
    end;
    let pending = ref leftover_in in
    let send line =
      output_string oc line;
      output_char oc '\n';
      flush oc
    in
    let read_socket_line () =
      match read_line_bounded ic ~max_bytes:t.config.max_line_bytes with
      | Some (line, false) -> line
      | Some (_, true) | None -> raise End_of_file
    in
    let recv () =
      (* serve bytes the event loop buffered before the handoff first *)
      match String.index_opt !pending '\n' with
      | Some i ->
        let line = String.sub !pending 0 i in
        pending := String.sub !pending (i + 1) (String.length !pending - i - 1);
        trim_cr line
      | None ->
        let head = !pending in
        pending := "";
        trim_cr (head ^ read_socket_line ())
    in
    let close_fd () = try Unix.close fd with Unix.Unix_error _ -> () in
    let reply r = try send (Protocol.render_response r) with _ -> () in
    let locked f = Mutex.protect t.store_mutex f in
    match
      Cluster.serve_sync t.cluster
        ~epoch:(fun () -> locked (fun () -> Store.epoch t.store))
        ~base:(fun () -> locked (fun () -> Store.epoch_base t.store))
        ~n_trees:(fun () -> locked (fun () -> Store.n_trees t.store))
        ~record_for:(fun i -> locked (fun () -> Store.record_for t.store i))
        ~primary:(fun () -> Replica.is_primary t.replica)
        ~peer_id:(Printf.sprintf "conn-%d" c.c_id)
        ~f_epoch ~send ~recv ~close:close_fd
    with
    | `Streaming -> () (* the fd now belongs to the cluster (seal/drop closes it) *)
    | `Fenced epoch ->
      (* The requester holds a higher epoch than ours: we lost the write
         mandate somewhere along the way. *)
      Replica.demote t.replica;
      reply (Protocol.Fenced epoch);
      close_fd ()
    | `Refused reason ->
      ignore (Atomic.fetch_and_add t.counters.errors 1);
      reply (Protocol.Err ("sync refused: " ^ reason));
      close_fd ()
  with _ -> ( try Unix.close c.c_fd with Unix.Unix_error _ -> ())

(* --- the event loop --- *)

let read_chunk c scratch =
  match Unix.read c.c_fd scratch 0 (Bytes.length scratch) with
  | 0 -> `Eof
  | n ->
    Netbuf.add_subbytes c.c_in scratch 0 n;
    `Data
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
    `Again
  | exception Unix.Unix_error _ -> `Lost
  | exception Sys_error _ -> `Lost

(* Push buffered output; [EAGAIN] leaves the rest for the next tick
   (the fd joins the select write set while [c_out] is nonempty). *)
let flush_conn t c =
  let res =
    Mutex.protect t.io_mutex (fun () ->
        if Netbuf.is_empty c.c_out then `Done
        else begin
          let buf, pos, len = Netbuf.peek c.c_out in
          match Unix.write c.c_fd buf pos len with
          | n ->
            Netbuf.consume c.c_out n;
            `Done
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            `Done
          | exception Unix.Unix_error _ -> `Lost
          | exception Sys_error _ -> `Lost
        end)
  in
  match res with
  | `Lost -> kill_conn t c (Types.Preprocess_failed "connection lost")
  | `Done -> ()

let service_conn t c scratch ~readable =
  if c.c_state = Live then begin
    (if readable then
       match read_chunk c scratch with
       | `Data ->
         c.c_last_active <- Tsj_util.Timer.now ()
       | `Again -> ()
       | `Eof -> c.c_eof <- true
       | `Lost -> kill_conn t c (Types.Preprocess_failed "connection lost"));
    if c.c_state = Live then begin
      (match pump t c ~eof:c.c_eof with
      | () -> ()
      | exception Fault.Injected msg ->
        (* An injected handler fault crashes only this connection; the
           victim request gets no reply. *)
        kill_conn t c (Types.Verify_failed ("server.request: " ^ msg))
      | exception e -> kill_conn t c (Types.Verify_failed (Printexc.to_string e)));
      if
        c.c_state = Live
        && not (Mutex.protect t.io_mutex (fun () -> Netbuf.is_empty c.c_out))
      then flush_conn t c
    end
  end

(* A connection closes once it owes nothing: no worker reply pending, no
   unflushed output, and either the client is done (EOF, DRAIN) or the
   server is draining.  Past the drain deadline it closes regardless.
   At EOF a binary connection closes even with leftover input: after
   [pump] the leftover is a truncated frame that can never complete
   (text mode consumes its final unterminated line instead). *)
let should_close t c ~now =
  (Atomic.get t.draining && now >= Atomic.get t.drain_force_at)
  || Mutex.protect t.io_mutex (fun () ->
         c.c_async = 0
         && Netbuf.is_empty c.c_out
         && (c.c_closing
            || Atomic.get t.draining
            || (c.c_eof && (Netbuf.is_empty c.c_in || c.c_mode = Binary))))

let accept_new t =
  let rec loop () =
    (* The "server.emfile" fault point sits inside the try scope so an
       armed action can raise the real [EMFILE] and exercise the
       back-off path end to end. *)
    match
      Fault.hit "server.emfile" t.next_conn;
      Unix.accept t.listener
    with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()
    | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
      (* fd exhaustion: the listener would stay hot-readable forever, so
         dropping the error on the floor turns the event loop into a
         busy spin.  Back off briefly (the listener leaves the select
         read set until the pause passes) and make the stall visible. *)
      ignore (Atomic.fetch_and_add t.counters.accept_pauses 1);
      t.accept_pause_until <- Tsj_util.Timer.now () +. 0.05
    | exception Unix.Unix_error _ -> ()
    | fd, _ ->
      let over_cap =
        match t.config.max_conns with
        | Some cap -> Mutex.protect t.conns_mutex (fun () -> Hashtbl.length t.conns) >= cap
        | None -> false
      in
      if over_cap then begin
        (* Accept-then-close: leaving the connection in the backlog
           would keep the listener readable and spin the loop. *)
        ignore (Atomic.fetch_and_add t.counters.reaped 1);
        (try Unix.close fd with Unix.Unix_error _ -> ());
        loop ()
      end
      else begin
        let conn_id = t.next_conn in
        t.next_conn <- conn_id + 1;
        (match Fault.hit "server.accept" conn_id with
        | exception Fault.Injected msg ->
          (* An injected accept-path fault drops this connection only. *)
          quarantine t ~conn_id (Types.Preprocess_failed ("server.accept: " ^ msg));
          (try Unix.close fd with Unix.Unix_error _ -> ())
        | () ->
          Unix.set_nonblock fd;
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ | Invalid_argument _ -> ());
          let now = Tsj_util.Timer.now () in
          let c =
            {
              c_id = conn_id;
              c_fd = fd;
              c_mode = Text;
              c_version = 1;
              c_in = Netbuf.create ();
              c_out = Netbuf.create ();
              c_reqno = 0;
              c_async = 0;
              c_discard = false;
              c_skip = 0;
              c_closing = false;
              c_eof = false;
              c_state = Live;
              c_last_active = now;
              c_bucket =
                (match t.config.rate with
                | Some rate ->
                  Some
                    (Admission.Token_bucket.create ~rate ~burst:t.config.burst
                       ~now)
                | None -> None);
            }
          in
          Mutex.protect t.conns_mutex (fun () -> Hashtbl.replace t.conns conn_id c));
        loop ()
      end
  in
  loop ()

(* Single-poll core: one [select] over the listener, the wake pipe and
   every connection; level-triggered, so each tick re-services every
   connection whose buffers still hold work. *)
let event_loop t =
  let scratch = Bytes.create 65536 in
  let pipe_scratch = Bytes.create 64 in
  let rec tick () =
    let draining = Atomic.get t.draining in
    if draining && not (Atomic.exchange t.listener_closed true) then begin
      (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      (try Unix.close t.listener with Unix.Unix_error _ -> ());
      match t.config.addr with
      | Protocol.Unix_path p -> ( try Sys.remove p with Sys_error _ -> ())
      | Protocol.Tcp _ -> ()
    end;
    let conns =
      Mutex.protect t.conns_mutex (fun () ->
          Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [])
    in
    if not (draining && conns = []) then begin
      (* While an EMFILE back-off is pending the listener stays out of
         the read set — select would otherwise report it readable every
         tick and spin the loop hot with nothing to accept into. *)
      let accepting =
        (not draining) && Tsj_util.Timer.now () >= t.accept_pause_until
      in
      let reads =
        (t.wake_r :: (if accepting then [ t.listener ] else []))
        @ List.filter_map
            (fun c ->
              if c.c_state = Live && not (c.c_closing || c.c_eof) then Some c.c_fd
              else None)
            conns
      in
      let writes =
        List.filter_map
          (fun c ->
            if
              c.c_state = Live
              && not (Mutex.protect t.io_mutex (fun () -> Netbuf.is_empty c.c_out))
            then Some c.c_fd
            else None)
          conns
      in
      let rset =
        match Unix.select reads writes [] 0.05 with
        | r, _, _ -> r
        | exception Unix.Unix_error _ ->
          Thread.delay 0.002;
          []
      in
      if List.mem t.wake_r rset then begin
        let rec drain_pipe () =
          match Unix.read t.wake_r pipe_scratch 0 (Bytes.length pipe_scratch) with
          | n -> if n = Bytes.length pipe_scratch then drain_pipe ()
          | exception Unix.Unix_error _ -> ()
        in
        drain_pipe ();
        (* Reset strictly AFTER the drain.  Resetting first opens a
           race: a worker's [wake] lands between the reset and the
           drain — its CAS succeeds, its byte is eaten by the drain —
           leaving the flag true over an empty pipe.  Every later
           [wake] then CAS-fails, no byte is ever written again, and
           each reply waits out the full select timeout (a permanent
           tick-bound server).  With drain-then-reset a byte written
           after the reset cannot be consumed by this tick's drain,
           and a CAS that fails before the reset belongs to a reply
           already buffered, which this tick's service pass flushes. *)
        Atomic.set t.wake_flag false
      end;
      if accepting && List.mem t.listener rset then accept_new t;
      let now = Tsj_util.Timer.now () in
      List.iter
        (fun c ->
          if c.c_state = Live then begin
            service_conn t c scratch ~readable:(List.mem c.c_fd rset);
            (* Connection hygiene.  A peer that will not drain its
               socket must not hold an unbounded output buffer; an idle
               peer must not hold an fd forever.  Both closes are normal
               operation (counted as [reaped]), not quarantine-worthy
               faults. *)
            if c.c_state = Live then begin
              let out_len, busy =
                Mutex.protect t.io_mutex (fun () ->
                    (Netbuf.length c.c_out, c.c_async > 0))
              in
              if out_len > t.config.max_out_bytes then begin
                ignore (Atomic.fetch_and_add t.counters.reaped 1);
                close_conn t c
              end
              else
                match t.config.idle_timeout_s with
                | Some idle
                  when (not busy) && out_len = 0
                       && now -. c.c_last_active > idle ->
                  ignore (Atomic.fetch_and_add t.counters.reaped 1);
                  close_conn t c
                | _ -> ()
            end;
            if c.c_state = Live && should_close t c ~now then close_conn t c
          end)
        conns;
      tick ()
    end
  in
  tick ()

(* --- follower side --- *)

(* While this node lacks the write mandate, keep a stream open from
   whichever peer in [sync_from] currently is the primary: send the
   SYNC hello, then feed every pushed line to the replica state machine
   under the store mutex.  A refused/broken stream rotates to the next
   address with a capped backoff; promotion or drain ends the loop. *)
let follower_loop t =
  let delay = ref 0.02 in
  let stream_from addr =
    match Client.connect addr with
    | Error _ -> ()
    | Ok conn ->
      let ic, oc = Client.channels conn in
      t.follower_fd <- Some (Client.fd conn);
      let send line =
        output_string oc line;
        output_char oc '\n';
        flush oc
      in
      Mutex.protect t.store_mutex (fun () ->
          Replica.stream_started t.replica (Protocol.addr_to_string addr));
      (try
         send (Mutex.protect t.store_mutex (fun () -> Replica.hello t.replica));
         let rec go () =
           let line = input_line ic in
           if not (Atomic.get t.draining) then begin
             match
               Mutex.protect t.commit_mutex (fun () ->
                   Mutex.protect t.store_mutex (fun () -> Replica.feed t.replica line))
             with
             | Replica.Reply r ->
               send r;
               delay := 0.02;
               go ()
             | Replica.Final r -> send r
             | Replica.Stop _ -> ()
           end
         in
         go ()
       with
      | End_of_file | Sys_error _ | Unix.Unix_error _ -> ()
      | Fault.Injected _ -> ());
      Mutex.protect t.store_mutex (fun () -> Replica.stream_lost t.replica);
      t.follower_fd <- None;
      Client.close conn
  in
  let rec loop () =
    if not (Atomic.get t.draining || Replica.is_primary t.replica) then begin
      List.iter
        (fun addr ->
          if not (Atomic.get t.draining || Replica.is_primary t.replica) then
            stream_from addr)
        t.config.sync_from;
      if not (Atomic.get t.draining || Replica.is_primary t.replica) then begin
        Thread.delay !delay;
        delay := Float.min 0.5 (!delay *. 2.0)
      end;
      loop ()
    end
  in
  loop ()

(* --- lifecycle --- *)

(* A reply written to a connection the client just closed must surface
   as EPIPE (quarantining that connection) — never as a process-killing
   SIGPIPE.  Not available on Windows, hence the guard. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let bind_listener addr =
  match addr with
  | Protocol.Unix_path path ->
    if Sys.file_exists path then Sys.remove path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Protocol.Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 64;
    fd

let create config =
  if config.tau < 0 then Error "negative threshold"
  else if config.domains < 1 then Error "domains must be >= 1"
  else if config.max_inflight < 0 then Error "max_inflight must be >= 0"
  else if config.drain_budget_s < 0.0 then Error "negative drain budget"
  else if config.quorum < 1 then Error "quorum must be >= 1"
  else if config.max_batch < 1 then Error "max_batch must be >= 1"
  else if (match config.rate with Some r -> r <= 0.0 | None -> false) then
    Error "rate must be > 0"
  else if config.burst < 1 then Error "burst must be >= 1"
  else if (match config.idle_timeout_s with Some s -> s <= 0.0 | None -> false)
  then Error "idle timeout must be > 0"
  else if config.max_out_bytes < 1 then Error "max_out_bytes must be >= 1"
  else if (match config.max_conns with Some m -> m < 1 | None -> false) then
    Error "max_conns must be >= 1"
  else
    (* Self-healing open: a journal record that rotted on disk is
       refetched from a quorum peer (the [--replica-of] list) as a
       tree via [GET] and re-rendered into its canonical line. *)
    let heal =
      match config.sync_from with
      | [] -> None
      | peers ->
        Some
          (fun seq ->
            List.find_map
              (fun addr ->
                let rng = Tsj_util.Prng.create (0x4EA1 + seq) in
                match
                  Client.request_with_retries ~attempts:2 ~timeout_s:2.0 ~rng addr
                    (Protocol.Get seq)
                with
                | Ok (Protocol.Tree_reply { tree; _ }) ->
                  Some (Store.render_record ~seq tree)
                | _ -> None)
              peers)
    in
    match
      Store.open_ ?dir:config.dir ~domains:config.domains ~dedup:config.dedup
        ?heal ~quarantine:config.quarantine ~tau:config.tau ()
    with
    | Error m -> Error m
    | Ok store -> (
      match bind_listener config.addr with
      | exception Unix.Unix_error (e, _, arg) ->
        Error
          (Printf.sprintf "bind %s: %s (%s)"
             (Protocol.addr_to_string config.addr)
             (Unix.error_message e) arg)
      | listener ->
        Unix.set_nonblock listener;
        let wake_r, wake_w = Unix.pipe () in
        Unix.set_nonblock wake_r;
        Unix.set_nonblock wake_w;
        let cluster = Cluster.create ~quorum:config.quorum () in
        (* Everything restored from disk was acknowledged (or became
           canon through promotion) in a previous life. *)
        Cluster.set_acked_high cluster (Store.n_trees store);
        Ok
          {
            config;
            store;
            replica = Replica.create ~primary:config.primary store;
            cluster;
            listener;
            store_mutex = Mutex.create ();
            commit_mutex = Mutex.create ();
            listener_closed = Atomic.make false;
            counters =
              {
                queries = Atomic.make 0;
                adds = Atomic.make 0;
                shed = Atomic.make 0;
                degraded = Atomic.make 0;
                errors = Atomic.make 0;
                inflight = Atomic.make 0;
                expired = Atomic.make 0;
                accept_pauses = Atomic.make 0;
                reaped = Atomic.make 0;
              };
            draining = Atomic.make false;
            drained = Atomic.make false;
            aborted = Atomic.make false;
            quarantined = Atomic.make [];
            budgets = Hashtbl.create 16;
            budgets_mutex = Mutex.create ();
            next_token = Atomic.make 0;
            io_mutex = Mutex.create ();
            conns = Hashtbl.create 16;
            conns_mutex = Mutex.create ();
            addq = Queue.create ();
            addq_mutex = Mutex.create ();
            addq_cond = Condition.create ();
            runq = Queue.create ();
            runq_mutex = Mutex.create ();
            runq_cond = Condition.create ();
            wake_r;
            wake_w;
            wake_flag = Atomic.make false;
            drain_force_at = Atomic.make infinity;
            loop_thread = None;
            committer_thread = None;
            query_thread = None;
            follower_thread = None;
            follower_fd = None;
            sync_threads = [];
            sync_mutex = Mutex.create ();
            scrubber = None;
            next_conn = 0;
            accept_pause_until = 0.0;
            h_query = Admission.Histogram.create ();
            h_knn = Admission.Histogram.create ();
            h_add = Admission.Histogram.create ();
          })

let start t =
  ignore_sigpipe ();
  if t.config.handle_sigterm then
    Sys.set_signal Sys.sigterm
      (Sys.Signal_handle (fun _ -> ignore (Thread.create (fun () -> do_drain t) ())));
  t.loop_thread <- Some (Thread.create (fun () -> event_loop t) ());
  t.committer_thread <- Some (Thread.create (fun () -> committer_loop t) ());
  t.query_thread <- Some (Thread.create (fun () -> query_loop t) ());
  if t.config.sync_from <> [] && not (Replica.is_primary t.replica) then
    t.follower_thread <- Some (Thread.create (fun () -> follower_loop t) ());
  match t.config.scrub_interval_s with
  | None -> ()
  | Some interval_s ->
    (* A scrub step holds the write lock (then the store lock): a
       repair is a flush, and flushing concurrently with a group
       commit's unlocked journal phase would corrupt the journal it is
       trying to heal.  The IO budget keeps the stall per tick small. *)
    t.scrubber <-
      Some
        (Scrub.start ~interval_s (fun () ->
             if not (Atomic.get t.draining) then
               ignore
                 (Mutex.protect t.commit_mutex (fun () ->
                      Mutex.protect t.store_mutex (fun () ->
                          Store.scrub_step ~budget:t.config.scrub_budget t.store)))))

let drain t = do_drain t

let drained t = Atomic.get t.drained

(* Test hook modelling [kill -9] in-process: sever every fd and stop
   every loop without flushing, truncating or snapshotting anything —
   recovery must come from the journal alone. *)
let abort t =
  Atomic.set t.aborted true;
  Atomic.set t.drain_force_at 0.0;
  Atomic.set t.draining true;
  (* The crash model must not leave a live scrubber behind: a repair
     flush racing a test's re-open of the same directory would rewrite
     the files out from under it.  Steps already no-op once draining is
     set, so the join is prompt. *)
  (match t.scrubber with
  | Some s ->
    Scrub.stop s;
    t.scrubber <- None
  | None -> ());
  (if not (Atomic.exchange t.listener_closed true) then begin
     (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
     try Unix.close t.listener with Unix.Unix_error _ -> ()
   end);
  (match t.config.addr with
  | Protocol.Unix_path p -> ( try Sys.remove p with Sys_error _ -> ())
  | Protocol.Tcp _ -> ());
  (match t.follower_fd with
  | Some fd -> (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
  | None -> ());
  Mutex.protect t.conns_mutex (fun () ->
      Hashtbl.iter
        (fun _ c ->
          try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        t.conns);
  Cluster.seal t.cluster;
  Mutex.protect t.addq_mutex (fun () -> Condition.broadcast t.addq_cond);
  Mutex.protect t.runq_mutex (fun () -> Condition.broadcast t.runq_cond);
  wake t

let wait t =
  (match t.loop_thread with Some th -> Thread.join th | None -> ());
  (match t.committer_thread with Some th -> Thread.join th | None -> ());
  (match t.query_thread with Some th -> Thread.join th | None -> ());
  (match t.follower_thread with Some th -> Thread.join th | None -> ());
  List.iter Thread.join (Mutex.protect t.sync_mutex (fun () -> t.sync_threads));
  (* A graceful drain is complete only once the store is flushed; an
     abort leaves the store as-is by design. *)
  if Atomic.get t.draining && not (Atomic.get t.aborted) then
    while not (Atomic.get t.drained) do
      Thread.yield ()
    done

let store t = t.store

let replica t = t.replica

let quarantined t = List.rev (Atomic.get t.quarantined)
