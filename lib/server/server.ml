module Fault = Tsj_util.Fault_inject
module Budget = Tsj_join.Budget
module Types = Tsj_join.Types

type config = {
  addr : Protocol.addr;
  tau : int;
  dir : string option;  (** journal/snapshot directory; [None] = ephemeral *)
  domains : int;  (** verification parallelism per query *)
  max_inflight : int;  (** admission watermark; beyond it, [BUSY] *)
  deadline_s : float option;  (** per-request deadline *)
  drain_budget_s : float;  (** how long drain waits for inflight work *)
  max_line_bytes : int;  (** request lines longer than this are rejected *)
  handle_sigterm : bool;  (** install a SIGTERM -> drain handler *)
  quorum : int;  (** durable copies (incl. own journal) before ADDED *)
  sync_from : Protocol.addr list;  (** peers to stream from when not primary *)
  primary : bool;  (** start with the write mandate *)
  peer_timeout_s : float;  (** replica-stream socket timeout on the primary *)
}

let default_config addr ~tau =
  {
    addr;
    tau;
    dir = None;
    domains = 1;
    max_inflight = 64;
    deadline_s = None;
    drain_budget_s = 5.0;
    max_line_bytes = 1 lsl 20;
    handle_sigterm = false;
    quorum = 1;
    sync_from = [];
    primary = true;
    peer_timeout_s = 5.0;
  }

type counters = {
  queries : int Atomic.t;
  adds : int Atomic.t;
  shed : int Atomic.t;
  degraded : int Atomic.t;
  errors : int Atomic.t;
  inflight : int Atomic.t;
}

type t = {
  config : config;
  store : Store.t;
  replica : Replica.t;
  cluster : Cluster.t;
  listener : Unix.file_descr;
  store_mutex : Mutex.t;
  counters : counters;
  draining : bool Atomic.t;
  drained : bool Atomic.t;
  quarantined : Types.quarantined list Atomic.t;
  (* live budgets by connection id, cancelled when the drain deadline
     passes so a stuck request cannot outlive the drain window *)
  budgets : (int, Budget.t) Hashtbl.t;
  budgets_mutex : Mutex.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  conns_mutex : Mutex.t;
  mutable accept_thread : Thread.t option;
  mutable conn_threads : Thread.t list;
  mutable follower_thread : Thread.t option;
  mutable follower_fd : Unix.file_descr option;
  mutable next_conn : int;
}

let quarantine t ~conn_id reason =
  let record = { Types.q_i = conn_id; q_j = None; q_reason = reason } in
  let rec loop () =
    let old = Atomic.get t.quarantined in
    if not (Atomic.compare_and_set t.quarantined old (record :: old)) then loop ()
  in
  loop ()

let register_budget t conn_id budget =
  Mutex.protect t.budgets_mutex (fun () -> Hashtbl.replace t.budgets conn_id budget)

let unregister_budget t conn_id =
  Mutex.protect t.budgets_mutex (fun () -> Hashtbl.remove t.budgets conn_id)

let stats t =
  {
    Protocol.trees = Store.n_trees t.store;
    tau = Store.tau t.store;
    queries = Atomic.get t.counters.queries;
    adds = Atomic.get t.counters.adds;
    shed = Atomic.get t.counters.shed;
    degraded = Atomic.get t.counters.degraded;
    errors = Atomic.get t.counters.errors;
    quarantined = List.length (Atomic.get t.quarantined);
    inflight = Atomic.get t.counters.inflight;
    draining = Atomic.get t.draining;
    journal_records = Store.journal_records t.store;
    epoch = Store.epoch t.store;
    primary = Replica.is_primary t.replica;
  }

(* --- request execution --- *)

(* Execute one parsed request.  Work-bearing requests pass admission
   control first: the inflight counter is bumped optimistically and the
   request is shed with an explicit [BUSY] if the watermark was already
   reached — deterministic, never a silent drop.  Each admitted request
   gets its own [Budget] (carrying the configured deadline) registered
   under the connection id so drain can cancel it. *)
let execute t ~conn_id (request : Protocol.request) : Protocol.response * bool =
  match request with
  | Stats -> (Stats_reply (stats t), false)
  | Health -> (Health_reply { draining = Atomic.get t.draining }, false)
  | Drain -> (Drained, true)
  | Sync _ -> (Err "SYNC is handled at the connection layer", false)
  | Ack _ -> (Err "ACKED outside a sync stream", false)
  | Promote ->
    (* Persist the bumped epoch (journal header) before the mandate
       flips, then treat the promoted node's whole state as acked: it
       was chosen as the most advanced surviving replica. *)
    let epoch, n =
      Mutex.protect t.store_mutex (fun () ->
          (Replica.promote t.replica, Store.n_trees t.store))
    in
    Cluster.set_acked_high t.cluster n;
    (Promoted epoch, false)
  | Add _ when not (Replica.is_primary t.replica) ->
    (* A node without the write mandate never accepts a write: the
       client fails over.  Split-brain is refused structurally, before
       any journal touch. *)
    (Fenced (Store.epoch t.store), false)
  | Query _ | Knn _ | Add _ ->
    let inflight = Atomic.fetch_and_add t.counters.inflight 1 in
    if inflight >= t.config.max_inflight || Atomic.get t.draining then begin
      ignore (Atomic.fetch_and_add t.counters.inflight (-1));
      if inflight >= t.config.max_inflight then begin
        ignore (Atomic.fetch_and_add t.counters.shed 1);
        (Busy, false)
      end
      else (Err "draining: not accepting new work", false)
    end
    else begin
      let budget = Budget.create ?time_budget_s:t.config.deadline_s () in
      register_budget t conn_id budget;
      let response =
        try
          match request with
          | Stats | Health | Drain | Sync _ | Ack _ | Promote -> assert false
          | Query { tau; tree } ->
            if tau > Store.tau t.store then
              Error
                (Printf.sprintf "QUERY: tau %d exceeds the index threshold %d" tau
                   (Store.tau t.store))
            else begin
              let r = Mutex.protect t.store_mutex (fun () -> Store.query ~budget ~tau t.store tree) in
              ignore (Atomic.fetch_and_add t.counters.queries 1);
              if r.Tsj_core.Incremental.degraded then
                ignore (Atomic.fetch_and_add t.counters.degraded 1);
              Ok
                (Protocol.Hits
                   { degraded = r.degraded; hits = r.hits; unverified = r.unverified })
            end
          | Knn { k; tree } ->
            let hits = Mutex.protect t.store_mutex (fun () -> Store.nearest ~k t.store tree) in
            ignore (Atomic.fetch_and_add t.counters.queries 1);
            Ok (Protocol.Hits { degraded = false; hits; unverified = [] })
          | Add { seq; tree } ->
            (* The write path: local durable add, then lock-step quorum
               replication — both under the cluster write lock so the
               stream stays in sequence order.  An idempotent replay of
               an already-acked seq skips replication: every replica
               holding fewer copies will skip it by seq anyway. *)
            Cluster.with_write t.cluster (fun () ->
                match
                  Mutex.protect t.store_mutex (fun () -> Store.add_seq t.store ?seq tree)
                with
                | Error reason -> Error reason
                | Ok (id, partners) ->
                  if id + 1 <= Cluster.acked_high t.cluster then begin
                    ignore (Atomic.fetch_and_add t.counters.adds 1);
                    Ok (Protocol.Added { id; partners })
                  end
                  else begin
                    let record_for i =
                      Mutex.protect t.store_mutex (fun () -> Store.record_for t.store i)
                    in
                    match Cluster.replicate t.cluster ~record_for ~seq:id with
                    | Cluster.Acks _ ->
                      ignore (Atomic.fetch_and_add t.counters.adds 1);
                      Ok (Protocol.Added { id; partners })
                    | Cluster.No_quorum copies ->
                      Error
                        (Printf.sprintf "%s: %d/%d durable copies"
                           (if Cluster.sealed t.cluster then
                              "draining: quorum abandoned"
                            else "quorum not reached")
                           copies (Cluster.quorum t.cluster))
                    | Cluster.Fenced_off epoch ->
                      Replica.demote t.replica;
                      Ok (Protocol.Fenced epoch)
                  end)
        with e -> Error (Printexc.to_string e)
      in
      unregister_budget t conn_id;
      ignore (Atomic.fetch_and_add t.counters.inflight (-1));
      match response with
      | Ok r -> (r, false)
      | Error reason ->
        ignore (Atomic.fetch_and_add t.counters.errors 1);
        (Err reason, false)
    end

(* --- connection handling --- *)

(* Read one line with a hard byte cap so a client streaming an endless
   line cannot exhaust memory; over-long lines are consumed to the next
   newline and answered [ERR]. *)
let read_line_bounded ic ~max_bytes =
  let b = Buffer.create 256 in
  let rec loop overflow =
    match input_char ic with
    | exception End_of_file -> if Buffer.length b = 0 && not overflow then None else Some (Buffer.contents b, overflow)
    | '\n' -> Some (Buffer.contents b, overflow)
    | c ->
      if Buffer.length b >= max_bytes then loop true
      else begin
        Buffer.add_char b c;
        loop overflow
      end
  in
  loop false

let trim_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let rec do_drain t =
  (* Idempotent: the first caller wins; later calls (second DRAIN,
     SIGTERM after DRAIN) are no-ops. *)
  if not (Atomic.exchange t.draining true) then begin
    (* Stop accepting.  [shutdown] (not just [close]) is what actually
       wakes a thread blocked in [accept] on Linux. *)
    (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    (match t.config.addr with
    | Protocol.Unix_path p -> ( try Sys.remove p with Sys_error _ -> ())
    | Protocol.Tcp _ -> ());
    (* Let inflight work finish within the drain budget... *)
    let deadline = Tsj_util.Timer.now () +. t.config.drain_budget_s in
    let rec wait () =
      if Atomic.get t.counters.inflight > 0 && Tsj_util.Timer.now () < deadline then begin
        Thread.yield ();
        wait ()
      end
    in
    wait ();
    (* ...then shed what remains: cancel every live budget so budgeted
       work degrades and returns instead of running past the drain. *)
    Mutex.protect t.budgets_mutex (fun () ->
        Hashtbl.iter (fun _ b -> Budget.cancel b) t.budgets);
    let rec wait_cancelled () =
      if Atomic.get t.counters.inflight > 0 && Tsj_util.Timer.now () < deadline +. 1.0
      then begin
        Thread.yield ();
        wait_cancelled ()
      end
    in
    wait_cancelled ();
    (* Nudge idle connections out of their blocking read. *)
    Mutex.protect t.conns_mutex (fun () ->
        Hashtbl.iter
          (fun _ fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
          t.conns);
    (match t.follower_fd with
    | Some fd -> (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    | None -> ());
    (* Seal replication: waits out any quorum write still in flight (by
       taking the write lock) and makes later ones fail with an explicit
       ERR instead of being half-replicated under a closing server. *)
    Cluster.seal t.cluster;
    (* Flush: snapshot + header-only journal, so a cold start is clean.
       A primary first discards any suffix that never reached quorum —
       the snapshot must not contain adds no client was acknowledged —
       and bumps the epoch so a replica still holding that suffix
       re-syncs by truncation instead of diverging. *)
    Mutex.protect t.store_mutex (fun () ->
        let acked = Cluster.acked_high t.cluster in
        if Replica.is_primary t.replica && acked < Store.n_trees t.store then begin
          Store.truncate_to t.store acked;
          Store.set_epoch t.store ~epoch:(Store.epoch t.store + 1) ~base:acked
        end;
        Store.close t.store);
    Atomic.set t.drained true
  end

and handle_sync t ~conn_id ~fd ~ic ~oc ~reply ~f_epoch =
  (* Upgrade this connection into a replication stream.  A hung replica
     must not hang the primary's write path: the stream socket gets a
     receive timeout, and a timed-out peer is dropped (it re-syncs). *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.peer_timeout_s
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  let send line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let recv () =
    match read_line_bounded ic ~max_bytes:t.config.max_line_bytes with
    | Some (line, false) -> trim_cr line
    | Some (_, true) | None -> raise End_of_file
  in
  let close_fd () =
    Mutex.protect t.conns_mutex (fun () -> Hashtbl.remove t.conns conn_id);
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let locked f = Mutex.protect t.store_mutex f in
  match
    Cluster.serve_sync t.cluster
      ~epoch:(fun () -> locked (fun () -> Store.epoch t.store))
      ~base:(fun () -> locked (fun () -> Store.epoch_base t.store))
      ~n_trees:(fun () -> locked (fun () -> Store.n_trees t.store))
      ~record_for:(fun i -> locked (fun () -> Store.record_for t.store i))
      ~primary:(fun () -> Replica.is_primary t.replica)
      ~peer_id:(Printf.sprintf "conn-%d" conn_id)
      ~f_epoch ~send ~recv ~close:close_fd
  with
  | `Streaming ->
    (* The fd now belongs to the cluster (closed by seal/drop). *)
    Mutex.protect t.conns_mutex (fun () -> Hashtbl.remove t.conns conn_id);
    `Handoff
  | `Fenced epoch ->
    (* The requester holds a higher epoch than ours: we lost the write
       mandate somewhere along the way. *)
    Replica.demote t.replica;
    reply (Protocol.Fenced epoch);
    `Close
  | `Refused reason ->
    ignore (Atomic.fetch_and_add t.counters.errors 1);
    reply (Protocol.Err ("sync refused: " ^ reason));
    `Close

and handle_connection t conn_id fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let reply r =
    output_string oc (Protocol.render_response r);
    output_char oc '\n';
    flush oc
  in
  let close () =
    Mutex.protect t.conns_mutex (fun () -> Hashtbl.remove t.conns conn_id);
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let rec serve request_no =
    match read_line_bounded ic ~max_bytes:t.config.max_line_bytes with
    | None -> close ()
    | Some (line, overflow) ->
      (* The per-request fault point: an [Injected] raise here models a
         request handler crash and must quarantine only this connection. *)
      Fault.hit "server.request" request_no;
      let continue =
        if overflow then begin
          ignore (Atomic.fetch_and_add t.counters.errors 1);
          reply (Err (Printf.sprintf "request line exceeds %d bytes" t.config.max_line_bytes));
          `Continue
        end
        else
          let line = trim_cr line in
          if String.trim line = "" then `Continue (* ignore blank lines *)
          else
            match Protocol.parse_request line with
            | Error reason ->
              (* Malformed input is this client's problem only: answer
                 [ERR] and keep the connection. *)
              ignore (Atomic.fetch_and_add t.counters.errors 1);
              reply (Err reason);
              `Continue
            | Ok (Protocol.Sync { epoch = f_epoch; from_seq = _ }) ->
              handle_sync t ~conn_id ~fd ~ic ~oc ~reply ~f_epoch
            | Ok request ->
              let response, drain_requested = execute t ~conn_id request in
              reply response;
              if drain_requested then do_drain t;
              if drain_requested then `Close else `Continue
      in
      match continue with
      | `Continue when not (Atomic.get t.draining) -> serve (request_no + 1)
      | `Continue | `Close -> close ()
      | `Handoff -> () (* the cluster owns the fd now *)
  in
  try serve 0 with
  | Fault.Injected msg ->
    quarantine t ~conn_id (Types.Verify_failed ("server.request: " ^ msg));
    unregister_budget t conn_id;
    close ()
  | End_of_file | Sys_error _ | Unix.Unix_error _ ->
    (* Client went away mid-request; nothing shared is poisoned. *)
    quarantine t ~conn_id (Types.Preprocess_failed "connection lost");
    unregister_budget t conn_id;
    close ()
  | e ->
    quarantine t ~conn_id (Types.Verify_failed (Printexc.to_string e));
    unregister_budget t conn_id;
    close ()

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.draining) then begin
      match Unix.accept t.listener with
      | exception Unix.Unix_error _ -> if not (Atomic.get t.draining) then loop ()
      | fd, _ ->
        let conn_id = t.next_conn in
        t.next_conn <- conn_id + 1;
        (match Fault.hit "server.accept" conn_id with
        | exception Fault.Injected msg ->
          (* An injected accept-path fault drops this connection only. *)
          quarantine t ~conn_id (Types.Preprocess_failed ("server.accept: " ^ msg));
          (try Unix.close fd with Unix.Unix_error _ -> ())
        | () ->
          Mutex.protect t.conns_mutex (fun () -> Hashtbl.replace t.conns conn_id fd);
          let th = Thread.create (fun () -> handle_connection t conn_id fd) () in
          t.conn_threads <- th :: t.conn_threads);
        loop ()
    end
  in
  loop ()

(* --- follower side --- *)

(* While this node lacks the write mandate, keep a stream open from
   whichever peer in [sync_from] currently is the primary: send the
   SYNC hello, then feed every pushed line to the replica state machine
   under the store mutex.  A refused/broken stream rotates to the next
   address with a capped backoff; promotion or drain ends the loop. *)
let follower_loop t =
  let delay = ref 0.02 in
  let stream_from addr =
    match Client.connect addr with
    | Error _ -> ()
    | Ok conn ->
      let ic, oc = Client.channels conn in
      t.follower_fd <- Some (Client.fd conn);
      let send line =
        output_string oc line;
        output_char oc '\n';
        flush oc
      in
      (try
         send (Mutex.protect t.store_mutex (fun () -> Replica.hello t.replica));
         let rec go () =
           let line = input_line ic in
           if not (Atomic.get t.draining) then begin
             match Mutex.protect t.store_mutex (fun () -> Replica.feed t.replica line) with
             | Replica.Reply r ->
               send r;
               delay := 0.02;
               go ()
             | Replica.Final r -> send r
             | Replica.Stop _ -> ()
           end
         in
         go ()
       with
      | End_of_file | Sys_error _ | Unix.Unix_error _ -> ()
      | Fault.Injected _ -> ());
      t.follower_fd <- None;
      Client.close conn
  in
  let rec loop () =
    if not (Atomic.get t.draining || Replica.is_primary t.replica) then begin
      List.iter
        (fun addr ->
          if not (Atomic.get t.draining || Replica.is_primary t.replica) then
            stream_from addr)
        t.config.sync_from;
      if not (Atomic.get t.draining || Replica.is_primary t.replica) then begin
        Thread.delay !delay;
        delay := Float.min 0.5 (!delay *. 2.0)
      end;
      loop ()
    end
  in
  loop ()

(* --- lifecycle --- *)

(* A reply written to a connection the client just closed must surface
   as EPIPE (quarantining that connection) — never as a process-killing
   SIGPIPE.  Not available on Windows, hence the guard. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let bind_listener addr =
  match addr with
  | Protocol.Unix_path path ->
    if Sys.file_exists path then Sys.remove path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Protocol.Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 64;
    fd

let create config =
  if config.tau < 0 then Error "negative threshold"
  else if config.domains < 1 then Error "domains must be >= 1"
  else if config.max_inflight < 0 then Error "max_inflight must be >= 0"
  else if config.drain_budget_s < 0.0 then Error "negative drain budget"
  else if config.quorum < 1 then Error "quorum must be >= 1"
  else
    match Store.open_ ?dir:config.dir ~domains:config.domains ~tau:config.tau () with
    | Error m -> Error m
    | Ok store -> (
      match bind_listener config.addr with
      | exception Unix.Unix_error (e, _, arg) ->
        Error (Printf.sprintf "bind %s: %s (%s)" (Protocol.addr_to_string config.addr)
                 (Unix.error_message e) arg)
      | listener ->
        let cluster = Cluster.create ~quorum:config.quorum () in
        (* Everything restored from disk was acknowledged (or became
           canon through promotion) in a previous life. *)
        Cluster.set_acked_high cluster (Store.n_trees store);
        Ok
          {
            config;
            store;
            replica = Replica.create ~primary:config.primary store;
            cluster;
            listener;
            store_mutex = Mutex.create ();
            counters =
              {
                queries = Atomic.make 0;
                adds = Atomic.make 0;
                shed = Atomic.make 0;
                degraded = Atomic.make 0;
                errors = Atomic.make 0;
                inflight = Atomic.make 0;
              };
            draining = Atomic.make false;
            drained = Atomic.make false;
            quarantined = Atomic.make [];
            budgets = Hashtbl.create 16;
            budgets_mutex = Mutex.create ();
            conns = Hashtbl.create 16;
            conns_mutex = Mutex.create ();
            accept_thread = None;
            conn_threads = [];
            follower_thread = None;
            follower_fd = None;
            next_conn = 0;
          })

let start t =
  ignore_sigpipe ();
  if t.config.handle_sigterm then
    Sys.set_signal Sys.sigterm
      (Sys.Signal_handle
         (fun _ -> ignore (Thread.create (fun () -> do_drain t) ())));
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  if t.config.sync_from <> [] && not (Replica.is_primary t.replica) then
    t.follower_thread <- Some (Thread.create (fun () -> follower_loop t) ())

let drain t = do_drain t

let drained t = Atomic.get t.drained

(* Test hook modelling [kill -9] in-process: sever every fd and stop
   every loop without flushing, truncating or snapshotting anything —
   recovery must come from the journal alone. *)
let abort t =
  Atomic.set t.draining true;
  (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  (match t.config.addr with
  | Protocol.Unix_path p -> ( try Sys.remove p with Sys_error _ -> ())
  | Protocol.Tcp _ -> ());
  (match t.follower_fd with
  | Some fd -> (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
  | None -> ());
  Mutex.protect t.conns_mutex (fun () ->
      Hashtbl.iter
        (fun _ fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        t.conns);
  Cluster.seal t.cluster

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (match t.follower_thread with Some th -> Thread.join th | None -> ());
  List.iter Thread.join t.conn_threads

let store t = t.store

let replica t = t.replica

let quarantined t = List.rev (Atomic.get t.quarantined)
