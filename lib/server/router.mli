(** Scatter-gather router of the sharded similarity-search service.

    The router owns the {e global} sequence space: every acked [ADD] is
    bound to a {b gid} (global id) recorded in a ledger mapping
    [gid -> (shard, lseq, size)], where [lseq] is the sequence number
    the owning shard's replica group assigned.  Placement is by
    {!Shard.shard_of_size}, so a query's size window [size ± τ'] maps to
    the bounded shard subset {!Shard.shards_for} — with the default band
    width, at most two shards per query regardless of cluster size.

    {b Writes.}  [add] routes the tree to its band's shard through
    {!Client.Failover} (quorum ack, epoch fencing and primary rotation
    all live below, in the shard's replica group), then appends the
    ledger entry {e before} acking the caller: an acked gid is always
    recoverable.  With a ledger file, entries are checksummed lines
    flushed through {!Tsj_util.Durable} — a router restart replays them
    (dropping a torn tail) and then {e reconciles} against the shards:
    any lseq a shard acked that the ledger missed (the router died
    between shard ack and ledger append) is adopted via [GET] and given
    a fresh gid, so no shard-durable tree is ever orphaned.

    {b Reads.}  [query]/[knn] fan out to the window's shards, one
    thread per shard, each with its own {!Client.Failover} whose socket
    timeout is the {e per-shard deadline}.  A shard that answers late,
    is partitioned or is down does not fail the request: the merge
    degrades it — every ledger-resident tree of the silent shard whose
    size is inside the window contributes the sound
    {!Shard.sandwich} [\[lo, hi\]] bound instead of an exact distance
    (the same shape the server's own deadline budget produces), and the
    answer is marked degraded.  The pure merge lives in {!Merge} so the
    property tests and the wire fuzzer can drive it directly.

    With [hedge_s] set, each shard read is {e hedged}: if no reply has
    arrived after that threshold, a second leg races the first on the
    rotated address list (a slow primary races a replica) and the first
    well-formed [HITS] wins.  Replicas serve the same lseq-ordered
    store, so hedging changes tail latency, never the answer.  A
    caller's remaining deadline (the [@<ms>] token, see {!Protocol}) is
    propagated to the shards minus [margin_ms], so the router can still
    merge and answer inside what the caller waits for; an
    already-expired work request is answered [ERR deadline expired]
    without touching any shard.

    {b Migration.}  A shard moves by journal streaming, verbatim: the
    operator starts the target node with [sync_from] pointing at the
    source primary (a [SYNC] from sequence 0 — the full snapshot), and
    {!migrate} pauses the shard's writes (in-flight adds drain under the
    shard write lock), waits until the target's tree count reaches the
    source's, promotes the target (the epoch bump fences the source so
    a partitioned old primary can never accept a write again), and
    swaps the group's address list.  No acked ADD can be lost: acked
    means quorum-journaled at the source, the stream replays the whole
    journal, and the pause guarantees nothing lands between the count
    check and the cutover. *)

type answer = {
  a_degraded : bool;
  a_hits : (int * int) list;
      (** [(gid, distance)], sorted by distance then gid — the same
          order the unsharded index answers in. *)
  a_unverified : (int * int * int) list;
      (** [(gid, lo, hi)] sound bound sandwiches, sorted by gid: trees
          the router could not get an exact distance for (silent shard,
          shard-side deadline) whose lower bound does not already
          exclude them. *)
}

(** The pure scatter-gather merge — no sockets, no threads; the fuzzer
    feeds it garbage and the qcheck suite proves its soundness. *)
module Merge : sig
  type shard_answer =
    | Answer of {
        degraded : bool;
        hits : (int * int) list;  (** shard-local [(lseq, distance)] *)
        unverified : (int * int * int) list;  (** [(lseq, lo, hi)] *)
      }  (** What the shard said (possibly malformed — ids are checked). *)
    | Unreachable
        (** Dead, partitioned, or over its per-shard deadline. *)

  val query :
    query_size:int ->
    tau:int ->
    to_gid:(shard:int -> int -> int option) ->
    resident:(shard:int -> (int * int) list) ->
    (int * shard_answer) list ->
    answer
  (** Merge per-shard answers to a τ-query over a tree of [query_size]
      nodes.  [to_gid] translates a shard-local id ([None] = unknown:
      the hit is dropped and the answer degraded — a malformed reply
      never invents a result); [resident ~shard] lists the ledger's
      [(gid, size)] pairs for that shard (the merge window-filters).
      Policy: an [Unreachable] shard degrades the answer and
      contributes a {!Shard.sandwich} for each in-window resident;
      exact distances win over sandwiches for the same gid; duplicate
      sandwiches widen ([min lo, max hi] — conservative under
      conflicting claims); exact hits outside [0, tau] and malformed
      sandwiches are dropped as invalid (and degrade the answer);
      sandwiches whose [lo] exceeds [tau] are pruned (provably not a
      hit). *)

  val knn :
    k:int ->
    query_size:int ->
    tau:int ->
    to_gid:(shard:int -> int -> int option) ->
    resident:(shard:int -> (int * int) list) ->
    (int * shard_answer) list ->
    answer
  (** Merge per-shard top-k answers ([tau] is the {e index} threshold
      bounding every distance).  The union of per-shard top-k lists
      contains every global top-k member (the global order [(d, gid)]
      restricted to one shard is the shard's own order), so sorting the
      union and keeping [k] reproduces the unsharded answer
      bit-identically when nothing is degraded.  Degradation rules are
      those of {!query}. *)
end

(** Static cluster description the router is created from. *)
type config = {
  map : Shard.map;
  tau : int;  (** index threshold every shard was started with *)
  groups : Protocol.addr list array;
      (** [groups.(s)] = the replica group serving shard [s]; length
          must equal [map.shards], every list non-empty. *)
  timeout_s : float;  (** per-shard deadline (socket send/recv bound) *)
  attempts : int;  (** failover attempts across one shard's group *)
  ledger : string option;  (** checksummed ledger journal path *)
  seed : int;  (** PRNG seed for the failover jitter *)
  hedge_s : float option;
      (** hedged-read latency threshold: a shard read still unanswered
          after this long fires a second leg on the rotated address
          list; [None] disables hedging *)
  margin_ms : int;
      (** response margin subtracted from a caller's remaining deadline
          before it is handed to the shards *)
}

type t

val create : config -> (t, string) result
(** Load the ledger (when configured), rewrite away any torn tail, and
    reconcile against every reachable shard (unreachable shards are
    skipped — their orphans are adopted by the next {!reconcile}). *)

val close : t -> unit
(** Close the ledger channel (idempotent). *)

val n_trees : t -> int
(** Number of gids bound — the next gid to be assigned. *)

val map : t -> Shard.map

val tau : t -> int

val locate : t -> int -> (int * int * int) option
(** [locate t gid] is [Some (shard, lseq, size)], or [None] if unbound. *)

val group_addrs : t -> int -> Protocol.addr list
(** The current address list of a shard's replica group. *)

val set_group_addrs : t -> int -> Protocol.addr list -> unit
(** Repoint a shard's group (a failover the operator resolved by hand);
    {!migrate} is the checked path. *)

val add : ?expect:int -> t -> Tsj_tree.Tree.t -> (int * (int * int) list, string) result
(** Route, quorum-commit, ledger, ack: [Ok (gid, partners)] where the
    partners are the {e same-shard} join partners translated to gids
    (cross-shard partners are a [query] away — the ADD path stays a
    single-shard write).  [Error] after the shard's ack is impossible
    to observe for ledgerless routers; with a ledger, a disk fault on
    the append surfaces as [Error] and the entry is adopted by
    reconciliation instead of being lost.  [expect] is the front-end's
    idempotency hook: the add fails with ["seq gap: ..."] {e before}
    touching any shard unless the next gid equals [expect]. *)

val query : t -> ?deadline_ms:int -> tau:int -> Tsj_tree.Tree.t -> answer
(** Scatter to {!Shard.shards_for}, gather with per-shard deadlines,
    {!Merge.query}.  Total: a cluster with every shard dead answers
    [{a_degraded = true; ...}], never an error.  [deadline_ms] is the
    caller's remaining budget; the shards are handed the remainder
    minus [margin_ms] (monotonically non-increasing, see
    {!Admission.Deadline.after_hop}).
    @raise Invalid_argument if [tau] is negative or above the index
    threshold. *)

val knn : t -> ?deadline_ms:int -> k:int -> Tsj_tree.Tree.t -> answer
(** Scatter a top-k to the index-τ window's shards, {!Merge.knn}.
    [deadline_ms] as in {!query}.
    @raise Invalid_argument if [k < 0]. *)

val hedges : t -> int * int
(** [(fired, wins)]: hedge legs fired past the latency threshold, and
    how many of those supplied the winning answer.  [(0, 0)] unless
    [hedge_s] is set. *)

val scrub_ledger : t -> int * Integrity.corrupt list
(** One ledger scrub pass: re-read the file and verify every line (and
    the seal sidecar) against the canonical entries regenerated from
    the in-memory maps, which are authoritative — each entry passed its
    checksum when applied.  Disk-level rot is repaired by an atomic
    rewrite + reseal; a read fault (EIO) is surfaced as a finding but
    not repaired over.  Returns [(lines_verified, findings)]; counters
    flow into {!stats} ([scrubbed], [crc_failures], [repaired]).
    No-op [(0, \[\])] on a ledgerless router. *)

val reconcile : t -> int
(** Adopt every shard-acked tree the ledger does not know (see module
    doc); returns how many were adopted.  Unreachable shards are
    skipped. *)

val migrate :
  ?deadline_s:float ->
  t ->
  shard:int ->
  target:Protocol.addr list ->
  (unit, string) result
(** Cut shard [shard] over to [target] (module doc).  The target's
    first address must already be streaming from the source
    ([sync_from] at startup).  [deadline_s] (default 30) bounds the
    catch-up wait.  On [Error] nothing was swapped and the source keeps
    serving.  @raise Invalid_argument on a bad shard or empty target. *)

val stats : t -> Protocol.stats_reply
(** Aggregate view: [trees] = gid count (so {!Client.Failover.add}
    pointed at a router front-end learns the right next seq),
    [journal_records] = ledger entries, router-side counters for
    queries/adds/degraded/errors; [epoch = 0], [primary = true]. *)

(** Line-protocol front-end: the router served over the same wire
    grammar as a single node, so every existing client ([tsj query],
    {!Client.Failover}) talks to a sharded cluster unchanged. *)
type front

val start_front : t -> Protocol.addr -> (front, string) result
(** Bind, accept, one thread per connection.  [QUERY]/[KNN]/[ADD]/
    [GET]/[STATS]/[HEALTH]/[DRAIN] are served; replication verbs are
    refused with [ERR].  [ADD <seq>] honors the idempotency contract:
    [seq] names a gid — the next gid commits normally, an already-bound
    gid is replayed to its owning shard (which verifies the tree and
    answers the original reply), a gap is [ERR "seq gap: ..."].  A
    work request carrying [@<ms>] propagates its remaining budget to
    the shards (minus [margin_ms]); one arriving already expired is
    answered [ERR deadline expired]. *)

val stop_front : front -> unit
(** Stop accepting, close the listener (existing connections finish
    their current line and then see EOF on the next read). *)
