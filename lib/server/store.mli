(** Durable state of the similarity-search service: a streaming
    {!Tsj_core.Incremental} index plus a crash-safe persistence pair —
    an atomic snapshot and an append-only, checksummed journal (WAL).

    Write path of {!add}: the record

    {v add <seq> <bracket-tree> <fnv1a64-checksum> v}

    is appended and flushed {e before} the tree enters the in-memory
    index ([seq] = the tree id it creates), so an acknowledged [ADD]
    survives a crash at any later point.  {!flush} writes a fresh
    snapshot (atomic tmp + rename, {!Tsj_core.Search.save_collection}
    format) and then truncates the journal; a crash between the two
    steps only leaves journal records the snapshot already covers, which
    replay skips by [seq].  {!open_} replays the journal over the
    snapshot: a torn tail (an undecodable final record — a partial
    write from a crash mid-append) is dropped and the journal rewritten
    to its valid prefix, while an undecodable record {e followed by}
    valid ones is real corruption and fails the open.

    The [server.journal] fault-injection point fires once per journal
    write batch, just before the first byte is written (payload = the
    first fresh [seq] of the batch; for a single {!add} that is the
    add's own seq): arming it models a crash that loses exactly the
    unacknowledged batch.  While armed, its hit count equals the number
    of durability forces, which is how the group-commit tests count
    fsyncs per acked ADD.

    {b Replication state.}  The journal's first line is the epoch
    header [epoch <e> <base> <crc>]: [e] is the monotonic failover
    epoch and [base] the first sequence number of that epoch (the
    promotion point).  The header is only written by whole-file atomic
    renames ({!flush}, {!set_epoch}, the torn-tail rewrite), never by
    appends, so it cannot be torn; pre-replication journals have no
    header and read as epoch 0, base 0.  {!apply_record} and
    {!record_for} are the two halves of journal streaming: a primary
    regenerates any record from its in-memory trees (so a replica can
    catch up from an arbitrary seq even after the primary's journal was
    truncated into its snapshot — a snapshot transfer is just streaming
    from 0), and a replica applies pushed records with the same
    durability-before-visibility discipline as {!add}. *)

type t

val open_ :
  ?dir:string ->
  ?domains:int ->
  ?dedup:bool ->
  ?heal:(int -> string option) ->
  ?quarantine:bool ->
  tau:int ->
  unit ->
  (t, string) result
(** [open_ ~dir ~tau ()] loads (or initialises) the store rooted at
    [dir] — [dir/snapshot] and [dir/journal], creating the directory if
    needed.

    {b Self-healing open.}  A journal record that fails its checksum
    {e mid-file} (real corruption, not a torn tail) is offered to
    [heal]: called with the missing sequence number, it may return the
    canonical record line — the quorum-refetch path a replica uses —
    and a healed record is spliced in as if it had never rotted.  When
    healing fails, [quarantine] (default [false]) decides: [true] moves
    the unrepairable suffix to [journal.quarantine] (counted in
    {!scrub_counters}, the store opens and serves the surviving prefix
    — degraded, never wrong), [false] refuses the open as before.  A
    snapshot whose integrity seal fails is likewise quarantined (moved
    aside; a replica refills from the quorum by syncing from 0) or
    refused.  An existing snapshot's τ overrides the requested one: a
    restart must reproduce the pre-crash index, and the partitioning
    grain δ = 2τ + 1 is baked into it.  Without [dir] the store is
    ephemeral (no journal, no snapshot).  [domains] (default 1) is the
    verification parallelism used by {!query}.  [dedup] (default
    [false]) enables whole-tree deduplication: a seq-less ADD of a tree
    the store already holds is answered as the original tree's id with
    the original partner list — bit-identical to an idempotent replay —
    and is neither journaled nor indexed, so duplicates cost no disk
    write, no index growth, and nothing on the replication stream.
    Explicit-seq adds keep their retry semantics unchanged.  {!dedups}
    counts the suppressed duplicates. *)

val tau : t -> int

val n_trees : t -> int

val journal_records : t -> int
(** Records currently in the journal (0 right after {!flush}). *)

val fsyncs : t -> int
(** Durability forces (journal flushes) since open — one per {!add},
    one per {!add_batch} with at least one fresh record, one per
    {!apply_record}.  [fsyncs / adds] is the group-commit amortization
    the serving bench reports. *)

val dedups : t -> int
(** Duplicate ADDs suppressed by the dedup layer since open (0 unless
    the store was opened with [~dedup:true]). *)

val tree : t -> int -> Tsj_tree.Tree.t

val epoch : t -> int
(** The replication epoch from the journal header (0 for a store that
    never saw a failover). *)

val epoch_base : t -> int
(** First sequence number of the current epoch (the promotion point). *)

val scrub_counters : t -> int * int * int * int
(** [(records_verified, crc_failures, ranges_repaired, quarantined)]
    since open — the integrity telemetry surfaced through [STATS].
    [crc_failures] counts every checksum/seal finding (at open or by
    {!scrub_step}), [ranges_repaired] counts healed records plus scrub
    repairs plus anti-entropy range repairs ({!note_repaired}), and
    [quarantined] counts records and snapshots moved aside as
    unrepairable. *)

val note_repaired : t -> int -> unit
(** Credit [n] repairs to {!scrub_counters} — the anti-entropy layer
    calls this after transferring a diverging range. *)

val digest : t -> lo:int -> hi:int -> string
(** Merkle digest of the canonical records [\[lo, hi)] — the [DIGEST]
    wire verb's answer.  @raise Invalid_argument if the range exceeds
    the tree count. *)

val merkle_root : t -> string
(** [digest ~lo:0 ~hi:(n_trees t)]. *)

type scrub_report = {
  sc_verified : int;  (** records re-checked this step *)
  sc_findings : Integrity.corrupt list;  (** corruptions detected *)
  sc_repaired : int;  (** repairs applied (snapshot/journal rewritten) *)
}

val scrub_step : ?budget:int -> t -> scrub_report
(** One incremental scrub pass: re-read up to [budget] (default 128)
    journal records from disk and verify their checksums and content
    against the in-memory index (which is authoritative — every record
    passed its CRC when applied), rotating a cursor so successive steps
    cover the whole journal; when the cursor wraps, also verify the
    epoch header and the journal/snapshot seals.  Disk-level
    corruption is repaired by converging disk to memory ({!flush} — a
    fresh sealed snapshot and an empty journal); a read fault (EIO) is
    surfaced as a finding but not "repaired" over.  Counters flow into
    {!scrub_counters}. *)

val add : t -> Tsj_tree.Tree.t -> int * (int * int) list
(** Journal (durably), then index.  Returns the new tree's id and its
    join partners, as {!Tsj_core.Incremental.add}. *)

val add_seq :
  t -> ?seq:int -> Tsj_tree.Tree.t -> (int * (int * int) list, string) result
(** {!add} with the wire protocol's idempotency contract: without [seq]
    it is exactly {!add}; with [seq] equal to the next sequence it adds;
    with [seq] already bound to the {e same} tree it re-answers the
    original acknowledgement (recomputed partners, bit-identical, no
    write); a different tree at [seq] or a gap is an [Error]. *)

val add_batch :
  t ->
  (int option * Tsj_tree.Tree.t) array ->
  (int * (int * int) list, string) result array
(** Group commit: apply a batch of [(seq, tree)] items with the same
    per-item semantics as {!add_seq} applied left to right — the result
    array is positionally identical — but with {e one} journal flush
    for all fresh records of the batch.  Nothing enters the index until
    the whole batch is durable, so a crash during the flush loses an
    all-unacknowledged batch and an acked record never precedes a lost
    one.  A replay item may reference a seq fresh in the same batch.
    A disk fault during the journal phase fails {e every} item of the
    batch with the typed error text (see {!journal_staged}); the store
    itself stays consistent and continues serving. *)

type staged
(** A classified batch between {!stage_batch} and {!index_staged}:
    sequence numbers are assigned but nothing is journaled or visible
    yet. *)

val stage_batch : t -> (int option * Tsj_tree.Tree.t) array -> staged
(** Phase 1 of {!add_batch}: classify the batch (fresh / replay /
    dedup / bad) and reserve sequence numbers against the current
    index.  Reads the index, writes nothing — call it under the same
    lock as {!query}. *)

val journal_staged : t -> staged -> (unit, string) result
(** Phase 2: append the staged fresh records and force durability with
    one flush (the [server.journal] hit point fires first).  Touches
    only the journal, never the index, so a caller may run it {e
    without} holding its read lock — the whole point of the split: the
    flush is the phase with unbounded filesystem latency, and holding
    the read lock across it would stall every concurrent query behind
    one slow disk write.  Callers must serialize writers themselves
    (stage → journal → index sequences must not interleave).

    A disk fault ({!Tsj_util.Durable.Disk_fault} from a short write or
    a failed flush — see the [durable.*] hit points) is surfaced as
    [Error]: nothing of the batch is durable or visible, the journal is
    rewritten to its valid prefix (so the torn bytes of a short write
    cannot corrupt the next append), and the caller must {e not} call
    {!index_staged}.  An armed [server.journal] raise
    ({!Tsj_util.Fault_inject.Injected}) still propagates — that models
    a crash, not a surviving I/O error. *)

val index_staged : t -> staged -> (int * (int * int) list, string) result array
(** Phase 3: make the batch visible (index fresh trees, answer replays)
    and return the positional results, as {!add_batch}.  Call it under
    the read lock, after {!journal_staged} returned — durability before
    visibility. *)

val apply_record : t -> string -> (int, string) result
(** Apply one raw journal record line pushed over a replication stream:
    re-verify the checksum, journal + flush {e before} indexing, skip
    idempotently if already applied.  Returns the store's new tree
    count ([ACKED] payload); [Error] on corruption or a sequence gap. *)

val record_for : t -> int -> string
(** The journal record line for the tree at [seq], regenerated from the
    in-memory index — valid even after the journal was truncated into a
    snapshot.  @raise Invalid_argument if [seq] is out of range. *)

val render_record : seq:int -> Tsj_tree.Tree.t -> string
(** The canonical record line binding [tree] to [seq], for trees not
    held by any local store — the [heal] path of {!open_} regenerates
    a rotted journal record from a tree fetched off a quorum peer. *)

val set_epoch : t -> epoch:int -> base:int -> unit
(** Adopt (or create, on promotion) an epoch: snapshot, then atomically
    rewrite the journal to a header-only file carrying [epoch]/[base].
    A crash between the two steps keeps the old epoch and loses no
    data. *)

val truncate_to : t -> int -> unit
(** Discard every tree with id >= [n] (a demoted primary's unacked
    suffix), rebuild the index from the surviving prefix and persist it
    (snapshot + header-only journal).  No-op if the store holds at most
    [n] trees. *)

val query :
  ?budget:Tsj_join.Budget.t ->
  ?tau:int ->
  t ->
  Tsj_tree.Tree.t ->
  Tsj_core.Incremental.query_result
(** Similarity search at [tau] (default: store τ), fanned over the
    store's [domains]; see {!Tsj_core.Incremental.query}. *)

val nearest : k:int -> t -> Tsj_tree.Tree.t -> (int * int) list

val flush : t -> unit
(** Snapshot atomically, then reset the journal.  No-op for an
    ephemeral store. *)

val close : t -> unit
(** {!flush} and release the journal handle. *)
