(** Durable state of the similarity-search service: a streaming
    {!Tsj_core.Incremental} index plus a crash-safe persistence pair —
    an atomic snapshot and an append-only, checksummed journal (WAL).

    Write path of {!add}: the record

    {v add <seq> <bracket-tree> <fnv1a64-checksum> v}

    is appended and flushed {e before} the tree enters the in-memory
    index ([seq] = the tree id it creates), so an acknowledged [ADD]
    survives a crash at any later point.  {!flush} writes a fresh
    snapshot (atomic tmp + rename, {!Tsj_core.Search.save_collection}
    format) and then truncates the journal; a crash between the two
    steps only leaves journal records the snapshot already covers, which
    replay skips by [seq].  {!open_} replays the journal over the
    snapshot: a torn tail (an undecodable final record — a partial
    write from a crash mid-append) is dropped and the journal rewritten
    to its valid prefix, while an undecodable record {e followed by}
    valid ones is real corruption and fails the open.

    The [server.journal] fault-injection point fires in {!add} just
    before the journal write (payload = [seq]): arming it models a
    crash that loses exactly the unacknowledged add. *)

type t

val open_ : ?dir:string -> ?domains:int -> tau:int -> unit -> (t, string) result
(** [open_ ~dir ~tau ()] loads (or initialises) the store rooted at
    [dir] — [dir/snapshot] and [dir/journal], creating the directory if
    needed.  An existing snapshot's τ overrides the requested one: a
    restart must reproduce the pre-crash index, and the partitioning
    grain δ = 2τ + 1 is baked into it.  Without [dir] the store is
    ephemeral (no journal, no snapshot).  [domains] (default 1) is the
    verification parallelism used by {!query}. *)

val tau : t -> int

val n_trees : t -> int

val journal_records : t -> int
(** Records currently in the journal (0 right after {!flush}). *)

val tree : t -> int -> Tsj_tree.Tree.t

val add : t -> Tsj_tree.Tree.t -> int * (int * int) list
(** Journal (durably), then index.  Returns the new tree's id and its
    join partners, as {!Tsj_core.Incremental.add}. *)

val query :
  ?budget:Tsj_join.Budget.t ->
  ?tau:int ->
  t ->
  Tsj_tree.Tree.t ->
  Tsj_core.Incremental.query_result
(** Similarity search at [tau] (default: store τ), fanned over the
    store's [domains]; see {!Tsj_core.Incremental.query}. *)

val nearest : k:int -> t -> Tsj_tree.Tree.t -> (int * int) list

val flush : t -> unit
(** Snapshot atomically, then reset the journal.  No-op for an
    ephemeral store. *)

val close : t -> unit
(** {!flush} and release the journal handle. *)
