module Fault = Tsj_util.Fault_inject

exception Fenced_exn of int

type peer = {
  id : string;
  send : string -> unit;
  recv : unit -> string;
  close : unit -> unit;
  mutable pos : int;  (* next sequence number this peer needs *)
  mutable alive : bool;
}

type t = {
  quorum : int;
  lock : Mutex.t;  (* the write lock: serializes adds, registration, seal *)
  mutable peers : peer list;
  mutable acked_high : int;
  mutable sealed : bool;
}

let create ?(quorum = 1) () =
  if quorum < 1 then invalid_arg "Cluster.create: quorum must be >= 1";
  { quorum; lock = Mutex.create (); peers = []; acked_high = 0; sealed = false }

let quorum t = t.quorum

let acked_high t = t.acked_high

let set_acked_high t n =
  Mutex.protect t.lock (fun () -> t.acked_high <- max t.acked_high n)

let sealed t = t.sealed

let with_write t f = Mutex.protect t.lock f

let live_peers t =
  Mutex.protect t.lock (fun () ->
      List.filter_map (fun p -> if p.alive then Some p.id else None) t.peers)

(* Push one record and consume the ack, lock-step.  The follower
   answers [ACKED <n>] with [n] = its new tree count; an idempotent
   skip on its side can legitimately jump [pos] forward by more than
   one.  A [FENCED] reply means the follower holds a higher epoch (it
   was promoted): the caller must demote. *)
let push_record peer record =
  peer.send (Protocol.render_response (Protocol.Record record));
  let line = peer.recv () in
  match Protocol.parse_request line with
  | Ok (Protocol.Ack n) when n > peer.pos -> peer.pos <- n
  | Ok (Protocol.Ack n) ->
    failwith (Printf.sprintf "peer %s acked %d without progress from %d" peer.id n peer.pos)
  | _ -> (
    (* [FENCED] travels in the response grammar on this leg. *)
    match Protocol.parse_response line with
    | Ok (Protocol.Fenced e) -> raise (Fenced_exn e)
    | _ -> failwith (Printf.sprintf "peer %s broke the stream protocol: %S" peer.id line))

(* Idempotent: a peer dropped by a mid-replicate failure can be dropped
   again by {!seal}.  Closing its fd a second time would be a use-after-
   free of the descriptor NUMBER — in-process, the number may already
   belong to a freshly accepted connection of another server, which the
   stray close would silently kill. *)
let drop_peer peer =
  if peer.alive then begin
    peer.alive <- false;
    try peer.close () with _ -> ()
  end

(* Replicate the record(s) up to [seq] to every live peer and count
   durable copies.  MUST be called with the write lock held (see
   {!with_write}): the stream is lock-step and ordered, so writes are
   serialized.  Counts the caller's own journaled copy as 1.  The
   [cluster.partition] hit point fires once per peer (payload = peer
   index): an [Injected] raise models a network partition and marks the
   peer dead until it re-syncs. *)
type outcome = Acks of int | No_quorum of int | Fenced_off of int

let replicate t ~record_for ~seq =
  if t.sealed then No_quorum 1
  else begin
    let fenced = ref None in
    let acks = ref 1 in
    List.iteri
      (fun idx peer ->
        if peer.alive && !fenced = None then
          match
            Fault.hit "cluster.partition" idx;
            while peer.pos <= seq do
              push_record peer (record_for peer.pos)
            done
          with
          | () -> incr acks
          | exception Fenced_exn e -> fenced := Some e
          | exception _ -> drop_peer peer)
      t.peers;
    match !fenced with
    | Some e -> Fenced_off e
    | None ->
      if !acks >= t.quorum then begin
        t.acked_high <- max t.acked_high (seq + 1);
        Acks !acks
      end
      else No_quorum !acks
  end

(* Final (locked) catch-up and registration: while the write lock is
   held no add can slip past, so the peer is exactly current when it
   enters the peer list.  An existing peer with the same id (a replica
   that reconnected) is replaced. *)
let register t peer ~upto ~record_for =
  Mutex.protect t.lock (fun () ->
      if t.sealed then begin
        drop_peer peer;
        Error "cluster is sealed (draining)"
      end
      else
        match
          let n = upto () in
          while peer.pos < n do
            push_record peer (record_for peer.pos)
          done
        with
        | () ->
          let old, rest = List.partition (fun p -> p.id = peer.id) t.peers in
          List.iter drop_peer old;
          t.peers <- rest @ [ peer ];
          Ok ()
        | exception Fenced_exn e ->
          drop_peer peer;
          Error (Printf.sprintf "peer fenced at epoch %d" e)
        | exception e ->
          drop_peer peer;
          Error (Printexc.to_string e))

(* Primary-side handling of a replica's [SYNC <epoch> <from_seq>]: the
   header/ack handshake, the bulk catch-up (outside the write lock) and
   the locked registration.  Store access goes through the caller's
   closures so the server can interpose its store mutex; the harness
   passes the store operations directly. *)
let serve_sync t ~epoch ~base ~n_trees ~record_for ~primary ~peer_id ~f_epoch ~send
    ~recv ~close =
  let e = epoch () in
  if f_epoch > e then `Fenced f_epoch
  else if not (primary ()) then `Refused "not primary"
  else
    match
      send
        (Protocol.render_response
           (Protocol.Sync_stream { epoch = e; base = base (); high = n_trees () }));
      match Protocol.parse_request (recv ()) with
      | Ok (Protocol.Ack pos) -> pos
      | _ -> failwith "expected ACKED after the stream header"
    with
    | exception ex ->
      close ();
      `Refused (Printexc.to_string ex)
    | pos ->
      if pos > n_trees () then begin
        close ();
        `Refused "replica is ahead of the primary"
      end
      else begin
        let peer = { id = peer_id; send; recv; close; pos; alive = true } in
        match
          while peer.pos < n_trees () do
            push_record peer (record_for peer.pos)
          done
        with
        | exception Fenced_exn ex ->
          drop_peer peer;
          `Refused (Printf.sprintf "peer fenced at epoch %d" ex)
        | exception ex ->
          drop_peer peer;
          `Refused (Printexc.to_string ex)
        | () -> (
          match register t peer ~upto:n_trees ~record_for with
          | Ok () -> `Streaming
          | Error msg -> `Refused msg)
      end

(* Abort replication for drain: refuse future replicates, close every
   peer stream, and — by taking the write lock — wait out any quorum
   write in flight, so drain never races a half-replicated add. *)
let seal t =
  Mutex.protect t.lock (fun () ->
      t.sealed <- true;
      List.iter drop_peer t.peers;
      t.peers <- [])
