module Tree = Tsj_tree.Tree
module Bracket = Tsj_tree.Bracket

(* --- addresses --- *)

type addr = Unix_path of string | Tcp of string * int

let addr_of_string s =
  let s = String.trim s in
  if s = "" then Error "empty address"
  else if String.contains s '/' || not (String.contains s ':') then Ok (Unix_path s)
  else begin
    let i = String.rindex s ':' in
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 ->
      Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
    | _ -> Error (Printf.sprintf "bad port %S in address %S" port s)
  end

let addr_to_string = function
  | Unix_path p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

(* --- requests --- *)

type request =
  | Query of { tau : int; tree : Tree.t }
  | Knn of { k : int; tree : Tree.t }
  | Add of { seq : int option; tree : Tree.t }
  | Stats
  | Health
  | Drain
  | Sync of { epoch : int; from_seq : int }
  | Ack of int
  | Get of int
  | Digest of { epoch : int; lo : int; hi : int }
  | Promote

let split_first_word s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
    (String.sub s 0 i, String.trim (String.sub s (i + 1) (String.length s - i - 1)))

(* Largest remaining-budget value the wire can carry: one below the
   binary frames' "absent" sentinel, so every clamped deadline encodes
   as a non-sentinel u32. *)
let max_deadline_ms = 0xFFFF_FFFE

(* An optional remaining-budget token "@<ms>" may precede the tree on
   QUERY/KNN/ADD (a bracket tree cannot start with '@', so the forms
   stay unambiguous).  A malformed token is a hard parse error — never
   silently treated as part of the tree — so garbage deadlines get a
   precise ERR instead of a confusing bracket diagnostic. *)
let take_deadline what raw =
  if String.length raw > 0 && raw.[0] = '@' then begin
    let arg, rest = split_first_word raw in
    let num = String.sub arg 1 (String.length arg - 1) in
    match int_of_string_opt num with
    | Some ms when ms >= 0 -> Ok (Some (min ms max_deadline_ms), rest)
    | _ ->
      Error
        (Printf.sprintf "%s: bad deadline token %S (expected @<milliseconds>)"
           what arg)
  end
  else Ok (None, raw)

(* A request whose integer argument fails to parse, whose tree is
   malformed (diagnosed by the located bracket parser) or whose verb is
   unknown yields [Error reason] — never an exception.  The server turns
   the reason into an [ERR] reply.  The second component of the result
   is the remaining-budget deadline in milliseconds, when present. *)
let parse_request_d line =
  let int_and_tree what raw k =
    let arg, rest = split_first_word raw in
    match int_of_string_opt arg with
    | None -> Error (Printf.sprintf "%s: expected an integer, found %S" what arg)
    | Some n -> (
      match take_deadline what rest with
      | Error e -> Error e
      | Ok (deadline, rest) -> (
        if rest = "" then Error (Printf.sprintf "%s: missing tree" what)
        else
          match Bracket.of_string rest with
          | Error msg -> Error (Printf.sprintf "%s: %s" what msg)
          | Ok tree -> k n deadline tree))
  in
  let verb, rest = split_first_word line in
  match String.uppercase_ascii verb with
  | "QUERY" ->
    int_and_tree "QUERY" rest (fun tau deadline tree ->
        if tau < 0 then Error "QUERY: negative threshold"
        else Ok (Query { tau; tree }, deadline))
  | "KNN" ->
    int_and_tree "KNN" rest (fun k deadline tree ->
        if k < 0 then Error "KNN: negative k" else Ok (Knn { k; tree }, deadline))
  | "ADD" -> (
    if rest = "" then Error "ADD: missing tree"
    else
      (* An optional client-chosen sequence number precedes the
         (optional) deadline token and the tree; a bracket tree cannot
         start with a digit, so the forms are unambiguous.  See the
         idempotency contract in the interface. *)
      let arg, after = split_first_word rest in
      match int_of_string_opt arg with
      | Some seq when seq < 0 -> Error "ADD: negative sequence number"
      | Some seq -> (
        match take_deadline "ADD" after with
        | Error e -> Error e
        | Ok (deadline, after) -> (
          if after = "" then Error "ADD: missing tree"
          else
            match Bracket.of_string after with
            | Error msg -> Error (Printf.sprintf "ADD: %s" msg)
            | Ok tree -> Ok (Add { seq = Some seq; tree }, deadline)))
      | None -> (
        match take_deadline "ADD" rest with
        | Error e -> Error e
        | Ok (deadline, rest) -> (
          if rest = "" then Error "ADD: missing tree"
          else
            match Bracket.of_string rest with
            | Error msg -> Error (Printf.sprintf "ADD: %s" msg)
            | Ok tree -> Ok (Add { seq = None; tree }, deadline))))
  | "SYNC" -> (
    match String.split_on_char ' ' rest with
    | [ e; s ] -> (
      match (int_of_string_opt e, int_of_string_opt s) with
      | Some epoch, Some from_seq when epoch >= 0 && from_seq >= 0 ->
        Ok (Sync { epoch; from_seq }, None)
      | _ -> Error "SYNC: expected two non-negative integers")
    | _ -> Error "SYNC: expected <epoch> <from_seq>")
  | "ACKED" -> (
    match int_of_string_opt rest with
    | Some seq when seq >= 0 -> Ok (Ack seq, None)
    | _ -> Error "ACKED: expected a non-negative integer")
  | "GET" -> (
    match int_of_string_opt rest with
    | Some seq when seq >= 0 -> Ok (Get seq, None)
    | _ -> Error "GET: expected a non-negative sequence number")
  | "DIGEST" -> (
    match String.split_on_char ' ' rest with
    | [ e; lo; hi ] -> (
      match (int_of_string_opt e, int_of_string_opt lo, int_of_string_opt hi) with
      | Some epoch, Some lo, Some hi when epoch >= 0 && 0 <= lo && lo <= hi ->
        Ok (Digest { epoch; lo; hi }, None)
      | _ -> Error "DIGEST: expected <epoch> <lo> <hi> with 0 <= lo <= hi")
    | _ -> Error "DIGEST: expected <epoch> <lo> <hi>")
  | "STATS" when rest = "" -> Ok (Stats, None)
  | "HEALTH" when rest = "" -> Ok (Health, None)
  | "DRAIN" when rest = "" -> Ok (Drain, None)
  | "PROMOTE" when rest = "" -> Ok (Promote, None)
  | ("STATS" | "HEALTH" | "DRAIN" | "PROMOTE") as v ->
    Error (Printf.sprintf "%s takes no arguments" v)
  | "" -> Error "empty request"
  | other ->
    Error
      (Printf.sprintf
         "unknown command %S (expected QUERY, KNN, ADD, GET, DIGEST, STATS, HEALTH, \
          DRAIN, SYNC, ACKED or PROMOTE)"
         other)

let parse_request line =
  match parse_request_d line with Ok (req, _) -> Ok req | Error _ as e -> e

let render_request_d ?deadline_ms req =
  let d =
    match deadline_ms with
    | None -> ""
    | Some ms -> Printf.sprintf "@%d " (max 0 (min ms max_deadline_ms))
  in
  match req with
  | Query { tau; tree } ->
    Printf.sprintf "QUERY %d %s%s" tau d (Bracket.to_string tree)
  | Knn { k; tree } -> Printf.sprintf "KNN %d %s%s" k d (Bracket.to_string tree)
  | Add { seq = None; tree } -> Printf.sprintf "ADD %s%s" d (Bracket.to_string tree)
  | Add { seq = Some seq; tree } ->
    Printf.sprintf "ADD %d %s%s" seq d (Bracket.to_string tree)
  | Stats -> "STATS"
  | Health -> "HEALTH"
  | Drain -> "DRAIN"
  | Sync { epoch; from_seq } -> Printf.sprintf "SYNC %d %d" epoch from_seq
  | Ack seq -> Printf.sprintf "ACKED %d" seq
  | Get seq -> Printf.sprintf "GET %d" seq
  | Digest { epoch; lo; hi } -> Printf.sprintf "DIGEST %d %d %d" epoch lo hi
  | Promote -> "PROMOTE"

let render_request req = render_request_d req

(* --- responses --- *)

type stats_reply = {
  trees : int;
  tau : int;
  queries : int;
  adds : int;
  shed : int;
  degraded : int;
  errors : int;
  quarantined : int;
  inflight : int;
  draining : bool;
  journal_records : int;
  epoch : int;
  primary : bool;
  dedup : int;
  scrubbed : int;  (** records re-verified by the background scrubber *)
  crc_failures : int;  (** checksum/seal findings (open + scrub) *)
  repaired : int;  (** healed records, scrub repairs, anti-entropy ranges *)
  expired : int;  (** requests dropped because their deadline had passed *)
  accept_pauses : int;  (** accept stalls after EMFILE/ENFILE *)
  reaped : int;  (** connections closed by hygiene (idle, overflow, max-conns) *)
  q_p50 : int;  (** QUERY service latency quantiles, µs (log-bucket) *)
  q_p95 : int;
  q_p99 : int;
  k_p50 : int;  (** KNN latency quantiles, µs *)
  k_p95 : int;
  k_p99 : int;
  a_p50 : int;  (** ADD latency quantiles, µs *)
  a_p95 : int;
  a_p99 : int;
}

type response =
  | Hits of {
      degraded : bool;
      hits : (int * int) list;  (** [(id, distance)] *)
      unverified : (int * int * int) list;  (** [(id, lower, upper)] *)
    }
  | Added of { id : int; partners : (int * int) list }
  | Tree_reply of { seq : int; tree : Tsj_tree.Tree.t }
  | Stats_reply of stats_reply
  | Health_reply of { draining : bool }
  | Drained
  | Busy of { retry_after_ms : int option }
      (** shed under overload; the hint, when present, is the earliest
          time a retry can be admitted *)
  | Err of string
  | Sync_stream of { epoch : int; base : int; high : int }
  | Record of string
  | Digest_reply of { epoch : int; lo : int; hi : int; digest : string }
  | Fenced of int
  | Promoted of int
  | Hello_reply of int
  | Redirect of string

(* Replies are single lines; strip any newline an error message smuggled
   in so the framing survives arbitrary reasons. *)
let one_line s =
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

let render_response r =
  let b = Buffer.create 64 in
  (match r with
  | Hits { degraded; hits; unverified } ->
    Buffer.add_string b
      (Printf.sprintf "HITS %d %d %d" (Bool.to_int degraded) (List.length hits)
         (List.length unverified));
    List.iter (fun (i, d) -> Buffer.add_string b (Printf.sprintf " %d:%d" i d)) hits;
    List.iter
      (fun (i, lo, hi) -> Buffer.add_string b (Printf.sprintf " %d:%d:%d" i lo hi))
      unverified
  | Added { id; partners } ->
    Buffer.add_string b (Printf.sprintf "ADDED %d %d" id (List.length partners));
    List.iter (fun (i, d) -> Buffer.add_string b (Printf.sprintf " %d:%d" i d)) partners
  | Tree_reply { seq; tree } ->
    Buffer.add_string b (Printf.sprintf "TREE %d %s" seq (Bracket.to_string tree))
  | Stats_reply s ->
    Buffer.add_string b
      (Printf.sprintf
         "STATS trees=%d tau=%d queries=%d adds=%d shed=%d degraded=%d errors=%d \
          quarantined=%d inflight=%d draining=%d journal=%d epoch=%d primary=%d \
          dedup=%d scrubbed=%d crc_failures=%d repaired=%d expired=%d \
          accept_pauses=%d reaped=%d q_p50=%d q_p95=%d q_p99=%d k_p50=%d \
          k_p95=%d k_p99=%d a_p50=%d a_p95=%d a_p99=%d"
         s.trees s.tau s.queries s.adds s.shed s.degraded s.errors s.quarantined
         s.inflight (Bool.to_int s.draining) s.journal_records s.epoch
         (Bool.to_int s.primary) s.dedup s.scrubbed s.crc_failures s.repaired
         s.expired s.accept_pauses s.reaped s.q_p50 s.q_p95 s.q_p99 s.k_p50
         s.k_p95 s.k_p99 s.a_p50 s.a_p95 s.a_p99)
  | Health_reply { draining } ->
    Buffer.add_string b (if draining then "OK draining" else "OK serving")
  | Drained -> Buffer.add_string b "OK drained"
  | Busy { retry_after_ms = None } -> Buffer.add_string b "BUSY"
  | Busy { retry_after_ms = Some ms } ->
    Buffer.add_string b (Printf.sprintf "BUSY %d" (max 0 ms))
  | Err reason -> Buffer.add_string b ("ERR " ^ one_line reason)
  | Sync_stream { epoch; base; high } ->
    Buffer.add_string b (Printf.sprintf "SYNC %d %d %d" epoch base high)
  | Record line -> Buffer.add_string b ("RECORD " ^ one_line line)
  | Digest_reply { epoch; lo; hi; digest } ->
    Buffer.add_string b (Printf.sprintf "DIGEST %d %d %d %s" epoch lo hi digest)
  | Fenced epoch -> Buffer.add_string b (Printf.sprintf "FENCED %d" epoch)
  | Promoted epoch -> Buffer.add_string b (Printf.sprintf "PROMOTED %d" epoch)
  | Hello_reply version -> Buffer.add_string b (Printf.sprintf "HELLO BIN %d" version)
  | Redirect addr -> Buffer.add_string b ("REDIRECT " ^ one_line addr));
  Buffer.contents b

let parse_pair s =
  match String.split_on_char ':' s with
  | [ i; d ] -> (
    match (int_of_string_opt i, int_of_string_opt d) with
    | Some i, Some d -> Some (i, d)
    | _ -> None)
  | _ -> None

let parse_triple s =
  match String.split_on_char ':' s with
  | [ i; lo; hi ] -> (
    match (int_of_string_opt i, int_of_string_opt lo, int_of_string_opt hi) with
    | Some i, Some lo, Some hi -> Some (i, lo, hi)
    | _ -> None)
  | _ -> None

let rec take_map f n = function
  | rest when n = 0 -> Some ([], rest)
  | [] -> None
  | x :: rest -> (
    match f x with
    | None -> None
    | Some y -> (
      match take_map f (n - 1) rest with
      | None -> None
      | Some (ys, rest) -> Some (y :: ys, rest)))

let parse_response line =
  let fail () = Error (Printf.sprintf "malformed reply %S" line) in
  let raw = String.trim line in
  (* RECORD carries a raw journal line whose spacing must survive the
     round trip, so it is split off before the word-based dispatch. *)
  if String.length raw > 7 && String.uppercase_ascii (String.sub raw 0 7) = "RECORD " then
    Ok (Record (String.trim (String.sub raw 7 (String.length raw - 7))))
  else if String.length raw > 5 && String.uppercase_ascii (String.sub raw 0 5) = "TREE " then begin
    (* Like RECORD, the payload is "<seq> <bracket-tree>" where the tree
       must keep its exact bytes — split it off before the word-based
       dispatch. *)
    let rest = String.trim (String.sub raw 5 (String.length raw - 5)) in
    match String.index_opt rest ' ' with
    | None -> fail ()
    | Some i -> (
      match
        ( int_of_string_opt (String.sub rest 0 i),
          Bracket.of_string (String.sub rest (i + 1) (String.length rest - i - 1)) )
      with
      | Some seq, Ok tree when seq >= 0 -> Ok (Tree_reply { seq; tree })
      | _ -> fail ())
  end
  else
  let words =
    List.filter (fun w -> w <> "") (String.split_on_char ' ' raw)
  in
  match words with
  | "HITS" :: deg :: nh :: nu :: rest -> (
    match (int_of_string_opt deg, int_of_string_opt nh, int_of_string_opt nu) with
    | Some deg, Some nh, Some nu when (deg = 0 || deg = 1) && nh >= 0 && nu >= 0 -> (
      match take_map parse_pair nh rest with
      | None -> fail ()
      | Some (hits, rest) -> (
        match take_map parse_triple nu rest with
        | Some (unverified, []) -> Ok (Hits { degraded = deg = 1; hits; unverified })
        | _ -> fail ()))
    | _ -> fail ())
  | "ADDED" :: id :: np :: rest -> (
    match (int_of_string_opt id, int_of_string_opt np) with
    | Some id, Some np when np >= 0 -> (
      match take_map parse_pair np rest with
      | Some (partners, []) -> Ok (Added { id; partners })
      | _ -> fail ())
    | _ -> fail ())
  | "STATS" :: fields -> (
    let tbl = Hashtbl.create 16 in
    let ok =
      List.for_all
        (fun f ->
          match String.index_opt f '=' with
          | None -> false
          | Some i -> (
            match int_of_string_opt (String.sub f (i + 1) (String.length f - i - 1)) with
            | None -> false
            | Some v ->
              Hashtbl.replace tbl (String.sub f 0 i) v;
              true))
        fields
    in
    let get k = Hashtbl.find_opt tbl k in
    match
      ( ok,
        get "trees",
        get "tau",
        get "queries",
        get "adds",
        get "shed",
        get "degraded",
        get "errors",
        get "quarantined",
        get "inflight",
        get "draining",
        get "journal",
        get "epoch",
        get "primary" )
    with
    | ( true,
        Some trees,
        Some tau,
        Some queries,
        Some adds,
        Some shed,
        Some degraded,
        Some errors,
        Some quarantined,
        Some inflight,
        Some draining,
        Some journal_records,
        Some epoch,
        Some primary ) ->
      Ok
        (Stats_reply
           {
             trees;
             tau;
             queries;
             adds;
             shed;
             degraded;
             errors;
             quarantined;
             inflight;
             draining = draining = 1;
             journal_records;
             epoch;
             primary = primary = 1;
             (* absent in replies from pre-dedup / pre-scrub /
                pre-overload servers *)
             dedup = Option.value (get "dedup") ~default:0;
             scrubbed = Option.value (get "scrubbed") ~default:0;
             crc_failures = Option.value (get "crc_failures") ~default:0;
             repaired = Option.value (get "repaired") ~default:0;
             expired = Option.value (get "expired") ~default:0;
             accept_pauses = Option.value (get "accept_pauses") ~default:0;
             reaped = Option.value (get "reaped") ~default:0;
             q_p50 = Option.value (get "q_p50") ~default:0;
             q_p95 = Option.value (get "q_p95") ~default:0;
             q_p99 = Option.value (get "q_p99") ~default:0;
             k_p50 = Option.value (get "k_p50") ~default:0;
             k_p95 = Option.value (get "k_p95") ~default:0;
             k_p99 = Option.value (get "k_p99") ~default:0;
             a_p50 = Option.value (get "a_p50") ~default:0;
             a_p95 = Option.value (get "a_p95") ~default:0;
             a_p99 = Option.value (get "a_p99") ~default:0;
           })
    | _ -> fail ())
  | [ "OK"; "serving" ] -> Ok (Health_reply { draining = false })
  | [ "OK"; "draining" ] -> Ok (Health_reply { draining = true })
  | [ "OK"; "drained" ] -> Ok Drained
  | [ "BUSY" ] -> Ok (Busy { retry_after_ms = None })
  | [ "BUSY"; ms ] -> (
    match int_of_string_opt ms with
    | Some ms when ms >= 0 -> Ok (Busy { retry_after_ms = Some ms })
    | _ -> fail ())
  | [ "SYNC"; e; b ] -> (
    (* Pre-binary stream header without the high-water mark: treat the
       base as the only known bound so staleness stays conservative. *)
    match (int_of_string_opt e, int_of_string_opt b) with
    | Some epoch, Some base when epoch >= 0 && base >= 0 ->
      Ok (Sync_stream { epoch; base; high = base })
    | _ -> fail ())
  | [ "SYNC"; e; b; h ] -> (
    match (int_of_string_opt e, int_of_string_opt b, int_of_string_opt h) with
    | Some epoch, Some base, Some high when epoch >= 0 && base >= 0 && high >= 0 ->
      Ok (Sync_stream { epoch; base; high = max base high })
    | _ -> fail ())
  | [ "DIGEST"; e; lo; hi; d ] -> (
    match (int_of_string_opt e, int_of_string_opt lo, int_of_string_opt hi) with
    | Some epoch, Some lo, Some hi
      when epoch >= 0 && 0 <= lo && lo <= hi && String.length d = 16 ->
      Ok (Digest_reply { epoch; lo; hi; digest = d })
    | _ -> fail ())
  | [ "HELLO"; "BIN"; v ] -> (
    match int_of_string_opt v with
    | Some version when version >= 1 -> Ok (Hello_reply version)
    | _ -> fail ())
  | [ "REDIRECT"; a ] -> Ok (Redirect a)
  | [ "FENCED"; e ] -> (
    match int_of_string_opt e with
    | Some epoch when epoch >= 0 -> Ok (Fenced epoch)
    | _ -> fail ())
  | [ "PROMOTED"; e ] -> (
    match int_of_string_opt e with
    | Some epoch when epoch >= 0 -> Ok (Promoted epoch)
    | _ -> fail ())
  | "ERR" :: _ -> Ok (Err (String.trim (String.sub raw 3 (String.length raw - 3))))
  | _ -> fail ()

(* --- binary framing --- *)

module Binary = struct
  (* v2 adds a remaining-budget deadline u32 to QUERY/KNN/ADD bodies.
     Both sides speak the min of their versions (negotiated via HELLO),
     so a v1 peer keeps the exact v1 layouts. *)
  let version = 2

  let hello v = Printf.sprintf "HELLO BIN %d" v

  let parse_hello line =
    match List.filter (fun w -> w <> "") (String.split_on_char ' ' (String.trim line)) with
    | [ h; b; v ]
      when String.uppercase_ascii h = "HELLO" && String.uppercase_ascii b = "BIN" -> (
      match int_of_string_opt v with Some v when v >= 1 -> Some v | _ -> None)
    | _ -> None

    (* Request opcodes. *)
  let op_query = 0x01
  let op_knn = 0x02
  let op_add = 0x03
  let op_stats = 0x04
  let op_health = 0x05
  let op_drain = 0x06
  let op_promote = 0x07

  (* Response opcodes (high bit set). *)
  let op_hits = 0x81
  let op_added = 0x82
  let op_stats_reply = 0x83
  let op_health_reply = 0x84
  let op_drained = 0x85
  let op_busy = 0x86
  let op_err = 0x87
  let op_fenced = 0x88
  let op_promoted = 0x89
  let op_redirect = 0x8A

  (* A u32 of all ones encodes "absent" for the optional fields
     (max_lag on reads, seq on ADD). *)
  let no_value = 0xFFFFFFFF

  let u32 b n = Buffer.add_int32_be b (Int32.of_int (n land no_value))

  let get_u32 s pos = Int32.to_int (String.get_int32_be s pos) land no_value

  let frame b ~id ~op body =
    u32 b (5 + String.length body);
    u32 b id;
    Buffer.add_char b (Char.chr op);
    Buffer.add_string b body

  let encode_request b ~id ?max_lag ?deadline_ms ?(version = version) req =
    let body = Buffer.create 64 in
    let lag = match max_lag with None -> no_value | Some l -> l land no_value in
    (* A v1 peer has no deadline field: the budget is silently dropped
       (the legacy server applies its own default), never mis-framed. *)
    let deadline =
      match deadline_ms with
      | None -> no_value
      | Some ms -> max 0 (min ms max_deadline_ms)
    in
    let put_deadline () = if version >= 2 then u32 body deadline in
    let op =
      match req with
      | Query { tau; tree } ->
        u32 body tau;
        u32 body lag;
        put_deadline ();
        Buffer.add_string body (Bracket.to_string tree);
        op_query
      | Knn { k; tree } ->
        u32 body k;
        u32 body lag;
        put_deadline ();
        Buffer.add_string body (Bracket.to_string tree);
        op_knn
      | Add { seq; tree } ->
        u32 body (match seq with None -> no_value | Some s -> s);
        put_deadline ();
        Buffer.add_string body (Bracket.to_string tree);
        op_add
      | Stats -> op_stats
      | Health -> op_health
      | Drain -> op_drain
      | Promote -> op_promote
      | Sync _ | Ack _ | Get _ | Digest _ ->
        invalid_arg "Binary.encode_request: replication/integrity verbs are text-only"
    in
    frame b ~id ~op (Buffer.contents body)

  (* [decode_request ~op ~body] returns the request plus the bounded-
     staleness bound and remaining-budget deadline carried by v2 frames;
     a malformed body yields [Error reason] (answered as an ERR frame),
     never an exception.  [version] is the connection's negotiated
     version: a v1 frame has no deadline field and decodes exactly as
     before. *)
  let decode_request ~version ~op ~body =
    let len = String.length body in
    let v2 = version >= 2 in
    let tree_at what pos =
      if len <= pos then Error (Printf.sprintf "%s frame: missing tree" what)
      else
        match Bracket.of_string (String.sub body pos (len - pos)) with
        | Ok tree -> Ok tree
        | Error msg -> Error (Printf.sprintf "%s: %s" what msg)
    in
    let opt_u32 pos =
      let v = get_u32 body pos in
      if v = no_value then None else Some v
    in
    let read what k =
      let header = if v2 then 12 else 8 in
      if len < header then Error (Printf.sprintf "%s frame: truncated header" what)
      else
        let n = get_u32 body 0 in
        let lag = opt_u32 4 in
        let deadline = if v2 then opt_u32 8 else None in
        match tree_at what header with
        | Error e -> Error e
        | Ok tree -> k n lag deadline tree
    in
    if op = op_query then
      read "QUERY" (fun tau lag deadline tree ->
          Ok (Query { tau; tree }, lag, deadline))
    else if op = op_knn then
      read "KNN" (fun k lag deadline tree -> Ok (Knn { k; tree }, lag, deadline))
    else if op = op_add then begin
      let header = if v2 then 8 else 4 in
      if len < header then Error "ADD frame: truncated header"
      else
        let seq = opt_u32 0 in
        let deadline = if v2 then opt_u32 4 else None in
        match tree_at "ADD" header with
        | Error e -> Error e
        | Ok tree -> Ok (Add { seq; tree }, None, deadline)
    end
    else if op = op_stats then Ok (Stats, None, None)
    else if op = op_health then Ok (Health, None, None)
    else if op = op_drain then Ok (Drain, None, None)
    else if op = op_promote then Ok (Promote, None, None)
    else Error (Printf.sprintf "unknown opcode 0x%02x" op)

  let encode_response b ~id resp =
    let body = Buffer.create 64 in
    let pairs ps = List.iter (fun (i, d) -> u32 body i; u32 body d) ps in
    let op =
      match resp with
      | Hits { degraded; hits; unverified } ->
        Buffer.add_char body (if degraded then '\001' else '\000');
        u32 body (List.length hits);
        u32 body (List.length unverified);
        pairs hits;
        List.iter (fun (i, lo, hi) -> u32 body i; u32 body lo; u32 body hi) unverified;
        op_hits
      | Added { id; partners } ->
        u32 body id;
        u32 body (List.length partners);
        pairs partners;
        op_added
      | Stats_reply s ->
        List.iter (u32 body)
          [ s.trees; s.tau; s.queries; s.adds; s.shed; s.degraded; s.errors;
            s.quarantined; s.inflight; Bool.to_int s.draining; s.journal_records;
            s.epoch; Bool.to_int s.primary; s.dedup; s.scrubbed; s.crc_failures;
            s.repaired; s.expired; s.accept_pauses; s.reaped; s.q_p50; s.q_p95;
            s.q_p99; s.k_p50; s.k_p95; s.k_p99; s.a_p50; s.a_p95; s.a_p99 ];
        op_stats_reply
      | Health_reply { draining } ->
        Buffer.add_char body (if draining then '\001' else '\000');
        op_health_reply
      | Drained -> op_drained
      | Busy { retry_after_ms } ->
        (match retry_after_ms with None -> () | Some ms -> u32 body (max 0 ms));
        op_busy
      | Err reason ->
        Buffer.add_string body reason;
        op_err
      | Fenced epoch ->
        u32 body epoch;
        op_fenced
      | Promoted epoch ->
        u32 body epoch;
        op_promoted
      | Redirect addr ->
        Buffer.add_string body addr;
        op_redirect
      | Sync_stream _ | Record _ | Hello_reply _ | Tree_reply _ | Digest_reply _ ->
        invalid_arg "Binary.encode_response: text-only response"
    in
    frame b ~id ~op (Buffer.contents body)

  let decode_response ~op ~body =
    let len = String.length body in
    let fail what = Error (Printf.sprintf "malformed %s frame" what) in
    if op = op_hits then begin
      if len < 9 then fail "HITS"
      else
        let degraded = body.[0] = '\001' in
        let nh = get_u32 body 1 and nu = get_u32 body 5 in
        if len <> 9 + (8 * nh) + (12 * nu) then fail "HITS"
        else
          let hits =
            List.init nh (fun i -> (get_u32 body (9 + (8 * i)), get_u32 body (13 + (8 * i))))
          in
          let base = 9 + (8 * nh) in
          let unverified =
            List.init nu (fun i ->
                ( get_u32 body (base + (12 * i)),
                  get_u32 body (base + 4 + (12 * i)),
                  get_u32 body (base + 8 + (12 * i)) ))
          in
          Ok (Hits { degraded; hits; unverified })
    end
    else if op = op_added then begin
      if len < 8 then fail "ADDED"
      else
        let id = get_u32 body 0 and np = get_u32 body 4 in
        if len <> 8 + (8 * np) then fail "ADDED"
        else
          let partners =
            List.init np (fun i -> (get_u32 body (8 + (8 * i)), get_u32 body (12 + (8 * i))))
          in
          Ok (Added { id; partners })
    end
    else if op = op_stats_reply then begin
      (* 52 bytes: pre-dedup frame (13 u32s); 56: pre-scrub (14);
         68: pre-overload (17); 116: current (29). *)
      if len <> 52 && len <> 56 && len <> 68 && len <> 116 then fail "STATS"
      else
        let f i = get_u32 body (4 * i) in
        let opt i = if len >= 4 * (i + 1) then f i else 0 in
        Ok
          (Stats_reply
             {
               trees = f 0;
               tau = f 1;
               queries = f 2;
               adds = f 3;
               shed = f 4;
               degraded = f 5;
               errors = f 6;
               quarantined = f 7;
               inflight = f 8;
               draining = f 9 = 1;
               journal_records = f 10;
               epoch = f 11;
               primary = f 12 = 1;
               dedup = opt 13;
               scrubbed = opt 14;
               crc_failures = opt 15;
               repaired = opt 16;
               expired = opt 17;
               accept_pauses = opt 18;
               reaped = opt 19;
               q_p50 = opt 20;
               q_p95 = opt 21;
               q_p99 = opt 22;
               k_p50 = opt 23;
               k_p95 = opt 24;
               k_p99 = opt 25;
               a_p50 = opt 26;
               a_p95 = opt 27;
               a_p99 = opt 28;
             })
    end
    else if op = op_health_reply then begin
      if len <> 1 then fail "HEALTH" else Ok (Health_reply { draining = body.[0] = '\001' })
    end
    else if op = op_drained then Ok Drained
    else if op = op_busy then begin
      (* Empty body: legacy BUSY.  4 bytes: the retry-after hint. *)
      if len = 0 then Ok (Busy { retry_after_ms = None })
      else if len = 4 then Ok (Busy { retry_after_ms = Some (get_u32 body 0) })
      else fail "BUSY"
    end
    else if op = op_err then Ok (Err body)
    else if op = op_fenced then begin
      if len <> 4 then fail "FENCED" else Ok (Fenced (get_u32 body 0))
    end
    else if op = op_promoted then begin
      if len <> 4 then fail "PROMOTED" else Ok (Promoted (get_u32 body 0))
    end
    else if op = op_redirect then Ok (Redirect body)
    else Error (Printf.sprintf "unknown response opcode 0x%02x" op)
end
