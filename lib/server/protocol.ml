module Tree = Tsj_tree.Tree
module Bracket = Tsj_tree.Bracket

(* --- addresses --- *)

type addr = Unix_path of string | Tcp of string * int

let addr_of_string s =
  let s = String.trim s in
  if s = "" then Error "empty address"
  else if String.contains s '/' || not (String.contains s ':') then Ok (Unix_path s)
  else begin
    let i = String.rindex s ':' in
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 ->
      Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
    | _ -> Error (Printf.sprintf "bad port %S in address %S" port s)
  end

let addr_to_string = function
  | Unix_path p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

(* --- requests --- *)

type request =
  | Query of { tau : int; tree : Tree.t }
  | Knn of { k : int; tree : Tree.t }
  | Add of { seq : int option; tree : Tree.t }
  | Stats
  | Health
  | Drain
  | Sync of { epoch : int; from_seq : int }
  | Ack of int
  | Promote

let split_first_word s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
    (String.sub s 0 i, String.trim (String.sub s (i + 1) (String.length s - i - 1)))

(* A request whose integer argument fails to parse, whose tree is
   malformed (diagnosed by the located bracket parser) or whose verb is
   unknown yields [Error reason] — never an exception.  The server turns
   the reason into an [ERR] reply. *)
let parse_request line =
  let int_and_tree what raw k =
    let arg, rest = split_first_word raw in
    match int_of_string_opt arg with
    | None -> Error (Printf.sprintf "%s: expected an integer, found %S" what arg)
    | Some n -> (
      if rest = "" then Error (Printf.sprintf "%s: missing tree" what)
      else
        match Bracket.of_string rest with
        | Error msg -> Error (Printf.sprintf "%s: %s" what msg)
        | Ok tree -> k n tree)
  in
  let verb, rest = split_first_word line in
  match String.uppercase_ascii verb with
  | "QUERY" ->
    int_and_tree "QUERY" rest (fun tau tree ->
        if tau < 0 then Error "QUERY: negative threshold"
        else Ok (Query { tau; tree }))
  | "KNN" ->
    int_and_tree "KNN" rest (fun k tree ->
        if k < 0 then Error "KNN: negative k" else Ok (Knn { k; tree }))
  | "ADD" -> (
    if rest = "" then Error "ADD: missing tree"
    else
      (* An optional client-chosen sequence number precedes the tree; a
         bracket tree cannot start with a digit, so the forms are
         unambiguous.  See the idempotency contract in the interface. *)
      let arg, after = split_first_word rest in
      match int_of_string_opt arg with
      | Some seq when seq < 0 -> Error "ADD: negative sequence number"
      | Some seq -> (
        if after = "" then Error "ADD: missing tree"
        else
          match Bracket.of_string after with
          | Error msg -> Error (Printf.sprintf "ADD: %s" msg)
          | Ok tree -> Ok (Add { seq = Some seq; tree }))
      | None -> (
        match Bracket.of_string rest with
        | Error msg -> Error (Printf.sprintf "ADD: %s" msg)
        | Ok tree -> Ok (Add { seq = None; tree })))
  | "SYNC" -> (
    match String.split_on_char ' ' rest with
    | [ e; s ] -> (
      match (int_of_string_opt e, int_of_string_opt s) with
      | Some epoch, Some from_seq when epoch >= 0 && from_seq >= 0 ->
        Ok (Sync { epoch; from_seq })
      | _ -> Error "SYNC: expected two non-negative integers")
    | _ -> Error "SYNC: expected <epoch> <from_seq>")
  | "ACKED" -> (
    match int_of_string_opt rest with
    | Some seq when seq >= 0 -> Ok (Ack seq)
    | _ -> Error "ACKED: expected a non-negative integer")
  | "STATS" when rest = "" -> Ok Stats
  | "HEALTH" when rest = "" -> Ok Health
  | "DRAIN" when rest = "" -> Ok Drain
  | "PROMOTE" when rest = "" -> Ok Promote
  | ("STATS" | "HEALTH" | "DRAIN" | "PROMOTE") as v ->
    Error (Printf.sprintf "%s takes no arguments" v)
  | "" -> Error "empty request"
  | other ->
    Error
      (Printf.sprintf
         "unknown command %S (expected QUERY, KNN, ADD, STATS, HEALTH, DRAIN, SYNC, ACKED \
          or PROMOTE)"
         other)

let render_request = function
  | Query { tau; tree } -> Printf.sprintf "QUERY %d %s" tau (Bracket.to_string tree)
  | Knn { k; tree } -> Printf.sprintf "KNN %d %s" k (Bracket.to_string tree)
  | Add { seq = None; tree } -> "ADD " ^ Bracket.to_string tree
  | Add { seq = Some seq; tree } ->
    Printf.sprintf "ADD %d %s" seq (Bracket.to_string tree)
  | Stats -> "STATS"
  | Health -> "HEALTH"
  | Drain -> "DRAIN"
  | Sync { epoch; from_seq } -> Printf.sprintf "SYNC %d %d" epoch from_seq
  | Ack seq -> Printf.sprintf "ACKED %d" seq
  | Promote -> "PROMOTE"

(* --- responses --- *)

type stats_reply = {
  trees : int;
  tau : int;
  queries : int;
  adds : int;
  shed : int;
  degraded : int;
  errors : int;
  quarantined : int;
  inflight : int;
  draining : bool;
  journal_records : int;
  epoch : int;
  primary : bool;
}

type response =
  | Hits of {
      degraded : bool;
      hits : (int * int) list;  (** [(id, distance)] *)
      unverified : (int * int * int) list;  (** [(id, lower, upper)] *)
    }
  | Added of { id : int; partners : (int * int) list }
  | Stats_reply of stats_reply
  | Health_reply of { draining : bool }
  | Drained
  | Busy
  | Err of string
  | Sync_stream of { epoch : int; base : int }
  | Record of string
  | Fenced of int
  | Promoted of int

(* Replies are single lines; strip any newline an error message smuggled
   in so the framing survives arbitrary reasons. *)
let one_line s =
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

let render_response r =
  let b = Buffer.create 64 in
  (match r with
  | Hits { degraded; hits; unverified } ->
    Buffer.add_string b
      (Printf.sprintf "HITS %d %d %d" (Bool.to_int degraded) (List.length hits)
         (List.length unverified));
    List.iter (fun (i, d) -> Buffer.add_string b (Printf.sprintf " %d:%d" i d)) hits;
    List.iter
      (fun (i, lo, hi) -> Buffer.add_string b (Printf.sprintf " %d:%d:%d" i lo hi))
      unverified
  | Added { id; partners } ->
    Buffer.add_string b (Printf.sprintf "ADDED %d %d" id (List.length partners));
    List.iter (fun (i, d) -> Buffer.add_string b (Printf.sprintf " %d:%d" i d)) partners
  | Stats_reply s ->
    Buffer.add_string b
      (Printf.sprintf
         "STATS trees=%d tau=%d queries=%d adds=%d shed=%d degraded=%d errors=%d \
          quarantined=%d inflight=%d draining=%d journal=%d epoch=%d primary=%d"
         s.trees s.tau s.queries s.adds s.shed s.degraded s.errors s.quarantined
         s.inflight (Bool.to_int s.draining) s.journal_records s.epoch
         (Bool.to_int s.primary))
  | Health_reply { draining } ->
    Buffer.add_string b (if draining then "OK draining" else "OK serving")
  | Drained -> Buffer.add_string b "OK drained"
  | Busy -> Buffer.add_string b "BUSY"
  | Err reason -> Buffer.add_string b ("ERR " ^ one_line reason)
  | Sync_stream { epoch; base } -> Buffer.add_string b (Printf.sprintf "SYNC %d %d" epoch base)
  | Record line -> Buffer.add_string b ("RECORD " ^ one_line line)
  | Fenced epoch -> Buffer.add_string b (Printf.sprintf "FENCED %d" epoch)
  | Promoted epoch -> Buffer.add_string b (Printf.sprintf "PROMOTED %d" epoch));
  Buffer.contents b

let parse_pair s =
  match String.split_on_char ':' s with
  | [ i; d ] -> (
    match (int_of_string_opt i, int_of_string_opt d) with
    | Some i, Some d -> Some (i, d)
    | _ -> None)
  | _ -> None

let parse_triple s =
  match String.split_on_char ':' s with
  | [ i; lo; hi ] -> (
    match (int_of_string_opt i, int_of_string_opt lo, int_of_string_opt hi) with
    | Some i, Some lo, Some hi -> Some (i, lo, hi)
    | _ -> None)
  | _ -> None

let rec take_map f n = function
  | rest when n = 0 -> Some ([], rest)
  | [] -> None
  | x :: rest -> (
    match f x with
    | None -> None
    | Some y -> (
      match take_map f (n - 1) rest with
      | None -> None
      | Some (ys, rest) -> Some (y :: ys, rest)))

let parse_response line =
  let fail () = Error (Printf.sprintf "malformed reply %S" line) in
  let raw = String.trim line in
  (* RECORD carries a raw journal line whose spacing must survive the
     round trip, so it is split off before the word-based dispatch. *)
  if String.length raw > 7 && String.uppercase_ascii (String.sub raw 0 7) = "RECORD " then
    Ok (Record (String.trim (String.sub raw 7 (String.length raw - 7))))
  else
  let words =
    List.filter (fun w -> w <> "") (String.split_on_char ' ' raw)
  in
  match words with
  | "HITS" :: deg :: nh :: nu :: rest -> (
    match (int_of_string_opt deg, int_of_string_opt nh, int_of_string_opt nu) with
    | Some deg, Some nh, Some nu when (deg = 0 || deg = 1) && nh >= 0 && nu >= 0 -> (
      match take_map parse_pair nh rest with
      | None -> fail ()
      | Some (hits, rest) -> (
        match take_map parse_triple nu rest with
        | Some (unverified, []) -> Ok (Hits { degraded = deg = 1; hits; unverified })
        | _ -> fail ()))
    | _ -> fail ())
  | "ADDED" :: id :: np :: rest -> (
    match (int_of_string_opt id, int_of_string_opt np) with
    | Some id, Some np when np >= 0 -> (
      match take_map parse_pair np rest with
      | Some (partners, []) -> Ok (Added { id; partners })
      | _ -> fail ())
    | _ -> fail ())
  | "STATS" :: fields -> (
    let tbl = Hashtbl.create 16 in
    let ok =
      List.for_all
        (fun f ->
          match String.index_opt f '=' with
          | None -> false
          | Some i -> (
            match int_of_string_opt (String.sub f (i + 1) (String.length f - i - 1)) with
            | None -> false
            | Some v ->
              Hashtbl.replace tbl (String.sub f 0 i) v;
              true))
        fields
    in
    let get k = Hashtbl.find_opt tbl k in
    match
      ( ok,
        get "trees",
        get "tau",
        get "queries",
        get "adds",
        get "shed",
        get "degraded",
        get "errors",
        get "quarantined",
        get "inflight",
        get "draining",
        get "journal",
        get "epoch",
        get "primary" )
    with
    | ( true,
        Some trees,
        Some tau,
        Some queries,
        Some adds,
        Some shed,
        Some degraded,
        Some errors,
        Some quarantined,
        Some inflight,
        Some draining,
        Some journal_records,
        Some epoch,
        Some primary ) ->
      Ok
        (Stats_reply
           {
             trees;
             tau;
             queries;
             adds;
             shed;
             degraded;
             errors;
             quarantined;
             inflight;
             draining = draining = 1;
             journal_records;
             epoch;
             primary = primary = 1;
           })
    | _ -> fail ())
  | [ "OK"; "serving" ] -> Ok (Health_reply { draining = false })
  | [ "OK"; "draining" ] -> Ok (Health_reply { draining = true })
  | [ "OK"; "drained" ] -> Ok Drained
  | [ "BUSY" ] -> Ok Busy
  | [ "SYNC"; e; b ] -> (
    match (int_of_string_opt e, int_of_string_opt b) with
    | Some epoch, Some base when epoch >= 0 && base >= 0 ->
      Ok (Sync_stream { epoch; base })
    | _ -> fail ())
  | [ "FENCED"; e ] -> (
    match int_of_string_opt e with
    | Some epoch when epoch >= 0 -> Ok (Fenced epoch)
    | _ -> fail ())
  | [ "PROMOTED"; e ] -> (
    match int_of_string_opt e with
    | Some epoch when epoch >= 0 -> Ok (Promoted epoch)
    | _ -> fail ())
  | "ERR" :: _ -> Ok (Err (String.trim (String.sub raw 3 (String.length raw - 3))))
  | _ -> fail ()
