(* End-to-end integrity primitives for the durable surfaces: content
   hashes, Merkle range digests over the journal's sequence space, and
   per-file "seal" sidecars (footer digests) for files without
   per-record checksums.  Everything here is pure bookkeeping — the
   scrubber (Scrub), the store and the router decide what to do with a
   finding. *)

module Text = Tsj_util.Text
module Durable = Tsj_util.Durable

(* --- typed findings --- *)

type surface = Journal | Snapshot | Ledger

let surface_name = function
  | Journal -> "journal"
  | Snapshot -> "snapshot"
  | Ledger -> "ledger"

type corrupt = {
  c_surface : surface;
  c_path : string;
  c_seq : int option;
      (* journal record seq / ledger gid, when the line is attributable *)
  c_detail : string;
}

let corrupt_to_string c =
  Printf.sprintf "%s %s%s: %s" (surface_name c.c_surface) c.c_path
    (match c.c_seq with Some s -> Printf.sprintf " seq %d" s | None -> "")
    c.c_detail

(* --- Merkle range digests --- *)

(* A binary hash tree over the journal's records, addressed by sequence
   number.  Leaf [i] is the hash of the {e canonical} record line for
   seq [i] (regenerated from the in-memory tree, not the disk bytes), so
   two stores holding the same trees produce identical digests no matter
   how their journals are laid out on disk — the property anti-entropy
   needs.

   Level [k] entry [i] covers leaves [i*2^k, (i+1)*2^k); a node with a
   single child promotes the child's hash unchanged.  An append touches
   one entry per level (O(log n)); {!range} folds the O(log n) maximal
   aligned buckets covering [lo, hi).  Hashes are domain-separated FNV:
   cheap, stable across processes, and already the journal's checksum
   primitive — this is corruption detection, not an adversarial MAC. *)
module Merkle = struct
  type level = { mutable arr : int64 array; mutable n : int }

  type t = { mutable levels : level list }
  (* head = leaves; each deeper level halves (ceil) the previous *)

  let leaf line = Text.fnv1a64 ("leaf " ^ line)

  let node a b = Text.fnv1a64 (Printf.sprintf "node %016Lx %016Lx" a b)

  let create () = { levels = [ { arr = Array.make 16 0L; n = 0 } ] }

  let size t = match t.levels with l :: _ -> l.n | [] -> 0

  let ensure_capacity l =
    if l.n = Array.length l.arr then begin
      let bigger = Array.make (2 * Array.length l.arr) 0L in
      Array.blit l.arr 0 bigger 0 l.n;
      l.arr <- bigger
    end

  let set l i v =
    if i = l.n then begin
      ensure_capacity l;
      l.arr.(i) <- v;
      l.n <- i + 1
    end
    else l.arr.(i) <- v

  (* Recompute the parent chain of leaf-level entry [i0] after it (or a
     sibling) changed, growing/shrinking upper levels to match. *)
  let rec fixup levels i =
    match levels with
    | [] | [ _ ] -> ()
    | child :: (parent :: _ as rest) ->
      let pi = i / 2 in
      let v =
        if (2 * pi) + 1 < child.n then node child.arr.(2 * pi) child.arr.((2 * pi) + 1)
        else child.arr.(2 * pi)
      in
      set parent pi v;
      parent.n <- (child.n + 1) / 2;
      fixup rest pi

  (* The level list must be long enough that the top level has a single
     entry (it is the root); extend/trim it to match the leaf count. *)
  let resize_levels t =
    let rec depth n acc = if n <= 1 then acc else depth ((n + 1) / 2) (acc + 1) in
    let want = 1 + depth (size t) 0 in
    let have = List.length t.levels in
    if have < want then
      t.levels <-
        t.levels @ List.init (want - have) (fun _ -> { arr = Array.make 4 0L; n = 0 })
    else if have > want then begin
      let rec take k = function
        | l :: rest when k > 0 -> l :: take (k - 1) rest
        | _ -> []
      in
      t.levels <- take want t.levels
    end

  let push t line =
    let leaves = List.hd t.levels in
    set leaves leaves.n (leaf line);
    resize_levels t;
    fixup t.levels (leaves.n - 1)

  let truncate t m =
    let n = size t in
    if m < 0 || m > n then invalid_arg "Merkle.truncate";
    if m < n then begin
      let leaves = List.hd t.levels in
      leaves.n <- m;
      resize_levels t;
      if m > 0 then fixup t.levels (m - 1)
    end

  (* Entry value covering leaves [i*2^k, min((i+1)*2^k, n)). *)
  let entry t ~level i =
    let l = List.nth t.levels level in
    l.arr.(i)

  (* Digest of the record range [lo, hi) (half-open), as the fold of its
     maximal aligned bucket hashes.  Both endpoints are baked into the
     payload so distinct ranges that happen to share buckets cannot
     collide structurally. *)
  let range t ~lo ~hi =
    let n = size t in
    if lo < 0 || hi < lo || hi > n then
      invalid_arg (Printf.sprintf "Merkle.range [%d,%d) of %d" lo hi n);
    let b = Buffer.create 64 in
    Buffer.add_string b (Printf.sprintf "range %d %d" lo hi);
    let pos = ref lo in
    while !pos < hi do
      (* largest k with [pos] aligned to 2^k and the block inside [lo,hi) *)
      let k = ref 0 in
      while
        !pos land ((1 lsl (!k + 1)) - 1) = 0 && !pos + (1 lsl (!k + 1)) <= hi
      do
        incr k
      done;
      Buffer.add_string b
        (Printf.sprintf " %016Lx" (entry t ~level:!k (!pos lsr !k)));
      pos := !pos + (1 lsl !k)
    done;
    Text.fnv1a64_hex (Buffer.contents b)

  let root t = range t ~lo:0 ~hi:(size t)

  (* Rebuild every level from the raw leaves — the from-scratch
     reference the qcheck property compares the incremental updates
     against. *)
  let recompute t =
    let leaves = List.hd t.levels in
    t.levels <- [ leaves ];
    resize_levels t;
    let rec build = function
      | [] | [ _ ] -> ()
      | child :: (parent :: _ as rest) ->
        parent.n <- 0;
        for i = 0 to ((child.n + 1) / 2) - 1 do
          let v =
            if (2 * i) + 1 < child.n then node child.arr.(2 * i) child.arr.((2 * i) + 1)
            else child.arr.(2 * i)
          in
          set parent i v
        done;
        build rest
    in
    build t.levels

  let of_lines lines =
    let t = create () in
    List.iter (push t) lines;
    t
end

(* Locate the first diverging sequence number between a local digest
   function and a remote one, by binary search over range digests —
   O(log n) remote probes, each one DIGEST round trip.  Precondition:
   the full ranges differ.  [remote] may fail (a dead peer mid-search);
   the failure propagates as [Error]. *)
let first_divergence ~local ~remote ~lo ~hi =
  if lo >= hi then invalid_arg "Integrity.first_divergence: empty range";
  let rec go lo hi =
    if hi - lo <= 1 then Ok lo
    else begin
      let mid = (lo + hi) / 2 in
      match remote ~lo ~hi:mid with
      | Error _ as e -> e
      | Ok r -> if String.equal (local ~lo ~hi:mid) r then go mid hi else go lo mid
    end
  in
  go lo hi

(* --- file seals (footer digests) --- *)

(* A seal is a sidecar [<file>.seal] holding one checksummed line:

     seal <bytes> <fnv1a64-of-first-bytes> <crc>

   It covers a byte {e prefix} of the sealed file, so it stays valid
   under append-only growth (the journal between flushes) and is exact
   for files only ever rewritten whole (the snapshot, the ledger after a
   rewrite).  The snapshot has no per-record checksums at all — the seal
   is its only integrity cover. *)

let seal_path file = file ^ ".seal"

let seal_line ~bytes ~digest =
  let payload = Printf.sprintf "seal %d %s" bytes digest in
  payload ^ " " ^ Text.fnv1a64_hex payload

let parse_seal_line line =
  match String.rindex_opt line ' ' with
  | None -> None
  | Some i ->
    let payload = String.sub line 0 i in
    let crc = String.sub line (i + 1) (String.length line - i - 1) in
    if Text.fnv1a64_hex payload <> crc then None
    else
      match String.split_on_char ' ' payload with
      | [ "seal"; b; digest ] -> (
        match int_of_string_opt b with
        | Some bytes when bytes >= 0 && String.length digest = 16 ->
          Some (bytes, digest)
        | _ -> None)
      | _ -> None

(* Seal [file] at its current length.  Atomic (tmp + rename) so a crash
   leaves the previous seal, which still covers a valid prefix. *)
let write_seal file =
  let contents = Durable.read_file file in
  let tmp = seal_path file ^ ".tmp" in
  Out_channel.with_open_text tmp (fun oc ->
      output_string oc
        (seal_line ~bytes:(String.length contents)
           ~digest:(Text.fnv1a64_hex contents));
      output_char oc '\n');
  Durable.rename tmp (seal_path file)

let drop_seal file = try Sys.remove (seal_path file) with Sys_error _ -> ()

(* Verify [file] against its seal.  [Ok covered] with the number of
   sealed bytes ([Ok 0] when the file was never sealed — vacuously
   clean); [Error detail] when the sealed prefix hash mismatches, the
   file shrank below the sealed length, or the seal itself is
   unreadable (a corrupt seal is indistinguishable from a corrupt file
   and must surface, not pass). *)
let check_seal file =
  if not (Sys.file_exists (seal_path file)) then Ok 0
  else
    let seal = Durable.read_file (seal_path file) in
    match parse_seal_line (String.trim seal) with
    | None -> Error "seal sidecar is corrupt"
    | Some (bytes, digest) ->
      let contents = Durable.read_file file in
      if String.length contents < bytes then
        Error
          (Printf.sprintf "file shrank below its seal (%d < %d bytes)"
             (String.length contents) bytes)
      else if Text.fnv1a64_hex (String.sub contents 0 bytes) <> digest then
        Error (Printf.sprintf "sealed prefix digest mismatch (%d bytes)" bytes)
      else Ok bytes
