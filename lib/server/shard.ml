type map = { shards : int; band : int }

let create ~shards ?band ~tau () =
  if shards < 1 then invalid_arg "Shard.create: shards must be >= 1";
  if tau < 0 then invalid_arg "Shard.create: negative threshold";
  let band = match band with Some b -> b | None -> (2 * tau) + 1 in
  if band < 1 then invalid_arg "Shard.create: band must be >= 1";
  { shards; band }

let shard_of_size m size = size / m.band mod m.shards

let shard_of_tree m tree = shard_of_size m (Tsj_tree.Tree.size tree)

let shards_for m ~tau size =
  if tau < 0 then invalid_arg "Shard.shards_for: negative threshold";
  let b0 = max 0 (size - tau) / m.band in
  let b1 = (size + tau) / m.band in
  let rec collect b acc = if b > b1 then acc else collect (b + 1) (b mod m.shards :: acc) in
  List.sort_uniq compare (collect b0 [])

let sandwich ~query_size size = (abs (size - query_size), size + query_size)
