(** Shard placement by tree-size band — the horizontal-partitioning key
    of the sharded service.

    The streaming index already groups trees by postorder size: a query
    at threshold τ' probes exactly the sizes in [size ± τ'] (Lemma 2 of
    the paper makes the direction of the size difference irrelevant, and
    |size difference| > τ' already implies TED > τ').  Sharding by a
    {e size band} therefore gives every query a {e bounded shard
    subset}: with band width [w], the window [size ± τ'] spans at most
    [2τ'/w + 2] bands, so with the default [w = 2τ + 1] (the
    partitioning grain δ) a full-threshold query touches at most {b 2}
    shards no matter how many shards the cluster runs — that is what
    makes per-shard deadlines meaningful and per-shard query cost
    sub-linear in the collection size.

    The key is {e stable}: it depends only on the tree (its node count)
    and the map parameters, never on arrival order or cluster state, so
    the router, a restarted router and the storm harness all compute
    the same placement. *)

type map = private { shards : int; band : int }
(** [shards] ≥ 1 shard slots; [band] ≥ 1 is the size-band width.  Band
    [b] (sizes [b*band .. b*band + band - 1]) lives on shard
    [b mod shards]. *)

val create : shards:int -> ?band:int -> tau:int -> unit -> map
(** [band] defaults to [2τ + 1] — one probe window per band.
    @raise Invalid_argument if [shards < 1], [band < 1] or [tau < 0]. *)

val shard_of_size : map -> int -> int
(** The shard owning the band of the given tree size — the routing key
    of an [ADD]. *)

val shard_of_tree : map -> Tsj_tree.Tree.t -> int

val shards_for : map -> tau:int -> int -> int list
(** [shards_for m ~tau size]: the shards a query of the given tree size
    at threshold [tau] must consult — the owners of every band
    intersecting [max 0 (size - tau) .. size + tau], sorted,
    deduplicated.  Its length is bounded by
    [min shards (2 tau / band + 2)]. *)

val sandwich : query_size:int -> int -> int * int
(** [sandwich ~query_size size] is a sound [lo, hi] TED bound for a
    tree known only by its size — the degraded answer the router emits
    for every in-window resident of a shard that is dead, partitioned
    or over its deadline: [lo = |size - query_size|] (size difference
    lower-bounds TED) and [hi = size + query_size] (delete one tree,
    insert the other).  The exact distance always lies inside. *)
