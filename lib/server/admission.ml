(* Overload-control primitives: token buckets, retry budgets, log-bucket
   latency histograms, deadline arithmetic.  See admission.mli. *)

module Token_bucket = struct
  type t = {
    rate : float;
    burst : float;
    mutable tokens : float;
    mutable last : float;
  }

  let create ~rate ~burst ~now =
    if rate <= 0.0 || Float.is_nan rate then
      invalid_arg "Token_bucket.create: rate must be > 0";
    if burst < 1 then invalid_arg "Token_bucket.create: burst must be >= 1";
    let burst = float_of_int burst in
    { rate; burst; tokens = burst; last = now }

  let refill t ~now =
    let dt = now -. t.last in
    if dt > 0.0 then begin
      t.tokens <- Float.min t.burst (t.tokens +. (dt *. t.rate));
      t.last <- now
    end

  let take t ~now =
    refill t ~now;
    if t.tokens >= 1.0 then begin
      t.tokens <- t.tokens -. 1.0;
      true
    end
    else false

  let retry_after_s t ~now =
    refill t ~now;
    if t.tokens >= 1.0 then 0.0 else (1.0 -. t.tokens) /. t.rate

  let level t ~now =
    refill t ~now;
    t.tokens
end

module Retry_budget = struct
  type t = { ratio : float; cap : float; mutable tokens : float }

  let create ?(ratio = 0.1) ?(cap = 10.0) () =
    if ratio < 0.0 || Float.is_nan ratio then
      invalid_arg "Retry_budget.create: ratio must be >= 0";
    if cap < 1.0 then invalid_arg "Retry_budget.create: cap must be >= 1";
    { ratio; cap; tokens = cap }

  let on_success t = t.tokens <- Float.min t.cap (t.tokens +. t.ratio)

  let try_retry t =
    if t.tokens >= 1.0 then begin
      t.tokens <- t.tokens -. 1.0;
      true
    end
    else false

  let level t = t.tokens
end

module Histogram = struct
  (* Bucket [i] counts samples whose microsecond value lies in
     [2^i, 2^(i+1)); bucket 0 also absorbs 0 and 1 us.  48 buckets cover
     anything below ~8.9 years. *)
  let buckets = 48

  type t = int Atomic.t array

  let create () : t = Array.init buckets (fun _ -> Atomic.make 0)

  let bucket_of_us us =
    if us <= 1 then 0
    else begin
      let rec msb acc v = if v <= 1 then acc else msb (acc + 1) (v lsr 1) in
      min (buckets - 1) (msb 0 us)
    end

  let record (t : t) ~seconds =
    let s = if Float.is_nan seconds || seconds < 0.0 then 0.0 else seconds in
    let us =
      if s >= 1e12 then max_int else int_of_float (Float.round (s *. 1e6))
    in
    Atomic.incr t.(bucket_of_us us)

  let count (t : t) = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t

  let quantile_us (t : t) p =
    let p = if Float.is_nan p then 0.5 else Float.min 1.0 (Float.max 0.0 p) in
    let total = count t in
    if total = 0 then 0
    else begin
      let rank =
        max 1 (min total (int_of_float (Float.ceil (p *. float_of_int total))))
      in
      let rec walk i cum =
        if i >= buckets then max 1 (1 lsl (buckets - 1))
        else begin
          let cum = cum + Atomic.get t.(i) in
          if cum >= rank then max 1 (1 lsl i) else walk (i + 1) cum
        end
      in
      walk 0 0
    end
end

module Deadline = struct
  (* One below Protocol.Binary.no_value (0xFFFFFFFF), so every clamped
     budget is encodable as a non-sentinel u32. *)
  let max_ms = 0xFFFF_FFFE

  let clamp ms = if ms < 0 then 0 else if ms > max_ms then max_ms else ms

  let after_hop ?(margin_ms = 0) ~elapsed_ms ms =
    clamp (clamp ms - max 0 elapsed_ms - max 0 margin_ms)

  let of_span_s s =
    if Float.is_nan s || s <= 0.0 then 0
    else if s >= 4.0e6 then max_ms
    else clamp (int_of_float (Float.ceil (s *. 1000.0)))

  let to_span_s ms = float_of_int (clamp ms) /. 1000.0
end
