(** Follower side of journal-streaming replication: a {!Store.t} plus
    the one-line-in/one-reaction-out state machine that consumes a
    primary's stream.

    A replica opens a connection to its primary, sends {!hello}
    ([SYNC <epoch> <n_trees>]) and then {!feed}s it every line the
    primary pushes: the [SYNC <epoch> <base>] stream header (adopting a
    newer epoch — discarding its unacked suffix first, see the epoch
    rules in DESIGN.md), then one [RECORD <journal-line>] per add, each
    answered with [ACKED <n>] only after the record is durably in the
    replica's own journal.  {!promote} turns the replica into a primary
    at a bumped epoch (persisted in the journal header before the flag
    flips); once primary, every pushed line is answered [FENCED] — the
    structural impossibility of split-brain.

    Fault-injection hit points: [replica.stream] (payload = seq about to
    be applied — a raise models a kill before durability) and
    [replica.ack] (payload = seq just applied — a raise models the
    ambiguous kill after durability but before the ack).

    Thread safety: callers serialize {!feed}/{!promote} with any other
    access to the underlying store (the server wraps them in its store
    mutex). *)

type t

val create : ?primary:bool -> Store.t -> t
(** Wrap a store.  [primary] (default [false]) is the node's initial
    write-mandate flag. *)

val store : t -> Store.t

val is_primary : t -> bool

val epoch : t -> int

val stream_started : t -> string -> unit
(** The follower loop connected to the given upstream address and is
    about to feed its stream; remembered for {!upstream} redirects. *)

val stream_lost : t -> unit
(** The upstream connection dropped: the node's lag is unknown until a
    new stream header arrives ({!lag} returns [None]). *)

val upstream : t -> string option
(** Last known primary address (survives a dropped stream), the payload
    of a bounded-staleness [REDIRECT]. *)

val lag : t -> int option
(** Sequence-number staleness for bounded-staleness reads: [Some 0] on
    the primary; [Some (high - n_trees)] on a replica with a live,
    synced stream, where [high] is the highest primary tree count it has
    observed (stream header high-water mark, then one per record);
    [None] when the lag is unknowable (no live stream). *)

val hello : t -> string
(** The [SYNC <epoch> <from_seq>] request line opening a stream, and a
    reset of the per-stream state (a new {!hello} starts a new
    stream). *)

type reaction =
  | Reply of string  (** send this line, keep streaming *)
  | Final of string  (** send this line, then close the stream *)
  | Stop of string  (** close the stream; the payload is the reason *)

val feed : t -> string -> reaction
(** Consume one line pushed by the primary.  May raise
    {!Tsj_util.Fault_inject.Injected} when a replica fault point is
    armed; the store is consistent whenever it raises. *)

val promote : t -> int
(** Become primary at epoch + 1 (persisted before the flag flips);
    idempotent — promoting a primary returns its current epoch. *)

val demote : t -> unit
(** Drop the write mandate (on [FENCED] evidence of a higher epoch).
    The store is untouched: the unacked suffix is discarded when the
    node re-syncs and adopts the newer epoch. *)
