(** Integrity primitives for the durable surfaces: typed corruption
    findings, Merkle range digests over the journal's sequence space,
    and per-file seal sidecars (footer digests).

    {b Merkle digests.}  {!Merkle} maintains a binary hash tree whose
    leaf [i] is the hash of the canonical journal record line for seq
    [i] — regenerated from the in-memory tree, never the disk bytes —
    so two stores holding the same trees produce identical digests
    regardless of journal layout.  Appends update O(log n) nodes;
    {!Merkle.range} answers a digest for any [\[lo, hi)] in O(log n)
    bucket folds.  {!first_divergence} turns that into anti-entropy:
    O(log n) [DIGEST] round trips locate the first diverging seq, and
    the repair transfers {e only} the suffix from there — no full
    re-sync.

    {b Seals.}  A seal is a sidecar [<file>.seal] with one checksummed
    line [seal <bytes> <fnv1a64-of-prefix> <crc>] covering a byte
    prefix of the sealed file.  Prefix coverage keeps it valid under
    append-only growth (the journal between flushes) and exact for
    whole-file rewrites (the snapshot — whose records carry no
    per-line checksum, making the seal its only integrity cover). *)

type surface = Journal | Snapshot | Ledger

val surface_name : surface -> string

type corrupt = {
  c_surface : surface;
  c_path : string;
  c_seq : int option;
      (** journal record seq / ledger gid, when the line is attributable *)
  c_detail : string;
}

val corrupt_to_string : corrupt -> string

module Merkle : sig
  type t

  val create : unit -> t

  val size : t -> int
  (** Number of leaves (= journal records covered). *)

  val push : t -> string -> unit
  (** Append the next record line as leaf [size t]; updates O(log n)
      nodes. *)

  val truncate : t -> int -> unit
  (** Drop every leaf with index >= [m] (anti-entropy rewinds to the
      divergence point).  @raise Invalid_argument if [m] is out of
      range. *)

  val range : t -> lo:int -> hi:int -> string
  (** Digest of records [\[lo, hi)] — a fold of the maximal aligned
      power-of-two buckets, with both endpoints baked in.  @raise
      Invalid_argument if the range exceeds [size]. *)

  val root : t -> string
  (** [range ~lo:0 ~hi:(size t)]. *)

  val recompute : t -> unit
  (** Rebuild every internal level from the leaves — the from-scratch
      reference the incremental-update property tests against. *)

  val of_lines : string list -> t
  (** Build from record lines by repeated {!push}. *)
end

val first_divergence :
  local:(lo:int -> hi:int -> string) ->
  remote:(lo:int -> hi:int -> (string, string) result) ->
  lo:int ->
  hi:int ->
  (int, string) result
(** Binary-search the first seq in [\[lo, hi)] where [local] and
    [remote] range digests diverge — O(log n) [remote] probes, each
    one wire round trip.  Precondition: the digests of the full range
    differ.  A failing probe (dead peer) propagates as [Error]. *)

val seal_path : string -> string
(** [file ^ ".seal"]. *)

val write_seal : string -> unit
(** Seal [file] at its current length (atomic tmp + rename; reads the
    file through {!Tsj_util.Durable.read_file}).
    @raise Tsj_util.Durable.Disk_fault on a read/rename failure. *)

val drop_seal : string -> unit
(** Remove [file]'s seal, if any (the file is being retired). *)

val check_seal : string -> (int, string) result
(** Verify [file] against its seal: [Ok covered_bytes] ([Ok 0] when
    never sealed — vacuously clean), [Error detail] when the sealed
    prefix mismatches, the file shrank below the sealed length, or the
    seal itself is corrupt.
    @raise Tsj_util.Durable.Disk_fault on a read failure. *)
