(** Overload-control primitives shared by the server, the client and the
    router: token buckets for fair per-connection admission, a
    success-funded retry budget, log-bucket latency histograms for the
    [STATS] quantiles, and the deadline-propagation arithmetic.

    Everything here is clock-injected ([~now] is a monotonic timestamp
    in seconds) and allocation-free on the hot path, so the qcheck
    properties can drive adversarial schedules deterministically and the
    server can consult a bucket per request without heap traffic. *)

(** Classic token bucket: capacity [burst], refilled at [rate] tokens
    per second.  One instance per client connection gives {e fair}
    admission — a greedy connection exhausts only its own bucket and can
    never consume a conforming connection's tokens.  Not thread-safe;
    the server consults each connection's bucket from the event-loop
    thread only. *)
module Token_bucket : sig
  type t

  val create : rate:float -> burst:int -> now:float -> t
  (** Starts full.  @raise Invalid_argument if [rate <= 0] or
      [burst < 1]. *)

  val take : t -> now:float -> bool
  (** Consume one token after refilling for the elapsed time; [false] =
      deny (the caller sheds with BUSY). *)

  val retry_after_s : t -> now:float -> float
  (** Time until one token will be available ([0.] if one already is) —
      the BUSY retry-after hint. *)

  val level : t -> now:float -> float
  (** Current token count (post-refill); for tests. *)
end

(** Retry budget: retries are funded by successes, so a client's retry
    traffic is capped at [ratio] of its goodput and can never multiply
    offered load during a brownout (a cluster at 0%% success rate
    receives asymptotically 0 retries).  The budget starts with [cap]
    tokens so cold-start blips still retry. *)
module Retry_budget : sig
  type t

  val create : ?ratio:float -> ?cap:float -> unit -> t
  (** Default [ratio = 0.1] (one retry per ten successes),
      [cap = 10.].  @raise Invalid_argument if [ratio < 0] or
      [cap < 1]. *)

  val on_success : t -> unit
  (** Credit [ratio] tokens (clamped to [cap]). *)

  val try_retry : t -> bool
  (** Spend one token; [false] = budget exhausted, do not retry. *)

  val level : t -> float
end

(** Log-bucket latency histogram: bucket [i] counts samples in
    [[2^i, 2^(i+1))] microseconds, so quantiles are exact to within a
    factor of two at any scale with 48 ints of state and a lock-free
    record path (safe to call from every worker thread). *)
module Histogram : sig
  type t

  val create : unit -> t

  val record : t -> seconds:float -> unit

  val count : t -> int

  val quantile_us : t -> float -> int
  (** [quantile_us t 0.99] is the lower bound (in microseconds) of the
      bucket holding the p99 sample — a stable, monotone approximation.
      [0] when empty; at least [1] otherwise. *)
end

(** Deadline propagation.  The wire carries a {e relative} remaining
    budget in milliseconds (no clock synchronisation needed); every hop
    subtracts its elapsed time, and a forwarding hop additionally
    reserves a response margin so it can still merge and answer after
    its downstream calls return.  All results are clamped to
    [[0, max_ms]] — a remaining budget can reach zero (expired) but
    never go negative or overflow the wire's u32. *)
module Deadline : sig
  val max_ms : int
  (** Largest encodable remaining budget (one below the wire's "absent"
      sentinel). *)

  val clamp : int -> int

  val after_hop : ?margin_ms:int -> elapsed_ms:int -> int -> int
  (** [after_hop ~margin_ms ~elapsed_ms d] = the budget to hand
      downstream.  Negative [elapsed_ms]/[margin_ms] count as [0], so
      the result is always [<= clamp d]: propagated deadlines are
      monotonically non-increasing across hops. *)

  val of_span_s : float -> int
  (** Seconds to whole milliseconds (ceiling), clamped. *)

  val to_span_s : int -> float
end
