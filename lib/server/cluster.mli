(** Primary side of journal-streaming replication: the registry of
    downstream replica streams and the durability-before-ack quorum.

    An [ADD] on the primary journals locally (1 durable copy), then —
    still under the write lock — {!replicate}s the record lock-step to
    every live peer ([RECORD] out, [ACKED] back, in sequence order) and
    acknowledges the client only when at least [quorum] copies
    (including its own) are flushed.  A peer whose transport fails or
    that times out is dropped and re-registers by re-syncing; a peer
    that answers [FENCED] holds a higher epoch, and the caller must
    demote.

    {!serve_sync} is the full primary-side handshake for an incoming
    [SYNC <epoch> <from_seq>]: refuse with [`Fenced] when the caller
    has the higher epoch, send the stream header, bulk catch-up from
    the replica's acked position ({!Store.record_for} regenerates
    records the journal no longer holds, so catch-up from an arbitrary
    seq — including 0, a snapshot transfer — always works), then
    register the peer atomically under the write lock.

    The [cluster.partition] fault point fires in {!replicate} once per
    peer (payload = peer index); an [Injected] raise models a network
    partition.

    Locking: {!replicate} {e requires} the write lock (take it with
    {!with_write} around the local add + replicate pair — the stream is
    ordered, so writes must serialize); {!serve_sync}, {!seal} and the
    accessors take it themselves. *)

type t

type peer

val create : ?quorum:int -> unit -> t
(** [quorum] (default 1) is the total number of durable copies —
    including the primary's own journal — required before an [ADD] is
    acknowledged.  Quorum 1 with no peers degenerates to the single-node
    PR-4 semantics.  @raise Invalid_argument if [quorum < 1]. *)

val quorum : t -> int

val acked_high : t -> int
(** Sequence-number high-water mark of client-acknowledged adds: every
    seq < [acked_high] reached quorum.  Drain truncates the store back
    to this mark so a snapshot never contains state no client was told
    about. *)

val set_acked_high : t -> int -> unit
(** Raise the mark (never lowers): on open (restored state is treated
    as acked) and on promotion (the chosen replica's state becomes
    canon). *)

val sealed : t -> bool

val with_write : t -> (unit -> 'a) -> 'a
(** Run [f] under the write lock.  Wrap the local {!Store.add_seq} +
    {!replicate} pair in it. *)

val live_peers : t -> string list

type outcome =
  | Acks of int  (** quorum reached with this many durable copies *)
  | No_quorum of int  (** only this many copies; the add must fail *)
  | Fenced_off of int  (** a peer holds this higher epoch: demote *)

val replicate : t -> record_for:(int -> string) -> seq:int -> outcome
(** Push every record up to [seq] to each live peer and count durable
    copies (self included).  Requires the write lock.  After {!seal},
    always [No_quorum 1]. *)

val serve_sync :
  t ->
  epoch:(unit -> int) ->
  base:(unit -> int) ->
  n_trees:(unit -> int) ->
  record_for:(int -> string) ->
  primary:(unit -> bool) ->
  peer_id:string ->
  f_epoch:int ->
  send:(string -> unit) ->
  recv:(unit -> string) ->
  close:(unit -> unit) ->
  [ `Streaming | `Fenced of int | `Refused of string ]
(** Handle a replica's [SYNC] request end to end (header, catch-up,
    registration).  Store access goes through the closures so callers
    interpose their own locking.  [`Streaming]: the transport now
    belongs to the cluster — the caller must not close it.  [`Fenced]:
    the {e requester} has the higher epoch; the caller replies
    [FENCED <epoch>] and demotes.  [`Refused]: reply [ERR reason] and
    close. *)

val seal : t -> unit
(** Drain support: wait out any in-flight quorum write (by taking the
    write lock), then refuse future replication and close every peer
    stream.  Subsequent [ADD]s fail with an explicit error instead of
    being half-replicated. *)
