(** The background scrubber driver and Merkle anti-entropy repair.

    The driver is a periodic thread around a step closure; the owner
    decides what a step verifies and under which locks (the server
    wraps {!Store.scrub_step}, the sharded harness
    {!Router.scrub_ledger}).  A step that raises is swallowed — the
    scrubber may find corruption but must never kill its host. *)

type t

val start : interval_s:float -> (unit -> unit) -> t
(** Spawn the scrubber: one [step ()] call every [interval_s] seconds
    until {!stop}.  @raise Invalid_argument if the interval is not
    positive. *)

val passes : t -> int
(** Completed steps so far. *)

val stop : t -> unit
(** Stop and join the thread (idempotent; prompt — the sleep is
    sliced). *)

val anti_entropy :
  local:Store.t ->
  remote_n:int ->
  digest:(lo:int -> hi:int -> (string, string) result) ->
  fetch:(int -> (string, string) result) ->
  (int, string) result
(** Converge [local] to the authoritative remote holding [remote_n]
    records: locate the first diverging seq by O(log n) [digest]
    probes ({!Integrity.first_divergence}), truncate there, and
    re-apply only the records from that point on via [fetch] —
    [Ok transferred].  When the common prefix agrees this is a pure
    catch-up of the missing suffix (and counts no repair); when it
    diverged, one range repair is credited to the local store's
    {!Store.scrub_counters}.  A failing probe propagates as [Error]
    with the local store left consistent — a later pass resumes. *)
