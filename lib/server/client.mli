(** Client side of the similarity-search service.

    Thin line-protocol client with the robustness conventions the server
    expects of callers: socket-level timeouts (a hung server surfaces as
    a transport error, never a hang) and retry with full-jitter
    exponential backoff whose randomness comes from an explicit
    {!Tsj_util.Prng} state and whose sleep is injectable — retry
    schedules are reproducible in tests.  {!Bin} speaks the pipelined
    binary framing after the one-line [HELLO] negotiation. *)

type t

val connect : ?timeout_s:float -> Protocol.addr -> (t, string) result
(** [timeout_s] bounds every subsequent send and receive on the
    connection (SO_SNDTIMEO/SO_RCVTIMEO). *)

val close : t -> unit

val channels : t -> in_channel * out_channel
(** The raw line channels — for callers that speak a streaming exchange
    (the replication follower) rather than request/reply. *)

val fd : t -> Unix.file_descr

val request :
  t -> ?deadline_ms:int -> Protocol.request -> (Protocol.response, string) result
(** One request/reply round trip.  [Error] means a transport or framing
    failure; protocol-level failures arrive as [Ok (Err _)] or
    [Ok (Busy _)].  [deadline_ms] announces the remaining budget for a
    work request ([@<ms>] on the wire, see {!Protocol}); ignored for
    control verbs. *)

val backoff_delay :
  base_delay_s:float -> max_delay_s:float -> rng:Tsj_util.Prng.t -> int -> float
(** [backoff_delay ~base_delay_s ~max_delay_s ~rng attempt] draws the
    full-jitter delay for the given 0-based attempt: uniform in
    [cap/2, cap] with [cap = min max_delay_s (base * 2^attempt)]. *)

val with_retries :
  ?attempts:int ->
  ?base_delay_s:float ->
  ?max_delay_s:float ->
  ?sleep:(float -> unit) ->
  ?deadline_s:float ->
  ?now:(unit -> float) ->
  ?budget:Admission.Retry_budget.t ->
  ?delay_floor:(unit -> float) ->
  rng:Tsj_util.Prng.t ->
  (unit -> ('a, string) result) ->
  ('a, string) result
(** Run [f] up to [attempts] times (default 4), sleeping a
    {!backoff_delay} between failures.  [deadline_s] caps the {e total}
    wall-clock time spent waiting between attempts: each sleep is
    clamped to the time remaining, and once the deadline passes the
    last result is returned instead of retrying further — a caller with
    a 1 s budget never sleeps through a 2 s backoff schedule.  [now]
    (default {!Tsj_util.Timer.now}) is the clock, injectable for
    deterministic tests.  A [budget] makes retries success-funded: each
    retry spends a {!Admission.Retry_budget} token (an exhausted budget
    returns the last failure immediately — retry traffic can never
    multiply offered load during a brownout) and each [Ok] credits one
    back.  [delay_floor] (default [fun () -> 0.]) is read before every
    sleep and floors that one delay — the hook by which a server's
    BUSY retry-after hint stretches the next backoff.
    @raise Invalid_argument if [attempts < 1]. *)

val request_with_retries :
  ?attempts:int ->
  ?base_delay_s:float ->
  ?max_delay_s:float ->
  ?sleep:(float -> unit) ->
  ?deadline_s:float ->
  ?now:(unit -> float) ->
  ?timeout_s:float ->
  ?budget:Admission.Retry_budget.t ->
  ?deadline_ms:int ->
  rng:Tsj_util.Prng.t ->
  Protocol.addr ->
  Protocol.request ->
  (Protocol.response, string) result
(** Connect, send, receive, close — retrying (with a fresh connection)
    on transport failures and on [BUSY].  A final [BUSY] after all
    attempts is returned as [Ok (Busy _)] (with the last hint), not
    mapped to an error: shedding is an explicit, well-formed answer.  A
    BUSY retry-after hint floors the very next backoff sleep.
    [deadline_s]/[now]/[budget] as in {!with_retries}.  [deadline_ms]
    is the {e total} remaining budget at entry: the value announced to
    the server is re-derived before each attempt (entry budget minus
    wall clock burned on earlier attempts and sleeps), so it shrinks
    monotonically across retries. *)

(** Failover across a replicated server list.  Each request starts at
    the last server that answered; a transport failure, a [FENCED]
    reply (the node lost — or never had — the write mandate), a [BUSY]
    or a drain in progress rotates to the next server with the same
    full-jitter backoff as {!with_retries}; a [REDIRECT] (bounded-
    staleness read refused by a stale replica) jumps straight to the
    named primary without backoff.  The backoff exponent grows only
    across consecutive {e transport} failures and resets as soon as a
    rotation reaches a server that answers at all (even [FENCED] or
    [BUSY]): a cluster that just recovered is probed at the base
    cadence again, not at the max-backoff cadence accumulated while it
    was down.  The final answer after all attempts is returned
    as-is. *)
module Failover : sig
  type t

  val create :
    ?attempts:int ->
    ?base_delay_s:float ->
    ?max_delay_s:float ->
    ?sleep:(float -> unit) ->
    ?deadline_s:float ->
    ?now:(unit -> float) ->
    ?timeout_s:float ->
    rng:Tsj_util.Prng.t ->
    Protocol.addr list ->
    t
  (** [attempts] (default 8) bounds total tries across the whole list;
      [deadline_s] caps each request's total backoff wait as in
      {!with_retries}.  @raise Invalid_argument on an empty list. *)

  val current : t -> Protocol.addr
  (** The server the next request will try first. *)

  val request :
    t ->
    ?deadline_ms:int ->
    Protocol.request ->
    (Protocol.response, string) result
  (** [deadline_ms] is the remaining budget at entry, re-derived before
      every attempt as in {!request_with_retries}; a BUSY retry-after
      hint floors the next rotation's backoff sleep. *)

  val add :
    ?seq_retries:int -> t -> Tsj_tree.Tree.t -> (Protocol.response, string) result
  (** The safe-retry [ADD]: learns the next sequence number from
      [STATS], sends [ADD <seq> <tree>], and retries with the {e same}
      seq across failures and failovers, so an ambiguous timeout can
      never double-apply (the idempotency contract in {!Protocol}).  A
      seq that turns out stale (competing writer, lagging replica) is
      refetched up to [seq_retries] times. *)
end

(** Binary-protocol client: one [HELLO BIN <v>] handshake, then
    length-prefixed frames with client-chosen request ids.  {!send} and
    {!recv} expose the pipelined half-duplex halves — many requests in
    flight, replies matched by id in completion order; {!request} is
    the lock-step convenience. *)
module Bin : sig
  type t

  val connect : ?timeout_s:float -> Protocol.addr -> (t, string) result
  (** Connect and negotiate; [Error] if the server does not speak the
      binary protocol. *)

  val close : t -> unit

  val version : t -> int
  (** The protocol version negotiated by the [HELLO] handshake
      ([min] of both sides). *)

  val send : t -> ?max_lag:int -> ?deadline_ms:int -> Protocol.request -> int
  (** Queue one request frame (buffered until {!flush}) and return the
      id its reply will carry.  [max_lag] turns a [Query]/[Knn] into a
      bounded-staleness read (see {!Protocol}); [deadline_ms] announces
      the remaining budget for a work request.  Frames are encoded at
      the negotiated {!version}: against a v1 server the deadline is
      silently dropped (legacy semantics) rather than corrupting the
      frame layout. *)

  val flush : t -> unit
  (** Push every queued frame to the socket. *)

  val recv : t -> (int * Protocol.response, string) result
  (** Read exactly one reply frame: [(id, response)], in completion
      order — not necessarily send order. *)

  val request :
    t ->
    ?max_lag:int ->
    ?deadline_ms:int ->
    Protocol.request ->
    (Protocol.response, string) result
  (** [send] + [flush] + [recv] until this request's id answers. *)
end
