module Fault = Tsj_util.Fault_inject

type t = {
  store : Store.t;
  mutable primary : bool;
  mutable synced : bool;  (* stream header received on the current stream *)
  mutable stream_live : bool;  (* an upstream connection is currently feeding us *)
  mutable upstream : string option;  (* last known primary address, kept for redirects *)
  mutable primary_high : int;  (* highest primary tree count observed on any stream *)
}

let create ?(primary = false) store =
  { store; primary; synced = false; stream_live = false; upstream = None; primary_high = 0 }

let store t = t.store

let is_primary t = t.primary

let epoch t = Store.epoch t.store

let stream_started t addr =
  t.upstream <- Some addr;
  t.stream_live <- true

let stream_lost t =
  t.stream_live <- false;
  t.synced <- false

let upstream t = t.upstream

(* A node's staleness for bounded-staleness reads: the primary is never
   stale; a replica with a live, synced stream is behind by however much
   of the observed high-water mark it has not applied; anything else
   (stream down, header not yet seen) has unknown lag. *)
let lag t =
  if t.primary then Some 0
  else if t.stream_live && t.synced then
    Some (max 0 (t.primary_high - Store.n_trees t.store))
  else None

let hello t =
  t.synced <- false;
  Protocol.render_request
    (Protocol.Sync { epoch = Store.epoch t.store; from_seq = Store.n_trees t.store })

type reaction = Reply of string | Final of string | Stop of string

let ack t = Reply (Protocol.render_request (Protocol.Ack (Store.n_trees t.store)))

let fenced t = Protocol.render_response (Protocol.Fenced (Store.epoch t.store))

(* One pushed line in, one reaction out — the whole follower-side state
   machine.  A primary (or freshly promoted) node answers every push
   with [FENCED <its epoch>]: that is how a stale primary that streams
   to us learns it lost its mandate. *)
let feed t line =
  if t.primary then Final (fenced t)
  else
    match Protocol.parse_response line with
    | Error msg -> Stop ("stream: " ^ msg)
    | Ok (Protocol.Sync_stream { epoch = p_epoch; base; high }) ->
      let my = Store.epoch t.store in
      if p_epoch < my then Final (fenced t)
      else begin
        t.primary_high <- max t.primary_high high;
        if p_epoch > my then begin
          (* Adopting a newer epoch discards our unacked suffix.  One
             epoch behind: everything below the promotion point [base]
             is provably the cluster-wide common prefix, so cut there.
             Further behind we cannot bound the divergence from the
             header alone — full resync (the primary regenerates every
             record, so this is the snapshot-transfer path). *)
          let n = Store.n_trees t.store in
          let cut = if p_epoch = my + 1 then min n base else 0 in
          if cut < n then Store.truncate_to t.store cut;
          Store.set_epoch t.store ~epoch:p_epoch ~base
        end;
        t.synced <- true;
        ack t
      end
    | Ok (Protocol.Record record) ->
      if not t.synced then Stop "stream: RECORD before the SYNC header"
      else begin
        (* [replica.stream] fires before the durable apply (a kill here
           loses the record; the primary sees no ack), [replica.ack]
           after it but before the ack is sent (a kill here is the
           ambiguous case: the record is durable but unacknowledged). *)
        Fault.hit "replica.stream" (Store.n_trees t.store);
        match Store.apply_record t.store record with
        | Error msg -> Stop ("stream: " ^ msg)
        | Ok n ->
          t.primary_high <- max t.primary_high n;
          Fault.hit "replica.ack" (n - 1);
          ack t
      end
    | Ok (Protocol.Fenced e) -> Stop (Printf.sprintf "fenced at epoch %d" e)
    | Ok _ -> Stop "stream: unexpected reply from the primary"

let promote t =
  if t.primary then Store.epoch t.store
  else begin
    let epoch = Store.epoch t.store + 1 in
    Store.set_epoch t.store ~epoch ~base:(Store.n_trees t.store);
    t.primary <- true;
    t.synced <- false;
    epoch
  end

let demote t =
  t.primary <- false;
  t.synced <- false
