(** The fault-tolerant similarity-search service.

    A server owns a {!Store.t} (streaming PartSJ index + crash-safe
    journal) and serves the {!Protocol} over a Unix-domain or TCP
    socket with an {b event-driven core}: one thread runs a single
    [select] poll over the listener, a self-pipe and every connection
    (all nonblocking, with per-connection in/out buffers and
    incremental frame parsing), and dispatches complete requests onto
    worker threads — reads to a query worker, writes to a committer
    that coalesces concurrent [ADD]s into {b group commits} (one
    journal append + one flush + one quorum round per batch of up to
    [max_batch], see {!Store.add_batch}).

    Each connection speaks the newline protocol until it negotiates the
    length-prefixed binary framing with one [HELLO BIN <v>] handshake
    (see {!Protocol.Binary}); both protocols share the port.  Binary
    connections may pipeline: every complete frame is dispatched
    immediately and replies are matched by request id, in whatever
    order they finish.  The newline protocol keeps its strict
    one-reply-per-request ordering.

    Robustness properties:

    - {b deadlines}: every admitted request gets a {!Tsj_join.Budget}
      carrying [deadline_s]; an over-deadline query returns a partial
      answer with bound sandwiches and the [degraded] flag rather than
      blocking the server;
    - {b admission control}: at most [max_inflight] work-bearing
      requests run at once; beyond the watermark, requests are shed with
      an explicit [BUSY] — deterministic, never a silent drop.  At the
      watermark, read work displaces the queued read with the {e least}
      remaining deadline (which is shed with [BUSY]) so near-expired
      work — which would expire anyway — is sacrificed first;
    - {b fair admission}: with [rate] set, each connection gets its own
      token bucket ([rate] tokens/s, capacity [burst]) in front of the
      shared watermark; a greedy connection exhausts only its own bucket
      and its excess is shed with [BUSY <retry-after-ms>] while
      conforming connections are untouched.  [STATS]/[HEALTH] bypass the
      bucket so monitoring keeps working under overload;
    - {b deadline propagation}: work requests may carry a relative
      remaining budget (see {!Protocol}); expired work is answered
      [ERR deadline expired] (counted as [expired=] in [STATS]) instead
      of being computed, queued [ADD]s past deadline are dropped {e
      before} the journal write, and a completed answer past its
      deadline is replaced by the same error — an expired answer is
      never delivered;
    - {b connection hygiene}: connections idle longer than
      [idle_timeout_s], or whose unread output exceeds [max_out_bytes],
      are closed and counted as [reaped=]; with [max_conns] set, excess
      accepts are closed immediately.  [EMFILE]/[ENFILE] on accept
      pauses accepting briefly (counted as [accept_pauses=]) instead of
      spinning the event loop hot;
    - {b isolation}: a malformed request, an injected handler fault or a
      client disconnect quarantines that one connection (recorded with a
      {!Tsj_join.Types.quarantined} reason) and leaves every other
      connection untouched;
    - {b graceful drain}: [DRAIN]/SIGTERM stops accepting, lets inflight
      requests finish within [drain_budget_s] (then cancels their
      budgets), flushes the store (snapshot + empty journal) and exits
      cleanly;
    - {b crash safety}: [ADD] is journaled before it is indexed
      (see {!Store}), so killing the server at any point and restarting
      yields an index equal to the acknowledged prefix; a crash during
      a group commit loses only unacknowledged adds.

    - {b replication}: with [quorum] > 1 an [ADD] is acknowledged only
      after that many nodes (self included) flushed the record;
      replicas ([primary = false]) stream the journal from [sync_from],
      refuse writes with [FENCED], and take over via [PROMOTE] behind
      an epoch persisted in the journal header — see {!Replica},
      {!Cluster} and the "Replication" section of DESIGN.md.
      Reads carrying a bounded-staleness bound (binary protocol only)
      are answered locally when the replica's known lag is within the
      bound and redirected to the last known primary otherwise — see
      the contract in {!Protocol}.

    Fault-injection hit points (see {!Tsj_util.Fault_inject}):
    [server.accept] (payload = connection id), [server.request]
    (payload = request ordinal on the connection — one per line,
    frame, or oversize rejection), [server.journal] (payload = first
    fresh sequence number of a journal write batch, fired in
    {!Store.add_batch}; its hit count while armed counts durability
    forces), [server.batch] (payload = group-commit ordinal, fired by
    the committer just before it collects a batch; an armed action can
    stall the committer so pipelined [ADD]s pile into one commit, and
    an [Injected] raise is swallowed), [server.emfile] (payload =
    connection id; fired just before [accept] — arm it with
    {!Tsj_util.Fault_inject.arm_action} raising
    [Unix.Unix_error (Unix.EMFILE, _, _)] to exercise the
    accept-pause path), plus the replication points
    [replica.stream]/[replica.ack] (in {!Replica.feed}) and
    [cluster.partition] (in {!Cluster.replicate}). *)

type config = {
  addr : Protocol.addr;
  tau : int;
  dir : string option;  (** journal/snapshot directory; [None] = ephemeral *)
  domains : int;  (** verification parallelism per query *)
  max_inflight : int;  (** admission watermark; beyond it, [BUSY] *)
  deadline_s : float option;  (** per-request deadline *)
  drain_budget_s : float;  (** how long drain waits for inflight work *)
  max_line_bytes : int;
      (** request lines (and binary frame bodies) longer than this are
          rejected *)
  handle_sigterm : bool;  (** install a SIGTERM -> drain handler *)
  quorum : int;
      (** durable copies (incl. the own journal) required before an
          [ADD] is acknowledged; 1 = single-node semantics *)
  sync_from : Protocol.addr list;
      (** peers to stream the journal from while not primary (the
          [--replica-of] list); tried in order, with backoff *)
  primary : bool;  (** start holding the write mandate *)
  peer_timeout_s : float;
      (** receive timeout on replica streams: a hung replica is dropped
          (and re-syncs) instead of hanging the write path *)
  max_batch : int;
      (** largest number of concurrent [ADD]s coalesced into one group
          commit (one journal flush + one quorum round) *)
  dedup : bool;
      (** answer a duplicate seq-less [ADD] as the original tree's id,
          without journaling or indexing it (see {!Store.open_});
          [STATS] reports the suppressed count as [dedup=] *)
  scrub_interval_s : float option;
      (** background integrity scrub period; [None] (the default)
          disables the scrubber.  Each tick re-verifies up to
          [scrub_budget] journal records against the in-memory index
          under the write lock (see {!Store.scrub_step}) and repairs
          disk-level rot by converging disk to memory *)
  scrub_budget : int;  (** records re-verified per scrub tick *)
  quarantine : bool;
      (** open degraded instead of refusing when corruption cannot be
          healed: unrepairable journal records / a bad snapshot are
          moved aside ([.quarantine]), counted in [STATS], and the
          surviving prefix is served (see {!Store.open_}) *)
  rate : float option;
      (** per-connection admission rate (work requests per second);
          [None] (the default) disables the token buckets *)
  burst : int;
      (** per-connection token-bucket capacity (only meaningful with
          [rate]); a fresh connection may burst this many work requests
          before pacing kicks in *)
  idle_timeout_s : float option;
      (** close (and count as [reaped=]) connections with no traffic,
          no inflight work and an empty output buffer for this long;
          [None] (the default) never reaps idle connections *)
  max_out_bytes : int;
      (** hygiene cap on a connection's unread output buffer: a client
          that stops reading while replies accumulate past this is
          closed (and counted as [reaped=]) instead of growing the
          buffer without bound *)
  max_conns : int option;
      (** hard cap on concurrent connections: excess accepts are closed
          immediately (counted as [reaped=]); [None] = unlimited *)
}

val default_config : Protocol.addr -> tau:int -> config
(** Ephemeral store, 1 domain, watermark 64, no deadline, 5 s drain
    budget, 1 MiB line cap, no signal handler; quorum 1, no sync peers,
    primary, 5 s peer timeout, group commits of up to 64, dedup off;
    no admission rate limit (burst 32 when one is set), no idle
    timeout, 8 MiB output cap, unlimited connections. *)

type t

val create : config -> (t, string) result
(** Open the store (replaying any journal) and bind the listener.  The
    server does not accept connections until {!start}. *)

val start : t -> unit
(** Spawn the event loop, the committer and the query worker (and the
    SIGTERM handler if configured); a non-primary with a [sync_from]
    list also spawns the follower thread that keeps a replication
    stream open. *)

val abort : t -> unit
(** Test hook modelling [kill -9] in-process: sever the listener, every
    connection and any replication stream, and stop every loop {e
    without} flushing or snapshotting — recovery must come from the
    journal alone.  Queued but uncommitted [ADD]s are discarded without
    touching the journal.  Use {!drain} for a graceful stop. *)

val drain : t -> unit
(** Trigger a graceful drain (idempotent; also reachable via the
    [DRAIN] request and SIGTERM).  Blocks until the store is flushed. *)

val drained : t -> bool
(** Whether a drain has completed (store flushed, listener closed). *)

val wait : t -> unit
(** Join the event loop and every worker thread.  Returns once the
    server has fully stopped (i.e. after a drain or abort); after a
    graceful drain it additionally waits for the store flush. *)

val stats : t -> Protocol.stats_reply

val store : t -> Store.t

val replica : t -> Replica.t
(** The node's replication state machine (primary flag, epoch). *)

val quarantined : t -> Tsj_join.Types.quarantined list
(** Connections quarantined so far (oldest first); [q_i] is the
    connection id. *)
