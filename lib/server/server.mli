(** The fault-tolerant similarity-search service.

    A server owns a {!Store.t} (streaming PartSJ index + crash-safe
    journal) and serves the {!Protocol} over a Unix-domain or TCP
    socket: one accept thread, one thread per connection, requests
    executed inline under a store mutex.

    Robustness properties:

    - {b deadlines}: every admitted request gets a {!Tsj_join.Budget}
      carrying [deadline_s]; an over-deadline query returns a partial
      answer with bound sandwiches and the [degraded] flag rather than
      blocking the server;
    - {b admission control}: at most [max_inflight] work-bearing
      requests run at once; beyond the watermark, requests are shed with
      an explicit [BUSY] — deterministic, never a silent drop;
    - {b isolation}: a malformed request, an injected handler fault or a
      client disconnect quarantines that one connection (recorded with a
      {!Tsj_join.Types.quarantined} reason) and leaves every other
      connection untouched;
    - {b graceful drain}: [DRAIN]/SIGTERM stops accepting, lets inflight
      requests finish within [drain_budget_s] (then cancels their
      budgets), flushes the store (snapshot + empty journal) and exits
      cleanly;
    - {b crash safety}: [ADD] is journaled before it is indexed
      (see {!Store}), so killing the server at any point and restarting
      yields an index equal to the acknowledged prefix.

    - {b replication}: with [quorum] > 1 an [ADD] is acknowledged only
      after that many nodes (self included) flushed the record;
      replicas ([primary = false]) stream the journal from [sync_from],
      refuse writes with [FENCED], and take over via [PROMOTE] behind
      an epoch persisted in the journal header — see {!Replica},
      {!Cluster} and the "Replication" section of DESIGN.md.

    Fault-injection hit points (see {!Tsj_util.Fault_inject}):
    [server.accept] (payload = connection id), [server.request]
    (payload = request ordinal on the connection), [server.journal]
    (payload = sequence number, fired in {!Store.add}), plus the
    replication points [replica.stream]/[replica.ack] (in
    {!Replica.feed}) and [cluster.partition] (in
    {!Cluster.replicate}). *)

type config = {
  addr : Protocol.addr;
  tau : int;
  dir : string option;  (** journal/snapshot directory; [None] = ephemeral *)
  domains : int;  (** verification parallelism per query *)
  max_inflight : int;  (** admission watermark; beyond it, [BUSY] *)
  deadline_s : float option;  (** per-request deadline *)
  drain_budget_s : float;  (** how long drain waits for inflight work *)
  max_line_bytes : int;  (** request lines longer than this are rejected *)
  handle_sigterm : bool;  (** install a SIGTERM -> drain handler *)
  quorum : int;
      (** durable copies (incl. the own journal) required before an
          [ADD] is acknowledged; 1 = single-node semantics *)
  sync_from : Protocol.addr list;
      (** peers to stream the journal from while not primary (the
          [--replica-of] list); tried in order, with backoff *)
  primary : bool;  (** start holding the write mandate *)
  peer_timeout_s : float;
      (** receive timeout on replica streams: a hung replica is dropped
          (and re-syncs) instead of hanging the write path *)
}

val default_config : Protocol.addr -> tau:int -> config
(** Ephemeral store, 1 domain, watermark 64, no deadline, 5 s drain
    budget, 1 MiB line cap, no signal handler; quorum 1, no sync peers,
    primary, 5 s peer timeout. *)

type t

val create : config -> (t, string) result
(** Open the store (replaying any journal) and bind the listener.  The
    server does not accept connections until {!start}. *)

val start : t -> unit
(** Spawn the accept thread (and the SIGTERM handler if configured);
    a non-primary with a [sync_from] list also spawns the follower
    thread that keeps a replication stream open. *)

val abort : t -> unit
(** Test hook modelling [kill -9] in-process: sever the listener, every
    connection and any replication stream, and stop every loop {e
    without} flushing or snapshotting — recovery must come from the
    journal alone.  Use {!drain} for a graceful stop. *)

val drain : t -> unit
(** Trigger a graceful drain (idempotent; also reachable via the
    [DRAIN] request and SIGTERM).  Blocks until the store is flushed. *)

val drained : t -> bool
(** Whether a drain has completed (store flushed, listener closed). *)

val wait : t -> unit
(** Join the accept thread and every connection thread.  Returns once
    the server has fully stopped (i.e. after a drain). *)

val stats : t -> Protocol.stats_reply

val store : t -> Store.t

val replica : t -> Replica.t
(** The node's replication state machine (primary flag, epoch). *)

val quarantined : t -> Tsj_join.Types.quarantined list
(** Connections quarantined so far (oldest first); [q_i] is the
    connection id. *)
