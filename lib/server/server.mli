(** The fault-tolerant similarity-search service.

    A server owns a {!Store.t} (streaming PartSJ index + crash-safe
    journal) and serves the {!Protocol} over a Unix-domain or TCP
    socket: one accept thread, one thread per connection, requests
    executed inline under a store mutex.

    Robustness properties:

    - {b deadlines}: every admitted request gets a {!Tsj_join.Budget}
      carrying [deadline_s]; an over-deadline query returns a partial
      answer with bound sandwiches and the [degraded] flag rather than
      blocking the server;
    - {b admission control}: at most [max_inflight] work-bearing
      requests run at once; beyond the watermark, requests are shed with
      an explicit [BUSY] — deterministic, never a silent drop;
    - {b isolation}: a malformed request, an injected handler fault or a
      client disconnect quarantines that one connection (recorded with a
      {!Tsj_join.Types.quarantined} reason) and leaves every other
      connection untouched;
    - {b graceful drain}: [DRAIN]/SIGTERM stops accepting, lets inflight
      requests finish within [drain_budget_s] (then cancels their
      budgets), flushes the store (snapshot + empty journal) and exits
      cleanly;
    - {b crash safety}: [ADD] is journaled before it is indexed
      (see {!Store}), so killing the server at any point and restarting
      yields an index equal to the acknowledged prefix.

    Fault-injection hit points (see {!Tsj_util.Fault_inject}):
    [server.accept] (payload = connection id), [server.request]
    (payload = request ordinal on the connection), [server.journal]
    (payload = sequence number, fired in {!Store.add}). *)

type config = {
  addr : Protocol.addr;
  tau : int;
  dir : string option;  (** journal/snapshot directory; [None] = ephemeral *)
  domains : int;  (** verification parallelism per query *)
  max_inflight : int;  (** admission watermark; beyond it, [BUSY] *)
  deadline_s : float option;  (** per-request deadline *)
  drain_budget_s : float;  (** how long drain waits for inflight work *)
  max_line_bytes : int;  (** request lines longer than this are rejected *)
  handle_sigterm : bool;  (** install a SIGTERM -> drain handler *)
}

val default_config : Protocol.addr -> tau:int -> config
(** Ephemeral store, 1 domain, watermark 64, no deadline, 5 s drain
    budget, 1 MiB line cap, no signal handler. *)

type t

val create : config -> (t, string) result
(** Open the store (replaying any journal) and bind the listener.  The
    server does not accept connections until {!start}. *)

val start : t -> unit
(** Spawn the accept thread (and the SIGTERM handler if configured). *)

val drain : t -> unit
(** Trigger a graceful drain (idempotent; also reachable via the
    [DRAIN] request and SIGTERM).  Blocks until the store is flushed. *)

val drained : t -> bool
(** Whether a drain has completed (store flushed, listener closed). *)

val wait : t -> unit
(** Join the accept thread and every connection thread.  Returns once
    the server has fully stopped (i.e. after a drain). *)

val stats : t -> Protocol.stats_reply

val store : t -> Store.t

val quarantined : t -> Tsj_join.Types.quarantined list
(** Connections quarantined so far (oldest first); [q_i] is the
    connection id. *)
