module Prng = Tsj_util.Prng

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

(* A request written to a server that already hung up must surface as
   EPIPE (an [Error] from {!request}) — never as a process-killing
   SIGPIPE.  Not available on Windows, hence the guard. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let connect ?timeout_s addr =
  ignore_sigpipe ();
  let sock_addr, domain =
    match addr with
    | Protocol.Unix_path path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
    | Protocol.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      (Unix.ADDR_INET (inet, port), Unix.PF_INET)
  in
  match Unix.socket domain Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
    (match timeout_s with
    | Some s when s > 0.0 ->
      (* Socket-level timeouts so a hung server cannot hang the client:
         a late reply surfaces as a transport error and the retry layer
         takes over. *)
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
    | _ -> ());
    match Unix.connect fd sock_addr with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "connect %s: %s" (Protocol.addr_to_string addr)
           (Unix.error_message e))
    | () ->
      Ok { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd })

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let request t req =
  match
    output_string t.oc (Protocol.render_request req);
    output_char t.oc '\n';
    flush t.oc;
    input_line t.ic
  with
  | exception End_of_file -> Error "connection closed by server"
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | line -> Protocol.parse_response line

(* Full-jitter exponential backoff: attempt [i] sleeps a uniform draw
   from [cap/2, cap] with cap = base * 2^i clamped to [max_delay_s].
   The jitter source is an explicit SplitMix64 state and the sleep is
   injectable, so tests replay the exact schedule deterministically. *)
let backoff_delay ~base_delay_s ~max_delay_s ~rng attempt =
  let cap = Float.min max_delay_s (base_delay_s *. Float.pow 2.0 (float_of_int attempt)) in
  cap *. (0.5 +. 0.5 *. Prng.float rng)

let with_retries ?(attempts = 4) ?(base_delay_s = 0.05) ?(max_delay_s = 2.0)
    ?(sleep = Unix.sleepf) ~rng f =
  if attempts < 1 then invalid_arg "Client.with_retries: attempts must be >= 1";
  let rec go attempt =
    match f () with
    | Ok _ as r -> r
    | Error _ as e ->
      if attempt + 1 >= attempts then e
      else begin
        sleep (backoff_delay ~base_delay_s ~max_delay_s ~rng attempt);
        go (attempt + 1)
      end
  in
  go 0

(* One-shot request with reconnect-and-retry.  [BUSY] counts as a
   retryable failure (the shedding server asked us to back off), but is
   returned as-is once attempts are exhausted rather than masked as an
   error. *)
let request_with_retries ?attempts ?base_delay_s ?max_delay_s ?sleep ?timeout_s ~rng
    addr req =
  let last_busy = ref false in
  let result =
    with_retries ?attempts ?base_delay_s ?max_delay_s ?sleep ~rng (fun () ->
        last_busy := false;
        match connect ?timeout_s addr with
        | Error _ as e -> e
        | Ok conn ->
          let r = request conn req in
          close conn;
          (match r with
          | Ok Protocol.Busy ->
            last_busy := true;
            Error "busy"
          | _ -> r))
  in
  match result with
  | Error _ when !last_busy -> Ok Protocol.Busy
  | r -> r
