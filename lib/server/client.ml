module Prng = Tsj_util.Prng

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

(* A request written to a server that already hung up must surface as
   EPIPE (an [Error] from {!request}) — never as a process-killing
   SIGPIPE.  Not available on Windows, hence the guard. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let connect ?timeout_s addr =
  ignore_sigpipe ();
  let sock_addr, domain =
    match addr with
    | Protocol.Unix_path path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
    | Protocol.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      (Unix.ADDR_INET (inet, port), Unix.PF_INET)
  in
  match Unix.socket domain Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
    (match timeout_s with
    | Some s when s > 0.0 ->
      (* Socket-level timeouts so a hung server cannot hang the client:
         a late reply surfaces as a transport error and the retry layer
         takes over. *)
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
    | _ -> ());
    match Unix.connect fd sock_addr with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "connect %s: %s" (Protocol.addr_to_string addr)
           (Unix.error_message e))
    | () ->
      Ok { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd })

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let channels t = (t.ic, t.oc)

let fd t = t.fd

let request t req =
  match
    output_string t.oc (Protocol.render_request req);
    output_char t.oc '\n';
    flush t.oc;
    input_line t.ic
  with
  | exception End_of_file -> Error "connection closed by server"
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | line -> Protocol.parse_response line

(* Full-jitter exponential backoff: attempt [i] sleeps a uniform draw
   from [cap/2, cap] with cap = base * 2^i clamped to [max_delay_s].
   The jitter source is an explicit SplitMix64 state and the sleep is
   injectable, so tests replay the exact schedule deterministically. *)
let backoff_delay ~base_delay_s ~max_delay_s ~rng attempt =
  let cap = Float.min max_delay_s (base_delay_s *. Float.pow 2.0 (float_of_int attempt)) in
  cap *. (0.5 +. 0.5 *. Prng.float rng)

let with_retries ?(attempts = 4) ?(base_delay_s = 0.05) ?(max_delay_s = 2.0)
    ?(sleep = Unix.sleepf) ~rng f =
  if attempts < 1 then invalid_arg "Client.with_retries: attempts must be >= 1";
  let rec go attempt =
    match f () with
    | Ok _ as r -> r
    | Error _ as e ->
      if attempt + 1 >= attempts then e
      else begin
        sleep (backoff_delay ~base_delay_s ~max_delay_s ~rng attempt);
        go (attempt + 1)
      end
  in
  go 0

(* One-shot request with reconnect-and-retry.  [BUSY] counts as a
   retryable failure (the shedding server asked us to back off), but is
   returned as-is once attempts are exhausted rather than masked as an
   error. *)
let request_with_retries ?attempts ?base_delay_s ?max_delay_s ?sleep ?timeout_s ~rng
    addr req =
  let last_busy = ref false in
  let result =
    with_retries ?attempts ?base_delay_s ?max_delay_s ?sleep ~rng (fun () ->
        last_busy := false;
        match connect ?timeout_s addr with
        | Error _ as e -> e
        | Ok conn ->
          let r = request conn req in
          close conn;
          (match r with
          | Ok Protocol.Busy ->
            last_busy := true;
            Error "busy"
          | _ -> r))
  in
  match result with
  | Error _ when !last_busy -> Ok Protocol.Busy
  | r -> r

(* --- failover across a server list --- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

module Failover = struct
  type nonrec t = {
    servers : Protocol.addr array;
    mutable current : int;
    timeout_s : float option;
    attempts : int;
    base_delay_s : float;
    max_delay_s : float;
    sleep : float -> unit;
    rng : Prng.t;
  }

  let create ?(attempts = 8) ?(base_delay_s = 0.02) ?(max_delay_s = 1.0)
      ?(sleep = Unix.sleepf) ?timeout_s ~rng servers =
    if servers = [] then invalid_arg "Client.Failover.create: empty server list";
    {
      servers = Array.of_list servers;
      current = 0;
      timeout_s;
      attempts;
      base_delay_s;
      max_delay_s;
      sleep;
      rng;
    }

  let current t = t.servers.(t.current)

  let rotate t = t.current <- (t.current + 1) mod Array.length t.servers

  (* Replies that mean "this server cannot take the request, another
     one might": a fenced (demoted or never-primary) node, admission
     shedding, and a drain in progress. *)
  let retryable = function
    | Protocol.Fenced _ | Protocol.Busy -> true
    | Protocol.Err reason -> contains ~sub:"draining" reason
    | _ -> false

  let request t req =
    let rec go attempt =
      let result =
        match connect ?timeout_s:t.timeout_s (current t) with
        | Error _ as e -> e
        | Ok conn ->
          let r = request conn req in
          close conn;
          r
      in
      let retry last =
        if attempt + 1 >= t.attempts then last
        else begin
          rotate t;
          t.sleep
            (backoff_delay ~base_delay_s:t.base_delay_s ~max_delay_s:t.max_delay_s
               ~rng:t.rng attempt);
          go (attempt + 1)
        end
      in
      match result with
      | Error _ as e -> retry e
      | Ok resp when retryable resp -> retry result
      | r -> r
    in
    go 0

  (* The safe-retry ADD of the idempotency contract: learn the next
     sequence number from the server's STATS, attach it, and keep
     retrying {e with the same seq} across transport failures and
     failovers — the store's seq-skip answers duplicates, and a seq
     bound to a different tree (a competing writer, or a stale read
     from a lagging replica) refetches and tries again. *)
  let add ?(seq_retries = 4) t tree =
    let rec go tries =
      if tries <= 0 then Error "ADD: seq negotiation attempts exhausted"
      else
        match request t Protocol.Stats with
        | Error _ as e -> e
        | Ok (Protocol.Stats_reply s) -> (
          match request t (Protocol.Add { seq = Some s.trees; tree }) with
          | Ok (Protocol.Err reason)
            when contains ~sub:"already bound" reason
                 || contains ~sub:"seq gap" reason ->
            go (tries - 1)
          | r -> r)
        | Ok other -> Ok other
    in
    go seq_retries
end
